// Quickstart: build a tiny symbolic machine, state a safety property, and
// verify it with every engine — the five-minute tour of the library.
//
// The system is a mutual-exclusion pair: two clients request a shared
// resource; an arbiter grants at most one. We verify AG ¬(g0 ∧ g1): the
// two grants are never simultaneous.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/verify"
)

func main() {
	// 1. A manager owns all BDD nodes.
	m := bdd.New()

	// 2. Describe the machine: state bits with next-state functions and
	// initial values, input bits for the environment's nondeterminism.
	ma := fsm.New(m)
	r0 := ma.NewInputBit("req0") // clients may request at any time
	r1 := ma.NewInputBit("req1")
	g0 := ma.NewStateBit("grant0")
	g1 := ma.NewStateBit("grant1")

	// The arbiter grants a requester only when the other side neither
	// holds nor wins the grant; ties go to client 0.
	v0, v1 := m.VarRef(g0), m.VarRef(g1)
	req0, req1 := m.VarRef(r0), m.VarRef(r1)
	win0 := m.And(req0, v1.Not())
	win1 := m.AndN(req1, v0.Not(), win0.Not())
	ma.SetNext(g0, win0)
	ma.SetNext(g1, win1)
	ma.SetInit(m.And(v0.Not(), v1.Not()))
	ma.MustSeal()

	// 3. State the property: grants are mutually exclusive.
	problem := verify.Problem{
		Machine: ma,
		Good:    m.Nand(v0, v1),
		Name:    "mutex",
	}

	// 4. Verify with every engine; they must agree.
	for _, method := range []verify.Method{verify.Forward, verify.Backward, verify.ICI, verify.XICI} {
		res := verify.Run(problem, method, verify.Options{})
		fmt.Printf("%-5s -> %s\n", method, res)
		if res.Outcome != verify.Verified {
			log.Fatalf("expected mutex to verify, got %v", res.Outcome)
		}
	}

	// 5. Break the arbiter and watch the counterexample come out.
	broken := fsm.New(m)
	b0 := broken.NewInputBit("req0")
	b1 := broken.NewInputBit("req1")
	h0 := broken.NewStateBit("grant0")
	h1 := broken.NewStateBit("grant1")
	broken.SetNext(h0, m.VarRef(b0)) // grants track requests blindly
	broken.SetNext(h1, m.VarRef(b1))
	broken.SetInit(m.And(m.NVarRef(h0), m.NVarRef(h1)))
	broken.MustSeal()

	bad := verify.Problem{
		Machine: broken,
		Good:    m.Nand(m.VarRef(h0), m.VarRef(h1)),
		Name:    "broken-mutex",
	}
	res := verify.Run(bad, verify.XICI, verify.Options{WantTrace: true})
	fmt.Printf("\nbroken arbiter -> %s\n", res)
	if res.Trace != nil {
		if s, err := res.Trace.Format(m, broken.CurVars()); err == nil {
			fmt.Print("counterexample:\n", s)
		}
	}
}
