// FIFO example: the paper's typed-queue workload end to end.
//
// A depth-6, 8-bit-wide queue carries values obeying a type constraint
// (value <= 128). The property — every slot always holds a typed value —
// is the canonical "huge monolithic BDD, tiny implicit conjunction" case:
// the monolithic good-state BDD interleaves the comparisons of all slots
// and grows exponentially with depth, while the per-slot list stays at a
// handful of nodes per slot.
//
// The example verifies the queue with the monolithic backward traversal
// and with XICI, prints the node-count gap, then seeds a bug (an untyped
// writer) and prints the counterexample trace.
//
// Run with: go run ./examples/fifo
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

func main() {
	const depth = 6

	m := bdd.New()
	p := models.NewFIFO(m, models.DefaultFIFO(depth))

	fmt.Printf("model: %s, %d state bits, %d input bits\n\n",
		p.Name, p.Machine.StateBits(), p.Machine.InputBits())

	bk := verify.Run(p, verify.Backward, verify.Options{})
	xi := verify.Run(p, verify.XICI, verify.Options{})
	fmt.Println("monolithic backward:", bk)
	fmt.Println("implicit (XICI):    ", xi)
	if bk.Outcome != verify.Verified || xi.Outcome != verify.Verified {
		log.Fatal("expected both engines to verify the typed FIFO")
	}
	fmt.Printf("\nG_i node counts: monolithic %d vs implicit %d %v — the\n",
		bk.PeakStateNodes, xi.PeakStateNodes, xi.PeakProfile)
	fmt.Println("implicit conjunction keeps one small BDD per slot instead of")
	fmt.Println("one interleaved comparison over the whole queue.")

	// Seed the bug: the writer stops respecting the type constraint.
	cfg := models.DefaultFIFO(3)
	cfg.Bug = true
	bp := models.NewFIFO(bdd.New(), cfg)
	res := verify.Run(bp, verify.XICI, verify.Options{WantTrace: true})
	fmt.Printf("\nseeded bug -> %s\n", res)
	if res.Trace == nil {
		log.Fatal("expected a counterexample trace")
	}
	if err := res.Trace.Validate(bp.Machine, bp.GoodList); err != nil {
		log.Fatalf("trace failed replay: %v", err)
	}
	fmt.Println("counterexample (replayed and validated on the machine):")
	if s, err := res.Trace.Format(bp.Machine.M, bp.Machine.CurVars()); err == nil {
		fmt.Print(s)
	}
}
