// Coherence example: verifying a directory-based MSI cache-coherence
// protocol — the workload class the paper's introduction names as the
// motivation for high-level BDD verification.
//
// The safety property decomposes per cache (single-writer-multiple-reader
// plus directory consistency), so it is a natural implicit conjunction;
// the directory bits are also a function of the cache states, so the
// same model exercises the FD engine.
//
// Run with: go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

func main() {
	const caches = 4

	p := models.NewCoherence(bdd.New(), models.CoherenceConfig{Caches: caches})
	fmt.Printf("model: %s, %d state bits\n\n", p.Name, p.Machine.StateBits())

	for _, method := range []verify.Method{verify.Forward, verify.FD, verify.XICI} {
		res := verify.Run(p, method, verify.Options{})
		fmt.Printf("%-4s -> %s\n", method, res)
		if res.Outcome != verify.Verified {
			log.Fatalf("%s failed: %s", method, res.Why)
		}
	}

	// The classic coherence bug: upgrade without invalidation.
	bp := models.NewCoherence(bdd.New(), models.CoherenceConfig{Caches: caches, Bug: true})
	res := verify.Run(bp, verify.XICI, verify.Options{WantTrace: true})
	fmt.Printf("\nupgrade-without-invalidate bug -> %s\n", res)
	if res.Trace == nil {
		log.Fatal("expected a counterexample")
	}
	if err := res.Trace.Validate(bp.Machine, bp.GoodList); err != nil {
		log.Fatalf("trace failed replay: %v", err)
	}
	fmt.Printf("counterexample in %d transactions: a read installs a shared\n", res.Trace.Len())
	fmt.Println("copy, then another cache takes ownership without invalidating")
	fmt.Println("it — two valid copies, one of them writable:")
	m := bp.Machine.M
	var interesting []bdd.Var
	for _, v := range bp.Machine.CurVars() {
		if name := m.VarName(v); len(name) > 0 && name[0] == 'c' {
			interesting = append(interesting, v)
		}
	}
	if s, err := res.Trace.Format(m, interesting); err == nil {
		fmt.Print(s)
	}
}
