// Link example: verifying an alternating-bit protocol over lossy
// channels — the "link-level protocols" of the paper's introduction.
//
// The environment may drop or stall frames and acknowledgments at will;
// the protocol's one-bit sequence numbers must still guarantee that a
// delivered word is the word the sender currently stands behind. The
// seeded bug removes the receiver's sequence check, and the resulting
// counterexample is the classic stale-retransmission hazard.
//
// Run with: go run ./examples/link
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

func main() {
	p := models.NewLink(bdd.New(), models.LinkConfig{DataBits: 4})
	fmt.Printf("model: %s, %d state bits\n\n", p.Name, p.Machine.StateBits())

	for _, method := range []verify.Method{verify.Forward, verify.ForwardID, verify.XICI} {
		res := verify.Run(p, method, verify.Options{})
		fmt.Printf("%-5s -> %s\n", method, res)
		if res.Outcome != verify.Verified {
			log.Fatalf("%s failed: %s", method, res.Why)
		}
	}

	// Break the sequence check.
	bp := models.NewLink(bdd.New(), models.LinkConfig{DataBits: 4, Bug: true})
	res := verify.Run(bp, verify.XICI, verify.Options{WantTrace: true})
	fmt.Printf("\nno-sequence-check bug -> %s\n", res)
	if res.Trace == nil {
		log.Fatal("expected a counterexample")
	}
	if err := res.Trace.Validate(bp.Machine, bp.GoodList); err != nil {
		log.Fatalf("trace failed replay: %v", err)
	}
	fmt.Printf(`
counterexample in %d steps: the sender retransmits before seeing the
acknowledgment, consumes the ack and moves to the next word — and the
buggy receiver then delivers the stale duplicate as if it were new:
`, res.Trace.Len())
	m := bp.Machine.M
	var interesting []bdd.Var
	for _, v := range bp.Machine.CurVars() {
		switch name := m.VarName(v); name {
		case "snd.seq", "fwd.full", "fwd.seq", "rcv.expect", "rcv.fresh", "rev.full", "rev.seq":
			interesting = append(interesting, v)
		}
	}
	if s, err := res.Trace.Format(m, interesting); err == nil {
		fmt.Print(s)
	}
}
