// Network example: protocol-style verification with three different
// methods exploiting three different structures.
//
// Processors fire requests into an unordered network; a server turns
// requests into acknowledgments; each processor counts its outstanding
// messages. The property — every counter equals the number of that
// processor's in-flight messages — can be verified:
//
//   - monolithically (forward traversal over the full state space),
//   - as a per-processor implicit conjunction (XICI), and
//   - as a functional dependency (FD): the counters are a function of
//     the network contents, so the traversal can project them away.
//
// Run with: go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

func main() {
	const procs = 3

	fmt.Printf("processors: %d (network of %d unordered slots)\n\n", procs, procs)
	for _, method := range []verify.Method{verify.Forward, verify.FD, verify.XICI} {
		p := models.NewNetwork(bdd.New(), models.NetworkConfig{Procs: procs})
		res := verify.Run(p, method, verify.Options{})
		fmt.Printf("%-4s -> %s\n", method, res)
		if res.Outcome != verify.Verified {
			log.Fatalf("%s failed: %s", method, res.Why)
		}
	}

	fmt.Println(`
Note the shapes: FD's iterates are tiny (counters projected away) at the
cost of more iterations; XICI converges immediately because the backward
image of each per-processor conjunct is implied by the list itself.`)

	// The classic protocol bug: a processor consumes an acknowledgment
	// addressed to someone else.
	bp := models.NewNetwork(bdd.New(), models.NetworkConfig{Procs: 2, Bug: true})
	res := verify.Run(bp, verify.XICI, verify.Options{WantTrace: true})
	fmt.Printf("misrouted-ack bug -> %s\n", res)
	if res.Trace == nil {
		log.Fatal("expected a counterexample")
	}
	if err := res.Trace.Validate(bp.Machine, bp.GoodList); err != nil {
		log.Fatalf("trace failed replay: %v", err)
	}
	fmt.Printf("counterexample has %d steps: issue, serve, then the wrong\n", res.Trace.Len())
	fmt.Println("processor receives the acknowledgment and the counters diverge.")
}
