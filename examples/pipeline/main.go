// Pipeline example: datapath equivalence checking — the paper's hardest
// workload (Section IV.B, Figure 3).
//
// A 3-stage pipelined processor (fetch / decode-execute / writeback, with
// a register bypass path and a branch stall) runs the same
// nondeterministic instruction stream as a non-pipelined specification
// delayed two cycles. The property is that the two register files always
// agree. XICI verifies it automatically; removing the bypass path yields
// a counterexample exhibiting the classic read-after-write hazard.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

func main() {
	cfg := models.DefaultPipeline(2, 2)
	p := models.NewPipeline(bdd.New(), cfg)
	fmt.Printf("model: %s, %d state bits, %d input bits\n",
		p.Name, p.Machine.StateBits(), p.Machine.InputBits())

	res := verify.Run(p, verify.XICI, verify.Options{})
	fmt.Println("XICI ->", res)
	if res.Outcome != verify.Verified {
		log.Fatalf("expected the pipeline to verify: %s", res.Why)
	}

	// Drop the bypass path: LD r1,#1 immediately followed by ADD r0,r1
	// reads the stale r1 in the pipeline but the fresh r1 in the spec.
	bug := cfg
	bug.Bug = true
	bp := models.NewPipeline(bdd.New(), bug)
	bres := verify.Run(bp, verify.XICI, verify.Options{WantTrace: true})
	fmt.Println("no-bypass bug ->", bres)
	if bres.Trace == nil {
		log.Fatal("expected a counterexample")
	}
	if err := bres.Trace.Validate(bp.Machine, []bdd.Ref{bp.Good}); err != nil {
		log.Fatalf("trace failed replay: %v", err)
	}
	fmt.Printf("\nread-after-write hazard surfaces after %d cycles:\n", bres.Trace.Len())

	// Print only the registers (the interesting part of the state).
	m := bp.Machine.M
	var regVars []bdd.Var
	for _, v := range bp.Machine.CurVars() {
		name := m.VarName(v)
		if len(name) > 0 && name[0] == 'r' { // ri*/rs* register file bits
			regVars = append(regVars, v)
		}
	}
	if s, err := bres.Trace.Format(m, regVars); err == nil {
		fmt.Print(s)
	}
	fmt.Println("\n(ri* = pipelined register file, rs* = specification's; the")
	fmt.Println("final step shows them diverging.)")
}
