#!/usr/bin/env sh
# End-to-end smoke test for the icid verification service, run in CI.
#
# Builds the daemon, starts it, submits the FIFO builtin over HTTP,
# follows the job's NDJSON event stream to its final line, asserts the
# verdict, checks the /metrics invariants, then submits a 3-model
# batch with a portfolio escalation policy, follows the multiplexed
# batch stream to EOF, asserts the per-member verdicts and the
# batch-extended metrics invariants, and finally sends SIGTERM and
# asserts a clean graceful drain (exit 0 and the drain banner).
#
# Plain POSIX sh + curl + grep; no jq, so it runs on a bare CI image.
set -eu

ADDR="127.0.0.1:8437"
BASE="http://$ADDR"
LOG="${TMPDIR:-/tmp}/icid_smoke.log"

fail() {
	echo "icid_smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

echo "icid_smoke: building"
go build -o "${TMPDIR:-/tmp}/icid" ./cmd/icid

echo "icid_smoke: starting daemon on $ADDR"
"${TMPDIR:-/tmp}/icid" -addr "$ADDR" -workers 2 -drain 20s >"$LOG" 2>&1 &
ICID_PID=$!
trap 'kill "$ICID_PID" 2>/dev/null || true' EXIT

# Wait for liveness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "daemon never became healthy"
	sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

echo "icid_smoke: submitting the fifo builtin"
SUBMIT=$(curl -sf "$BASE/jobs" \
	-d '{"builtin":"fifo","size":4,"engine":"XICI"}') ||
	fail "submission rejected"
# {"id":"j000001","cached":false} — extract the id without jq.
ID=$(printf '%s' "$SUBMIT" | tr -d '"{} ' | tr ',' '\n' |
	grep '^id:' | cut -d: -f2)
[ -n "$ID" ] || fail "no job id in response: $SUBMIT"
echo "icid_smoke: job $ID"

echo "icid_smoke: following the event stream"
EVENTS=$(curl -sfN "$BASE/jobs/$ID/events") || fail "event stream failed"
printf '%s\n' "$EVENTS" | grep -q '"event":"iteration"' ||
	fail "no iteration events in stream: $EVENTS"
printf '%s\n' "$EVENTS" | tail -n 1 | grep -q '"event":"done"' ||
	fail "stream did not end with the done line: $EVENTS"
printf '%s\n' "$EVENTS" | tail -n 1 | grep -q '"outcome":"verified"' ||
	fail "final line is not a verified verdict: $EVENTS"

echo "icid_smoke: checking job status and metrics"
curl -sf "$BASE/jobs/$ID" | grep -q '"outcome":"verified"' ||
	fail "status does not report the verified result"
METRICS=$(curl -sf "$BASE/metrics") || fail "metrics failed"
printf '%s' "$METRICS" | grep -q '"submitted": 1' || fail "submitted != 1: $METRICS"
printf '%s' "$METRICS" | grep -q '"completed": 1' || fail "completed != 1: $METRICS"
printf '%s' "$METRICS" | grep -q '"verified": 1' || fail "verified != 1: $METRICS"

echo "icid_smoke: submitting a 3-model batch with escalation policy"
BSUBMIT=$(curl -sf "$BASE/batches" -d '{
	"jobs": [
		{"builtin":"fifo","size":3},
		{"builtin":"fsm/door"},
		{"builtin":"link","size":1,"bug":true,"name":"link-bug"}
	],
	"policy": ["FD","XICI"],
	"slice": {"node_limit": 64}
}') || fail "batch submission rejected"
BID=$(printf '%s' "$BSUBMIT" | tr -d '"{} ' | tr ',' '\n' |
	grep '^id:' | cut -d: -f2)
[ -n "$BID" ] || fail "no batch id in response: $BSUBMIT"
echo "icid_smoke: batch $BID"

echo "icid_smoke: following the multiplexed batch stream to EOF"
BEVENTS=$(curl -sfN "$BASE/batches/$BID/events") || fail "batch stream failed"
printf '%s\n' "$BEVENTS" | head -n 1 | grep -q '"event":"batch"' ||
	fail "stream does not open with the batch line: $BEVENTS"
printf '%s\n' "$BEVENTS" | grep -q '"member":"' ||
	fail "no member-labeled lines in batch stream: $BEVENTS"
printf '%s\n' "$BEVENTS" | grep -q '"event":"attempt"' ||
	fail "no attempt records in batch stream: $BEVENTS"
# Every member must have flushed its own done line before the final one.
MEMBER_DONE=$(printf '%s\n' "$BEVENTS" |
	grep -c '"member":".*"event":"done"') || true
[ "$MEMBER_DONE" -eq 3 ] || fail "want 3 member done lines, got $MEMBER_DONE"
printf '%s\n' "$BEVENTS" | tail -n 1 | grep -q '"event":"done"' ||
	fail "stream did not end with the batch done line: $BEVENTS"
printf '%s\n' "$BEVENTS" | tail -n 1 | grep -q '"members":3' ||
	fail "batch done line lacks the member tally: $BEVENTS"

echo "icid_smoke: checking per-member verdicts"
BSTATUS=$(curl -sf "$BASE/batches/$BID") || fail "batch status failed"
printf '%s' "$BSTATUS" | grep -q '"state":"done"' || fail "batch not done: $BSTATUS"
printf '%s' "$BSTATUS" | grep -q '"done":3' || fail "done != 3: $BSTATUS"
printf '%s' "$BSTATUS" | grep -q '"verified":2' || fail "verified != 2: $BSTATUS"
printf '%s' "$BSTATUS" | grep -q '"violated":1' || fail "violated != 1: $BSTATUS"
# The planted-bug member must have settled violated on its final rung.
printf '%s' "$BSTATUS" | grep -q '"name":"link-bug"' || fail "link-bug member missing"

echo "icid_smoke: checking the batch metrics invariants"
METRICS=$(curl -sf "$BASE/metrics") || fail "metrics failed"
mval() {
	printf '%s' "$METRICS" | tr ',' '\n' | grep "\"$1\":" |
		grep -o '[0-9][0-9]*' | head -n 1
}
[ "$(mval batches)" -eq 1 ] || fail "batches != 1: $METRICS"
[ "$(mval submitted)" -eq 4 ] || fail "submitted != 4: $METRICS"
[ "$(mval completed)" -eq 4 ] || fail "completed != 4: $METRICS"
SUM=$(($(mval verified) + $(mval violated) + $(mval exhausted)))
[ "$SUM" -eq "$(mval completed)" ] ||
	fail "verified+violated+exhausted ($SUM) != completed: $METRICS"
[ "$(mval attempts)" -ge 3 ] || fail "attempts < 3: $METRICS"
[ "$(mval escalations)" -le "$(mval attempts)" ] ||
	fail "escalations > attempts: $METRICS"

echo "icid_smoke: SIGTERM → graceful drain"
kill -TERM "$ICID_PID"
i=0
while kill -0 "$ICID_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 150 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.2
done
trap - EXIT
# $! was started by this shell, so wait recovers its real exit status.
set +e
wait "$ICID_PID"
STATUS=$?
set -e
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM"
grep -q "drained cleanly" "$LOG" || fail "drain banner missing from log"

echo "icid_smoke: PASS"
