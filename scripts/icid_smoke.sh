#!/usr/bin/env sh
# End-to-end smoke test for the icid verification service, run in CI.
#
# Builds the daemon, starts it, submits the FIFO builtin over HTTP,
# follows the job's NDJSON event stream to its final line, asserts the
# verdict, checks the /metrics invariants, then sends SIGTERM and
# asserts a clean graceful drain (exit 0 and the drain banner).
#
# Plain POSIX sh + curl + grep; no jq, so it runs on a bare CI image.
set -eu

ADDR="127.0.0.1:8437"
BASE="http://$ADDR"
LOG="${TMPDIR:-/tmp}/icid_smoke.log"

fail() {
	echo "icid_smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

echo "icid_smoke: building"
go build -o "${TMPDIR:-/tmp}/icid" ./cmd/icid

echo "icid_smoke: starting daemon on $ADDR"
"${TMPDIR:-/tmp}/icid" -addr "$ADDR" -workers 2 -drain 20s >"$LOG" 2>&1 &
ICID_PID=$!
trap 'kill "$ICID_PID" 2>/dev/null || true' EXIT

# Wait for liveness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "daemon never became healthy"
	sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

echo "icid_smoke: submitting the fifo builtin"
SUBMIT=$(curl -sf "$BASE/jobs" \
	-d '{"builtin":"fifo","size":4,"engine":"XICI"}') ||
	fail "submission rejected"
# {"id":"j000001","cached":false} — extract the id without jq.
ID=$(printf '%s' "$SUBMIT" | tr -d '"{} ' | tr ',' '\n' |
	grep '^id:' | cut -d: -f2)
[ -n "$ID" ] || fail "no job id in response: $SUBMIT"
echo "icid_smoke: job $ID"

echo "icid_smoke: following the event stream"
EVENTS=$(curl -sfN "$BASE/jobs/$ID/events") || fail "event stream failed"
printf '%s\n' "$EVENTS" | grep -q '"event":"iteration"' ||
	fail "no iteration events in stream: $EVENTS"
printf '%s\n' "$EVENTS" | tail -n 1 | grep -q '"event":"done"' ||
	fail "stream did not end with the done line: $EVENTS"
printf '%s\n' "$EVENTS" | tail -n 1 | grep -q '"outcome":"verified"' ||
	fail "final line is not a verified verdict: $EVENTS"

echo "icid_smoke: checking job status and metrics"
curl -sf "$BASE/jobs/$ID" | grep -q '"outcome":"verified"' ||
	fail "status does not report the verified result"
METRICS=$(curl -sf "$BASE/metrics") || fail "metrics failed"
printf '%s' "$METRICS" | grep -q '"submitted": 1' || fail "submitted != 1: $METRICS"
printf '%s' "$METRICS" | grep -q '"completed": 1' || fail "completed != 1: $METRICS"
printf '%s' "$METRICS" | grep -q '"verified": 1' || fail "verified != 1: $METRICS"

echo "icid_smoke: SIGTERM → graceful drain"
kill -TERM "$ICID_PID"
i=0
while kill -0 "$ICID_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 150 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.2
done
trap - EXIT
# $! was started by this shell, so wait recovers its real exit status.
set +e
wait "$ICID_PID"
STATUS=$?
set -e
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM"
grep -q "drained cleanly" "$LOG" || fail "drain banner missing from log"

echo "icid_smoke: PASS"
