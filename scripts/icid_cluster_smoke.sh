#!/usr/bin/env sh
# End-to-end smoke test for icid's cluster routing and persistent proof
# store, run in CI.
#
# Boots a 2-node cluster (each node with its own on-disk store),
# submits the same model to both nodes, and asserts the consistent-hash
# contract: exactly one node computed it (one attempt cluster-wide),
# the other answered via a forward or a cache tier. Then the owning
# node is SIGTERM-restarted and the model is resubmitted to it,
# asserting the verdict now comes from the on-disk store — no
# recomputation after a process restart.
#
# Plain POSIX sh + curl + grep; no jq, so it runs on a bare CI image.
set -eu

ADDR1="127.0.0.1:8447"
ADDR2="127.0.0.1:8448"
BASE1="http://$ADDR1"
BASE2="http://$ADDR2"
TMP="${TMPDIR:-/tmp}"
LOG1="$TMP/icid_cluster_1.log"
LOG2="$TMP/icid_cluster_2.log"
STORE1="$TMP/icid_cluster_store_1"
STORE2="$TMP/icid_cluster_store_2"
rm -rf "$STORE1" "$STORE2"
mkdir -p "$STORE1" "$STORE2"

fail() {
	echo "icid_cluster_smoke: FAIL: $*" >&2
	for log in "$LOG1" "$LOG2"; do
		echo "--- $log ---" >&2
		cat "$log" >&2 || true
	done
	exit 1
}

# mval NAME BASE — read one integer counter from BASE/metrics.
mval() {
	curl -sf "$2/metrics" | tr ',' '\n' | grep "\"$1\":" |
		grep -o '[0-9][0-9]*' | head -n 1
}

# start_node ADDR PEER STORE LOG — boot one cluster member.
start_node() {
	"$TMP/icid" -addr "$1" -self "$1" -peers "$2" -store "$3" \
		-workers 2 -drain 20s >>"$4" 2>&1 &
}

wait_healthy() {
	i=0
	until curl -sf "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && fail "node $1 never became healthy"
		sleep 0.2
	done
	curl -sf "$1/healthz" | grep -q '"status":"ok"' || fail "$1 healthz not ok"
}

# A node that booted before its peer marks it down on the first probe
# and rediscovers it on the next round; routing asserts below need the
# settled view, so wait until this node sees its peer alive.
wait_peer_alive() {
	i=0
	until curl -sf "$1/cluster" | grep -q '"alive":true'; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "node $1 never saw its peer alive"
		sleep 0.2
	done
}

echo "icid_cluster_smoke: building"
go build -o "$TMP/icid" ./cmd/icid

echo "icid_cluster_smoke: starting the 2-node cluster"
start_node "$ADDR1" "$ADDR2" "$STORE1" "$LOG1"
PID1=$!
start_node "$ADDR2" "$ADDR1" "$STORE2" "$LOG2"
PID2=$!
trap 'kill "$PID1" "$PID2" 2>/dev/null || true' EXIT
wait_healthy "$BASE1"
wait_healthy "$BASE2"
wait_peer_alive "$BASE1"
wait_peer_alive "$BASE2"

# Both nodes see the same 2-member ring and report their identity.
curl -sf "$BASE1/cluster" | grep -q '"enabled":true' || fail "node 1 cluster disabled"
curl -sf "$BASE1/healthz" | grep -q '"cluster_role":"member"' || fail "node 1 not a member"
curl -sf "$BASE1/healthz" | grep -q '"store_path":' || fail "node 1 store path missing"
curl -sf "$BASE1/healthz" | grep -q '"version":' || fail "node 1 version missing"

echo "icid_cluster_smoke: submitting the same model to both nodes"
REQ='{"builtin":"fifo","size":4,"engine":"XICI","wait":true}'
R1=$(curl -sf "$BASE1/jobs" -d "$REQ") || fail "submit to node 1 rejected"
R2=$(curl -sf "$BASE2/jobs" -d "$REQ") || fail "submit to node 2 rejected"
printf '%s' "$R1" | grep -q '"outcome":"verified"' || fail "node 1 verdict: $R1"
printf '%s' "$R2" | grep -q '"outcome":"verified"' || fail "node 2 verdict: $R2"

# Both submissions name the same executing node — the key's owner.
NODE1=$(printf '%s' "$R1" | tr ',' '\n' | grep '"node":' | head -n 1)
NODE2=$(printf '%s' "$R2" | tr ',' '\n' | grep '"node":' | head -n 1)
[ -n "$NODE1" ] && [ "$NODE1" = "$NODE2" ] ||
	fail "submissions executed on different nodes: [$NODE1] vs [$NODE2]"
case "$NODE1" in
*"$ADDR1"*) OWNER_BASE="$BASE1" OWNER_PID=$PID1 OWNER_ADDR="$ADDR1" OWNER_PEER="$ADDR2" OWNER_STORE="$STORE1" OWNER_LOG="$LOG1" ;;
*"$ADDR2"*) OWNER_BASE="$BASE2" OWNER_PID=$PID2 OWNER_ADDR="$ADDR2" OWNER_PEER="$ADDR1" OWNER_STORE="$STORE2" OWNER_LOG="$LOG2" ;;
*) fail "unrecognized executing node: $NODE1" ;;
esac
echo "icid_cluster_smoke: owner is $OWNER_ADDR"

# Exactly one computation cluster-wide; the second submission hit a
# cache tier on the owner, and one of the two was forwarded in.
ATTEMPTS=$(($(mval attempts "$BASE1") + $(mval attempts "$BASE2")))
[ "$ATTEMPTS" -eq 1 ] || fail "cluster computed $ATTEMPTS attempts, want exactly 1"
[ "$(mval cache_hits "$OWNER_BASE")" -eq 1 ] || fail "owner cache_hits != 1"
[ "$(mval forwarded_in "$OWNER_BASE")" -eq 1 ] || fail "owner forwarded_in != 1"
LOOKUPS=$(mval cache_lookups "$OWNER_BASE")
SUM=$(($(mval cache_memory_hits "$OWNER_BASE") + $(mval cache_store_hits "$OWNER_BASE") + $(mval cache_misses "$OWNER_BASE")))
[ "$LOOKUPS" -eq "$SUM" ] || fail "owner cache_lookups $LOOKUPS != tier sum $SUM"

echo "icid_cluster_smoke: SIGTERM-restarting the owner"
kill -TERM "$OWNER_PID"
i=0
while kill -0 "$OWNER_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 150 ] && fail "owner did not exit after SIGTERM"
	sleep 0.2
done
grep -q "drained cleanly" "$OWNER_LOG" || fail "owner drain banner missing"

start_node "$OWNER_ADDR" "$OWNER_PEER" "$OWNER_STORE" "$OWNER_LOG"
OWNER_PID=$!
trap 'kill "$PID1" "$PID2" "$OWNER_PID" 2>/dev/null || true' EXIT
wait_healthy "$OWNER_BASE"
grep -q "icid: store" "$OWNER_LOG" || fail "restarted owner did not report store recovery"

echo "icid_cluster_smoke: resubmitting after the restart"
R3=$(curl -sf "$OWNER_BASE/jobs" -d "$REQ") || fail "post-restart submit rejected"
printf '%s' "$R3" | grep -q '"cached":true' || fail "post-restart not served from store: $R3"
printf '%s' "$R3" | grep -q '"outcome":"verified"' || fail "post-restart verdict: $R3"
[ "$(mval cache_store_hits "$OWNER_BASE")" -eq 1 ] ||
	fail "post-restart verdict did not come from the disk store"
[ "$(mval attempts "$OWNER_BASE")" -eq 0 ] || fail "owner recomputed after restart"

echo "icid_cluster_smoke: PASS"
