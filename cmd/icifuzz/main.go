// Command icifuzz is the differential fuzzer for the verification
// engines: it generates seeded random FSM + safety-property instances
// (plus mutations of the paper's benchmark models), runs every engine
// and ablation on each one, and cross-checks the verdicts against each
// other and a brute-force explicit-state oracle.
//
// Usage:
//
//	icifuzz -seed 1 -n 1000               # a campaign; exit 1 on divergence
//	icifuzz -seed 1 -n 1000 -shrink -seeddir failures/
//	icifuzz -replay failures/div-000.json # re-run one saved seed
//	icifuzz -inject -n 50                 # self-test: a lying engine must be caught
//	icifuzz -shared -n 200                # every instance on a concurrent manager
//	icifuzz -engines pdr,fwd -n 200       # only these engines (ablations ride along)
//
// A quarter of randomly drawn instances (and all of them under -shared)
// are built on a shared-memory concurrent BDD manager, so the campaign
// differentially tests the sharded unique table and striped cache
// against the sequential manager and the explicit oracle; the
// XICI/sharedscore ablation additionally scores pairs concurrently on
// such instances.
//
// Reports are NDJSON on -out (default stdout): one line per divergent
// instance (every line with -v), then one summary line. Output is
// deterministic in -seed — no timing ever enters a report — so equal
// invocations are byte-identical and every failure is replayable.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/difftest"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "master seed; determines the whole campaign")
		n       = flag.Int("n", 100, "number of instances")
		budget  = flag.Int("budget", 0, "per-engine node limit (0 = unlimited)")
		maxIter = flag.Int("maxiter", 0, "per-engine iteration cap (0 = 64)")
		shrink  = flag.Bool("shrink", false, "minimize divergent instances before reporting")
		out     = flag.String("out", "", "write NDJSON reports here (default stdout)")
		seedDir = flag.String("seeddir", "", "write one replayable seed file per divergence into this directory")
		replay  = flag.String("replay", "", "run a single saved seed file instead of a campaign")
		inject  = flag.Bool("inject", false, "add the deliberately buggy engine (harness self-test)")
		verbose = flag.Bool("v", false, "report every instance, not only divergent ones")
		oracleS = flag.Int("oracle-state-bits", 0, "explicit-oracle state-bit cap (0 = 12)")
		oracleI = flag.Int("oracle-input-bits", 0, "explicit-oracle input-bit cap (0 = 6)")
		shared  = flag.Bool("shared", false, "build every instance on a shared-memory concurrent manager (default: one in four)")
		engines = flag.String("engines", "", "comma-separated filter over the engine grid; a base name keeps its ablations too (\"pdr\" keeps PDR and PDR/nopolicy)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}

	cfg := difftest.Config{
		MaxIterations:   *maxIter,
		NodeLimit:       *budget,
		OracleStateBits: *oracleS,
		OracleInputBits: *oracleI,
	}
	if *inject {
		cfg.Engines = difftest.InjectBuggyEngine()
	}
	if *engines != "" {
		specs := cfg.Engines
		if specs == nil {
			specs = difftest.DefaultEngines()
		}
		var names []string
		for _, name := range strings.Split(*engines, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		filtered, err := difftest.FilterEngines(specs, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
			os.Exit(2)
		}
		cfg.Engines = filtered
	}

	if *replay != "" {
		sf, err := difftest.LoadSeed(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
			os.Exit(2)
		}
		rep, err := runOne(sf.Params, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
			os.Exit(2)
		}
		w.Write(rep.NDJSON())
		if rep.Divergent() {
			fmt.Fprintf(os.Stderr, "icifuzz: seed %s still diverges\n", *replay)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icifuzz: seed %s agrees\n", *replay)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	divergent := 0
	verified, violated, abstained := 0, 0, 0
	for i := 0; i < *n; i++ {
		params := difftest.RandomParams(rng)
		if *shared {
			params.Shared = true
		}
		rep, err := runOne(params, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icifuzz: instance %d: %v\n", i, err)
			os.Exit(2)
		}
		switch {
		case rep.Oracle == nil:
			abstained++
		case rep.Oracle.Violated:
			violated++
		default:
			verified++
		}
		if rep.Divergent() {
			divergent++
			if *shrink {
				shrunk := difftest.Shrink(params, cfg, 0)
				if shrunk != params {
					if r2, err := runOne(shrunk, cfg); err == nil {
						rep = r2
					}
				}
				params = shrunk
			}
			w.Write(rep.NDJSON())
			if *seedDir != "" {
				if err := os.MkdirAll(*seedDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
					os.Exit(2)
				}
				path := filepath.Join(*seedDir, fmt.Sprintf("div-%03d.json", divergent-1))
				note := ""
				if len(rep.Divergences) > 0 {
					note = rep.Divergences[0]
				}
				if err := difftest.WriteSeed(path, difftest.SeedFile{Params: params, Note: note}); err != nil {
					fmt.Fprintf(os.Stderr, "icifuzz: %v\n", err)
					os.Exit(2)
				}
				fmt.Fprintf(os.Stderr, "icifuzz: wrote %s\n", path)
			}
		} else if *verbose {
			w.Write(rep.NDJSON())
		}
	}

	// The summary is part of the deterministic NDJSON stream: counts
	// only, no timing.
	fmt.Fprintf(w, `{"summary":{"seed":%d,"n":%d,"divergent":%d,"verified":%d,"violated":%d,"oracle_abstained":%d}}`+"\n",
		*seed, *n, divergent, verified, violated, abstained)
	fmt.Fprintf(os.Stderr, "icifuzz: %d instances, %d divergent (%d verified, %d violated, %d beyond oracle)\n",
		*n, divergent, verified, violated, abstained)
	if divergent > 0 {
		os.Exit(1)
	}
}

func runOne(params difftest.Params, cfg difftest.Config) (difftest.Report, error) {
	inst, err := difftest.Generate(params)
	if err != nil {
		return difftest.Report{}, err
	}
	return difftest.RunInstance(inst, cfg), nil
}
