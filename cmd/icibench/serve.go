package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/verify"
)

// -serve mode: instead of running cells in-process, icibench drives a
// remote icid. The zoo registry is fetched from GET /models, the grid
// is submitted through POST /batches (chunked to respect the daemon's
// queue), each batch's multiplexed event stream is followed to EOF —
// the batch-wide drain guarantee means EOF implies every member is
// terminal — and the member results are assembled into the same
// icibench/v3 report a local -zoo -json run writes. Exit codes mirror
// the local grid's.

// serveBatchCap bounds members per POST /batches so the grid fits the
// daemon's default queue capacity with room for other clients.
const serveBatchCap = 32

// serveCell is one (zoo entry, size, engine) grid point and the batch
// member that realizes it.
type serveCell struct {
	group  string
	method verify.Method
	entry  server.BatchEntry
	status server.JobStatus // filled once the member lands
}

// runServe executes the remote grid and returns the process exit code.
func runServe(ctx context.Context, out io.Writer, baseURL string, quick bool, methods []verify.Method, jsonPath string) int {
	baseURL = strings.TrimRight(baseURL, "/")
	if len(methods) == 0 {
		methods = []verify.Method{verify.Forward, verify.XICI, verify.PDR}
	}
	budget := bench.DefaultBudget
	if quick {
		budget = bench.QuickBudget
	}

	infos, err := fetchModels(ctx, baseURL)
	if err != nil {
		fmt.Fprintf(out, "icibench: -serve: %v\n", err)
		return 2
	}

	cells := make([]*serveCell, 0, len(infos)*len(methods))
	for _, mi := range infos {
		sizes := mi.Sizes
		if len(sizes) == 0 {
			sizes = []map[string]int{nil}
		}
		if quick {
			sizes = sizes[:1]
		}
		for _, size := range sizes {
			for _, meth := range methods {
				cells = append(cells, &serveCell{
					group:  "zoo/" + mi.Name + serveSizeLabel(size),
					method: meth,
					entry: server.BatchEntry{SubmitRequest: server.SubmitRequest{
						Builtin: mi.Name,
						Params:  size,
						Engine:  string(meth),
					}},
				})
			}
		}
	}

	start := time.Now()
	for chunk := 0; chunk*serveBatchCap < len(cells); chunk++ {
		lo := chunk * serveBatchCap
		hi := min(lo+serveBatchCap, len(cells))
		if err := runServeBatch(ctx, baseURL, budget, cells[lo:hi]); err != nil {
			fmt.Fprintf(out, "icibench: -serve: %v\n", err)
			return 2
		}
		for _, c := range cells[lo:hi] {
			printServeRow(out, c)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "(%d cells via %s in %v)\n", len(cells), baseURL, elapsed.Round(time.Millisecond))

	if jsonPath != "" {
		rep := serveReport(baseURL, quick, elapsed, budget, cells)
		if err := rep.Write(jsonPath); err != nil {
			fmt.Fprintf(out, "icibench: writing %s: %v\n", jsonPath, err)
			return 1
		}
		fmt.Fprintf(out, "(wrote %s)\n", jsonPath)
	}
	return serveExitCode(out, cells)
}

// fetchModels lists the daemon's zoo registry.
func fetchModels(ctx context.Context, baseURL string) ([]server.ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET /models: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /models: %d %s", resp.StatusCode, data)
	}
	var infos []server.ModelInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("GET /models: %w", err)
	}
	return infos, nil
}

// runServeBatch submits one chunk as a batch, follows its multiplexed
// stream to EOF, and fills each cell's member status.
func runServeBatch(ctx context.Context, baseURL string, budget bench.Budget, cells []*serveCell) error {
	breq := server.BatchRequest{
		Name: "icibench -serve",
		Budget: server.BudgetSpec{
			NodeLimit: budget.NodeLimit,
			TimeoutMS: int64(budget.Timeout / time.Millisecond),
		},
	}
	for _, c := range cells {
		breq.Jobs = append(breq.Jobs, c.entry)
	}
	body, err := json.Marshal(breq)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", baseURL+"/batches", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("POST /batches: %w", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /batches: %d %s", resp.StatusCode, data)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		return fmt.Errorf("POST /batches: %w", err)
	}
	if len(br.Jobs) != len(cells) {
		return fmt.Errorf("batch admitted %d members for %d cells", len(br.Jobs), len(cells))
	}

	// Follow the multiplexed stream to EOF: the final line before the
	// server closes it is the batch "done" marker, so EOF means every
	// member is terminal.
	req, err = http.NewRequestWithContext(ctx, "GET", baseURL+"/batches/"+br.ID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("GET /batches/%s/events: %w", br.ID, err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return fmt.Errorf("batch %s stream: %w", br.ID, err)
	}

	// Collect the member verdicts.
	req, err = http.NewRequestWithContext(ctx, "GET", baseURL+"/batches/"+br.ID, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("GET /batches/%s: %w", br.ID, err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var bst server.BatchStatus
	if err := json.Unmarshal(data, &bst); err != nil {
		return fmt.Errorf("GET /batches/%s: %w", br.ID, err)
	}
	byID := make(map[string]server.JobStatus, len(bst.Members))
	for _, st := range bst.Members {
		byID[st.ID] = st
	}
	for i, c := range cells {
		st, ok := byID[br.Jobs[i]]
		if !ok {
			return fmt.Errorf("batch %s: member %s missing from status", br.ID, br.Jobs[i])
		}
		c.status = st
	}
	return nil
}

// printServeRow renders one finished cell in the text table style.
func printServeRow(out io.Writer, c *serveCell) {
	if c.status.State == server.StateError {
		fmt.Fprintf(out, "%-44s %-8s ERROR %s\n", c.group, c.method, c.status.Error)
		return
	}
	rw := c.status.Result
	if rw == nil {
		fmt.Fprintf(out, "%-44s %-8s (no result)\n", c.group, c.method)
		return
	}
	detail := fmt.Sprintf("iter=%d peak=%d", rw.Iterations, rw.PeakStateNodes)
	if rw.Cause != "" {
		detail += " cause=" + rw.Cause
	}
	fmt.Fprintf(out, "%-44s %-8s %-10s %s %6.2fs\n",
		c.group, c.method, strings.ToUpper(rw.Outcome), detail, rw.ElapsedMS/1000)
}

// serveReport assembles the icibench/v3 document from the remote
// members — the same schema a local -zoo -json run writes, so existing
// consumers work unchanged.
func serveReport(baseURL string, quick bool, elapsed time.Duration, budget bench.Budget, cells []*serveCell) *bench.Report {
	tr := bench.TableReport{
		Title:          "Model Zoo via " + baseURL,
		Elapsed:        elapsed.Seconds(),
		NodeLimit:      budget.NodeLimit,
		TimeoutSeconds: budget.Timeout.Seconds(),
	}
	for _, c := range cells {
		rw := c.status.Result
		if rw == nil {
			continue
		}
		cr := bench.CellReport{
			Group:          c.group,
			Method:         string(c.method),
			Label:          string(c.method),
			Outcome:        rw.Outcome,
			Cause:          rw.Cause,
			Why:            rw.Why,
			Iterations:     rw.Iterations,
			PeakStateNodes: rw.PeakStateNodes,
			PeakProfile:    rw.PeakProfile,
			PeakLiveNodes:  rw.PeakLiveNodes,
			TotalVars:      rw.TotalVars,
			MemBytes:       rw.MemBytes,
			WallSeconds:    rw.ElapsedMS / 1000,
			Stats: bench.CellStats{
				TautCalls:      rw.Term.TautCalls,
				ShannonSplits:  rw.Term.ShannonSplits,
				MaxSplitDepth:  rw.Term.MaxSplitDepth,
				StepResolved:   rw.Term.StepResolved,
				PairsScored:    rw.Eval.PairsScored,
				MergesApplied:  rw.Eval.MergesApplied,
				BudgetOverflow: rw.Eval.BudgetOverflow,
				Rounds:         rw.Eval.Rounds,
				ImageSeconds:   rw.PhaseMS["image"] / 1000,
				PolicySeconds:  rw.PhaseMS["policy"] / 1000,
				TermSeconds:    rw.PhaseMS["termination"] / 1000,
				GCSeconds:      rw.PhaseMS["gc"] / 1000,
				SizeTrajectory: rw.SizeTrajectory,
			},
		}
		if rw.Outcome == verify.Violated.String() {
			cr.ViolationDepth = rw.ViolationDepth
		}
		tr.Cells = append(tr.Cells, cr)
	}
	return &bench.Report{
		Schema:    bench.ReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Quick:     quick,
		Tables:    []bench.TableReport{tr},
	}
}

// serveExitCode mirrors gridExitCode over the wire outcomes, with a
// usage-style exit 2 when any member errored server-side.
func serveExitCode(out io.Writer, cells []*serveCell) int {
	var violated, exhausted, errored int
	causes := map[string]int{}
	for _, c := range cells {
		switch {
		case c.status.State == server.StateError || c.status.Result == nil:
			errored++
		case c.status.Result.Outcome == verify.Violated.String():
			violated++
		case c.status.Result.Outcome == verify.Exhausted.String():
			exhausted++
			causes[c.status.Result.Cause]++
		}
	}
	switch {
	case errored > 0:
		fmt.Fprintf(out, "icibench: %d cell(s) errored server-side\n", errored)
		return 2
	case violated > 0:
		fmt.Fprintf(out, "icibench: %d cell(s) VIOLATED their property\n", violated)
		return 1
	case exhausted > 0:
		parts := make([]string, 0, len(causes))
		for _, c := range []string{"node-limit", "deadline", "canceled", "iteration-cap", "other"} {
			if n := causes[c]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s: %d", c, n))
			}
		}
		sort.Strings(parts)
		fmt.Fprintf(out, "icibench: %d cell(s) exhausted their budget (%s)\n",
			exhausted, strings.Join(parts, ", "))
		return 3
	}
	return 0
}

// serveSizeLabel renders a size map deterministically, matching the
// local zoo grid's group labels.
func serveSizeLabel(s map[string]int) string {
	if len(s) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, s[k])
	}
	return " " + strings.Join(parts, " ")
}
