// Command icibench regenerates the paper's experiment tables.
//
// Usage:
//
//	icibench                # all three tables at full size
//	icibench -table 2       # one table
//	icibench -quick         # shrunken sizes (seconds instead of minutes)
//	icibench -table 3 -assisted  # include the user-partition comparison
//
// Each cell runs on a fresh BDD manager under a node/time budget playing
// the role of the paper's "Exceeded 60MB" / "Exceeded 40 minutes" limits;
// see EXPERIMENTS.md for the calibration and the paper-vs-measured
// discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table to run (1, 2 or 3; 0 = all)")
		quick    = flag.Bool("quick", false, "shrunken sizes for a fast smoke run")
		assisted = flag.Bool("assisted", false, "table 3: add the user-partition group")
	)
	flag.Parse()

	run := func(t bench.Table, b bench.Budget) {
		start := time.Now()
		t.Run(os.Stdout, b)
		fmt.Printf("(%s finished in %v)\n\n", t.Title, time.Since(start).Round(time.Millisecond))
	}

	if *table == 0 || *table == 1 {
		run(bench.Table1(*quick))
	}
	if *table == 0 || *table == 2 {
		run(bench.Table2(*quick))
	}
	if *table == 0 || *table == 3 {
		t, b := bench.Table3(*quick, *assisted)
		run(t, b)
	}
}
