// Command icibench regenerates the paper's experiment tables.
//
// Usage:
//
//	icibench                # all three tables at full size
//	icibench -table 2       # one table
//	icibench -quick         # shrunken sizes (seconds instead of minutes)
//	icibench -table 3 -assisted  # include the user-partition comparison
//	icibench -parallel 4    # run each table's cells on 4 workers
//	icibench -engines Bkwd,XICI  # only these engines' rows
//	icibench -json out.json # also write machine-readable results
//	icibench -effort        # append effort counters to each text row
//	icibench -pprof localhost:6060  # serve net/http/pprof while running
//	icibench -workers 8 -shared  # cells score pairs concurrently on one shared manager
//	icibench -speedup BENCH.json # run the speedup grid, write its JSON, and exit
//	icibench -zoo -quick    # the model-zoo grid: every registry entry at its smallest size
//	icibench -serve http://localhost:8080 -quick  # drive a remote icid via its batch API
//
// The -zoo grid replaces the paper tables with one group per (zoo
// entry, size) pair — the parameterized families plus every imported
// `.fsm` machine — under Forward, XICI, and PDR. Entries whose property
// is violated by design report VIOLATED rows, so the grid normally
// exits 1. Engine names given to -engines resolve case-insensitively
// ("pdr" works).
//
// The -speedup grid compares sequential, per-worker-manager, and
// shared-manager XICI runs cell by cell (schema "icibench-speedup/v1");
// it exits 1 if any configuration disagrees on verdict or iteration
// count, since the concurrent manager's contract is bit-identical
// traversals. On a machine with no schedulable parallelism
// (GOMAXPROCS=1) the grid refuses to run — such numbers measure
// hand-off elimination, not speedup — unless -force is given, in which
// case the report carries "degraded": true so the condition is recorded
// in the JSON itself.
//
// Each cell runs on a fresh BDD manager under a node/time budget playing
// the role of the paper's "Exceeded 60MB" / "Exceeded 40 minutes" limits;
// see EXPERIMENTS.md for the calibration and the paper-vs-measured
// discussion. With -parallel N the cells of a table run concurrently (a
// cell is self-contained: own manager, own budget), which changes only
// wall time, never the table contents — though on a loaded machine a
// cell near its time budget can tip into "Exceeded time budget". Ctrl-C
// cancels the grid cleanly: in-flight cells abort promptly and report
// as canceled. The -json schema ("icibench/v3", with the per-table
// budget, per-row termination cause, and the per-cell effort stats
// block) is documented in EXPERIMENTS.md.
//
// Exit codes mirror iciverify's, aggregated over every cell that ran
// (violation outranks exhaustion):
//
//	0  every cell verified its property
//	1  at least one cell found a property violation
//	2  usage or configuration error (bad flag, unknown engine, ...)
//	3  no violation, but at least one cell exhausted its budget — the
//	   typed causes (node-limit, deadline, canceled, iteration-cap) are
//	   listed in the closing summary
//
// Since the tables deliberately run engines into the paper's budget
// walls, exit 3 is the expected outcome of a full run; scripts that
// only care about correctness should treat 1 as the failure signal.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/verify"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to run (1, 2 or 3; 0 = all)")
		quick     = flag.Bool("quick", false, "shrunken sizes for a fast smoke run")
		assisted  = flag.Bool("assisted", false, "table 3: add the user-partition group")
		parallel  = flag.Int("parallel", 0, "cells per table to run concurrently (0 or 1 = sequential, < 0 = GOMAXPROCS)")
		engines   = flag.String("engines", "", "comma-separated engines: keep only these rows; \"list\" prints the registered engines and exits")
		jsonPath  = flag.String("json", "", "write machine-readable results to this path")
		effort    = flag.Bool("effort", false, "append effort counters and phase times to each text row")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the grid's duration")
		workers   = flag.Int("workers", 0, "in-cell scoring workers (0 = sequential scoring); with -shared they score against one concurrent manager")
		shared    = flag.Bool("shared", false, "run every cell on a shared-memory concurrent manager (implies -workers 8 unless set)")
		speedup   = flag.String("speedup", "", "run the parallel-vs-sequential speedup grid instead of the tables and write its JSON here")
		reps      = flag.Int("reps", 3, "speedup grid: repetitions per configuration (best-of)")
		force     = flag.Bool("force", false, "speedup grid: run even with no schedulable parallelism (report is marked degraded)")
		zooGrid   = flag.Bool("zoo", false, "run the model-zoo grid (every zoo registry entry, including imported .fsm machines) instead of the paper tables")
		serve     = flag.String("serve", "", "drive a remote icid at this base URL (e.g. http://localhost:8080) instead of running cells in-process; submits the zoo grid through its batch API")
	)
	flag.Parse()

	if *shared && *workers == 0 {
		*workers = 8
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "icibench: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("(pprof listening on http://%s/debug/pprof/)\n", *pprofAddr)
	}

	if *engines == "list" {
		for _, name := range verify.Registered() {
			fmt.Println(name)
		}
		return
	}
	var methods []verify.Method
	if *engines != "" {
		for _, name := range strings.Split(*engines, ",") {
			meth, ok := verify.Resolve(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "icibench: unknown engine %q (try -engines list)\n", strings.TrimSpace(name))
				os.Exit(2)
			}
			methods = append(methods, meth)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *serve != "" {
		os.Exit(runServe(ctx, os.Stdout, *serve, *quick, methods, *jsonPath))
	}

	if *speedup != "" {
		if runtime.GOMAXPROCS(0) <= 1 && !*force {
			fmt.Fprintln(os.Stderr, "icibench: -speedup refused: GOMAXPROCS=1 measures hand-off elimination, not speedup (use -force to run anyway; the report will carry \"degraded\": true)")
			os.Exit(2)
		}
		rep := bench.RunSpeedup(ctx, os.Stdout, *workers, *reps, *quick, bench.DefaultBudget)
		if err := rep.Write(*speedup); err != nil {
			fmt.Fprintf(os.Stderr, "icibench: writing %s: %v\n", *speedup, err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", *speedup)
		for _, c := range rep.Cells {
			if !c.VerdictsAgree {
				fmt.Fprintf(os.Stderr, "icibench: %s: configurations disagree on verdict or iterations\n", c.Group)
				os.Exit(1)
			}
		}
		return
	}

	report := &bench.Report{
		Schema:    bench.ReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Quick:     *quick,
		Workers:   *parallel,
	}

	var all []bench.CellResult
	run := func(t bench.Table, b bench.Budget) {
		t = t.Filter(methods)
		t.ShowEffort = *effort
		if *workers != 0 || *shared {
			for i := range t.Cells {
				if t.Cells[i].Opt.Workers == 0 {
					t.Cells[i].Opt.Workers = *workers
				}
				t.Cells[i].Opt.SharedManager = *shared
			}
		}
		if len(t.Cells) == 0 {
			return
		}
		start := time.Now()
		var results []bench.CellResult
		if *parallel != 0 && *parallel != 1 {
			results = t.RunParallel(ctx, os.Stdout, b, *parallel)
		} else {
			results = t.Run(ctx, os.Stdout, b)
		}
		elapsed := time.Since(start)
		fmt.Printf("(%s finished in %v)\n\n", t.Title, elapsed.Round(time.Millisecond))
		report.Add(t.Title, elapsed, b, results)
		all = append(all, results...)
	}

	if *zooGrid {
		run(bench.ZooTable(*quick))
	} else {
		if *table == 0 || *table == 1 {
			run(bench.Table1(*quick))
		}
		if *table == 0 || *table == 2 {
			run(bench.Table2(*quick))
		}
		if *table == 0 || *table == 3 {
			t, b := bench.Table3(*quick, *assisted)
			run(t, b)
		}
	}

	if *jsonPath != "" {
		if err := report.Write(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "icibench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", *jsonPath)
	}
	os.Exit(gridExitCode(all))
}

// gridExitCode aggregates the cell outcomes into the documented exit
// code — 1 for any violation, else 3 for any budget exhaustion, else 0
// — and, on a non-zero code, prints a one-line summary with the typed
// causes (Result.Cause()) of the exhausted cells.
func gridExitCode(all []bench.CellResult) int {
	var violated, exhausted int
	causes := map[string]int{}
	for _, cr := range all {
		switch cr.Result.Outcome {
		case verify.Violated:
			violated++
		case verify.Exhausted:
			exhausted++
			causes[cr.Result.Cause()]++
		}
	}
	switch {
	case violated > 0:
		fmt.Fprintf(os.Stderr, "icibench: %d cell(s) VIOLATED their property\n", violated)
		return 1
	case exhausted > 0:
		parts := make([]string, 0, len(causes))
		for _, c := range []string{"node-limit", "deadline", "canceled", "iteration-cap", "other"} {
			if n := causes[c]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s: %d", c, n))
			}
		}
		fmt.Fprintf(os.Stderr, "icibench: %d cell(s) exhausted their budget (%s)\n",
			exhausted, strings.Join(parts, ", "))
		return 3
	}
	return 0
}
