package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/verify"
)

// -serve against an in-process icid: the remote grid must complete,
// emit a valid icibench/v3 report, and exit with the local grid's code
// semantics (the zoo contains violated-by-design entries, so 1).
func TestRunServeAgainstLocalDaemon(t *testing.T) {
	s := server.New(server.Config{Workers: 4, QueueCap: 64})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	}()

	jsonPath := filepath.Join(t.TempDir(), "serve.json")
	var out bytes.Buffer
	code := runServe(context.Background(), &out, ts.URL, true, []verify.Method{verify.XICI}, jsonPath)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (the zoo's violated-by-design entries)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "VIOLATED") || !strings.Contains(out.String(), "VERIFIED") {
		t.Fatalf("text table lacks verdict rows:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Schema != bench.ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, bench.ReportSchema)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Cells) == 0 {
		t.Fatalf("report shape: %d tables", len(rep.Tables))
	}
	for _, cell := range rep.Tables[0].Cells {
		if cell.Method != "XICI" {
			t.Errorf("cell %s ran %q, want XICI only", cell.Group, cell.Method)
		}
		if cell.Outcome == "" || !strings.HasPrefix(cell.Group, "zoo/") {
			t.Errorf("malformed cell: %+v", cell)
		}
		if cell.TotalVars == 0 {
			t.Errorf("cell %s lacks total_vars (wire plumbing broken?)", cell.Group)
		}
	}
}
