package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/verify"
)

// printStats renders the -stats human summary: the per-phase wall-time
// breakdown, the exact termination test's counters, the greedy
// evaluation's counters, and the iterate size trajectory.
func printStats(res verify.Result) {
	fmt.Printf("phase times:   %s (attributed %.3fs of %.3fs)\n",
		res.PhaseDurations, res.PhaseDurations.Total().Seconds(), res.Elapsed.Seconds())
	ts := res.Term
	fmt.Printf("termination:   %d taut calls (steps1-2 %d, step3 %d, single %d), %d shannon splits, max depth %d\n",
		ts.TautCalls, ts.StepResolved[0], ts.StepResolved[1], ts.StepResolved[2],
		ts.ShannonSplits, ts.MaxSplitDepth)
	es := res.Eval
	fmt.Printf("evaluation:    %d pairs scored, %d merges, %d budget overflows, %d rounds\n",
		es.PairsScored, es.MergesApplied, es.BudgetOverflow, es.Rounds)
	if len(res.SizeTrajectory) > 0 {
		parts := make([]string, len(res.SizeTrajectory))
		for i, s := range res.SizeTrajectory {
			parts[i] = fmt.Sprint(s)
		}
		fmt.Printf("iterate sizes: %s\n", strings.Join(parts, " "))
	}
}

// eventLog is the -events NDJSON sink: one JSON object per line, each
// tagged with the event kind and the method that produced it.
type eventLog struct {
	enc    *json.Encoder
	method string
}

func newEventLog(w io.Writer) *eventLog {
	return &eventLog{enc: json.NewEncoder(w)}
}

func (l *eventLog) setMethod(m string) { l.method = m }

func (l *eventLog) OnIteration(e verify.IterationEvent) {
	l.enc.Encode(struct {
		Event  string `json:"event"`
		Method string `json:"method"`
		verify.IterationEvent
	}{"iteration", l.method, e})
}

func (l *eventLog) OnMerge(e verify.MergeEvent) {
	l.enc.Encode(struct {
		Event  string `json:"event"`
		Method string `json:"method"`
		verify.MergeEvent
	}{"merge", l.method, e})
}

func (l *eventLog) OnTermResolved(e verify.TermEvent) {
	l.enc.Encode(struct {
		Event  string `json:"event"`
		Method string `json:"method"`
		verify.TermEvent
	}{"term_resolved", l.method, e})
}
