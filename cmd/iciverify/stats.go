package main

import (
	"fmt"
	"strings"

	"repro/internal/verify"
)

// printStats renders the -stats human summary: the per-phase wall-time
// breakdown, the exact termination test's counters, the greedy
// evaluation's counters, and the iterate size trajectory.
func printStats(res verify.Result) {
	fmt.Printf("phase times:   %s (attributed %.3fs of %.3fs)\n",
		res.PhaseDurations, res.PhaseDurations.Total().Seconds(), res.Elapsed.Seconds())
	ts := res.Term
	fmt.Printf("termination:   %d taut calls (steps1-2 %d, step3 %d, single %d), %d shannon splits, max depth %d\n",
		ts.TautCalls, ts.StepResolved[0], ts.StepResolved[1], ts.StepResolved[2],
		ts.ShannonSplits, ts.MaxSplitDepth)
	es := res.Eval
	fmt.Printf("evaluation:    %d pairs scored, %d merges, %d budget overflows, %d rounds\n",
		es.PairsScored, es.MergesApplied, es.BudgetOverflow, es.Rounds)
	if len(res.SizeTrajectory) > 0 {
		parts := make([]string, len(res.SizeTrajectory))
		for i, s := range res.SizeTrajectory {
			parts[i] = fmt.Sprint(s)
		}
		fmt.Printf("iterate sizes: %s\n", strings.Join(parts, " "))
	}
}
