// Command iciverify runs one verification engine on one benchmark model
// and prints the paper-style statistics row, optionally with a
// counterexample trace.
//
// Usage:
//
//	iciverify -model fifo -size 5 -method XICI
//	iciverify -model filter -size 8 -assist -method ICI
//	iciverify -model pipeline -regs 2 -bits 3 -method Bkwd -nodelimit 2000000
//	iciverify -model network -size 4 -method FD
//	iciverify -model fifo -size 3 -bug -method Fwd -trace
//	iciverify -model fifo -size 4 -engines Fwd,Bkwd,XICI
//	iciverify -model elevator -params floors=5
//	iciverify -model fsm/turnstile -method Fwd -trace
//	iciverify -fsm machine.fsm -method XICI
//	iciverify -engines list
//
// Built-in models resolve through the zoo registry (every entry `icid`
// serves and `icibench -zoo` grids): the paper families take the flat
// flags (fifo size = depth, network size = processors, filter size =
// window depth, pipeline -regs/-bits), and every entry takes named
// -params name=value pairs, which win over the flat flags. -fsm imports
// an FSM-toolkit .fsm machine from disk (see internal/fsmtk); -file
// verifies a textual model (see internal/lang).
// Ctrl-C cancels a running traversal cleanly (reported as exhausted).
//
// Exit codes (multi-engine runs report the worst outcome, where
// violation outranks exhaustion):
//
//	0  every engine verified the property
//	1  an engine found a property violation (or its trace failed replay)
//	2  usage or configuration error (bad flag, unknown model/engine, ...)
//	3  a run exhausted its budget — the typed cause (node-limit,
//	   deadline, canceled, iteration-cap) is printed with the row
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/fsmtk"
	"repro/internal/lang"
	"repro/internal/resource"
	"repro/internal/verify"
	"repro/internal/zoo"
)

func main() {
	var (
		model     = flag.String("model", "fifo", "zoo model name (fifo, network, filter, pipeline, coherence, link, elevator, traffic, protostack, fsm/..., ...)")
		params    = flag.String("params", "", "comma-separated name=value zoo parameters (e.g. floors=5,bug=1); these win over the flat size flags")
		size      = flag.Int("size", 5, "model size (fifo depth, network processors, filter depth, coherence caches, link data bits)")
		regs      = flag.Int("regs", 2, "pipeline: number of registers")
		bits      = flag.Int("bits", 1, "pipeline: datapath width")
		method    = flag.String("method", "XICI", "method: Fwd, FwdID, Bkwd, FD, ICI, XICI, Induction")
		engines   = flag.String("engines", "", "comma-separated engines to run in sequence (overrides -method); \"list\" prints the registered engines and exits")
		assist    = flag.Bool("assist", false, "supply user assisting invariants / partition")
		bug       = flag.Bool("bug", false, "seed the model's bug")
		trace     = flag.Bool("trace", false, "print a counterexample trace on violation")
		nodeLimit = flag.Int("nodelimit", 0, "abort when live BDD nodes exceed this (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "abort after this wall time (0 = unlimited)")
		maxIter   = flag.Int("maxiter", 0, "abort after this many traversal iterations (0 = engine default)")
		threshold = flag.Float64("threshold", core.DefaultGrowThreshold, "XICI GrowThreshold")
		compose   = flag.Bool("compose", false, "use functional-composition back images instead of the relational product")
		termMode  = flag.String("term", "exact", "XICI termination test: exact, implication, fast")
		dotOut    = flag.String("dot", "", "write the property BDD(s) as Graphviz DOT to this file")
		file      = flag.String("file", "", "verify a textual model file instead of a built-in model (see internal/lang)")
		fsmFile   = flag.String("fsm", "", "import and verify an FSM-toolkit .fsm machine file (see internal/fsmtk)")
		stats     = flag.Bool("stats", false, "print per-phase timings and effort counters after each run")
		events    = flag.String("events", "", "append an NDJSON event log (iteration/merge/termination events) to this file")
	)
	flag.Parse()

	if *engines == "list" {
		for _, name := range verify.Registered() {
			fmt.Println(name)
		}
		return
	}

	// Ctrl-C cancels the run cleanly: BDD operations abort on the next
	// budget check and the engine reports Exhausted/canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m := bdd.NewWithSize(1<<16, 20)
	var p verify.Problem
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		p, err = lang.Parse(m, string(src), *file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
	case *fsmFile != "":
		src, err := os.ReadFile(*fsmFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		mo, err := fsmtk.Import(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %s: %v\n", *fsmFile, err)
			os.Exit(2)
		}
		p, err = mo.Instantiate(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
	default:
		sz, err := modelSize(*model, *size, *regs, *bits, *assist, *bug, *params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		mo, err := zoo.Build(*model, sz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		p, err = mo.Instantiate(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
	}
	if *compose {
		p.Machine.PreImageMode = fsm.PreCompose
	}

	var tm verify.TerminationMode
	switch *termMode {
	case "exact":
		tm = verify.TermExact
	case "implication":
		tm = verify.TermImplication
	case "fast":
		tm = verify.TermFast
	default:
		fmt.Fprintf(os.Stderr, "iciverify: unknown termination mode %q\n", *termMode)
		os.Exit(2)
	}

	opt := verify.Options{
		Budget: resource.Budget{
			NodeLimit:     *nodeLimit,
			Timeout:       *timeout,
			MaxIterations: *maxIter,
		},
		WantTrace:   *trace,
		Termination: tm,
		Core:        core.Options{GrowThreshold: *threshold},
	}

	var elog *verify.NDJSONObserver
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		elog = verify.NewNDJSONObserver(f)
		opt.Observer = elog
	}

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		goods := p.GoodList
		if goods == nil {
			goods = []bdd.Ref{p.Good}
		}
		if err := m.WriteDOT(f, goods...); err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "iciverify: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote property BDDs to %s\n", *dotOut)
	}

	// The run list: -engines selects several, -method one; both resolve
	// through the engine registry, case-insensitively ("pdr" works).
	var names []string
	if *engines != "" {
		names = strings.Split(*engines, ",")
	} else {
		names = []string{*method}
	}
	var methods []verify.Method
	for _, name := range names {
		meth, ok := verify.Resolve(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "iciverify: unknown method %q (try -engines list)\n", strings.TrimSpace(name))
			os.Exit(2)
		}
		methods = append(methods, meth)
	}

	fmt.Printf("model %s  (%d state bits, %d input bits)\n",
		p.Name, p.Machine.StateBits(), p.Machine.InputBits())

	exit := 0
	for _, meth := range methods {
		if elog != nil {
			elog.SetMethod(string(meth))
		}
		start := time.Now()
		res := verify.RunContext(ctx, p, meth, opt)
		fmt.Println(res)
		if cause := res.Cause(); cause != "" {
			fmt.Printf("cause: %s\n", cause)
		}
		fmt.Printf("wall %v, peak live nodes %d\n", time.Since(start).Round(time.Millisecond), m.PeakNodes())
		if *stats {
			printStats(res)
		}

		if res.Trace != nil {
			goods := p.GoodList
			if goods == nil {
				goods = []bdd.Ref{p.Good}
			}
			if err := res.Trace.Validate(p.Machine, goods); err != nil {
				fmt.Fprintf(os.Stderr, "trace validation FAILED: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("counterexample (validated by replay):")
			rendered, err := res.Trace.Format(m, p.Machine.CurVars())
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace formatting FAILED: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(rendered)
		}
		switch res.Outcome {
		case verify.Violated:
			exit = 1
		case verify.Exhausted:
			if exit == 0 {
				exit = 3
			}
		}
	}
	os.Exit(exit)
}

// legacySizeKey maps the flat -size flag onto the zoo parameter it has
// always meant, for the original six families.
var legacySizeKey = map[string]string{
	"fifo":      "depth",
	"network":   "procs",
	"filter":    "depth",
	"coherence": "caches",
	"link":      "data-bits",
}

// modelSize resolves the flat flags and the -params list into the zoo
// size overrides for the named entry.
func modelSize(model string, size, regs, bits int, assist, bug bool, params string) (zoo.Size, error) {
	sz := zoo.Size{}
	if key, ok := legacySizeKey[model]; ok {
		sz[key] = size
	}
	if model == "pipeline" {
		sz["regs"], sz["width"] = regs, bits
	}
	if assist {
		sz["assist"] = 1
	}
	if bug {
		sz["bug"] = 1
	}
	for _, kv := range strings.Split(params, ",") {
		if kv = strings.TrimSpace(kv); kv == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want name=value)", kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("bad -params value in %q: %v", kv, err)
		}
		sz[strings.TrimSpace(name)] = n
	}
	return sz, nil
}
