// Command icid is the networked verification service: a daemon that
// accepts verification jobs over HTTP/JSON, runs them on a bounded
// queue with a worker scheduler (one fresh BDD manager per job, budgets
// enforced server-side), and streams per-job progress as NDJSON.
//
// Usage:
//
//	icid -addr :8417
//	icid -addr :8417 -workers 4 -queue 128 -nodelimit 2000000 -timeout 5m
//
// Endpoints (see docs/api.md for the wire reference and curl examples):
//
//	POST   /jobs                 submit a job (textual model or builtin)
//	GET    /jobs                 list retained jobs
//	GET    /jobs/{id}            job status and result
//	DELETE /jobs/{id}            cancel a job
//	GET    /jobs/{id}/events     NDJSON progress stream (follows until done)
//	POST   /batches              submit many models atomically: shared budget
//	                             pool + portfolio escalation policy
//	GET    /batches              list retained batches
//	GET    /batches/{id}         batch status with per-member attempt records
//	DELETE /batches/{id}         cancel every member
//	GET    /batches/{id}/events  multiplexed member-labeled NDJSON stream
//	GET    /models               model-zoo registry with parameter surfaces
//	GET    /healthz              liveness + engines/builtins
//	GET    /metrics              expvar counters
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting
// submissions, finishes (or, after -drain expires, budget-cancels) the
// queued and in-flight jobs, flushes every job's final event line, then
// exits 0. A second signal forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/resource"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8417", "listen address")
		workers   = flag.Int("workers", 0, "scheduler workers (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue", 64, "queued-job capacity; submissions past it get 503")
		cacheCap  = flag.Int("cache", 128, "result cache entries (negative disables)")
		history   = flag.Int("history", 1024, "terminal jobs retained for status queries")
		nodeLimit = flag.Int("nodelimit", 0, "default per-job live-node budget (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "default per-job wall budget (0 = unlimited)")
		maxIter   = flag.Int("maxiter", 0, "default per-job iteration cap (0 = engine default)")
		maxNodes  = flag.Int("maxnodes", 0, "clamp every job's node budget to this (0 = no clamp)")
		maxTime   = flag.Duration("maxtime", 0, "clamp every job's wall budget to this (0 = no clamp)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful drain window before in-flight jobs are budget-canceled")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:    *workers,
		QueueCap:   *queueCap,
		CacheCap:   *cacheCap,
		JobHistory: *history,
		DefaultBudget: resource.Budget{
			NodeLimit:     *nodeLimit,
			Timeout:       *timeout,
			MaxIterations: *maxIter,
		},
		MaxNodeLimit: *maxNodes,
		MaxTimeout:   *maxTime,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("icid listening on %s (%d workers, queue %d)\n", *addr, srv.Workers(), *queueCap)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "icid: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Printf("icid: draining (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "icid: drain deadline passed, in-flight jobs were budget-canceled\n")
	}
	// Jobs are final and their event lines appended; now close the HTTP
	// side. Streams end on their own (their jobs are done), so a short
	// deadline only guards against wedged connections.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "icid: http shutdown: %v\n", err)
	}
	<-errCh // ListenAndServe has returned ErrServerClosed
	fmt.Println("icid: drained cleanly")
}
