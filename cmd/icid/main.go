// Command icid is the networked verification service: a daemon that
// accepts verification jobs over HTTP/JSON, runs them on a bounded
// queue with a worker scheduler (one fresh BDD manager per job, budgets
// enforced server-side), and streams per-job progress as NDJSON.
//
// Usage:
//
//	icid -addr :8417
//	icid -addr :8417 -workers 4 -queue 128 -nodelimit 2000000 -timeout 5m
//	icid -addr :8417 -store /var/lib/icid
//	icid -addr :8417 -self 10.0.0.1:8417 -peers 10.0.0.2:8417,10.0.0.3:8417
//
// Endpoints (see docs/api.md for the wire reference and curl examples):
//
//	POST   /jobs                 submit a job (textual model or builtin)
//	GET    /jobs                 list retained jobs
//	GET    /jobs/{id}            job status and result
//	DELETE /jobs/{id}            cancel a job
//	GET    /jobs/{id}/events     NDJSON progress stream (follows until done)
//	POST   /batches              submit many models atomically: shared budget
//	                             pool + portfolio escalation policy
//	GET    /batches              list retained batches
//	GET    /batches/{id}         batch status with per-member attempt records
//	DELETE /batches/{id}         cancel every member
//	GET    /batches/{id}/events  multiplexed member-labeled NDJSON stream
//	GET    /models               model-zoo registry with parameter surfaces
//	GET    /cluster              routing ring membership and peer liveness
//	GET    /healthz              liveness + engines/builtins + node identity
//	GET    /metrics              expvar counters (two-tier cache, forwarding)
//
// With -store DIR, deterministic results persist in an append-only
// content-addressed store under DIR and survive restarts: a repeated
// submission after a restart is answered from disk, event replay
// included. With -peers, the daemon joins a consistent-hash cluster:
// every node routes each submission to the node owning its canonical
// model identity (single-hop forward, local fallback when the owner is
// down), so one model's results concentrate on one node's caches no
// matter where the submission entered.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting
// submissions, finishes (or, after -drain expires, budget-cancels) the
// queued and in-flight jobs, flushes every job's final event line and
// the proof store, then exits 0. A second signal forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/store"
)

// version is the build identity /healthz reports; overridable at link
// time with -ldflags "-X main.version=...".
var version = "0.10.0"

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8417", "listen address")
		workers   = flag.Int("workers", 0, "scheduler workers (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue", 64, "queued-job capacity; submissions past it get 503")
		cacheCap  = flag.Int("cache", 128, "result cache entries (negative disables)")
		history   = flag.Int("history", 1024, "terminal jobs retained for status queries")
		nodeLimit = flag.Int("nodelimit", 0, "default per-job live-node budget (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "default per-job wall budget (0 = unlimited)")
		maxIter   = flag.Int("maxiter", 0, "default per-job iteration cap (0 = engine default)")
		maxNodes  = flag.Int("maxnodes", 0, "clamp every job's node budget to this (0 = no clamp)")
		maxTime   = flag.Duration("maxtime", 0, "clamp every job's wall budget to this (0 = no clamp)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful drain window before in-flight jobs are budget-canceled")

		storeDir = flag.String("store", "", "directory for the persistent proof store (empty = memory only)")
		storeMax = flag.Int64("store-max-bytes", 0, "compact the proof store past this size (0 = unbounded)")
		peers    = flag.String("peers", "", "comma-separated peer addresses; enables consistent-hash cluster routing")
		self     = flag.String("self", "", "this node's advertised address, as spelled in every peer's -peers (default: derived from -addr)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = 64)")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:    *workers,
		QueueCap:   *queueCap,
		CacheCap:   *cacheCap,
		JobHistory: *history,
		DefaultBudget: resource.Budget{
			NodeLimit:     *nodeLimit,
			Timeout:       *timeout,
			MaxIterations: *maxIter,
		},
		MaxNodeLimit: *maxNodes,
		MaxTimeout:   *maxTime,
		Version:      version,
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Config{MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "icid: opening store %s: %v\n", *storeDir, err)
			os.Exit(1)
		}
		defer st.Close()
		rec := st.Recovery()
		fmt.Printf("icid: store %s: %d entries in %d segments", st.Dir(), rec.Entries, rec.Segments)
		if rec.Quarantined > 0 {
			fmt.Printf(", %d corrupt spans quarantined (%d bytes)", rec.Quarantined, rec.QuarantinedByte)
		}
		if rec.TruncatedTail {
			fmt.Printf(", torn tail truncated")
		}
		fmt.Println()
		cfg.Store = st
	}

	if *peers != "" {
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = *addr
			if strings.HasPrefix(selfAddr, ":") {
				selfAddr = "127.0.0.1" + selfAddr
			}
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		cl := cluster.New(cluster.Config{Self: selfAddr, Peers: peerList, VNodes: *vnodes})
		cl.Start()
		defer cl.Stop()
		fmt.Printf("icid: cluster member %s, ring %v\n", selfAddr, cl.Ring().Members())
		cfg.Cluster = cl
	}

	srv := server.New(cfg)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("icid listening on %s (%d workers, queue %d)\n", *addr, srv.Workers(), *queueCap)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "icid: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Printf("icid: draining (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "icid: drain deadline passed, in-flight jobs were budget-canceled\n")
	}
	// Jobs are final and their event lines appended; now close the HTTP
	// side. Streams end on their own (their jobs are done), so a short
	// deadline only guards against wedged connections.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "icid: http shutdown: %v\n", err)
	}
	<-errCh // ListenAndServe has returned ErrServerClosed
	// The deferred cluster.Stop and store.Close run last: the probe loop
	// ends, then the store takes its final flush — every result written
	// during the drain is durable before the process exits.
	fmt.Println("icid: drained cleanly")
}
