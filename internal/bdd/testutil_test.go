package bdd

import (
	"math/rand"
	"testing"
)

// Truth-table test harness: for small variable counts we compare every
// BDD operation against an exhaustive model. A truth table over n
// variables is a uint64 whose bit i gives the function value on the
// assignment where variable j (= level j) has value (i>>j)&1.

// tableBits returns the number of meaningful bits in a table over n vars.
func tableBits(n int) uint { return 1 << uint(n) }

// tableMask masks a uint64 down to a valid n-variable table.
func tableMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << tableBits(n)) - 1
}

// truthToBDD builds the BDD of a truth table over variables 0..n-1.
func truthToBDD(m *Manager, n int, table uint64) Ref {
	// build consumes tables over variables v..n-1 where index bit k
	// corresponds to variable v+k.
	var build func(v int, tbl uint64) Ref
	build = func(v int, tbl uint64) Ref {
		if v == n {
			if tbl&1 == 1 {
				return One
			}
			return Zero
		}
		rem := n - v - 1
		var lo, hi uint64
		for i := 0; i < int(tableBits(rem)); i++ {
			if tbl&(1<<uint(2*i)) != 0 {
				lo |= 1 << uint(i)
			}
			if tbl&(1<<uint(2*i+1)) != 0 {
				hi |= 1 << uint(i)
			}
		}
		return m.mk(uint32(v), build(v+1, lo), build(v+1, hi))
	}
	return build(0, table&tableMask(n))
}

// bddToTruth evaluates f on every assignment of n variables.
func bddToTruth(m *Manager, f Ref, n int) uint64 {
	var out uint64
	a := make([]bool, m.NumVars())
	for i := 0; i < int(tableBits(n)); i++ {
		for j := 0; j < n; j++ {
			a[j] = (i>>uint(j))&1 == 1
		}
		if m.Eval(f, a) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// newTestManager returns a Manager with n declared variables.
func newTestManager(t testing.TB, n int) *Manager {
	t.Helper()
	m := New()
	m.NewVars("x", n)
	return m
}

// checkInv fails the test if structural invariants are broken.
func checkInv(t testing.TB, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// randTables yields count random truth tables over n vars.
func randTables(rng *rand.Rand, n, count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = rng.Uint64() & tableMask(n)
	}
	return out
}
