package bdd

import (
	"math/rand"
	"testing"
	"time"
)

func TestTransferIdentity(t *testing.T) {
	const n = 5
	src := newTestManager(t, n)
	dst := newTestManager(t, n)
	rng := rand.New(rand.NewSource(131))
	for _, tbl := range randTables(rng, n, 40) {
		f := truthToBDD(src, n, tbl)
		g := Transfer(dst, src, f, nil)
		if got := bddToTruth(dst, g, n); got != tbl {
			t.Fatalf("identity transfer changed semantics: %#x -> %#x", tbl, got)
		}
		// Same order, same canonical structure: sizes match.
		if dst.Size(g) != src.Size(f) {
			t.Fatalf("identity transfer changed size: %d -> %d", src.Size(f), dst.Size(g))
		}
	}
	checkInv(t, dst)
}

func TestTransferConstantsAndComplements(t *testing.T) {
	src := newTestManager(t, 3)
	dst := newTestManager(t, 3)
	if Transfer(dst, src, One, nil) != One || Transfer(dst, src, Zero, nil) != Zero {
		t.Fatal("constants did not transfer to constants")
	}
	f := src.Xor(src.VarRef(0), src.VarRef(2))
	g := Transfer(dst, src, f, nil)
	gn := Transfer(dst, src, f.Not(), nil)
	if gn != g.Not() {
		t.Fatal("complement not preserved across transfer")
	}
}

// TestTransferReorder permutes variables and checks pointwise semantics
// under the permutation.
func TestTransferReorder(t *testing.T) {
	const n = 5
	src := newTestManager(t, n)
	dst := newTestManager(t, n)
	rng := rand.New(rand.NewSource(132))

	perm := []Var{3, 0, 4, 1, 2} // src var i -> dst var perm[i]
	for _, tbl := range randTables(rng, n, 30) {
		f := truthToBDD(src, n, tbl)
		g := Transfer(dst, src, f, perm)
		// Pointwise: g under assignment a equals f under the pullback.
		for i := 0; i < int(tableBits(n)); i++ {
			a := make([]bool, n)
			for j := 0; j < n; j++ {
				a[j] = (i>>uint(j))&1 == 1
			}
			pulled := make([]bool, n)
			for srcVar, dstVar := range perm {
				pulled[srcVar] = a[dstVar]
			}
			if dst.Eval(g, a) != src.Eval(f, pulled) {
				t.Fatalf("reorder transfer wrong at %v (table %#x)", a, tbl)
			}
		}
	}
	checkInv(t, dst)
}

// TestTransferOrderingMatters demonstrates the point of the facility:
// the same function under block vs interleaved ordering has drastically
// different sizes (the [19] datapath heuristic).
func TestTransferOrderingMatters(t *testing.T) {
	const w = 8
	// Source: block order a0..a7 b0..b7; equality comparator.
	src := New()
	av := src.NewVars("a", w)
	bv := src.NewVars("b", w)
	eq := One
	for i := 0; i < w; i++ {
		eq = src.And(eq, src.Xnor(src.VarRef(av[i]), src.VarRef(bv[i])))
	}
	blockSize := src.Size(eq)

	// Destination: interleaved order a0 b0 a1 b1 ...
	dst := New()
	dst.NewVars("x", 2*w)
	varMap := make([]Var, 2*w)
	for i := 0; i < w; i++ {
		varMap[av[i]] = Var(2 * i)
		varMap[bv[i]] = Var(2*i + 1)
	}
	inter := Transfer(dst, src, eq, varMap)
	interSize := dst.Size(inter)

	// Equality under block ordering is exponential (must remember all of
	// a before seeing b); interleaved is linear.
	if interSize*8 > blockSize {
		t.Fatalf("expected dramatic shrink: block %d vs interleaved %d", blockSize, interSize)
	}
	if interSize > 3*w+2 {
		t.Fatalf("interleaved comparator should be linear: %d nodes", interSize)
	}

	// Round trip back to block order reproduces the original size.
	back := make([]Var, 2*w)
	for srcVar, dstVar := range varMap {
		back[dstVar] = Var(srcVar)
	}
	again := Transfer(src, dst, inter, back)
	if again != eq {
		t.Fatal("round-trip transfer lost the function")
	}
}

func TestTransferAllSharesMemo(t *testing.T) {
	const n = 4
	src := newTestManager(t, n)
	dst := newTestManager(t, n)
	common := src.Xor(src.VarRef(1), src.VarRef(2))
	f := src.And(src.VarRef(0), common)
	g := src.Or(src.VarRef(3), common)
	out := TransferAll(dst, src, []Ref{f, g, f.Not()}, nil)
	if len(out) != 3 {
		t.Fatal("wrong arity")
	}
	if out[2] != out[0].Not() {
		t.Fatal("complement pair broken")
	}
	if dst.SharedSize(out[0], out[1]) != src.SharedSize(f, g) {
		t.Fatal("shared structure not preserved")
	}
}

func TestTransferUncoveredSupportPanics(t *testing.T) {
	src := newTestManager(t, 3)
	dst := newTestManager(t, 3)
	f := src.VarRef(2)
	defer func() {
		if recover() == nil {
			t.Fatal("short varMap did not panic")
		}
	}()
	Transfer(dst, src, f, []Var{0})
}

// TestNewWorker covers the per-worker Manager hand-off used by the
// parallel evaluation layer: same variables, inherited limit/deadline,
// canonical sizes on both sides, and a lossless round trip.
func TestNewWorker(t *testing.T) {
	m := newTestManager(t, 5)
	m.SetNodeLimit(1 << 20)
	dl := time.Now().Add(time.Hour)
	m.SetDeadline(dl)
	defer m.SetDeadline(time.Time{})

	w := m.NewWorker()
	if w.NumVars() != m.NumVars() {
		t.Fatalf("worker declares %d vars, want %d", w.NumVars(), m.NumVars())
	}
	for v := 0; v < m.NumVars(); v++ {
		if w.VarName(Var(v)) != m.VarName(Var(v)) {
			t.Fatalf("var %d name mismatch", v)
		}
	}
	if w.NodeLimit() != m.NodeLimit() {
		t.Fatalf("worker limit %d, want %d", w.NodeLimit(), m.NodeLimit())
	}
	if !w.Deadline().Equal(dl) {
		t.Fatalf("worker deadline %v, want %v", w.Deadline(), dl)
	}

	f := m.Or(m.And(m.VarRef(0), m.VarRef(3)), m.Xor(m.VarRef(1), m.VarRef(4)))
	g := m.And(f, m.VarRef(2))
	fs := TransferAll(w, m, []Ref{f, g}, nil)
	if w.Size(fs[0]) != m.Size(f) || w.SharedSize(fs...) != m.SharedSize(f, g) {
		t.Fatal("sizes not canonical across worker transfer")
	}
	// The conjunction computed on the worker transfers back to the exact
	// Ref the source Manager would compute itself.
	p := w.And(fs[0], fs[1])
	if Transfer(m, w, p, nil) != m.And(f, g) {
		t.Fatal("worker result did not transfer back to the canonical Ref")
	}
	checkInv(t, w)
}

// TestNewWorkerIndependence: worker allocations never touch the source.
func TestNewWorkerIndependence(t *testing.T) {
	m := newTestManager(t, 4)
	f := m.VarRef(0)
	before := m.NumNodes()
	w := m.NewWorker()
	ws := TransferAll(w, m, []Ref{f}, nil)
	w.And(w.Xor(ws[0], w.VarRef(1)), w.VarRef(2))
	if m.NumNodes() != before {
		t.Fatalf("worker activity changed source node count: %d -> %d", before, m.NumNodes())
	}
}

// TestDeadlineGetter: the zero value round-trips too.
func TestDeadlineGetter(t *testing.T) {
	m := newTestManager(t, 2)
	if !m.Deadline().IsZero() {
		t.Fatal("fresh manager has a deadline")
	}
	dl := time.Now().Add(time.Minute)
	m.SetDeadline(dl)
	if !m.Deadline().Equal(dl) {
		t.Fatal("Deadline getter does not round-trip")
	}
	m.SetDeadline(time.Time{})
	if !m.Deadline().IsZero() {
		t.Fatal("deadline not cleared")
	}
}
