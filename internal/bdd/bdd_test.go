package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	m := newTestManager(t, 2)
	if One == Zero {
		t.Fatal("One == Zero")
	}
	if One.Not() != Zero || Zero.Not() != One {
		t.Fatal("complement of constants broken")
	}
	if !One.IsConst() || !Zero.IsConst() {
		t.Fatal("constants not IsConst")
	}
	if m.NumNodes() != 1 {
		t.Fatalf("fresh manager has %d nodes, want 1 (terminal)", m.NumNodes())
	}
}

func TestVarRefBasics(t *testing.T) {
	m := newTestManager(t, 3)
	x := m.VarRef(0)
	if x.IsConst() {
		t.Fatal("variable is constant")
	}
	if m.TopVar(x) != 0 {
		t.Fatalf("TopVar = %d, want 0", m.TopVar(x))
	}
	if m.Low(x) != Zero || m.High(x) != One {
		t.Fatal("variable cofactors wrong")
	}
	// Hash consing: same variable twice gives the same Ref.
	if m.VarRef(0) != x {
		t.Fatal("VarRef not canonical")
	}
	// Negation round-trips.
	if x.Not().Not() != x {
		t.Fatal("double negation not identity")
	}
	nx := m.NVarRef(0)
	if nx != x.Not() {
		t.Fatal("NVarRef != Not(VarRef)")
	}
	if m.Low(nx) != One || m.High(nx) != Zero {
		t.Fatal("negated variable cofactors wrong")
	}
	checkInv(t, m)
}

func TestVarRefUndeclared(t *testing.T) {
	m := newTestManager(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("VarRef of undeclared variable did not panic")
		}
	}()
	m.VarRef(5)
}

func TestMkReductionRules(t *testing.T) {
	m := newTestManager(t, 3)
	x := m.VarRef(0)
	// low == high collapses.
	if got := m.mk(0, x.Not(), x.Not()); got != x.Not() {
		t.Fatal("mk did not collapse equal children")
	}
	// Complemented then-edge is normalized away on every live node.
	a := m.And(m.VarRef(0), m.VarRef(1).Not())
	b := m.Or(a, m.VarRef(2))
	_ = b
	checkInv(t, m)
}

func TestConnectivesTruthTables(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(1))
	tabs := randTables(rng, n, 24)
	for i, ta := range tabs {
		for _, tb := range tabs[:i+1] {
			fa := truthToBDD(m, n, ta)
			fb := truthToBDD(m, n, tb)
			cases := []struct {
				name string
				got  Ref
				want uint64
			}{
				{"And", m.And(fa, fb), ta & tb},
				{"Or", m.Or(fa, fb), ta | tb},
				{"Xor", m.Xor(fa, fb), ta ^ tb},
				{"Xnor", m.Xnor(fa, fb), ^(ta ^ tb) & tableMask(n)},
				{"Nand", m.Nand(fa, fb), ^(ta & tb) & tableMask(n)},
				{"Nor", m.Nor(fa, fb), ^(ta | tb) & tableMask(n)},
				{"Imp", m.Imp(fa, fb), (^ta | tb) & tableMask(n)},
				{"Diff", m.Diff(fa, fb), ta &^ tb},
				{"Not", fa.Not(), ^ta & tableMask(n)},
			}
			for _, c := range cases {
				if got := bddToTruth(m, c.got, n); got != c.want {
					t.Fatalf("%s(%#x,%#x) = %#x, want %#x", c.name, ta, tb, got, c.want)
				}
			}
		}
	}
	checkInv(t, m)
}

func TestITETruthTables(t *testing.T) {
	const n = 3
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(2))
	tabs := randTables(rng, n, 12)
	for _, tf := range tabs {
		for _, tg := range tabs[:6] {
			for _, th := range tabs[6:] {
				f := truthToBDD(m, n, tf)
				g := truthToBDD(m, n, tg)
				h := truthToBDD(m, n, th)
				want := (tf & tg) | (^tf & th)
				want &= tableMask(n)
				if got := bddToTruth(m, m.ITE(f, g, h), n); got != want {
					t.Fatalf("ITE(%#x,%#x,%#x) = %#x, want %#x", tf, tg, th, got, want)
				}
			}
		}
	}
	checkInv(t, m)
}

// TestCanonicity is the core property: equal truth tables must yield the
// identical Ref regardless of how the function was constructed.
func TestCanonicity(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		tbl := rng.Uint64() & tableMask(n)
		direct := truthToBDD(m, n, tbl)

		// Rebuild via a random balanced Shore-expansion on a random var.
		v := rng.Intn(n)
		x := m.VarRef(Var(v))
		lo := truthToBDD(m, n, tbl) // same function
		viaITE := m.ITE(x, m.And(lo, x), m.And(lo, x.Not()))
		// ITE(x, f∧x, f∧¬x) == f∧x ∨ f∧¬x == f
		if viaITE != direct {
			t.Fatalf("canonicity violated for table %#x", tbl)
		}
		// De Morgan round trip.
		other := rng.Uint64() & tableMask(n)
		g := truthToBDD(m, n, other)
		if m.And(direct, g) != m.Or(direct.Not(), g.Not()).Not() {
			t.Fatalf("De Morgan violated for %#x,%#x", tbl, other)
		}
	}
	checkInv(t, m)
}

func TestImplies(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 100; iter++ {
		ta := rng.Uint64() & tableMask(n)
		tb := rng.Uint64() & tableMask(n)
		fa := truthToBDD(m, n, ta)
		fb := truthToBDD(m, n, tb)
		want := ta&^tb == 0
		if got := m.Implies(fa, fb); got != want {
			t.Fatalf("Implies(%#x,%#x) = %v, want %v", ta, tb, got, want)
		}
		// f implies f∨g, f∧g implies f.
		if !m.Implies(fa, m.Or(fa, fb)) || !m.Implies(m.And(fa, fb), fa) {
			t.Fatal("basic implication laws violated")
		}
	}
}

func TestAndNOrN(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(5))
	if m.AndN() != One || m.OrN() != Zero {
		t.Fatal("empty fold identities wrong")
	}
	tabs := randTables(rng, n, 5)
	fs := make([]Ref, len(tabs))
	wantAnd := tableMask(n)
	wantOr := uint64(0)
	for i, tb := range tabs {
		fs[i] = truthToBDD(m, n, tb)
		wantAnd &= tb
		wantOr |= tb
	}
	if got := bddToTruth(m, m.AndN(fs...), n); got != wantAnd {
		t.Fatalf("AndN = %#x, want %#x", got, wantAnd)
	}
	if got := bddToTruth(m, m.OrN(fs...), n); got != wantOr {
		t.Fatalf("OrN = %#x, want %#x", got, wantOr)
	}
}

// TestQuickBooleanAlgebra drives randomized algebraic laws through
// testing/quick.
func TestQuickBooleanAlgebra(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	mask := tableMask(n)
	law := func(ta, tb, tc uint64) bool {
		ta, tb, tc = ta&mask, tb&mask, tc&mask
		a := truthToBDD(m, n, ta)
		b := truthToBDD(m, n, tb)
		c := truthToBDD(m, n, tc)
		// Distributivity.
		if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
			return false
		}
		// Absorption.
		if m.Or(a, m.And(a, b)) != a {
			return false
		}
		// Complementation.
		if m.And(a, a.Not()) != Zero || m.Or(a, a.Not()) != One {
			return false
		}
		// Associativity via canonical refs.
		if m.Xor(m.Xor(a, b), c) != m.Xor(a, m.Xor(b, c)) {
			return false
		}
		// ITE consensus: ITE(a,b,c) == (a∧b)∨(¬a∧c).
		return m.ITE(a, b, c) == m.Or(m.And(a, b), m.And(a.Not(), c))
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	checkInv(t, m)
}

func TestNodeLimit(t *testing.T) {
	m := newTestManager(t, 20)
	m.SetNodeLimit(30)
	err := Guard(func() {
		acc := One
		for i := 0; i < 20; i++ {
			// Parity function grows linearly but with 20 vars it must
			// cross the 30-node budget.
			acc = m.Xor(acc, m.VarRef(Var(i)))
		}
	})
	if err == nil {
		t.Fatal("expected LimitError")
	}
	le, ok := err.(*LimitError)
	if !ok {
		t.Fatalf("got %T, want *LimitError", err)
	}
	if le.Limit != 30 {
		t.Fatalf("LimitError.Limit = %d, want 30", le.Limit)
	}
	if le.Error() == "" {
		t.Fatal("empty error message")
	}
	// Manager must remain usable after the abort.
	m.SetNodeLimit(0)
	x := m.And(m.VarRef(0), m.VarRef(1))
	if x == Zero || x == One {
		t.Fatal("manager unusable after limit abort")
	}
	checkInv(t, m)
}

func TestGuardPassesThroughOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Guard swallowed a non-limit panic")
		}
	}()
	_ = Guard(func() { panic("boom") })
}

func TestStatsAndMemEstimate(t *testing.T) {
	m := newTestManager(t, 8)
	for i := 0; i < 7; i++ {
		m.And(m.VarRef(Var(i)), m.VarRef(Var(i+1)))
	}
	s := m.Stats()
	if s.Nodes < 9 {
		t.Fatalf("expected at least 9 live nodes, got %d", s.Nodes)
	}
	if s.Vars != 8 {
		t.Fatalf("Stats.Vars = %d, want 8", s.Vars)
	}
	if s.CacheLookups == 0 {
		t.Fatal("no cache lookups recorded")
	}
	if m.MemEstimate() <= 0 {
		t.Fatal("MemEstimate not positive")
	}
	if m.PeakNodes() < s.Nodes {
		t.Fatal("peak below live count")
	}
}

func TestVarNames(t *testing.T) {
	m := New()
	v := m.NewVar("clk")
	if m.VarName(v) != "clk" {
		t.Fatalf("VarName = %q", m.VarName(v))
	}
	anon := m.NewVar("")
	if m.VarName(anon) != "v1" {
		t.Fatalf("anonymous VarName = %q, want v1", m.VarName(anon))
	}
	if m.VarName(Var(99)) == "" {
		t.Fatal("out-of-range VarName should return placeholder")
	}
	vs := m.NewVars("d", 3)
	if len(vs) != 3 || m.VarName(vs[2]) != "d2" {
		t.Fatalf("NewVars naming wrong: %v", vs)
	}
}

func TestUniqueTableGrowth(t *testing.T) {
	// Force enough distinct nodes to trigger several bucket doublings.
	m := NewWithSize(16, 10)
	n := 14
	m.NewVars("x", n)
	rng := rand.New(rand.NewSource(7))
	acc := Zero
	for i := 0; i < 200; i++ {
		cube := One
		for j := 0; j < n; j++ {
			v := m.VarRef(Var(j))
			if rng.Intn(2) == 0 {
				v = v.Not()
			}
			cube = m.And(cube, v)
		}
		acc = m.Or(acc, cube)
	}
	if acc == Zero {
		t.Fatal("accumulated nothing")
	}
	checkInv(t, m)
}
