package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// --- RestrictMulti (Section V: simplify by multiple care sets) ---------

// TestRestrictMultiAgreement: wherever ALL care sets hold, the result
// equals f — the defining property.
func TestRestrictMultiAgreement(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	mask := tableMask(n)
	prop := func(tf, tc1, tc2, tc3 uint64) bool {
		tf &= mask
		cares := []uint64{tc1 & mask, tc2 & mask, tc3 & mask}
		f := truthToBDD(m, n, tf)
		cs := make([]Ref, len(cares))
		careAll := mask
		for i, tc := range cares {
			cs[i] = truthToBDD(m, n, tc)
			careAll &= tc
		}
		r := m.RestrictMulti(f, cs)
		rt := bddToTruth(m, r, n)
		return (rt^tf)&careAll == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	checkInv(t, m)
}

func TestRestrictMultiEdgeCases(t *testing.T) {
	m := newTestManager(t, 4)
	x, y := m.VarRef(0), m.VarRef(1)
	f := m.Or(m.And(x, y), m.And(x.Not(), y.Not()))

	if m.RestrictMulti(f, nil) != f {
		t.Fatal("empty family changed f")
	}
	if m.RestrictMulti(f, []Ref{One, One}) != f {
		t.Fatal("all-One family changed f")
	}
	if m.RestrictMulti(f, []Ref{x, Zero}) != f {
		t.Fatal("family containing Zero should return f (empty care set)")
	}
	if m.RestrictMulti(One, []Ref{x}) != One || m.RestrictMulti(Zero, []Ref{x}) != Zero {
		t.Fatal("constants changed")
	}
	// Single care set: semantics must match plain Restrict's contract
	// (agreement on the care set), though the chosen don't-care values
	// may differ.
	r1 := m.RestrictMulti(f, []Ref{x})
	if m.And(m.Xor(r1, f), x) != Zero {
		t.Fatal("single-care RestrictMulti disagrees on the care set")
	}
}

// TestRestrictMultiBeatsSequential reproduces the Section V scenario:
// two care sets that individually blow f up but jointly collapse it.
func TestRestrictMultiBeatsSequential(t *testing.T) {
	m := newTestManager(t, 6)
	x0, x1, x2, x3, x4 := m.VarRef(0), m.VarRef(1), m.VarRef(2), m.VarRef(3), m.VarRef(4)

	// x4's coefficient vanishes only under BOTH care sets: c1 forces
	// x0==x1 and c2 forces x2==x3, so (x0⊕x1) ∨ (x2⊕x3) becomes 0 and f
	// collapses to x0⊕x2. Simplifying by either care set alone cannot
	// eliminate x4.
	coef := m.Or(m.Xor(x0, x1), m.Xor(x2, x3))
	f := m.Xor(m.Xor(x0, x2), m.And(coef, x4))
	c1 := m.Xnor(x0, x1)
	c2 := m.Xnor(x2, x3)

	joint := m.RestrictMulti(f, []Ref{c1, c2})
	explicit := m.Restrict(f, m.And(c1, c2))

	// Agreement with f on c1 ∧ c2, like the explicit-conjunction route.
	care := m.And(c1, c2)
	if m.And(m.Xor(joint, f), care) != Zero {
		t.Fatal("joint simplification disagrees on the joint care set")
	}
	// The simplification quality matches having built the conjunction:
	// x4 drops out and the result is the 3-node x0⊕x2.
	if joint != explicit {
		t.Fatalf("joint %s differs from explicit-conjunction restrict %s",
			m.String(joint), m.String(explicit))
	}
	for _, v := range m.Support(joint) {
		if v == 4 {
			t.Fatalf("joint care sets did not eliminate x4 (support %v)", m.Support(joint))
		}
	}
	// Simplifying by either care set alone keeps x4, demonstrating why
	// Section V wants the simultaneous routine.
	only1 := m.RestrictMulti(f, []Ref{c1})
	hasX4 := false
	for _, v := range m.Support(only1) {
		if v == 4 {
			hasX4 = true
		}
	}
	if !hasX4 {
		t.Fatal("single care set unexpectedly eliminated x4; scenario lost its point")
	}
}

// --- Bounded operations (Section V: abort on size) ----------------------

func TestAndBoundedWithinBudget(t *testing.T) {
	m := newTestManager(t, 6)
	a := m.And(m.VarRef(0), m.VarRef(1))
	b := m.And(m.VarRef(2), m.VarRef(3))
	r, ok := m.AndBounded(a, b, 1000)
	if !ok || r != m.And(a, b) {
		t.Fatal("in-budget AndBounded failed")
	}
	// Unbounded convention.
	if r, ok := m.AndBounded(a, b, 0); !ok || r != m.And(a, b) {
		t.Fatal("budget 0 should be unbounded")
	}
}

func TestAndBoundedAborts(t *testing.T) {
	const n = 16
	m := newTestManager(t, n)
	// Two parity functions over disjoint halves: their conjunction has
	// ~2x nodes; a budget of 1 node cannot hold it (fresh manager state
	// means everything must be allocated).
	a, b := One, One
	for i := 0; i < n/2; i++ {
		a = m.Xor(a, m.VarRef(Var(i)))
		b = m.Xor(b, m.VarRef(Var(n/2+i)))
	}
	before := m.NumNodes()
	_, ok := m.AndBounded(a, b, 1)
	if ok {
		t.Fatal("AndBounded did not abort on a 1-node budget")
	}
	// Manager remains usable, limit restored.
	if m.NodeLimit() != 0 {
		t.Fatalf("node limit not restored: %d", m.NodeLimit())
	}
	r := m.And(a, b)
	if r == Zero || r == One {
		t.Fatal("manager broken after bounded abort")
	}
	_ = before
	checkInv(t, m)
}

func TestAndBoundedRespectsOuterLimit(t *testing.T) {
	m := newTestManager(t, 16)
	a, b := One, One
	for i := 0; i < 8; i++ {
		a = m.Xor(a, m.VarRef(Var(i)))
		b = m.Xor(b, m.VarRef(Var(8+i)))
	}
	m.SetNodeLimit(m.NumNodes() + 2) // run-level budget nearly exhausted
	err := Guard(func() {
		// A generous operation budget must NOT override the run budget.
		m.AndBounded(a, b, 1_000_000)
	})
	m.SetNodeLimit(0)
	if err == nil {
		t.Fatal("outer node limit was swallowed by AndBounded")
	}
}

func TestITEBounded(t *testing.T) {
	m := newTestManager(t, 12)
	f := m.VarRef(0)
	g := m.Xor(m.VarRef(1), m.VarRef(2))
	h := m.Xor(m.VarRef(3), m.VarRef(4))
	r, ok := m.ITEBounded(f, g, h, 1000)
	if !ok || r != m.ITE(f, g, h) {
		t.Fatal("in-budget ITEBounded failed")
	}
}

// --- General cofactor ----------------------------------------------------

func TestCofactorLitTruthTables(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(111))
	for _, tbl := range randTables(rng, n, 40) {
		f := truthToBDD(m, n, tbl)
		for v := 0; v < n; v++ {
			lo, hi := m.CofactorVar(f, Var(v))
			wantLo := composeTruth(tbl, 0, n, v)            // v <- false
			wantHi := composeTruth(tbl, tableMask(n), n, v) // v <- true
			if got := bddToTruth(m, lo, n); got != wantLo {
				t.Fatalf("CofactorLit(%#x, x%d, false) = %#x, want %#x", tbl, v, got, wantLo)
			}
			if got := bddToTruth(m, hi, n); got != wantHi {
				t.Fatalf("CofactorLit(%#x, x%d, true) = %#x, want %#x", tbl, v, got, wantHi)
			}
			// Shannon reconstruction.
			if m.ITE(m.VarRef(Var(v)), hi, lo) != f {
				t.Fatal("Shannon reconstruction failed")
			}
			// Cofactors never mention the variable.
			for _, s := range m.Support(lo) {
				if s == Var(v) {
					t.Fatal("low cofactor still depends on the variable")
				}
			}
		}
	}
	checkInv(t, m)
}

func TestCofactorLitBelowTop(t *testing.T) {
	m := newTestManager(t, 4)
	// f's top is x0 but we cofactor on x2, deep in the graph.
	f := m.Or(m.And(m.VarRef(0), m.VarRef(2)), m.And(m.VarRef(1), m.VarRef(2).Not()))
	hi := m.CofactorLit(f, 2, true)
	if hi != m.Or(m.VarRef(0), bddAnd(m, m.VarRef(1), Zero)) {
		// x2=1: f = x0 ∨ (x1 ∧ 0) = x0.
		if hi != m.VarRef(0) {
			t.Fatalf("deep cofactor wrong: %s", m.String(hi))
		}
	}
	lo := m.CofactorLit(f, 2, false)
	if lo != m.VarRef(1) {
		t.Fatalf("deep cofactor (false) wrong: %s", m.String(lo))
	}
}

func bddAnd(m *Manager, a, b Ref) Ref { return m.And(a, b) }

// --- Deadline ------------------------------------------------------------

func TestDeadlineAbortsLongOperation(t *testing.T) {
	m := newTestManager(t, 40)
	m.SetDeadline(time.Now().Add(-time.Second)) // already expired
	err := Guard(func() {
		acc := One
		for i := 0; i < 40; i++ {
			acc = m.Xor(acc, m.VarRef(Var(i)))
		}
		// Force enough fresh allocations to pass a deadline check.
		f := Zero
		for i := 0; i+1 < 40; i++ {
			f = m.Or(f, m.And(m.VarRef(Var(i)), m.VarRef(Var(i+1))))
		}
	})
	m.SetDeadline(time.Time{})
	if err == nil {
		t.Skip("operation finished before the first deadline check (too few allocations)")
	}
	if _, ok := err.(*DeadlineError); !ok {
		t.Fatalf("got %T, want *DeadlineError", err)
	}
	if err.Error() == "" {
		t.Fatal("empty deadline error")
	}
	// Manager remains usable after the abort and with deadline cleared.
	if m.And(m.VarRef(0), m.VarRef(1)) == Zero {
		t.Fatal("manager broken after deadline abort")
	}
}
