package bdd

// Simultaneous functional composition ("vector compose"). This is the
// workhorse behind BackImage for machines given as next-state functions:
// BackImage(τ, G) = ∀inputs. G[state ← f(state, inputs)], which by the
// paper's Theorem 1 distributes over the conjuncts of an implicitly
// conjoined list.

// Substitution maps variables to replacement functions and carries a memo
// table so that composing many functions (e.g. every conjunct of a list)
// against the same substitution shares work. The memo is invalidated
// automatically when the Manager garbage-collects.
type Substitution struct {
	m     *Manager
	subst map[uint32]Ref // level -> replacement
	memo  map[Ref]Ref
	epoch uint64
}

// NewSubstitution creates an empty substitution on m.
func (m *Manager) NewSubstitution() *Substitution {
	return &Substitution{
		m:     m,
		subst: make(map[uint32]Ref),
		memo:  make(map[Ref]Ref),
		epoch: m.epoch,
	}
}

// Set maps variable v to the function g. Setting a variable twice
// replaces the earlier mapping. All mappings apply simultaneously.
func (s *Substitution) Set(v Var, g Ref) {
	s.subst[uint32(v)] = g
	s.memo = make(map[Ref]Ref) // mappings changed: drop memo
}

// Pairs returns the number of mapped variables.
func (s *Substitution) Pairs() int { return len(s.subst) }

// Roots returns every replacement function currently mapped (useful for
// protecting them across GC).
func (s *Substitution) Roots() []Ref {
	rs := make([]Ref, 0, len(s.subst))
	for _, g := range s.subst {
		rs = append(rs, g)
	}
	return rs
}

// Compose returns f with every mapped variable simultaneously replaced by
// its image function.
func (s *Substitution) Compose(f Ref) Ref {
	if s.epoch != s.m.epoch {
		s.memo = make(map[Ref]Ref)
		s.epoch = s.m.epoch
	}
	if len(s.subst) == 0 {
		return f
	}
	return s.compose(f)
}

func (s *Substitution) compose(f Ref) Ref {
	if f.IsConst() {
		return f
	}
	// Memoize on the regular (uncomplemented) reference; complement
	// commutes with composition.
	reg := f &^ 1
	if r, ok := s.memo[reg]; ok {
		return r ^ (f & 1)
	}
	m := s.m
	level := m.Level(reg)
	lo := s.compose(m.Low(reg))
	hi := s.compose(m.High(reg))

	var branch Ref
	if g, ok := s.subst[level]; ok {
		branch = g
	} else {
		branch = m.mk(level, Zero, One)
	}
	r := m.ite(branch, hi, lo)
	s.memo[reg] = r
	return r ^ (f & 1)
}

// Compose substitutes a single variable: f[v <- g].
func (m *Manager) Compose(f Ref, v Var, g Ref) Ref {
	s := m.NewSubstitution()
	s.Set(v, g)
	return s.Compose(f)
}

// Rename returns f with each variable from[i] replaced by to[i]. The two
// slices must have equal length and the target variables must not appear
// in f's support overlapping in a way that would capture (simultaneous
// substitution makes the common disjoint-rename case safe regardless of
// order).
func (m *Manager) Rename(f Ref, from, to []Var) Ref {
	if len(from) != len(to) {
		panic("bdd: Rename with mismatched variable lists")
	}
	s := m.NewSubstitution()
	for i := range from {
		s.Set(from[i], m.VarRef(to[i]))
	}
	return s.Compose(f)
}
