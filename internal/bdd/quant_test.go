package bdd

import (
	"math/rand"
	"testing"
)

// quantTruth computes ∃/∀ over a variable on a truth table.
func existsTruth(tbl uint64, n, v int) uint64 {
	var out uint64
	for i := 0; i < int(tableBits(n)); i++ {
		j := i ^ (1 << uint(v)) // flip variable v
		if tbl&(1<<uint(i)) != 0 || tbl&(1<<uint(j)) != 0 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func forallTruth(tbl uint64, n, v int) uint64 {
	var out uint64
	for i := 0; i < int(tableBits(n)); i++ {
		j := i ^ (1 << uint(v))
		if tbl&(1<<uint(i)) != 0 && tbl&(1<<uint(j)) != 0 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestMkCubeAndCubeVars(t *testing.T) {
	m := newTestManager(t, 6)
	for _, vars := range [][]Var{{}, {0}, {3}, {0, 2, 4}, {5, 1, 3}, {0, 1, 2, 3, 4, 5}} {
		cube := m.MkCube(vars)
		got := m.CubeVars(cube)
		want := append([]Var(nil), vars...)
		// CubeVars returns ascending order.
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && want[j] < want[j-1]; j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		if len(got) != len(want) {
			t.Fatalf("CubeVars(%v) = %v", vars, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("CubeVars(%v) = %v, want %v", vars, got, want)
			}
		}
		// Semantics: cube true iff all vars true.
		a := make([]bool, 6)
		for i := range a {
			a[i] = true
		}
		if !m.Eval(cube, a) {
			t.Fatal("cube false under all-true")
		}
		if len(vars) > 0 {
			a[vars[0]] = false
			if m.Eval(cube, a) {
				t.Fatal("cube true with a variable false")
			}
		}
	}
	// Non-cube input panics.
	defer func() {
		if recover() == nil {
			t.Fatal("CubeVars of non-cube did not panic")
		}
	}()
	m.CubeVars(m.Or(m.VarRef(0), m.VarRef(1)))
}

func TestExistsForAllTruthTables(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(11))
	for _, tbl := range randTables(rng, n, 40) {
		f := truthToBDD(m, n, tbl)
		for v := 0; v < n; v++ {
			cube := m.MkCube([]Var{Var(v)})
			if got := bddToTruth(m, m.Exists(f, cube), n); got != existsTruth(tbl, n, v) {
				t.Fatalf("Exists(%#x, x%d) = %#x, want %#x", tbl, v, got, existsTruth(tbl, n, v))
			}
			if got := bddToTruth(m, m.ForAll(f, cube), n); got != forallTruth(tbl, n, v) {
				t.Fatalf("ForAll(%#x, x%d) = %#x, want %#x", tbl, v, got, forallTruth(tbl, n, v))
			}
		}
		// Multi-variable cube == iterated single-variable quantification.
		cube := m.MkCube([]Var{0, 2, 3})
		want := existsTruth(existsTruth(existsTruth(tbl, n, 0), n, 2), n, 3)
		if got := bddToTruth(m, m.Exists(f, cube), n); got != want {
			t.Fatalf("multi-var Exists = %#x, want %#x", got, want)
		}
	}
	checkInv(t, m)
}

func TestExistsEdgeCases(t *testing.T) {
	m := newTestManager(t, 4)
	x := m.VarRef(0)
	cube := m.MkCube([]Var{0, 1})
	if m.Exists(One, cube) != One || m.Exists(Zero, cube) != Zero {
		t.Fatal("quantifying constants changed them")
	}
	if m.Exists(x, One) != x {
		t.Fatal("empty cube changed function")
	}
	if m.Exists(x, m.MkCube([]Var{0})) != One {
		t.Fatal("∃x.x != true")
	}
	if m.ForAll(x, m.MkCube([]Var{0})) != Zero {
		t.Fatal("∀x.x != false")
	}
	// Quantified variable not in support: identity.
	if m.Exists(x, m.MkCube([]Var{3})) != x {
		t.Fatal("quantifying non-support var changed function")
	}
}

func TestAndExistsMatchesComposition(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(12))
	tabs := randTables(rng, n, 16)
	cubes := [][]Var{{}, {0}, {1, 3}, {0, 2, 4}, {0, 1, 2, 3, 4}}
	for i, ta := range tabs {
		for _, tb := range tabs[:i+1] {
			fa := truthToBDD(m, n, ta)
			fb := truthToBDD(m, n, tb)
			for _, cv := range cubes {
				cube := m.MkCube(cv)
				want := m.Exists(m.And(fa, fb), cube)
				if got := m.AndExists(fa, fb, cube); got != want {
					t.Fatalf("AndExists(%#x,%#x,%v) mismatch", ta, tb, cv)
				}
			}
		}
	}
	checkInv(t, m)
}

func TestAndExistsShortCircuits(t *testing.T) {
	m := newTestManager(t, 4)
	x, y := m.VarRef(0), m.VarRef(1)
	cube := m.MkCube([]Var{0, 1})
	if m.AndExists(Zero, x, cube) != Zero {
		t.Fatal("AndExists with Zero operand")
	}
	if m.AndExists(x, x.Not(), cube) != Zero {
		t.Fatal("AndExists of complements")
	}
	if m.AndExists(One, y, cube) != m.Exists(y, cube) {
		t.Fatal("AndExists with One operand")
	}
	if m.AndExists(x, x, cube) != m.Exists(x, cube) {
		t.Fatal("AndExists of equal operands")
	}
	if m.AndExists(x, y, One) != m.And(x, y) {
		t.Fatal("AndExists with empty cube")
	}
}
