package bdd

import "sort"

// RestrictMulti simplifies f by the implicit conjunction of several care
// sets simultaneously, without ever building the conjunction — the
// routine the paper's Section V asks for:
//
//	"We really wish to simplify by c1 ∧ c2, which gives a smaller
//	 care-set, but we can't afford to build the BDD for c1 ∧ c2.
//	 What's needed, therefore, is a routine that simplifies using
//	 multiple BDDs simultaneously."
//
// The returned function agrees with f wherever ALL care sets hold.
// Sequentially applying Restrict once per care set does not achieve
// this: each pass sees only one care set's don't-cares, and (as the
// paper observes) the intermediate results can grow several-fold and get
// discarded. This recursion cofactors f and every care set together, so
// a point is don't-care as soon as any care set rules it out.
//
// Like Restrict, the empty care-set family (or all-constant-One family)
// returns f unchanged; a family containing Zero makes everything
// don't-care, and f itself is returned by convention.
func (m *Manager) RestrictMulti(f Ref, cares []Ref) Ref {
	cs := make([]Ref, 0, len(cares))
	for _, c := range cares {
		if c == Zero {
			return f // empty care set: no constraint to exploit
		}
		if c != One {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 || f.IsConst() {
		return f
	}
	r := &multiRestrict{m: m, memo: make(map[string]Ref)}
	out, dc := r.run(f, cs)
	if dc {
		return f
	}
	return out
}

// multiRestrict carries the memo table of one RestrictMulti call. The
// key includes the full care list, which varies along the recursion, so
// memoization is per-call rather than through the global computed cache.
type multiRestrict struct {
	m    *Manager
	memo map[string]Ref
}

// dcMarker distinguishes "this whole branch is don't-care" from ordinary
// results in the memo (Refs are only 32 bits; we store dc results under
// a flipped key prefix instead of widening every entry).
const (
	keyResult byte = 'r'
	keyDC     byte = 'd'
)

// run returns the simplified function and whether the entire branch is
// don't-care (some care set is identically false under the current path).
func (r *multiRestrict) run(f Ref, cares []Ref) (Ref, bool) {
	m := r.m

	// Normalize the care list: drop Ones, deduplicate, detect collapse.
	cs := cares[:0:0]
	for _, c := range cares {
		if c == Zero {
			return 0, true // no care points remain anywhere below here
		}
		if c == One {
			continue
		}
		cs = append(cs, c)
	}
	if len(cs) == 0 {
		return f, false
	}
	if f.IsConst() {
		return f, false
	}
	// f itself may be forced by the remaining care set: agreeing with f
	// on the care set allows returning constants when f covers it.
	for _, c := range cs {
		if f == c {
			return One, false
		}
		if f == c.Not() {
			return Zero, false
		}
	}

	key := r.key(f, cs)
	if v, ok := r.memo[string(keyResult)+key]; ok {
		return v, false
	}
	if _, ok := r.memo[string(keyDC)+key]; ok {
		return 0, true
	}

	// Top level across f and all care sets.
	top := m.Level(f)
	for _, c := range cs {
		if l := m.Level(c); l < top {
			top = l
		}
	}

	lo, hi := m.cofactor(f, top)
	csLo := make([]Ref, len(cs))
	csHi := make([]Ref, len(cs))
	for i, c := range cs {
		csLo[i], csHi[i] = m.cofactor(c, top)
	}

	rLo, dcLo := r.run(lo, csLo)
	rHi, dcHi := r.run(hi, csHi)

	var out Ref
	var dc bool
	switch {
	case dcLo && dcHi:
		dc = true
	case dcLo:
		out = rHi // the else-branch is entirely don't-care: drop the variable
	case dcHi:
		out = rLo
	default:
		out = m.mk(top, rLo, rHi)
	}
	if dc {
		r.memo[string(keyDC)+key] = 0
	} else {
		r.memo[string(keyResult)+key] = out
	}
	return out, dc
}

// key canonicalizes (f, care list) — order of care sets is irrelevant.
func (r *multiRestrict) key(f Ref, cs []Ref) string {
	sorted := append([]Ref(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, 4*(len(sorted)+1))
	buf = appendRef(buf, f)
	for _, c := range sorted {
		buf = appendRef(buf, c)
	}
	return string(buf)
}

func appendRef(buf []byte, r Ref) []byte {
	return append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
}
