package bdd

import (
	"math/rand"
	"testing"
)

func TestAllSatCoversExactly(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(141))
	for _, tbl := range randTables(rng, n, 40) {
		f := truthToBDD(m, n, tbl)
		// Union of all cubes == f, cubes pairwise disjoint.
		union := Zero
		cubes := m.AllSatCubes(f, 0)
		for i, cube := range cubes {
			c := m.CubeRef(cube)
			if c == Zero {
				t.Fatal("contradictory cube emitted")
			}
			if m.And(union, c) != Zero {
				t.Fatalf("cube %d overlaps earlier cubes (table %#x)", i, tbl)
			}
			union = m.Or(union, c)
		}
		if union != f {
			t.Fatalf("cube union != f for table %#x", tbl)
		}
		if len(cubes) != m.CountPaths(f) {
			t.Fatalf("CountPaths %d != emitted cubes %d", m.CountPaths(f), len(cubes))
		}
	}
}

func TestAllSatConstants(t *testing.T) {
	m := newTestManager(t, 3)
	if got := m.AllSatCubes(Zero, 0); got != nil {
		t.Fatal("Zero yielded cubes")
	}
	got := m.AllSatCubes(One, 0)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("One should yield exactly the empty cube, got %v", got)
	}
	if m.CountPaths(One) != 1 || m.CountPaths(Zero) != 0 {
		t.Fatal("CountPaths on constants wrong")
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := newTestManager(t, 4)
	f := One
	for i := 0; i < 4; i++ {
		f = m.And(f, m.Or(m.VarRef(Var(i)), m.VarRef(Var((i+1)%4))))
	}
	calls := 0
	m.AllSat(f, func([]Lit) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("early stop did not stop: %d calls", calls)
	}
	if got := m.AllSatCubes(f, 3); len(got) != 3 {
		t.Fatalf("AllSatCubes(max=3) returned %d cubes", len(got))
	}
}

func TestAllSatCubesAreIndependentCopies(t *testing.T) {
	m := newTestManager(t, 3)
	f := m.Or(m.VarRef(0), m.VarRef(1))
	cubes := m.AllSatCubes(f, 0)
	if len(cubes) < 2 {
		t.Fatalf("expected several cubes, got %d", len(cubes))
	}
	// Mutating one cube must not affect another (reuse bug guard).
	cubes[0][0].Val = !cubes[0][0].Val
	c1 := m.CubeRef(cubes[1])
	if !m.Implies(c1, f) {
		t.Fatal("later cube corrupted by mutation of earlier cube")
	}
}
