package bdd

// Static variable-order search. Classic BDD packages reorder
// destructively (in-place sifting); this package instead searches over
// static orders by transferring the functions of interest into scratch
// managers — simpler, obviously correct, and sufficient for the
// model-construction workflow where the order is chosen once. The search
// is Rudell-style greedy sifting: move each variable to its locally best
// position, repeat until a round yields no improvement.

// SiftOrder searches for a variable order minimizing the shared size of
// the given roots. It returns a varMap suitable for Transfer (varMap[v]
// is the new position of source variable v) and the achieved shared
// size. maxRounds bounds the outer loop (0 means run to convergence).
//
// Cost: each candidate position costs one Transfer of all roots, so a
// round is O(n²) transfers. Intended for models with tens of variables,
// or for offline order exploration.
func SiftOrder(src *Manager, roots []Ref, maxRounds int) ([]Var, int) {
	n := src.NumVars()
	order := make([]Var, n) // order[pos] = source variable at that position
	for i := range order {
		order[i] = Var(i)
	}

	best := evalOrder(src, roots, order)
	if maxRounds <= 0 {
		maxRounds = n // sifting converges long before this in practice
	}

	for round := 0; round < maxRounds; round++ {
		improved := false
		for v := 0; v < n; v++ {
			cur := positionOf(order, Var(v))
			bestPos, bestSize := cur, best
			for pos := 0; pos < n; pos++ {
				if pos == cur {
					continue
				}
				cand := moveVar(order, cur, pos)
				if size := evalOrder(src, roots, cand); size < bestSize {
					bestPos, bestSize = pos, size
				}
			}
			if bestPos != cur {
				order = moveVar(order, cur, bestPos)
				best = bestSize
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	varMap := make([]Var, n)
	for pos, v := range order {
		varMap[v] = Var(pos)
	}
	return varMap, best
}

// EvalOrder reports the shared size of the roots under the order given
// as a varMap (varMap[v] = position of source variable v). Exposed for
// hand-rolled order experiments.
func EvalOrder(src *Manager, roots []Ref, varMap []Var) int {
	scratch := NewWithSize(1024, 14)
	scratch.NewVars("o", src.NumVars())
	out := TransferAll(scratch, src, roots, varMap)
	return scratch.SharedSize(out...)
}

func evalOrder(src *Manager, roots []Ref, order []Var) int {
	n := len(order)
	varMap := make([]Var, n)
	for pos, v := range order {
		varMap[v] = Var(pos)
	}
	return EvalOrder(src, roots, varMap)
}

func positionOf(order []Var, v Var) int {
	for i, o := range order {
		if o == v {
			return i
		}
	}
	panic("bdd: variable missing from order")
}

// moveVar returns a copy of order with the variable at position from
// moved to position to, shifting the variables in between.
func moveVar(order []Var, from, to int) []Var {
	out := make([]Var, 0, len(order))
	v := order[from]
	rest := append(append([]Var(nil), order[:from]...), order[from+1:]...)
	out = append(out, rest[:to]...)
	out = append(out, v)
	out = append(out, rest[to:]...)
	return out
}
