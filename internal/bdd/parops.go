package bdd

// Fork/join parallel variants of the core recursions. Each Par* entry
// point degrades gracefully: on a sequential manager (or a shared one
// sized for a single worker) it IS the sequential operation, so callers
// up the stack (fsm image computation, the core merge policy) can route
// through Par* unconditionally.
//
// The parallelization is the standard one for BDD packages (Sylvan): the
// low/high cofactor sub-calls of a recursion step are independent, so
// fork them — but only in the top forkDepth levels, where sub-problems
// are big enough to amortize a goroutine handoff. Below the cutoff the
// recursion continues on the plain sequential functions, which share the
// same (concurrent) unique table and computed cache, so the two halves
// of the recursion cooperate through memoization exactly as one.
//
// Determinism: within one manager equal functions have equal Refs
// regardless of interleaving (the unique table canonicalizes), so a Par*
// call returns the exact Ref its sequential counterpart would. Only
// statistics and internal allocation order vary between runs.

// ParITE is the fork/join parallel form of ITE. It returns exactly
// ITE(f, g, h) — the same Ref — scheduling independent cofactor
// sub-calls onto the manager's bounded fork pool.
func (m *Manager) ParITE(f, g, h Ref) Ref {
	s := m.shared
	if s == nil || s.forkDepth <= 0 || s.fork.Size() < 2 {
		return m.ite(f, g, h)
	}
	s.beginOp()
	defer s.endOp()
	return m.parIte(f, g, h, 0)
}

// ParAnd returns the conjunction of f and g, computed in parallel.
func (m *Manager) ParAnd(f, g Ref) Ref { return m.ParITE(f, g, Zero) }

// ParOr returns the disjunction of f and g, computed in parallel.
func (m *Manager) ParOr(f, g Ref) Ref { return m.ParITE(f, One, g) }

// ParAndN folds And over its arguments as a balanced parallel reduction
// tree (AndN's linear fold would serialize the whole conjunction);
// ParAndN() is One. The result Ref is identical to AndN's by canonicity.
func (m *Manager) ParAndN(fs ...Ref) Ref {
	s := m.shared
	if s == nil || s.forkDepth <= 0 || s.fork.Size() < 2 {
		return m.AndN(fs...)
	}
	s.beginOp()
	defer s.endOp()
	return m.parAndRange(fs, 0)
}

func (m *Manager) parAndRange(fs []Ref, depth int) Ref {
	switch len(fs) {
	case 0:
		return One
	case 1:
		return fs[0]
	case 2:
		return m.parIte(fs[0], fs[1], Zero, depth)
	}
	mid := len(fs) / 2
	var a, b Ref
	if depth < m.shared.forkDepth {
		m.shared.fork.Do(
			func() { a = m.parAndRange(fs[:mid], depth+1) },
			func() { b = m.parAndRange(fs[mid:], depth+1) },
		)
	} else {
		a = m.parAndRange(fs[:mid], depth+1)
		b = m.parAndRange(fs[mid:], depth+1)
	}
	if a == Zero || b == Zero {
		return Zero
	}
	return m.parIte(a, b, Zero, depth)
}

// ParAndExists is the fork/join parallel relational product: exactly
// AndExists(f, g, cube), with cofactor sub-calls forked above the
// cutoff. This is the workhorse behind parallel image computation.
func (m *Manager) ParAndExists(f, g, cube Ref) Ref {
	s := m.shared
	if s == nil || s.forkDepth <= 0 || s.fork.Size() < 2 {
		return m.andExists(f, g, cube)
	}
	s.beginOp()
	defer s.endOp()
	return m.parAndExists(f, g, cube, 0)
}

// parIte mirrors ite with forked cofactor sub-calls above the cutoff.
func (m *Manager) parIte(f, g, h Ref, depth int) Ref {
	if depth >= m.shared.forkDepth {
		return m.ite(f, g, h)
	}
	f, g, h, outc, res, done := m.iteNormal(f, g, h)
	if done {
		return res
	}
	if r, ok := m.cacheLookup(opITE, f, g, h); ok {
		return r ^ outc
	}

	top := m.iteTop(f, g, h)
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)

	var lo, hi Ref
	m.shared.fork.Do(
		func() { lo = m.parIte(f0, g0, h0, depth+1) },
		func() { hi = m.parIte(f1, g1, h1, depth+1) },
	)
	r := m.mk(top, lo, hi)
	m.cacheStore(opITE, f, g, h, r)
	return r ^ outc
}

// parAndExists mirrors andExists with forked cofactor sub-calls. The
// sequential version's early exit (skip the high branch when the low
// branch quantifies to One) is necessarily forgone on forked steps; the
// cache keeps the redundant work bounded.
func (m *Manager) parAndExists(f, g, cube Ref, depth int) Ref {
	if depth >= m.shared.forkDepth {
		return m.andExists(f, g, cube)
	}
	// Terminal and coincidence cases (as andExists).
	switch {
	case f == Zero || g == Zero || f == g.Not():
		return Zero
	case f == One && g == One:
		return One
	case f == One || f == g:
		return m.Exists(g, cube)
	case g == One:
		return m.Exists(f, cube)
	}
	if cube == One {
		return m.parIte(f, g, Zero, depth)
	}
	if f.index() > g.index() {
		f, g = g, f
	}

	top := m.Level(f)
	if l := m.Level(g); l < top {
		top = l
	}
	for !cube.IsConst() && m.Level(cube) < top {
		cube = m.High(cube)
	}
	if cube == One {
		return m.parIte(f, g, Zero, depth)
	}

	if r, ok := m.cacheLookup(opAndExists, f, g, cube); ok {
		return r
	}

	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	var r Ref
	if m.Level(cube) == top {
		rest := m.High(cube)
		var r0, r1 Ref
		m.shared.fork.Do(
			func() { r0 = m.parAndExists(f0, g0, rest, depth+1) },
			func() { r1 = m.parAndExists(f1, g1, rest, depth+1) },
		)
		r = m.parIte(r0, One, r1, depth)
	} else {
		var lo, hi Ref
		m.shared.fork.Do(
			func() { lo = m.parAndExists(f0, g0, cube, depth+1) },
			func() { hi = m.parAndExists(f1, g1, cube, depth+1) },
		)
		r = m.mk(top, lo, hi)
	}
	m.cacheStore(opAndExists, f, g, cube, r)
	return r
}
