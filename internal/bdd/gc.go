package bdd

// Reference counting and garbage collection.
//
// The collector runs only when explicitly invoked (typically between
// traversal iterations), never in the middle of an operation, so
// intermediate results of a running recursion can never be reclaimed out
// from under it. Roots are the externally reference-counted nodes.

// Protect increments the external reference count of f's node and returns
// f for convenient chaining. Constants are always live.
func (m *Manager) Protect(f Ref) Ref {
	if !f.IsConst() {
		m.at(f.index()).refs++
	}
	return f
}

// ProtectPermanent marks f as a permanent GC root: the first call per
// (Manager, Ref) increments the external reference count, repeated calls
// are no-ops. Use it for values that must survive every collection for
// the manager's lifetime — machine next-state functions, property BDDs —
// where the caller re-registers the same Refs on every run: repeated
// runs then cannot inflate the refcount without bound. Permanent roots
// are never released (there is no matching Unprotect).
func (m *Manager) ProtectPermanent(f Ref) Ref {
	if f.IsConst() {
		return f
	}
	if m.permRoots == nil {
		m.permRoots = make(map[Ref]struct{})
	}
	if _, done := m.permRoots[f]; done {
		return f
	}
	m.permRoots[f] = struct{}{}
	m.at(f.index()).refs++
	return f
}

// ExternalRefs returns f's external reference count — its strength as a
// GC root. Constants report 0 (they are unconditionally live). Intended
// for tests asserting Protect/Unprotect balance across runs.
func (m *Manager) ExternalRefs(f Ref) int {
	if f.IsConst() {
		return 0
	}
	return int(m.at(f.index()).refs)
}

// Unprotect decrements the external reference count of f's node. It
// panics if the count would go negative, which indicates a Protect /
// Unprotect imbalance in the caller.
func (m *Manager) Unprotect(f Ref) {
	if f.IsConst() {
		return
	}
	n := m.at(f.index())
	if n.refs == 0 {
		panic("bdd: Unprotect without matching Protect")
	}
	n.refs--
}

// GC reclaims every node not reachable from a protected root, returning
// the number of nodes freed. The computed cache is cleared (an epoch
// bump; see computedCache.clear) and the unique table rebuilt;
// long-lived Substitution memos notice via the epoch.
//
// On a shared-mode Manager, GC requires quiescence: it is stop-the-world
// by contract (callers collect between iterations, after pool joins). If
// a parallel entry point is still in flight it refuses to run and
// returns 0; GCDeferred counts those refusals.
func (m *Manager) GC() int {
	if s := m.shared; s != nil {
		return s.gc(m)
	}
	marked := make([]bool, len(m.nodes))
	marked[0] = true // terminal

	var stack []uint32
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level != freeLevel && n.refs > 0 {
			marked[i] = true
			stack = append(stack, uint32(i))
		}
	}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &m.nodes[idx]
		for _, ch := range [2]Ref{n.low, n.high} {
			ci := ch.index()
			if !marked[ci] {
				marked[ci] = true
				stack = append(stack, ci)
			}
		}
	}

	freed := 0
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel || marked[i] {
			continue
		}
		n.level = freeLevel
		n.next = m.free
		m.free = int32(i)
		m.freeCount++
		freed++
	}

	if freed > 0 {
		m.stats.Nodes -= freed
		m.stats.FreedNodes += freed
		m.rebuildUnique()
		m.cache.clear()
		m.epoch++
	}
	m.stats.GCs++
	return freed
}

// rebuildUnique rehashes all live nodes after a sweep.
func (m *Manager) rebuildUnique() {
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		h := hash3(n.level, n.low, n.high) & m.bucketMask
		n.next = m.buckets[h]
		m.buckets[h] = int32(i)
	}
}

// CheckInvariants validates the structural invariants of the node pool:
// canonical complement edges, ordered levels, no duplicate triples, and
// free-list consistency. Intended for tests; cost is linear in the pool.
// On shared-mode managers it requires quiescence.
func (m *Manager) CheckInvariants() error {
	if s := m.shared; s != nil {
		return s.checkInvariants(m)
	}
	seen := make(map[[3]uint32]int32, len(m.nodes))
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		if n.level == terminalLevel {
			return errInvariant("non-root terminal node", i)
		}
		if int(n.level) >= len(m.varNames) {
			return errInvariant("level beyond declared variables", i)
		}
		if n.high.complement() {
			return errInvariant("complemented then-edge", i)
		}
		if n.low == n.high {
			return errInvariant("redundant node (low == high)", i)
		}
		for _, ch := range [2]Ref{n.low, n.high} {
			cn := &m.nodes[ch.index()]
			if cn.level == freeLevel {
				return errInvariant("edge to freed node", i)
			}
			if cn.level != terminalLevel && cn.level <= n.level {
				return errInvariant("child level not strictly below parent", i)
			}
		}
		key := [3]uint32{n.level, uint32(n.low), uint32(n.high)}
		if _, dup := seen[key]; dup {
			return errInvariant("duplicate triple in unique table", i)
		}
		seen[key] = int32(i)
	}
	return nil
}

type invariantError struct {
	msg  string
	node int
}

func (e *invariantError) Error() string {
	return "bdd: invariant violated: " + e.msg
}

func errInvariant(msg string, node int) error {
	return &invariantError{msg: msg, node: node}
}
