package bdd

// Shared-memory concurrent mode (NewShared): the node store, unique
// table, and computed cache variants that allow BDD operations to run
// from many goroutines against ONE Manager, in the style of Sylvan
// (van Dijk & van de Pol, TACAS 2015) but with the lock-granularity
// simplifications appropriate to this package's scale:
//
//   - The unique table is split into 64 shards selected by the low bits
//     of the (level, low, high) hash. Each shard owns a mutex covering
//     its bucket array, its node arena, and its free list; an insert
//     therefore locks exactly one shard, and two inserts contend only
//     when they hash to the same shard (1/64 of the time under a good
//     hash). A node's global index encodes its shard in the low
//     shardBits, so child lookups go straight to the owning shard with
//     no indirection table.
//
//   - Node memory is chunked: each shard grows by fixed-size chunks
//     published through atomic pointers, so the address of a node never
//     changes after it is created. Concurrent readers can then chase
//     (level, low, high) edges with plain loads — the edges of a
//     reachable node are immutable — while writers append new chunks
//     without invalidating anything. This is the property the sequential
//     append-grown []node slice fundamentally lacks.
//
//   - The computed cache is one direct-mapped array guarded by striped
//     mutexes (per the classical observation that correctness never
//     depends on a hit, racing writers may overwrite each other freely;
//     the stripes only prevent torn 24-byte entries). Entries carry the
//     same epoch tag as the sequential cache, so GC invalidation is an
//     epoch bump here too.
//
// Memory-ordering argument, in happens-before terms: a node's fields are
// written while holding its shard's lock, strictly before its Ref
// escapes. A Ref travels to another goroutine only through (a) a
// computed-cache entry, written and read under a stripe mutex, (b) a
// fork/join of par.Forker, which synchronizes through a channel, or (c)
// the caller's own join points (par.Pool.ForEach). Each route is a
// release/acquire edge, so the node writes happen-before any cross-
// goroutine read of them; thereafter the fields are immutable until GC.
// GC itself runs only at quiescence (no operations in flight — enforced
// by an in-flight counter and by the callers' structure: the verify
// harness collects between iterations, after every pool join).

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

const (
	// shardBits selects the unique-table shard from the low bits of the
	// node hash; a node's global index is local<<shardBits | shard.
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1

	// Node arenas grow in chunks of 2^chunkBits nodes. With
	// maxShardChunks chunk slots per shard the table tops out at
	// 64 shards × 2^10 chunks × 2^13 nodes = 2^29 nodes, matching the
	// Ref encoding's 31-bit index budget with room to spare.
	chunkBits      = 13
	chunkSize      = 1 << chunkBits
	chunkMask      = chunkSize - 1
	maxShardChunks = 1 << 10

	// cacheStripeBits fixes the number of computed-cache stripe locks.
	// 1024 stripes keep the probability that two of ~10 workers contend
	// on one stripe negligible while costing 64KB of padded mutexes.
	cacheStripeBits = 10
	cacheStripes    = 1 << cacheStripeBits
	cacheStripeMask = cacheStripes - 1

	// defaultForkDepth is the sequential cutoff for the parallel
	// recursions: ParITE and friends fork their cofactor sub-calls only
	// in the top defaultForkDepth levels of the recursion, giving up to
	// 2^defaultForkDepth ≈ 256 independent tasks — ample to keep a
	// worker pool busy — while the (exponentially more numerous) deep
	// calls run on the zero-overhead sequential path.
	defaultForkDepth = 8
)

// nodeChunk is one arena block; node addresses within a published chunk
// are stable for the life of the Manager.
type nodeChunk [chunkSize]node

// tableShard is 1/64th of the unique table: a bucket array of local node
// indices chained through node.next, plus the shard's arena and free
// list. All mutation happens under mu; reads of published node fields
// need no lock (see the memory-ordering argument above).
type tableShard struct {
	mu      sync.Mutex
	buckets []int32 // heads of hash chains (local indices; -1 ends)
	mask    uint32
	top     int32 // next fresh local index
	free    int32 // free-list head (local index; -1 empty)
	count   int   // live nodes in this shard
	chunks  []atomic.Pointer[nodeChunk]
}

// nodeAt returns the shard-local node record.
func (sh *tableShard) nodeAt(local uint32) *node {
	return &sh.chunks[local>>chunkBits].Load()[local&chunkMask]
}

// paddedMutex keeps adjacent stripe locks on distinct cache lines.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// stripedCache is the concurrent computed cache: one direct-mapped entry
// array, with mutation serialized per stripe so a reader can never
// observe a torn entry. A wrong-but-whole entry is impossible (the full
// key is compared on lookup) and a lost store merely costs a recompute.
type stripedCache struct {
	entries []cacheEntry
	mask    uint32
	cur     uint32 // epoch; mutated only at quiescence (GC)
	locks   [cacheStripes]paddedMutex
}

func (c *stripedCache) init(bits uint) {
	if bits < 8 {
		bits = 8
	}
	c.entries = make([]cacheEntry, 1<<bits)
	c.mask = uint32(len(c.entries) - 1)
	c.cur = 1
}

// clear invalidates all entries via an epoch bump (quiescent callers
// only). Wraparound handling mirrors computedCache.clear.
func (c *stripedCache) clear() {
	c.cur++
	if c.cur == 0 {
		for i := range c.entries {
			c.entries[i] = cacheEntry{op: opNone}
		}
		c.cur = 1
	}
}

// sharedState is everything a concurrent-mode Manager hangs off its
// shared field: the sharded table, the striped cache, atomic statistics,
// and the fork/join machinery of the parallel operations.
type sharedState struct {
	shards [numShards]tableShard
	cache  stripedCache

	nodeCount  atomic.Int64 // live nodes, incl. terminal
	peakNodes  atomic.Int64
	lookups    atomic.Uint64
	hits       atomic.Uint64
	uniqueHits atomic.Uint64
	mkTick     atomic.Uint64 // deadline/cancel stride counter for mk

	fork      *par.Forker
	forkDepth int

	// ops counts in-flight parallel entry points (ParITE/ParAndN/
	// ParAndExists); GC defers itself while it is non-zero.
	ops        atomic.Int32
	gcDeferred atomic.Int64
}

// NewShared creates a Manager in shared-memory concurrent mode sized for
// workers concurrent goroutines (workers <= 0 selects GOMAXPROCS) with a
// computed cache of 2^cacheBits entries. Unlike sequential managers the
// cache does not grow adaptively — swapping the entry array under
// concurrent readers is not worth the machinery — so size it for the
// workload up front (DefaultCacheBits is a sensible floor; verification
// runs want 20+).
//
// Concurrency contract: all operations (ITE/And/Or/.../Exists/AndExists,
// the Par* variants, Size/SharedSize/Support, Transfer FROM the manager)
// may run concurrently from any number of goroutines. Mutating
// configuration (NewVar, SetNodeLimit, ApplyBudget, SetDeadline),
// reference counting (Protect/Unprotect), GC, CheckInvariants, and
// AndBounded/ITEBounded require quiescence: no operation in flight. The
// verify/core drivers satisfy this by construction — configuration and
// collection happen on the driver goroutine between pool joins.
func NewShared(workers int, cacheBits uint) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &sharedState{
		fork:      par.NewForker(workers),
		forkDepth: defaultForkDepth,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.buckets = make([]int32, 1<<7)
		for j := range sh.buckets {
			sh.buckets[j] = -1
		}
		sh.mask = uint32(len(sh.buckets) - 1)
		sh.chunks = make([]atomic.Pointer[nodeChunk], maxShardChunks)
		sh.free = -1
	}
	// The terminal lives at global index 0 = shard 0, local 0, exactly as
	// in sequential mode, so One/Zero keep their fixed encodings.
	sh0 := &s.shards[0]
	c0 := new(nodeChunk)
	c0[0] = node{level: terminalLevel, low: One, high: One, next: -1}
	sh0.chunks[0].Store(c0)
	sh0.top = 1
	sh0.count = 1
	s.cache.init(cacheBits)
	s.nodeCount.Store(1)
	s.peakNodes.Store(1)
	return &Manager{free: -1, shared: s}
}

// IsShared reports whether the Manager is in shared-memory concurrent
// mode. The core evaluation layer uses it to decide whether the
// SharedManager scoring path is applicable.
func (m *Manager) IsShared() bool { return m.shared != nil }

// SetForkDepth overrides the sequential cutoff of the parallel
// recursions (quiescent callers only; no-op on sequential managers).
// Depth 0 disables forking entirely, which is useful for isolating the
// data-structure layer in tests.
func (m *Manager) SetForkDepth(d int) {
	if m.shared != nil {
		m.shared.forkDepth = d
	}
}

// nodeAt resolves a global node index to its record: the shard is the
// low shardBits, the rest is the shard-local index.
func (s *sharedState) nodeAt(idx uint32) *node {
	return s.shards[idx&shardMask].nodeAt(idx >> shardBits)
}

// refOf builds the global Ref for a shard-local node.
func refOf(shard, local uint32) Ref {
	return Ref((local<<shardBits | shard) << 1)
}

// mk is the concurrent unique-table lookup-or-insert. The caller
// (Manager.mk) has already canonicalized: low != high and high is
// regular. Probe and insert happen under the owning shard's lock; the
// node-limit and deadline checks run before it so a resource panic can
// never unwind with a shard locked.
func (s *sharedState) mk(m *Manager, level uint32, low, high Ref) Ref {
	if m.nodeLimit > 0 && int64(s.nodeCount.Load()) >= int64(m.nodeLimit) {
		panic(&LimitError{Limit: m.nodeLimit, Live: int(s.nodeCount.Load())})
	}
	if !m.deadline.IsZero() || m.ctx != nil {
		if s.mkTick.Add(1)%deadlineStride == 0 {
			m.CheckBudget()
		}
	}

	h := hash3(level, low, high)
	shard := h & shardMask
	sh := &s.shards[shard]

	sh.mu.Lock()
	b := (h >> shardBits) & sh.mask
	for i := sh.buckets[b]; i >= 0; {
		n := sh.nodeAt(uint32(i))
		if n.level == level && n.low == low && n.high == high {
			sh.mu.Unlock()
			s.uniqueHits.Add(1)
			return refOf(shard, uint32(i))
		}
		i = n.next
	}

	local, ok := sh.allocLocked()
	if !ok {
		sh.mu.Unlock()
		panic(&LimitError{Limit: numShards * maxShardChunks * chunkSize,
			Live: int(s.nodeCount.Load())})
	}
	n := sh.nodeAt(uint32(local))
	*n = node{level: level, low: low, high: high, next: sh.buckets[b]}
	sh.buckets[b] = local
	sh.count++
	if sh.count > len(sh.buckets) {
		sh.growLocked()
	}
	sh.mu.Unlock()

	nc := s.nodeCount.Add(1)
	for {
		peak := s.peakNodes.Load()
		if nc <= peak || s.peakNodes.CompareAndSwap(peak, nc) {
			break
		}
	}
	return refOf(shard, uint32(local))
}

// allocLocked returns a fresh shard-local index (free list first),
// publishing a new chunk when the arena is exhausted. Returns ok=false
// when the shard is at absolute capacity.
func (sh *tableShard) allocLocked() (int32, bool) {
	if sh.free >= 0 {
		l := sh.free
		sh.free = sh.nodeAt(uint32(l)).next
		return l, true
	}
	l := sh.top
	ci := uint32(l) >> chunkBits
	if ci >= uint32(len(sh.chunks)) {
		return 0, false
	}
	if sh.chunks[ci].Load() == nil {
		sh.chunks[ci].Store(new(nodeChunk))
	}
	sh.top = l + 1
	return l, true
}

// growLocked doubles the shard's bucket array and rehashes its live
// nodes (the terminal is never chained).
func (sh *tableShard) growLocked() {
	nb := make([]int32, len(sh.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	mask := uint32(len(nb) - 1)
	for l := int32(0); l < sh.top; l++ {
		n := sh.nodeAt(uint32(l))
		if n.level == freeLevel || n.level == terminalLevel {
			continue
		}
		b := (hash3(n.level, n.low, n.high) >> shardBits) & mask
		n.next = nb[b]
		nb[b] = l
	}
	sh.buckets = nb
	sh.mask = mask
}

// cacheLookup is the concurrent computed-cache probe; like its
// sequential counterpart it doubles as the strided deadline checkpoint.
func (s *sharedState) cacheLookup(m *Manager, op uint32, f, g, h Ref) (Ref, bool) {
	lk := s.lookups.Add(1)
	if lk%deadlineStride == 0 && (!m.deadline.IsZero() || m.ctx != nil) {
		m.CheckBudget()
	}
	c := &s.cache
	i := cacheHash(op, f, g, h) & c.mask
	mu := &c.locks[i&cacheStripeMask]
	mu.Lock()
	e := &c.entries[i]
	if e.epoch == c.cur && e.op == op && e.f == f && e.g == g && e.h == h {
		res := e.res
		mu.Unlock()
		s.hits.Add(1)
		return res, true
	}
	mu.Unlock()
	return 0, false
}

// cacheStore records a result; racing writers overwrite whole entries.
func (s *sharedState) cacheStore(op uint32, f, g, h, res Ref) {
	c := &s.cache
	i := cacheHash(op, f, g, h) & c.mask
	mu := &c.locks[i&cacheStripeMask]
	mu.Lock()
	c.entries[i] = cacheEntry{op: op, f: f, g: g, h: h, res: res, epoch: c.cur}
	mu.Unlock()
}

// beginOp / endOp bracket the parallel entry points for GC deferral.
func (s *sharedState) beginOp() { s.ops.Add(1) }
func (s *sharedState) endOp()   { s.ops.Add(-1) }

// GCDeferred returns how many collections were requested while parallel
// operations were in flight and therefore skipped (the caller retries at
// its next quiescent point). Always 0 on sequential managers.
func (m *Manager) GCDeferred() int {
	if s := m.shared; s != nil {
		return int(s.gcDeferred.Load())
	}
	return 0
}

// gc is the shared-mode collector: stop-the-world under the quiescence
// contract (it additionally refuses to run — deferring to the caller's
// next attempt — if any parallel entry point is still in flight). Mark
// from the refcounted roots, sweep each shard onto its free list,
// rebuild the shard's buckets, and invalidate the cache by epoch.
func (s *sharedState) gc(m *Manager) int {
	if s.ops.Load() != 0 {
		s.gcDeferred.Add(1)
		return 0
	}

	marked := make([][]bool, numShards)
	var stack []uint32
	for sid := range s.shards {
		sh := &s.shards[sid]
		marked[sid] = make([]bool, sh.top)
		for l := int32(0); l < sh.top; l++ {
			n := sh.nodeAt(uint32(l))
			if n.level != freeLevel && n.level != terminalLevel && n.refs > 0 {
				marked[sid][l] = true
				stack = append(stack, uint32(l)<<shardBits|uint32(sid))
			}
		}
	}
	marked[0][0] = true // terminal
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := s.nodeAt(idx)
		for _, ch := range [2]Ref{n.low, n.high} {
			ci := ch.index()
			sid, l := ci&shardMask, ci>>shardBits
			if !marked[sid][l] {
				marked[sid][l] = true
				stack = append(stack, ci)
			}
		}
	}

	freed := 0
	for sid := range s.shards {
		sh := &s.shards[sid]
		for i := range sh.buckets {
			sh.buckets[i] = -1
		}
		for l := int32(0); l < sh.top; l++ {
			n := sh.nodeAt(uint32(l))
			if n.level == freeLevel || n.level == terminalLevel {
				continue
			}
			if !marked[sid][l] {
				n.level = freeLevel
				n.next = sh.free
				sh.free = l
				sh.count--
				freed++
				continue
			}
			b := (hash3(n.level, n.low, n.high) >> shardBits) & sh.mask
			n.next = sh.buckets[b]
			sh.buckets[b] = l
		}
	}

	if freed > 0 {
		s.nodeCount.Add(int64(-freed))
		m.stats.FreedNodes += freed
		s.cache.clear()
		m.epoch++
	}
	m.stats.GCs++
	return freed
}

// memEstimate mirrors the sequential MemEstimate for shared mode: peak
// node records plus bucket arrays plus the striped cache.
func (s *sharedState) memEstimate() int {
	const nodeBytes = 20
	bucketWords := 0
	for i := range s.shards {
		bucketWords += len(s.shards[i].buckets)
	}
	return int(s.peakNodes.Load())*nodeBytes + bucketWords*4 +
		len(s.cache.entries)*cacheEntryBytes
}

// checkInvariants is the shared-mode structural validator behind
// Manager.CheckInvariants (quiescent callers only).
func (s *sharedState) checkInvariants(m *Manager) error {
	seen := make(map[[3]uint32]uint32)
	for sid := range s.shards {
		sh := &s.shards[sid]
		for l := int32(0); l < sh.top; l++ {
			n := sh.nodeAt(uint32(l))
			idx := int(uint32(l)<<shardBits | uint32(sid))
			if n.level == freeLevel {
				continue
			}
			if n.level == terminalLevel {
				if idx != 0 {
					return errInvariant("non-root terminal node", idx)
				}
				continue
			}
			if int(n.level) >= len(m.varNames) {
				return errInvariant("level beyond declared variables", idx)
			}
			if n.high.complement() {
				return errInvariant("complemented then-edge", idx)
			}
			if n.low == n.high {
				return errInvariant("redundant node (low == high)", idx)
			}
			for _, ch := range [2]Ref{n.low, n.high} {
				cn := s.nodeAt(ch.index())
				if cn.level == freeLevel {
					return errInvariant("edge to freed node", idx)
				}
				if cn.level != terminalLevel && cn.level <= n.level {
					return errInvariant("child level not strictly below parent", idx)
				}
			}
			key := [3]uint32{n.level, uint32(n.low), uint32(n.high)}
			if _, dup := seen[key]; dup {
				return errInvariant("duplicate triple in unique table", idx)
			}
			seen[key] = uint32(idx)
		}
	}
	return nil
}

// indexBound returns an exclusive upper bound on node indices currently
// in use, for slice-indexed per-node scratch (the Transfer memo).
func (m *Manager) indexBound() int {
	if s := m.shared; s != nil {
		bound := 1
		for sid := range s.shards {
			if t := int(s.shards[sid].top); t > 0 {
				if b := ((t-1)<<shardBits | sid) + 1; b > bound {
					bound = b
				}
			}
		}
		return bound
	}
	return len(m.nodes)
}
