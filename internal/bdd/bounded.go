package bdd

// Size-bounded operations — the capability the paper's Section V asks
// for when building the pairwise-conjunction table of Figure 1:
//
//	"before we build the BDD for any conjunction, we already have a
//	 limit on how large it can be and still be useful ... it would be
//	 useful to ... abort any of these operations if the size exceeds a
//	 specified bound."
//
// The bound is on node ALLOCATION during the operation: if computing the
// result would allocate more than budget fresh nodes, the operation is
// abandoned. Partially built nodes become garbage reclaimable by GC.

// AndBounded computes f ∧ g, giving up once more than budget new nodes
// would be allocated. ok is false on abandonment. A budget of zero or
// less means unbounded.
//
// A run-level node limit already in force takes precedence: if the
// manager's own limit is hit, the *LimitError propagates as usual so the
// surrounding verification run aborts rather than silently skipping a
// conjunction.
func (m *Manager) AndBounded(f, g Ref, budget int) (res Ref, ok bool) {
	return m.bounded(budget, func() Ref { return m.And(f, g) })
}

// ITEBounded is the bounded variant of ITE.
func (m *Manager) ITEBounded(f, g, h Ref, budget int) (res Ref, ok bool) {
	return m.bounded(budget, func() Ref { return m.ITE(f, g, h) })
}

// bounded runs op under a temporary node limit. It mutates the manager's
// nodeLimit, so on shared-mode managers it requires quiescence (no other
// operation in flight); the core evaluation layer accordingly keeps
// budget-classified scoring on the per-worker-manager path.
func (m *Manager) bounded(budget int, op func() Ref) (res Ref, ok bool) {
	if budget <= 0 {
		return op(), true
	}
	prev := m.nodeLimit
	temp := m.NumNodes() + budget
	if prev > 0 && prev < temp {
		temp = prev
	}
	m.nodeLimit = temp
	defer func() {
		m.nodeLimit = prev
		if r := recover(); r != nil {
			le, isLimit := r.(*LimitError)
			if !isLimit {
				panic(r)
			}
			if prev > 0 && le.Live >= prev {
				// The run's own budget is exhausted, not just this
				// operation's: let the abort propagate.
				panic(r)
			}
			ok = false
		}
	}()
	return op(), true
}
