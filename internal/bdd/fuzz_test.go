package bdd

// Go-native fuzz targets checking the core operators against a
// truth-table oracle. Each input is interpreted as a stack-machine
// program over fuzzVars variables; alongside every Ref the interpreter
// maintains the function's full truth table as a uint32 bitmap (one bit
// per assignment), so any operator can be checked against plain bit
// arithmetic on all 2^fuzzVars points at once.
//
// Run one target with `go test -fuzz FuzzAnd ./internal/bdd`; the CI
// smoke job runs each for a few seconds per PR.

import (
	"testing"
)

const fuzzVars = 5 // 32 assignments; tables fit a uint32

// fuzzFormula interprets data as a stack program and returns a formula
// with its truth table. Opcodes (mod 8): 0-2 push a variable or its
// complement, 3 AND, 4 OR, 5 XOR, 6 NOT, 7 push a constant. The stack is
// folded with AND at the end so every program yields one formula.
func fuzzFormula(m *Manager, vars []Var, data []byte) (Ref, uint32) {
	// table(v): bitmap of assignments where variable v is true.
	// Assignment index k sets variable i to bit i of k.
	varTable := func(i int) uint32 {
		var t uint32
		for k := uint32(0); k < 32; k++ {
			if k&(1<<uint(i)) != 0 {
				t |= 1 << k
			}
		}
		return t
	}

	type entry struct {
		f Ref
		t uint32
	}
	var stack []entry
	push := func(f Ref, t uint32) { stack = append(stack, entry{f, t}) }
	for _, b := range data {
		switch op := b % 8; op {
		case 0, 1, 2:
			i := int(b/8) % fuzzVars
			push(m.VarRef(vars[i]), varTable(i))
		case 3, 4, 5:
			if len(stack) < 2 {
				continue
			}
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-2]
			switch op {
			case 3:
				push(m.And(x.f, y.f), x.t&y.t)
			case 4:
				push(m.Or(x.f, y.f), x.t|y.t)
			case 5:
				push(m.Xor(x.f, y.f), x.t^y.t)
			}
		case 6:
			if len(stack) == 0 {
				continue
			}
			top := &stack[len(stack)-1]
			top.f = top.f.Not()
			top.t = ^top.t
		case 7:
			if b/8%2 == 0 {
				push(One, ^uint32(0))
			} else {
				push(Zero, 0)
			}
		}
	}
	f, t := One, ^uint32(0)
	for _, e := range stack {
		f = m.And(f, e.f)
		t &= e.t
	}
	return f, t
}

// fuzzEvalTable recomputes a Ref's truth table through Eval, the
// independent point-wise interpreter.
func fuzzEvalTable(m *Manager, f Ref) uint32 {
	asg := make([]bool, fuzzVars)
	var t uint32
	for k := uint32(0); k < 32; k++ {
		for i := range asg {
			asg[i] = k&(1<<uint(i)) != 0
		}
		if m.Eval(f, asg) {
			t |= 1 << k
		}
	}
	return t
}

func fuzzManager() (*Manager, []Var) {
	m := New()
	return m, m.NewVars("x", fuzzVars)
}

// fuzzSharedManager builds a shared-memory concurrent manager for the
// cross-check replays. Sized for 4 workers with a deliberately small
// cache and a shallow fork cutoff so fuzzing exercises forked recursion
// steps, cache collisions, and shard growth rather than hiding them.
func fuzzSharedManager() (*Manager, []Var) {
	m := NewShared(4, 10)
	m.SetForkDepth(3)
	return m, m.NewVars("x", fuzzVars)
}

// fuzzSharedCheck replays two formula programs on a concurrent manager
// and cross-checks op there: the sequential recursion and the parallel
// fork/join recursion must land on the identical Ref (canonicity inside
// one manager), and the result's truth table must equal want — the table
// the sequential-manager oracle computed. Run under -race this drives
// the sharded table, striped cache, and Forker from real goroutines.
func fuzzSharedCheck(t *testing.T, a, b []byte, want uint32,
	op func(m *Manager, fa, fb Ref) (seq, par Ref)) {
	t.Helper()
	sm, svars := fuzzSharedManager()
	fa, _ := fuzzFormula(sm, svars, a)
	fb, _ := fuzzFormula(sm, svars, b)
	seq, par := op(sm, fa, fb)
	if seq != par {
		t.Fatalf("concurrent manager: parallel op Ref %v != sequential op Ref %v", par, seq)
	}
	if got := fuzzEvalTable(sm, seq); got != want {
		t.Fatalf("concurrent manager table %08x, want %08x", got, want)
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Fatalf("concurrent manager: %v", err)
	}
}

// splitCorpus seeds shared by all targets: empty, single pushes, and a
// few operator mixes.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{8})
	f.Add([]byte{0, 8, 3}, []byte{16, 6})
	f.Add([]byte{0, 8, 4, 16, 5}, []byte{0, 14, 7, 3})
	f.Add([]byte{7, 15, 3, 0, 6}, []byte{1, 9, 17, 4, 4})
}

// FuzzAnd: And agrees with table intersection, and the result's own
// table (via Eval) matches too.
func FuzzAnd(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m, vars := fuzzManager()
		fa, ta := fuzzFormula(m, vars, a)
		fb, tb := fuzzFormula(m, vars, b)
		r := m.And(fa, fb)
		if got, want := fuzzEvalTable(m, r), ta&tb; got != want {
			t.Fatalf("And table %08x, want %08x", got, want)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		fuzzSharedCheck(t, a, b, ta&tb, func(sm *Manager, fa, fb Ref) (Ref, Ref) {
			return sm.And(fa, fb), sm.ParAnd(fa, fb)
		})
	})
}

// FuzzOr: Or agrees with table union; De Morgan cross-check for free.
func FuzzOr(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m, vars := fuzzManager()
		fa, ta := fuzzFormula(m, vars, a)
		fb, tb := fuzzFormula(m, vars, b)
		r := m.Or(fa, fb)
		if got, want := fuzzEvalTable(m, r), ta|tb; got != want {
			t.Fatalf("Or table %08x, want %08x", got, want)
		}
		if dm := m.And(fa.Not(), fb.Not()).Not(); dm != r {
			t.Fatalf("De Morgan violated: %v != %v", dm, r)
		}
		fuzzSharedCheck(t, a, b, ta|tb, func(sm *Manager, fa, fb Ref) (Ref, Ref) {
			return sm.Or(fa, fb), sm.ParOr(fa, fb)
		})
	})
}

// FuzzRestrict: the restrict simplification must agree with f on the
// care set c (its only contract), and Constrain likewise.
func FuzzRestrict(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m, vars := fuzzManager()
		ff, tf := fuzzFormula(m, vars, a)
		fc, tc := fuzzFormula(m, vars, b)
		for _, s := range []Simplifier{UseRestrict, UseConstrain} {
			r := m.Simplify(s, ff, fc)
			if got := fuzzEvalTable(m, r); (got^tf)&tc != 0 {
				t.Fatalf("%v disagrees with f on the care set: f=%08x r=%08x c=%08x", s, tf, got, tc)
			}
		}

		// Replay on a concurrent manager: Restrict has no parallel
		// variant, so the cross-check is determinism (two identical
		// calls, one cache-cold and one cache-warm, on the same manager)
		// plus the care-set contract against the oracle tables.
		sm, svars := fuzzSharedManager()
		sf, _ := fuzzFormula(sm, svars, a)
		sc, _ := fuzzFormula(sm, svars, b)
		for _, s := range []Simplifier{UseRestrict, UseConstrain} {
			r1 := sm.Simplify(s, sf, sc)
			if r2 := sm.Simplify(s, sf, sc); r2 != r1 {
				t.Fatalf("concurrent manager: %v not deterministic: %v != %v", s, r2, r1)
			}
			if got := fuzzEvalTable(sm, r1); (got^tf)&tc != 0 {
				t.Fatalf("concurrent manager: %v disagrees on care set: f=%08x r=%08x c=%08x", s, tf, got, tc)
			}
		}
		if err := sm.CheckInvariants(); err != nil {
			t.Fatalf("concurrent manager: %v", err)
		}
	})
}

// FuzzCofactorVar: both cofactors agree with the table with the variable
// forced, and the Shannon expansion rebuilds f exactly.
func FuzzCofactorVar(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{0}, byte(1))
	f.Add([]byte{0, 8, 3}, byte(2))
	f.Add([]byte{0, 8, 4, 16, 5}, byte(4))
	f.Add([]byte{7, 15, 3, 0, 6}, byte(3))
	f.Fuzz(func(t *testing.T, a []byte, varByte byte) {
		m, vars := fuzzManager()
		ff, tf := fuzzFormula(m, vars, a)
		i := int(varByte) % fuzzVars
		v := vars[i]
		lo, hi := m.CofactorVar(ff, v)

		// Forced tables: value of f with x_i := 0 (resp. 1) at every point.
		bit := uint32(1) << uint(i)
		var tlo, thi uint32
		for k := uint32(0); k < 32; k++ {
			if tf&(1<<(k&^bit)) != 0 {
				tlo |= 1 << k
			}
			if tf&(1<<(k|bit)) != 0 {
				thi |= 1 << k
			}
		}
		if got := fuzzEvalTable(m, lo); got != tlo {
			t.Fatalf("low cofactor %08x, want %08x", got, tlo)
		}
		if got := fuzzEvalTable(m, hi); got != thi {
			t.Fatalf("high cofactor %08x, want %08x", got, thi)
		}
		if re := m.ITE(m.VarRef(v), hi, lo); re != ff {
			t.Fatalf("Shannon expansion does not rebuild f: %v != %v", re, ff)
		}
	})
}

// FuzzTransfer: shipping a BDD to a fresh worker manager preserves the
// function, and shipping it back lands on the identical Ref.
func FuzzTransfer(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m, vars := fuzzManager()
		ff, tf := fuzzFormula(m, vars, a)
		fg, _ := fuzzFormula(m, vars, b)
		_ = fg // populate m beyond ff so Transfer walks a non-trivial table

		w := m.NewWorker()
		wf := Transfer(w, m, ff, nil)
		if got := fuzzEvalTable(w, wf); got != tf {
			t.Fatalf("transferred table %08x, want %08x", got, tf)
		}
		if back := Transfer(m, w, wf, nil); back != ff {
			t.Fatalf("round trip moved the Ref: %v != %v", back, ff)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
