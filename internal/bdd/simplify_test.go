package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRestrictAgreesOnCareSet is the defining property of BDDSimplify:
// wherever c holds, Restrict(f, c) equals f.
func TestRestrictAgreesOnCareSet(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	mask := tableMask(n)
	prop := func(tf, tc uint64) bool {
		tf, tc = tf&mask, tc&mask
		f := truthToBDD(m, n, tf)
		c := truthToBDD(m, n, tc)
		r := m.Restrict(f, c)
		rt := bddToTruth(m, r, n)
		// Agreement on the care set.
		return (rt^tf)&tc == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	checkInv(t, m)
}

func TestConstrainAgreesOnCareSet(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	mask := tableMask(n)
	prop := func(tf, tc uint64) bool {
		tf, tc = tf&mask, tc&mask
		if tc == 0 {
			return true // Constrain(f, Zero) is Zero by convention
		}
		f := truthToBDD(m, n, tf)
		c := truthToBDD(m, n, tc)
		r := m.Constrain(f, c)
		rt := bddToTruth(m, r, n)
		if (rt^tf)&tc != 0 {
			return false
		}
		// The generalized-cofactor identity: f↓c ∧ c == f ∧ c.
		return m.And(r, c) == m.And(f, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	checkInv(t, m)
}

func TestSimplifyIdentities(t *testing.T) {
	m := newTestManager(t, 4)
	x, y := m.VarRef(0), m.VarRef(1)
	f := m.Or(m.And(x, y), m.And(x.Not(), y.Not()))

	if m.Restrict(f, One) != f {
		t.Fatal("Restrict(f, One) != f")
	}
	if m.Restrict(f, Zero) != f {
		t.Fatal("Restrict(f, Zero) != f (documented convention)")
	}
	if m.Restrict(f, f) != One {
		t.Fatal("Restrict(f, f) != One")
	}
	if m.Restrict(f, f.Not()) != Zero {
		t.Fatal("Restrict(f, ¬f) != Zero")
	}
	if m.Restrict(One, f) != One || m.Restrict(Zero, f) != Zero {
		t.Fatal("Restrict of constants changed them")
	}
	if m.Constrain(f, Zero) != Zero {
		t.Fatal("Constrain(f, Zero) != Zero (documented convention)")
	}
	if m.Constrain(f, One) != f {
		t.Fatal("Constrain(f, One) != f")
	}
	if m.Constrain(f, f) != One {
		t.Fatal("Constrain(f, f) != One")
	}
}

// TestRestrictShrinksDisjointSupport exercises the classic use: if the
// care set forces part of f's support, the simplified BDD drops it.
func TestRestrictShrinksDisjointSupport(t *testing.T) {
	m := newTestManager(t, 6)
	x, y, z := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	// f = (x ∧ y) ∨ (¬x ∧ z); care set forces x true.
	f := m.Or(m.And(x, y), m.And(x.Not(), z))
	r := m.Restrict(f, x)
	if r != y {
		t.Fatalf("Restrict under x=1 should reduce to y, got %s", m.String(r))
	}
	if m.Size(r) >= m.Size(f) {
		t.Fatal("Restrict did not shrink the BDD")
	}
}

// TestTheorem3 verifies the paper's Theorem 3: a ∨ b is a tautology iff
// BDDSimplify(a, ¬b) is a tautology — for Restrict and for Constrain.
func TestTheorem3(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	mask := tableMask(n)
	rng := rand.New(rand.NewSource(31))
	check := func(ta, tb uint64) {
		if tb == mask {
			// b is a tautology, so ¬b == Zero: the theorem's care set is
			// empty and both operators fall back to their documented
			// conventions. The disjunction is trivially a tautology and
			// callers (the termination test's Step 1) catch this before
			// ever simplifying.
			return
		}
		a := truthToBDD(m, n, ta)
		b := truthToBDD(m, n, tb)
		want := (ta | tb) == mask
		if got := m.Restrict(a, b.Not()) == One; got != want {
			t.Fatalf("Theorem 3 (Restrict) fails for %#x, %#x: simplified-taut=%v, or-taut=%v",
				ta, tb, got, want)
		}
		if got := m.Constrain(a, b.Not()) == One; got != want {
			t.Fatalf("Theorem 3 (Constrain) fails for %#x, %#x", ta, tb)
		}
	}
	// Random pairs plus adversarial near-tautologies.
	for i := 0; i < 300; i++ {
		check(rng.Uint64()&mask, rng.Uint64()&mask)
	}
	for i := 0; i < int(tableBits(n)); i++ {
		ta := mask &^ (1 << uint(i)) // tautology minus one minterm
		check(ta, 1<<uint(i))        // together exactly a tautology
		check(ta, 0)                 // not a tautology
		check(ta, mask)              // trivially a tautology
	}
}

func TestSimplifierSelector(t *testing.T) {
	m := newTestManager(t, 3)
	x, y := m.VarRef(0), m.VarRef(1)
	f := m.Or(m.And(x, y), m.And(x.Not(), y.Not()))
	c := x
	if m.Simplify(UseRestrict, f, c) != m.Restrict(f, c) {
		t.Fatal("Simplify(UseRestrict) != Restrict")
	}
	if m.Simplify(UseConstrain, f, c) != m.Constrain(f, c) {
		t.Fatal("Simplify(UseConstrain) != Constrain")
	}
}
