// Package bdd implements a reduced, ordered binary decision diagram
// (ROBDD) library in the style of Brace, Rudell, and Bryant's "Efficient
// Implementation of a BDD Package" (DAC 1990) — the same family as David
// Long's CMU package used in the paper this repository reproduces.
//
// The central features the verification algorithms depend on:
//
//   - Complement edges: negation is a constant-time bit flip, and testing
//     whether two functions are complements of each other is a constant
//     time comparison. The exact termination test of the paper's Section
//     III.B assumes both properties.
//   - Hash-consed unique table: structurally identical functions share a
//     single node, so pointer (Ref) equality is function equality and the
//     "shared size" BDDSize(X_i, X_j) of Figure 1 is meaningful.
//   - A computed cache memoizing (op, f, g, h) quadruples.
//   - A configurable node limit: when the table would exceed it, the
//     current operation unwinds with a *LimitError. This implements the
//     resource-bounded behaviour behind the "Exceeded 60MB" rows of the
//     paper's tables (and its Section V wish for abortable operations).
//
// All operations on a Manager panic with *LimitError when the node limit
// is exceeded; use Guard to convert that panic into an error at an API
// boundary.
//
// Managers created by New/NewWithSize are not safe for concurrent use.
// NewShared creates a Manager in shared-memory concurrent mode — sharded
// unique table, striped computed cache, fork/join ParITE/ParAndN/
// ParAndExists — whose operations may run from many goroutines at once;
// see shared.go and DESIGN.md §12 for the concurrency contract.
package bdd

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/resource"
)

// Ref is a reference to a BDD function: a node index with a complement
// bit in the least significant position. Two Refs from the same Manager
// denote the same Boolean function if and only if they are equal.
//
// The zero value of Ref is the constant One.
type Ref uint32

// Constant functions. The terminal node is stored at index 0; One is its
// uncomplemented reference and Zero its complemented reference.
const (
	One  Ref = 0
	Zero Ref = 1
)

// index returns the node index of r, discarding the complement bit.
func (r Ref) index() uint32 { return uint32(r) >> 1 }

// complement reports whether r carries a complement mark.
func (r Ref) complement() bool { return r&1 != 0 }

// Not returns the negation of the function. It needs no Manager and runs
// in constant time: the defining property of complement edges.
func (r Ref) Not() Ref { return r ^ 1 }

// IsConst reports whether r is One or Zero.
func (r Ref) IsConst() bool { return r.index() == 0 }

// Var identifies a BDD variable. With static ordering (the only mode this
// package offers; the paper's experiments all use a fixed, hand-chosen
// interleaved order) a variable's id equals its level in the order.
type Var int

const (
	// terminalLevel is the level of the constant node: below every
	// variable, so cofactoring logic treats constants uniformly.
	terminalLevel = math.MaxUint32

	// freeLevel marks nodes currently on the free list.
	freeLevel = math.MaxUint32 - 1
)

// node is one BDD vertex. The canonical form of complement edges is
// enforced by mk: the high (then) edge is never complemented; complement
// marks live on low edges and on external references only.
type node struct {
	level uint32 // variable level; terminalLevel for the constant
	low   Ref    // else-branch (may be complemented)
	high  Ref    // then-branch (never complemented)
	next  int32  // unique-table bucket chain, or free-list link; -1 ends
	refs  int32  // external reference count (GC roots)
}

// Stats holds operation counters for a Manager.
//
// The computed cache is direct-mapped, so every hash collision evicts a
// live entry: the shortfall of CacheHits/CacheLookups below the workload's
// intrinsic re-reference rate is the collision rate. cacheHash mixes each
// operand with its own odd multiplier specifically to keep that rate down
// — an overlapping pre-mix of the operands produces systematic collisions
// (distinct operand triples hashing identically) that no table size fixes.
type Stats struct {
	Nodes        int    // live (allocated minus freed) nodes, incl. terminal
	PeakNodes    int    // high-water mark of live nodes
	Vars         int    // declared variables
	CacheLookups uint64 // computed-cache probes
	CacheHits    uint64 // computed-cache hits (see collision note above)
	UniqueHits   uint64 // unique-table hits (node reuse)
	GCs          int    // completed garbage collections
	FreedNodes   int    // total nodes reclaimed by GC
}

// Manager owns a shared BDD node pool. All Refs are relative to the
// Manager that produced them; mixing Refs across Managers is a programming
// error that this package does not attempt to detect.
type Manager struct {
	nodes      []node
	free       int32 // head of free list (-1 if empty)
	freeCount  int
	buckets    []int32
	bucketMask uint32

	varNames []string

	cache computedCache

	nodeLimit int // 0 means unlimited

	deadline      time.Time       // zero means no deadline
	ctx           context.Context // nil means no cancellation source
	deadlineCheck int             // allocations until the next clock/ctx read

	stats Stats

	// epoch is bumped by GC; long-lived memo tables (Substitution)
	// check it to invalidate themselves after node indices are reused.
	epoch uint64

	// permRoots records the Refs already registered through
	// ProtectPermanent, making that registration idempotent per manager.
	permRoots map[Ref]struct{}

	// shared is non-nil iff the Manager is in shared-memory concurrent
	// mode (NewShared). When set, node storage, the unique table, and the
	// computed cache live in the sharded structures of shared.go and the
	// fields nodes/free/buckets/cache above are unused; every access site
	// dispatches on this single nil check, so the sequential paths are
	// byte-for-byte the pre-existing code.
	shared *sharedState

	// Transfer memo scratch (satellite: slice-indexed memo with a
	// generation stamp instead of a per-call map). Owned by the
	// DESTINATION manager of a Transfer, which is always goroutine-private
	// even when several workers transfer from one shared source at once.
	xferVal []Ref
	xferGen []uint32
	xferCur uint32
}

// DefaultCacheBits is the log2 of the default computed-cache size.
const DefaultCacheBits = 16

// New creates an empty Manager with the default cache size.
func New() *Manager { return NewWithSize(1024, DefaultCacheBits) }

// NewWithSize creates a Manager with an initial node capacity and a
// computed cache of 2^cacheBits entries.
func NewWithSize(nodeCap int, cacheBits uint) *Manager {
	if nodeCap < 16 {
		nodeCap = 16
	}
	m := &Manager{
		nodes: make([]node, 1, nodeCap),
		free:  -1,
	}
	m.nodes[0] = node{level: terminalLevel, low: One, high: One, next: -1}
	m.initBuckets(1 << 10)
	m.cache.init(cacheBits)
	m.stats.Nodes = 1
	m.stats.PeakNodes = 1
	return m
}

// SetNodeLimit bounds the number of live nodes the Manager may hold.
// Operations that would exceed the limit panic with *LimitError (catch it
// with Guard). A limit of 0 removes the bound.
func (m *Manager) SetNodeLimit(n int) { m.nodeLimit = n }

// NodeLimit returns the current node limit (0 = unlimited).
func (m *Manager) NodeLimit() int { return m.nodeLimit }

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return len(m.varNames) }

// NumNodes returns the number of live nodes, including the terminal.
func (m *Manager) NumNodes() int {
	if s := m.shared; s != nil {
		return int(s.nodeCount.Load())
	}
	return m.stats.Nodes
}

// PeakNodes returns the high-water mark of live nodes.
func (m *Manager) PeakNodes() int {
	if s := m.shared; s != nil {
		return int(s.peakNodes.Load())
	}
	return m.stats.PeakNodes
}

// Stats returns a snapshot of the Manager's counters. On a shared-mode
// Manager the atomic counters are folded in; calling it concurrently with
// running operations yields a consistent-enough snapshot for reporting
// (each counter is individually atomic, the set is not).
func (m *Manager) Stats() Stats {
	s := m.stats
	s.Vars = len(m.varNames)
	if sh := m.shared; sh != nil {
		s.Nodes = int(sh.nodeCount.Load())
		s.PeakNodes = int(sh.peakNodes.Load())
		s.CacheLookups = sh.lookups.Load()
		s.CacheHits = sh.hits.Load()
		s.UniqueHits = sh.uniqueHits.Load()
	}
	return s
}

// MemEstimate returns an estimate, in bytes, of the memory footprint at
// the live-node high-water mark: node records plus the unique table and
// computed cache. This is the figure reported as "Mem" in the experiment
// tables (the paper reports verifier process size, which is dominated by
// the same structures).
func (m *Manager) MemEstimate() int {
	const nodeBytes = 20 // level + low + high + next + refs
	if s := m.shared; s != nil {
		return s.memEstimate()
	}
	return m.stats.PeakNodes*nodeBytes + len(m.buckets)*4 + m.cache.memBytes()
}

// NewVar declares a fresh variable ordered after all existing variables
// and returns its handle. The name is used only for debugging output.
func (m *Manager) NewVar(name string) Var {
	if name == "" {
		name = fmt.Sprintf("v%d", len(m.varNames))
	}
	m.varNames = append(m.varNames, name)
	return Var(len(m.varNames) - 1)
}

// NewVars declares n fresh variables named prefix0..prefix(n-1).
func (m *Manager) NewVars(prefix string, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = m.NewVar(fmt.Sprintf("%s%d", prefix, i))
	}
	return vs
}

// VarName returns the debug name of v.
func (m *Manager) VarName(v Var) string {
	if int(v) < 0 || int(v) >= len(m.varNames) {
		return fmt.Sprintf("v?%d", int(v))
	}
	return m.varNames[v]
}

// VarRef returns the function of the single variable v.
func (m *Manager) VarRef(v Var) Ref {
	if int(v) < 0 || int(v) >= len(m.varNames) {
		panic(fmt.Sprintf("bdd: VarRef of undeclared variable %d", int(v)))
	}
	return m.mk(uint32(v), Zero, One)
}

// NVarRef returns the negation of variable v.
func (m *Manager) NVarRef(v Var) Ref { return m.VarRef(v).Not() }

// at returns the node record for the given index. It is the single
// dispatch point between the two storage layouts: a flat append-grown
// slice in sequential mode, sharded chunked arenas (whose published node
// memory never moves, so concurrent readers are safe) in shared mode.
func (m *Manager) at(idx uint32) *node {
	if s := m.shared; s != nil {
		return s.nodeAt(idx)
	}
	return &m.nodes[idx]
}

// Level returns the ordering level of the top variable of r, or
// math.MaxUint32 for constants.
func (m *Manager) Level(r Ref) uint32 { return m.at(r.index()).level }

// TopVar returns the top variable of r. It panics on constants.
func (m *Manager) TopVar(r Ref) Var {
	l := m.Level(r)
	if l == terminalLevel {
		panic("bdd: TopVar of constant")
	}
	return Var(l)
}

// Low returns the else-cofactor of r with respect to its own top
// variable, accounting for r's complement mark. It panics on constants.
func (m *Manager) Low(r Ref) Ref {
	n := m.at(r.index())
	if n.level == terminalLevel {
		panic("bdd: Low of constant")
	}
	return n.low ^ (r & 1)
}

// High returns the then-cofactor of r with respect to its own top
// variable, accounting for r's complement mark. It panics on constants.
func (m *Manager) High(r Ref) Ref {
	n := m.at(r.index())
	if n.level == terminalLevel {
		panic("bdd: High of constant")
	}
	return n.high ^ (r & 1)
}

// cofactor returns the two cofactors of r with respect to the variable at
// level. If r's top variable is below level, both cofactors are r itself.
func (m *Manager) cofactor(r Ref, level uint32) (lo, hi Ref) {
	n := m.at(r.index())
	if n.level != level {
		return r, r
	}
	c := r & 1
	return n.low ^ c, n.high ^ c
}

// initBuckets resets the unique-table bucket array to the given
// power-of-two size.
func (m *Manager) initBuckets(size int) {
	m.buckets = make([]int32, size)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	m.bucketMask = uint32(size - 1)
}

// hash3 mixes a node triple into a bucket index.
func hash3(level uint32, low, high Ref) uint32 {
	h := uint64(level)*0x9e3779b97f4a7c15 ^ uint64(low)*0xff51afd7ed558ccd ^ uint64(high)*0xc4ceb9fe1a85ec53
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return uint32(h)
}

// mk returns the canonical node (level, low, high), applying the two
// reduction rules (merge equal children, share via the unique table) and
// the complement-edge canonical form (then-edge never complemented).
func (m *Manager) mk(level uint32, low, high Ref) Ref {
	if low == high {
		return low
	}
	var out Ref
	if high.complement() {
		// Push the complement to the incoming edge so the stored
		// then-edge is regular.
		out = 1
		low ^= 1
		high ^= 1
	}
	if s := m.shared; s != nil {
		return s.mk(m, level, low, high) ^ out
	}

	h := hash3(level, low, high) & m.bucketMask
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			m.stats.UniqueHits++
			return Ref(uint32(i)<<1) ^ out
		}
	}

	idx := m.alloc()
	m.nodes[idx] = node{level: level, low: low, high: high, next: m.buckets[h]}
	m.buckets[h] = idx

	if m.stats.Nodes > len(m.buckets) {
		m.growBuckets()
	}
	return Ref(uint32(idx)<<1) ^ out
}

// deadlineStride bounds how many allocations may pass between clock
// reads when a deadline is set: cheap enough to be negligible, frequent
// enough that runaway operations abort within milliseconds of overrun.
const deadlineStride = 1 << 14

// SetDeadline makes every operation abort (with *DeadlineError, caught
// by Guard) once the wall clock passes t. The zero time disables the
// deadline. Unlike a caller-side timeout check between iterations, this
// bounds a SINGLE runaway image computation — the situation behind the
// paper's "Exceeded 40 minutes" rows.
func (m *Manager) SetDeadline(t time.Time) {
	m.deadline = t
	m.deadlineCheck = 0
}

// Deadline returns the current operation deadline (the zero time when
// none is set). Used to plumb a run's deadline into per-worker Managers.
func (m *Manager) Deadline() time.Time { return m.deadline }

// DeadlineError is the panic value raised when an operation overruns the
// Manager's deadline. It is resource.DeadlineError; errors.Is(err,
// resource.ErrDeadline) matches it.
type DeadlineError = resource.DeadlineError

// ApplyBudget installs a run's resource.Budget on the Manager: the node
// limit (only when the budget sets one — 0 keeps the current limit), the
// resolved wall deadline, and the cancellation context. It returns a
// restore function that reinstates the previous limit, deadline, and
// context; the run harness defers it so a budget never outlives its run.
//
// ApplyBudget is the single entry point through which limits, deadlines,
// and cancellation reach the BDD layer; SetNodeLimit and SetDeadline
// remain as low-level primitives beneath it.
func (m *Manager) ApplyBudget(b resource.Budget) (restore func()) {
	prevLimit, prevDeadline, prevCtx := m.nodeLimit, m.deadline, m.ctx
	if b.NodeLimit > 0 {
		m.nodeLimit = b.NodeLimit
	}
	m.deadline = b.Deadline
	m.ctx = b.Ctx
	m.deadlineCheck = 0
	return func() {
		m.nodeLimit, m.deadline, m.ctx = prevLimit, prevDeadline, prevCtx
		m.deadlineCheck = 0
	}
}

// CheckBudget panics with *resource.CancelError if the installed context
// is canceled, or *resource.DeadlineError past the installed deadline.
// The allocator calls it on a stride; long loops that may run without
// allocating (cross-simplification sweeps, the greedy merge, the exact
// termination test) call it directly as a cheap checkpoint.
func (m *Manager) CheckBudget() {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			panic(&resource.CancelError{Cause: err})
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		panic(&resource.DeadlineError{Deadline: m.deadline})
	}
}

// alloc returns a fresh node index, preferring the free list. It panics
// with *LimitError when the node limit would be exceeded, and on a
// stride with *DeadlineError past the deadline or *resource.CancelError
// when the installed context is canceled.
func (m *Manager) alloc() int32 {
	if m.nodeLimit > 0 && m.stats.Nodes >= m.nodeLimit {
		panic(&LimitError{Limit: m.nodeLimit, Live: m.stats.Nodes})
	}
	if !m.deadline.IsZero() || m.ctx != nil {
		m.deadlineCheck--
		if m.deadlineCheck <= 0 {
			m.deadlineCheck = deadlineStride
			m.CheckBudget()
		}
	}
	m.stats.Nodes++
	if m.stats.Nodes > m.stats.PeakNodes {
		m.stats.PeakNodes = m.stats.Nodes
	}
	if m.free >= 0 {
		idx := m.free
		m.free = m.nodes[idx].next
		m.freeCount--
		return idx
	}
	m.nodes = append(m.nodes, node{})
	return int32(len(m.nodes) - 1)
}

// maxCacheBits caps adaptive computed-cache growth (2^23 entries ≈
// 160MB): beyond this, hit rate gains no longer pay for the memory.
const maxCacheBits = 23

// growBuckets doubles the unique table and rehashes all live nodes. It
// also grows the computed cache to keep pace with the node count — a
// cache much smaller than the working set thrashes, and a thrashing
// cache turns memoized recursions exponential.
func (m *Manager) growBuckets() {
	m.initBuckets(len(m.buckets) * 2)
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		h := hash3(n.level, n.low, n.high) & m.bucketMask
		n.next = m.buckets[h]
		m.buckets[h] = int32(i)
	}
	if len(m.cache.entries) < len(m.buckets) && len(m.cache.entries) < 1<<maxCacheBits {
		bits := uint(1)
		for 1<<bits < len(m.buckets) && bits < maxCacheBits {
			bits++
		}
		m.cache.init(bits) // clearing the memo is safe, only slow
	}
}

// LimitError is the panic value raised when an operation would push the
// Manager past its node limit. It reproduces the resource-exhaustion
// behaviour behind the "Exceeded 60MB" rows in the paper's tables. It is
// resource.LimitError; errors.Is(err, resource.ErrNodeLimit) matches it.
type LimitError = resource.LimitError

// Guard runs f, converting a resource-overrun panic (*LimitError,
// *DeadlineError, *resource.CancelError, *resource.IterError) into an
// error return. Any other panic is re-raised. It is the intended API
// boundary for resource-bounded verification runs.
func Guard(f func()) (err error) {
	return resource.Guard(f)
}
