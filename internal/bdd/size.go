package bdd

import (
	"math/big"
	"sort"
)

// Size returns the number of nodes (including the terminal) in the BDD
// rooted at f. This is the BDDSize of the paper's Figure 1.
func (m *Manager) Size(f Ref) int { return m.SharedSize(f) }

// SharedSize returns the number of distinct nodes (including the
// terminal) reachable from any of the roots, counting shared nodes once.
// This is the node-sharing-aware "BDDSize(X_i, X_j)" in the denominator
// of the greedy evaluation ratio.
func (m *Manager) SharedSize(roots ...Ref) int {
	seen := make(map[uint32]struct{})
	var stack []uint32
	for _, r := range roots {
		idx := r.index()
		if _, ok := seen[idx]; !ok {
			seen[idx] = struct{}{}
			stack = append(stack, idx)
		}
	}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := m.at(idx)
		if n.level == terminalLevel {
			continue
		}
		for _, ch := range [2]Ref{n.low, n.high} {
			ci := ch.index()
			if _, ok := seen[ci]; !ok {
				seen[ci] = struct{}{}
				stack = append(stack, ci)
			}
		}
	}
	return len(seen)
}

// Support returns the variables f depends on, in ascending level order.
func (m *Manager) Support(f Ref) []Var {
	seen := make(map[uint32]struct{})
	levels := make(map[uint32]struct{})
	var walk func(r Ref)
	walk = func(r Ref) {
		idx := r.index()
		if _, ok := seen[idx]; ok {
			return
		}
		seen[idx] = struct{}{}
		n := m.at(idx)
		if n.level == terminalLevel {
			return
		}
		levels[n.level] = struct{}{}
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	vs := make([]Var, 0, len(levels))
	for l := range levels {
		vs = append(vs, Var(l))
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// SupportCube returns the positive cube of f's support variables.
func (m *Manager) SupportCube(f Ref) Ref {
	return m.MkCube(m.Support(f))
}

// SatCount returns the number of satisfying assignments of f over all
// variables declared in the Manager.
func (m *Manager) SatCount(f Ref) *big.Int {
	return m.SatCountVars(f, len(m.varNames))
}

// SatCountVars returns the number of satisfying assignments of f over an
// explicit universe of nvars variables (levels 0..nvars-1). It panics if
// f depends on a variable outside that universe.
func (m *Manager) SatCountVars(f Ref, nvars int) *big.Int {
	memo := make(map[Ref]*big.Int)
	var count func(r Ref) *big.Int // assignments of vars below level(r), exclusive
	count = func(r Ref) *big.Int {
		if r == One {
			return big.NewInt(1)
		}
		if r == Zero {
			return big.NewInt(0)
		}
		if c, ok := memo[r]; ok {
			return c
		}
		level := int(m.Level(r))
		if level >= nvars {
			panic("bdd: SatCountVars universe smaller than support")
		}
		lo, hi := m.Low(r), m.High(r)
		cl := scale(count(lo), gap(m, lo, level, nvars))
		ch := scale(count(hi), gap(m, hi, level, nvars))
		c := new(big.Int).Add(cl, ch)
		memo[r] = c
		return c
	}
	return scale(count(f), gapTop(m, f, nvars))
}

// gap returns the number of skipped levels between a parent at level and
// its child ch, in a universe of nvars variables.
func gap(m *Manager, ch Ref, level, nvars int) int {
	cl := int(m.Level(ch))
	if ch.IsConst() {
		cl = nvars
	}
	return cl - level - 1
}

func gapTop(m *Manager, f Ref, nvars int) int {
	fl := int(m.Level(f))
	if f.IsConst() {
		fl = nvars
	}
	return fl
}

func scale(c *big.Int, skipped int) *big.Int {
	if skipped <= 0 {
		return c
	}
	return new(big.Int).Lsh(c, uint(skipped))
}

// Eval evaluates f under a total assignment indexed by level.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	for !f.IsConst() {
		level := m.Level(f)
		if int(level) >= len(assignment) {
			panic("bdd: Eval assignment too short")
		}
		if assignment[level] {
			f = m.High(f)
		} else {
			f = m.Low(f)
		}
	}
	return f == One
}

// Lit is one literal of a satisfying cube.
type Lit struct {
	Var Var
	Val bool
}

// AnySat returns one satisfying cube of f (mentioning only the variables
// on the chosen path), or nil if f is unsatisfiable.
func (m *Manager) AnySat(f Ref) []Lit {
	if f == Zero {
		return nil
	}
	var cube []Lit
	for !f.IsConst() {
		v := m.TopVar(f)
		hi := m.High(f)
		// Every reduced non-Zero branch is satisfiable, so descend into
		// whichever branch is not the constant Zero.
		if hi != Zero {
			cube = append(cube, Lit{Var: v, Val: true})
			f = hi
		} else {
			cube = append(cube, Lit{Var: v, Val: false})
			f = m.Low(f)
		}
	}
	return cube
}

// SatAssignment returns a full assignment (indexed by level, defaulting
// unconstrained variables to false) satisfying f, or nil if f is Zero.
func (m *Manager) SatAssignment(f Ref) []bool {
	if f == Zero {
		return nil
	}
	a := make([]bool, len(m.varNames))
	for _, lit := range m.AnySat(f) {
		a[lit.Var] = lit.Val
	}
	return a
}

// CubeRef converts a literal cube to its BDD.
func (m *Manager) CubeRef(cube []Lit) Ref {
	sorted := append([]Lit(nil), cube...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Var > sorted[j].Var })
	acc := One
	for _, lit := range sorted {
		if lit.Val {
			acc = m.mk(uint32(lit.Var), Zero, acc)
		} else {
			acc = m.mk(uint32(lit.Var), acc, Zero)
		}
	}
	return acc
}
