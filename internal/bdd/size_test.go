package bdd

import (
	"math/big"
	"math/bits"
	"math/rand"
	"strings"
	"testing"
)

func TestSizeBasics(t *testing.T) {
	m := newTestManager(t, 4)
	if m.Size(One) != 1 || m.Size(Zero) != 1 {
		t.Fatal("constant size != 1")
	}
	x := m.VarRef(0)
	if m.Size(x) != 2 {
		t.Fatalf("Size(x) = %d, want 2 (node + terminal)", m.Size(x))
	}
	// Complement edges: f and ¬f share every node.
	f := m.Xor(m.VarRef(0), m.VarRef(1))
	if m.Size(f) != m.Size(f.Not()) {
		t.Fatal("negation changed size")
	}
	if m.SharedSize(f, f.Not()) != m.Size(f) {
		t.Fatal("f and ¬f do not share all nodes")
	}
}

func TestSharedSizeAccountsSharing(t *testing.T) {
	m := newTestManager(t, 6)
	x, y, z := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	u, v := m.VarRef(4), m.VarRef(5)
	common := m.Xor(y, z)
	f := m.And(x, common)
	g := m.Or(x.Not(), common)
	// f and g share the xor sub-BDD.
	sf, sg, both := m.Size(f), m.Size(g), m.SharedSize(f, g)
	if both >= sf+sg {
		t.Fatalf("SharedSize(%d) not below sum of sizes (%d+%d)", both, sf, sg)
	}
	// Disjoint supports share only the terminal.
	h := m.And(u, v)
	if got := m.SharedSize(f, h); got != sf+m.Size(h)-1 {
		t.Fatalf("disjoint SharedSize = %d, want %d", got, sf+m.Size(h)-1)
	}
	// SharedSize of one root equals Size.
	if m.SharedSize(f) != sf {
		t.Fatal("SharedSize of single root differs from Size")
	}
}

func TestSupport(t *testing.T) {
	m := newTestManager(t, 8)
	f := m.AndN(m.VarRef(1), m.VarRef(4).Not(), m.Xor(m.VarRef(6), m.VarRef(1)))
	got := m.Support(f)
	want := []Var{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if len(m.Support(One)) != 0 {
		t.Fatal("Support of constant not empty")
	}
	cube := m.SupportCube(f)
	if vs := m.CubeVars(cube); len(vs) != 3 {
		t.Fatalf("SupportCube vars = %v", vs)
	}
}

func TestSatCountMatchesPopcount(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(41))
	for _, tbl := range randTables(rng, n, 60) {
		f := truthToBDD(m, n, tbl)
		want := big.NewInt(int64(bits.OnesCount64(tbl)))
		if got := m.SatCountVars(f, n); got.Cmp(want) != 0 {
			t.Fatalf("SatCount(%#x) = %v, want %v", tbl, got, want)
		}
	}
	// Over the full declared universe, free variables double the count.
	m2 := newTestManager(t, 8)
	x := m2.VarRef(0)
	want := new(big.Int).Lsh(big.NewInt(1), 7) // x fixed, 7 free vars
	if got := m2.SatCount(x); got.Cmp(want) != 0 {
		t.Fatalf("SatCount over universe = %v, want %v", got, want)
	}
}

func TestSatCountUniverseTooSmall(t *testing.T) {
	m := newTestManager(t, 4)
	f := m.VarRef(3)
	defer func() {
		if recover() == nil {
			t.Fatal("SatCountVars with too-small universe did not panic")
		}
	}()
	m.SatCountVars(f, 2)
}

func TestAnySatAndAssignment(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(42))
	if m.AnySat(Zero) != nil {
		t.Fatal("AnySat(Zero) != nil")
	}
	if len(m.AnySat(One)) != 0 {
		t.Fatal("AnySat(One) should be the empty cube")
	}
	if m.SatAssignment(Zero) != nil {
		t.Fatal("SatAssignment(Zero) != nil")
	}
	for _, tbl := range randTables(rng, n, 60) {
		if tbl == 0 {
			continue
		}
		f := truthToBDD(m, n, tbl)
		a := m.SatAssignment(f)
		if a == nil || !m.Eval(f, a) {
			t.Fatalf("SatAssignment of %#x does not satisfy", tbl)
		}
		cube := m.CubeRef(m.AnySat(f))
		if !m.Implies(cube, f) {
			t.Fatalf("AnySat cube of %#x not contained in f", tbl)
		}
		if cube == Zero {
			t.Fatal("AnySat cube unsatisfiable")
		}
	}
}

func TestCubeRefPolarities(t *testing.T) {
	m := newTestManager(t, 4)
	cube := m.CubeRef([]Lit{{Var: 2, Val: false}, {Var: 0, Val: true}})
	a := []bool{true, false, false, false}
	if !m.Eval(cube, a) {
		t.Fatal("cube false under its own assignment")
	}
	a[2] = true
	if m.Eval(cube, a) {
		t.Fatal("cube true with negative literal violated")
	}
	if m.CubeRef(nil) != One {
		t.Fatal("empty cube != One")
	}
}

func TestEvalShortAssignmentPanics(t *testing.T) {
	m := newTestManager(t, 4)
	f := m.VarRef(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with short assignment did not panic")
		}
	}()
	m.Eval(f, []bool{true})
}

func TestWriteDOT(t *testing.T) {
	m := newTestManager(t, 3)
	f := m.Or(m.And(m.VarRef(0), m.VarRef(1)), m.VarRef(2).Not())
	var b strings.Builder
	if err := m.WriteDOT(&b, f, f.Not()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph bdd", "root0", "root1", "x0", "rank=same"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := newTestManager(t, 3)
	if m.String(One) != "true" || m.String(Zero) != "false" {
		t.Fatal("constant rendering wrong")
	}
	s := m.String(m.And(m.VarRef(0), m.VarRef(2).Not()))
	if !strings.Contains(s, "x0") || !strings.Contains(s, "nodes") {
		t.Fatalf("String rendering unhelpful: %q", s)
	}
}
