package bdd

import (
	"math/rand"
	"testing"
)

func TestGCReclaimsGarbage(t *testing.T) {
	const n = 8
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(51))

	keep := m.Protect(truthToBDD(m, 6, rng.Uint64()&tableMask(6)))
	keepTruth := bddToTruth(m, keep, 6)

	// Generate garbage.
	for i := 0; i < 50; i++ {
		a := truthToBDD(m, 6, rng.Uint64()&tableMask(6))
		b := truthToBDD(m, 6, rng.Uint64()&tableMask(6))
		m.Xor(a, b)
	}
	before := m.NumNodes()
	freed := m.GC()
	if freed == 0 {
		t.Fatal("GC freed nothing despite garbage")
	}
	if m.NumNodes() != before-freed {
		t.Fatalf("node accounting wrong: %d before, %d freed, %d after",
			before, freed, m.NumNodes())
	}
	checkInv(t, m)

	// The protected function must be intact and usable.
	if got := bddToTruth(m, keep, 6); got != keepTruth {
		t.Fatalf("protected function corrupted: %#x want %#x", got, keepTruth)
	}

	// Freed slots are reused and canonical refs still work.
	again := truthToBDD(m, 6, keepTruth)
	if again != keep {
		t.Fatal("rebuilding protected function gave different ref")
	}
	m.Unprotect(keep)
	if got := m.GC(); got == 0 {
		// keep may share nothing beyond itself; it must now be gone.
		t.Fatal("GC after Unprotect freed nothing")
	}
	checkInv(t, m)
}

func TestGCKeepsReachableSubgraphs(t *testing.T) {
	m := newTestManager(t, 6)
	x, y, z := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	inner := m.Xor(y, z)
	outer := m.Protect(m.And(x, inner))
	// inner is unprotected but reachable from outer, so it survives GC.
	// The standalone variable nodes y and z are NOT reachable from outer
	// (outer's graph contains y- and z-labelled nodes with different
	// children), so those Refs dangle after GC — re-acquire them.
	m.GC()
	checkInv(t, m)
	y2, z2 := m.VarRef(1), m.VarRef(2)
	if m.Xor(y2, z2) != inner {
		t.Fatal("reachable subgraph was collected or rebuilt differently")
	}
	m.Unprotect(outer)
}

func TestUnprotectImbalancePanics(t *testing.T) {
	m := newTestManager(t, 2)
	f := m.And(m.VarRef(0), m.VarRef(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Unprotect without Protect did not panic")
		}
	}()
	m.Unprotect(f)
}

func TestProtectConstantsNoop(t *testing.T) {
	m := newTestManager(t, 2)
	m.Protect(One)
	m.Unprotect(One)
	m.Protect(Zero)
	m.Unprotect(Zero)
	m.GC()
	if m.NumNodes() != 3 { // terminal + two variable nodes? none built yet
		// Only the terminal exists plus nothing else; NumNodes is 1.
		if m.NumNodes() != 1 {
			t.Fatalf("NumNodes = %d after constant-only protect cycle", m.NumNodes())
		}
	}
}

func TestGCInvalidatesCachesCorrectly(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(52))

	// Interleave computation and GC; results must stay canonical.
	roots := make([]Ref, 0, 8)
	truths := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		tbl := rng.Uint64() & tableMask(n)
		r := m.Protect(truthToBDD(m, n, tbl))
		roots = append(roots, r)
		truths = append(truths, tbl)
	}
	for iter := 0; iter < 10; iter++ {
		a := roots[rng.Intn(len(roots))]
		b := roots[rng.Intn(len(roots))]
		m.And(a, b) // garbage
		m.GC()
		for i, r := range roots {
			if got := bddToTruth(m, r, n); got != truths[i] {
				t.Fatalf("root %d corrupted after GC round %d", i, iter)
			}
		}
		checkInv(t, m)
	}
	s := m.Stats()
	if s.GCs < 10 {
		t.Fatalf("GC count = %d, want >= 10", s.GCs)
	}

	// After GC, recomputation through the (cleared) cache is consistent.
	and01 := m.And(roots[0], roots[1])
	if got := bddToTruth(m, and01, n); got != truths[0]&truths[1] {
		t.Fatal("post-GC And incorrect")
	}
}

// TestSubstitutionEpochInvalidation ensures a Substitution built before a
// GC does not serve stale memo entries afterwards.
func TestSubstitutionEpochInvalidation(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(53))

	g := m.Protect(truthToBDD(m, n, rng.Uint64()&tableMask(n)))
	s := m.NewSubstitution()
	s.Set(1, g)

	f1 := m.Protect(truthToBDD(m, n, rng.Uint64()&tableMask(n)))
	r1 := m.Protect(s.Compose(f1))
	want1 := bddToTruth(m, r1, n)

	// Create garbage, collect, then reuse the substitution.
	for i := 0; i < 30; i++ {
		m.Xor(truthToBDD(m, n, rng.Uint64()&tableMask(n)), f1)
	}
	m.GC()

	f2 := m.Protect(truthToBDD(m, n, rng.Uint64()&tableMask(n)))
	r2 := s.Compose(f2)
	// Reference computation with a fresh substitution.
	s2 := m.NewSubstitution()
	s2.Set(1, g)
	if r2 != s2.Compose(f2) {
		t.Fatal("stale substitution memo after GC")
	}
	if got := bddToTruth(m, s.Compose(f1), n); got != want1 {
		t.Fatal("substitution result changed after GC")
	}
	checkInv(t, m)
}
