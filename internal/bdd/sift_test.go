package bdd

import (
	"math/rand"
	"testing"
)

// TestSiftOrderFindsInterleaving: starting from the pathological block
// order a0..a3 b0..b3, sifting must rediscover (something as good as)
// the interleaved order for a comparator.
func TestSiftOrderFindsInterleaving(t *testing.T) {
	const w = 4
	src := New()
	av := src.NewVars("a", w)
	bv := src.NewVars("b", w)
	eq := One
	for i := 0; i < w; i++ {
		eq = src.And(eq, src.Xnor(src.VarRef(av[i]), src.VarRef(bv[i])))
	}
	blockSize := src.Size(eq)

	varMap, best := SiftOrder(src, []Ref{eq}, 0)
	if best >= blockSize {
		t.Fatalf("sifting failed to improve: %d -> %d", blockSize, best)
	}
	// The interleaved comparator is 3w+2 nodes; sifting should get there
	// (it is reachable by single-variable moves from the block order).
	if best > 3*w+2 {
		t.Fatalf("sifting stuck above the interleaved optimum: %d > %d", best, 3*w+2)
	}
	// The returned map reproduces the reported size.
	if got := EvalOrder(src, []Ref{eq}, varMap); got != best {
		t.Fatalf("EvalOrder(varMap) = %d, reported %d", got, best)
	}
	// And semantics are preserved under the transfer.
	dst := New()
	dst.NewVars("x", src.NumVars())
	moved := Transfer(dst, src, eq, varMap)
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		a := make([]bool, src.NumVars())
		for i := range a {
			a[i] = rng.Intn(2) == 1
		}
		pulled := make([]bool, len(a))
		for srcVar, dstVar := range varMap {
			pulled[dstVar] = a[srcVar]
		}
		if src.Eval(eq, a) != dst.Eval(moved, pulled) {
			t.Fatal("sifted function differs semantically")
		}
	}
}

func TestSiftOrderAlreadyOptimal(t *testing.T) {
	src := New()
	src.NewVars("x", 4)
	// A single cube: every order gives the same size.
	f := src.AndN(src.VarRef(0), src.VarRef(1).Not(), src.VarRef(3))
	varMap, best := SiftOrder(src, []Ref{f}, 2)
	if best != src.Size(f) {
		t.Fatalf("sifting changed the size of a cube: %d vs %d", best, src.Size(f))
	}
	if len(varMap) != 4 {
		t.Fatalf("varMap length %d", len(varMap))
	}
}

func TestSiftOrderMultipleRoots(t *testing.T) {
	src := New()
	av := src.NewVars("a", 3)
	bv := src.NewVars("b", 3)
	f := One
	g := Zero
	for i := 0; i < 3; i++ {
		f = src.And(f, src.Xnor(src.VarRef(av[i]), src.VarRef(bv[i])))
		g = src.Or(g, src.And(src.VarRef(av[i]), src.VarRef(bv[i])))
	}
	before := src.SharedSize(f, g)
	_, best := SiftOrder(src, []Ref{f, g}, 0)
	if best > before {
		t.Fatalf("sifting made the pair worse: %d -> %d", before, best)
	}
}

func TestMoveVar(t *testing.T) {
	order := []Var{0, 1, 2, 3}
	if got := moveVar(order, 0, 3); got[3] != 0 || got[0] != 1 {
		t.Fatalf("moveVar forward: %v", got)
	}
	if got := moveVar(order, 3, 0); got[0] != 3 || got[1] != 0 {
		t.Fatalf("moveVar backward: %v", got)
	}
	if got := moveVar(order, 2, 2); got[2] != 2 {
		t.Fatalf("moveVar no-op: %v", got)
	}
	// Original untouched.
	if order[0] != 0 || order[3] != 3 {
		t.Fatal("moveVar mutated its input")
	}
}
