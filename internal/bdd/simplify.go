package bdd

// The Coudert–Berthet–Madre care-set simplification operators. Restrict
// (also called Reduce in Long's package) is the BDDSimplify the paper
// uses throughout: Restrict(f, c) returns a (hopefully smaller) BDD that
// agrees with f wherever c is true. Constrain is the generalized cofactor
// f↓c, which additionally satisfies useful image-computation identities
// but can blow up more readily; the paper's Theorem 3 holds for both.

// Restrict returns a function that agrees with f wherever the care set c
// holds. Outside c the result is arbitrary (chosen to shrink the BDD).
//
// Restrict(f, One) == f. By convention Restrict(f, Zero) == f: an empty
// care set places no constraint at all, and returning f keeps the
// operator total and idempotent. (Classical presentations leave this case
// undefined.)
func (m *Manager) Restrict(f, c Ref) Ref {
	if c == One || c == Zero || f.IsConst() {
		return f
	}
	if f == c {
		return One
	}
	if f == c.Not() {
		return Zero
	}
	return m.restrict(f, c)
}

func (m *Manager) restrict(f, c Ref) Ref {
	if c == One || f.IsConst() {
		return f
	}
	if f == c {
		return One
	}
	if f == c.Not() {
		return Zero
	}

	if r, ok := m.cacheLookup(opRestrict, f, c, 0); ok {
		return r
	}

	lf, lc := m.Level(f), m.Level(c)
	var r Ref
	switch {
	case lc < lf:
		// c's top variable does not occur (at the top) in f:
		// existentially quantify it out of the care set — the paper's
		// "Restrict(f, c_x or c_x̄)" case.
		r = m.restrict(f, m.Or(m.Low(c), m.High(c)))
	case lf < lc:
		// f branches on a variable the care set does not constrain yet.
		r = m.mk(lf, m.restrict(m.Low(f), c), m.restrict(m.High(f), c))
	default:
		c0, c1 := m.Low(c), m.High(c)
		f0, f1 := m.Low(f), m.High(f)
		switch {
		case c1 == Zero: // x must be false in the care set
			r = m.restrict(f0, c0)
		case c0 == Zero: // x must be true in the care set
			r = m.restrict(f1, c1)
		default:
			r = m.mk(lf, m.restrict(f0, c0), m.restrict(f1, c1))
		}
	}
	m.cacheStore(opRestrict, f, c, 0, r)
	return r
}

// Constrain returns the generalized cofactor f↓c. Like Restrict it agrees
// with f wherever c holds; unlike Restrict it maps each point outside c
// to the value of f at the "nearest" point inside c, which gives it the
// algebraic identity ∃x.(f ∧ c) = ∃x.(f↓c ∧ c) used in image
// computations. Constrain(f, Zero) is Zero by convention.
func (m *Manager) Constrain(f, c Ref) Ref {
	if c == Zero {
		return Zero
	}
	return m.constrain(f, c)
}

func (m *Manager) constrain(f, c Ref) Ref {
	if c == One || f.IsConst() {
		return f
	}
	if f == c {
		return One
	}
	if f == c.Not() {
		return Zero
	}

	if r, ok := m.cacheLookup(opConstrain, f, c, 0); ok {
		return r
	}

	lf, lc := m.Level(f), m.Level(c)
	top := lf
	if lc < top {
		top = lc
	}
	c0, c1 := m.cofactor(c, top)
	f0, f1 := m.cofactor(f, top)

	var r Ref
	switch {
	case c1 == Zero:
		r = m.constrain(f0, c0)
	case c0 == Zero:
		r = m.constrain(f1, c1)
	default:
		r = m.mk(top, m.constrain(f0, c0), m.constrain(f1, c1))
	}
	m.cacheStore(opConstrain, f, c, 0, r)
	return r
}

// Simplifier selects which care-set simplification operator the
// higher-level algorithms use. The paper uses Restrict; Constrain is
// provided for the ablation study (Theorem 3 covers both).
type Simplifier int

const (
	// UseRestrict selects the Restrict (Reduce) operator.
	UseRestrict Simplifier = iota
	// UseConstrain selects the generalized cofactor.
	UseConstrain
)

// Simplify applies the selected care-set operator.
func (m *Manager) Simplify(s Simplifier, f, c Ref) Ref {
	if s == UseConstrain {
		return m.Constrain(f, c)
	}
	return m.Restrict(f, c)
}
