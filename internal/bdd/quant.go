package bdd

// Quantification and the relational product (AndExists). Cubes are BDDs
// that are conjunctions of positive literals; MkCube builds them.

// MkCube returns the conjunction of the positive literals of vars.
func (m *Manager) MkCube(vars []Var) Ref {
	// Build bottom-up (largest level first) so each mk call is O(1).
	sorted := append([]Var(nil), vars...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	acc := One
	for _, v := range sorted {
		acc = m.mk(uint32(v), Zero, acc)
	}
	return acc
}

// CubeVars decomposes a positive cube back into its variables. It panics
// if cube is not a conjunction of positive literals.
func (m *Manager) CubeVars(cube Ref) []Var {
	var vs []Var
	for cube != One {
		if cube.IsConst() || m.Low(cube) != Zero {
			panic("bdd: CubeVars of non-cube")
		}
		vs = append(vs, m.TopVar(cube))
		cube = m.High(cube)
	}
	return vs
}

// Exists returns ∃cube. f — the existential quantification of f over the
// variables of the (positive) cube.
func (m *Manager) Exists(f, cube Ref) Ref {
	if cube == One || f.IsConst() {
		return f
	}
	return m.exists(f, cube)
}

// ForAll returns ∀cube. f, via the duality ∀x.f == ¬∃x.¬f.
func (m *Manager) ForAll(f, cube Ref) Ref {
	return m.Exists(f.Not(), cube).Not()
}

func (m *Manager) exists(f, cube Ref) Ref {
	if f.IsConst() {
		return f
	}
	top := m.Level(f)
	// Skip quantified variables above f's support: they do not affect f.
	for !cube.IsConst() && m.Level(cube) < top {
		cube = m.High(cube)
	}
	if cube == One {
		return f
	}

	if r, ok := m.cacheLookup(opExists, f, cube, 0); ok {
		return r
	}

	f0, f1 := m.cofactor(f, top)
	var r Ref
	if m.Level(cube) == top {
		rest := m.High(cube)
		r0 := m.exists(f0, rest)
		if r0 == One {
			r = One
		} else {
			r = m.Or(r0, m.exists(f1, rest))
		}
	} else {
		r = m.mk(top, m.exists(f0, cube), m.exists(f1, cube))
	}
	m.cacheStore(opExists, f, cube, 0, r)
	return r
}

// AndExists returns ∃cube. (f ∧ g) without building the full conjunction
// first — the relational-product primitive of symbolic image computation
// (Burch–Clarke–Long partitioned transition relations, ref [4] of the
// paper).
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	return m.andExists(f, g, cube)
}

func (m *Manager) andExists(f, g, cube Ref) Ref {
	// Terminal and coincidence cases.
	switch {
	case f == Zero || g == Zero || f == g.Not():
		return Zero
	case f == One && g == One:
		return One
	case f == One || f == g:
		return m.Exists(g, cube)
	case g == One:
		return m.Exists(f, cube)
	}
	if cube == One {
		return m.And(f, g)
	}
	// Canonical operand order for the cache.
	if f.index() > g.index() {
		f, g = g, f
	}

	top := m.Level(f)
	if l := m.Level(g); l < top {
		top = l
	}
	for !cube.IsConst() && m.Level(cube) < top {
		cube = m.High(cube)
	}
	if cube == One {
		return m.And(f, g)
	}

	if r, ok := m.cacheLookup(opAndExists, f, g, cube); ok {
		return r
	}

	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	var r Ref
	if m.Level(cube) == top {
		rest := m.High(cube)
		r0 := m.andExists(f0, g0, rest)
		if r0 == One {
			r = One
		} else {
			r = m.Or(r0, m.andExists(f1, g1, rest))
		}
	} else {
		r = m.mk(top, m.andExists(f0, g0, cube), m.andExists(f1, g1, cube))
	}
	m.cacheStore(opAndExists, f, g, cube, r)
	return r
}
