package bdd

// AllSat enumeration: walk every path to the One terminal, yielding each
// as a cube over the variables actually tested on that path. The cubes
// are pairwise disjoint and their union is exactly the function — useful
// for small counterexample sets, test oracles, and debugging.

// AllSat calls yield for every satisfying cube of f, in lexicographic
// path order (low branch first). Enumeration stops early if yield
// returns false. The []Lit slice passed to yield is reused between
// calls; copy it if it must outlive the callback.
//
// The number of cubes can be exponential in the BDD size; callers
// enumerate at their own risk (or stop via yield).
func (m *Manager) AllSat(f Ref, yield func([]Lit) bool) {
	if f == Zero {
		return
	}
	var path []Lit
	var walk func(r Ref) bool
	walk = func(r Ref) bool {
		if r == One {
			return yield(path)
		}
		if r == Zero {
			return true
		}
		v := m.TopVar(r)
		path = append(path, Lit{Var: v, Val: false})
		if !walk(m.Low(r)) {
			return false
		}
		path[len(path)-1].Val = true
		if !walk(m.High(r)) {
			return false
		}
		path = path[:len(path)-1]
		return true
	}
	walk(f)
}

// AllSatCubes collects up to max satisfying cubes (max <= 0 collects all
// — beware exponential blowup).
func (m *Manager) AllSatCubes(f Ref, max int) [][]Lit {
	var out [][]Lit
	m.AllSat(f, func(cube []Lit) bool {
		out = append(out, append([]Lit(nil), cube...))
		return max <= 0 || len(out) < max
	})
	return out
}

// CountPaths returns the number of distinct paths from f to the One
// terminal — the number of cubes AllSat would yield. Unlike SatCount it
// does not weight by unassigned variables.
func (m *Manager) CountPaths(f Ref) int {
	memo := make(map[Ref]int)
	var count func(r Ref) int
	count = func(r Ref) int {
		if r == One {
			return 1
		}
		if r == Zero {
			return 0
		}
		if c, ok := memo[r]; ok {
			return c
		}
		c := count(m.Low(r)) + count(m.High(r))
		memo[r] = c
		return c
	}
	return count(f)
}
