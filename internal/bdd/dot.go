package bdd

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT writes a Graphviz rendering of the BDDs rooted at the given
// refs. Solid edges are then-branches, dashed edges else-branches, and
// dotted marks on an edge indicate complementation. Roots are drawn as
// plaintext labels root0, root1, ...
func (m *Manager) WriteDOT(w io.Writer, roots ...Ref) error {
	var b strings.Builder
	b.WriteString("digraph bdd {\n")
	b.WriteString("  rankdir=TB;\n")

	// Collect reachable nodes grouped by level for rank constraints.
	seen := make(map[uint32]struct{})
	var order []uint32
	var walk func(r Ref)
	walk = func(r Ref) {
		idx := r.index()
		if _, ok := seen[idx]; ok {
			return
		}
		seen[idx] = struct{}{}
		order = append(order, idx)
		n := m.at(idx)
		if n.level == terminalLevel {
			return
		}
		walk(n.low)
		walk(n.high)
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	byLevel := make(map[uint32][]uint32)
	for _, idx := range order {
		n := m.at(idx)
		if n.level == terminalLevel {
			fmt.Fprintf(&b, "  n%d [shape=box,label=\"1\"];\n", idx)
			continue
		}
		byLevel[n.level] = append(byLevel[n.level], idx)
		fmt.Fprintf(&b, "  n%d [shape=circle,label=\"%s\"];\n", idx, m.VarName(Var(n.level)))
	}

	levels := make([]uint32, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	for _, l := range levels {
		b.WriteString("  { rank=same;")
		for _, idx := range byLevel[l] {
			fmt.Fprintf(&b, " n%d;", idx)
		}
		b.WriteString(" }\n")
	}

	edge := func(from uint32, to Ref, style string) {
		extra := ""
		if to.complement() {
			extra = ",arrowhead=odot"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [style=%s%s];\n", from, to.index(), style, extra)
	}
	for _, idx := range order {
		n := m.at(idx)
		if n.level == terminalLevel {
			continue
		}
		edge(idx, n.high, "solid")
		edge(idx, n.low, "dashed")
	}

	for i, r := range roots {
		fmt.Fprintf(&b, "  root%d [shape=plaintext,label=\"root%d\"];\n", i, i)
		extra := ""
		if r.complement() {
			extra = ",arrowhead=odot"
		}
		fmt.Fprintf(&b, "  root%d -> n%d [style=bold%s];\n", i, r.index(), extra)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders a compact textual form of f: a disjunction of up to a
// few satisfying cubes, or the constant name. Intended for debugging and
// error messages, not parsing.
func (m *Manager) String(f Ref) string {
	switch f {
	case One:
		return "true"
	case Zero:
		return "false"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<%d nodes, top %s", m.Size(f), m.VarName(m.TopVar(f)))
	cube := m.AnySat(f)
	b.WriteString(", e.g. ")
	for i, lit := range cube {
		if i > 0 {
			b.WriteString(" ")
		}
		if !lit.Val {
			b.WriteString("!")
		}
		b.WriteString(m.VarName(lit.Var))
	}
	b.WriteString(">")
	return b.String()
}
