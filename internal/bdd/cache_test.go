package bdd

import (
	"math/rand"
	"testing"
)

// TestCacheHashOperandIndependence pins the collision class the old
// pre-mix (f ^ g<<16 ^ h<<32) suffered from: operand bits overlapped
// before the multiply, so triples whose differences cancelled in the
// overlap — bit 16 of f against bit 0 of g, bit 32 of g against bit 0 of
// h — hashed identically no matter the finalizer. Per-operand odd
// multipliers break the cancellation.
func TestCacheHashOperandIndependence(t *testing.T) {
	collidingPairs := [][2][3]Ref{
		{{1 << 16, 0, 0}, {0, 1, 0}},       // f bit16 vs g bit0
		{{0, 1 << 16, 0}, {0, 0, 1}},       // g bit16 vs h bit0
		{{1 << 17, 2, 0}, {0, 0, 0}},       // f^(g<<16) self-cancels to zero
		{{1<<16 | 5, 9, 3}, {5, 9 | 1, 3}}, // mixed overlap
		{{3, 1 << 16, 7}, {3, 0, 7 | 1}},   // g/h overlap
	}
	for _, pair := range collidingPairs {
		a, b := pair[0], pair[1]
		if a == b {
			continue
		}
		if cacheHash(opITE, a[0], a[1], a[2]) == cacheHash(opITE, b[0], b[1], b[2]) {
			t.Fatalf("systematic collision survives: %v vs %v", a, b)
		}
	}
}

// TestCacheHashSpread: on random triples the low bits (the part that
// indexes the direct-mapped table) should look uniform — a crude
// bucket-occupancy check, not a statistical test.
func TestCacheHashSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const buckets = 256
	counts := make([]int, buckets)
	const n = 64 * buckets
	for i := 0; i < n; i++ {
		h := cacheHash(uint32(rng.Intn(6)), Ref(rng.Uint32()), Ref(rng.Uint32()), Ref(rng.Uint32()))
		counts[h%buckets]++
	}
	for b, c := range counts {
		// Expected 64 per bucket; flag anything wildly off.
		if c < 16 || c > 256 {
			t.Fatalf("bucket %d holds %d of %d hashes", b, c, n)
		}
	}
}

// TestCacheStillCorrect: the cache is an accelerator, never a source of
// truth — but a store must be retrievable under the same key.
func TestCacheRoundTrip(t *testing.T) {
	m := New()
	m.NewVars("x", 4)
	f, g, h := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	m.cacheStore(opITE, f, g, h, m.VarRef(3))
	got, ok := m.cacheLookup(opITE, f, g, h)
	if !ok || got != m.VarRef(3) {
		t.Fatalf("cache round trip failed: %v %v", got, ok)
	}
	if _, ok := m.cacheLookup(opExists, f, g, h); ok {
		t.Fatal("op tag ignored in lookup")
	}
}
