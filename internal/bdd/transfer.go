package bdd

// Transfer copies BDDs between managers, optionally remapping variables.
// Because the destination may order the (remapped) variables differently,
// the copy rebuilds each node with a full ITE rather than structurally —
// the standard way to evaluate an alternative static variable order (the
// paper's ordering heuristic reference [19]) without destructive
// reordering machinery.

// Transfer copies f from src into dst. varMap gives, for each source
// variable (indexed by source level), the corresponding destination
// variable; a nil varMap maps each variable to the same index. All
// variables in f's support must be declared in dst.
func Transfer(dst, src *Manager, f Ref, varMap []Var) Ref {
	t := &transferCtx{dst: dst, src: src, varMap: varMap, memo: make(map[Ref]Ref)}
	return t.copy(f)
}

// NewWorker returns a fresh, empty Manager declaring the same variables
// (same names, same order) as m and inheriting its node limit and
// deadline. Managers are not safe for concurrent use, so the parallel
// evaluation layer (internal/par + core.Options.Workers) gives each
// worker goroutine its own Manager created here and ships live functions
// across with Transfer/TransferAll. Because the variable order is
// identical and BDDs are canonical, sizes and shared sizes measured on a
// worker agree exactly with the source Manager's.
//
// The inherited node limit bounds each worker independently; a parallel
// run may therefore hold up to workers× the sequential node count before
// aborting. The inherited deadline keeps a runaway operation on a worker
// abortable exactly like one on the source Manager.
func (m *Manager) NewWorker() *Manager {
	w := NewWithSize(1024, DefaultCacheBits)
	w.varNames = append([]string(nil), m.varNames...)
	w.nodeLimit = m.nodeLimit
	w.deadline = m.deadline
	w.ctx = m.ctx
	return w
}

// TransferAll copies several roots, sharing the rebuild memo so common
// subgraphs transfer once.
func TransferAll(dst, src *Manager, fs []Ref, varMap []Var) []Ref {
	t := &transferCtx{dst: dst, src: src, varMap: varMap, memo: make(map[Ref]Ref)}
	out := make([]Ref, len(fs))
	for i, f := range fs {
		out[i] = t.copy(f)
	}
	return out
}

type transferCtx struct {
	dst, src *Manager
	varMap   []Var
	memo     map[Ref]Ref
}

func (t *transferCtx) copy(f Ref) Ref {
	if f == One {
		return One
	}
	if f == Zero {
		return Zero
	}
	reg := f &^ 1
	if r, ok := t.memo[reg]; ok {
		return r ^ (f & 1)
	}
	srcVar := Var(t.src.Level(reg))
	dstVar := srcVar
	if t.varMap != nil {
		if int(srcVar) >= len(t.varMap) {
			panic("bdd: Transfer varMap does not cover the support")
		}
		dstVar = t.varMap[srcVar]
	}
	lo := t.copy(t.src.Low(reg))
	hi := t.copy(t.src.High(reg))
	r := t.dst.ite(t.dst.VarRef(dstVar), hi, lo)
	t.memo[reg] = r
	return r ^ (f & 1)
}
