package bdd

import "fmt"

// Transfer copies BDDs between managers, optionally remapping variables.
// Because the destination may order the (remapped) variables differently,
// the copy rebuilds each node with a full ITE rather than structurally —
// the standard way to evaluate an alternative static variable order (the
// paper's ordering heuristic reference [19]) without destructive
// reordering machinery.
//
// The per-call memo is a slice indexed by source node index with a
// generation stamp, owned by the destination manager: successive
// Transfers into the same destination reuse the arrays and invalidate
// them by bumping the generation, so the map allocation and hashing that
// used to dominate small transfers is gone entirely (BenchmarkTransfer
// measures the difference against the old map memo). The scratch lives
// on the DESTINATION because that side is always goroutine-private —
// the parallel scoring layer transfers concurrently from one shared
// source into many per-worker destinations.

// VarMismatchError is the panic value raised (and converted to an error
// by Guard) when a Transfer reaches a variable in the source function's
// support that the destination manager has not declared. The typical way
// to get here: create a worker with NewWorker, then AddVar/NewVar on the
// parent — the worker's variable snapshot has silently diverged.
type VarMismatchError struct {
	Var     Var // destination variable the copy needed
	DstVars int // variables declared in the destination
	SrcVars int // variables declared in the source
}

func (e *VarMismatchError) Error() string {
	return fmt.Sprintf("bdd: Transfer needs destination variable %d but only %d are declared (source declares %d): worker created before the source's variables were complete?",
		int(e.Var), e.DstVars, e.SrcVars)
}

// Transfer copies f from src into dst. varMap gives, for each source
// variable (indexed by source level), the corresponding destination
// variable; a nil varMap maps each variable to the same index. All
// variables in f's support must be declared in dst; a violation panics
// with *VarMismatchError (catch it with Guard).
func Transfer(dst, src *Manager, f Ref, varMap []Var) Ref {
	t := newTransferCtx(dst, src, varMap)
	return t.copy(f)
}

// NewWorker returns a fresh, empty Manager declaring the same variables
// (same names, same order) as m and inheriting its node limit and
// deadline. Sequential managers are not safe for concurrent use, so the
// per-worker-manager evaluation layer (internal/par + core.Options.
// Workers) gives each worker goroutine its own Manager created here and
// ships live functions across with Transfer/TransferAll. Because the
// variable order is identical and BDDs are canonical, sizes and shared
// sizes measured on a worker agree exactly with the source Manager's.
//
// The snapshot is taken at call time: variables declared on m afterwards
// do not exist in the worker, and a Transfer whose support reaches one
// fails with *VarMismatchError rather than silently building a wrong
// function. Create workers only after the source's variables are final
// (or re-create them after declaring more).
//
// The inherited node limit bounds each worker independently; a parallel
// run may therefore hold up to workers× the sequential node count before
// aborting. The inherited deadline keeps a runaway operation on a worker
// abortable exactly like one on the source Manager.
func (m *Manager) NewWorker() *Manager {
	w := NewWithSize(1024, DefaultCacheBits)
	w.varNames = append([]string(nil), m.varNames...)
	w.nodeLimit = m.nodeLimit
	w.deadline = m.deadline
	w.ctx = m.ctx
	return w
}

// TransferAll copies several roots, sharing the rebuild memo so common
// subgraphs transfer once.
func TransferAll(dst, src *Manager, fs []Ref, varMap []Var) []Ref {
	t := newTransferCtx(dst, src, varMap)
	out := make([]Ref, len(fs))
	for i, f := range fs {
		out[i] = t.copy(f)
	}
	return out
}

type transferCtx struct {
	dst, src *Manager
	varMap   []Var
	val      []Ref    // memo value per source node index
	gen      []uint32 // generation stamp validating val
	cur      uint32
}

// newTransferCtx prepares the destination-owned memo scratch for one
// Transfer/TransferAll call: size it to the source's index bound, then
// invalidate prior contents with a generation bump (sweeping only on
// uint32 wraparound, as the computed cache does for its epochs).
func newTransferCtx(dst, src *Manager, varMap []Var) *transferCtx {
	bound := src.indexBound()
	if len(dst.xferVal) < bound {
		dst.xferVal = make([]Ref, bound)
		dst.xferGen = make([]uint32, bound)
		dst.xferCur = 0
	}
	dst.xferCur++
	if dst.xferCur == 0 {
		for i := range dst.xferGen {
			dst.xferGen[i] = 0
		}
		dst.xferCur = 1
	}
	return &transferCtx{
		dst: dst, src: src, varMap: varMap,
		val: dst.xferVal, gen: dst.xferGen, cur: dst.xferCur,
	}
}

func (t *transferCtx) copy(f Ref) Ref {
	if f == One {
		return One
	}
	if f == Zero {
		return Zero
	}
	reg := f &^ 1
	idx := reg.index()
	if t.gen[idx] == t.cur {
		return t.val[idx] ^ (f & 1)
	}
	srcVar := Var(t.src.Level(reg))
	dstVar := srcVar
	if t.varMap != nil {
		if int(srcVar) >= len(t.varMap) {
			panic("bdd: Transfer varMap does not cover the support")
		}
		dstVar = t.varMap[srcVar]
	}
	if int(dstVar) < 0 || int(dstVar) >= t.dst.NumVars() {
		panic(&VarMismatchError{
			Var:     dstVar,
			DstVars: t.dst.NumVars(),
			SrcVars: t.src.NumVars(),
		})
	}
	lo := t.copy(t.src.Low(reg))
	hi := t.copy(t.src.High(reg))
	r := t.dst.ite(t.dst.VarRef(dstVar), hi, lo)
	t.val[idx] = r
	t.gen[idx] = t.cur
	return r ^ (f & 1)
}
