package bdd

// This file implements the Boolean connectives. Everything funnels into a
// single memoized if-then-else (ITE) recursion, the standard construction
// of Brace–Rudell–Bryant. The normalization rules below keep the computed
// cache effective by mapping equivalent calls onto one canonical triple.

// ITE returns the function "if f then g else h".
func (m *Manager) ITE(f, g, h Ref) Ref {
	return m.ite(f, g, h)
}

// And returns the conjunction of f and g.
func (m *Manager) And(f, g Ref) Ref { return m.ite(f, g, Zero) }

// Or returns the disjunction of f and g.
func (m *Manager) Or(f, g Ref) Ref { return m.ite(f, One, g) }

// Xor returns the exclusive-or of f and g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ite(f, g.Not(), g) }

// Xnor returns the equivalence (biconditional) of f and g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ite(f, g, g.Not()) }

// Nand returns the negated conjunction of f and g.
func (m *Manager) Nand(f, g Ref) Ref { return m.And(f, g).Not() }

// Nor returns the negated disjunction of f and g.
func (m *Manager) Nor(f, g Ref) Ref { return m.Or(f, g).Not() }

// Imp returns the implication f => g.
func (m *Manager) Imp(f, g Ref) Ref { return m.ite(f, g, One) }

// Diff returns f AND NOT g (set difference when Refs denote sets).
func (m *Manager) Diff(f, g Ref) Ref { return m.ite(f, g.Not(), Zero) }

// Implies reports whether f => g is a tautology, without building any new
// nodes beyond those needed by the And.
func (m *Manager) Implies(f, g Ref) bool { return m.And(f, g.Not()) == Zero }

// AndN folds And over its arguments; AndN() is One.
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := One
	for _, f := range fs {
		acc = m.And(acc, f)
		if acc == Zero {
			return Zero
		}
	}
	return acc
}

// OrN folds Or over its arguments; OrN() is Zero.
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := Zero
	for _, f := range fs {
		acc = m.Or(acc, f)
		if acc == One {
			return One
		}
	}
	return acc
}

// iteNormal applies the terminal cases and normalization rules shared by
// the sequential (ite) and parallel (parIte) recursions. When the call
// resolves without recursing it returns done=true with the result;
// otherwise it returns the canonicalized triple (first argument and
// then-argument uncomplemented) and the complement bit to apply to the
// recursion's result.
func (m *Manager) iteNormal(f, g, h Ref) (cf, cg, ch, outc, res Ref, done bool) {
	// Collapse operand coincidences first; they both terminate the
	// recursion early and improve normalization below.
	if f == g {
		g = One
	} else if f == g.Not() {
		g = Zero
	}
	if f == h {
		h = Zero
	} else if f == h.Not() {
		h = One
	}

	// Terminal cases.
	switch {
	case f == One:
		return 0, 0, 0, 0, g, true
	case f == Zero:
		return 0, 0, 0, 0, h, true
	case g == h:
		return 0, 0, 0, 0, g, true
	case g == One && h == Zero:
		return 0, 0, 0, 0, f, true
	case g == Zero && h == One:
		return 0, 0, 0, 0, f.Not(), true
	}

	// Normalization: for the commutative forms, put the operand with the
	// topmost variable (or, on ties, the smaller index) first so that
	// And(a,b) and And(b,a) share a cache line.
	switch {
	case g == One: // OR(f, h)
		if m.before(h, f) {
			f, h = h, f
		}
	case h == Zero: // AND(f, g)
		if m.before(g, f) {
			f, g = g, f
		}
	case g == Zero: // AND(NOT f, h) == NOT OR(f, NOT h)
		if m.before(h, f) {
			f, h = h.Not(), f.Not()
		}
	case h == One: // OR(NOT f, g) == NOT AND(f, NOT g)
		if m.before(g, f) {
			f, g = g.Not(), f.Not()
		}
	case g == h.Not(): // XOR-shaped: ITE(f,g,!g) == ITE(g,f,!f)
		if m.before(g, f) {
			f, g = g, f
			h = g.Not()
		}
	}

	// Canonical polarity: first argument uncomplemented...
	if f.complement() {
		f = f.Not()
		g, h = h, g
	}
	// ...and then-argument uncomplemented (complement the output).
	if g.complement() {
		outc = 1
		g = g.Not()
		h = h.Not()
	}
	return f, g, h, outc, 0, false
}

// iteTop returns the topmost level among the (non-constant) operands.
func (m *Manager) iteTop(f, g, h Ref) uint32 {
	top := m.Level(f)
	if l := m.Level(g); l < top {
		top = l
	}
	if l := m.Level(h); l < top {
		top = l
	}
	return top
}

// ite is the memoized recursion behind every connective.
func (m *Manager) ite(f, g, h Ref) Ref {
	f, g, h, outc, res, done := m.iteNormal(f, g, h)
	if done {
		return res
	}

	if r, ok := m.cacheLookup(opITE, f, g, h); ok {
		return r ^ outc
	}

	top := m.iteTop(f, g, h)
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)

	lo := m.ite(f0, g0, h0)
	hi := m.ite(f1, g1, h1)
	r := m.mk(top, lo, hi)

	m.cacheStore(opITE, f, g, h, r)
	return r ^ outc
}

// before reports whether a's top variable sits strictly above b's, with
// node index as a deterministic tie-breaker. Used only for cache-friendly
// operand ordering, never for semantics.
func (m *Manager) before(a, b Ref) bool {
	la, lb := m.Level(a), m.Level(b)
	if la != lb {
		return la < lb
	}
	return a.index() < b.index()
}
