package bdd

import "time"

// Operation tags for the computed cache. Each memoized operation gets a
// distinct tag so results of different operations on the same operands
// cannot collide.
const (
	opNone uint32 = iota
	opITE
	opExists
	opAndExists
	opRestrict
	opConstrain
	opCofactor
)

// cacheEntry memoizes one (op, f, g, h) -> result quadruple.
type cacheEntry struct {
	op      uint32
	f, g, h Ref
	res     Ref
}

// computedCache is a direct-mapped cache: colliding entries overwrite each
// other. This is the classical BDD-package design — correctness never
// depends on a hit, only speed.
type computedCache struct {
	entries []cacheEntry
	mask    uint32
}

func (c *computedCache) init(bits uint) {
	if bits < 8 {
		bits = 8
	}
	c.entries = make([]cacheEntry, 1<<bits)
	c.mask = uint32(len(c.entries) - 1)
}

func (c *computedCache) memBytes() int {
	return len(c.entries) * 20
}

// clear invalidates every entry (used after GC, when node indices may be
// reused for different functions).
func (c *computedCache) clear() {
	for i := range c.entries {
		c.entries[i].op = opNone
	}
}

func cacheHash(op uint32, f, g, h Ref) uint32 {
	x := uint64(op)<<48 ^ uint64(f) ^ uint64(g)<<16 ^ uint64(h)<<32
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	return uint32(x)
}

// lookup probes the cache. The Manager funnels all probes through here so
// hit-rate statistics stay centralized. This is also a deadline
// checkpoint: when the direct-mapped cache thrashes, a recursion can
// spin through already-allocated nodes indefinitely without ever calling
// alloc, so the allocation-side check alone would never fire.
func (m *Manager) cacheLookup(op uint32, f, g, h Ref) (Ref, bool) {
	m.stats.CacheLookups++
	if !m.deadline.IsZero() && m.stats.CacheLookups%deadlineStride == 0 {
		if time.Now().After(m.deadline) {
			panic(&DeadlineError{Deadline: m.deadline})
		}
	}
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	return 0, false
}

// cacheStore records a computed result.
func (m *Manager) cacheStore(op uint32, f, g, h, res Ref) {
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	*e = cacheEntry{op: op, f: f, g: g, h: h, res: res}
}
