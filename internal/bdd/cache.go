package bdd

import "time"

// Operation tags for the computed cache. Each memoized operation gets a
// distinct tag so results of different operations on the same operands
// cannot collide.
const (
	opNone uint32 = iota
	opITE
	opExists
	opAndExists
	opRestrict
	opConstrain
	opCofactor
)

// cacheEntry memoizes one (op, f, g, h) -> result quadruple. An entry is
// valid only while its epoch matches the cache's current epoch: clearing
// the cache is a single epoch bump rather than an O(size) sweep (see
// clear). Zeroed entries carry epoch 0, which is never current.
type cacheEntry struct {
	op      uint32
	f, g, h Ref
	res     Ref
	epoch   uint32
}

// cacheEntryBytes is the in-memory size of a cacheEntry, for MemEstimate.
const cacheEntryBytes = 24

// computedCache is a direct-mapped cache: colliding entries overwrite each
// other. This is the classical BDD-package design — correctness never
// depends on a hit, only speed.
type computedCache struct {
	entries []cacheEntry
	mask    uint32

	// cur is the current epoch; entries stamped with an older epoch are
	// stale. It starts at 1 so zeroed entries (epoch 0) are born invalid.
	cur uint32
}

func (c *computedCache) init(bits uint) {
	if bits < 8 {
		bits = 8
	}
	c.entries = make([]cacheEntry, 1<<bits)
	c.mask = uint32(len(c.entries) - 1)
	c.cur = 1
}

func (c *computedCache) memBytes() int {
	return len(c.entries) * cacheEntryBytes
}

// clear invalidates every entry (used after GC, when node indices may be
// reused for different functions). It bumps the epoch instead of sweeping
// the array: a GC-heavy run with a 2^23-entry cache would otherwise spend
// its inter-iteration pauses writing 200MB of tags. On the (once per 2^32
// clears) epoch wraparound the full sweep runs to retire entries whose
// ancient stamps would otherwise read as current again.
func (c *computedCache) clear() {
	c.cur++
	if c.cur == 0 {
		c.sweep()
	}
}

// sweep is the eager O(size) invalidation clear used to perform; it now
// backs only the epoch-wraparound path (and benchmarks).
func (c *computedCache) sweep() {
	for i := range c.entries {
		c.entries[i] = cacheEntry{op: opNone}
	}
	c.cur = 1
}

// cacheHash mixes an operation tag and its operands into a cache index.
// Each operand gets its own odd multiplier (as hash3 does for
// unique-table triples) before the final avalanche. The earlier
// f ^ g<<16 ^ h<<32 pre-mix overlapped operand bits — any two triples
// whose differences cancelled in the overlap (e.g. flipping bit 16 of f
// versus bit 0 of g) collided for every finalizer — which on ITE-heavy
// workloads shows up directly as direct-mapped evictions.
func cacheHash(op uint32, f, g, h Ref) uint32 {
	x := uint64(op)*0xd6e8feb86659fd93 ^
		uint64(f)*0x9e3779b97f4a7c15 ^
		uint64(g)*0xff51afd7ed558ccd ^
		uint64(h)*0xc4ceb9fe1a85ec53
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return uint32(x)
}

// lookup probes the cache. The Manager funnels all probes through here so
// hit-rate statistics stay centralized. This is also a deadline
// checkpoint: when the direct-mapped cache thrashes, a recursion can
// spin through already-allocated nodes indefinitely without ever calling
// alloc, so the allocation-side check alone would never fire.
func (m *Manager) cacheLookup(op uint32, f, g, h Ref) (Ref, bool) {
	if s := m.shared; s != nil {
		return s.cacheLookup(m, op, f, g, h)
	}
	m.stats.CacheLookups++
	if !m.deadline.IsZero() && m.stats.CacheLookups%deadlineStride == 0 {
		if time.Now().After(m.deadline) {
			panic(&DeadlineError{Deadline: m.deadline})
		}
	}
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	if e.epoch == m.cache.cur && e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	return 0, false
}

// cacheStore records a computed result.
func (m *Manager) cacheStore(op uint32, f, g, h, res Ref) {
	if s := m.shared; s != nil {
		s.cacheStore(op, f, g, h, res)
		return
	}
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	*e = cacheEntry{op: op, f: f, g: g, h: h, res: res, epoch: m.cache.cur}
}
