package bdd

import "time"

// Operation tags for the computed cache. Each memoized operation gets a
// distinct tag so results of different operations on the same operands
// cannot collide.
const (
	opNone uint32 = iota
	opITE
	opExists
	opAndExists
	opRestrict
	opConstrain
	opCofactor
)

// cacheEntry memoizes one (op, f, g, h) -> result quadruple.
type cacheEntry struct {
	op      uint32
	f, g, h Ref
	res     Ref
}

// computedCache is a direct-mapped cache: colliding entries overwrite each
// other. This is the classical BDD-package design — correctness never
// depends on a hit, only speed.
type computedCache struct {
	entries []cacheEntry
	mask    uint32
}

func (c *computedCache) init(bits uint) {
	if bits < 8 {
		bits = 8
	}
	c.entries = make([]cacheEntry, 1<<bits)
	c.mask = uint32(len(c.entries) - 1)
}

func (c *computedCache) memBytes() int {
	return len(c.entries) * 20
}

// clear invalidates every entry (used after GC, when node indices may be
// reused for different functions).
func (c *computedCache) clear() {
	for i := range c.entries {
		c.entries[i].op = opNone
	}
}

// cacheHash mixes an operation tag and its operands into a cache index.
// Each operand gets its own odd multiplier (as hash3 does for
// unique-table triples) before the final avalanche. The earlier
// f ^ g<<16 ^ h<<32 pre-mix overlapped operand bits — any two triples
// whose differences cancelled in the overlap (e.g. flipping bit 16 of f
// versus bit 0 of g) collided for every finalizer — which on ITE-heavy
// workloads shows up directly as direct-mapped evictions.
func cacheHash(op uint32, f, g, h Ref) uint32 {
	x := uint64(op)*0xd6e8feb86659fd93 ^
		uint64(f)*0x9e3779b97f4a7c15 ^
		uint64(g)*0xff51afd7ed558ccd ^
		uint64(h)*0xc4ceb9fe1a85ec53
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return uint32(x)
}

// lookup probes the cache. The Manager funnels all probes through here so
// hit-rate statistics stay centralized. This is also a deadline
// checkpoint: when the direct-mapped cache thrashes, a recursion can
// spin through already-allocated nodes indefinitely without ever calling
// alloc, so the allocation-side check alone would never fire.
func (m *Manager) cacheLookup(op uint32, f, g, h Ref) (Ref, bool) {
	m.stats.CacheLookups++
	if !m.deadline.IsZero() && m.stats.CacheLookups%deadlineStride == 0 {
		if time.Now().After(m.deadline) {
			panic(&DeadlineError{Deadline: m.deadline})
		}
	}
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	return 0, false
}

// cacheStore records a computed result.
func (m *Manager) cacheStore(op uint32, f, g, h, res Ref) {
	e := &m.cache.entries[cacheHash(op, f, g, h)&m.cache.mask]
	*e = cacheEntry{op: op, f: f, g: g, h: h, res: res}
}
