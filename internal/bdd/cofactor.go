package bdd

// CofactorLit returns the cofactor of f with respect to the literal
// (v = val) — f with variable v fixed, wherever it occurs in the graph,
// not just at the root. Equivalent to Compose(f, v, constant) but cheaper
// and memoized through the shared computed cache.
func (m *Manager) CofactorLit(f Ref, v Var, val bool) Ref {
	lit := m.VarRef(v)
	if !val {
		lit = lit.Not()
	}
	return m.cofactorLit(f, uint32(v), lit)
}

// CofactorVar returns both cofactors of f with respect to v.
func (m *Manager) CofactorVar(f Ref, v Var) (lo, hi Ref) {
	return m.CofactorLit(f, v, false), m.CofactorLit(f, v, true)
}

func (m *Manager) cofactorLit(f Ref, level uint32, lit Ref) Ref {
	fl := m.Level(f)
	if fl > level {
		// Every variable in f sits below v in the order, so f cannot
		// depend on v (constants included: their level is maximal).
		return f
	}
	if fl == level {
		if lit.complement() {
			return m.Low(f)
		}
		return m.High(f)
	}
	if r, ok := m.cacheLookup(opCofactor, f, lit, 0); ok {
		return r
	}
	r := m.mk(fl, m.cofactorLit(m.Low(f), level, lit), m.cofactorLit(m.High(f), level, lit))
	m.cacheStore(opCofactor, f, lit, 0, r)
	return r
}
