package bdd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Deterministic byte programs (see fuzzFormula) used to populate
// managers with moderately interesting functions.
var sharedPrograms = [][]byte{
	{0, 8, 3, 16, 4},
	{0, 8, 4, 16, 5, 24, 3},
	{7, 15, 3, 0, 6, 32, 4},
	{1, 9, 17, 4, 4, 25, 5},
	{2, 10, 5, 18, 3, 26, 4, 34, 5},
	{0, 16, 5, 8, 6, 3},
	{33, 25, 4, 17, 3, 9, 5},
	{4, 12, 20, 3, 3, 28, 4},
}

// TestSharedMatchesSequential replays every program pair on a sequential
// and a concurrent manager and compares truth tables, plus the Ref-level
// canonicity between sequential and parallel recursions on the shared
// side.
func TestSharedMatchesSequential(t *testing.T) {
	for i, pa := range sharedPrograms {
		for j, pb := range sharedPrograms {
			m, vars := fuzzManager()
			fa, ta := fuzzFormula(m, vars, pa)
			fb, tb := fuzzFormula(m, vars, pb)
			want := fuzzEvalTable(m, m.And(fa, fb))
			if want != ta&tb {
				t.Fatalf("oracle self-check failed")
			}

			sm, svars := fuzzSharedManager()
			sa, _ := fuzzFormula(sm, svars, pa)
			sb, _ := fuzzFormula(sm, svars, pb)
			seq := sm.And(sa, sb)
			par := sm.ParAnd(sa, sb)
			if seq != par {
				t.Fatalf("programs %d,%d: ParAnd Ref %v != And Ref %v", i, j, par, seq)
			}
			if got := fuzzEvalTable(sm, seq); got != want {
				t.Fatalf("programs %d,%d: table %08x, want %08x", i, j, got, want)
			}
			if err := sm.CheckInvariants(); err != nil {
				t.Fatalf("programs %d,%d: %v", i, j, err)
			}
		}
	}
}

// TestSharedParOpsRefIdentity checks, on one shared manager, that every
// Par* entry point returns the exact Ref of its sequential counterpart —
// the canonicity property the whole SharedManager mode rests on — at
// several fork cutoffs including 0 (forking disabled).
func TestSharedParOpsRefIdentity(t *testing.T) {
	for _, depth := range []int{0, 1, 3, 8} {
		t.Run(fmt.Sprintf("forkDepth=%d", depth), func(t *testing.T) {
			m := NewShared(4, 12)
			m.SetForkDepth(depth)
			vars := m.NewVars("x", fuzzVars)

			var fs []Ref
			for _, p := range sharedPrograms {
				f, _ := fuzzFormula(m, vars, p)
				fs = append(fs, f)
			}

			for i := 0; i < len(fs); i++ {
				for j := i + 1; j < len(fs); j++ {
					f, g := fs[i], fs[j]
					if got, want := m.ParITE(f, g, fs[0]), m.ITE(f, g, fs[0]); got != want {
						t.Fatalf("ParITE %v != ITE %v", got, want)
					}
					cube := m.MkCube([]Var{vars[1], vars[3]})
					if got, want := m.ParAndExists(f, g, cube), m.AndExists(f, g, cube); got != want {
						t.Fatalf("ParAndExists %v != AndExists %v", got, want)
					}
				}
			}
			if got, want := m.ParAndN(fs...), m.AndN(fs...); got != want {
				t.Fatalf("ParAndN %v != AndN %v", got, want)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSharedConcurrentClients hammers one shared manager from many
// goroutines at once — the usage mode the sequential manager forbids —
// and then checks every result against a per-goroutine sequential
// oracle. Under -race this is the primary data-structure stress test.
func TestSharedConcurrentClients(t *testing.T) {
	const goroutines = 8
	sm := NewShared(goroutines, 12)
	sm.SetForkDepth(3)
	svars := sm.NewVars("x", fuzzVars)

	results := make([]Ref, goroutines)
	tables := make([]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pa := sharedPrograms[g%len(sharedPrograms)]
			pb := sharedPrograms[(g+3)%len(sharedPrograms)]
			fa, ta := fuzzFormula(sm, svars, pa)
			fb, tb := fuzzFormula(sm, svars, pb)
			var r Ref
			if g%2 == 0 {
				r = sm.ParAnd(fa, fb)
			} else {
				r = sm.ParITE(fa, One, fb) // Or
			}
			results[g] = r
			if g%2 == 0 {
				tables[g] = ta & tb
			} else {
				tables[g] = ta | tb
			}
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if got := fuzzEvalTable(sm, results[g]); got != tables[g] {
			t.Fatalf("goroutine %d: table %08x, want %08x", g, got, tables[g])
		}
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedGC checks mark/sweep on the sharded table: protected roots
// survive with their functions intact, garbage is reclaimed onto the
// shard free lists, and freed slots are reused by later operations.
func TestSharedGC(t *testing.T) {
	m := NewShared(2, 12)
	vars := m.NewVars("x", fuzzVars)

	keep, keepTable := fuzzFormula(m, vars, sharedPrograms[0])
	m.Protect(keep)
	for _, p := range sharedPrograms[1:] {
		f, _ := fuzzFormula(m, vars, p) // garbage
		_ = f
	}
	before := m.NumNodes()
	freed := m.GC()
	if freed <= 0 {
		t.Fatalf("GC freed nothing (had %d nodes)", before)
	}
	if got := m.NumNodes(); got != before-freed {
		t.Fatalf("NumNodes %d after freeing %d of %d", got, freed, before)
	}
	if got := fuzzEvalTable(m, keep); got != keepTable {
		t.Fatalf("protected function damaged by GC: %08x want %08x", got, keepTable)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Freed slots must be reusable: rebuild the garbage and re-verify.
	f2, t2 := fuzzFormula(m, vars, sharedPrograms[1])
	if got := fuzzEvalTable(m, f2); got != t2 {
		t.Fatalf("post-GC rebuild wrong: %08x want %08x", got, t2)
	}
	st := m.Stats()
	if st.GCs != 1 || st.FreedNodes != freed {
		t.Fatalf("stats GCs=%d FreedNodes=%d, want 1/%d", st.GCs, st.FreedNodes, freed)
	}
}

// TestSharedGCDefersUnderOps checks the stop-the-world guard: while a
// parallel entry point is in flight, GC refuses to run and counts the
// deferral; at quiescence it proceeds.
func TestSharedGCDefersUnderOps(t *testing.T) {
	m := NewShared(2, 10)
	vars := m.NewVars("x", fuzzVars)
	f, _ := fuzzFormula(m, vars, sharedPrograms[0])
	_ = f

	m.shared.beginOp() // simulate an in-flight ParITE
	if freed := m.GC(); freed != 0 {
		t.Fatalf("GC ran under in-flight op (freed %d)", freed)
	}
	if m.GCDeferred() != 1 {
		t.Fatalf("GCDeferred = %d, want 1", m.GCDeferred())
	}
	m.shared.endOp()
	m.GC() // must not defer now
	if m.GCDeferred() != 1 {
		t.Fatalf("GCDeferred moved at quiescence: %d", m.GCDeferred())
	}
}

// TestSharedNodeLimit checks that the concurrent allocator honors the
// node limit with the same typed panic/Guard contract as sequential.
func TestSharedNodeLimit(t *testing.T) {
	m := NewShared(2, 10)
	vars := m.NewVars("x", fuzzVars)
	m.SetNodeLimit(4)
	err := Guard(func() {
		for _, p := range sharedPrograms {
			fuzzFormula(m, vars, p)
		}
	})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	m.SetNodeLimit(0)
	if _, tt := fuzzFormula(m, vars, sharedPrograms[0]); tt == 0 && false {
		t.Fatal("unreachable")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("manager unusable after limit abort: %v", err)
	}
}

// TestSharedShardGrowth pushes enough distinct nodes through one manager
// to force per-shard bucket growth and multiple arena chunks, then
// validates structure. fuzzVars functions are too small for that, so
// build wide disjunctions over many variables.
func TestSharedShardGrowth(t *testing.T) {
	m := NewShared(2, 14)
	const n = 64
	vars := m.NewVars("y", n)
	// Build all prefix ORs and suffix ANDs: O(n^2) distinct nodes spread
	// across levels, comfortably above the 128-bucket/shard initial size.
	var fs []Ref
	for i := 0; i < n; i++ {
		acc := Zero
		for j := i; j < n; j++ {
			acc = m.Or(acc, m.And(m.VarRef(vars[j]), m.VarRef(vars[(j+7)%n])))
		}
		fs = append(fs, acc)
	}
	if got := m.ParAndN(fs...); got != m.AndN(fs...) {
		t.Fatal("ParAndN diverged from AndN after growth")
	}
	if m.NumNodes() < 1000 {
		t.Fatalf("growth test underpowered: %d nodes", m.NumNodes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVarMismatchError (satellite fix): a worker snapshots the parent's
// variables at creation; transferring a function whose support includes
// a variable declared afterwards must fail with the typed error, not
// silently diverge.
func TestVarMismatchError(t *testing.T) {
	m := New()
	a := m.NewVar("a")
	w := m.NewWorker() // snapshot: {a}
	b := m.NewVar("b") // parent diverges
	f := m.And(m.VarRef(a), m.VarRef(b))

	defer func() {
		r := recover()
		ve, ok := r.(*VarMismatchError)
		if !ok {
			t.Fatalf("panic value %v (%T), want *VarMismatchError", r, r)
		}
		if ve.Var != b || ve.DstVars != 1 || ve.SrcVars != 2 {
			t.Fatalf("error fields %+v, want Var=%d DstVars=1 SrcVars=2", ve, b)
		}
		if ve.Error() == "" {
			t.Fatal("empty error string")
		}
	}()
	Transfer(w, m, f, nil)
	t.Fatal("Transfer succeeded past the worker's variable snapshot")
}

// TestVarMismatchOKOnOldSupport: the check is support-precise — a
// function untouched by post-snapshot variables still transfers.
func TestVarMismatchOKOnOldSupport(t *testing.T) {
	m := New()
	a := m.NewVar("a")
	w := m.NewWorker()
	m.NewVar("b")
	f := m.VarRef(a)
	if got := Transfer(w, m, f, nil); got != w.VarRef(a) {
		t.Fatalf("Transfer of old-support function wrong: %v", got)
	}
}

// TestTransferMemoReuse: repeated transfers into one destination reuse
// the generation-stamped scratch and stay correct (the bug mode would be
// a stale memo entry surviving a generation bump).
func TestTransferMemoReuse(t *testing.T) {
	m, vars := fuzzManager()
	w := m.NewWorker()
	for i, p := range sharedPrograms {
		f, table := fuzzFormula(m, vars, p)
		got := Transfer(w, m, f, nil)
		if gt := fuzzEvalTable(w, got); gt != table {
			t.Fatalf("transfer %d: table %08x want %08x", i, gt, table)
		}
		if back := Transfer(m, w, got, nil); back != f {
			t.Fatalf("transfer %d: round trip moved Ref", i)
		}
	}
}

// TestCacheEpochClear (satellite): clear is an epoch bump that
// invalidates hits, and the uint32 wraparound falls back to a sweep
// rather than resurrecting entries stamped 2^32 clears ago.
func TestCacheEpochClear(t *testing.T) {
	var c computedCache
	c.init(8)
	c.entries[5] = cacheEntry{op: opITE, f: 2, g: 4, h: 6, res: 8, epoch: c.cur}
	c.clear()
	if e := &c.entries[5]; e.epoch == c.cur {
		t.Fatal("entry survived clear")
	}

	// Wraparound: an ancient entry stamped with what will become the
	// current epoch again must be swept away.
	c.cur = ^uint32(0) - 1
	c.entries[7] = cacheEntry{op: opITE, f: 1, g: 3, h: 5, res: 7, epoch: 1}
	c.clear() // cur -> MaxUint32
	c.clear() // wraps -> sweep -> cur 1
	if c.cur != 1 {
		t.Fatalf("post-wrap epoch %d, want 1", c.cur)
	}
	if e := &c.entries[7]; e.epoch == c.cur || e.op != opNone {
		t.Fatal("ancient entry resurrected by epoch wraparound")
	}
}

// TestSequentialCacheStillHits guards the epoch refactor against the
// trivial regression: stores made before any clear must still hit.
func TestSequentialCacheStillHits(t *testing.T) {
	m, vars := fuzzManager()
	f, _ := fuzzFormula(m, vars, sharedPrograms[0])
	g, _ := fuzzFormula(m, vars, sharedPrograms[1])
	m.And(f, g)
	before := m.Stats().CacheHits
	m.And(f, g)
	if m.Stats().CacheHits == before {
		t.Fatal("no cache hit on repeated And: epoch tagging broke stores")
	}
}

// BenchmarkCacheClear (satellite): epoch-bump clear versus the old full
// sweep, at the adaptive cache's maximum size.
func BenchmarkCacheClear(b *testing.B) {
	var c computedCache
	c.init(maxCacheBits)
	b.Run("epoch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.clear()
			if c.cur == 0 {
				b.Fatal("unreachable")
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.sweep()
		}
	})
}

// mapTransfer is the pre-satellite map-memo Transfer, kept here as the
// benchmark baseline.
func mapTransfer(dst, src *Manager, f Ref) Ref {
	memo := make(map[Ref]Ref)
	var cp func(f Ref) Ref
	cp = func(f Ref) Ref {
		if f == One || f == Zero {
			return f
		}
		reg := f &^ 1
		if r, ok := memo[reg]; ok {
			return r ^ (f & 1)
		}
		v := Var(src.Level(reg))
		lo := cp(src.Low(reg))
		hi := cp(src.High(reg))
		r := dst.ite(dst.VarRef(v), hi, lo)
		memo[reg] = r
		return r ^ (f & 1)
	}
	return cp(f)
}

// benchTransferSource builds a source manager with a moderately large
// function (a disjunction of variable pairs over 24 variables).
func benchTransferSource() (*Manager, Ref) {
	m := New()
	vars := m.NewVars("x", 24)
	f := Zero
	for i := 0; i < len(vars); i++ {
		f = m.Or(f, m.And(m.VarRef(vars[i]), m.VarRef(vars[(i+5)%len(vars)])))
	}
	return m, f
}

// BenchmarkTransfer (satellite): generation-stamped slice memo versus
// the old per-call map memo. The "slice" case is the production path.
func BenchmarkTransfer(b *testing.B) {
	src, f := benchTransferSource()
	b.Run("slice", func(b *testing.B) {
		dst := src.NewWorker()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if Transfer(dst, src, f, nil) == Zero {
				b.Fatal("unreachable")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		dst := src.NewWorker()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if mapTransfer(dst, src, f) == Zero {
				b.Fatal("unreachable")
			}
		}
	})
}
