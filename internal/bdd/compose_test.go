package bdd

import (
	"math/rand"
	"testing"
)

// composeTruth computes f[v <- g] on truth tables: the value at
// assignment a is f's value at a with bit v replaced by g(a).
func composeTruth(tf, tg uint64, n, v int) uint64 {
	var out uint64
	for i := 0; i < int(tableBits(n)); i++ {
		gi := tg&(1<<uint(i)) != 0
		j := i &^ (1 << uint(v))
		if gi {
			j |= 1 << uint(v)
		}
		if tf&(1<<uint(j)) != 0 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestComposeSingleVar(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(21))
	for _, tf := range randTables(rng, n, 20) {
		for _, tg := range randTables(rng, n, 4) {
			for v := 0; v < n; v++ {
				f := truthToBDD(m, n, tf)
				g := truthToBDD(m, n, tg)
				want := composeTruth(tf, tg, n, v)
				if got := bddToTruth(m, m.Compose(f, Var(v), g), n); got != want {
					t.Fatalf("Compose(%#x, x%d, %#x) = %#x, want %#x", tf, v, tg, got, want)
				}
			}
		}
	}
	checkInv(t, m)
}

// TestComposeSimultaneous checks that a swap substitution x<->y really is
// simultaneous (sequential substitution would collapse both to one var).
func TestComposeSimultaneous(t *testing.T) {
	m := newTestManager(t, 3)
	x, y, z := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	f := m.Or(m.And(x, z), m.And(y.Not(), z.Not())) // depends on x and y asymmetrically
	s := m.NewSubstitution()
	s.Set(0, y)
	s.Set(1, x)
	got := s.Compose(f)
	want := m.Or(m.And(y, z), m.And(x.Not(), z.Not()))
	if got != want {
		t.Fatal("swap substitution is not simultaneous")
	}
	if s.Pairs() != 2 {
		t.Fatalf("Pairs = %d", s.Pairs())
	}
	if len(s.Roots()) != 2 {
		t.Fatalf("Roots = %v", s.Roots())
	}
}

func TestComposeGeneralSimultaneous(t *testing.T) {
	const n = 5
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 60; iter++ {
		tf := rng.Uint64() & tableMask(n)
		tg0 := rng.Uint64() & tableMask(n)
		tg1 := rng.Uint64() & tableMask(n)
		f := truthToBDD(m, n, tf)
		g0 := truthToBDD(m, n, tg0)
		g1 := truthToBDD(m, n, tg1)

		s := m.NewSubstitution()
		s.Set(1, g0)
		s.Set(3, g1)
		got := bddToTruth(m, s.Compose(f), n)

		// Reference: evaluate pointwise.
		var want uint64
		for i := 0; i < int(tableBits(n)); i++ {
			j := i &^ (1 << 1) &^ (1 << 3)
			if tg0&(1<<uint(i)) != 0 {
				j |= 1 << 1
			}
			if tg1&(1<<uint(i)) != 0 {
				j |= 1 << 3
			}
			if tf&(1<<uint(j)) != 0 {
				want |= 1 << uint(i)
			}
		}
		if got != want {
			t.Fatalf("simultaneous compose mismatch: got %#x want %#x", got, want)
		}
	}
	checkInv(t, m)
}

func TestComposeIdentityAndConstants(t *testing.T) {
	m := newTestManager(t, 3)
	x, y := m.VarRef(0), m.VarRef(1)
	f := m.Xor(x, y)
	s := m.NewSubstitution()
	if s.Compose(f) != f {
		t.Fatal("empty substitution changed function")
	}
	if s.Compose(One) != One || s.Compose(Zero) != Zero {
		t.Fatal("substitution changed constants")
	}
	// Substituting constants evaluates the function partially.
	if m.Compose(f, 0, One) != y.Not() {
		t.Fatal("f[x<-1] != ¬y for f = x xor y")
	}
	if m.Compose(f, 0, Zero) != y {
		t.Fatal("f[x<-0] != y for f = x xor y")
	}
}

func TestRename(t *testing.T) {
	m := newTestManager(t, 6)
	x0, x1 := m.VarRef(0), m.VarRef(1)
	f := m.And(x0, x1.Not())
	g := m.Rename(f, []Var{0, 1}, []Var{4, 5})
	want := m.And(m.VarRef(4), m.VarRef(5).Not())
	if g != want {
		t.Fatal("rename to fresh variables failed")
	}
	// Rename down the order as well (the fsm layer renames next->current).
	h := m.Rename(g, []Var{4, 5}, []Var{0, 1})
	if h != f {
		t.Fatal("rename round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Rename lists did not panic")
		}
	}()
	m.Rename(f, []Var{0}, []Var{1, 2})
}

func TestSubstitutionMemoSurvivesReuse(t *testing.T) {
	const n = 4
	m := newTestManager(t, n)
	rng := rand.New(rand.NewSource(23))
	s := m.NewSubstitution()
	g := truthToBDD(m, n, rng.Uint64()&tableMask(n))
	s.Set(2, g)
	for _, tf := range randTables(rng, n, 10) {
		f := truthToBDD(m, n, tf)
		first := s.Compose(f)
		second := s.Compose(f) // memoized path
		if first != second {
			t.Fatal("memoized compose differs from fresh compose")
		}
	}
	// Changing a mapping must drop the memo.
	s.Set(2, One)
	f := truthToBDD(m, n, 0xabcd&tableMask(n))
	if s.Compose(f) != m.Compose(f, 2, One) {
		t.Fatal("stale memo after Set")
	}
}
