package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/resource"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// A batch is many member jobs admitted in one POST /batches: they share
// a resource pool (node allowance decremented as members finish, one
// wall window for the whole batch), optionally a portfolio scheduling
// policy (the escalation ladder the members without an explicit engine
// run), and a multiplexed NDJSON stream interleaving every member's
// event lines — each labeled with its member id — with batch lifecycle
// lines. The batch-wide drain guarantee mirrors the per-job one: the
// final batch "done" line is appended before the batch's done channel
// closes, so a client reading GET /batches/{id}/events to EOF has seen
// the complete history, member verdicts included.

// Batch states.
const (
	BatchRunning = "running"
	BatchDone    = "done"
)

type batch struct {
	id        string
	name      string
	policy    []verify.Method
	pool      *resource.Pool
	submitted time.Time
	members   []*job

	// ctx parents every member's lifecycle context, so one cancel (the
	// DELETE handler, or batch completion releasing resources) reaches
	// them all.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	state     string
	remaining int
	events    []json.RawMessage
	changed   chan struct{}
	done      chan struct{}
}

// batchLine is the NDJSON envelope of batch lifecycle markers.
type batchLine struct {
	Event       string   `json:"event"` // "batch" or "done"
	State       string   `json:"state"`
	Members     int      `json:"members,omitempty"`
	Policy      []string `json:"policy,omitempty"`
	Verified    int      `json:"verified"`
	Violated    int      `json:"violated"`
	Exhausted   int      `json:"exhausted"`
	Errors      int      `json:"errors"`
	PoolLeft    int      `json:"pool_nodes_left,omitempty"`
	Attempts    int      `json:"attempts,omitempty"`
	Escalations int      `json:"escalations,omitempty"`
}

// labelLine splices a member label into a pre-marshaled JSON object
// line: {"x":1} becomes {"member":"j000007","x":1}. Every line in a
// job's buffer is an object the server marshaled itself, so the splice
// is safe; the one defensive case is the empty object.
func labelLine(member string, line json.RawMessage) json.RawMessage {
	line = bytes.TrimSpace(line)
	if len(line) < 2 || line[0] != '{' {
		return line // not an object; pass through unlabeled
	}
	var b bytes.Buffer
	b.Grow(len(line) + len(member) + 16)
	fmt.Fprintf(&b, "{%q:%q", "member", member)
	if line[1] != '}' {
		b.WriteByte(',')
	}
	b.Write(line[1:])
	return b.Bytes()
}

// append adds one line to the batch's multiplexed buffer and wakes
// subscribers.
func (b *batch) append(line json.RawMessage) {
	b.mu.Lock()
	b.events = append(b.events, line)
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
}

// snapshotFrom mirrors job.snapshotFrom for the batch buffer.
func (b *batch) snapshotFrom(i int) (lines []json.RawMessage, changed chan struct{}, final bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < len(b.events) {
		lines = b.events[i:len(b.events):len(b.events)]
	}
	return lines, b.changed, b.state == BatchDone
}

// memberDone is installed as every member's onDone hook. The last
// member to finish seals the batch: tally, final "done" line, state
// flip, done-channel close — in that order, so the batch-wide drain
// guarantee (final line before channel close) holds.
func (b *batch) memberDone() {
	b.mu.Lock()
	b.remaining--
	last := b.remaining == 0
	b.mu.Unlock()
	if !last {
		return
	}
	line := batchLine{Event: "done", State: BatchDone, Members: len(b.members)}
	for _, j := range b.members {
		st := j.status()
		line.Attempts += len(st.Attempts)
		for _, a := range st.Attempts {
			if a.Escalated {
				line.Escalations++
			}
		}
		switch {
		case st.State == StateError:
			line.Errors++
		case st.Result == nil:
		case st.Result.Outcome == "verified":
			line.Verified++
		case st.Result.Outcome == "violated":
			line.Violated++
		default:
			line.Exhausted++
		}
	}
	if nodes, _ := b.pool.Remaining(); nodes >= 0 {
		line.PoolLeft = nodes
	}
	data, err := json.Marshal(line)
	b.mu.Lock()
	if err == nil {
		b.events = append(b.events, data)
	}
	b.state = BatchDone
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
	close(b.done)
	b.cancel(errBatchFinished)
}

var errBatchFinished = fmt.Errorf("icid: batch finished")

// terminal reports whether every member has finished.
func (b *batch) terminal() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// status snapshots the batch's wire status; withMembers controls
// whether the (potentially large) member list rides along.
func (b *batch) status(withMembers bool) BatchStatus {
	st := BatchStatus{
		ID:          b.id,
		Name:        b.name,
		SubmittedAt: b.submitted.UTC().Format(time.RFC3339Nano),
	}
	for _, m := range b.policy {
		st.Policy = append(st.Policy, string(m))
	}
	b.mu.Lock()
	st.State = b.state
	b.mu.Unlock()
	nodes, deadline := b.pool.Remaining()
	if nodes >= 0 || !deadline.IsZero() {
		pw := &PoolWire{NodesLeft: nodes}
		if !deadline.IsZero() {
			pw.DeadlineMS = float64(time.Until(deadline)) / float64(time.Millisecond)
		}
		st.Pool = pw
	}
	for _, j := range b.members {
		js := j.status()
		if withMembers {
			st.Members = append(st.Members, js)
		}
		st.Attempts += len(js.Attempts)
		for _, a := range js.Attempts {
			if a.Escalated {
				st.Escalations++
			}
		}
		switch {
		case js.State == StateError:
			st.Done++
			st.Errors++
		case js.State == StateDone && js.Result != nil:
			st.Done++
			switch js.Result.Outcome {
			case "verified":
				st.Verified++
			case "violated":
				st.Violated++
			default:
				st.Exhausted++
			}
		}
	}
	return st
}

// --- submission --------------------------------------------------------

// escalationCauses are the exhaustion causes that move a portfolio
// member to its next engine: the deterministic budget walls plus
// "other" (algorithmic exhaustion — a non-inductive property, an FD
// configuration error — exactly what a stronger engine may decide).
// Cancellation is deliberate, client- or daemon-initiated, and never
// escalates.
var escalationCauses = map[string]bool{
	"node-limit":    true,
	"deadline":      true,
	"iteration-cap": true,
	"other":         true,
}

// escalates reports whether a finished attempt hands the member to the
// next ladder rung.
func escalates(rw *ResultWire) bool {
	return rw.Outcome == verify.Exhausted.String() && escalationCauses[rw.Cause]
}

// resolvePolicy validates an engine-name ladder against the registry.
func resolvePolicy(names []string) ([]verify.Method, error) {
	ladder := make([]verify.Method, 0, len(names))
	for _, name := range names {
		meth, ok := verify.Resolve(name)
		if !ok {
			return nil, fmt.Errorf("policy engine %q unknown (registered: %v)", name, verify.Registered())
		}
		ladder = append(ladder, meth)
	}
	return ladder, nil
}

// mergeBudget fills a member budget spec's zero fields from the batch
// default.
func mergeBudget(member, batch BudgetSpec) BudgetSpec {
	if member.NodeLimit == 0 {
		member.NodeLimit = batch.NodeLimit
	}
	if member.TimeoutMS == 0 {
		member.TimeoutMS = batch.TimeoutMS
	}
	if member.MaxIterations == 0 {
		member.MaxIterations = batch.MaxIterations
	}
	return member
}

// mergeOptions fills a member options spec's zero fields from the
// batch default.
func mergeOptions(member, batch OptionsSpec) OptionsSpec {
	if member.Termination == "" {
		member.Termination = batch.Termination
	}
	if member.Workers == 0 {
		member.Workers = batch.Workers
	}
	if member.GrowThreshold == 0 {
		member.GrowThreshold = batch.GrowThreshold
	}
	if member.GCEvery == 0 {
		member.GCEvery = batch.GCEvery
	}
	member.WantTrace = member.WantTrace || batch.WantTrace
	return member
}

// expandEntry turns one batch entry into its member SubmitRequests: a
// grid reference becomes one member per benchmark size of the zoo
// entry, anything else passes through unchanged.
func expandEntry(idx int, e BatchEntry) ([]SubmitRequest, error) {
	if e.Wait {
		return nil, fmt.Errorf("jobs[%d]: \"wait\" is not valid inside a batch (follow /batches/{id}/events instead)", idx)
	}
	if e.Grid == "" {
		return []SubmitRequest{e.SubmitRequest}, nil
	}
	if e.Model != "" || e.Builtin != "" {
		return nil, fmt.Errorf("jobs[%d]: \"grid\" is mutually exclusive with \"model\"/\"builtin\"", idx)
	}
	ze, ok := zoo.Get(e.Grid)
	if !ok {
		return nil, fmt.Errorf("jobs[%d]: unknown grid entry %q (builtins: %s)", idx, e.Grid, strings.Join(Builtins(), ", "))
	}
	sizes := ze.Sizes
	if len(sizes) == 0 {
		sizes = []zoo.Size{{}}
	}
	out := make([]SubmitRequest, 0, len(sizes))
	for _, size := range sizes {
		req := e.SubmitRequest
		req.Builtin = e.Grid
		req.Params = map[string]int(size)
		if req.Name == "" {
			req.Name = e.Grid + gridSizeLabel(size)
		}
		out = append(out, req)
	}
	return out, nil
}

// gridSizeLabel renders a size map deterministically for member names.
func gridSizeLabel(s zoo.Size) string {
	if len(s) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, s[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// handleBatchSubmit is POST /batches: validate every member fully,
// then admit the whole batch atomically — all members get queue slots
// or the submission is rejected 503 with nothing registered and no
// metric moved (the queue-full rollback contract, batch-wide).
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var breq BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(breq.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	policy, err := resolvePolicy(breq.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if breq.Pool.MaxIterations != 0 {
		writeError(w, http.StatusBadRequest, "pool.max_iterations is not meaningful batch-wide (set it per member or in \"budget\")")
		return
	}
	if breq.Pool.NodeLimit < 0 || breq.Pool.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "pool bounds must be >= 0 (zero = unbounded)")
		return
	}

	// Expand grid references, then validate and normalize every member
	// exactly like a single POST /jobs — any failure rejects the whole
	// batch before anything is registered.
	var reqs []SubmitRequest
	for i, entry := range breq.Jobs {
		expanded, err := expandEntry(i, entry)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		reqs = append(reqs, expanded...)
	}

	// Normalize every member up front: validation errors reject the
	// batch before routing, and the canonical identities feed both the
	// batch routing key and the members' cache keys (normalizeModel is
	// not idempotent, so the job-building loop below must not re-run it).
	identities := make([]string, len(reqs))
	for i := range reqs {
		identity, err := normalizeModel(&reqs[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, "jobs[%d]: %v", i, err)
			return
		}
		identities[i] = identity
	}
	// A batch routes as one unit, keyed on all member identities — its
	// members share one resource pool, which cannot split across nodes.
	if s.routeRemote(w, r, batchKey(identities), body, "/batches") {
		return
	}

	sliceSet := breq.Slice != (BudgetSpec{})
	var sliceBudget resource.Budget
	if sliceSet {
		if sliceBudget, err = breq.Slice.budget(s.cfg); err != nil {
			writeError(w, http.StatusBadRequest, "slice: %v", err)
			return
		}
	}

	b := &batch{
		name:      breq.Name,
		policy:    policy,
		pool:      resource.NewPool(breq.Pool.NodeLimit, time.Duration(breq.Pool.TimeoutMS)*time.Millisecond),
		submitted: time.Now(),
		state:     BatchRunning,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	b.ctx, b.cancel = context.WithCancelCause(s.baseCtx)

	jobs := make([]*job, 0, len(reqs))
	for i := range reqs {
		req := reqs[i]
		var ladder []verify.Method
		switch {
		case req.Engine != "":
			meth, ok := verify.Resolve(req.Engine)
			if !ok {
				writeError(w, http.StatusBadRequest, "jobs[%d]: unknown engine %q (registered: %v)", i, req.Engine, verify.Registered())
				return
			}
			req.Engine = string(meth)
			ladder = []verify.Method{meth}
		case len(policy) > 0:
			ladder = policy
		default:
			req.Engine = string(verify.XICI)
			ladder = []verify.Method{verify.XICI}
		}
		opt, err := mergeOptions(req.Options, breq.Options).options()
		if err != nil {
			writeError(w, http.StatusBadRequest, "jobs[%d]: %v", i, err)
			return
		}
		budget, err := mergeBudget(req.Budget, breq.Budget).budget(s.cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "jobs[%d]: %v", i, err)
			return
		}
		j := newJob(req, ladder, b.ctx)
		j.identity = identities[i]
		j.opt = opt
		j.budget = budget
		j.slice = budget
		if sliceSet {
			j.slice = sliceBudget
		}
		j.batch = b
		j.onDone = b.memberDone
		jobs = append(jobs, j)
	}
	b.members = jobs
	b.remaining = len(jobs)

	// Atomic admission. Holding the write side of submitMu excludes
	// every other submitter (and the drain's close), so checking free
	// queue capacity and then sending are one indivisible step — the
	// workers only ever drain the channel, so the reserved slots cannot
	// disappear between the check and the sends.
	s.submitMu.Lock()
	if !s.accepting.Load() {
		s.submitMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	if free := cap(s.tasks) - len(s.tasks); free < len(jobs) {
		s.submitMu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			"queue has %d free slots, batch needs %d", cap(s.tasks)-len(s.tasks), len(jobs))
		return
	}
	s.mu.Lock()
	s.bseq++
	b.id = fmt.Sprintf("b%05d", s.bseq)
	for _, j := range jobs {
		s.seq++
		j.id = fmt.Sprintf("j%06d", s.seq)
		member := j.id
		j.tee = func(line json.RawMessage) { b.append(labelLine(member, line)) }
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	s.batches[b.id] = b
	s.border = append(s.border, b.id)
	s.evictHistoryLocked()
	s.evictBatchHistoryLocked()
	s.mu.Unlock()

	// The lifecycle line goes in before any member reaches a worker, so
	// the multiplexed stream always opens with the batch line.
	policyNames := make([]string, len(policy))
	for i, m := range policy {
		policyNames[i] = string(m)
	}
	if line, err := json.Marshal(batchLine{Event: "batch", State: BatchRunning, Members: len(jobs), Policy: policyNames}); err == nil {
		b.append(line)
	}

	s.met.batches.Add(1)
	s.met.submitted.Add(int64(len(jobs)))
	s.met.queued.Add(int64(len(jobs)))
	for _, j := range jobs {
		s.tasks <- j
	}
	s.submitMu.Unlock()

	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.id
	}
	writeJSON(w, http.StatusAccepted, BatchResponse{ID: b.id, Jobs: ids, Node: s.nodeName()})
}

// evictBatchHistoryLocked drops the oldest terminal batches past
// JobHistory. Members referenced by a retained batch stay reachable
// through it even after their own job-history eviction.
func (s *Server) evictBatchHistoryLocked() {
	excess := len(s.border) - s.cfg.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.border[:0]
	for _, id := range s.border {
		b := s.batches[id]
		if excess > 0 && b != nil && b.terminal() {
			delete(s.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.border = kept
}

func (s *Server) lookupBatch(id string) *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

// handleBatchList is GET /batches: every retained batch's summary
// status (members omitted), id-ordered.
func (s *Server) handleBatchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	batches := make([]*batch, 0, len(s.batches))
	for _, b := range s.batches {
		batches = append(batches, b)
	}
	s.mu.Unlock()
	sort.Slice(batches, func(i, k int) bool { return batches[i].id < batches[k].id })
	out := make([]BatchStatus, len(batches))
	for i, b := range batches {
		out[i] = b.status(false)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBatchStatus is GET /batches/{id}: the batch with full member
// statuses, attempt records included.
func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such batch %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, b.status(true))
}

// handleBatchCancel is DELETE /batches/{id}: cancel every member's
// lifecycle context in one stroke. Queued members finalize as canceled
// when a worker pops them; running members abort at their next budget
// check. The batch seals itself once the last member lands.
func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such batch %q", r.PathValue("id"))
		return
	}
	b.cancel(fmt.Errorf("icid: batch canceled via DELETE /batches/%s", b.id))
	writeJSON(w, http.StatusOK, b.status(false))
}

// handleBatchEvents is GET /batches/{id}/events: the multiplexed
// NDJSON stream — member lines labeled with their job id, batch
// lifecycle lines bracketing them, terminated by the batch "done"
// line. ?follow=0 dumps the buffer so far and closes.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such batch %q", r.PathValue("id"))
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	i := 0
	for {
		lines, changed, final := b.snapshotFrom(i)
		for _, line := range lines {
			w.Write(line)
			w.Write([]byte("\n"))
		}
		i += len(lines)
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if final || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
