package server

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/verify"
)

// Wire types of the icid HTTP/JSON API. The full reference, with curl
// examples, lives in docs/api.md; the types here are the single source
// of truth for field names.

// SubmitRequest is the body of POST /jobs. Exactly one of Model (a
// textual model in the internal/lang format) or Builtin (a named
// built-in from internal/models) selects the machine.
type SubmitRequest struct {
	// Model is textual model source (see internal/lang). It is parsed
	// and canonicalized at submission, so syntax errors are rejected
	// with 400 before the job queues.
	Model string `json:"model,omitempty"`

	// Name labels the job in statuses and results. Defaults to the
	// builtin's name, or "model" for textual submissions.
	Name string `json:"name,omitempty"`

	// Builtin selects a model from the zoo registry by name — the
	// paper families (fifo, network, filter, pipeline, coherence,
	// link), the parameterized additions (elevator, traffic,
	// protostack), and the imported machines (fsm/...). GET /models
	// lists them with their parameters.
	Builtin string `json:"builtin,omitempty"`

	// Params sets the builtin's named parameters (e.g. {"floors": 5}
	// for elevator); unset parameters take the entry's defaults.
	// Named params win over the legacy flat knobs below.
	Params map[string]int `json:"params,omitempty"`

	// Size is the legacy flat size knob of the original six families
	// (fifo depth, network processors, filter depth, coherence caches,
	// link data bits). 0 = the builtin's default.
	Size int `json:"size,omitempty"`

	// Regs and Bits configure the pipeline builtin.
	Regs int `json:"regs,omitempty"`
	Bits int `json:"bits,omitempty"`

	// Assist supplies the model's user assisting invariants (filter,
	// pipeline); Bug seeds the model's planted bug.
	Assist bool `json:"assist,omitempty"`
	Bug    bool `json:"bug,omitempty"`

	// Engine names the verification engine (default "XICI"); any name
	// in the registry — GET /healthz lists them — is accepted.
	Engine string `json:"engine,omitempty"`

	// Budget bounds the run server-side; zero fields inherit the
	// daemon's defaults, and the daemon may clamp them to its maxima.
	Budget BudgetSpec `json:"budget"`

	// Options tunes the engine.
	Options OptionsSpec `json:"options"`

	// Wait makes the submission synchronous: the response carries the
	// final status, and hanging up cancels the job (the request context
	// is joined into the job's budget).
	Wait bool `json:"wait,omitempty"`
}

// BudgetSpec is the wire form of resource.Budget. -1 means explicitly
// unlimited (resource.Unlimited), subject to the daemon's clamps.
type BudgetSpec struct {
	NodeLimit     int   `json:"node_limit,omitempty"`
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	MaxIterations int   `json:"max_iterations,omitempty"`
}

// OptionsSpec is the wire form of the engine options a client may set.
type OptionsSpec struct {
	// Termination selects the ICI-family convergence test:
	// "exact" (default), "implication", or "fast".
	Termination string `json:"termination,omitempty"`

	// Workers enables parallel pair scoring inside the run
	// (verify.Options.Workers).
	Workers int `json:"workers,omitempty"`

	// GrowThreshold overrides the XICI policy threshold (0 = default).
	GrowThreshold float64 `json:"grow_threshold,omitempty"`

	// WantTrace requests a counterexample trace on violation; the
	// rendered trace rides in the result's "trace" field.
	WantTrace bool `json:"want_trace,omitempty"`

	// GCEvery triggers a BDD garbage collection every n iterations.
	GCEvery int `json:"gc_every,omitempty"`
}

// SubmitResponse is the body of a successful POST /jobs.
type SubmitResponse struct {
	ID     string     `json:"id"`
	Cached bool       `json:"cached"`
	Status *JobStatus `json:"status,omitempty"` // wait mode and cache hits: final status inline
	Node   string     `json:"node,omitempty"`   // executing node's advertised address (cluster mode)
}

// JobStatus is the body of GET /jobs/{id} and the elements of GET /jobs.
type JobStatus struct {
	ID          string      `json:"id"`
	State       string      `json:"state"` // queued | running | done | error
	Name        string      `json:"name"`
	Engine      string      `json:"engine"`
	Batch       string      `json:"batch,omitempty"`  // owning batch id, for batch members
	Policy      []string    `json:"policy,omitempty"` // escalation ladder, for portfolio members
	Cached      bool        `json:"cached,omitempty"`
	Events      int         `json:"events"`
	SubmittedAt string      `json:"submitted_at"`
	Error       string      `json:"error,omitempty"`
	Attempts    []Attempt   `json:"attempts,omitempty"` // every engine attempt, ladder order
	Result      *ResultWire `json:"result,omitempty"`
}

// Attempt records one engine attempt of a job — for portfolio members,
// one rung of the escalation ladder. The sequence makes the scheduling
// policy observable: each record shows which engine ran, under what
// node slice, how it ended, and whether the policy escalated past it.
type Attempt struct {
	Engine        string  `json:"engine"`
	Outcome       string  `json:"outcome"`
	Cause         string  `json:"cause,omitempty"`
	Iterations    int     `json:"iterations"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	PeakLiveNodes int     `json:"peak_live_nodes"`
	NodeLimit     int     `json:"node_limit,omitempty"` // the bound this attempt ran under
	Cached        bool    `json:"cached,omitempty"`     // answered from the result cache
	Escalated     bool    `json:"escalated,omitempty"`  // the policy moved on to the next engine
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateError   = "error"
)

// ResultWire is the serializable form of verify.Result.
type ResultWire struct {
	Problem        string             `json:"problem"`
	Method         string             `json:"method"`
	Outcome        string             `json:"outcome"` // verified | violated | exhausted
	Cause          string             `json:"cause,omitempty"`
	Why            string             `json:"why,omitempty"`
	Iterations     int                `json:"iterations"`
	PeakStateNodes int                `json:"peak_state_nodes"`
	PeakProfile    []int              `json:"peak_profile,omitempty"`
	MemBytes       int                `json:"mem_bytes"`
	ElapsedMS      float64            `json:"elapsed_ms"`
	ViolationDepth int                `json:"violation_depth,omitempty"`
	Trace          string             `json:"trace,omitempty"`
	PeakLiveNodes  int                `json:"peak_live_nodes"` // manager high-water mark, incl. intermediates
	TotalVars      int                `json:"total_vars"`
	Term           core.TermStats     `json:"term"`
	Eval           EvalWire           `json:"eval"`
	SizeTrajectory []int              `json:"size_trajectory,omitempty"`
	PhaseMS        map[string]float64 `json:"phase_ms,omitempty"`
}

// EvalWire mirrors core.EvalStats with wire field names.
type EvalWire struct {
	PairsScored    int `json:"pairs_scored"`
	MergesApplied  int `json:"merges_applied"`
	BudgetOverflow int `json:"budget_overflow"`
	Rounds         int `json:"rounds"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BatchRequest is the body of POST /batches: many models in one
// submission, admitted atomically (all members queue or none do),
// sharing a budget pool and, optionally, a portfolio scheduling policy.
type BatchRequest struct {
	// Name labels the batch in statuses.
	Name string `json:"name,omitempty"`

	// Jobs are the member submissions. At least one is required; a
	// grid entry may expand into several members.
	Jobs []BatchEntry `json:"jobs"`

	// Policy is the batch's engine-escalation ladder, cheap engines
	// first (e.g. ["FD","ICI","XICI","PDR"]). Members without an
	// explicit engine run the ladder: every rung but the last executes
	// under the slice budget, and an exhausted verdict whose cause is
	// node-limit, deadline, iteration-cap, or other (the PR 2/3
	// taxonomy) escalates to the next engine; cancellation never
	// escalates. The last rung runs under the member's full budget.
	Policy []string `json:"policy,omitempty"`

	// Pool is the batch-wide shared budget pool: node_limit is a node
	// allowance decremented by each finished member's peak live nodes,
	// timeout_ms a wall window for the whole batch. Zero fields are
	// unbounded. Attempts are clamped to what the pool has left;
	// members reaching an empty pool finalize as exhausted without
	// running (cause node-limit or deadline). max_iterations is not
	// meaningful pool-wide and is rejected.
	Pool BudgetSpec `json:"pool"`

	// Slice bounds the non-final rungs of the policy ladder — the
	// "cheap first" lever. Zero fields inherit the member's budget, so
	// an entirely unset slice runs every rung at full budget.
	Slice BudgetSpec `json:"slice"`

	// Budget and Options are member defaults; a member's zero fields
	// inherit them before the daemon's own defaults and clamps apply.
	Budget  BudgetSpec  `json:"budget"`
	Options OptionsSpec `json:"options"`
}

// BatchEntry is one member of a batch: a SubmitRequest (minus wait,
// which is rejected inside a batch) or a zoo grid reference.
type BatchEntry struct {
	SubmitRequest

	// Grid names a zoo registry entry and expands into one member per
	// benchmark size of that entry — the grid `icibench -zoo` runs.
	// Mutually exclusive with model/builtin.
	Grid string `json:"grid,omitempty"`
}

// BatchResponse is the body of a successful POST /batches.
type BatchResponse struct {
	ID   string   `json:"id"`
	Jobs []string `json:"jobs"`           // member job ids, expansion order
	Node string   `json:"node,omitempty"` // executing node's advertised address (cluster mode)
}

// BatchStatus is the body of GET /batches/{id} and the elements of
// GET /batches (which omits Members).
type BatchStatus struct {
	ID          string      `json:"id"`
	Name        string      `json:"name,omitempty"`
	State       string      `json:"state"` // running | done
	Policy      []string    `json:"policy,omitempty"`
	SubmittedAt string      `json:"submitted_at"`
	Members     []JobStatus `json:"members,omitempty"`
	Pool        *PoolWire   `json:"pool,omitempty"`

	// Outcome tally over terminal members, plus the portfolio effort.
	Done        int `json:"done"`
	Verified    int `json:"verified"`
	Violated    int `json:"violated"`
	Exhausted   int `json:"exhausted"`
	Errors      int `json:"errors"`
	Attempts    int `json:"attempts"`
	Escalations int `json:"escalations"`
}

// PoolWire reports a batch pool's remaining allowance.
type PoolWire struct {
	NodesLeft  int     `json:"nodes_left"` // -1 = unbounded
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// ModelInfo is one element of GET /models: a zoo registry entry with
// its parameter surface.
type ModelInfo struct {
	Name     string           `json:"name"`
	Desc     string           `json:"desc"`
	Defaults map[string]int   `json:"defaults,omitempty"`
	Sizes    []map[string]int `json:"sizes,omitempty"`
}

// resultWire converts a finished run into its wire form. traceText is
// the pre-rendered counterexample (the run's manager does not outlive
// the worker, so rendering happens there).
func resultWire(res verify.Result, traceText string) *ResultWire {
	rw := &ResultWire{
		Problem:        res.Problem,
		Method:         string(res.Method),
		Outcome:        res.Outcome.String(),
		Cause:          res.Cause(),
		Why:            res.Why,
		Iterations:     res.Iterations,
		PeakStateNodes: res.PeakStateNodes,
		PeakProfile:    res.PeakProfile,
		MemBytes:       res.MemBytes,
		ElapsedMS:      float64(res.Elapsed) / float64(time.Millisecond),
		ViolationDepth: res.ViolationDepth,
		Trace:          traceText,
		Term:           res.Term,
		Eval: EvalWire{
			PairsScored:    res.Eval.PairsScored,
			MergesApplied:  res.Eval.MergesApplied,
			BudgetOverflow: res.Eval.BudgetOverflow,
			Rounds:         res.Eval.Rounds,
		},
		SizeTrajectory: res.SizeTrajectory,
	}
	if total := res.PhaseDurations.Total(); total > 0 {
		rw.PhaseMS = make(map[string]float64, verify.NumPhases)
		for ph, d := range res.PhaseDurations {
			if d > 0 {
				rw.PhaseMS[verify.Phase(ph).String()] = float64(d) / float64(time.Millisecond)
			}
		}
	}
	return rw
}

// budget resolves the spec against the daemon's defaults and clamps.
func (bs BudgetSpec) budget(cfg Config) (resource.Budget, error) {
	b := resource.Budget{
		NodeLimit:     cfg.DefaultBudget.NodeLimit,
		Timeout:       cfg.DefaultBudget.Timeout,
		MaxIterations: cfg.DefaultBudget.MaxIterations,
	}
	if bs.NodeLimit != 0 {
		if bs.NodeLimit < resource.Unlimited {
			return b, fmt.Errorf("budget.node_limit %d is invalid (use -1 for unlimited)", bs.NodeLimit)
		}
		b.NodeLimit = bs.NodeLimit
	}
	if bs.TimeoutMS != 0 {
		if bs.TimeoutMS < resource.Unlimited {
			return b, fmt.Errorf("budget.timeout_ms %d is invalid (use -1 for unlimited)", bs.TimeoutMS)
		}
		if bs.TimeoutMS == resource.Unlimited {
			b.Timeout = resource.Unlimited
		} else {
			b.Timeout = time.Duration(bs.TimeoutMS) * time.Millisecond
		}
	}
	if bs.MaxIterations != 0 {
		if bs.MaxIterations < resource.Unlimited {
			return b, fmt.Errorf("budget.max_iterations %d is invalid (use -1 for unlimited)", bs.MaxIterations)
		}
		b.MaxIterations = bs.MaxIterations
	}
	// Server-side clamps: a client may not exceed the daemon's maxima,
	// and "unlimited" means "the maximum" when one is configured.
	if cfg.MaxNodeLimit > 0 && (b.NodeLimit <= 0 || b.NodeLimit > cfg.MaxNodeLimit) {
		b.NodeLimit = cfg.MaxNodeLimit
	}
	if cfg.MaxTimeout > 0 && (b.Timeout <= 0 || b.Timeout > cfg.MaxTimeout) {
		b.Timeout = cfg.MaxTimeout
	}
	return b.Norm(), nil
}

// options builds the engine options (observer excluded — the worker
// attaches its own sink). Numeric fields are validated here, not left
// to the engines: a negative worker count, a negative GC period, or a
// negative/non-finite grow threshold would otherwise flow straight
// into the run, so they are 400s exactly like malformed budget fields.
func (os OptionsSpec) options() (verify.Options, error) {
	opt := verify.Options{
		Workers:   os.Workers,
		WantTrace: os.WantTrace,
		GCEvery:   os.GCEvery,
		Core:      core.Options{GrowThreshold: os.GrowThreshold},
	}
	if os.Workers < 0 {
		return opt, fmt.Errorf("options.workers %d is invalid (0 = sequential)", os.Workers)
	}
	if os.GCEvery < 0 {
		return opt, fmt.Errorf("options.gc_every %d is invalid (0 = never)", os.GCEvery)
	}
	if os.GrowThreshold < 0 || math.IsNaN(os.GrowThreshold) || math.IsInf(os.GrowThreshold, 0) {
		return opt, fmt.Errorf("options.grow_threshold %v is invalid (must be finite and >= 0)", os.GrowThreshold)
	}
	switch os.Termination {
	case "", "exact":
		opt.Termination = verify.TermExact
	case "implication":
		opt.Termination = verify.TermImplication
	case "fast":
		opt.Termination = verify.TermFast
	default:
		return opt, fmt.Errorf("unknown termination mode %q (exact, implication, fast)", os.Termination)
	}
	return opt, nil
}
