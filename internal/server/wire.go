package server

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/verify"
)

// Wire types of the icid HTTP/JSON API. The full reference, with curl
// examples, lives in docs/api.md; the types here are the single source
// of truth for field names.

// SubmitRequest is the body of POST /jobs. Exactly one of Model (a
// textual model in the internal/lang format) or Builtin (a named
// built-in from internal/models) selects the machine.
type SubmitRequest struct {
	// Model is textual model source (see internal/lang). It is parsed
	// and canonicalized at submission, so syntax errors are rejected
	// with 400 before the job queues.
	Model string `json:"model,omitempty"`

	// Name labels the job in statuses and results. Defaults to the
	// builtin's name, or "model" for textual submissions.
	Name string `json:"name,omitempty"`

	// Builtin selects a model from the zoo registry by name — the
	// paper families (fifo, network, filter, pipeline, coherence,
	// link), the parameterized additions (elevator, traffic,
	// protostack), and the imported machines (fsm/...). GET /models
	// lists them with their parameters.
	Builtin string `json:"builtin,omitempty"`

	// Params sets the builtin's named parameters (e.g. {"floors": 5}
	// for elevator); unset parameters take the entry's defaults.
	// Named params win over the legacy flat knobs below.
	Params map[string]int `json:"params,omitempty"`

	// Size is the legacy flat size knob of the original six families
	// (fifo depth, network processors, filter depth, coherence caches,
	// link data bits). 0 = the builtin's default.
	Size int `json:"size,omitempty"`

	// Regs and Bits configure the pipeline builtin.
	Regs int `json:"regs,omitempty"`
	Bits int `json:"bits,omitempty"`

	// Assist supplies the model's user assisting invariants (filter,
	// pipeline); Bug seeds the model's planted bug.
	Assist bool `json:"assist,omitempty"`
	Bug    bool `json:"bug,omitempty"`

	// Engine names the verification engine (default "XICI"); any name
	// in the registry — GET /healthz lists them — is accepted.
	Engine string `json:"engine,omitempty"`

	// Budget bounds the run server-side; zero fields inherit the
	// daemon's defaults, and the daemon may clamp them to its maxima.
	Budget BudgetSpec `json:"budget"`

	// Options tunes the engine.
	Options OptionsSpec `json:"options"`

	// Wait makes the submission synchronous: the response carries the
	// final status, and hanging up cancels the job (the request context
	// is joined into the job's budget).
	Wait bool `json:"wait,omitempty"`
}

// BudgetSpec is the wire form of resource.Budget. -1 means explicitly
// unlimited (resource.Unlimited), subject to the daemon's clamps.
type BudgetSpec struct {
	NodeLimit     int   `json:"node_limit,omitempty"`
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	MaxIterations int   `json:"max_iterations,omitempty"`
}

// OptionsSpec is the wire form of the engine options a client may set.
type OptionsSpec struct {
	// Termination selects the ICI-family convergence test:
	// "exact" (default), "implication", or "fast".
	Termination string `json:"termination,omitempty"`

	// Workers enables parallel pair scoring inside the run
	// (verify.Options.Workers).
	Workers int `json:"workers,omitempty"`

	// GrowThreshold overrides the XICI policy threshold (0 = default).
	GrowThreshold float64 `json:"grow_threshold,omitempty"`

	// WantTrace requests a counterexample trace on violation; the
	// rendered trace rides in the result's "trace" field.
	WantTrace bool `json:"want_trace,omitempty"`

	// GCEvery triggers a BDD garbage collection every n iterations.
	GCEvery int `json:"gc_every,omitempty"`
}

// SubmitResponse is the body of a successful POST /jobs.
type SubmitResponse struct {
	ID     string     `json:"id"`
	Cached bool       `json:"cached"`
	Status *JobStatus `json:"status,omitempty"` // wait mode and cache hits: final status inline
}

// JobStatus is the body of GET /jobs/{id} and the elements of GET /jobs.
type JobStatus struct {
	ID          string      `json:"id"`
	State       string      `json:"state"` // queued | running | done | error
	Name        string      `json:"name"`
	Engine      string      `json:"engine"`
	Cached      bool        `json:"cached,omitempty"`
	Events      int         `json:"events"`
	SubmittedAt string      `json:"submitted_at"`
	Error       string      `json:"error,omitempty"`
	Result      *ResultWire `json:"result,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateError   = "error"
)

// ResultWire is the serializable form of verify.Result.
type ResultWire struct {
	Problem        string             `json:"problem"`
	Method         string             `json:"method"`
	Outcome        string             `json:"outcome"` // verified | violated | exhausted
	Cause          string             `json:"cause,omitempty"`
	Why            string             `json:"why,omitempty"`
	Iterations     int                `json:"iterations"`
	PeakStateNodes int                `json:"peak_state_nodes"`
	PeakProfile    []int              `json:"peak_profile,omitempty"`
	MemBytes       int                `json:"mem_bytes"`
	ElapsedMS      float64            `json:"elapsed_ms"`
	ViolationDepth int                `json:"violation_depth,omitempty"`
	Trace          string             `json:"trace,omitempty"`
	Term           core.TermStats     `json:"term"`
	Eval           EvalWire           `json:"eval"`
	SizeTrajectory []int              `json:"size_trajectory,omitempty"`
	PhaseMS        map[string]float64 `json:"phase_ms,omitempty"`
}

// EvalWire mirrors core.EvalStats with wire field names.
type EvalWire struct {
	PairsScored    int `json:"pairs_scored"`
	MergesApplied  int `json:"merges_applied"`
	BudgetOverflow int `json:"budget_overflow"`
	Rounds         int `json:"rounds"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ModelInfo is one element of GET /models: a zoo registry entry with
// its parameter surface.
type ModelInfo struct {
	Name     string           `json:"name"`
	Desc     string           `json:"desc"`
	Defaults map[string]int   `json:"defaults,omitempty"`
	Sizes    []map[string]int `json:"sizes,omitempty"`
}

// resultWire converts a finished run into its wire form. traceText is
// the pre-rendered counterexample (the run's manager does not outlive
// the worker, so rendering happens there).
func resultWire(res verify.Result, traceText string) *ResultWire {
	rw := &ResultWire{
		Problem:        res.Problem,
		Method:         string(res.Method),
		Outcome:        res.Outcome.String(),
		Cause:          res.Cause(),
		Why:            res.Why,
		Iterations:     res.Iterations,
		PeakStateNodes: res.PeakStateNodes,
		PeakProfile:    res.PeakProfile,
		MemBytes:       res.MemBytes,
		ElapsedMS:      float64(res.Elapsed) / float64(time.Millisecond),
		ViolationDepth: res.ViolationDepth,
		Trace:          traceText,
		Term:           res.Term,
		Eval: EvalWire{
			PairsScored:    res.Eval.PairsScored,
			MergesApplied:  res.Eval.MergesApplied,
			BudgetOverflow: res.Eval.BudgetOverflow,
			Rounds:         res.Eval.Rounds,
		},
		SizeTrajectory: res.SizeTrajectory,
	}
	if total := res.PhaseDurations.Total(); total > 0 {
		rw.PhaseMS = make(map[string]float64, verify.NumPhases)
		for ph, d := range res.PhaseDurations {
			if d > 0 {
				rw.PhaseMS[verify.Phase(ph).String()] = float64(d) / float64(time.Millisecond)
			}
		}
	}
	return rw
}

// budget resolves the spec against the daemon's defaults and clamps.
func (bs BudgetSpec) budget(cfg Config) (resource.Budget, error) {
	b := resource.Budget{
		NodeLimit:     cfg.DefaultBudget.NodeLimit,
		Timeout:       cfg.DefaultBudget.Timeout,
		MaxIterations: cfg.DefaultBudget.MaxIterations,
	}
	if bs.NodeLimit != 0 {
		if bs.NodeLimit < resource.Unlimited {
			return b, fmt.Errorf("budget.node_limit %d is invalid (use -1 for unlimited)", bs.NodeLimit)
		}
		b.NodeLimit = bs.NodeLimit
	}
	if bs.TimeoutMS != 0 {
		if bs.TimeoutMS < resource.Unlimited {
			return b, fmt.Errorf("budget.timeout_ms %d is invalid (use -1 for unlimited)", bs.TimeoutMS)
		}
		if bs.TimeoutMS == resource.Unlimited {
			b.Timeout = resource.Unlimited
		} else {
			b.Timeout = time.Duration(bs.TimeoutMS) * time.Millisecond
		}
	}
	if bs.MaxIterations != 0 {
		if bs.MaxIterations < resource.Unlimited {
			return b, fmt.Errorf("budget.max_iterations %d is invalid (use -1 for unlimited)", bs.MaxIterations)
		}
		b.MaxIterations = bs.MaxIterations
	}
	// Server-side clamps: a client may not exceed the daemon's maxima,
	// and "unlimited" means "the maximum" when one is configured.
	if cfg.MaxNodeLimit > 0 && (b.NodeLimit <= 0 || b.NodeLimit > cfg.MaxNodeLimit) {
		b.NodeLimit = cfg.MaxNodeLimit
	}
	if cfg.MaxTimeout > 0 && (b.Timeout <= 0 || b.Timeout > cfg.MaxTimeout) {
		b.Timeout = cfg.MaxTimeout
	}
	return b.Norm(), nil
}

// options builds the engine options (observer excluded — the worker
// attaches its own sink).
func (os OptionsSpec) options() (verify.Options, error) {
	opt := verify.Options{
		Workers:   os.Workers,
		WantTrace: os.WantTrace,
		GCEvery:   os.GCEvery,
		Core:      core.Options{GrowThreshold: os.GrowThreshold},
	}
	switch os.Termination {
	case "", "exact":
		opt.Termination = verify.TermExact
	case "implication":
		opt.Termination = verify.TermImplication
	case "fast":
		opt.Termination = verify.TermFast
	default:
		return opt, fmt.Errorf("unknown termination mode %q (exact, implication, fast)", os.Termination)
	}
	return opt, nil
}
