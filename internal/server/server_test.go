package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// testServer pairs a Server with its httptest front end and shuts both
// down at cleanup.
type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return &testServer{srv: s, ts: ts}
}

func (e *testServer) post(t *testing.T, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func (e *testServer) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// submit POSTs a request and returns the job id.
func (e *testServer) submit(t *testing.T, req SubmitRequest) string {
	t.Helper()
	resp, data := e.post(t, req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("submit response: %v (%s)", err, data)
	}
	return sr.ID
}

// waitDone polls a job until it is terminal.
func (e *testServer) waitDone(t *testing.T, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := e.get(t, "/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, resp.StatusCode, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateError {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// counterModel builds a textual n-bit binary counter with a trivially
// true property: forward reachability needs 2^n image steps to
// converge, so at moderate n the job runs "forever" on the test's
// timescale while every single iteration stays cheap — the ideal
// cancellation target.
func counterModel(bits int) string {
	var b strings.Builder
	for i := 0; i < bits; i++ {
		carry := "true"
		if i > 0 {
			parts := make([]string, i)
			for k := 0; k < i; k++ {
				parts[k] = fmt.Sprintf("b%d", k)
			}
			carry = "(and " + strings.Join(parts, " ") + ")"
		}
		fmt.Fprintf(&b, "(state b%d :init 0 :next (xor b%d %s))\n", i, i, carry)
	}
	b.WriteString("(good true)\n")
	return b.String()
}

// metricsDoc fetches and parses /metrics.
func (e *testServer) metricsDoc(t *testing.T) map[string]any {
	t.Helper()
	resp, data := e.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("/metrics not JSON: %v (%s)", err, data)
	}
	return doc
}

func metricInt(t *testing.T, doc map[string]any, key string) int {
	t.Helper()
	v, ok := doc[key].(float64)
	if !ok {
		t.Fatalf("metric %q missing or not a number: %v", key, doc[key])
	}
	return int(v)
}

// The satellite acceptance test: all five example models submitted
// simultaneously, each verdict identical to a direct library run, and
// the /metrics counters summing correctly. Run under -race in CI.
func TestConcurrentFiveModels(t *testing.T) {
	type caseSpec struct {
		req    SubmitRequest
		direct func(m *bdd.Manager) verify.Problem
	}
	cases := []caseSpec{
		{
			req: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"},
			direct: func(m *bdd.Manager) verify.Problem {
				return models.NewFIFO(m, models.DefaultFIFO(3))
			},
		},
		{
			req: SubmitRequest{Builtin: "network", Size: 2, Engine: "FD"},
			direct: func(m *bdd.Manager) verify.Problem {
				return models.NewNetwork(m, models.NetworkConfig{Procs: 2})
			},
		},
		{
			req: SubmitRequest{Builtin: "filter", Size: 4, Assist: true, Engine: "ICI"},
			direct: func(m *bdd.Manager) verify.Problem {
				return models.NewFilter(m, models.DefaultFilter(4, true))
			},
		},
		{
			req: SubmitRequest{Builtin: "pipeline", Regs: 2, Bits: 1, Engine: "XICI"},
			direct: func(m *bdd.Manager) verify.Problem {
				return models.NewPipeline(m, models.DefaultPipeline(2, 1))
			},
		},
		{
			req: SubmitRequest{Builtin: "link", Size: 1, Bug: true, Engine: "Bkwd",
				Options: OptionsSpec{WantTrace: true}},
			direct: func(m *bdd.Manager) verify.Problem {
				return models.NewLink(m, models.LinkConfig{DataBits: 1, Bug: true})
			},
		},
	}

	e := newTestServer(t, Config{Workers: 4, QueueCap: 16})

	// Submit all five at once.
	ids := make([]string, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c caseSpec) {
			defer wg.Done()
			ids[i] = e.submit(t, c.req)
		}(i, c)
	}
	wg.Wait()

	for i, c := range cases {
		st := e.waitDone(t, ids[i])
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("%s: state %q error %q", c.req.Builtin, st.State, st.Error)
		}

		// The direct library run on a private manager, same options.
		m := bdd.New()
		p := c.direct(m)
		opt, err := c.req.Options.options()
		if err != nil {
			t.Fatal(err)
		}
		ref := verify.Run(p, verify.Method(c.req.Engine), opt)

		if st.Result.Outcome != ref.Outcome.String() {
			t.Errorf("%s: server verdict %q, direct run %q (%s)",
				c.req.Builtin, st.Result.Outcome, ref.Outcome, st.Result.Why)
		}
		if st.Result.Iterations != ref.Iterations {
			t.Errorf("%s: server iterations %d, direct %d", c.req.Builtin, st.Result.Iterations, ref.Iterations)
		}
		if ref.Outcome == verify.Violated && st.Result.ViolationDepth != ref.ViolationDepth {
			t.Errorf("%s: server depth %d, direct %d", c.req.Builtin, st.Result.ViolationDepth, ref.ViolationDepth)
		}
		if c.req.Options.WantTrace && ref.Outcome == verify.Violated && st.Result.Trace == "" {
			t.Errorf("%s: trace requested but absent from the wire result", c.req.Builtin)
		}
		if st.Result.Method != c.req.Engine {
			t.Errorf("%s: wire method %q", c.req.Builtin, st.Result.Method)
		}
	}

	// Counter arithmetic, after quiescence.
	doc := e.metricsDoc(t)
	submitted := metricInt(t, doc, "submitted")
	completed := metricInt(t, doc, "completed")
	queued := metricInt(t, doc, "queued")
	running := metricInt(t, doc, "running")
	errs := metricInt(t, doc, "errors")
	verified := metricInt(t, doc, "verified")
	violated := metricInt(t, doc, "violated")
	exhausted := metricInt(t, doc, "exhausted")
	if submitted != len(cases) {
		t.Errorf("submitted = %d, want %d", submitted, len(cases))
	}
	if completed != len(cases) || queued != 0 || running != 0 || errs != 0 {
		t.Errorf("completed=%d queued=%d running=%d errors=%d, want %d/0/0/0",
			completed, queued, running, errs, len(cases))
	}
	if submitted != queued+running+completed+errs {
		t.Errorf("submitted (%d) != queued+running+completed+errors (%d)",
			submitted, queued+running+completed+errs)
	}
	if verified+violated+exhausted != completed {
		t.Errorf("outcomes %d+%d+%d don't sum to completed %d", verified, violated, exhausted, completed)
	}
	if violated != 1 {
		t.Errorf("violated = %d, want 1 (the bugged link)", violated)
	}
	engines, ok := doc["engines"].(map[string]any)
	if !ok {
		t.Fatalf("engines metric missing: %v", doc["engines"])
	}
	perEngine := 0
	for _, v := range engines {
		perEngine += int(v.(float64))
	}
	if perEngine != completed {
		t.Errorf("per-engine totals sum to %d, want %d", perEngine, completed)
	}
}

// The event stream must carry the run's engine events flattened as
// NDJSON, bracketed by lifecycle lines, ending in the "done" line.
func TestEventStreamFollowsToDone(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})
	id := e.submit(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"})

	resp, err := http.Get(e.ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kind, _ := line["event"].(string)
		kinds = append(kinds, kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 3 {
		t.Fatalf("stream too short: %v", kinds)
	}
	if kinds[0] != "status" {
		t.Errorf("first line %q, want status", kinds[0])
	}
	if kinds[len(kinds)-1] != "done" {
		t.Errorf("last line %q, want done", kinds[len(kinds)-1])
	}
	sawIteration := false
	for _, k := range kinds {
		if k == verify.EventIteration {
			sawIteration = true
		}
	}
	if !sawIteration {
		t.Errorf("no iteration events in stream: %v", kinds)
	}

	// The job status agrees with the stream length.
	st := e.waitDone(t, id)
	if st.Events != len(kinds) {
		t.Errorf("status.events = %d, stream had %d lines", st.Events, len(kinds))
	}
}

// A wait-mode client hanging up must cancel its job server-side: the
// terminal status shows exhaustion with the cancellation cause (the
// resource.CancelError path through the budget).
func TestClientDisconnectCancelsJob(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})

	body, _ := json.Marshal(SubmitRequest{
		Model:  counterModel(18),
		Name:   "counter",
		Engine: "Fwd",
		Wait:   true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", e.ts.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")

	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Wait until the job is actually running, then hang up.
	var id string
	deadline := time.Now().Add(30 * time.Second)
	for id == "" && time.Now().Before(deadline) {
		_, data := e.get(t, "/jobs")
		var list []JobStatus
		if err := json.Unmarshal(data, &list); err == nil {
			for _, st := range list {
				if st.State == StateRunning {
					id = st.ID
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if id == "" {
		t.Fatal("job never reached the running state")
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("expected the canceled request to error")
	}

	st := e.waitDone(t, id)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("state %q error %q", st.State, st.Error)
	}
	if st.Result.Outcome != verify.Exhausted.String() || st.Result.Cause != "canceled" {
		t.Fatalf("outcome %q cause %q, want exhausted/canceled", st.Result.Outcome, st.Result.Cause)
	}
}

// DELETE /jobs/{id} cancels a running job and finalizes a queued one
// without running it.
func TestDeleteCancelsRunningAndQueued(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	long := SubmitRequest{Model: counterModel(18), Name: "counter", Engine: "Fwd"}
	runningID := e.submit(t, long)
	queuedID := e.submit(t, long)

	// Wait for the first to start running, then cancel both.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, data := e.get(t, "/jobs/"+runningID)
		var st JobStatus
		json.Unmarshal(data, &st)
		if st.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range []string{runningID, queuedID} {
		req, _ := http.NewRequest("DELETE", e.ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range []string{runningID, queuedID} {
		st := e.waitDone(t, id)
		if st.Result == nil || st.Result.Cause != "canceled" {
			t.Fatalf("job %s: %+v, want canceled cause", id, st.Result)
		}
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "cancelled"); got != 2 {
		t.Errorf("cancelled = %d, want 2", got)
	}
}

// Shutdown must stop intake, finish what it can inside the drain
// window, budget-cancel the rest, and leave every job terminal with its
// final event line in place.
func TestShutdownDrainsWithoutLosingFinalEvents(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	quick := e.submit(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"})
	long := e.submit(t, SubmitRequest{Model: counterModel(18), Name: "counter", Engine: "Fwd"})

	// A short drain window: the quick job (first in the single worker's
	// order) finishes, the counter gets budget-canceled.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := e.srv.Shutdown(ctx)

	// Intake is closed.
	resp, _ := e.post(t, SubmitRequest{Builtin: "fifo", Size: 3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d, want 503", resp.StatusCode)
	}

	qs := e.waitDone(t, quick)
	if qs.State != StateDone || qs.Result == nil || qs.Result.Outcome != verify.Verified.String() {
		t.Fatalf("quick job: %+v", qs.Result)
	}
	ls := e.waitDone(t, long)
	if ls.State != StateDone || ls.Result == nil || ls.Result.Outcome != verify.Exhausted.String() {
		t.Fatalf("long job: %+v", ls.Result)
	}
	if err == nil && ls.Result.Cause == "canceled" {
		t.Fatalf("drain reported clean but the counter was canceled")
	}

	// Both event streams end with the final "done" line — nothing lost.
	for _, id := range []string{quick, long} {
		resp, data := e.get(t, "/jobs/"+id+"/events?follow=0")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events %s: %d", id, resp.StatusCode)
		}
		lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
		var last map[string]any
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			t.Fatal(err)
		}
		if last["event"] != "done" {
			t.Fatalf("job %s: last stream line %v, want the done marker", id, last)
		}
	}
}

// Identical submissions are answered from the content-addressed cache:
// instant completion, replayed engine events, a cache_hits tick — and a
// changed option or budget must miss.
func TestResultCache(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2})
	req := SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}

	first := e.submit(t, req)
	st1 := e.waitDone(t, first)
	if st1.Result == nil || st1.Result.Outcome != verify.Verified.String() {
		t.Fatalf("first run: %+v", st1.Result)
	}

	resp, data := e.post(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached || sr.Status == nil || sr.Status.State != StateDone {
		t.Fatalf("second submit not served from cache: %s", data)
	}
	if sr.Status.Result.Iterations != st1.Result.Iterations {
		t.Fatalf("cached result diverges: %d vs %d iterations",
			sr.Status.Result.Iterations, st1.Result.Iterations)
	}
	// The cached job replays the engine events plus its own "done" line;
	// it never ran, so the original's "status running" line is the one
	// it lacks.
	_, edata := e.get(t, "/jobs/"+sr.ID+"/events?follow=0")
	cachedLines := bytes.Split(bytes.TrimSpace(edata), []byte("\n"))
	if len(cachedLines) != st1.Events-1 {
		t.Errorf("cached stream has %d lines, original had %d", len(cachedLines), st1.Events)
	}

	// Same model, different options → a real run, not a cache hit.
	req2 := req
	req2.Options.Termination = "fast"
	third := e.submit(t, req2)
	st3 := e.waitDone(t, third)
	if st3.Cached {
		t.Fatal("option change still hit the cache")
	}
	if st3.Result.Outcome != st1.Result.Outcome {
		t.Fatalf("termination-mode change flipped the verdict: %q vs %q", st3.Result.Outcome, st1.Result.Outcome)
	}

	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
	if got := metricInt(t, doc, "completed"); got != 3 {
		t.Errorf("completed = %d, want 3 (cache hits complete too)", got)
	}
}

// A builtin submission and a textual submission of the equivalent model
// must share one content-addressed cache entry: the builtin is lowered
// to canonical text at submission, so the service does the work once.
func TestCacheSharedBetweenTextAndBuiltin(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2})

	first := e.submit(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"})
	st1 := e.waitDone(t, first)
	if st1.Result == nil || st1.Result.Outcome != verify.Verified.String() {
		t.Fatalf("builtin run: %+v", st1.Result)
	}

	// The equivalent model as text: the same zoo entry serialized to
	// its canonical form — exactly what a Go client or the golden files
	// hold.
	mo, err := zoo.Build("fifo", zoo.Size{"depth": 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := e.post(t, SubmitRequest{Model: mo.Format(), Engine: "XICI"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text submit: %d %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Fatal("textual submission of the equivalent model missed the builtin's cache entry")
	}

	// And the new params surface hits the same entry as the legacy knob.
	resp, data = e.post(t, SubmitRequest{Builtin: "fifo", Params: map[string]int{"depth": 3}, Engine: "XICI"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("params submit: %d %s", resp.StatusCode, data)
	}
	sr = SubmitResponse{}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Fatal("params submission of the same size missed the cache")
	}

	e.srv.mu.Lock()
	entries := e.srv.cache.len()
	e.srv.mu.Unlock()
	if entries != 1 {
		t.Fatalf("cache holds %d entries for one piece of work, want 1", entries)
	}
}

// The zoo additions are servable builtins: a parameterized family via
// "params" and an imported .fsm machine, with the resubmission answered
// from the cache.
func TestZooBuiltinsServe(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2})

	id := e.submit(t, SubmitRequest{Builtin: "elevator", Params: map[string]int{"floors": 3}, Engine: "XICI"})
	st := e.waitDone(t, id)
	if st.Result == nil || st.Result.Outcome != verify.Verified.String() {
		t.Fatalf("elevator: %+v (err %q)", st.Result, st.Error)
	}

	fsmReq := SubmitRequest{Builtin: "fsm/door", Engine: "XICI"}
	id = e.submit(t, fsmReq)
	st = e.waitDone(t, id)
	if st.Result == nil || st.Result.Outcome != verify.Verified.String() {
		t.Fatalf("fsm/door: %+v (err %q)", st.Result, st.Error)
	}
	if st.Name != "fsm/door" {
		t.Errorf("job name %q, want the builtin name", st.Name)
	}
	resp, data := e.post(t, fsmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached || sr.Status == nil || sr.Status.Result == nil ||
		sr.Status.Result.Outcome != verify.Verified.String() {
		t.Fatalf("fsm/door resubmission not served from cache: %s", data)
	}

	// Parameter validation stays a 400: unknown param, and flat size on
	// a params-only entry.
	resp, _ = e.post(t, SubmitRequest{Builtin: "elevator", Params: map[string]int{"storeys": 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown param: %d, want 400", resp.StatusCode)
	}
	resp, _ = e.post(t, SubmitRequest{Builtin: "elevator", Size: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("flat size on params-only entry: %d, want 400", resp.StatusCode)
	}
}

// GET /models lists the zoo registry.
func TestModelsEndpoint(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})
	resp, data := e.get(t, "/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/models: %d %s", resp.StatusCode, data)
	}
	var infos []ModelInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatalf("/models not JSON: %v", err)
	}
	if len(infos) < 10 {
		t.Fatalf("/models lists %d entries, want >= 10", len(infos))
	}
	byName := map[string]ModelInfo{}
	for _, mi := range infos {
		byName[mi.Name] = mi
	}
	if _, ok := byName["fsm/turnstile"]; !ok {
		t.Error("imported fsm/turnstile missing from /models")
	}
	if mi, ok := byName["elevator"]; !ok || mi.Defaults["floors"] == 0 || mi.Desc == "" {
		t.Errorf("elevator entry incomplete: %+v", mi)
	}
}

// A full queue rejects with 503 and rolls the submission back out of
// the metrics.
func TestQueueFullRejects(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	long := SubmitRequest{Model: counterModel(18), Name: "counter", Engine: "Fwd"}
	a := e.submit(t, long) // runs
	// Make sure the worker picked up the first job so the queue slot is
	// truly the only capacity left.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, data := e.get(t, "/jobs/"+a)
		var st JobStatus
		json.Unmarshal(data, &st)
		if st.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	b := e.submit(t, long) // queues
	resp, data := e.post(t, long)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: %d %s, want 503", resp.StatusCode, data)
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "submitted"); got != 2 {
		t.Errorf("submitted = %d after rollback, want 2", got)
	}
	// Clean up the long jobs so shutdown stays fast.
	for _, id := range []string{a, b} {
		req, _ := http.NewRequest("DELETE", e.ts.URL+"/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	e.waitDone(t, a)
	e.waitDone(t, b)
}

// Submission validation: every malformed request is a 400/404 with an
// error body, before any job is created.
func TestSubmitValidation(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both-model-and-builtin", `{"model":"(good true)","builtin":"fifo"}`, http.StatusBadRequest},
		{"unknown-builtin", `{"builtin":"turbofifo"}`, http.StatusBadRequest},
		{"bad-size", `{"builtin":"filter","size":3}`, http.StatusBadRequest},
		{"model-syntax", `{"model":"(state x"}`, http.StatusBadRequest},
		{"model-semantics", `{"model":"(state s :init 0 :next q)\n(good true)"}`, http.StatusBadRequest},
		{"unknown-engine", `{"builtin":"fifo","engine":"Magic"}`, http.StatusBadRequest},
		{"bad-termination", `{"builtin":"fifo","options":{"termination":"psychic"}}`, http.StatusBadRequest},
		{"unknown-field", `{"builtin":"fifo","frobnicate":1}`, http.StatusBadRequest},
		{"bad-budget", `{"builtin":"fifo","budget":{"node_limit":-7}}`, http.StatusBadRequest},
		{"bad-workers", `{"builtin":"fifo","options":{"workers":-2}}`, http.StatusBadRequest},
		{"bad-gc-every", `{"builtin":"fifo","options":{"gc_every":-1}}`, http.StatusBadRequest},
		{"bad-grow-threshold", `{"builtin":"fifo","options":{"grow_threshold":-0.5}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(e.ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, data, c.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", c.name, data)
		}
	}
	if resp, _ := e.get(t, "/jobs/j999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp, _ := e.get(t, "/jobs/j999999/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: %d, want 404", resp.StatusCode)
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "submitted"); got != 0 {
		t.Errorf("rejected submissions counted: submitted = %d", got)
	}
}

// Budget enforcement happens server-side: a tiny node limit exhausts
// the job with the node-limit cause, and the daemon's clamp overrides a
// client asking for more than the configured maximum.
func TestServerSideBudgets(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, MaxNodeLimit: 700})
	// Client asks for a huge node budget; the clamp forces 700, which a
	// size-5 FIFO under Bkwd overruns.
	id := e.submit(t, SubmitRequest{
		Builtin: "fifo", Size: 5, Engine: "Bkwd",
		Budget: BudgetSpec{NodeLimit: 1 << 30},
	})
	st := e.waitDone(t, id)
	if st.Result == nil || st.Result.Outcome != verify.Exhausted.String() || st.Result.Cause != "node-limit" {
		t.Fatalf("clamped run: %+v, want exhausted/node-limit", st.Result)
	}

	// Wait-mode healthz sanity while we're here.
	resp, data := e.get(t, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
}

// Wait-mode submissions return the final status inline.
func TestWaitModeInlineResult(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})
	resp, data := e.post(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI", Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: %d %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status == nil || sr.Status.State != StateDone || sr.Status.Result == nil {
		t.Fatalf("wait response lacks the final status: %s", data)
	}
	if sr.Status.Result.Outcome != verify.Verified.String() {
		t.Fatalf("outcome %q", sr.Status.Result.Outcome)
	}
}
