package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"

	"repro/internal/cluster"
)

// ForwardHeader marks a submission that was already routed once. A
// request carrying it always executes locally — forwarding is single
// hop, so two nodes with (transiently) divergent liveness views can
// never bounce a job between each other.
const ForwardHeader = "X-Icid-Forwarded"

// nodeName is this node's advertised cluster address, or "" standalone.
func (s *Server) nodeName() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self()
}

// routeRemote decides where a submission runs. It returns true when the
// request was proxied to its owning peer and the response has been
// written; false means "execute locally" — because clustering is off,
// this node owns the key, the request already forwarded once, or the
// owner is down (local-execution fallback, counted).
func (s *Server) routeRemote(w http.ResponseWriter, r *http.Request, key string, body []byte, path string) bool {
	c := s.cluster
	if c == nil {
		return false
	}
	if r.Header.Get(ForwardHeader) != "" {
		s.met.forwardedIn.Add(1)
		return false
	}
	owner, self := c.OwnerOf(key)
	if self {
		return false
	}
	if !c.Alive(owner) {
		s.met.forwardFallbacks.Add(1)
		return false
	}
	if !s.proxy(w, r, owner, path, body) {
		// Transport failure: the peer is marked down (so the very next
		// submission skips it) and this one runs here.
		s.met.forwardFallbacks.Add(1)
		return false
	}
	s.met.forwardedOut.Add(1)
	return true
}

// proxy replays the raw submission body against the owning peer and
// copies its response through verbatim — status, content type, body —
// so wait-mode semantics, NDJSON framing, and error shapes survive the
// hop. It returns false only on a transport error (peer unreachable);
// any HTTP response from the peer, success or failure, passes through.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner, path string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, cluster.BaseURL(owner)+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, s.nodeName())
	resp, err := s.forward.Do(req)
	if err != nil {
		s.cluster.ReportFailure(owner, err)
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// batchKey is the routing key of a whole batch: the hash of every
// member's canonical identity in expansion order. The batch routes as
// one unit — its members share a pool, so splitting them across nodes
// is not meaningful — which means a member's result may land on a
// different node's store than the same model submitted alone would
// (see docs/api.md for the consistency caveat).
func batchKey(identities []string) string {
	h := sha256.New()
	for _, id := range identities {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return "batch:" + hex.EncodeToString(h.Sum(nil))
}

// handleCluster is GET /cluster: this node's routing and liveness view.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false,
			"members": []string{},
		})
		return
	}
	st := s.cluster.Status()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"self":    st.Self,
		"vnodes":  st.VNodes,
		"members": st.Members,
		"peers":   st.Peers,
	})
}
