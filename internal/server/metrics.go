package server

import (
	"expvar"
	"net/http"
)

// metrics is the daemon's counter set, served at /metrics in expvar's
// JSON rendering. The counters are per-Server (not expvar-published
// globals), so tests and embedders can run several servers in one
// process.
//
// Invariants the metrics test pins down:
//
//	submitted == queued + running + completed + errors
//	completed == verified + violated + exhausted
//	cancelled <= exhausted           (cancellation is an exhaustion cause)
//	sum over engines == completed
//	attempts >= completed - (cache-hit and queued-cancel short circuits)
//	escalations <= attempts
//	cache_lookups == cache_memory_hits + cache_store_hits + cache_misses
//	cache_hits == cache_memory_hits + cache_store_hits
//
// Batch members are ordinary jobs, so the job-level invariants hold
// across the batch path unchanged: a batch of N adds 1 to batches and
// N to submitted/queued.
type metrics struct {
	submitted expvar.Int // accepted jobs, POST /jobs and batch members alike
	queued    expvar.Int // gauge: jobs waiting in the queue
	running   expvar.Int // gauge: jobs on a worker
	completed expvar.Int // jobs that reached state "done"
	errors    expvar.Int // jobs that reached state "error"
	verified  expvar.Int // done with outcome verified
	violated  expvar.Int // done with outcome violated
	exhausted expvar.Int // done with outcome exhausted (any cause)
	cancelled expvar.Int // exhausted specifically by cancellation
	cacheHits expvar.Int // submissions/attempts answered from either cache tier
	engines   expvar.Map // per-engine completed totals

	batches     expvar.Int // accepted POST /batches (rejections excluded)
	attempts    expvar.Int // engine attempts finished (every ladder rung counts)
	escalations expvar.Int // attempts whose exhaustion moved the ladder on

	// Two-tier cache accounting: every content-addressed probe is one
	// lookup, answered by the in-memory LRU, the persistent store, or
	// neither.
	cacheLookups   expvar.Int // content-addressed probes (submission + attempt level)
	cacheMemHits   expvar.Int // answered by the in-memory LRU
	cacheStoreHits expvar.Int // answered by the persistent store (promoted to memory)
	cacheMisses    expvar.Int // answered by neither tier
	cacheEvictions expvar.Int // entries the LRU pushed out past its capacity

	// Cluster-routing accounting.
	forwardedOut     expvar.Int // submissions proxied to their owning peer
	forwardedIn      expvar.Int // submissions received with the forward header
	forwardFallbacks expvar.Int // owner down/unreachable: executed locally instead

	top expvar.Map // the /metrics document
}

func newMetrics() *metrics {
	mt := &metrics{}
	mt.engines.Init()
	mt.top.Init()
	mt.top.Set("submitted", &mt.submitted)
	mt.top.Set("queued", &mt.queued)
	mt.top.Set("running", &mt.running)
	mt.top.Set("completed", &mt.completed)
	mt.top.Set("errors", &mt.errors)
	mt.top.Set("verified", &mt.verified)
	mt.top.Set("violated", &mt.violated)
	mt.top.Set("exhausted", &mt.exhausted)
	mt.top.Set("cancelled", &mt.cancelled)
	mt.top.Set("cache_hits", &mt.cacheHits)
	mt.top.Set("engines", &mt.engines)
	mt.top.Set("batches", &mt.batches)
	mt.top.Set("attempts", &mt.attempts)
	mt.top.Set("escalations", &mt.escalations)
	mt.top.Set("cache_lookups", &mt.cacheLookups)
	mt.top.Set("cache_memory_hits", &mt.cacheMemHits)
	mt.top.Set("cache_store_hits", &mt.cacheStoreHits)
	mt.top.Set("cache_misses", &mt.cacheMisses)
	mt.top.Set("cache_evictions", &mt.cacheEvictions)
	mt.top.Set("forwarded_out", &mt.forwardedOut)
	mt.top.Set("forwarded_in", &mt.forwardedIn)
	mt.top.Set("forward_fallbacks", &mt.forwardFallbacks)
	return mt
}

// completedJob counts one terminal "done" job into the outcome and
// per-engine counters.
func (mt *metrics) completedJob(engine string, rw *ResultWire) {
	mt.completed.Add(1)
	switch rw.Outcome {
	case "verified":
		mt.verified.Add(1)
	case "violated":
		mt.violated.Add(1)
	case "exhausted":
		mt.exhausted.Add(1)
		if rw.Cause == "canceled" {
			mt.cancelled.Add(1)
		}
	}
	mt.engines.Add(engine, 1)
}

// handler serves the expvar JSON document.
func (mt *metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte(mt.top.String()))
	w.Write([]byte("\n"))
}
