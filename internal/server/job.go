package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/resource"
	"repro/internal/verify"
)

// job is one submitted verification task. Its event buffer holds
// pre-marshaled NDJSON lines — engine events from the verify.Observer
// adapter plus lifecycle markers — so the /events stream and the cache
// replay are byte-identical and need no re-encoding. The buffer is
// append-only; subscribers snapshot (length, change channel) under the
// lock and replay the stable prefix outside it.
type job struct {
	id        string
	identity  string // canonical model identity ("ir:" + canonical text)
	name      string
	req       SubmitRequest
	opt       verify.Options  // normalized at submission, observer unset
	budget    resource.Budget // resolved and clamped, Ctx unset
	submitted time.Time

	// ladder is the job's engine sequence: a single engine for plain
	// submissions, the batch's portfolio policy for members that
	// inherit one. Every rung but the last runs under slice; the last
	// runs under budget.
	ladder []verify.Method
	slice  resource.Budget

	// batch is the owning batch (nil for single submissions); tee, when
	// set, receives every appended event line for the batch's
	// multiplexed stream, and onDone fires once the job is terminal.
	batch  *batch
	tee    func(json.RawMessage)
	onDone func()

	// ctx is the job's lifecycle context, derived from the server's
	// base context (or the owning batch's); cancel ends it (DELETE
	// /jobs/{id}, or the drain deadline). reqCtx, for wait-mode
	// submissions, is the HTTP request context the worker joins into
	// the budget so a client disconnect cancels the run.
	ctx    context.Context
	cancel context.CancelCauseFunc
	reqCtx context.Context

	mu       sync.Mutex
	state    string
	engine   verify.Method // currently / last attempted engine
	attempts []Attempt
	events   []json.RawMessage
	changed  chan struct{} // closed and replaced on every append / state change
	result   *ResultWire
	errMsg   string
	cached   bool
	done     chan struct{} // closed once the job is terminal
}

func newJob(req SubmitRequest, ladder []verify.Method, base context.Context) *job {
	ctx, cancel := context.WithCancelCause(base)
	return &job{
		name:      req.Name,
		engine:    ladder[0],
		req:       req,
		ladder:    ladder,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// lifecycleLine is the NDJSON envelope for job state transitions,
// interleaved with the engine events in the same stream.
type lifecycleLine struct {
	Event   string `json:"event"` // "status" or "done"
	State   string `json:"state"`
	Outcome string `json:"outcome,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendRaw appends one pre-marshaled NDJSON line and wakes
// subscribers. The tee (the owning batch's multiplexed buffer) runs
// after the job's own lock is released; lines of one job are appended
// by one goroutine at a time, so the batch sees them in job order.
func (j *job) appendRaw(line json.RawMessage) {
	j.mu.Lock()
	j.events = append(j.events, line)
	j.notifyLocked()
	j.mu.Unlock()
	if j.tee != nil {
		j.tee(line)
	}
}

// appendEvent marshals and appends one envelope (engine or lifecycle).
func (j *job) appendEvent(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return // an unmarshalable event must not kill the run
	}
	j.appendRaw(line)
}

// setRunning transitions queued → running and logs the lifecycle line.
// It returns false when the job is already terminal (canceled while
// queued and finalized elsewhere).
func (j *job) setRunning() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.notifyLocked()
	j.mu.Unlock()
	j.appendEvent(lifecycleLine{Event: "status", State: StateRunning})
	return true
}

// finish makes the job terminal with a result. The final "done" line is
// appended before the done channel closes, so a streaming client that
// reads to the channel close always sees it — the drain guarantee. The
// lifecycle context is released so terminal jobs don't accumulate as
// children of the server's base context.
func (j *job) finish(rw *ResultWire) {
	j.appendEvent(lifecycleLine{Event: "done", State: StateDone, Outcome: rw.Outcome, Cause: rw.Cause})
	j.mu.Lock()
	j.state = StateDone
	j.result = rw
	j.notifyLocked()
	j.mu.Unlock()
	close(j.done)
	j.cancel(errJobFinished)
	if j.onDone != nil {
		j.onDone()
	}
}

// fail makes the job terminal with an error message.
func (j *job) fail(msg string) {
	j.appendEvent(lifecycleLine{Event: "done", State: StateError, Error: msg})
	j.mu.Lock()
	j.state = StateError
	j.errMsg = msg
	j.notifyLocked()
	j.mu.Unlock()
	close(j.done)
	j.cancel(errJobFinished)
	if j.onDone != nil {
		j.onDone()
	}
}

// setEngine records the engine the job is currently attempting, so
// statuses track the ladder as it escalates.
func (j *job) setEngine(meth verify.Method) {
	j.mu.Lock()
	j.engine = meth
	j.mu.Unlock()
}

// markCached flags the job as (at least partly) answered from the
// result cache.
func (j *job) markCached() {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
}

// attemptLine is the NDJSON envelope recording one finished engine
// attempt — emitted for batch members and portfolio jobs, so the
// scheduling policy is observable on the stream.
type attemptLine struct {
	Event     string  `json:"event"` // "attempt"
	Engine    string  `json:"engine"`
	Rung      int     `json:"rung"`
	Outcome   string  `json:"outcome"`
	Cause     string  `json:"cause,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Cached    bool    `json:"cached,omitempty"`
	Escalated bool    `json:"escalated,omitempty"`
}

// recordAttempt appends one attempt record to the job's status and,
// for batch/portfolio jobs, the matching event line to its stream.
// Plain single-engine submissions keep their historical stream shape
// (status / engine events / done) — the record still shows in status.
func (j *job) recordAttempt(a Attempt, rung int) {
	j.mu.Lock()
	j.attempts = append(j.attempts, a)
	multi := j.batch != nil || len(j.ladder) > 1
	j.mu.Unlock()
	if multi {
		j.appendEvent(attemptLine{
			Event: "attempt", Engine: a.Engine, Rung: rung,
			Outcome: a.Outcome, Cause: a.Cause, ElapsedMS: a.ElapsedMS,
			Cached: a.Cached, Escalated: a.Escalated,
		})
	}
}

// errJobFinished is the cause installed when a terminal job releases
// its lifecycle context.
var errJobFinished = fmt.Errorf("icid: job finished")

// finishCached makes a fresh job terminal with a cached result and the
// cached run's replayed event lines.
func (j *job) finishCached(rw *ResultWire, events []json.RawMessage) {
	j.mu.Lock()
	j.cached = true
	j.events = append(j.events, events...)
	j.mu.Unlock()
	j.finish(rw)
}

// status snapshots the job's wire status.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Name:        j.name,
		Engine:      string(j.engine),
		Cached:      j.cached,
		Events:      len(j.events),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Error:       j.errMsg,
		Result:      j.result,
	}
	if j.batch != nil {
		st.Batch = j.batch.id
	}
	if len(j.ladder) > 1 {
		st.Policy = make([]string, len(j.ladder))
		for i, m := range j.ladder {
			st.Policy[i] = string(m)
		}
	}
	if len(j.attempts) > 0 {
		st.Attempts = append([]Attempt(nil), j.attempts...)
	}
	return st
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// snapshotFrom returns the event lines from index i on, the current
// change channel, and whether the job is terminal — everything a
// streaming subscriber needs per wakeup. The returned slice aliases the
// append-only buffer and is stable.
func (j *job) snapshotFrom(i int) (lines []json.RawMessage, changed chan struct{}, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		lines = j.events[i:len(j.events):len(j.events)]
	}
	return lines, j.changed, j.state == StateDone || j.state == StateError
}

// eventsCopy snapshots the full event buffer (for caching).
func (j *job) eventsCopy() []json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]json.RawMessage, len(j.events))
	copy(out, j.events)
	return out
}
