package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/resource"
	"repro/internal/verify"
)

// job is one submitted verification task. Its event buffer holds
// pre-marshaled NDJSON lines — engine events from the verify.Observer
// adapter plus lifecycle markers — so the /events stream and the cache
// replay are byte-identical and need no re-encoding. The buffer is
// append-only; subscribers snapshot (length, change channel) under the
// lock and replay the stable prefix outside it.
type job struct {
	id        string
	key       string // cache key (content address)
	name      string
	engine    verify.Method
	req       SubmitRequest
	opt       verify.Options  // normalized at submission, observer unset
	budget    resource.Budget // resolved and clamped, Ctx unset
	submitted time.Time

	// ctx is the job's lifecycle context, derived from the server's
	// base context; cancel ends it (DELETE /jobs/{id}, or the drain
	// deadline). reqCtx, for wait-mode submissions, is the HTTP request
	// context the worker joins into the budget so a client disconnect
	// cancels the run.
	ctx    context.Context
	cancel context.CancelCauseFunc
	reqCtx context.Context

	mu      sync.Mutex
	state   string
	events  []json.RawMessage
	changed chan struct{} // closed and replaced on every append / state change
	result  *ResultWire
	errMsg  string
	cached  bool
	done    chan struct{} // closed once the job is terminal
}

func newJob(id, key string, req SubmitRequest, base context.Context) *job {
	ctx, cancel := context.WithCancelCause(base)
	return &job{
		id:        id,
		key:       key,
		name:      req.Name,
		engine:    verify.Method(req.Engine),
		req:       req,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// lifecycleLine is the NDJSON envelope for job state transitions,
// interleaved with the engine events in the same stream.
type lifecycleLine struct {
	Event   string `json:"event"` // "status" or "done"
	State   string `json:"state"`
	Outcome string `json:"outcome,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendRaw appends one pre-marshaled NDJSON line and wakes subscribers.
func (j *job) appendRaw(line json.RawMessage) {
	j.mu.Lock()
	j.events = append(j.events, line)
	j.notifyLocked()
	j.mu.Unlock()
}

// appendEvent marshals and appends one envelope (engine or lifecycle).
func (j *job) appendEvent(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return // an unmarshalable event must not kill the run
	}
	j.appendRaw(line)
}

// setRunning transitions queued → running and logs the lifecycle line.
// It returns false when the job is already terminal (canceled while
// queued and finalized elsewhere).
func (j *job) setRunning() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.notifyLocked()
	j.mu.Unlock()
	j.appendEvent(lifecycleLine{Event: "status", State: StateRunning})
	return true
}

// finish makes the job terminal with a result. The final "done" line is
// appended before the done channel closes, so a streaming client that
// reads to the channel close always sees it — the drain guarantee. The
// lifecycle context is released so terminal jobs don't accumulate as
// children of the server's base context.
func (j *job) finish(rw *ResultWire) {
	j.appendEvent(lifecycleLine{Event: "done", State: StateDone, Outcome: rw.Outcome, Cause: rw.Cause})
	j.mu.Lock()
	j.state = StateDone
	j.result = rw
	j.notifyLocked()
	j.mu.Unlock()
	close(j.done)
	j.cancel(errJobFinished)
}

// fail makes the job terminal with an error message.
func (j *job) fail(msg string) {
	j.appendEvent(lifecycleLine{Event: "done", State: StateError, Error: msg})
	j.mu.Lock()
	j.state = StateError
	j.errMsg = msg
	j.notifyLocked()
	j.mu.Unlock()
	close(j.done)
	j.cancel(errJobFinished)
}

// errJobFinished is the cause installed when a terminal job releases
// its lifecycle context.
var errJobFinished = fmt.Errorf("icid: job finished")

// finishCached makes a fresh job terminal with a cached result and the
// cached run's replayed event lines.
func (j *job) finishCached(rw *ResultWire, events []json.RawMessage) {
	j.mu.Lock()
	j.cached = true
	j.events = append(j.events, events...)
	j.mu.Unlock()
	j.finish(rw)
}

// status snapshots the job's wire status.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Name:        j.name,
		Engine:      string(j.engine),
		Cached:      j.cached,
		Events:      len(j.events),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Error:       j.errMsg,
		Result:      j.result,
	}
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// snapshotFrom returns the event lines from index i on, the current
// change channel, and whether the job is terminal — everything a
// streaming subscriber needs per wakeup. The returned slice aliases the
// append-only buffer and is stable.
func (j *job) snapshotFrom(i int) (lines []json.RawMessage, changed chan struct{}, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		lines = j.events[i:len(j.events):len(j.events)]
	}
	return lines, j.changed, j.state == StateDone || j.state == StateError
}

// eventsCopy snapshots the full event buffer (for caching).
func (j *job) eventsCopy() []json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]json.RawMessage, len(j.events))
	copy(out, j.events)
	return out
}
