package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
)

// clusterNode is one member of an in-process icid cluster: a real TCP
// listener (so peers can reach it), its Server, and its Cluster state.
type clusterNode struct {
	addr string
	srv  *Server
	cl   *cluster.Cluster
}

func (n *clusterNode) url() string { return "http://" + n.addr }

// startClusterNodes boots n servers on real loopback listeners, each
// configured with the full membership. cfgFor may be nil (zero config).
func startClusterNodes(t *testing.T, n int, cfgFor func(i int) Config) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		peers := make([]string, 0, n-1)
		for k, a := range addrs {
			if k != i {
				peers = append(peers, a)
			}
		}
		cl := cluster.New(cluster.Config{Self: addrs[i], Peers: peers, CheckInterval: 25 * time.Millisecond})
		cl.Start()
		cfg := Config{}
		if cfgFor != nil {
			cfg = cfgFor(i)
		}
		cfg.Cluster = cl
		srv := New(cfg)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		nodes[i] = &clusterNode{addr: addrs[i], srv: srv, cl: cl}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Close()
			cl.Stop()
		})
	}
	return nodes
}

// postJSON POSTs v to url and returns the parsed response body.
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("response from %s not JSON: %v (%s)", url, err, data)
		}
	}
	return resp
}

// getDoc GETs url and parses the JSON document.
func getDoc(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("GET %s not JSON: %v (%s)", url, err, data)
	}
	return doc
}

// Acceptance (a): a submission entering the cluster at the non-owning
// node is forwarded to its owner, which computes it once; the same
// model submitted again — to either node — is answered from the owner's
// cache with no recomputation anywhere.
func TestClusterForwardingNoRecompute(t *testing.T) {
	nodes := startClusterNodes(t, 2, nil)
	model := counterModel(2)

	// Work out who owns this model's canonical identity, and pick the
	// other node as the entry point so the submission must forward.
	cp := SubmitRequest{Model: model}
	identity, err := normalizeModel(&cp)
	if err != nil {
		t.Fatal(err)
	}
	ownerAddr, _ := nodes[0].cl.OwnerOf(identity)
	var owner, entry *clusterNode
	for _, n := range nodes {
		if n.addr == ownerAddr {
			owner = n
		} else {
			entry = n
		}
	}
	if owner == nil || entry == nil {
		t.Fatalf("ring produced no owner among %v (owner %q)", nodes, ownerAddr)
	}

	// Submit through the non-owner: executed by the owner, computed once.
	var sr1 SubmitResponse
	resp := postJSON(t, entry.url()+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded submit: %d", resp.StatusCode)
	}
	if sr1.Node != owner.addr {
		t.Fatalf("executed on %q, want owner %q", sr1.Node, owner.addr)
	}
	if sr1.Cached {
		t.Fatal("first submission cannot be a cache hit")
	}
	if sr1.Status == nil || sr1.Status.Result == nil || sr1.Status.Result.Outcome != "verified" {
		t.Fatalf("forwarded result: %+v", sr1.Status)
	}

	// Submit the same model directly to the owner: a memory-cache hit.
	var sr2 SubmitResponse
	postJSON(t, owner.url()+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr2)
	if !sr2.Cached || sr2.Node != owner.addr {
		t.Fatalf("owner resubmit: cached=%v node=%q", sr2.Cached, sr2.Node)
	}
	// And again through the non-owner: forwarded, still no recompute.
	var sr3 SubmitResponse
	postJSON(t, entry.url()+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr3)
	if !sr3.Cached || sr3.Node != owner.addr {
		t.Fatalf("forwarded resubmit: cached=%v node=%q", sr3.Cached, sr3.Node)
	}

	ownerMet := getDoc(t, owner.url()+"/metrics")
	entryMet := getDoc(t, entry.url()+"/metrics")
	if got := metricInt(t, ownerMet, "attempts"); got != 1 {
		t.Fatalf("owner attempts = %d, want exactly 1 computation in the cluster", got)
	}
	if got := metricInt(t, entryMet, "attempts"); got != 0 {
		t.Fatalf("entry node computed %d attempts, want 0", got)
	}
	if got := metricInt(t, entryMet, "submitted"); got != 0 {
		t.Fatalf("entry node registered %d jobs, want 0 (all forwarded)", got)
	}
	if got := metricInt(t, entryMet, "forwarded_out"); got != 2 {
		t.Fatalf("entry forwarded_out = %d, want 2", got)
	}
	if got := metricInt(t, ownerMet, "forwarded_in"); got != 2 {
		t.Fatalf("owner forwarded_in = %d, want 2", got)
	}
	if got := metricInt(t, ownerMet, "completed"); got != 3 {
		t.Fatalf("owner completed = %d, want 3", got)
	}

	// The /cluster endpoints agree on membership.
	cdoc := getDoc(t, entry.url()+"/cluster")
	if cdoc["enabled"] != true {
		t.Fatalf("/cluster: %v", cdoc)
	}
	if members, _ := cdoc["members"].([]any); len(members) != 2 {
		t.Fatalf("/cluster members: %v", cdoc["members"])
	}
}

// When the owner is down, a submission falls back to local execution
// instead of failing — and the fallback is counted.
func TestClusterOwnerDownFallsBackLocally(t *testing.T) {
	// One real node plus one dead peer that owns (at least) some keys.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens: every forward to it fails

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.Config{Self: live.Addr().String(), Peers: []string{deadAddr}, CheckInterval: time.Hour})
	cl.Start()
	srv := New(Config{Cluster: cl})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(live)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
		cl.Stop()
	})
	base := "http://" + live.Addr().String()

	// Find a model the dead peer owns (vary a parameter until routing
	// picks it; peers start optimistically alive so the first such
	// submission attempts the forward and falls back).
	var model string
	for bits := 2; bits < 64; bits++ {
		cp := SubmitRequest{Model: counterModel(bits%3 + 2), Name: fmt.Sprintf("m%d", bits)}
		id, err := normalizeModel(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if owner, self := cl.OwnerOf(id); owner == deadAddr && !self {
			model = counterModel(bits%3 + 2)
			break
		}
	}
	if model == "" {
		t.Skip("ring gave every probe key to self")
	}

	var sr SubmitResponse
	resp := postJSON(t, base+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback submit: %d", resp.StatusCode)
	}
	if sr.Status == nil || sr.Status.Result == nil || sr.Status.Result.Outcome != "verified" {
		t.Fatalf("fallback result: %+v", sr.Status)
	}
	met := getDoc(t, base+"/metrics")
	if got := metricInt(t, met, "forward_fallbacks"); got != 1 {
		t.Fatalf("forward_fallbacks = %d, want 1", got)
	}
	if cl.Alive(deadAddr) {
		t.Fatal("dead peer still believed alive after a failed forward")
	}
}

// eventLines fetches a job's complete NDJSON event stream.
func eventLines(t *testing.T, base, id string) [][]byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var lines [][]byte
	for _, l := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// Acceptance (b): a verdict computed before a restart is served from
// the on-disk store afterwards — no recomputation, and the replayed
// event stream is byte-identical to the live run's (minus the
// scheduling-only "running" status line, which a store hit never has).
func TestStoreServesAcrossRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st})
	ts1 := httptest.NewServer(s1.Handler())
	model := counterModel(3)

	var sr1 SubmitResponse
	resp := postJSON(t, ts1.URL+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr1)
	if resp.StatusCode != http.StatusOK || sr1.Cached {
		t.Fatalf("first submit: %d cached=%v", resp.StatusCode, sr1.Cached)
	}
	live := eventLines(t, ts1.URL, sr1.ID)
	if len(live) < 2 {
		t.Fatalf("live stream too short to prove replay: %d lines", len(live))
	}

	// Restart: drain the server, flush and close the store, reopen both.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Shutdown(ctx)
	ts1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if rec := st2.Recovery(); rec.Quarantined != 0 || rec.Entries != 1 {
		t.Fatalf("recovery after clean restart: %+v", rec)
	}
	s2 := New(Config{Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
		ts2.Close()
	})

	var sr2 SubmitResponse
	postJSON(t, ts2.URL+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr2)
	if !sr2.Cached {
		t.Fatal("post-restart submission recomputed instead of hitting the store")
	}
	met := getDoc(t, ts2.URL+"/metrics")
	if got := metricInt(t, met, "cache_store_hits"); got != 1 {
		t.Fatalf("cache_store_hits = %d, want 1", got)
	}
	if got := metricInt(t, met, "attempts"); got != 0 {
		t.Fatalf("attempts = %d after restart, want 0", got)
	}

	// Byte-identical replay: the stored stream is the live stream minus
	// its "running" status line (pure scheduling, never part of the
	// cached computation); every remaining line must match exactly.
	replayed := eventLines(t, ts2.URL, sr2.ID)
	wantLines := live[1:]
	if len(replayed) != len(wantLines) {
		t.Fatalf("replayed %d lines, want %d\nlive: %s\nreplay: %s",
			len(replayed), len(wantLines), bytes.Join(live, []byte("|")), bytes.Join(replayed, []byte("|")))
	}
	for i := range wantLines {
		if !bytes.Equal(replayed[i], wantLines[i]) {
			t.Fatalf("line %d differs:\nlive:   %s\nreplay: %s", i, wantLines[i], replayed[i])
		}
	}
}

// Acceptance (c): the documented two-tier metric invariants hold across
// computes, an LRU eviction, and a store-hit promotion.
func TestTwoTierMetricsInvariants(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e := newTestServer(t, Config{Store: st, CacheCap: 1})

	modelA := counterModel(2)
	modelB := counterModel(3)
	var sr SubmitResponse
	postJSON(t, e.ts.URL+"/jobs", SubmitRequest{Model: modelA, Wait: true}, &sr) // compute A
	postJSON(t, e.ts.URL+"/jobs", SubmitRequest{Model: modelB, Wait: true}, &sr) // compute B, evict A
	postJSON(t, e.ts.URL+"/jobs", SubmitRequest{Model: modelA, Wait: true}, &sr) // A from disk
	if !sr.Cached {
		t.Fatal("evicted entry not recovered from the store")
	}

	doc := e.metricsDoc(t)
	lookups := metricInt(t, doc, "cache_lookups")
	memHits := metricInt(t, doc, "cache_memory_hits")
	storeHits := metricInt(t, doc, "cache_store_hits")
	misses := metricInt(t, doc, "cache_misses")
	hits := metricInt(t, doc, "cache_hits")
	if lookups != memHits+storeHits+misses {
		t.Fatalf("cache_lookups %d != memory %d + store %d + misses %d", lookups, memHits, storeHits, misses)
	}
	if hits != memHits+storeHits {
		t.Fatalf("cache_hits %d != memory %d + store %d", hits, memHits, storeHits)
	}
	if storeHits != 1 {
		t.Fatalf("cache_store_hits = %d, want 1", storeHits)
	}
	if got := metricInt(t, doc, "cache_evictions"); got != 2 {
		t.Fatalf("cache_evictions = %d, want 2 (B evicts A, A's promotion evicts B)", got)
	}
	submitted := metricInt(t, doc, "submitted")
	if sum := metricInt(t, doc, "queued") + metricInt(t, doc, "running") +
		metricInt(t, doc, "completed") + metricInt(t, doc, "errors"); submitted != sum {
		t.Fatalf("submitted %d != queued+running+completed+errors %d", submitted, sum)
	}
	// The store stats document rides along in /metrics.
	storeDoc, ok := doc["store"].(map[string]any)
	if !ok {
		t.Fatalf("store stats missing from /metrics: %v", doc["store"])
	}
	if int(storeDoc["entries"].(float64)) != 2 {
		t.Fatalf("store entries = %v, want 2", storeDoc["entries"])
	}
}

// Satellite: a corrupted store entry is quarantined on startup, the
// resubmitted job falls through to a fresh run, and the recomputed
// verdict is rewritten — after which it serves from disk again.
func TestStoreCorruptionFallsThroughToFreshRun(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st})
	ts1 := httptest.NewServer(s1.Handler())
	model := counterModel(2)
	var sr SubmitResponse
	postJSON(t, ts1.URL+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Shutdown(ctx)
	ts1.Close()
	st.Close()

	// Flip a payload byte in the one stored record.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	var seg string
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil && fi.Size() > 0 {
			seg = s
		}
	}
	if seg == "" {
		t.Fatalf("no non-empty segment in %v", segs)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := st2.Recovery(); rec.Quarantined != 1 || rec.Entries != 0 {
		t.Fatalf("recovery: %+v, want 1 quarantined span and no entries", rec)
	}
	s2 := New(Config{Store: st2})
	ts2 := httptest.NewServer(s2.Handler())

	// The job falls through to a fresh run and rewrites the entry.
	var sr2 SubmitResponse
	postJSON(t, ts2.URL+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr2)
	if sr2.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if sr2.Status == nil || sr2.Status.Result == nil || sr2.Status.Result.Outcome != "verified" {
		t.Fatalf("fresh run: %+v", sr2.Status)
	}
	if st2.Len() != 1 {
		t.Fatalf("store has %d entries after recompute, want the rewritten one", st2.Len())
	}
	s2.Shutdown(ctx)
	ts2.Close()
	st2.Close()

	// Third life: the rewritten entry serves from disk.
	st3, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st3.Close() })
	if rec := st3.Recovery(); rec.Quarantined != 0 || rec.Entries != 1 {
		t.Fatalf("third open: %+v", rec)
	}
	s3 := New(Config{Store: st3})
	ts3 := httptest.NewServer(s3.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s3.Shutdown(ctx)
		ts3.Close()
	})
	var sr3 SubmitResponse
	postJSON(t, ts3.URL+"/jobs", SubmitRequest{Model: model, Wait: true}, &sr3)
	if !sr3.Cached {
		t.Fatal("rewritten entry not served from disk")
	}
}

// A batch routes as one unit to the node owning the member-identity
// hash, wherever it enters the cluster.
func TestClusterBatchRoutesAsUnit(t *testing.T) {
	nodes := startClusterNodes(t, 2, nil)
	breq := BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Model: counterModel(2), Name: "a"}},
		{SubmitRequest: SubmitRequest{Model: counterModel(3), Name: "b"}},
	}}

	// Compute the batch's routing key the way the server does.
	identities := make([]string, len(breq.Jobs))
	for i := range breq.Jobs {
		cp := breq.Jobs[i].SubmitRequest
		id, err := normalizeModel(&cp)
		if err != nil {
			t.Fatal(err)
		}
		identities[i] = id
	}
	ownerAddr, _ := nodes[0].cl.OwnerOf(batchKey(identities))
	var owner, entry *clusterNode
	for _, n := range nodes {
		if n.addr == ownerAddr {
			owner = n
		} else {
			entry = n
		}
	}

	var br BatchResponse
	resp := postJSON(t, entry.url()+"/batches", breq, &br)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d", resp.StatusCode)
	}
	if br.Node != owner.addr {
		t.Fatalf("batch executed on %q, want owner %q", br.Node, owner.addr)
	}
	if len(br.Jobs) != 2 {
		t.Fatalf("batch members: %v", br.Jobs)
	}
	// The members live on the owner, not the entry node.
	deadline := time.Now().Add(60 * time.Second)
	for {
		doc := getDoc(t, owner.url()+"/metrics")
		if metricInt(t, doc, "completed") == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch members never completed on the owner")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metricInt(t, getDoc(t, entry.url()+"/metrics"), "batches"); got != 0 {
		t.Fatalf("entry node registered %d batches, want 0", got)
	}
}
