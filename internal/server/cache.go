package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/resource"
	"repro/internal/verify"
)

// resultCache is the content-addressed in-memory result store: key =
// hash of (canonical model identity, engine, options, budget), value =
// the finished result plus the run's engine-event lines, so a repeated
// submission of the same work returns instantly — result and replayable
// event stream included — without touching a BDD manager.
//
// Only deterministic outcomes are cached: verified and violated
// verdicts always; exhaustion only when caused by the node limit or the
// iteration cap, which are functions of the keyed budget. Deadline and
// cancellation exhaustion depend on wall clock and client behavior and
// are never cached.
type resultCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	result *ResultWire
	events []json.RawMessage
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// cacheKey derives the content address of a normalized submission. The
// model identity is canonical (lang.Canon output), the engine name is
// the registry's canonical spelling, and the options and budget are the
// *resolved* forms the run will actually execute under — the parsed
// termination mode, the default-filled and server-clamped budget — not
// the raw wire fields. That is what makes the documented contract hold:
// two submissions collide exactly when the service would do
// byte-identical work, so `termination:""` and `"exact"` share an
// entry, as do `node_limit:-1` and an explicit ask for the daemon's
// clamp maximum.
func cacheKey(modelIdentity, engine string, opt verify.Options, budget resource.Budget) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00term=%d workers=%d grow=%g trace=%t gc=%d\x00nodes=%d timeout=%d iter=%d",
		modelIdentity, engine,
		opt.Termination, opt.Workers, opt.Core.GrowThreshold, opt.WantTrace, opt.GCEvery,
		budget.NodeLimit, int64(budget.Timeout), budget.MaxIterations)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheable reports whether a finished result may be stored.
func cacheable(rw *ResultWire) bool {
	switch rw.Outcome {
	case "verified", "violated":
		return true
	case "exhausted":
		return rw.Cause == "node-limit" || rw.Cause == "iteration-cap"
	}
	return false
}

// get returns the entry for key, refreshing its recency. Callers hold
// the server mutex.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting the least recently used past capacity;
// it returns the number of entries evicted. Callers hold the server
// mutex.
func (c *resultCache) put(key string, result *ResultWire, events []json.RawMessage) int {
	if c.cap <= 0 {
		return 0
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = result
		el.Value.(*cacheEntry).events = events
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: result, events: events})
	evicted := 0
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len reports the number of cached results. Callers hold the server
// mutex.
func (c *resultCache) len() int { return c.order.Len() }

// --- the persistent tier -----------------------------------------------

// storedResult is the persistent store's payload: the finished result
// plus the run's engine-event lines, so a store hit replays the exact
// NDJSON stream a live run would produce.
type storedResult struct {
	Result *ResultWire       `json:"result"`
	Events []json.RawMessage `json:"events,omitempty"`
}

// lookupResult consults the two cache tiers in order — the in-memory
// LRU, then the persistent store — and returns the entry or nil. A
// store hit is promoted into the memory tier. Every call is one
// content-addressed lookup in the metrics' accounting:
//
//	cache_lookups == cache_memory_hits + cache_store_hits + cache_misses
//
// Store I/O happens outside the server mutex.
func (s *Server) lookupResult(key string) *cacheEntry {
	s.met.cacheLookups.Add(1)
	s.mu.Lock()
	entry, hit := s.cache.get(key)
	s.mu.Unlock()
	if hit {
		s.met.cacheMemHits.Add(1)
		s.met.cacheHits.Add(1)
		return entry
	}
	if s.store != nil {
		if payload, ok := s.store.Get(key); ok {
			var sr storedResult
			if err := json.Unmarshal(payload, &sr); err == nil && sr.Result != nil {
				s.met.cacheStoreHits.Add(1)
				s.met.cacheHits.Add(1)
				s.mu.Lock()
				evicted := s.cache.put(key, sr.Result, sr.Events)
				s.mu.Unlock()
				s.met.cacheEvictions.Add(int64(evicted))
				return &cacheEntry{key: key, result: sr.Result, events: sr.Events}
			}
		}
	}
	s.met.cacheMisses.Add(1)
	return nil
}

// storeResult writes a finished result through both tiers: the memory
// LRU immediately, and — when a store is configured — the persistent
// store, so the verdict survives a daemon restart. A store write
// failure is not a job failure; the memory tier already has the entry.
func (s *Server) storeResult(key string, rw *ResultWire, events []json.RawMessage) {
	s.mu.Lock()
	evicted := s.cache.put(key, rw, events)
	s.mu.Unlock()
	s.met.cacheEvictions.Add(int64(evicted))
	if s.store != nil {
		if payload, err := json.Marshal(storedResult{Result: rw, Events: events}); err == nil {
			s.store.Put(key, payload)
		}
	}
}
