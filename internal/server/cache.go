package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/resource"
	"repro/internal/verify"
)

// resultCache is the content-addressed in-memory result store: key =
// hash of (canonical model identity, engine, options, budget), value =
// the finished result plus the run's engine-event lines, so a repeated
// submission of the same work returns instantly — result and replayable
// event stream included — without touching a BDD manager.
//
// Only deterministic outcomes are cached: verified and violated
// verdicts always; exhaustion only when caused by the node limit or the
// iteration cap, which are functions of the keyed budget. Deadline and
// cancellation exhaustion depend on wall clock and client behavior and
// are never cached.
type resultCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	result *ResultWire
	events []json.RawMessage
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// cacheKey derives the content address of a normalized submission. The
// model identity is canonical (lang.Canon output), the engine name is
// the registry's canonical spelling, and the options and budget are the
// *resolved* forms the run will actually execute under — the parsed
// termination mode, the default-filled and server-clamped budget — not
// the raw wire fields. That is what makes the documented contract hold:
// two submissions collide exactly when the service would do
// byte-identical work, so `termination:""` and `"exact"` share an
// entry, as do `node_limit:-1` and an explicit ask for the daemon's
// clamp maximum.
func cacheKey(modelIdentity, engine string, opt verify.Options, budget resource.Budget) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00term=%d workers=%d grow=%g trace=%t gc=%d\x00nodes=%d timeout=%d iter=%d",
		modelIdentity, engine,
		opt.Termination, opt.Workers, opt.Core.GrowThreshold, opt.WantTrace, opt.GCEvery,
		budget.NodeLimit, int64(budget.Timeout), budget.MaxIterations)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheable reports whether a finished result may be stored.
func cacheable(rw *ResultWire) bool {
	switch rw.Outcome {
	case "verified", "violated":
		return true
	case "exhausted":
		return rw.Cause == "node-limit" || rw.Cause == "iteration-cap"
	}
	return false
}

// get returns the entry for key, refreshing its recency. Callers hold
// the server mutex.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting the least recently used past capacity.
// Callers hold the server mutex.
func (c *resultCache) put(key string, result *ResultWire, events []json.RawMessage) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = result
		el.Value.(*cacheEntry).events = events
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: result, events: events})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results. Callers hold the server
// mutex.
func (c *resultCache) len() int { return c.order.Len() }
