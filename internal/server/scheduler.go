package server

import (
	"encoding/json"
	"fmt"
	"runtime/debug"

	"repro/internal/bdd"
	"repro/internal/par"
	"repro/internal/verify"
)

// The scheduler is par.Serve over the server's bounded job channel:
// Config.Workers persistent workers with stable identities, each
// running one job at a time on a manager of its own. Closing the
// channel (drain) lets the workers finish the backlog and exit; the
// server signals schedDone when the last one returns.

// startScheduler launches the worker pool. It is called once by New.
func (s *Server) startScheduler() {
	go func() {
		defer close(s.schedDone)
		par.Serve(s.cfg.Workers, s.tasks, s.runJob)
	}()
}

// runJob executes one job end to end: fresh BDD manager, problem
// construction, a budget joined to the job's lifecycle context (and,
// for wait-mode submissions, the client's request context), the
// verify run with the job's event sink attached, trace rendering, and
// finalization into result cache and metrics. Any panic that escapes
// the verification harness is converted into a job error rather than
// taking the daemon down.
func (s *Server) runJob(_ int, j *job) {
	s.met.queued.Add(-1)
	if j.ctx.Err() != nil {
		// Canceled (or drained past the deadline) while still queued:
		// finalize without running. The verdict is an exhaustion with
		// the cancellation cause, mirroring what a mid-run cancel
		// produces, so clients observe one shape either way.
		s.finalize(j, &ResultWire{
			Problem: j.name,
			Method:  string(j.engine),
			Outcome: verify.Exhausted.String(),
			Cause:   "canceled",
			Why:     "canceled before start",
		}, nil)
		return
	}
	if !j.setRunning() {
		return
	}
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	defer func() {
		if r := recover(); r != nil {
			s.failJob(j, fmt.Sprintf("internal error: %v\n%s", r, debug.Stack()))
		}
	}()

	m := bdd.NewWithSize(1<<16, 20)
	p, err := buildProblem(m, &j.req)
	if err != nil {
		s.failJob(j, err.Error())
		return
	}

	// The run's budget context: the job lifecycle context (server base
	// + explicit cancel), joined — for wait-mode submissions — with the
	// HTTP request context, so a client hanging up cancels the work.
	budget := j.budget
	budget.Ctx = j.ctx
	budget, release := budget.Join(j.reqCtx)
	defer release()

	// The sink feeds the job's subscriber-visible buffer and, in
	// parallel, collects the engine lines alone for the result cache
	// (lifecycle lines are per-job, not per-computation).
	var engineLines []json.RawMessage
	opt := j.opt
	opt.Budget = budget
	opt.Observer = verify.SinkObserver{Method: string(j.engine), Sink: func(e verify.Event) {
		line, err := json.Marshal(e)
		if err != nil {
			return
		}
		engineLines = append(engineLines, line)
		j.appendRaw(line)
	}}

	res := verify.RunContext(j.ctx, p, j.engine, opt)

	var traceText string
	if res.Trace != nil {
		goods := p.GoodList
		if goods == nil {
			goods = []bdd.Ref{p.Good}
		}
		if err := res.Trace.Validate(p.Machine, goods); err != nil {
			traceText = fmt.Sprintf("trace validation failed: %v", err)
		} else if rendered, err := res.Trace.Format(m, p.Machine.CurVars()); err == nil {
			traceText = rendered
		}
	}

	s.finalize(j, resultWire(res, traceText), engineLines)
}

// finalize completes a job: result cache (when the outcome is
// deterministic), metrics, and the job's terminal transition, whose
// final event line is appended before the done channel closes — the
// ordering the drain guarantee rests on.
func (s *Server) finalize(j *job, rw *ResultWire, engineLines []json.RawMessage) {
	if cacheable(rw) {
		s.mu.Lock()
		s.cache.put(j.key, rw, engineLines)
		s.mu.Unlock()
	}
	s.met.completedJob(string(j.engine), rw)
	j.finish(rw)
}

// failJob completes a job in the error state.
func (s *Server) failJob(j *job, msg string) {
	s.met.errors.Add(1)
	j.fail(msg)
}
