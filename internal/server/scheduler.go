package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/bdd"
	"repro/internal/par"
	"repro/internal/resource"
	"repro/internal/verify"
)

// The scheduler is par.Serve over the server's bounded job channel:
// Config.Workers persistent workers with stable identities, each
// running one job at a time on a manager of its own. Closing the
// channel (drain) lets the workers finish the backlog and exit; the
// server signals schedDone when the last one returns.

// startScheduler launches the worker pool. It is called once by New.
func (s *Server) startScheduler() {
	go func() {
		defer close(s.schedDone)
		par.Serve(s.cfg.Workers, s.tasks, s.runJob)
	}()
}

// runJob executes one job end to end: its engine ladder walked
// cheapest-first, every rung but the last under the slice budget
// clamped to the owning batch's pool, escalating on budget exhaustion
// (never on cancellation) until a rung settles the verdict or the
// ladder runs out. Single-engine submissions are the one-rung case and
// behave exactly as before. Any panic that escapes the verification
// harness is converted into a job error rather than taking the daemon
// down.
func (s *Server) runJob(_ int, j *job) {
	s.met.queued.Add(-1)
	if j.ctx.Err() != nil {
		// Canceled (or drained past the deadline) while still queued:
		// finalize without running. The verdict is an exhaustion with
		// the cancellation cause, mirroring what a mid-run cancel
		// produces, so clients observe one shape either way.
		s.finalize(j, &ResultWire{
			Problem: j.name,
			Method:  string(j.ladder[0]),
			Outcome: verify.Exhausted.String(),
			Cause:   "canceled",
			Why:     "canceled before start",
		})
		return
	}
	if !j.setRunning() {
		return
	}
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	defer func() {
		if r := recover(); r != nil {
			s.failJob(j, fmt.Sprintf("internal error: %v\n%s", r, debug.Stack()))
		}
	}()

	for rung, meth := range j.ladder {
		final := rung == len(j.ladder)-1
		j.setEngine(meth)

		budget := j.budget
		if !final {
			budget = j.slice
		}
		if j.batch != nil {
			clamped, err := j.batch.pool.Clamp(budget)
			if err != nil {
				// The shared pool is dry: the member finalizes as
				// exhausted without running, through the same typed
				// cause taxonomy a mid-run overrun produces.
				rw := poolExhaustedWire(j, meth, err)
				s.met.attempts.Add(1)
				j.recordAttempt(attemptOf(rw, budget, false, false), rung)
				s.finalize(j, rw)
				return
			}
			budget = clamped
		}

		rw, fromCache, ok := s.runAttempt(j, meth, budget)
		if !ok {
			return // runAttempt already finalized the error state
		}
		if j.batch != nil {
			j.batch.pool.Consume(rw.PeakLiveNodes)
		}
		s.met.attempts.Add(1)

		esc := !final && escalates(rw)
		j.recordAttempt(attemptOf(rw, budget, fromCache, esc), rung)
		if esc {
			s.met.escalations.Add(1)
			continue
		}
		s.finalize(j, rw)
		return
	}
}

// attemptOf projects a finished attempt's wire result into its record.
func attemptOf(rw *ResultWire, budget resource.Budget, cached, escalated bool) Attempt {
	return Attempt{
		Engine:        rw.Method,
		Outcome:       rw.Outcome,
		Cause:         rw.Cause,
		Iterations:    rw.Iterations,
		ElapsedMS:     rw.ElapsedMS,
		PeakLiveNodes: rw.PeakLiveNodes,
		NodeLimit:     budget.NodeLimit,
		Cached:        cached,
		Escalated:     escalated,
	}
}

// poolExhaustedWire builds the exhausted verdict of a member that found
// its batch's pool already dry.
func poolExhaustedWire(j *job, meth verify.Method, err error) *ResultWire {
	cause := "other"
	switch {
	case errors.Is(err, resource.ErrNodeLimit):
		cause = "node-limit"
	case errors.Is(err, resource.ErrDeadline):
		cause = "deadline"
	}
	return &ResultWire{
		Problem: j.name,
		Method:  string(meth),
		Outcome: verify.Exhausted.String(),
		Cause:   cause,
		Why:     fmt.Sprintf("batch pool exhausted: %v", err),
	}
}

// runAttempt executes one engine attempt: fresh BDD manager, problem
// construction, the attempt budget joined to the job's lifecycle
// context (and, for wait-mode submissions, the client's request
// context), the verify run with the job's event sink attached, trace
// rendering, and — when the attempt is content-addressable — result
// cache get/put. Returns ok=false after finalizing the job's error
// state (the ladder must not continue past a broken model).
func (s *Server) runAttempt(j *job, meth verify.Method, budget resource.Budget) (rw *ResultWire, fromCache, ok bool) {
	// The cache is consulted only when the budget the attempt runs
	// under is a pure function of the submission: a bounded pool clamps
	// budgets by global batch state, which would poison a
	// content-addressed entry.
	cacheOK := j.batch == nil || !j.batch.pool.Bounded()
	var key string
	if cacheOK {
		key = cacheKey(j.identity, string(meth), j.opt, budget)
		if entry := s.lookupResult(key); entry != nil {
			j.markCached()
			// Replay the cached run's engine lines through the ordinary
			// append path, so a batch's multiplexed stream sees them
			// labeled like live ones.
			for _, line := range entry.events {
				j.appendRaw(line)
			}
			return entry.result, true, true
		}
	}

	m := bdd.NewWithSize(1<<16, 20)
	p, err := buildProblem(m, &j.req)
	if err != nil {
		s.failJob(j, err.Error())
		return nil, false, false
	}

	budget.Ctx = j.ctx
	budget, release := budget.Join(j.reqCtx)
	defer release()

	// The sink feeds the job's subscriber-visible buffer and, in
	// parallel, collects the engine lines alone for the result cache
	// (lifecycle lines are per-job, not per-computation).
	var engineLines []json.RawMessage
	opt := j.opt
	opt.Budget = budget
	opt.Observer = verify.SinkObserver{Method: string(meth), Sink: func(e verify.Event) {
		line, err := json.Marshal(e)
		if err != nil {
			return
		}
		engineLines = append(engineLines, line)
		j.appendRaw(line)
	}}

	res := verify.RunContext(j.ctx, p, meth, opt)

	rw = resultWire(res, renderTrace(res, m, p))
	rw.PeakLiveNodes = m.PeakNodes()
	rw.TotalVars = m.NumVars()

	if cacheOK && cacheable(rw) {
		s.storeResult(key, rw, engineLines)
	}
	return rw, false, true
}

// renderTrace validates and renders a violation witness. A failure at
// either step is surfaced in the trace text: silently dropping a
// render error would finalize (and cache) a violated verdict with an
// empty trace, indistinguishable from "no witness requested".
func renderTrace(res verify.Result, m *bdd.Manager, p verify.Problem) string {
	if res.Trace == nil {
		return ""
	}
	goods := p.GoodList
	if goods == nil {
		goods = []bdd.Ref{p.Good}
	}
	if err := res.Trace.Validate(p.Machine, goods); err != nil {
		return fmt.Sprintf("trace validation failed: %v", err)
	}
	rendered, err := res.Trace.Format(m, p.Machine.CurVars())
	if err != nil {
		return fmt.Sprintf("trace render failed: %v", err)
	}
	return rendered
}

// finalize completes a job: metrics keyed on the engine that settled
// the verdict, then the job's terminal transition, whose final event
// line is appended before the done channel closes — the ordering the
// drain guarantee rests on.
func (s *Server) finalize(j *job, rw *ResultWire) {
	s.met.completedJob(rw.Method, rw)
	j.finish(rw)
}

// failJob completes a job in the error state.
func (s *Server) failJob(j *job, msg string) {
	s.met.errors.Add(1)
	j.fail(msg)
}
