package server

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/lang"
	"repro/internal/models"
	"repro/internal/verify"
)

// The named built-in model families a job may request instead of
// shipping textual source. Each entry validates its knobs at submission
// (so bad sizes are a 400, not a failed job) and constructs the problem
// on the worker's manager at run time.
type builtin struct {
	defaultSize int
	validate    func(req *SubmitRequest) error
	build       func(m *bdd.Manager, req *SubmitRequest) verify.Problem
}

var builtins = map[string]builtin{
	"fifo": {
		defaultSize: 3,
		validate: func(req *SubmitRequest) error {
			if req.Size <= 0 {
				return fmt.Errorf("fifo needs size >= 1 (queue depth)")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			cfg := models.DefaultFIFO(req.Size)
			cfg.Bug = req.Bug
			return models.NewFIFO(m, cfg)
		},
	},
	"network": {
		defaultSize: 2,
		validate: func(req *SubmitRequest) error {
			if req.Size < 1 || req.Size >= 16 {
				return fmt.Errorf("network needs 1 <= size < 16 (processors)")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			return models.NewNetwork(m, models.NetworkConfig{Procs: req.Size, Bug: req.Bug})
		},
	},
	"filter": {
		defaultSize: 4,
		validate: func(req *SubmitRequest) error {
			if req.Size < 2 || req.Size&(req.Size-1) != 0 {
				return fmt.Errorf("filter needs size = a power of two >= 2 (window depth)")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			cfg := models.DefaultFilter(req.Size, req.Assist)
			cfg.Bug = req.Bug
			return models.NewFilter(m, cfg)
		},
	},
	"pipeline": {
		validate: func(req *SubmitRequest) error {
			if req.Regs < 2 || req.Regs&(req.Regs-1) != 0 {
				return fmt.Errorf("pipeline needs regs = a power of two >= 2")
			}
			if req.Bits < 1 {
				return fmt.Errorf("pipeline needs bits >= 1")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			cfg := models.DefaultPipeline(req.Regs, req.Bits)
			cfg.Assist = req.Assist
			cfg.Bug = req.Bug
			return models.NewPipeline(m, cfg)
		},
	},
	"coherence": {
		defaultSize: 2,
		validate: func(req *SubmitRequest) error {
			if req.Size < 2 || req.Size > 8 {
				return fmt.Errorf("coherence needs 2 <= size <= 8 (caches)")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			return models.NewCoherence(m, models.CoherenceConfig{Caches: req.Size, Bug: req.Bug})
		},
	},
	"link": {
		defaultSize: 1,
		validate: func(req *SubmitRequest) error {
			if req.Size < 1 || req.Size > 16 {
				return fmt.Errorf("link needs 1 <= size <= 16 (data bits)")
			}
			return nil
		},
		build: func(m *bdd.Manager, req *SubmitRequest) verify.Problem {
			return models.NewLink(m, models.LinkConfig{DataBits: req.Size, Bug: req.Bug})
		},
	},
}

// Builtins returns the accepted builtin names, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// normalizeModel validates the request's model selection, fills
// defaults in place, and returns the canonical model identity string
// the result cache hashes. For textual models that is the canonical
// source (lang.Canon); for builtins, a fully-resolved parameter string.
func normalizeModel(req *SubmitRequest) (string, error) {
	hasModel := strings.TrimSpace(req.Model) != ""
	if hasModel == (req.Builtin != "") {
		return "", fmt.Errorf("exactly one of \"model\" or \"builtin\" must be set (builtins: %s)",
			strings.Join(Builtins(), ", "))
	}
	if hasModel {
		canon, err := lang.Canon(req.Model)
		if err != nil {
			return "", err
		}
		req.Model = canon
		if req.Name == "" {
			req.Name = "model"
		}
		return "lang:" + canon, nil
	}
	bi, ok := builtins[req.Builtin]
	if !ok {
		return "", fmt.Errorf("unknown builtin %q (builtins: %s)", req.Builtin, strings.Join(Builtins(), ", "))
	}
	if req.Size == 0 {
		req.Size = bi.defaultSize
	}
	if req.Builtin == "pipeline" {
		if req.Regs == 0 {
			req.Regs = 2
		}
		if req.Bits == 0 {
			req.Bits = 1
		}
	}
	if err := bi.validate(req); err != nil {
		return "", err
	}
	if req.Name == "" {
		req.Name = req.Builtin
	}
	return fmt.Sprintf("builtin:%s/size=%d/regs=%d/bits=%d/assist=%t/bug=%t",
		req.Builtin, req.Size, req.Regs, req.Bits, req.Assist, req.Bug), nil
}

// buildProblem constructs the job's problem on the worker's manager.
// The request was normalized at submission, so failures here are
// resource overruns or model-constructor panics, both converted by the
// caller.
func buildProblem(m *bdd.Manager, req *SubmitRequest) (verify.Problem, error) {
	if req.Model != "" {
		return lang.Parse(m, req.Model, req.Name)
	}
	bi, ok := builtins[req.Builtin]
	if !ok {
		return verify.Problem{}, fmt.Errorf("unknown builtin %q", req.Builtin)
	}
	p := bi.build(m, req)
	p.Name = req.Name
	return p, nil
}
