package server

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/lang"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// Builtin models are the zoo registry: every registered entry — the
// paper families, the parameterized additions, the imported `.fsm`
// machines — is submittable by name. At submission the entry is built
// (manager-free IR) and serialized to its canonical text, so from that
// point on a builtin job IS a textual job: same code path, same
// content-addressed cache identity. A builtin submission and a textual
// submission of the equivalent model therefore share one cache entry.

// legacySizeKey maps the original flat "size" knob onto the zoo entry's
// named parameter, for the six family names the first API version had.
var legacySizeKey = map[string]string{
	"fifo":      "depth",
	"network":   "procs",
	"filter":    "depth",
	"coherence": "caches",
	"link":      "data-bits",
}

// legacyDefaults reproduces the first API version's default sizes,
// which were smaller than the zoo entries' own defaults.
var legacyDefaults = map[string]zoo.Size{
	"fifo":      {"depth": 3},
	"network":   {"procs": 2},
	"filter":    {"depth": 4},
	"coherence": {"caches": 2},
	"link":      {"data-bits": 1},
	"pipeline":  {"regs": 2, "width": 1},
}

// Builtins returns the accepted builtin names (the zoo registry),
// sorted.
func Builtins() []string { return zoo.Names() }

// builtinSize resolves the request's parameter surface — the legacy
// flat knobs plus the named "params" map — into the zoo size overrides.
// Named params win over legacy knobs.
func builtinSize(req *SubmitRequest) (zoo.Size, error) {
	size := zoo.Size{}
	for k, v := range legacyDefaults[req.Builtin] {
		size[k] = v
	}
	if req.Size != 0 {
		key, ok := legacySizeKey[req.Builtin]
		if !ok {
			return nil, fmt.Errorf("builtin %q takes named parameters; use \"params\" instead of \"size\"", req.Builtin)
		}
		size[key] = req.Size
	}
	if req.Regs != 0 || req.Bits != 0 {
		if req.Builtin != "pipeline" {
			return nil, fmt.Errorf("\"regs\"/\"bits\" only apply to the pipeline builtin; use \"params\" for %q", req.Builtin)
		}
		if req.Regs != 0 {
			size["regs"] = req.Regs
		}
		if req.Bits != 0 {
			size["width"] = req.Bits
		}
	}
	if req.Assist {
		size["assist"] = 1
	}
	if req.Bug {
		size["bug"] = 1
	}
	for k, v := range req.Params {
		size[k] = v
	}
	return size, nil
}

// normalizeModel validates the request's model selection, fills
// defaults in place, and returns the canonical model identity string
// the result cache hashes. Both frontends converge on the same
// identity: textual source is canonicalized with lang.Canon; a builtin
// is built from the zoo registry and serialized to the identical
// canonical form (the golden round-trip tests pin that lang.Canon is a
// fixed point on it). Either way the job leaves here carrying canonical
// text in req.Model.
func normalizeModel(req *SubmitRequest) (string, error) {
	hasModel := strings.TrimSpace(req.Model) != ""
	if hasModel == (req.Builtin != "") {
		return "", fmt.Errorf("exactly one of \"model\" or \"builtin\" must be set (builtins: %s)",
			strings.Join(Builtins(), ", "))
	}
	if hasModel {
		canon, err := lang.Canon(req.Model)
		if err != nil {
			return "", err
		}
		req.Model = canon
		if req.Name == "" {
			req.Name = "model"
		}
		return "ir:" + canon, nil
	}
	e, ok := zoo.Get(req.Builtin)
	if !ok {
		return "", fmt.Errorf("unknown builtin %q (builtins: %s)", req.Builtin, strings.Join(Builtins(), ", "))
	}
	size, err := builtinSize(req)
	if err != nil {
		return "", err
	}
	mo, err := e.Model(size)
	if err != nil {
		return "", err
	}
	req.Model = mo.Format()
	if req.Name == "" {
		req.Name = req.Builtin
	}
	return "ir:" + req.Model, nil
}

// buildProblem constructs the job's problem on the worker's manager.
// Every job — textual or builtin — carries canonical text after
// normalization, so there is exactly one construction path and no
// frontend builds BDDs outside ir.Instantiate.
func buildProblem(m *bdd.Manager, req *SubmitRequest) (verify.Problem, error) {
	if req.Model == "" {
		return verify.Problem{}, fmt.Errorf("job was not normalized: empty model")
	}
	return lang.Parse(m, req.Model, req.Name)
}
