package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/lang"
	"repro/internal/models"
	"repro/internal/verify"
	"repro/internal/zoo"
)

func (e *testServer) postBatch(t *testing.T, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/batches", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// submitBatch POSTs a batch and returns the accepted response.
func (e *testServer) submitBatch(t *testing.T, breq BatchRequest) BatchResponse {
	t.Helper()
	resp, data := e.postBatch(t, breq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("batch response: %v (%s)", err, data)
	}
	return br
}

// waitBatchDone polls a batch until its state is done.
func (e *testServer) waitBatchDone(t *testing.T, id string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := e.get(t, "/batches/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %s: %d %s", id, resp.StatusCode, data)
		}
		var st BatchStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == BatchDone {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return BatchStatus{}
}

// directProblem rebuilds a zoo member exactly as the server does:
// canonical text through the one construction path.
func directProblem(t *testing.T, m *bdd.Manager, name string, size zoo.Size) verify.Problem {
	t.Helper()
	mo, err := zoo.Build(name, size)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lang.Parse(m, mo.Format(), name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The tentpole acceptance test: a batch of zoo models under the policy
// ["FD","XICI","PDR"] with a tiny slice budget. Non-final rungs exhaust
// under the slice and escalate — every attempt recorded — and each
// member's final verdict is identical to a direct verify.RunContext run
// of the engine that settled it.
func TestBatchPortfolioEscalates(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2, QueueCap: 16})

	type member struct {
		entry BatchEntry
		zooN  string
		size  zoo.Size
	}
	memberSpecs := []member{
		{BatchEntry{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3}}, "fifo", zoo.Size{"depth": 3}},
		{BatchEntry{SubmitRequest: SubmitRequest{Builtin: "fsm/door"}}, "fsm/door", zoo.Size{}},
		{BatchEntry{SubmitRequest: SubmitRequest{Builtin: "link", Size: 1, Bug: true}}, "link", zoo.Size{"data-bits": 1, "bug": 1}},
	}
	breq := BatchRequest{
		Name:   "portfolio",
		Policy: []string{"FD", "XICI", "PDR"},
		Slice:  BudgetSpec{NodeLimit: 64},
	}
	for _, ms := range memberSpecs {
		breq.Jobs = append(breq.Jobs, ms.entry)
	}

	br := e.submitBatch(t, breq)
	if len(br.Jobs) != len(memberSpecs) {
		t.Fatalf("batch admitted %d members, want %d", len(br.Jobs), len(memberSpecs))
	}

	bst := e.waitBatchDone(t, br.ID)
	if bst.Done != len(memberSpecs) || bst.Errors != 0 {
		t.Fatalf("batch tally: %+v", bst)
	}
	if bst.Escalations == 0 {
		t.Fatalf("no member escalated despite the 64-node slice: %+v", bst)
	}
	if bst.Attempts <= len(memberSpecs) {
		t.Errorf("attempts = %d, want > %d (escalations imply extra rungs)", bst.Attempts, len(memberSpecs))
	}

	for i, ms := range memberSpecs {
		st := e.waitDone(t, br.Jobs[i])
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("%s: state %q error %q", ms.zooN, st.State, st.Error)
		}
		if st.Batch != br.ID {
			t.Errorf("%s: status.batch = %q, want %q", ms.zooN, st.Batch, br.ID)
		}
		if len(st.Policy) != 3 {
			t.Errorf("%s: status.policy = %v", ms.zooN, st.Policy)
		}
		if len(st.Attempts) == 0 {
			t.Fatalf("%s: no attempt records", ms.zooN)
		}
		// Every non-final attempt escalated out of a slice exhaustion;
		// the final one settled the verdict.
		for k, a := range st.Attempts[:len(st.Attempts)-1] {
			if !a.Escalated || a.Outcome != verify.Exhausted.String() || !escalationCauses[a.Cause] {
				t.Errorf("%s: attempt %d %+v, want an escalated exhaustion", ms.zooN, k, a)
			}
			if a.NodeLimit != 64 {
				t.Errorf("%s: attempt %d ran under node limit %d, want the 64-node slice", ms.zooN, k, a.NodeLimit)
			}
		}
		last := st.Attempts[len(st.Attempts)-1]
		if last.Escalated {
			t.Errorf("%s: final attempt marked escalated: %+v", ms.zooN, last)
		}
		if last.Engine != st.Result.Method || last.Outcome != st.Result.Outcome {
			t.Errorf("%s: final attempt %+v disagrees with result %s/%s",
				ms.zooN, last, st.Result.Method, st.Result.Outcome)
		}

		// The settled verdict must match a direct library run of the
		// same engine on the same problem.
		m := bdd.New()
		p := directProblem(t, m, ms.zooN, ms.size)
		ref := verify.RunContext(context.Background(), p, verify.Method(st.Result.Method), verify.Options{})
		if st.Result.Outcome != ref.Outcome.String() {
			t.Errorf("%s: batch verdict %q (via %s), direct run %q",
				ms.zooN, st.Result.Outcome, st.Result.Method, ref.Outcome)
		}
		if st.Result.Iterations != ref.Iterations {
			t.Errorf("%s: batch iterations %d, direct %d", ms.zooN, st.Result.Iterations, ref.Iterations)
		}
	}

	// The bugged link must have been caught violated by whatever rung
	// settled it.
	if bst.Violated != 1 {
		t.Errorf("batch violated = %d, want 1 (the bugged link)", bst.Violated)
	}
}

// A bounded node pool is shared: the first member drains it, and the
// rest finalize as exhausted through the typed cause taxonomy without
// ever running.
func TestBatchSharedPoolExhausts(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 16})
	breq := BatchRequest{
		Pool: BudgetSpec{NodeLimit: 1},
		Jobs: []BatchEntry{
			{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
			{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 4, Engine: "XICI"}},
			{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 5, Engine: "XICI"}},
		},
	}
	br := e.submitBatch(t, breq)
	bst := e.waitBatchDone(t, br.ID)
	if bst.Exhausted != 3 || bst.Done != 3 {
		t.Fatalf("pool batch tally: %+v", bst)
	}
	if bst.Pool == nil || bst.Pool.NodesLeft != 0 {
		t.Fatalf("pool not drained: %+v", bst.Pool)
	}

	// The single worker runs members in order: the first actually ran
	// (and overran its 1-node clamp), the later ones found the pool dry.
	first := e.waitDone(t, br.Jobs[0])
	if first.Result == nil || first.Result.Cause != "node-limit" {
		t.Fatalf("first member: %+v", first.Result)
	}
	if strings.Contains(first.Result.Why, "batch pool exhausted") {
		t.Fatalf("first member never ran: %q", first.Result.Why)
	}
	for _, id := range br.Jobs[1:] {
		st := e.waitDone(t, id)
		if st.Result == nil || st.Result.Outcome != verify.Exhausted.String() || st.Result.Cause != "node-limit" {
			t.Fatalf("dry-pool member %s: %+v", id, st.Result)
		}
		if !strings.Contains(st.Result.Why, "batch pool exhausted") {
			t.Errorf("dry-pool member %s: why %q", id, st.Result.Why)
		}
		if len(st.Attempts) != 1 || st.Attempts[0].Iterations != 0 {
			t.Errorf("dry-pool member %s attempts: %+v", id, st.Attempts)
		}
	}
}

// The multiplexed stream interleaves member-labeled event lines with
// batch lifecycle lines and ends — drain guarantee, batch-wide — with
// the batch "done" line. A grid entry expands into its zoo members.
func TestBatchMultiplexedStream(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2, QueueCap: 16})
	br := e.submitBatch(t, BatchRequest{
		Jobs: []BatchEntry{
			{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
			{Grid: "fsm/door"},
		},
	})
	if len(br.Jobs) < 2 {
		t.Fatalf("grid entry did not expand: %v", br.Jobs)
	}

	resp, err := http.Get(e.ts.URL + "/batches/" + br.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2+2*len(br.Jobs) {
		t.Fatalf("stream too short: %d lines", len(lines))
	}
	if lines[0]["event"] != "batch" || lines[0]["state"] != BatchRunning {
		t.Errorf("first line %v, want the batch running marker", lines[0])
	}
	last := lines[len(lines)-1]
	if last["event"] != "done" || last["state"] != BatchDone {
		t.Errorf("last line %v, want the batch done marker", last)
	}
	if int(last["verified"].(float64)) != len(br.Jobs) {
		t.Errorf("done line verified = %v, want %d", last["verified"], len(br.Jobs))
	}

	// Every member contributed labeled lines, including its own "done".
	memberDone := map[string]bool{}
	for _, line := range lines[1 : len(lines)-1] {
		member, _ := line["member"].(string)
		if member == "" {
			t.Fatalf("unlabeled interior line: %v", line)
		}
		if line["event"] == "done" {
			memberDone[member] = true
		}
	}
	for _, id := range br.Jobs {
		if !memberDone[id] {
			t.Errorf("member %s has no labeled done line in the multiplexed stream", id)
		}
	}
}

// Batch admission is all-or-nothing: a batch larger than the queue's
// free capacity is rejected 503 with nothing registered and no metric
// moved, while a batch that fits is admitted afterwards.
func TestBatchQueueFullRollsBack(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	long := SubmitRequest{Model: counterModel(18), Name: "counter", Engine: "Fwd"}
	a := e.submit(t, long)
	// Wait for the worker to pick it up so exactly QueueCap slots remain.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, data := e.get(t, "/jobs/"+a)
		var st JobStatus
		json.Unmarshal(data, &st)
		if st.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	b := e.submit(t, long) // takes one queue slot, one remains

	resp, data := e.postBatch(t, BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
		{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "FD"}},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized batch: %d %s, want 503", resp.StatusCode, data)
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "submitted"); got != 2 {
		t.Errorf("submitted = %d after batch rollback, want 2", got)
	}
	if got := metricInt(t, doc, "batches"); got != 0 {
		t.Errorf("batches = %d after rollback, want 0", got)
	}
	if resp, data := e.get(t, "/batches"); resp.StatusCode != http.StatusOK || strings.TrimSpace(string(data)) != "[]" {
		t.Errorf("rolled-back batch is visible: %s", data)
	}

	// A batch that fits the remaining slot is admitted.
	br := e.submitBatch(t, BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
	}})

	// Unblock the workers and let everything land.
	for _, id := range []string{a, b} {
		req, _ := http.NewRequest("DELETE", e.ts.URL+"/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	e.waitDone(t, a)
	e.waitDone(t, b)
	if bst := e.waitBatchDone(t, br.ID); bst.Verified != 1 {
		t.Errorf("follow-up batch: %+v", bst)
	}
}

// Every malformed batch is rejected whole, before any member is
// registered.
func TestBatchValidation(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"no-jobs", `{"jobs":[]}`},
		{"unknown-policy-engine", `{"policy":["FD","Magic"],"jobs":[{"builtin":"fifo"}]}`},
		{"pool-iterations", `{"pool":{"max_iterations":5},"jobs":[{"builtin":"fifo"}]}`},
		{"negative-pool", `{"pool":{"node_limit":-1},"jobs":[{"builtin":"fifo"}]}`},
		{"wait-in-batch", `{"jobs":[{"builtin":"fifo","wait":true}]}`},
		{"grid-and-builtin", `{"jobs":[{"grid":"fifo","builtin":"fifo"}]}`},
		{"unknown-grid", `{"jobs":[{"grid":"turbofifo"}]}`},
		{"bad-member-model", `{"jobs":[{"builtin":"fifo"},{"model":"(state x"}]}`},
		{"bad-member-options", `{"jobs":[{"builtin":"fifo","options":{"workers":-2}}]}`},
		{"unknown-field", `{"frobnicate":1,"jobs":[{"builtin":"fifo"}]}`},
	}
	for _, c := range cases {
		resp, err := http.Post(e.ts.URL+"/batches", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, data)
		}
	}
	if resp, _ := e.get(t, "/batches/b99999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch status: %d, want 404", resp.StatusCode)
	}
	if resp, _ := e.get(t, "/batches/b99999/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch events: %d, want 404", resp.StatusCode)
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "submitted"); got != 0 {
		t.Errorf("rejected batches leaked submissions: submitted = %d", got)
	}
	if got := metricInt(t, doc, "batches"); got != 0 {
		t.Errorf("rejected batches counted: batches = %d", got)
	}
}

// The metrics sum invariants must hold across the batch path
// interleaved with plain submissions, cache hits, and portfolio
// escalations. Run under -race in CI.
func TestBatchMetricsInvariantUnderChurn(t *testing.T) {
	e := newTestServer(t, Config{Workers: 4, QueueCap: 32})

	br1 := e.submitBatch(t, BatchRequest{
		Policy: []string{"FD", "XICI"},
		Slice:  BudgetSpec{NodeLimit: 64},
		Jobs: []BatchEntry{
			{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3}},
			{SubmitRequest: SubmitRequest{Builtin: "link", Size: 1, Bug: true}},
		},
	})
	single := e.submit(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"})
	br2 := e.submitBatch(t, BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Builtin: "fsm/door", Engine: "XICI"}},
		{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
	}})

	e.waitBatchDone(t, br1.ID)
	e.waitBatchDone(t, br2.ID)
	e.waitDone(t, single)

	// A duplicate of the single job: answered from the cache, still a
	// completed submission.
	resp, data := e.post(t, SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", resp.StatusCode, data)
	}

	doc := e.metricsDoc(t)
	submitted := metricInt(t, doc, "submitted")
	queued := metricInt(t, doc, "queued")
	running := metricInt(t, doc, "running")
	completed := metricInt(t, doc, "completed")
	errs := metricInt(t, doc, "errors")
	if submitted != 6 {
		t.Errorf("submitted = %d, want 6 (4 batch members + 2 singles)", submitted)
	}
	if submitted != queued+running+completed+errs {
		t.Errorf("submitted (%d) != queued+running+completed+errors (%d+%d+%d+%d)",
			submitted, queued, running, completed, errs)
	}
	verified := metricInt(t, doc, "verified")
	violated := metricInt(t, doc, "violated")
	exhausted := metricInt(t, doc, "exhausted")
	if verified+violated+exhausted != completed {
		t.Errorf("outcomes %d+%d+%d don't sum to completed %d", verified, violated, exhausted, completed)
	}
	engines, ok := doc["engines"].(map[string]any)
	if !ok {
		t.Fatalf("engines metric missing: %v", doc["engines"])
	}
	perEngine := 0
	for _, v := range engines {
		perEngine += int(v.(float64))
	}
	if perEngine != completed {
		t.Errorf("per-engine totals sum to %d, want completed %d", perEngine, completed)
	}
	batches := metricInt(t, doc, "batches")
	attempts := metricInt(t, doc, "attempts")
	escalations := metricInt(t, doc, "escalations")
	if batches != 2 {
		t.Errorf("batches = %d, want 2", batches)
	}
	// The cache-hit duplicate completed without an attempt; everything
	// else that ran counts at least one.
	if attempts < completed-1 {
		t.Errorf("attempts = %d, completed = %d", attempts, completed)
	}
	if escalations > attempts {
		t.Errorf("escalations %d > attempts %d", escalations, attempts)
	}
}

// A drain mid-batch still seals the batch: every member terminal, the
// batch state done, and the multiplexed stream ending with the batch
// done line — nothing lost.
func TestBatchDrainSealsStream(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	br := e.submitBatch(t, BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Model: counterModel(18), Name: "counter", Engine: "Fwd"}},
		{SubmitRequest: SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}},
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	e.srv.Shutdown(ctx)

	bst := e.waitBatchDone(t, br.ID)
	if bst.Done != 2 {
		t.Fatalf("batch after drain: %+v", bst)
	}
	resp, data := e.get(t, "/batches/"+br.ID+"/events?follow=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch events: %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	var last map[string]any
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last["event"] != "done" || last["state"] != BatchDone {
		t.Fatalf("last stream line after drain %v, want the batch done marker", last)
	}
}

// DELETE /batches/{id} cancels every member in one stroke.
func TestBatchCancel(t *testing.T) {
	e := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	br := e.submitBatch(t, BatchRequest{Jobs: []BatchEntry{
		{SubmitRequest: SubmitRequest{Model: counterModel(18), Name: "c1", Engine: "Fwd"}},
		{SubmitRequest: SubmitRequest{Model: counterModel(17), Name: "c2", Engine: "Fwd"}},
	}})
	// Let the first member start.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, data := e.get(t, "/jobs/"+br.Jobs[0])
		var st JobStatus
		json.Unmarshal(data, &st)
		if st.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest("DELETE", e.ts.URL+"/batches/"+br.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	bst := e.waitBatchDone(t, br.ID)
	if bst.Exhausted != 2 {
		t.Fatalf("canceled batch tally: %+v", bst)
	}
	for _, id := range br.Jobs {
		st := e.waitDone(t, id)
		if st.Result == nil || st.Result.Cause != "canceled" {
			t.Fatalf("member %s after batch cancel: %+v", id, st.Result)
		}
	}
}

// The regression test for the swallowed Trace.Format error: a render
// failure must surface in the trace text, not finalize a violated
// verdict with a silently empty trace. Validate and Format check
// against different managers here — the problem's own machine passes
// validation while the render manager declares more variables than the
// trace's assignment vectors cover.
func TestTraceRenderErrorSurfaces(t *testing.T) {
	m := bdd.New()
	p := models.NewLink(m, models.LinkConfig{DataBits: 1, Bug: true})
	res := verify.Run(p, verify.Backward, verify.Options{WantTrace: true})
	if res.Outcome != verify.Violated || res.Trace == nil {
		t.Fatalf("bugged link under Bkwd: %v, trace %v", res.Outcome, res.Trace)
	}

	// Happy path: the same manager renders the witness.
	if got := renderTrace(res, m, p); got == "" || strings.Contains(got, "failed") {
		t.Fatalf("healthy render: %q", got)
	}

	// A manager with more variables than the captured assignments:
	// Format must error, and the error must surface in the trace text.
	m2 := bdd.New()
	m2.NewVars("pad", m.NumVars()+1)
	got := renderTrace(res, m2, p)
	if !strings.Contains(got, "trace render failed") {
		t.Fatalf("render error was swallowed: %q", got)
	}
}

// The cache key is over resolved forms, not raw wire fields: wire
// variants that resolve to byte-identical work share one entry.
func TestCacheKeyNormalization(t *testing.T) {
	e := newTestServer(t, Config{Workers: 2, MaxNodeLimit: 1 << 20})
	base := SubmitRequest{Builtin: "fifo", Size: 3, Engine: "XICI"}

	first := e.submit(t, base)
	if st := e.waitDone(t, first); st.Result == nil || st.Result.Outcome != verify.Verified.String() {
		t.Fatalf("seed run: %+v", st.Result)
	}

	variants := []SubmitRequest{
		func() SubmitRequest { r := base; r.Options.Termination = "exact"; return r }(), // "" resolves to exact
		func() SubmitRequest { r := base; r.Budget.NodeLimit = -1; return r }(),         // unlimited clamps to the max
		func() SubmitRequest { r := base; r.Budget.NodeLimit = 1 << 20; return r }(),    // the max, asked explicitly
	}
	for i, v := range variants {
		resp, data := e.post(t, v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: %d %s", i, resp.StatusCode, data)
		}
		var sr SubmitResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if !sr.Cached {
			t.Errorf("variant %d missed the cache despite resolving to identical work", i)
		}
	}

	e.srv.mu.Lock()
	entries := e.srv.cache.len()
	e.srv.mu.Unlock()
	if entries != 1 {
		t.Errorf("cache holds %d entries for one piece of work, want 1", entries)
	}
	doc := e.metricsDoc(t)
	if got := metricInt(t, doc, "cache_hits"); got != len(variants) {
		t.Errorf("cache_hits = %d, want %d", got, len(variants))
	}
}
