// Package server implements icid, the networked verification service:
// an HTTP/JSON API that accepts verification jobs (textual models in
// the internal/lang wire format or named built-ins), queues them on a
// bounded queue, schedules them across a par.Serve worker pool — one
// fresh BDD manager per job, the job's resource.Budget joined to the
// daemon lifecycle and (for synchronous submissions) the client's
// request context — and streams per-job progress as NDJSON by adapting
// the verify.Observer to a network sink. Completed deterministic
// results live in a content-addressed cache keyed by the canonical
// model text, engine, options, and budget.
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id}, DELETE /jobs/{id},
// GET /jobs/{id}/events (NDJSON stream), POST /batches, GET /batches,
// GET /batches/{id}, DELETE /batches/{id}, GET /batches/{id}/events
// (multiplexed NDJSON stream), GET /models, GET /healthz, GET /metrics.
//
// A batch admits many members atomically under one shared resource
// pool and an optional portfolio scheduling policy: an engine ladder
// run cheapest-first, each non-final rung under a small slice budget,
// escalating on the budget-exhaustion causes and never on
// cancellation.
// See docs/api.md for the wire reference and DESIGN.md §11 for the
// architecture.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/store"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// Config sizes the daemon. The zero value is usable: GOMAXPROCS
// workers, a 64-deep queue, a 128-entry result cache, unbounded
// budgets.
type Config struct {
	// Workers is the scheduler width (<= 0 selects GOMAXPROCS). Each
	// worker runs one job at a time on its own BDD manager.
	Workers int

	// QueueCap bounds the number of jobs waiting to run; submissions
	// past it are rejected with 503 (0 = 64).
	QueueCap int

	// CacheCap bounds the result cache entries (0 = 128, < 0 disables).
	CacheCap int

	// JobHistory bounds retained terminal jobs; the oldest are evicted
	// once exceeded so the daemon's memory is bounded under sustained
	// traffic (0 = 1024).
	JobHistory int

	// DefaultBudget fills budget fields a submission leaves at zero.
	DefaultBudget resource.Budget

	// MaxNodeLimit and MaxTimeout clamp every job's budget server-side;
	// 0 means no clamp. When set, a request with no (or an unlimited)
	// bound gets the maximum instead of running unbounded.
	MaxNodeLimit int
	MaxTimeout   time.Duration

	// Store is the persistent result tier beneath the in-memory cache
	// (nil = memory only). The server reads and writes it during
	// operation; the caller owns Open and the final Close/flush.
	Store *store.Store

	// Cluster enables consistent-hash job routing (nil = standalone).
	// The caller owns Start/Stop of its health-probe loop.
	Cluster *cluster.Cluster

	// Version is the build identity /healthz reports ("" = "dev").
	Version string
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 128
	}
	if cfg.JobHistory == 0 {
		cfg.JobHistory = 1024
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	return cfg
}

// Server is the verification service. Create with New, expose with
// Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	met     *metrics
	store   *store.Store     // persistent result tier, nil = memory only
	cluster *cluster.Cluster // consistent-hash routing, nil = standalone
	forward *http.Client     // proxies forwarded submissions (request-context bounded)

	baseCtx    context.Context         // parent of every job lifecycle context
	baseCancel context.CancelCauseFunc // fired when the drain deadline passes

	// submitMu serializes channel sends against the drain's close: a
	// submission holds the read side while it checks accepting and
	// enqueues, Shutdown holds the write side while it flips accepting
	// and closes the channel, so a send on a closed channel is
	// impossible.
	submitMu  sync.RWMutex
	accepting atomic.Bool
	tasks     chan *job
	closeOnce sync.Once
	schedDone chan struct{}

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for history eviction
	seq     int
	batches map[string]*batch
	border  []string // batch submission order, for history eviction
	bseq    int
	cache   *resultCache
	started time.Time
}

// New creates a Server and starts its scheduler workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		met:        newMetrics(),
		store:      cfg.Store,
		cluster:    cfg.Cluster,
		forward:    &http.Client{},
		baseCtx:    ctx,
		baseCancel: cancel,
		tasks:      make(chan *job, cfg.QueueCap),
		schedDone:  make(chan struct{}),
		jobs:       make(map[string]*job),
		batches:    make(map[string]*batch),
		cache:      newResultCache(cfg.CacheCap),
		started:    time.Now(),
	}
	s.accepting.Store(true)
	if s.store != nil {
		st := s.store
		s.met.top.Set("store", expvar.Func(func() any { return st.Stats() }))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /batches", s.handleBatchList)
	mux.HandleFunc("GET /batches/{id}", s.handleBatchStatus)
	mux.HandleFunc("DELETE /batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /batches/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.met.handler)
	s.mux = mux

	s.startScheduler()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: stop accepting submissions, let the
// workers finish the queued and in-flight jobs, and — once ctx expires
// — budget-cancel whatever is still running and wait for it to
// finalize. Every job reaches a terminal state with its final event
// line appended before Shutdown returns; the error reports whether the
// drain needed the cancellation deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.submitMu.Lock()
	s.accepting.Store(false)
	s.closeOnce.Do(func() { close(s.tasks) })
	s.submitMu.Unlock()
	select {
	case <-s.schedDone:
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel every job's lifecycle context. Runs
		// abort on their next budget check and finalize as exhausted /
		// canceled, so the workers still drain — now promptly.
		s.baseCancel(fmt.Errorf("icid: drain deadline passed: %w", context.Cause(ctx)))
		<-s.schedDone
		return ctx.Err()
	}
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool { return !s.accepting.Load() }

// Workers returns the scheduler width after defaulting.
func (s *Server) Workers() int { return s.cfg.Workers }

// --- handlers ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /jobs: validate, canonicalize, route to the
// owning cluster node (or execute locally), consult the two-tier
// result cache, then enqueue (async) or enqueue-and-wait (wait mode).
// The raw body is retained so a routed submission forwards verbatim —
// the peer re-normalizes the identical bytes and must agree on the
// routing key.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	identity, err := normalizeModel(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Routing happens after validation (a peer never sees a request this
	// node would have rejected) and is keyed on the canonical model
	// identity alone, so every engine/budget variant of one model lands
	// on the same node's caches.
	if s.routeRemote(w, r, identity, body, "/jobs") {
		return
	}
	if req.Engine == "" {
		req.Engine = string(verify.XICI)
	}
	meth, ok := verify.Resolve(req.Engine)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown engine %q (registered: %v)", req.Engine, verify.Registered())
		return
	}
	req.Engine = string(meth)
	opt, err := req.Options.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := req.Budget.budget(s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The cache key is over the *resolved* forms — canonical engine
	// name, parsed options, default-filled and clamped budget — so wire
	// variants that would do identical work share one entry.
	key := cacheKey(identity, req.Engine, opt, budget)
	j := newJob(req, []verify.Method{meth}, s.baseCtx)
	j.identity = identity
	j.opt = opt
	j.budget = budget
	if req.Wait {
		j.reqCtx = r.Context()
	}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictHistoryLocked()
	s.mu.Unlock()

	s.met.submitted.Add(1)

	if entry := s.lookupResult(key); entry != nil {
		s.met.completedJob(req.Engine, entry.result)
		j.finishCached(entry.result, entry.events)
		st := j.status()
		writeJSON(w, http.StatusOK, SubmitResponse{ID: j.id, Cached: true, Status: &st, Node: s.nodeName()})
		return
	}

	s.met.queued.Add(1)
	enqueued := false
	s.submitMu.RLock()
	if s.accepting.Load() {
		select {
		case s.tasks <- j:
			enqueued = true
		default:
		}
	}
	s.submitMu.RUnlock()
	if !enqueued {
		// Queue full: the job was never scheduled; take it back.
		s.met.queued.Add(-1)
		s.met.submitted.Add(-1)
		s.mu.Lock()
		delete(s.jobs, j.id)
		if n := len(s.order); n > 0 && s.order[n-1] == j.id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		j.cancel(fmt.Errorf("icid: queue full"))
		writeError(w, http.StatusServiceUnavailable, "queue full (%d jobs waiting) or draining", s.cfg.QueueCap)
		return
	}

	if !req.Wait {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, Node: s.nodeName()})
		return
	}
	// Wait mode: the response is the final status. The job's budget is
	// joined to this request's context, so a disconnect here cancels
	// the run server-side; waiting on j.done alone is enough.
	<-j.done
	st := j.status()
	writeJSON(w, http.StatusOK, SubmitResponse{ID: j.id, Status: &st, Node: s.nodeName()})
}

// evictHistoryLocked drops the oldest terminal jobs past JobHistory.
func (s *Server) evictHistoryLocked() {
	excess := len(s.order) - s.cfg.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleList is GET /jobs: every retained job's status, id-ordered.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancel is DELETE /jobs/{id}: cancel the job's lifecycle
// context. A queued job finalizes as canceled when a worker pops it; a
// running job aborts at its next budget check.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.cancel(fmt.Errorf("icid: canceled via DELETE /jobs/%s", j.id))
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents is GET /jobs/{id}/events: the job's NDJSON event stream.
// By default it follows the live run until the job's terminal line;
// ?follow=0 dumps the buffer so far and closes. The final "done" line
// is appended before the job's done channel closes, so a client that
// reads to EOF has seen the job's complete history.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	i := 0
	for {
		lines, changed, final := j.snapshotFrom(i)
		for _, line := range lines {
			w.Write(line)
			w.Write([]byte("\n"))
		}
		i += len(lines)
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if final || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleModels is GET /models: the zoo registry — every builtin a
// submission may name, with its parameter defaults and the sizes its
// family is benchmarked at.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	names := zoo.Names()
	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		e, ok := zoo.Get(name)
		if !ok {
			continue
		}
		sizes := make([]map[string]int, len(e.Sizes))
		for i, sz := range e.Sizes {
			sizes[i] = map[string]int(sz)
		}
		out = append(out, ModelInfo{
			Name:     e.Name,
			Desc:     e.Desc,
			Defaults: map[string]int(e.Defaults),
			Sizes:    sizes,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is GET /healthz: liveness plus a small amount of
// introspection (drain state, queue depth, registered engines,
// builtin models, build version, persistence and cluster identity).
// The cluster health-probe loop keys off the "status" field: "ok"
// means routable, anything else (including "draining") means peers
// should route around this node.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	retained := len(s.jobs)
	retainedBatches := len(s.batches)
	cached := s.cache.len()
	s.mu.Unlock()
	engines := make([]string, 0)
	for _, m := range verify.Registered() {
		engines = append(engines, string(m))
	}
	doc := map[string]any{
		"status":           map[bool]string{true: "draining", false: "ok"}[s.Draining()],
		"version":          s.cfg.Version,
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"workers":          s.cfg.Workers,
		"queue_capacity":   s.cfg.QueueCap,
		"jobs_retained":    retained,
		"batches_retained": retainedBatches,
		"results_cached":   cached,
		"engines":          engines,
		"builtins":         Builtins(),
	}
	if s.store != nil {
		doc["store_path"] = s.store.Dir()
		doc["store_entries"] = s.store.Len()
	}
	if s.cluster != nil {
		doc["cluster_role"] = "member"
		doc["cluster_self"] = s.cluster.Self()
	} else {
		doc["cluster_role"] = "standalone"
	}
	writeJSON(w, http.StatusOK, doc)
}
