// Package store implements icid's persistent content-addressed proof
// store: the durable tier beneath the in-memory result LRU. Verified
// results are cheap to characterize canonically — the whole premise of
// the implicitly conjoined representation is that a submission's
// identity is its canonical text plus the resolved run configuration —
// so a finished verdict, together with the engine-event lines a live
// run would have streamed, is written once and served forever, across
// restarts and (via internal/cluster routing) across nodes.
//
// On-disk layout: numbered append-only segment files ("00000001.seg",
// ...) of framed records. Each record is
//
//	magic "IcPr" | keyLen u16 | payloadLen u32 | key | payload | crc32
//
// with the CRC over everything between the magic and the checksum, so
// a torn write, a truncated tail, or a flipped bit is detected on the
// next open (and again on every Get). Startup recovery scans every
// segment: a record that fails its checksum is quarantined — dropped
// from the index, its bytes copied (best effort) under quarantine/,
// and the scan resynchronizes on the next magic marker so one bad
// record does not take the rest of its segment down; a truncated tail
// is quarantined and the file truncated back to the last whole record
// so future appends start clean. The newest record for a key wins, so
// rewriting a recomputed entry is a plain append.
//
// Compaction is size-bounded: once the segment files exceed MaxBytes,
// the newest live entries that fit in three quarters of the budget are
// rewritten into a fresh segment — written to a temp file, fsynced,
// and renamed into place before the old segments are deleted, so a
// crash mid-compaction leaves either the old store or the new one,
// never a half state.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

var magic = []byte("IcPr")

const (
	headerLen  = 4 + 2 + 4 // magic + keyLen + payloadLen
	trailerLen = 4         // crc32
	maxKeyLen  = 4096
	maxPayload = 1 << 28 // 256 MiB per entry is already absurd
)

// Config sizes the store. The zero value is usable: 4 MiB segments,
// no total-size bound, fsync only on Sync/Close.
type Config struct {
	// SegmentBytes rolls the active segment once it grows past this
	// (0 = 4 MiB). Recovery reads whole segments into memory, so keep
	// it modest.
	SegmentBytes int64

	// MaxBytes bounds the on-disk footprint: a Put that pushes the
	// segment files past it triggers a compaction that keeps the
	// newest live entries fitting in 3/4 of the budget (0 = never
	// compact).
	MaxBytes int64

	// SyncEvery fsyncs the active segment every n Puts (0 = only on
	// Sync and Close). Crash safety never depends on it — the per-entry
	// checksums make a torn tail detectable and recoverable — it only
	// bounds how many recent entries a power loss can cost.
	SyncEvery int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	return c
}

// Recovery reports what opening the store found.
type Recovery struct {
	Entries         int   // live entries indexed
	Segments        int   // segment files scanned
	Quarantined     int   // corrupt spans dropped (bad checksum, torn frame)
	QuarantinedByte int64 // bytes those spans covered
	TruncatedTail   bool  // a torn tail was cut back to the last whole record
	Bytes           int64 // on-disk bytes after recovery
}

// Stats is a point-in-time snapshot, served under /metrics.
type Stats struct {
	Entries     int   `json:"entries"`
	Segments    int   `json:"segments"`
	Bytes       int64 `json:"bytes"`
	LiveBytes   int64 `json:"live_bytes"`
	Puts        int64 `json:"puts"`
	Gets        int64 `json:"gets"`
	GetMisses   int64 `json:"get_misses"`
	Quarantined int64 `json:"quarantined"` // recovery spans + read-time checksum failures
	Compactions int64 `json:"compactions"`
}

type entryLoc struct {
	seg int   // segment number
	off int64 // record start offset
	n   int   // full record length
	seq int64 // global append order; larger = newer
	len int   // payload length (for live-byte accounting)
}

// Store is the persistent content-addressed result store. All methods
// are safe for concurrent use.
type Store struct {
	dir string
	cfg Config

	mu       sync.RWMutex
	index    map[string]entryLoc
	files    map[int]*os.File // open segment handles, active included
	segs     []int            // sorted segment numbers
	active   int              // active (append) segment number
	activeSz int64
	total    int64 // on-disk bytes across all segments
	live     int64 // bytes of the newest record per key
	seq      int64
	unsynced int
	closed   bool

	recovery Recovery

	puts, gets, misses, quarantined, compactions int64
}

// Open opens (creating if necessary) the store rooted at dir and runs
// recovery over every segment found there.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		cfg:   cfg,
		index: make(map[string]entryLoc),
		files: make(map[int]*os.File),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Start a fresh active segment above everything recovered, so
	// recovery artifacts (a truncated tail) never interleave with new
	// appends mid-file... unless the last segment is clean and small,
	// in which case appending to it is fine and avoids file churn.
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		if sz := s.segSize(last); sz < cfg.SegmentBytes {
			s.active = last
			s.activeSz = sz
		}
	}
	if s.active == 0 {
		if err := s.rollLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open found on disk.
func (s *Store) Recovery() Recovery { return s.recovery }

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:     len(s.index),
		Segments:    len(s.segs),
		Bytes:       s.total,
		LiveBytes:   s.live,
		Puts:        s.puts,
		Gets:        s.gets,
		GetMisses:   s.misses,
		Quarantined: s.quarantined,
		Compactions: s.compactions,
	}
}

// Get returns the payload stored under key. The checksum is verified
// on every read: an entry that rotted on disk since recovery is
// quarantined (dropped from the index) and reported as a miss, so the
// caller falls through to a fresh computation and rewrites it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	loc, ok := s.index[key]
	var f *os.File
	if ok {
		f = s.files[loc.seg]
	}
	s.mu.RUnlock()
	if !ok || f == nil {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		s.quarantine(key, loc)
		return nil, false
	}
	gotKey, payload, _, err := parseRecord(buf)
	if err != nil || gotKey != key {
		s.quarantine(key, loc)
		return nil, false
	}
	s.mu.Lock()
	s.gets++
	s.mu.Unlock()
	return payload, true
}

// quarantine drops a read-time-corrupt entry from the index.
func (s *Store) quarantine(key string, loc entryLoc) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == loc {
		delete(s.index, key)
		s.live -= int64(loc.len)
	}
	s.quarantined++
	s.misses++
	s.mu.Unlock()
}

// Put appends (key, payload) to the active segment. A later Put for
// the same key shadows the earlier one; the dead bytes are reclaimed
// by the next compaction.
func (s *Store) Put(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload %d bytes exceeds the %d limit", len(payload), maxPayload)
	}
	rec := appendRecord(nil, key, payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.activeSz >= s.cfg.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
	}
	f := s.files[s.active]
	off := s.activeSz
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.activeSz += int64(len(rec))
	s.total += int64(len(rec))
	s.seq++
	if old, ok := s.index[key]; ok {
		s.live -= int64(old.len)
	}
	s.index[key] = entryLoc{seg: s.active, off: off, n: len(rec), seq: s.seq, len: len(payload)}
	s.live += int64(len(payload))
	s.puts++
	s.unsynced++
	if s.cfg.SyncEvery > 0 && s.unsynced >= s.cfg.SyncEvery {
		f.Sync()
		s.unsynced = 0
	}
	if s.cfg.MaxBytes > 0 && s.total > s.cfg.MaxBytes {
		return s.compactLocked()
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if f := s.files[s.active]; f != nil {
		s.unsynced = 0
		return f.Sync()
	}
	return nil
}

// Compact rewrites the newest live entries into a fresh segment and
// deletes the old ones. With a MaxBytes bound, entries are dropped
// oldest-first until the survivors fit in 3/4 of the budget; without
// one, every live entry survives (dead shadowed bytes are reclaimed).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	// Order live entries oldest → newest, then pick survivors from the
	// newest end while they fit the byte budget.
	type kv struct {
		key string
		loc entryLoc
	}
	entries := make([]kv, 0, len(s.index))
	for k, loc := range s.index {
		entries = append(entries, kv{k, loc})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].loc.seq < entries[j].loc.seq })
	budget := int64(-1)
	if s.cfg.MaxBytes > 0 {
		budget = s.cfg.MaxBytes * 3 / 4
	}
	first := 0
	if budget >= 0 {
		var kept int64
		first = len(entries)
		for i := len(entries) - 1; i >= 0; i-- {
			n := int64(entries[i].loc.n)
			if kept+n > budget {
				break
			}
			kept += n
			first = i
		}
	}
	survivors := entries[first:]

	// Write the survivors into one fresh segment via temp-file+rename.
	newSeg := s.active + 1
	tmpPath := filepath.Join(s.dir, fmt.Sprintf("%08d.seg.tmp", newSeg))
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	newIndex := make(map[string]entryLoc, len(survivors))
	var off, live int64
	var buf, rec []byte
	for _, e := range survivors {
		old := s.files[e.loc.seg]
		if cap(buf) < e.loc.n {
			buf = make([]byte, e.loc.n)
		}
		b := buf[:e.loc.n]
		if _, err := old.ReadAt(b, e.loc.off); err != nil {
			continue // unreadable during compaction: drop it
		}
		if _, payload, _, err := parseRecord(b); err != nil {
			continue
		} else {
			rec = b
			newIndex[e.key] = entryLoc{seg: newSeg, off: off, n: len(rec), seq: e.loc.seq, len: len(payload)}
			live += int64(len(payload))
		}
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	finalPath := s.segPath(newSeg)
	if err := os.Rename(tmpPath, finalPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}

	// Swap: the compacted segment replaces everything older.
	for _, n := range s.segs {
		if f := s.files[n]; f != nil {
			f.Close()
		}
		delete(s.files, n)
		os.Remove(s.segPath(n))
	}
	s.files[newSeg] = tmp
	s.segs = []int{newSeg}
	s.index = newIndex
	s.total = off
	s.live = live
	s.active = newSeg
	s.activeSz = off
	s.unsynced = 0
	s.compactions++
	return nil
}

// Close flushes the active segment and closes every handle. It is the
// daemon's final store flush: call it after the job drain, so the last
// finished verdicts are on disk before exit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked()
	for _, f := range s.files {
		f.Close()
	}
	s.files = map[int]*os.File{}
	s.closed = true
	return err
}

// --- segments ----------------------------------------------------------

func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.seg", n))
}

func (s *Store) segSize(n int) int64 {
	if f := s.files[n]; f != nil {
		if fi, err := f.Stat(); err == nil {
			return fi.Size()
		}
	}
	return 0
}

// rollLocked opens the next active segment.
func (s *Store) rollLocked() error {
	if f := s.files[s.active]; f != nil {
		f.Sync()
	}
	next := s.active + 1
	if n := len(s.segs); n > 0 && s.segs[n-1] >= next {
		next = s.segs[n-1] + 1
	}
	f, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: segment: %w", err)
	}
	s.files[next] = f
	s.segs = append(s.segs, next)
	s.active = next
	s.activeSz = 0
	return nil
}

// --- recovery ----------------------------------------------------------

// recover scans every segment file, indexing whole records and
// quarantining corrupt spans.
func (s *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Leftover temp files from an interrupted compaction are garbage by
	// construction (the rename never landed).
	if tmps, _ := filepath.Glob(filepath.Join(s.dir, "*.seg.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	var nums []int
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".seg")
		var n int
		if _, err := fmt.Sscanf(base, "%d", &n); err == nil && n > 0 {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	for _, n := range nums {
		if err := s.recoverSegment(n); err != nil {
			return err
		}
	}
	s.recovery.Entries = len(s.index)
	s.recovery.Segments = len(s.segs)
	s.recovery.Bytes = s.total
	s.quarantined = int64(s.recovery.Quarantined)
	return nil
}

// recoverSegment scans one segment. Scan state machine: parse a record
// at the cursor; on success index it and advance; on a framing or
// checksum failure, quarantine the span and resynchronize at the next
// magic marker; on a genuinely truncated tail (no later magic to
// resync on), quarantine the tail and truncate the file back to the
// last whole record.
func (s *Store) recoverSegment(n int) error {
	f, err := os.OpenFile(s.segPath(n), os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: segment %d: %w", n, err)
	}
	data, err := os.ReadFile(s.segPath(n))
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment %d: %w", n, err)
	}

	var badSpans [][2]int64 // [start, end) offsets of quarantined bytes
	inBad := false
	badStart := int64(0)
	markBad := func(off int64) {
		if !inBad {
			inBad = true
			badStart = off
			s.recovery.Quarantined++
		}
	}
	endBad := func(off int64) {
		if inBad {
			inBad = false
			badSpans = append(badSpans, [2]int64{badStart, off})
			s.recovery.QuarantinedByte += off - badStart
		}
	}

	off := int64(0)
	truncateAt := int64(-1)
	for off < int64(len(data)) {
		i := bytes.Index(data[off:], magic)
		if i < 0 {
			// No further record can start here. If we were mid-span,
			// extend it; either way this is a tail without structure.
			markBad(off)
			truncateAt = closestRecordEnd(badStart, off, inBad)
			endBad(int64(len(data)))
			off = int64(len(data))
			break
		}
		if i > 0 {
			markBad(off)
			off += int64(i)
		}
		key, payload, recLen, perr := parseRecordAt(data, off)
		switch perr {
		case nil:
			endBad(off)
			s.seq++
			if old, ok := s.index[key]; ok {
				s.live -= int64(old.len)
			}
			s.index[key] = entryLoc{seg: n, off: off, n: recLen, seq: s.seq, len: len(payload)}
			s.live += int64(len(payload))
			off += int64(recLen)
		case errTruncated:
			// Torn only if no later magic exists to resync on;
			// otherwise it is a corrupt record mid-file.
			if bytes.Index(data[off+int64(len(magic)):], magic) < 0 {
				markBad(off)
				truncateAt = off
				if badStart < off {
					truncateAt = badStart
				}
				endBad(int64(len(data)))
				off = int64(len(data))
			} else {
				markBad(off)
				off += int64(len(magic))
			}
		default:
			markBad(off)
			off += int64(len(magic))
		}
	}
	endBad(int64(len(data)))

	// Quarantine the corrupt bytes (best effort — purely forensic).
	if len(badSpans) > 0 {
		qdir := filepath.Join(s.dir, "quarantine")
		if err := os.MkdirAll(qdir, 0o755); err == nil {
			var qb bytes.Buffer
			for _, sp := range badSpans {
				qb.Write(data[sp[0]:sp[1]])
			}
			os.WriteFile(filepath.Join(qdir, fmt.Sprintf("%08d.bad", n)), qb.Bytes(), 0o644)
		}
	}

	size := int64(len(data))
	if truncateAt >= 0 && truncateAt < size {
		if err := f.Truncate(truncateAt); err == nil {
			size = truncateAt
			s.recovery.TruncatedTail = true
		}
	}
	s.files[n] = f
	s.segs = append(s.segs, n)
	s.total += size
	return nil
}

// closestRecordEnd picks where a structureless tail should be cut:
// the start of the bad span if one was open, else the current offset.
func closestRecordEnd(badStart, off int64, inBad bool) int64 {
	if inBad && badStart < off {
		return badStart
	}
	return off
}

// --- record framing ----------------------------------------------------

// appendRecord frames (key, payload) onto buf.
func appendRecord(buf []byte, key string, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start+len(magic):])
	return binary.BigEndian.AppendUint32(buf, crc)
}

var errTruncated = fmt.Errorf("store: truncated record")

// parseRecord parses one record at the head of b. It returns the key,
// the payload (aliasing b), and the full record length.
func parseRecord(b []byte) (string, []byte, int, error) {
	return parseRecordAt(b, 0)
}

func parseRecordAt(b []byte, off int64) (string, []byte, int, error) {
	rest := b[off:]
	if len(rest) < headerLen {
		return "", nil, 0, errTruncated
	}
	if !bytes.Equal(rest[:len(magic)], magic) {
		return "", nil, 0, fmt.Errorf("store: bad magic")
	}
	keyLen := int(binary.BigEndian.Uint16(rest[4:6]))
	payLen := int(binary.BigEndian.Uint32(rest[6:10]))
	if keyLen == 0 || keyLen > maxKeyLen || payLen > maxPayload {
		return "", nil, 0, fmt.Errorf("store: implausible frame (key %d, payload %d)", keyLen, payLen)
	}
	total := headerLen + keyLen + payLen + trailerLen
	if len(rest) < total {
		return "", nil, 0, errTruncated
	}
	want := binary.BigEndian.Uint32(rest[total-trailerLen : total])
	if crc32.ChecksumIEEE(rest[len(magic):total-trailerLen]) != want {
		return "", nil, 0, fmt.Errorf("store: checksum mismatch")
	}
	key := string(rest[headerLen : headerLen+keyLen])
	payload := rest[headerLen+keyLen : headerLen+keyLen+payLen]
	return key, payload, total, nil
}
