package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, payload []byte) {
	t.Helper()
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func TestPutGetRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i*7)
		want[k] = v
		mustPut(t, s, k, v)
	}
	// Overwrite: newest wins.
	want["key-03"] = []byte("rewritten")
	mustPut(t, s, "key-03", want["key-03"])

	check := func(s *Store) {
		t.Helper()
		for k, v := range want {
			got, ok := s.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("Get(%q) = %q, %v; want %q", k, got, ok, v)
			}
		}
		if _, ok := s.Get("absent"); ok {
			t.Fatal("Get(absent) hit")
		}
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Config{})
	rec := s2.Recovery()
	if rec.Quarantined != 0 || rec.Entries != len(want) {
		t.Fatalf("clean reopen recovery: %+v", rec)
	}
	check(s2)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 64))
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation across segments, got %d", st.Segments)
	}
	s.Close()
	s2 := openT(t, dir, Config{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		if _, ok := s2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost across rotation+reopen", i)
		}
	}
}

func TestTruncatedTailQuarantinedAndRewritable(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	mustPut(t, s, "alpha", []byte("alpha-payload"))
	mustPut(t, s, "victim", bytes.Repeat([]byte("v"), 200))
	s.Close()

	// Cut the last record in half: a torn final write.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-100], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Config{})
	rec := s2.Recovery()
	if rec.Quarantined != 1 || !rec.TruncatedTail {
		t.Fatalf("recovery = %+v, want 1 quarantined span and a truncated tail", rec)
	}
	if _, ok := s2.Get("victim"); ok {
		t.Fatal("torn entry still served")
	}
	if got, ok := s2.Get("alpha"); !ok || string(got) != "alpha-payload" {
		t.Fatalf("intact entry lost: %q %v", got, ok)
	}
	// The tail was truncated back to the last whole record, so a
	// recomputed entry appends cleanly and survives another reopen.
	mustPut(t, s2, "victim", []byte("recomputed"))
	if got, ok := s2.Get("victim"); !ok || string(got) != "recomputed" {
		t.Fatalf("rewrite after truncation: %q %v", got, ok)
	}
	s2.Close()
	s3 := openT(t, dir, Config{})
	if rec := s3.Recovery(); rec.Quarantined != 0 {
		t.Fatalf("third open still sees corruption: %+v", rec)
	}
	if got, ok := s3.Get("victim"); !ok || string(got) != "recomputed" {
		t.Fatalf("rewritten entry lost: %q %v", got, ok)
	}
}

func TestBitFlipQuarantinedOthersSurvive(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	mustPut(t, s, "first", bytes.Repeat([]byte("a"), 100))
	mustPut(t, s, "second", bytes.Repeat([]byte("b"), 100))
	mustPut(t, s, "third", bytes.Repeat([]byte("c"), 100))
	s.Close()

	// Flip one payload byte in the middle record; its checksum fails,
	// the scan resynchronizes on the next magic, and the neighbors
	// survive.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	mid := bytes.Index(data, bytes.Repeat([]byte("b"), 50))
	if mid < 0 {
		t.Fatal("second record's payload not found")
	}
	data[mid] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Config{})
	rec := s2.Recovery()
	if rec.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (recovery: %+v)", rec.Quarantined, rec)
	}
	if rec.Entries != 2 {
		t.Fatalf("entries = %d, want the two intact neighbors", rec.Entries)
	}
	if _, ok := s2.Get("second"); ok {
		t.Fatal("bit-flipped entry still served")
	}
	for _, k := range []string{"first", "third"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("intact neighbor %q lost to the corrupt record", k)
		}
	}
	// The corrupt bytes were preserved for forensics.
	if qs, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.bad")); len(qs) != 1 {
		t.Fatalf("quarantine files: %v, want exactly one", qs)
	}
	// Recompute and rewrite the lost entry.
	mustPut(t, s2, "second", []byte("fresh"))
	if got, ok := s2.Get("second"); !ok || string(got) != "fresh" {
		t.Fatalf("rewrite: %q %v", got, ok)
	}
}

func TestReadTimeCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	mustPut(t, s, "rotting", bytes.Repeat([]byte("r"), 128))
	s.Sync()

	// Rot the byte on disk *after* recovery indexed it: Get must verify
	// the checksum, quarantine, and miss.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("rotting"); ok {
		t.Fatal("rotted entry served without checksum verification")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if _, ok := s.Get("rotting"); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestCompactionBoundsSizeKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	// Each record is ~1KiB framed; a 8KiB budget keeps ~6KiB (3/4).
	s := openT(t, dir, Config{SegmentBytes: 2048, MaxBytes: 8192})
	for i := 0; i < 40; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte('A' + i%26)}, 1024))
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ever triggered")
	}
	if st.Bytes > 8192+2048 {
		t.Fatalf("store bytes %d not bounded by budget", st.Bytes)
	}
	// The newest entries survive; the oldest were dropped.
	if _, ok := s.Get("k39"); !ok {
		t.Fatal("newest entry dropped by compaction")
	}
	if _, ok := s.Get("k00"); ok {
		t.Fatal("oldest entry survived a size-bounded compaction")
	}
	// Everything still consistent across a reopen.
	s.Close()
	s2 := openT(t, dir, Config{SegmentBytes: 2048, MaxBytes: 8192})
	if rec := s2.Recovery(); rec.Quarantined != 0 {
		t.Fatalf("post-compaction reopen: %+v", rec)
	}
	if _, ok := s2.Get("k39"); !ok {
		t.Fatal("newest entry lost across reopen")
	}
}

func TestCompactReclaimsShadowedBytes(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	for i := 0; i < 50; i++ {
		mustPut(t, s, "same-key", bytes.Repeat([]byte("s"), 512))
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Entries != 1 {
		t.Fatalf("entries = %d, want 1", after.Entries)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not reclaim: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	if got, ok := s.Get("same-key"); !ok || len(got) != 512 {
		t.Fatalf("entry lost in compaction: %v %v", len(got), ok)
	}
	// No stray temp files.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

func TestInterruptedCompactionTempIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	mustPut(t, s, "k", []byte("v"))
	s.Close()
	// Simulate a crash mid-compaction: a half-written temp segment.
	if err := os.WriteFile(filepath.Join(dir, "00000099.seg.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Config{})
	if rec := s2.Recovery(); rec.Quarantined != 0 {
		t.Fatalf("temp file treated as data: %+v", rec)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("entry lost: %q %v", got, ok)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp file not cleaned up: %v", tmps)
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	s.Close()
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// onlySegment returns the single non-empty segment file, failing the
// test when the layout is unexpected.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	var nonEmpty []string
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil && fi.Size() > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) != 1 {
		t.Fatalf("want exactly one non-empty segment, got %v", nonEmpty)
	}
	return nonEmpty[0]
}
