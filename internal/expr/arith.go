package expr

import "repro/internal/bdd"

// Additional word-level operators: shift-add multiplication and signed
// (two's complement) comparisons. Not needed by the paper's models but
// part of any credible word-level layer; multiplication in particular is
// the canonical BDD stress test (its middle output bits are exponential
// under every variable order).

// Mul returns a × b modulo 2^width (both operands the same width).
func Mul(a, b Word) Word {
	a.sameWidth(b, "Mul")
	m := a.M
	w := a.Width()
	acc := Const(m, 0, w)
	for i := 0; i < w; i++ {
		// acc += (b>>i & 1) ? (a << i) : 0
		shifted := Shl(a, i)
		addend := Mux(b.Bits[i], shifted, Const(m, 0, w))
		acc = Add(acc, addend)
	}
	return acc
}

// MulExpand returns the full 2×width-bit product.
func MulExpand(a, b Word) Word {
	a.sameWidth(b, "MulExpand")
	m := a.M
	w := a.Width()
	acc := Const(m, 0, 2*w)
	ax := a.Extend(2 * w)
	for i := 0; i < w; i++ {
		shifted := Shl(ax, i)
		addend := Mux(b.Bits[i], shifted, Const(m, 0, 2*w))
		acc = Add(acc, addend)
	}
	return acc
}

// SignBit returns the most significant (two's complement sign) bit.
func (w Word) SignBit() bdd.Ref { return w.Bits[w.Width()-1] }

// SLt returns the signed predicate a < b (two's complement).
func SLt(a, b Word) bdd.Ref {
	a.sameWidth(b, "SLt")
	m := a.M
	sa, sb := a.SignBit(), b.SignBit()
	// Different signs: a < b iff a negative. Same signs: unsigned order.
	diff := m.Xor(sa, sb)
	return m.ITE(diff, sa, Lt(a, b))
}

// SLe returns the signed predicate a <= b.
func SLe(a, b Word) bdd.Ref { return SLt(b, a).Not() }

// SGt returns the signed predicate a > b.
func SGt(a, b Word) bdd.Ref { return SLt(b, a) }

// SGe returns the signed predicate a >= b.
func SGe(a, b Word) bdd.Ref { return SLt(a, b).Not() }

// Neg returns the two's complement negation -a.
func Neg(a Word) Word {
	m := a.M
	nb := make([]bdd.Ref, a.Width())
	for i, bit := range a.Bits {
		nb[i] = bit.Not()
	}
	return Inc(Word{M: m, Bits: nb})
}

// Abs returns |a| interpreting a as two's complement (Abs of the minimum
// value wraps, as in hardware).
func Abs(a Word) Word {
	return Mux(a.SignBit(), Neg(a), a)
}

// Min and Max return the unsigned minimum / maximum of a and b.
func Min(a, b Word) Word { return Mux(Lt(a, b), a, b) }

// Max returns the unsigned maximum of a and b.
func Max(a, b Word) Word { return Mux(Lt(a, b), b, a) }
