package expr

import (
	"testing"
)

// signExtend interprets a w-bit value as two's complement.
func signExtend(v uint64, w int) int64 {
	if v&(1<<uint(w-1)) != 0 {
		return int64(v) - int64(1)<<uint(w)
	}
	return int64(v)
}

func TestMulExhaustive(t *testing.T) {
	const w = 4
	p := newPair(w)
	mask := uint64(1<<w - 1)
	prod := Mul(p.a, p.b)
	prodX := MulExpand(p.a, p.b)
	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			if got := prod.Value(env); got != (va*vb)&mask {
				t.Fatalf("Mul(%d,%d) = %d", va, vb, got)
			}
			if got := prodX.Value(env); got != va*vb {
				t.Fatalf("MulExpand(%d,%d) = %d", va, vb, got)
			}
		}
	}
	if prodX.Width() != 2*w {
		t.Fatalf("MulExpand width %d", prodX.Width())
	}
}

func TestSignedComparisonsExhaustive(t *testing.T) {
	const w = 4
	p := newPair(w)
	mask := uint64(1<<w - 1)
	slt, sle := SLt(p.a, p.b), SLe(p.a, p.b)
	sgt, sge := SGt(p.a, p.b), SGe(p.a, p.b)
	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			sa, sb := signExtend(va, w), signExtend(vb, w)
			checks := []struct {
				name string
				got  bool
				want bool
			}{
				{"SLt", p.m.Eval(slt, env), sa < sb},
				{"SLe", p.m.Eval(sle, env), sa <= sb},
				{"SGt", p.m.Eval(sgt, env), sa > sb},
				{"SGe", p.m.Eval(sge, env), sa >= sb},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Fatalf("%s(%d,%d) = %v", c.name, sa, sb, c.got)
				}
			}
		}
	}
}

func TestNegAbsMinMax(t *testing.T) {
	const w = 4
	p := newPair(w)
	mask := uint64(1<<w - 1)
	neg := Neg(p.a)
	abs := Abs(p.a)
	mn, mx := Min(p.a, p.b), Max(p.a, p.b)
	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			if got := neg.Value(env); got != (-va)&mask {
				t.Fatalf("Neg(%d) = %d", va, got)
			}
			sa := signExtend(va, w)
			wantAbs := sa
			if wantAbs < 0 {
				wantAbs = -wantAbs
			}
			if got := abs.Value(env); got != uint64(wantAbs)&mask {
				t.Fatalf("Abs(%d) = %d, want %d", sa, got, uint64(wantAbs)&mask)
			}
			wantMin, wantMax := va, vb
			if vb < va {
				wantMin, wantMax = vb, va
			}
			if mn.Value(env) != wantMin || mx.Value(env) != wantMax {
				t.Fatalf("Min/Max(%d,%d) = %d/%d", va, vb, mn.Value(env), mx.Value(env))
			}
		}
	}
}

// TestMulAlgebra: structural identities via canonical refs.
func TestMulAlgebra(t *testing.T) {
	const w = 5
	p := newPair(w)
	ab := Mul(p.a, p.b)
	ba := Mul(p.b, p.a)
	for i := 0; i < w; i++ {
		if ab.Bits[i] != ba.Bits[i] {
			t.Fatal("multiplication not commutative bitwise")
		}
	}
	// a * 1 == a; a * 0 == 0.
	one := Const(p.m, 1, w)
	zero := Const(p.m, 0, w)
	a1 := Mul(p.a, one)
	a0 := Mul(p.a, zero)
	for i := 0; i < w; i++ {
		if a1.Bits[i] != p.a.Bits[i] {
			t.Fatal("a*1 != a")
		}
		if a0.Bits[i] != zero.Bits[i] {
			t.Fatal("a*0 != 0")
		}
	}
	// Distributivity: a*(b+c) == a*b + a*c (mod 2^w), with c = a.
	bc := Add(p.b, p.a)
	lhs := Mul(p.a, bc)
	rhs := Add(Mul(p.a, p.b), Mul(p.a, p.a))
	for i := 0; i < w; i++ {
		if lhs.Bits[i] != rhs.Bits[i] {
			t.Fatal("distributivity failed")
		}
	}
}
