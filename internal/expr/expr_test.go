package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

// Harness: build words over fresh variables and exhaustively (or
// randomly) compare against uint64 arithmetic.

type wordPair struct {
	m    *bdd.Manager
	a, b Word
	av   []bdd.Var
	bv   []bdd.Var
}

func newPair(w int) wordPair {
	m := bdd.New()
	av := m.NewVars("a", w)
	bv := m.NewVars("b", w)
	return wordPair{m: m, a: FromVars(m, av), b: FromVars(m, bv), av: av, bv: bv}
}

// assign builds a total assignment realizing a and b values.
func (p wordPair) assign(va, vb uint64) []bool {
	out := make([]bool, p.m.NumVars())
	for i, v := range p.av {
		out[v] = va&(1<<uint(i)) != 0
	}
	for i, v := range p.bv {
		out[v] = vb&(1<<uint(i)) != 0
	}
	return out
}

func TestArithmeticExhaustive(t *testing.T) {
	const w = 4
	p := newPair(w)
	mask := uint64(1<<w - 1)

	sum := Add(p.a, p.b)
	sumX := AddExpand(p.a, p.b)
	diff := Sub(p.a, p.b)
	inc := Inc(p.a)
	dec := Dec(p.a)

	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			if got := sum.Value(env); got != (va+vb)&mask {
				t.Fatalf("Add(%d,%d) = %d", va, vb, got)
			}
			if got := sumX.Value(env); got != va+vb {
				t.Fatalf("AddExpand(%d,%d) = %d", va, vb, got)
			}
			if got := diff.Value(env); got != (va-vb)&mask {
				t.Fatalf("Sub(%d,%d) = %d", va, vb, got)
			}
			if got := inc.Value(env); got != (va+1)&mask {
				t.Fatalf("Inc(%d) = %d", va, got)
			}
			if got := dec.Value(env); got != (va-1)&mask {
				t.Fatalf("Dec(%d) = %d", va, got)
			}
		}
	}
}

func TestComparisonsExhaustive(t *testing.T) {
	const w = 4
	p := newPair(w)
	mask := uint64(1<<w - 1)

	eq, ne := Eq(p.a, p.b), Ne(p.a, p.b)
	lt, le := Lt(p.a, p.b), Le(p.a, p.b)
	gt, ge := Gt(p.a, p.b), Ge(p.a, p.b)

	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			checks := []struct {
				name string
				ref  bdd.Ref
				want bool
			}{
				{"Eq", eq, va == vb}, {"Ne", ne, va != vb},
				{"Lt", lt, va < vb}, {"Le", le, va <= vb},
				{"Gt", gt, va > vb}, {"Ge", ge, va >= vb},
			}
			for _, c := range checks {
				if got := p.m.Eval(c.ref, env); got != c.want {
					t.Fatalf("%s(%d,%d) = %v", c.name, va, vb, got)
				}
			}
		}
	}
}

func TestEqListConjunctionIsEq(t *testing.T) {
	p := newPair(5)
	list := EqList(p.a, p.b)
	if len(list) != 5 {
		t.Fatalf("EqList length %d", len(list))
	}
	if p.m.AndN(list...) != Eq(p.a, p.b) {
		t.Fatal("conjunction of EqList != Eq")
	}
}

func TestConstAndEqConst(t *testing.T) {
	m := bdd.New()
	vars := m.NewVars("x", 8)
	w := FromVars(m, vars)
	for _, v := range []uint64{0, 1, 128, 200, 255} {
		c := Const(m, v, 8)
		env := make([]bool, m.NumVars())
		if c.Value(env) != v {
			t.Fatalf("Const(%d) reads back %d", v, c.Value(env))
		}
		pred := EqConst(w, v)
		for i := range vars {
			env[vars[i]] = v&(1<<uint(i)) != 0
		}
		if !m.Eval(pred, env) {
			t.Fatalf("EqConst(%d) false at %d", v, v)
		}
		env[vars[0]] = !env[vars[0]]
		if m.Eval(pred, env) {
			t.Fatalf("EqConst(%d) true at wrong value", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized constant did not panic")
		}
	}()
	Const(m, 256, 8)
}

func TestLeConstTypedRange(t *testing.T) {
	// The FIFO model's type constraint: value <= 128 over 8 bits. The
	// paper's per-slot conjunct is ~9 nodes; ours should be in the same
	// small ballpark.
	m := bdd.New()
	vars := m.NewVars("x", 8)
	w := FromVars(m, vars)
	pred := LeConst(w, 128)
	env := make([]bool, m.NumVars())
	for v := uint64(0); v < 256; v++ {
		for i := range vars {
			env[vars[i]] = v&(1<<uint(i)) != 0
		}
		if got := m.Eval(pred, env); got != (v <= 128) {
			t.Fatalf("LeConst(128) at %d = %v", v, got)
		}
	}
	if s := m.Size(pred); s > 12 {
		t.Fatalf("type-constraint BDD unexpectedly large: %d nodes", s)
	}
}

func TestMuxShiftExtend(t *testing.T) {
	const w = 4
	p := newPair(w)
	m := p.m
	sel := m.NewVar("sel")
	mux := Mux(m.VarRef(sel), p.a, p.b)
	mask := uint64(1<<w - 1)

	for va := uint64(0); va <= mask; va++ {
		for vb := uint64(0); vb <= mask; vb++ {
			env := p.assign(va, vb)
			env[sel] = true
			if mux.Value(env) != va {
				t.Fatal("Mux(true) != a")
			}
			env[sel] = false
			if mux.Value(env) != vb {
				t.Fatal("Mux(false) != b")
			}
			for k := 0; k <= w; k++ {
				if got := Shr(p.a, k).Value(env); got != va>>uint(k) {
					t.Fatalf("Shr(%d,%d) = %d", va, k, got)
				}
				if got := Shl(p.a, k).Value(env); got != (va<<uint(k))&mask {
					t.Fatalf("Shl(%d,%d) = %d", va, k, got)
				}
			}
			if got := p.a.Extend(7).Value(env); got != va {
				t.Fatal("Extend changed value")
			}
			if got := p.a.Truncate(2).Value(env); got != va&3 {
				t.Fatal("Truncate wrong")
			}
			cat := p.a.Concat(p.b)
			if got := cat.Value(env); got != va|vb<<w {
				t.Fatal("Concat wrong")
			}
		}
	}
}

func TestPopCount(t *testing.T) {
	m := bdd.New()
	vars := m.NewVars("f", 7)
	flags := make([]bdd.Ref, len(vars))
	for i, v := range vars {
		flags[i] = m.VarRef(v)
	}
	pc := PopCount(m, flags)
	if pc.Width() != 3 {
		t.Fatalf("PopCount width = %d, want 3", pc.Width())
	}
	env := make([]bool, m.NumVars())
	for mask := 0; mask < 1<<7; mask++ {
		want := uint64(0)
		for i := range vars {
			set := mask&(1<<uint(i)) != 0
			env[vars[i]] = set
			if set {
				want++
			}
		}
		if got := pc.Value(env); got != want {
			t.Fatalf("PopCount(%07b) = %d, want %d", mask, got, want)
		}
	}
	// Empty flag list: the zero-width-plus-one constant 0.
	zero := PopCount(m, nil)
	if zero.Value(env) != 0 {
		t.Fatal("PopCount(nil) != 0")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	m := bdd.New()
	a := FromVars(m, m.NewVars("a", 3))
	b := FromVars(m, m.NewVars("b", 4))
	for name, f := range map[string]func(){
		"Add": func() { Add(a, b) },
		"Sub": func() { Sub(a, b) },
		"Eq":  func() { Eq(a, b) },
		"Lt":  func() { Lt(a, b) },
		"Mux": func() { Mux(bdd.One, a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched widths did not panic", name)
				}
			}()
			f()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Extend narrowing did not panic")
			}
		}()
		b.Extend(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Truncate widening did not panic")
			}
		}()
		a.Truncate(5)
	}()
}

// TestAdderAlgebraQuick drives algebraic identities through testing/quick
// at a width where exhaustive checking is too slow.
func TestAdderAlgebraQuick(t *testing.T) {
	const w = 8
	p := newPair(w)
	mask := uint64(1<<w - 1)
	sum := Add(p.a, p.b)
	sumBA := Add(p.b, p.a)
	diff := Sub(sum, p.b)

	// Structural identities hold as BDD equalities (canonical form).
	for i := 0; i < w; i++ {
		if sum.Bits[i] != sumBA.Bits[i] {
			t.Fatal("addition not commutative bitwise")
		}
		if diff.Bits[i] != p.a.Bits[i] {
			t.Fatal("(a+b)-b != a")
		}
	}

	prop := func(va, vb uint64) bool {
		va, vb = va&mask, vb&mask
		env := p.assign(va, vb)
		return sum.Value(env) == (va+vb)&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	// Random double-word chains: ((a+b)-a) == b pointwise.
	rng := rand.New(rand.NewSource(101))
	chain := Sub(Add(p.a, p.b), p.a)
	for i := 0; i < 50; i++ {
		env := p.assign(rng.Uint64()&mask, rng.Uint64()&mask)
		if chain.Value(env) != p.b.Value(env) {
			t.Fatal("(a+b)-a != b")
		}
	}
}
