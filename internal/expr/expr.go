// Package expr provides word-level (bit-vector) construction on top of
// BDDs: adders, comparators, multiplexers, shifters, and population
// counts. It plays the role of the Ever verifier's higher-level
// specification constructs (ref [18] of the paper): models are written in
// terms of words and the package lowers them to per-bit Boolean
// functions.
//
// A Word is little-endian: Bits[0] is the least significant bit. All
// binary operations require equal widths — widening is explicit via
// Extend, which keeps width bookkeeping visible in model code.
package expr

import (
	"fmt"

	"repro/internal/bdd"
)

// Word is a vector of Boolean functions denoting an unsigned integer,
// least-significant bit first.
type Word struct {
	M    *bdd.Manager
	Bits []bdd.Ref
}

// FromVars builds a word whose bits are the given variables (LSB first).
func FromVars(m *bdd.Manager, vars []bdd.Var) Word {
	bits := make([]bdd.Ref, len(vars))
	for i, v := range vars {
		bits[i] = m.VarRef(v)
	}
	return Word{M: m, Bits: bits}
}

// Const builds a width-bit constant word. It panics if the value does not
// fit, which in model-building code is always a bug worth failing fast on.
func Const(m *bdd.Manager, value uint64, width int) Word {
	if width < 64 && value>>uint(width) != 0 {
		panic(fmt.Sprintf("expr: constant %d does not fit in %d bits", value, width))
	}
	bits := make([]bdd.Ref, width)
	for i := range bits {
		if value&(1<<uint(i)) != 0 {
			bits[i] = bdd.One
		} else {
			bits[i] = bdd.Zero
		}
	}
	return Word{M: m, Bits: bits}
}

// Width returns the number of bits.
func (w Word) Width() int { return len(w.Bits) }

// Bit returns the i-th bit (LSB = 0).
func (w Word) Bit(i int) bdd.Ref { return w.Bits[i] }

// Value evaluates the word under a total assignment.
func (w Word) Value(assignment []bool) uint64 {
	var out uint64
	for i, b := range w.Bits {
		if w.M.Eval(b, assignment) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Extend zero-extends the word to the given width (identity if already
// that wide; panics on narrowing — use Truncate).
func (w Word) Extend(width int) Word {
	if width < w.Width() {
		panic("expr: Extend cannot narrow; use Truncate")
	}
	bits := append([]bdd.Ref(nil), w.Bits...)
	for len(bits) < width {
		bits = append(bits, bdd.Zero)
	}
	return Word{M: w.M, Bits: bits}
}

// Truncate keeps the low width bits.
func (w Word) Truncate(width int) Word {
	if width > w.Width() {
		panic("expr: Truncate cannot widen; use Extend")
	}
	return Word{M: w.M, Bits: append([]bdd.Ref(nil), w.Bits[:width]...)}
}

// Concat appends hi above w (w stays the low part).
func (w Word) Concat(hi Word) Word {
	bits := append([]bdd.Ref(nil), w.Bits...)
	bits = append(bits, hi.Bits...)
	return Word{M: w.M, Bits: bits}
}

func (w Word) sameWidth(o Word, op string) {
	if w.Width() != o.Width() {
		panic(fmt.Sprintf("expr: %s of %d-bit and %d-bit words", op, w.Width(), o.Width()))
	}
}

// AddCarry returns the width-preserving sum of a, b and the carry-in,
// plus the carry-out — a ripple-carry adder.
func AddCarry(a, b Word, cin bdd.Ref) (Word, bdd.Ref) {
	a.sameWidth(b, "AddCarry")
	m := a.M
	bits := make([]bdd.Ref, a.Width())
	carry := cin
	for i := range bits {
		x, y := a.Bits[i], b.Bits[i]
		bits[i] = m.Xor(m.Xor(x, y), carry)
		carry = m.Or(m.And(x, y), m.And(carry, m.Or(x, y)))
	}
	return Word{M: m, Bits: bits}, carry
}

// Add returns a + b modulo 2^width.
func Add(a, b Word) Word {
	s, _ := AddCarry(a, b, bdd.Zero)
	return s
}

// AddExpand returns a + b at full precision (width+1 bits).
func AddExpand(a, b Word) Word {
	s, cout := AddCarry(a, b, bdd.Zero)
	s.Bits = append(s.Bits, cout)
	return s
}

// Sub returns a - b modulo 2^width (two's complement).
func Sub(a, b Word) Word {
	a.sameWidth(b, "Sub")
	m := a.M
	nb := make([]bdd.Ref, b.Width())
	for i, bit := range b.Bits {
		nb[i] = bit.Not()
	}
	s, _ := AddCarry(a, Word{M: m, Bits: nb}, bdd.One)
	return s
}

// Inc returns a + 1 modulo 2^width.
func Inc(a Word) Word { return Add(a, Const(a.M, 1, a.Width())) }

// Dec returns a - 1 modulo 2^width.
func Dec(a Word) Word { return Sub(a, Const(a.M, 1, a.Width())) }

// Eq returns the predicate a == b.
func Eq(a, b Word) bdd.Ref {
	a.sameWidth(b, "Eq")
	m := a.M
	acc := bdd.One
	for i := range a.Bits {
		acc = m.And(acc, m.Xnor(a.Bits[i], b.Bits[i]))
		if acc == bdd.Zero {
			break
		}
	}
	return acc
}

// EqList returns the per-bit equality predicates of a and b — the natural
// implicit-conjunction partition of a word equality.
func EqList(a, b Word) []bdd.Ref {
	a.sameWidth(b, "EqList")
	m := a.M
	out := make([]bdd.Ref, a.Width())
	for i := range a.Bits {
		out[i] = m.Xnor(a.Bits[i], b.Bits[i])
	}
	return out
}

// Ne returns the predicate a != b.
func Ne(a, b Word) bdd.Ref { return Eq(a, b).Not() }

// EqConst returns the predicate a == value.
func EqConst(a Word, value uint64) bdd.Ref {
	return Eq(a, Const(a.M, value, a.Width()))
}

// Lt returns the unsigned predicate a < b.
func Lt(a, b Word) bdd.Ref {
	a.sameWidth(b, "Lt")
	m := a.M
	lt := bdd.Zero
	for i := 0; i < a.Width(); i++ { // LSB to MSB: higher bits dominate
		x, y := a.Bits[i], b.Bits[i]
		lt = m.ITE(m.Xnor(x, y), lt, y)
	}
	return lt
}

// Le returns the unsigned predicate a <= b.
func Le(a, b Word) bdd.Ref { return Lt(b, a).Not() }

// Gt returns the unsigned predicate a > b.
func Gt(a, b Word) bdd.Ref { return Lt(b, a) }

// Ge returns the unsigned predicate a >= b.
func Ge(a, b Word) bdd.Ref { return Lt(a, b).Not() }

// LeConst returns the predicate a <= value.
func LeConst(a Word, value uint64) bdd.Ref {
	return Le(a, Const(a.M, value, a.Width()))
}

// Mux returns sel ? a : b, bitwise.
func Mux(sel bdd.Ref, a, b Word) Word {
	a.sameWidth(b, "Mux")
	m := a.M
	bits := make([]bdd.Ref, a.Width())
	for i := range bits {
		bits[i] = m.ITE(sel, a.Bits[i], b.Bits[i])
	}
	return Word{M: m, Bits: bits}
}

// Shr returns a logically shifted right by k bits (zero fill).
func Shr(a Word, k int) Word {
	m := a.M
	bits := make([]bdd.Ref, a.Width())
	for i := range bits {
		if i+k < a.Width() {
			bits[i] = a.Bits[i+k]
		} else {
			bits[i] = bdd.Zero
		}
	}
	return Word{M: m, Bits: bits}
}

// Shl returns a shifted left by k bits (zero fill), modulo 2^width.
func Shl(a Word, k int) Word {
	m := a.M
	bits := make([]bdd.Ref, a.Width())
	for i := range bits {
		if i-k >= 0 {
			bits[i] = a.Bits[i-k]
		} else {
			bits[i] = bdd.Zero
		}
	}
	return Word{M: m, Bits: bits}
}

// PopCount returns the number of true predicates among flags, as a word
// of just enough bits to hold len(flags).
func PopCount(m *bdd.Manager, flags []bdd.Ref) Word {
	width := 1
	for (1<<uint(width))-1 < len(flags) {
		width++
	}
	acc := Const(m, 0, width)
	for _, f := range flags {
		one := Word{M: m, Bits: make([]bdd.Ref, width)}
		one.Bits[0] = f
		for i := 1; i < width; i++ {
			one.Bits[i] = bdd.Zero
		}
		acc = Add(acc, one)
	}
	return acc
}
