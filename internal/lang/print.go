package lang

import (
	"fmt"
	"strings"
)

// Format renders the model as canonical source text: one declaration
// per line in AST order, single spaces, no comments. ParseModel(Format)
// returns an identical AST (the round-trip property the wire format
// depends on), so Format output is stable under re-parsing and safe to
// hash as a content address.
func (mo *Model) Format() string {
	var b strings.Builder
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *InputDecl:
			b.WriteString("(input")
			for _, n := range d.Names {
				b.WriteByte(' ')
				b.WriteString(n)
			}
			b.WriteString(")\n")
		case *StateDecl:
			init := "0"
			if d.Init {
				init = "1"
			}
			fmt.Fprintf(&b, "(state %s :init %s :next %s)\n", d.Name, init, formatExpr(d.Next))
		case *ConstraintDecl:
			fmt.Fprintf(&b, "(constraint %s)\n", formatExpr(d.Expr))
		case *GoodDecl:
			fmt.Fprintf(&b, "(good %s)\n", formatExpr(d.Expr))
		}
	}
	return b.String()
}

// String renders the model as canonical source (same as Format).
func (mo *Model) String() string { return mo.Format() }

// formatExpr renders an expression as an s-expression with single
// spaces. Atoms print verbatim: the tokenizer never produces an atom
// containing a delimiter, so printing cannot introduce ambiguity.
func formatExpr(e Expr) string {
	switch e := e.(type) {
	case Atom:
		return string(e)
	case List:
		parts := make([]string, len(e))
		for i, sub := range e {
			parts[i] = formatExpr(sub)
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
	return "<?>"
}

// Canon parses source text and returns its canonical form — comments
// and layout stripped, one declaration per line. Two sources with the
// same canonical form denote the same model bit for bit, which is what
// the icid result cache hashes.
func Canon(src string) (string, error) {
	mo, err := ParseModel(src)
	if err != nil {
		return "", err
	}
	return mo.Format(), nil
}
