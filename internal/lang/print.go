package lang

import (
	"fmt"
	"strings"
)

// Format renders the model as canonical source text: one declaration
// per line in AST order, single spaces, no comments. ParseModel(Format)
// returns an identical AST (the round-trip property the wire format
// depends on), so Format output is stable under re-parsing and safe to
// hash as a content address.
func (mo *Model) Format() string {
	var b strings.Builder
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *InputDecl:
			b.WriteString("(input")
			for _, n := range d.Names {
				b.WriteByte(' ')
				b.WriteString(n)
			}
			b.WriteString(")\n")
		case *StateDecl:
			init := "0"
			if d.Init {
				init = "1"
			}
			fmt.Fprintf(&b, "(state %s :init %s :next %s)\n", d.Name, init, formatExpr(d.Next))
		case *ConstraintDecl:
			fmt.Fprintf(&b, "(constraint %s)\n", formatExpr(d.Expr))
		case *GoodDecl:
			fmt.Fprintf(&b, "(good %s)\n", formatExpr(d.Expr))
		case *ParamDecl:
			fmt.Fprintf(&b, "(param %s %s)\n", d.Name, d.Value)
		case *DefDecl:
			fmt.Fprintf(&b, "(def %s %s)\n", d.Name, formatExpr(d.Expr))
		case *GoalDecl:
			fmt.Fprintf(&b, "(goal %s)\n", formatExpr(d.Expr))
		case *DepDecl:
			fmt.Fprintf(&b, "(dep %s %s)\n", d.Name, formatExpr(d.Expr))
		}
	}
	return b.String()
}

// String renders the model as canonical source (same as Format).
func (mo *Model) String() string { return mo.Format() }

// formatExpr renders an expression as an s-expression with single
// spaces. Atoms print verbatim: the tokenizer never produces an atom
// containing a delimiter, so printing cannot introduce ambiguity.
func formatExpr(e Expr) string {
	switch e := e.(type) {
	case Atom:
		return string(e)
	case List:
		parts := make([]string, len(e))
		for i, sub := range e {
			parts[i] = formatExpr(sub)
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
	return "<?>"
}

// Canon parses source text and returns its canonical form: the model is
// lowered to the fold-normal IR and re-serialized, so comments, layout,
// constant subexpressions, def naming, and the eq/xnor spelling all
// normalize away. Two sources with the same canonical form denote the
// same model bit for bit, and because the IR serializer is shared with
// the Go-built model registry, text submissions and builtin models hash
// to the same content address (the icid result-cache key).
func Canon(src string) (string, error) {
	mo, err := ParseModel(src)
	if err != nil {
		return "", err
	}
	imo, err := mo.ToIR("")
	if err != nil {
		return "", err
	}
	return imo.Format(), nil
}
