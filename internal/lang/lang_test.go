package lang

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

const mutexModel = `
; two-client arbiter: at most one grant at a time
(input req0 req1)
(state g0 :init 0 :next (and req0 (not g1)))
(state g1 :init 0 :next (and req1 (not g0) (not (and req0 (not g1)))))
(good (nand g0 g1))
`

const brokenMutex = `
(input req0 req1)
(state g0 :init 0 :next req0)
(state g1 :init 0 :next req1)
(good (nand g0 g1))
`

func TestParseAndVerifyMutex(t *testing.T) {
	m := bdd.New()
	p, err := Parse(m, mutexModel, "mutex")
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.StateBits() != 2 || p.Machine.InputBits() != 2 {
		t.Fatalf("bits: %d state, %d input", p.Machine.StateBits(), p.Machine.InputBits())
	}
	for _, method := range []verify.Method{verify.Forward, verify.Backward, verify.XICI} {
		res := verify.Run(p, method, verify.Options{})
		if res.Outcome != verify.Verified {
			t.Fatalf("%s: %v (%s)", method, res.Outcome, res.Why)
		}
	}
}

func TestParsedModelViolation(t *testing.T) {
	m := bdd.New()
	p, err := Parse(m, brokenMutex, "broken")
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Run(p, verify.XICI, verify.Options{WantTrace: true})
	if res.Outcome != verify.Violated {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if err := res.Trace.Validate(p.Machine, p.GoodList); err != nil {
		t.Fatal(err)
	}
}

func TestParseConstraintAndPartition(t *testing.T) {
	src := `
(input tick)
(state x :init 0 :next (xor x tick))
(state y :init 1 :next x)
(constraint (not tick))     ; environment never ticks
(good (not x))              ; two conjuncts: the ICI partition
(good y)
`
	m := bdd.New()
	p, err := Parse(m, src, "frozen")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.GoodList) != 2 {
		t.Fatalf("partition size %d", len(p.GoodList))
	}
	// With the constraint the machine is frozen at x=0... but y <- x
	// drives y to 0, violating the second conjunct at depth 1.
	res := verify.Run(p, verify.ICI, verify.Options{WantTrace: true})
	if res.Outcome != verify.Violated || res.ViolationDepth != 1 {
		t.Fatalf("outcome %v depth %d", res.Outcome, res.ViolationDepth)
	}
	// Remove the y conjunct: x stays 0 forever under the constraint.
	p2, err := Parse(bdd.New(), strings.Replace(src, "(good y)", "", 1), "frozen2")
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Run(p2, verify.XICI, verify.Options{}); res.Outcome != verify.Verified {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestParseOperators(t *testing.T) {
	src := `
(input a b c)
(state s :init 0 :next (ite a (xnor b c) (imp b (or c false (nor a b)))))
(good true)
(good (not false))
`
	p, err := Parse(bdd.New(), src, "ops")
	if err != nil {
		t.Fatal(err)
	}
	// Trivially true property: everything verifies instantly.
	if res := verify.Run(p, verify.Backward, verify.Options{}); res.Outcome != verify.Verified {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unclosed":        `(input a`,
		"stray-paren":     `)`,
		"bad-top":         `foo`,
		"unknown-form":    `(frob x)`,
		"dup-var":         "(input a)\n(state a :init 0 :next a)\n(good true)",
		"bad-init":        `(state s :init 2 :next s)`,
		"missing-next":    `(state s :init 0)`,
		"undeclared":      "(state s :init 0 :next q)\n(good true)",
		"unknown-op":      "(state s :init 0 :next (wibble s))\n(good true)",
		"no-good":         `(state s :init 0 :next s)`,
		"arity-not":       "(state s :init 0 :next (not s s))\n(good true)",
		"arity-ite":       "(state s :init 0 :next (ite s s))\n(good true)",
		"constraint-args": "(state s :init 0 :next s)\n(constraint s s)\n(good true)",
		"empty-expr":      "(state s :init 0 :next ())\n(good true)",
	}
	for name, src := range cases {
		if _, err := Parse(bdd.New(), src, name); err == nil {
			t.Fatalf("%s: expected a parse error", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "; leading comment\n(input a)\n\t(state s :init 1 :next a) ; trailing\n(good s)\n"
	p, err := Parse(bdd.New(), src, "ws")
	if err != nil {
		t.Fatal(err)
	}
	// s starts 1 but tracks the free input: violated at depth 1.
	res := verify.Run(p, verify.Forward, verify.Options{})
	if res.Outcome != verify.Violated || res.ViolationDepth != 1 {
		t.Fatalf("outcome %v depth %d", res.Outcome, res.ViolationDepth)
	}
}
