package lang

import (
	"fmt"

	"repro/internal/ir"
)

// ToIR lowers the parsed AST to the manager-independent IR. Lowering
// inlines def bindings as shared subgraph pointers (defs are a
// serialization device, not an IR construct), maps eq onto xnor, and
// runs every expression through the IR's folding constructors, so the
// result is fold-normal and its ir.Format is the canonical form of the
// model. Declaration order is preserved exactly — it is the variable
// order.
func (mo *Model) ToIR(name string) (*ir.Model, error) {
	out := &ir.Model{Name: name}
	vars := map[string]*ir.Node{} // one node per variable, shared
	defs := map[string]*ir.Node{} // def name → lowered (shared) subgraph

	var lower func(e Expr) (*ir.Node, error)
	lower = func(e Expr) (*ir.Node, error) {
		switch e := e.(type) {
		case Atom:
			s := string(e)
			switch s {
			case "true":
				return ir.Bool(true), nil
			case "false":
				return ir.Bool(false), nil
			}
			if n, ok := defs[s]; ok {
				return n, nil
			}
			n, ok := vars[s]
			if !ok {
				n = ir.Var(s)
				vars[s] = n
			}
			return n, nil
		case List:
			if len(e) == 0 {
				return nil, fmt.Errorf("lang: empty expression")
			}
			head, ok := e[0].(Atom)
			if !ok {
				return nil, fmt.Errorf("lang: operator must be a symbol")
			}
			args := make([]*ir.Node, len(e)-1)
			for i, a := range e[1:] {
				n, err := lower(a)
				if err != nil {
					return nil, err
				}
				args[i] = n
			}
			switch string(head) {
			case "and":
				return ir.And(args...), nil
			case "or":
				return ir.Or(args...), nil
			case "not":
				return ir.Not(args[0]), nil
			case "xor":
				return ir.Xor(args[0], args[1]), nil
			case "xnor", "eq":
				return ir.Xnor(args[0], args[1]), nil
			case "imp":
				return ir.Imp(args[0], args[1]), nil
			case "nand":
				return ir.Nand(args[0], args[1]), nil
			case "nor":
				return ir.Nor(args[0], args[1]), nil
			case "ite":
				return ir.ITE(args[0], args[1], args[2]), nil
			}
			return nil, fmt.Errorf("lang: unknown operator %q", head)
		}
		return nil, fmt.Errorf("lang: malformed expression")
	}

	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *ParamDecl:
			out.Decls = append(out.Decls, &ir.Param{Name: d.Name, Value: d.Value})
		case *InputDecl:
			out.Decls = append(out.Decls, &ir.Input{Names: append([]string(nil), d.Names...)})
		case *StateDecl:
			next, err := lower(d.Next)
			if err != nil {
				return nil, err
			}
			out.Decls = append(out.Decls, &ir.State{Name: d.Name, Init: d.Init, Next: next})
		case *ConstraintDecl:
			n, err := lower(d.Expr)
			if err != nil {
				return nil, err
			}
			out.Decls = append(out.Decls, &ir.Constraint{Expr: n})
		case *GoodDecl:
			n, err := lower(d.Expr)
			if err != nil {
				return nil, err
			}
			out.Decls = append(out.Decls, &ir.Good{Expr: n})
		case *GoalDecl:
			n, err := lower(d.Expr)
			if err != nil {
				return nil, err
			}
			out.Decls = append(out.Decls, &ir.Goal{Expr: n})
		case *DepDecl:
			n, err := lower(d.Expr)
			if err != nil {
				return nil, err
			}
			out.Decls = append(out.Decls, &ir.Dep{Name: d.Name, Def: n})
		case *DefDecl:
			n, err := lower(d.Expr)
			if err != nil {
				return nil, err
			}
			defs[d.Name] = n // inlined at use sites; no IR declaration
		}
	}
	return out, nil
}
