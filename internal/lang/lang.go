// Package lang provides a small textual model language so the verifier
// can be driven without writing Go — the kind of front end the paper's
// Ever verifier provided. Models are sequences of s-expressions:
//
//	; a comment
//	(input  tick)                       ; primary inputs
//	(state  x :init 0 :next (xor x tick))
//	(state  y :init 0 :next x)
//	(constraint (not tick))             ; optional environment assumption
//	(good (nand x y))                   ; property conjuncts: one form
//	(good ...)                          ; per conjunct = the partition
//
// Variable order is declaration order (interleave by declaring
// interleaved). Boolean operators: and, or, not, xor, xnor, imp, ite,
// nand, nor; constants: true, false. The `good` forms together are the
// implicit conjunction the ICI methods consume.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// Parse compiles source text into a verification problem on the given
// manager.
func Parse(m *bdd.Manager, src, name string) (verify.Problem, error) {
	forms, err := read(src)
	if err != nil {
		return verify.Problem{}, err
	}

	ma := fsm.New(m)
	type stateDecl struct {
		v    bdd.Var
		init bool
		next sexp
	}
	vars := make(map[string]bdd.Var)
	var states []stateDecl
	var constraints, goods []sexp

	for _, f := range forms {
		list, ok := f.(list)
		if !ok || len(list) == 0 {
			return verify.Problem{}, fmt.Errorf("lang: top-level form must be a list, got %v", f)
		}
		head, ok := list[0].(atom)
		if !ok {
			return verify.Problem{}, fmt.Errorf("lang: form head must be a symbol")
		}
		switch string(head) {
		case "input":
			for _, a := range list[1:] {
				name, ok := a.(atom)
				if !ok {
					return verify.Problem{}, fmt.Errorf("lang: input names must be symbols")
				}
				if _, dup := vars[string(name)]; dup {
					return verify.Problem{}, fmt.Errorf("lang: duplicate variable %q", name)
				}
				vars[string(name)] = ma.NewInputBit(string(name))
			}
		case "state":
			if len(list) != 6 {
				return verify.Problem{}, fmt.Errorf("lang: state form is (state NAME :init 0|1 :next EXPR)")
			}
			name, ok := list[1].(atom)
			if !ok {
				return verify.Problem{}, fmt.Errorf("lang: state name must be a symbol")
			}
			if _, dup := vars[string(name)]; dup {
				return verify.Problem{}, fmt.Errorf("lang: duplicate variable %q", name)
			}
			if k, _ := list[2].(atom); string(k) != ":init" {
				return verify.Problem{}, fmt.Errorf("lang: state %q: expected :init", name)
			}
			initAtom, _ := list[3].(atom)
			var initVal bool
			switch string(initAtom) {
			case "0":
				initVal = false
			case "1":
				initVal = true
			default:
				return verify.Problem{}, fmt.Errorf("lang: state %q: :init must be 0 or 1", name)
			}
			if k, _ := list[4].(atom); string(k) != ":next" {
				return verify.Problem{}, fmt.Errorf("lang: state %q: expected :next", name)
			}
			v := ma.NewStateBit(string(name))
			vars[string(name)] = v
			states = append(states, stateDecl{v: v, init: initVal, next: list[5]})
		case "constraint":
			if len(list) != 2 {
				return verify.Problem{}, fmt.Errorf("lang: constraint takes one expression")
			}
			constraints = append(constraints, list[1])
		case "good":
			if len(list) != 2 {
				return verify.Problem{}, fmt.Errorf("lang: good takes one expression")
			}
			goods = append(goods, list[1])
		default:
			return verify.Problem{}, fmt.Errorf("lang: unknown form %q", head)
		}
	}

	eval := func(e sexp) (bdd.Ref, error) { return evalExpr(m, vars, e) }

	initSet := bdd.One
	for _, s := range states {
		f, err := eval(s.next)
		if err != nil {
			return verify.Problem{}, err
		}
		ma.SetNext(s.v, f)
		lit := m.VarRef(s.v)
		if !s.init {
			lit = lit.Not()
		}
		initSet = m.And(initSet, lit)
	}
	ma.SetInit(initSet)
	for _, c := range constraints {
		f, err := eval(c)
		if err != nil {
			return verify.Problem{}, err
		}
		ma.AddInputConstraint(f)
	}
	if err := ma.Seal(); err != nil {
		return verify.Problem{}, err
	}

	if len(goods) == 0 {
		return verify.Problem{}, fmt.Errorf("lang: model has no (good ...) property")
	}
	goodList := make([]bdd.Ref, len(goods))
	for i, g := range goods {
		f, err := eval(g)
		if err != nil {
			return verify.Problem{}, err
		}
		goodList[i] = f
	}

	return verify.Problem{Machine: ma, GoodList: goodList, Name: name}, nil
}

// evalExpr compiles a boolean expression over the declared variables.
func evalExpr(m *bdd.Manager, vars map[string]bdd.Var, e sexp) (bdd.Ref, error) {
	switch e := e.(type) {
	case atom:
		switch string(e) {
		case "true":
			return bdd.One, nil
		case "false":
			return bdd.Zero, nil
		}
		v, ok := vars[string(e)]
		if !ok {
			return 0, fmt.Errorf("lang: undeclared variable %q", e)
		}
		return m.VarRef(v), nil
	case list:
		if len(e) == 0 {
			return 0, fmt.Errorf("lang: empty expression")
		}
		head, ok := e[0].(atom)
		if !ok {
			return 0, fmt.Errorf("lang: operator must be a symbol")
		}
		args := make([]bdd.Ref, len(e)-1)
		for i, a := range e[1:] {
			f, err := evalExpr(m, vars, a)
			if err != nil {
				return 0, err
			}
			args[i] = f
		}
		return applyOp(m, string(head), args)
	}
	return 0, fmt.Errorf("lang: malformed expression")
}

func applyOp(m *bdd.Manager, op string, args []bdd.Ref) (bdd.Ref, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("lang: %s takes %d arguments, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "and":
		return m.AndN(args...), nil
	case "or":
		return m.OrN(args...), nil
	case "not":
		if err := need(1); err != nil {
			return 0, err
		}
		return args[0].Not(), nil
	case "xor":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Xor(args[0], args[1]), nil
	case "xnor", "eq":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Xnor(args[0], args[1]), nil
	case "imp":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Imp(args[0], args[1]), nil
	case "nand":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Nand(args[0], args[1]), nil
	case "nor":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Nor(args[0], args[1]), nil
	case "ite":
		if err := need(3); err != nil {
			return 0, err
		}
		return m.ITE(args[0], args[1], args[2]), nil
	}
	return 0, fmt.Errorf("lang: unknown operator %q", op)
}

// --- s-expression reader -------------------------------------------------

type sexp interface{ isSexp() }

type atom string

func (atom) isSexp() {}

type list []sexp

func (list) isSexp() {}

// read tokenizes and parses a whole source file into top-level forms.
func read(src string) ([]sexp, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var forms []sexp
	pos := 0
	for pos < len(toks) {
		f, next, err := parseOne(toks, pos)
		if err != nil {
			return nil, err
		}
		forms = append(forms, f)
		pos = next
	}
	return forms, nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ';': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r();", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseOne(toks []string, pos int) (sexp, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("lang: unexpected end of input")
	}
	switch toks[pos] {
	case "(":
		var out list
		pos++
		for {
			if pos >= len(toks) {
				return nil, pos, fmt.Errorf("lang: unclosed parenthesis")
			}
			if toks[pos] == ")" {
				return out, pos + 1, nil
			}
			elem, next, err := parseOne(toks, pos)
			if err != nil {
				return nil, pos, err
			}
			out = append(out, elem)
			pos = next
		}
	case ")":
		return nil, pos, fmt.Errorf("lang: unexpected ')'")
	default:
		return atom(toks[pos]), pos + 1, nil
	}
}
