// Package lang provides a small textual model language so the verifier
// can be driven without writing Go — the kind of front end the paper's
// Ever verifier provided. Models are sequences of s-expressions:
//
//	; a comment
//	(input  tick)                       ; primary inputs
//	(state  x :init 0 :next (xor x tick))
//	(state  y :init 0 :next x)
//	(constraint (not tick))             ; optional environment assumption
//	(good (nand x y))                   ; property conjuncts: one form
//	(good ...)                          ; per conjunct = the partition
//
// Variable order is declaration order (interleave by declaring
// interleaved). Boolean operators: and, or, not, xor, xnor, imp, ite,
// nand, nor; constants: true, false. The `good` forms together are the
// implicit conjunction the ICI methods consume.
//
// The package is split into two stages so the textual format can double
// as a network wire format (the icid service):
//
//	ParseModel  source text → *Model, a plain AST, with all static
//	            checking (form shapes, duplicate or undeclared
//	            variables, operator arities) done up front
//	Compile     *Model → verify.Problem on a caller-supplied manager,
//	            building the BDDs
//
// Parse composes the two. A Model prints back to canonical source via
// Format, and ParseModel∘Format is the identity on ASTs (see the
// round-trip test), which is what makes the printed form safe to hash as
// a content address: Canon returns that canonical text directly.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// Model is the parsed AST of a textual model: the declarations in source
// order. Order is semantically significant — variables are ordered in
// the BDD by declaration order — so the AST preserves it exactly.
type Model struct {
	Decls []Decl
}

// Inputs returns the declared input names in order.
func (mo *Model) Inputs() []string {
	var names []string
	for _, d := range mo.Decls {
		if in, ok := d.(*InputDecl); ok {
			names = append(names, in.Names...)
		}
	}
	return names
}

// States returns the declared state names in order.
func (mo *Model) States() []string {
	var names []string
	for _, d := range mo.Decls {
		if st, ok := d.(*StateDecl); ok {
			names = append(names, st.Name)
		}
	}
	return names
}

// Goods counts the property conjuncts — the size of the implicit
// conjunction the ICI engines will consume.
func (mo *Model) Goods() int {
	n := 0
	for _, d := range mo.Decls {
		if _, ok := d.(*GoodDecl); ok {
			n++
		}
	}
	return n
}

// Decl is one top-level form.
type Decl interface{ isDecl() }

// InputDecl declares one or more primary inputs: (input a b ...).
type InputDecl struct {
	Names []string
}

// StateDecl declares a state bit: (state NAME :init 0|1 :next EXPR).
type StateDecl struct {
	Name string
	Init bool
	Next Expr
}

// ConstraintDecl is an environment assumption over inputs and states.
type ConstraintDecl struct {
	Expr Expr
}

// GoodDecl is one property conjunct.
type GoodDecl struct {
	Expr Expr
}

func (*InputDecl) isDecl()      {}
func (*StateDecl) isDecl()      {}
func (*ConstraintDecl) isDecl() {}
func (*GoodDecl) isDecl()       {}

// Expr is a boolean expression: an Atom (variable or constant) or a
// List (operator application).
type Expr interface{ isExpr() }

// Atom is a symbol: a variable name or the constants true/false.
type Atom string

func (Atom) isExpr() {}

// List is an operator application (op arg ...); the reader also uses it
// for top-level forms before they are classified into Decls.
type List []Expr

func (List) isExpr() {}

// arity maps each operator to its argument count; -1 means variadic.
var arity = map[string]int{
	"and": -1, "or": -1,
	"not": 1,
	"xor": 2, "xnor": 2, "eq": 2, "imp": 2, "nand": 2, "nor": 2,
	"ite": 3,
}

// ParseModel parses source text into a checked AST. All static errors —
// malformed forms, duplicate or undeclared variables, unknown operators,
// arity mistakes, a missing property — are reported here, so a Model
// that parses will Compile on any fresh manager (resource limits aside).
func ParseModel(src string) (*Model, error) {
	forms, err := read(src)
	if err != nil {
		return nil, err
	}

	mo := &Model{}
	declared := map[string]bool{}
	for _, f := range forms {
		form, ok := f.(List)
		if !ok || len(form) == 0 {
			return nil, fmt.Errorf("lang: top-level form must be a list, got %v", f)
		}
		head, ok := form[0].(Atom)
		if !ok {
			return nil, fmt.Errorf("lang: form head must be a symbol")
		}
		switch string(head) {
		case "input":
			in := &InputDecl{}
			for _, a := range form[1:] {
				name, ok := a.(Atom)
				if !ok {
					return nil, fmt.Errorf("lang: input names must be symbols")
				}
				if declared[string(name)] {
					return nil, fmt.Errorf("lang: duplicate variable %q", name)
				}
				declared[string(name)] = true
				in.Names = append(in.Names, string(name))
			}
			mo.Decls = append(mo.Decls, in)
		case "state":
			if len(form) != 6 {
				return nil, fmt.Errorf("lang: state form is (state NAME :init 0|1 :next EXPR)")
			}
			name, ok := form[1].(Atom)
			if !ok {
				return nil, fmt.Errorf("lang: state name must be a symbol")
			}
			if declared[string(name)] {
				return nil, fmt.Errorf("lang: duplicate variable %q", name)
			}
			if k, _ := form[2].(Atom); string(k) != ":init" {
				return nil, fmt.Errorf("lang: state %q: expected :init", name)
			}
			initAtom, _ := form[3].(Atom)
			var initVal bool
			switch string(initAtom) {
			case "0":
				initVal = false
			case "1":
				initVal = true
			default:
				return nil, fmt.Errorf("lang: state %q: :init must be 0 or 1", name)
			}
			if k, _ := form[4].(Atom); string(k) != ":next" {
				return nil, fmt.Errorf("lang: state %q: expected :next", name)
			}
			declared[string(name)] = true
			mo.Decls = append(mo.Decls, &StateDecl{Name: string(name), Init: initVal, Next: form[5]})
		case "constraint":
			if len(form) != 2 {
				return nil, fmt.Errorf("lang: constraint takes one expression")
			}
			mo.Decls = append(mo.Decls, &ConstraintDecl{Expr: form[1]})
		case "good":
			if len(form) != 2 {
				return nil, fmt.Errorf("lang: good takes one expression")
			}
			mo.Decls = append(mo.Decls, &GoodDecl{Expr: form[1]})
		default:
			return nil, fmt.Errorf("lang: unknown form %q", head)
		}
	}

	if mo.Goods() == 0 {
		return nil, fmt.Errorf("lang: model has no (good ...) property")
	}
	// Expressions may reference any variable, including ones declared
	// later (the two-phase Compile supports forward references), so the
	// static check runs after all declarations are collected.
	for _, d := range mo.Decls {
		var e Expr
		switch d := d.(type) {
		case *StateDecl:
			e = d.Next
		case *ConstraintDecl:
			e = d.Expr
		case *GoodDecl:
			e = d.Expr
		default:
			continue
		}
		if err := checkExpr(declared, e); err != nil {
			return nil, err
		}
	}
	return mo, nil
}

// checkExpr validates variables, operators, and arities against the
// declared-name set.
func checkExpr(declared map[string]bool, e Expr) error {
	switch e := e.(type) {
	case Atom:
		switch string(e) {
		case "true", "false":
			return nil
		}
		if !declared[string(e)] {
			return fmt.Errorf("lang: undeclared variable %q", e)
		}
		return nil
	case List:
		if len(e) == 0 {
			return fmt.Errorf("lang: empty expression")
		}
		head, ok := e[0].(Atom)
		if !ok {
			return fmt.Errorf("lang: operator must be a symbol")
		}
		n, known := arity[string(head)]
		if !known {
			return fmt.Errorf("lang: unknown operator %q", head)
		}
		if n >= 0 && len(e)-1 != n {
			return fmt.Errorf("lang: %s takes %d arguments, got %d", head, n, len(e)-1)
		}
		for _, a := range e[1:] {
			if err := checkExpr(declared, a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("lang: malformed expression")
}

// Compile builds the verification problem on the given manager: declares
// the variables in AST order, builds the transition functions, initial
// set, constraints, and property conjuncts, and seals the machine.
func Compile(m *bdd.Manager, mo *Model, name string) (verify.Problem, error) {
	ma := fsm.New(m)
	vars := make(map[string]bdd.Var)
	var states []*StateDecl

	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *InputDecl:
			for _, n := range d.Names {
				if _, dup := vars[n]; dup {
					return verify.Problem{}, fmt.Errorf("lang: duplicate variable %q", n)
				}
				vars[n] = ma.NewInputBit(n)
			}
		case *StateDecl:
			if _, dup := vars[d.Name]; dup {
				return verify.Problem{}, fmt.Errorf("lang: duplicate variable %q", d.Name)
			}
			vars[d.Name] = ma.NewStateBit(d.Name)
			states = append(states, d)
		}
	}

	eval := func(e Expr) (bdd.Ref, error) { return evalExpr(m, vars, e) }

	initSet := bdd.One
	for _, s := range states {
		f, err := eval(s.Next)
		if err != nil {
			return verify.Problem{}, err
		}
		ma.SetNext(vars[s.Name], f)
		lit := m.VarRef(vars[s.Name])
		if !s.Init {
			lit = lit.Not()
		}
		initSet = m.And(initSet, lit)
	}
	ma.SetInit(initSet)

	var goodList []bdd.Ref
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *ConstraintDecl:
			f, err := eval(d.Expr)
			if err != nil {
				return verify.Problem{}, err
			}
			ma.AddInputConstraint(f)
		case *GoodDecl:
			f, err := eval(d.Expr)
			if err != nil {
				return verify.Problem{}, err
			}
			goodList = append(goodList, f)
		}
	}
	if len(goodList) == 0 {
		return verify.Problem{}, fmt.Errorf("lang: model has no (good ...) property")
	}
	if err := ma.Seal(); err != nil {
		return verify.Problem{}, err
	}
	return verify.Problem{Machine: ma, GoodList: goodList, Name: name}, nil
}

// Parse compiles source text into a verification problem on the given
// manager — ParseModel followed by Compile.
func Parse(m *bdd.Manager, src, name string) (verify.Problem, error) {
	mo, err := ParseModel(src)
	if err != nil {
		return verify.Problem{}, err
	}
	return Compile(m, mo, name)
}

// evalExpr compiles a boolean expression over the declared variables.
func evalExpr(m *bdd.Manager, vars map[string]bdd.Var, e Expr) (bdd.Ref, error) {
	switch e := e.(type) {
	case Atom:
		switch string(e) {
		case "true":
			return bdd.One, nil
		case "false":
			return bdd.Zero, nil
		}
		v, ok := vars[string(e)]
		if !ok {
			return 0, fmt.Errorf("lang: undeclared variable %q", e)
		}
		return m.VarRef(v), nil
	case List:
		if len(e) == 0 {
			return 0, fmt.Errorf("lang: empty expression")
		}
		head, ok := e[0].(Atom)
		if !ok {
			return 0, fmt.Errorf("lang: operator must be a symbol")
		}
		args := make([]bdd.Ref, len(e)-1)
		for i, a := range e[1:] {
			f, err := evalExpr(m, vars, a)
			if err != nil {
				return 0, err
			}
			args[i] = f
		}
		return applyOp(m, string(head), args)
	}
	return 0, fmt.Errorf("lang: malformed expression")
}

func applyOp(m *bdd.Manager, op string, args []bdd.Ref) (bdd.Ref, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("lang: %s takes %d arguments, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "and":
		return m.AndN(args...), nil
	case "or":
		return m.OrN(args...), nil
	case "not":
		if err := need(1); err != nil {
			return 0, err
		}
		return args[0].Not(), nil
	case "xor":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Xor(args[0], args[1]), nil
	case "xnor", "eq":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Xnor(args[0], args[1]), nil
	case "imp":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Imp(args[0], args[1]), nil
	case "nand":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Nand(args[0], args[1]), nil
	case "nor":
		if err := need(2); err != nil {
			return 0, err
		}
		return m.Nor(args[0], args[1]), nil
	case "ite":
		if err := need(3); err != nil {
			return 0, err
		}
		return m.ITE(args[0], args[1], args[2]), nil
	}
	return 0, fmt.Errorf("lang: unknown operator %q", op)
}

// --- s-expression reader -------------------------------------------------

// read tokenizes and parses a whole source file into top-level forms.
func read(src string) ([]Expr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var forms []Expr
	pos := 0
	for pos < len(toks) {
		f, next, err := parseOne(toks, pos)
		if err != nil {
			return nil, err
		}
		forms = append(forms, f)
		pos = next
	}
	return forms, nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ';': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r();", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseOne(toks []string, pos int) (Expr, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("lang: unexpected end of input")
	}
	switch toks[pos] {
	case "(":
		var out List
		pos++
		for {
			if pos >= len(toks) {
				return nil, pos, fmt.Errorf("lang: unclosed parenthesis")
			}
			if toks[pos] == ")" {
				return out, pos + 1, nil
			}
			elem, next, err := parseOne(toks, pos)
			if err != nil {
				return nil, pos, err
			}
			out = append(out, elem)
			pos = next
		}
	case ")":
		return nil, pos, fmt.Errorf("lang: unexpected ')'")
	default:
		return Atom(toks[pos]), pos + 1, nil
	}
}
