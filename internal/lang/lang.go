// Package lang provides a small textual model language so the verifier
// can be driven without writing Go — the kind of front end the paper's
// Ever verifier provided. Models are sequences of s-expressions:
//
//	; a comment
//	(input  tick)                       ; primary inputs
//	(state  x :init 0 :next (xor x tick))
//	(state  y :init 0 :next x)
//	(constraint (not tick))             ; optional environment assumption
//	(good (nand x y))                   ; property conjuncts: one form
//	(good ...)                          ; per conjunct = the partition
//
// Variable order is declaration order (interleave by declaring
// interleaved). Boolean operators: and, or, not, xor, xnor, imp, ite,
// nand, nor; constants: true, false. The `good` forms together are the
// implicit conjunction the ICI methods consume.
//
// The package is split into two stages so the textual format can double
// as a network wire format (the icid service):
//
//	ParseModel  source text → *Model, a plain AST, with all static
//	            checking (form shapes, duplicate or undeclared
//	            variables, operator arities) done up front
//	Compile     *Model → verify.Problem on a caller-supplied manager,
//	            building the BDDs
//
// Parse composes the two. A Model prints back to canonical source via
// Format, and ParseModel∘Format is the identity on ASTs (see the
// round-trip test), which is what makes the printed form safe to hash as
// a content address: Canon returns that canonical text directly.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/verify"
)

// Model is the parsed AST of a textual model: the declarations in source
// order. Order is semantically significant — variables are ordered in
// the BDD by declaration order — so the AST preserves it exactly.
type Model struct {
	Decls []Decl
}

// Inputs returns the declared input names in order.
func (mo *Model) Inputs() []string {
	var names []string
	for _, d := range mo.Decls {
		if in, ok := d.(*InputDecl); ok {
			names = append(names, in.Names...)
		}
	}
	return names
}

// States returns the declared state names in order.
func (mo *Model) States() []string {
	var names []string
	for _, d := range mo.Decls {
		if st, ok := d.(*StateDecl); ok {
			names = append(names, st.Name)
		}
	}
	return names
}

// Goods counts the property conjuncts — the size of the implicit
// conjunction the ICI engines will consume.
func (mo *Model) Goods() int {
	n := 0
	for _, d := range mo.Decls {
		if _, ok := d.(*GoodDecl); ok {
			n++
		}
	}
	return n
}

// Decl is one top-level form.
type Decl interface{ isDecl() }

// InputDecl declares one or more primary inputs: (input a b ...).
type InputDecl struct {
	Names []string
}

// StateDecl declares a state bit: (state NAME :init 0|1 :next EXPR).
type StateDecl struct {
	Name string
	Init bool
	Next Expr
}

// ConstraintDecl is an environment assumption over inputs and states.
type ConstraintDecl struct {
	Expr Expr
}

// GoodDecl is one property conjunct.
type GoodDecl struct {
	Expr Expr
}

// ParamDecl records a named model parameter: (param NAME VALUE). It is
// carried through to the IR's canonical form but does not affect
// compilation.
type ParamDecl struct {
	Name  string
	Value string
}

// DefDecl binds a name to a subexpression: (def NAME EXPR). Later
// expressions may reference NAME; the binding is inlined (as a shared
// subgraph) during lowering, so defs are pure serialization — the
// device the canonical form uses to print expression DAGs linearly.
type DefDecl struct {
	Name string
	Expr Expr
}

// GoalDecl is the optional monolithic property: (goal EXPR). At most
// one per model; it compiles to verify.Problem.Good, distinct from the
// good-conjunct partition.
type GoalDecl struct {
	Expr Expr
}

// DepDecl declares a functional dependency: (dep STATE EXPR), meaning
// the state bit always equals EXPR on reachable states — the FD
// engine's input.
type DepDecl struct {
	Name string
	Expr Expr
}

func (*InputDecl) isDecl()      {}
func (*StateDecl) isDecl()      {}
func (*ConstraintDecl) isDecl() {}
func (*GoodDecl) isDecl()       {}
func (*ParamDecl) isDecl()      {}
func (*DefDecl) isDecl()        {}
func (*GoalDecl) isDecl()       {}
func (*DepDecl) isDecl()        {}

// Expr is a boolean expression: an Atom (variable or constant) or a
// List (operator application).
type Expr interface{ isExpr() }

// Atom is a symbol: a variable name or the constants true/false.
type Atom string

func (Atom) isExpr() {}

// List is an operator application (op arg ...); the reader also uses it
// for top-level forms before they are classified into Decls.
type List []Expr

func (List) isExpr() {}

// arity maps each operator to its argument count; -1 means variadic.
var arity = map[string]int{
	"and": -1, "or": -1,
	"not": 1,
	"xor": 2, "xnor": 2, "eq": 2, "imp": 2, "nand": 2, "nor": 2,
	"ite": 3,
}

// ParseModel parses source text into a checked AST. All static errors —
// malformed forms, duplicate or undeclared variables, unknown operators,
// arity mistakes, a missing property — are reported here, so a Model
// that parses will Compile on any fresh manager (resource limits aside).
func ParseModel(src string) (*Model, error) {
	forms, err := read(src)
	if err != nil {
		return nil, err
	}

	mo := &Model{}
	declared := map[string]bool{}
	states := map[string]bool{}
	defPos := map[string]int{}
	params := map[string]bool{}
	goals := 0
	declareVar := func(name string) error {
		if strings.HasPrefix(name, "$") {
			return fmt.Errorf("lang: variable names beginning with '$' are reserved for defs")
		}
		if declared[name] {
			return fmt.Errorf("lang: duplicate variable %q", name)
		}
		declared[name] = true
		return nil
	}
	for _, f := range forms {
		form, ok := f.(List)
		if !ok || len(form) == 0 {
			return nil, fmt.Errorf("lang: top-level form must be a list, got %v", f)
		}
		head, ok := form[0].(Atom)
		if !ok {
			return nil, fmt.Errorf("lang: form head must be a symbol")
		}
		switch string(head) {
		case "input":
			in := &InputDecl{}
			for _, a := range form[1:] {
				name, ok := a.(Atom)
				if !ok {
					return nil, fmt.Errorf("lang: input names must be symbols")
				}
				if err := declareVar(string(name)); err != nil {
					return nil, err
				}
				in.Names = append(in.Names, string(name))
			}
			mo.Decls = append(mo.Decls, in)
		case "state":
			if len(form) != 6 {
				return nil, fmt.Errorf("lang: state form is (state NAME :init 0|1 :next EXPR)")
			}
			name, ok := form[1].(Atom)
			if !ok {
				return nil, fmt.Errorf("lang: state name must be a symbol")
			}
			if k, _ := form[2].(Atom); string(k) != ":init" {
				return nil, fmt.Errorf("lang: state %q: expected :init", name)
			}
			initAtom, _ := form[3].(Atom)
			var initVal bool
			switch string(initAtom) {
			case "0":
				initVal = false
			case "1":
				initVal = true
			default:
				return nil, fmt.Errorf("lang: state %q: :init must be 0 or 1", name)
			}
			if k, _ := form[4].(Atom); string(k) != ":next" {
				return nil, fmt.Errorf("lang: state %q: expected :next", name)
			}
			if err := declareVar(string(name)); err != nil {
				return nil, err
			}
			states[string(name)] = true
			mo.Decls = append(mo.Decls, &StateDecl{Name: string(name), Init: initVal, Next: form[5]})
		case "constraint":
			if len(form) != 2 {
				return nil, fmt.Errorf("lang: constraint takes one expression")
			}
			mo.Decls = append(mo.Decls, &ConstraintDecl{Expr: form[1]})
		case "good":
			if len(form) != 2 {
				return nil, fmt.Errorf("lang: good takes one expression")
			}
			mo.Decls = append(mo.Decls, &GoodDecl{Expr: form[1]})
		case "goal":
			if len(form) != 2 {
				return nil, fmt.Errorf("lang: goal takes one expression")
			}
			goals++
			if goals > 1 {
				return nil, fmt.Errorf("lang: at most one (goal ...) form is allowed")
			}
			mo.Decls = append(mo.Decls, &GoalDecl{Expr: form[1]})
		case "param":
			if len(form) != 3 {
				return nil, fmt.Errorf("lang: param form is (param NAME VALUE)")
			}
			name, ok1 := form[1].(Atom)
			val, ok2 := form[2].(Atom)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("lang: param name and value must be symbols")
			}
			if params[string(name)] {
				return nil, fmt.Errorf("lang: duplicate param %q", name)
			}
			params[string(name)] = true
			mo.Decls = append(mo.Decls, &ParamDecl{Name: string(name), Value: string(val)})
		case "def":
			if len(form) != 3 {
				return nil, fmt.Errorf("lang: def form is (def NAME EXPR)")
			}
			name, ok := form[1].(Atom)
			if !ok {
				return nil, fmt.Errorf("lang: def name must be a symbol")
			}
			switch string(name) {
			case "true", "false":
				return nil, fmt.Errorf("lang: def cannot rebind constant %q", name)
			}
			if declared[string(name)] {
				return nil, fmt.Errorf("lang: duplicate variable %q", name)
			}
			if _, dup := defPos[string(name)]; dup {
				return nil, fmt.Errorf("lang: duplicate def %q", name)
			}
			defPos[string(name)] = len(mo.Decls)
			mo.Decls = append(mo.Decls, &DefDecl{Name: string(name), Expr: form[2]})
		case "dep":
			if len(form) != 3 {
				return nil, fmt.Errorf("lang: dep form is (dep STATE EXPR)")
			}
			name, ok := form[1].(Atom)
			if !ok {
				return nil, fmt.Errorf("lang: dep state name must be a symbol")
			}
			mo.Decls = append(mo.Decls, &DepDecl{Name: string(name), Expr: form[2]})
		default:
			return nil, fmt.Errorf("lang: unknown form %q", head)
		}
	}

	if mo.Goods()+goals == 0 {
		return nil, fmt.Errorf("lang: model has no (good ...) property")
	}
	// A def name must not collide with a variable declared after it
	// either — defs and variables share one namespace.
	for name := range defPos {
		if declared[name] {
			return nil, fmt.Errorf("lang: duplicate variable %q", name)
		}
	}
	// Expressions may reference any variable, including ones declared
	// later (the two-phase Compile supports forward references), so the
	// static check runs after all declarations are collected. Defs, by
	// contrast, must be defined before use — the canonical printer
	// emits them that way, and it keeps lowering single-pass.
	for i, d := range mo.Decls {
		var e Expr
		switch d := d.(type) {
		case *StateDecl:
			e = d.Next
		case *ConstraintDecl:
			e = d.Expr
		case *GoodDecl:
			e = d.Expr
		case *GoalDecl:
			e = d.Expr
		case *DefDecl:
			e = d.Expr
		case *DepDecl:
			if !states[d.Name] {
				return nil, fmt.Errorf("lang: dep of undeclared state %q", d.Name)
			}
			e = d.Expr
		default:
			continue
		}
		if err := checkExpr(declared, defPos, i, e); err != nil {
			return nil, err
		}
	}
	return mo, nil
}

// checkExpr validates variables, operators, and arities against the
// declared-name set. pos is the declaration index of the expression's
// form: a def reference is legal only when the def appears earlier.
func checkExpr(declared map[string]bool, defPos map[string]int, pos int, e Expr) error {
	switch e := e.(type) {
	case Atom:
		switch string(e) {
		case "true", "false":
			return nil
		}
		if p, isDef := defPos[string(e)]; isDef {
			if p >= pos {
				return fmt.Errorf("lang: def %q used before its definition", e)
			}
			return nil
		}
		if !declared[string(e)] {
			return fmt.Errorf("lang: undeclared variable %q", e)
		}
		return nil
	case List:
		if len(e) == 0 {
			return fmt.Errorf("lang: empty expression")
		}
		head, ok := e[0].(Atom)
		if !ok {
			return fmt.Errorf("lang: operator must be a symbol")
		}
		n, known := arity[string(head)]
		if !known {
			return fmt.Errorf("lang: unknown operator %q", head)
		}
		if n >= 0 && len(e)-1 != n {
			return fmt.Errorf("lang: %s takes %d arguments, got %d", head, n, len(e)-1)
		}
		for _, a := range e[1:] {
			if err := checkExpr(declared, defPos, pos, a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("lang: malformed expression")
}

// Compile builds the verification problem on the given manager by
// lowering the AST to the manager-independent IR and instantiating it:
// ir.Instantiate is the single place any frontend turns models into
// BDDs, so a text model and the equivalent Go-built model produce
// Ref-identical functions on the same manager.
func Compile(m *bdd.Manager, mo *Model, name string) (verify.Problem, error) {
	imo, err := mo.ToIR(name)
	if err != nil {
		return verify.Problem{}, err
	}
	return imo.Instantiate(m)
}

// Parse compiles source text into a verification problem on the given
// manager — ParseModel followed by Compile.
func Parse(m *bdd.Manager, src, name string) (verify.Problem, error) {
	mo, err := ParseModel(src)
	if err != nil {
		return verify.Problem{}, err
	}
	return Compile(m, mo, name)
}

// --- s-expression reader -------------------------------------------------

// read tokenizes and parses a whole source file into top-level forms.
func read(src string) ([]Expr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var forms []Expr
	pos := 0
	for pos < len(toks) {
		f, next, err := parseOne(toks, pos)
		if err != nil {
			return nil, err
		}
		forms = append(forms, f)
		pos = next
	}
	return forms, nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ';': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r();", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseOne(toks []string, pos int) (Expr, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("lang: unexpected end of input")
	}
	switch toks[pos] {
	case "(":
		var out List
		pos++
		for {
			if pos >= len(toks) {
				return nil, pos, fmt.Errorf("lang: unclosed parenthesis")
			}
			if toks[pos] == ")" {
				return out, pos + 1, nil
			}
			elem, next, err := parseOne(toks, pos)
			if err != nil {
				return nil, pos, err
			}
			out = append(out, elem)
			pos = next
		}
	case ")":
		return nil, pos, fmt.Errorf("lang: unexpected ')'")
	default:
		return Atom(toks[pos]), pos + 1, nil
	}
}
