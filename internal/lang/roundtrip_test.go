package lang

import (
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

// The wire-format contract: parse → print → parse is the identity on
// ASTs, and the canonical form is a fixed point of Canon. Every model
// the service accepts goes through this cycle (Canon is the cache key),
// so an asymmetry here would silently alias distinct models.
func TestRoundTrip(t *testing.T) {
	sources := map[string]string{
		"mutex":  mutexModel,
		"broken": brokenMutex,
		"frozen": `
(input tick)
(state x :init 0 :next (xor x tick))
(state y :init 1 :next x)
(constraint (not tick))
(good (not x))
(good y)
`,
		"ops": `
(input a b c)
(state s :init 0 :next (ite a (xnor b c) (imp b (or c false (nor a b)))))
(good true)
(good (not false))
`,
		"forward-ref": `
(state s :init 0 :next t)
(state t :init 1 :next s)
(good (or s t))
`,
		"variadic": `
(input a b c d)
(state s :init 0 :next (and a b c d (or) (and)))
(good (nand s s))
`,
		"comments": "; header\n(input a)\n(state s :init 1 :next a) ; trailing\n(good s)\n",
	}
	for name, src := range sources {
		mo, err := ParseModel(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		printed := mo.Format()
		mo2, err := ParseModel(printed)
		if err != nil {
			t.Fatalf("%s: reparse of printed form failed: %v\nprinted:\n%s", name, err, printed)
		}
		if !reflect.DeepEqual(mo, mo2) {
			t.Fatalf("%s: round-trip changed the AST\nfirst:  %#v\nsecond: %#v\nprinted:\n%s",
				name, mo, mo2, printed)
		}
		// The canonical form is a fixed point: printing the reparsed
		// model reproduces it byte for byte.
		if printed2 := mo2.Format(); printed2 != printed {
			t.Fatalf("%s: canonical form is not a fixed point\nfirst:\n%s\nsecond:\n%s",
				name, printed, printed2)
		}
		// Canon (which normalizes through the fold-normal IR, so it may
		// differ from the AST-level Format) is itself a fixed point: the
		// canonical text reparses cleanly and canonicalizes to itself.
		canon, err := Canon(src)
		if err != nil {
			t.Fatalf("%s: Canon: %v", name, err)
		}
		canon2, err := Canon(canon)
		if err != nil {
			t.Fatalf("%s: Canon of canonical text: %v\ncanon:\n%s", name, err, canon)
		}
		if canon2 != canon {
			t.Fatalf("%s: Canon is not a fixed point\nfirst:\n%s\nsecond:\n%s",
				name, canon, canon2)
		}
	}
}

// A model and its canonicalized form must compile to the same problem:
// same variable counts, same partition size, same verdict.
func TestCanonPreservesSemantics(t *testing.T) {
	canon, err := Canon(mutexModel)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Parse(bdd.New(), mutexModel, "orig")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(bdd.New(), canon, "canon")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Machine.StateBits() != p2.Machine.StateBits() || p1.Machine.InputBits() != p2.Machine.InputBits() {
		t.Fatalf("variable counts diverge after canonicalization")
	}
	if len(p1.GoodList) != len(p2.GoodList) {
		t.Fatalf("partition size diverges: %d vs %d", len(p1.GoodList), len(p2.GoodList))
	}
	r1 := verify.Run(p1, verify.XICI, verify.Options{})
	r2 := verify.Run(p2, verify.XICI, verify.Options{})
	if r1.Outcome != r2.Outcome || r1.Iterations != r2.Iterations {
		t.Fatalf("verdicts diverge: %v/%d vs %v/%d", r1.Outcome, r1.Iterations, r2.Outcome, r2.Iterations)
	}
}

// ParseModel alone must reject every static error Parse used to reject,
// so the service can validate a submission without building any BDDs.
func TestParseModelStaticErrors(t *testing.T) {
	cases := map[string]string{
		"unclosed":        `(input a`,
		"stray-paren":     `)`,
		"bad-top":         `foo`,
		"unknown-form":    `(frob x)`,
		"dup-var":         "(input a)\n(state a :init 0 :next a)\n(good true)",
		"bad-init":        `(state s :init 2 :next s)`,
		"missing-next":    `(state s :init 0)`,
		"undeclared":      "(state s :init 0 :next q)\n(good true)",
		"unknown-op":      "(state s :init 0 :next (wibble s))\n(good true)",
		"no-good":         `(state s :init 0 :next s)`,
		"arity-not":       "(state s :init 0 :next (not s s))\n(good true)",
		"arity-ite":       "(state s :init 0 :next (ite s s))\n(good true)",
		"constraint-args": "(state s :init 0 :next s)\n(constraint s s)\n(good true)",
		"empty-expr":      "(state s :init 0 :next ())\n(good true)",
		"undeclared-good": "(state s :init 0 :next s)\n(good (and s q))",
	}
	for name, src := range cases {
		if _, err := ParseModel(src); err == nil {
			t.Fatalf("%s: expected a static error from ParseModel", name)
		}
	}
}
