package fsmtk

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

func readSample(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestImportVerdicts imports every sample machine, instantiates it on
// both manager kinds, and checks the expected verdict and depth — the
// end-to-end importer contract.
func TestImportVerdicts(t *testing.T) {
	cases := []struct {
		file    string
		outcome verify.Outcome
		depth   int // checked for violated only
	}{
		{"turnstile.fsm", verify.Violated, 1},
		{"door.fsm", verify.Verified, 0},
		{"worker.fsm", verify.Violated, 2},
		{"light.fsm", verify.Violated, 2},
		{"lift.fsm", verify.Verified, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			mo, err := Import(readSample(t, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{"perworker", "shared"} {
				var m *bdd.Manager
				if mode == "shared" {
					m = bdd.NewShared(2, 14)
				} else {
					m = bdd.New()
				}
				prob, err := mo.Instantiate(m)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				res := verify.Run(prob, verify.Forward, verify.Options{WantTrace: true})
				if res.Outcome != tc.outcome {
					t.Fatalf("%s: outcome %v, want %v", mode, res.Outcome, tc.outcome)
				}
				if tc.outcome == verify.Violated {
					if res.ViolationDepth != tc.depth {
						t.Errorf("%s: violation depth %d, want %d", mode, res.ViolationDepth, tc.depth)
					}
					if res.Trace == nil {
						t.Fatalf("%s: violated without a trace", mode)
					}
					gl := prob.GoodList
					if len(gl) == 0 {
						gl = []bdd.Ref{prob.Good}
					}
					if err := res.Trace.Validate(prob.Machine, gl); err != nil {
						t.Errorf("%s: trace does not replay: %v", mode, err)
					}
				}
			}
		})
	}
}

// TestMooreDependency checks that Moore outputs compile to observation
// variables with declared functional dependencies — the paper's FD
// optimization, derived automatically from the machine structure.
func TestMooreDependency(t *testing.T) {
	mo, err := Import(readSample(t, "door.fsm"))
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.New()
	prob, err := mo.Instantiate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Deps) != 1 {
		t.Fatalf("Deps = %d, want 1 (the moore output)", len(prob.Deps))
	}
	if name := m.VarName(prob.Deps[0].Var); name != "out.shut" {
		t.Fatalf("dependency on %q, want out.shut", name)
	}
	// The dependency definition must actually hold on every reachable
	// state: out.shut <-> (door is closed or locked). Cheap sanity: the
	// initial state satisfies it.
	d := prob.Deps[0]
	equiv := m.Xnor(m.VarRef(d.Var), d.Def)
	if m.And(prob.Machine.Init(), equiv.Not()) != bdd.Zero {
		t.Fatal("moore dependency does not hold in the initial state")
	}
}

// TestAcceptingOutput checks the synthetic "accept" observation
// variable of dfa/nfa machines.
func TestAcceptingOutput(t *testing.T) {
	mo, err := Import(readSample(t, "light.fsm"))
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.New()
	prob := mo.MustInstantiate(m)
	found := false
	for v := 0; v < m.NumVars(); v++ {
		if m.VarName(bdd.Var(v)) == "out.accept" {
			found = true
		}
	}
	if !found {
		t.Fatal("accepting list did not produce an out.accept variable")
	}
	if len(prob.Deps) != 1 {
		t.Fatalf("Deps = %d, want 1 (accept is a state function)", len(prob.Deps))
	}
}

// TestNFAChoiceBits checks that only nondeterministic machines get
// choice inputs.
func TestNFAChoiceBits(t *testing.T) {
	has := func(file, name string) bool {
		mo, err := Import(readSample(t, file))
		if err != nil {
			t.Fatal(err)
		}
		m := bdd.New()
		mo.MustInstantiate(m)
		for v := 0; v < m.NumVars(); v++ {
			if m.VarName(bdd.Var(v)) == name {
				return true
			}
		}
		return false
	}
	if !has("worker.fsm", "ch0") {
		t.Error("nfa with two alternatives lacks a choice bit")
	}
	if has("lift.fsm", "ch0") {
		t.Error("dfa grew a choice bit")
	}
}

// TestParseStaticErrors rejects malformed machines with field context.
func TestParseStaticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown-type",
			`{"type":"pushdown","states":["a"],"inputs":["x"],"initial":"a"}`,
			`type: unknown machine type "pushdown"`},
		{"no-states",
			`{"type":"dfa","states":[],"inputs":["x"],"initial":"a"}`,
			"states: machine has no states"},
		{"empty-state-name",
			`{"type":"dfa","states":["a",""],"inputs":["x"],"initial":"a"}`,
			"states[1]: empty state name"},
		{"duplicate-state",
			`{"type":"dfa","states":["a","b","a"],"inputs":["x"],"initial":"a"}`,
			`states[2]: duplicate state "a"`},
		{"no-inputs",
			`{"type":"dfa","states":["a"],"inputs":[],"initial":"a"}`,
			"inputs: machine has no input symbols"},
		{"duplicate-symbol",
			`{"type":"dfa","states":["a"],"inputs":["x","x"],"initial":"a"}`,
			`inputs[1]: duplicate symbol "x"`},
		{"no-initial",
			`{"type":"dfa","states":["a"],"inputs":["x"]}`,
			"initial: no initial state"},
		{"unknown-initial",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"z"}`,
			`initial: unknown state "z"`},
		{"bad-transition-from",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","transitions":[{"from":"z","on":"x","to":"a"}]}`,
			`transitions[0].from: unknown state "z"`},
		{"bad-transition-to",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","transitions":[{"from":"a","on":"x","to":"z"}]}`,
			`transitions[0].to: unknown state "z"`},
		{"bad-transition-symbol",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","transitions":[{"from":"a","on":"y","to":"a"}]}`,
			`transitions[0].on: unknown input symbol "y"`},
		{"nondeterministic-dfa",
			`{"type":"dfa","states":["a","b"],"inputs":["x"],"initial":"a","transitions":[{"from":"a","on":"x","to":"a"},{"from":"a","on":"x","to":"b"}]}`,
			`transitions[1]: duplicate transition from "a" on "x" (dfa machines are deterministic)`},
		{"edge-output-on-dfa",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","outputs":["o"],"transitions":[{"from":"a","on":"x","to":"a","out":["o"]}]}`,
			"transitions[0].out: edge outputs are only valid for mealy machines"},
		{"unknown-edge-output",
			`{"type":"mealy","states":["a"],"inputs":["x"],"initial":"a","transitions":[{"from":"a","on":"x","to":"a","out":["o"]}]}`,
			`transitions[0].out: unknown output "o"`},
		{"moore-map-on-dfa",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","outputs":["o"],"moore":{"a":["o"]}}`,
			"moore: per-state output map is only valid for moore machines"},
		{"moore-unknown-state",
			`{"type":"moore","states":["a"],"inputs":["x"],"initial":"a","outputs":["o"],"moore":{"z":["o"]}}`,
			"moore.z: unknown state"},
		{"moore-unknown-output",
			`{"type":"moore","states":["a"],"inputs":["x"],"initial":"a","moore":{"a":["o"]}}`,
			`moore.a: unknown output "o"`},
		{"illegal-output-name",
			`{"type":"mealy","states":["a"],"inputs":["x"],"initial":"a","outputs":["bad name"]}`,
			`outputs[0]: "bad name" is not a legal output name`},
		{"duplicate-output",
			`{"type":"mealy","states":["a"],"inputs":["x"],"initial":"a","outputs":["o","o"]}`,
			`outputs[1]: duplicate output "o"`},
		{"unknown-accepting",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","accepting":["z"]}`,
			`accepting[0]: unknown state "z"`},
		{"accept-collision",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","outputs":["accept"],"accepting":["a"]}`,
			`output name "accept" is already declared`},
		{"unknown-never-state",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","property":{"never":["z"]}}`,
			`property.never[0]: unknown state "z"`},
		{"unknown-never-output",
			`{"type":"dfa","states":["a"],"inputs":["x"],"initial":"a","property":{"never_output":["o"]}}`,
			`property.never_output[0]: unknown output "o"`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted malformed input, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSyntaxErrorLocation checks that JSON syntax errors report the
// line and column of the offending byte.
func TestSyntaxErrorLocation(t *testing.T) {
	src := "{\n  \"type\": \"dfa\",\n  \"states\": oops\n}"
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not locate line 3", err)
	}
}

// TestSampleCorpus imports every committed sample — the importer half
// of the CI zoo-smoke job.
func TestSampleCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.fsm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("sample corpus has %d machines, want >= 5", len(paths))
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := Import(b)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if _, err := mo.Instantiate(bdd.New()); err != nil {
			t.Fatalf("%s: instantiate: %v", p, err)
		}
	}
}
