package fsmtk

import (
	"fmt"

	"repro/internal/ir"
)

// bits returns the number of bits needed to encode n distinct codes
// (0 for n <= 1).
func bits(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// Compile lowers a validated File to the model IR. Variable order:
// input-symbol bits, NFA choice bits, state bits, then output
// observation bits. It panics only on internal inconsistency (a File
// that passed validate always compiles); use Import for end-to-end
// error handling.
func (f *File) Compile() *ir.Model {
	nStates, nSyms := len(f.States), len(f.Inputs)
	sb := bits(nStates)
	if sb == 0 {
		sb = 1 // the IR needs at least one state bit
	}
	ib := bits(nSyms)

	stateIdx := map[string]uint64{}
	for i, s := range f.States {
		stateIdx[s] = uint64(i)
	}
	symIdx := map[string]uint64{}
	for i, s := range f.Inputs {
		symIdx[s] = uint64(i)
	}

	// Group transitions by (from, on) in first-appearance order; only an
	// NFA has groups with more than one alternative.
	type group struct {
		from, on uint64
		alts     []Transition
	}
	var groups []*group
	byKey := map[[2]string]*group{}
	for _, t := range f.Trans {
		key := [2]string{t.From, t.On}
		g := byKey[key]
		if g == nil {
			g = &group{from: stateIdx[t.From], on: symIdx[t.On]}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.alts = append(g.alts, t)
	}
	maxAlt := 1
	for _, g := range groups {
		if len(g.alts) > maxAlt {
			maxAlt = len(g.alts)
		}
	}
	cb := bits(maxAlt)

	name := f.Name
	if name == "" {
		name = "fsm"
	}
	b := ir.NewBuilder(name)
	b.Param("type", f.Type)
	b.ParamInt("fsm-states", nStates)
	b.ParamInt("fsm-symbols", nSyms)

	var inW, chW ir.Word
	if ib > 0 {
		inW = ir.FromNodes(b.Inputs("in", ib))
	}
	if cb > 0 {
		chW = ir.FromNodes(b.Inputs("ch", cb))
	}

	encInit := stateIdx[f.Initial]
	qBits := make([]*ir.Node, sb)
	for i := range qBits {
		qBits[i] = b.State(fmt.Sprintf("q%d", i), encInit&(1<<uint(i)) != 0)
	}
	cur := ir.FromNodes(qBits)

	// Exclude the unused input codes when the alphabet is not a power
	// of two — the log encoding's type constraint.
	if ib > 0 && nSyms != 1<<uint(ib) {
		b.Constrain(ir.LtW(inW, ir.ConstWord(uint64(nSyms), ib)))
	}

	symEq := func(code uint64) *ir.Node {
		if ib == 0 {
			return ir.Bool(true) // single-symbol alphabet
		}
		return ir.EqConstW(inW, code)
	}

	// Next-state word: unspecified (state, symbol) pairs stutter; an
	// NFA's choice bits select among alternatives, clamping out-of-range
	// codes to the last one.
	next := cur
	for _, g := range groups {
		tgt := ir.ConstWord(stateIdx[g.alts[len(g.alts)-1].To], sb)
		for j := len(g.alts) - 2; j >= 0; j-- {
			tgt = ir.MuxW(ir.EqConstW(chW, uint64(j)), ir.ConstWord(stateIdx[g.alts[j].To], sb), tgt)
		}
		cond := ir.And(ir.EqConstW(cur, g.from), symEq(g.on))
		next = ir.MuxW(cond, tgt, next)
	}
	for i, q := range qBits {
		b.SetNext(q, next.Bit(i))
	}

	// stateSetEq builds "word encodes a member of set" predicates.
	stateSetEq := func(w ir.Word, set []string) *ir.Node {
		in := ir.Bool(false)
		for _, s := range set {
			in = ir.Or(in, ir.EqConstW(w, stateIdx[s]))
		}
		return in
	}
	member := func(set []string, s string) bool {
		for _, x := range set {
			if x == s {
				return true
			}
		}
		return false
	}

	// Outputs become observation state variables `out.<name>`. A Moore
	// output (and the synthetic "accept" output) is a function of the
	// control state — declared as a functional dependency, the paper's
	// FD optimization. A Mealy output latches the edge taken, so it
	// depends on the inputs and carries no dependency.
	outNode := map[string]*ir.Node{}
	type mooreOut struct {
		name string
		set  []string
	}
	var pending []mooreOut
	for _, o := range f.Outputs {
		if f.Type == TypeMealy {
			v := b.State("out."+o, false)
			outNode[o] = v
			fire := ir.Bool(false)
			for _, t := range f.Trans {
				if member(t.Out, o) {
					fire = ir.Or(fire, ir.And(ir.EqConstW(cur, stateIdx[t.From]), symEq(symIdx[t.On])))
				}
			}
			b.SetNext(v, fire)
			continue
		}
		var set []string
		for _, s := range f.States {
			if member(f.Moore[s], o) {
				set = append(set, s)
			}
		}
		pending = append(pending, mooreOut{o, set})
	}
	if len(f.Accepting) > 0 {
		pending = append(pending, mooreOut{"accept", f.Accepting})
	}
	for _, mo := range pending {
		v := b.State("out."+mo.name, member(mo.set, f.Initial))
		outNode[mo.name] = v
		b.SetNext(v, stateSetEq(next, mo.set))
		b.Dep(v, stateSetEq(cur, mo.set))
	}

	// Safety templates: one good conjunct per named state and output —
	// the implicit conjunction the engines verify. No property at all
	// compiles to the trivial goal.
	goods := 0
	if f.Property != nil {
		for _, s := range f.Property.Never {
			b.Good(ir.Not(ir.EqConstW(cur, stateIdx[s])))
			goods++
		}
		for _, o := range f.Property.NeverOutput {
			b.Good(ir.Not(outNode[o]))
			goods++
		}
	}
	if goods == 0 {
		b.Goal(ir.Bool(true))
	}
	return b.Build()
}
