// Package fsmtk imports FSM-toolkit machine descriptions — the compact
// `.fsm` JSON format for DFA/NFA/Moore/Mealy machines — and compiles
// them into the manager-independent model IR (internal/ir), opening the
// verifier to externally-authored automata (ROADMAP item 3).
//
// A `.fsm` file is a single JSON object:
//
//	{
//	  "name":   "turnstile",
//	  "type":   "dfa",                  // dfa | nfa | moore | mealy
//	  "states": ["locked", "unlocked"],
//	  "inputs": ["coin", "push"],       // the input alphabet
//	  "initial": "locked",
//	  "accepting": ["unlocked"],        // optional: becomes output "accept"
//	  "outputs": ["open"],              // optional observation outputs
//	  "moore":  {"unlocked": ["open"]}, // moore: outputs asserted per state
//	  "transitions": [
//	    {"from": "locked", "on": "coin", "to": "unlocked"},
//	    {"from": "unlocked", "on": "push", "to": "locked", "out": ["open"]}
//	  ],
//	  "property": {                     // optional safety templates
//	    "never": ["error"],             // control states never reached
//	    "never_output": ["alarm"]       // outputs never asserted
//	  }
//	}
//
// Compilation log-encodes both the state set and the input alphabet:
// ceil(log2(n)) input bits (with a type constraint excluding the unused
// codes when n is not a power of two), ceil(log2(k)) state bits. An NFA
// additionally gets choice input bits that select among the
// alternatives of a nondeterministic (state, symbol) pair; choice codes
// beyond the alternative count select the last alternative, so every
// input valuation resolves to a successor. Unspecified (state, symbol)
// pairs stutter (the machine holds its state). Outputs are observation
// variables: extra state bits that latch the machine's output, with a
// declared functional dependency for Moore outputs (a Moore output is a
// function of the control state, which is exactly the paper's
// functional-dependency optimization).
//
// Property templates lower to the implicit conjunction the engines
// verify: one good conjunct per "never" state and per "never_output"
// output. A file with no property compiles to the trivial goal (useful
// for importer smoke tests and reachability-only runs).
package fsmtk

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ir"
)

// MaxStates mirrors the FSM-toolkit format limit.
const MaxStates = 65536

// File is the decoded form of a `.fsm` JSON document.
type File struct {
	Name      string              `json:"name"`
	Type      string              `json:"type"`
	States    []string            `json:"states"`
	Inputs    []string            `json:"inputs"`
	Initial   string              `json:"initial"`
	Accepting []string            `json:"accepting,omitempty"`
	Outputs   []string            `json:"outputs,omitempty"`
	Moore     map[string][]string `json:"moore,omitempty"`
	Trans     []Transition        `json:"transitions"`
	Property  *Property           `json:"property,omitempty"`
}

// Transition is one edge of the machine.
type Transition struct {
	From string   `json:"from"`
	On   string   `json:"on"`
	To   string   `json:"to"`
	Out  []string `json:"out,omitempty"` // mealy: outputs asserted on this edge
}

// Property holds the safety-property templates.
type Property struct {
	Never       []string `json:"never,omitempty"`
	NeverOutput []string `json:"never_output,omitempty"`
}

// Machine types.
const (
	TypeDFA   = "dfa"
	TypeNFA   = "nfa"
	TypeMoore = "moore"
	TypeMealy = "mealy"
)

// Parse decodes and statically validates a `.fsm` document. Errors
// carry context: the line/column of a JSON syntax error, or the field
// path of a semantic one (e.g. `transitions[3].to`).
func Parse(src []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(src, &f); err != nil {
		switch e := err.(type) {
		case *json.SyntaxError:
			line, col := lineCol(src, e.Offset)
			return nil, fmt.Errorf("fsm: line %d, column %d: %v", line, col, e)
		case *json.UnmarshalTypeError:
			line, col := lineCol(src, e.Offset)
			field := e.Field
			if field == "" {
				field = "document"
			}
			return nil, fmt.Errorf("fsm: line %d, column %d: field %s: cannot decode %s", line, col, field, e.Value)
		}
		return nil, fmt.Errorf("fsm: %v", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Import parses src and compiles it to IR in one step.
func Import(src []byte) (*ir.Model, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return f.Compile(), nil
}

func lineCol(src []byte, off int64) (int, int) {
	line, col := 1, 1
	for i := int64(0); i < off && i < int64(len(src)); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// outputName checks that an output label survives as an IR variable
// name (outputs become `out.<name>` observation variables).
func outputName(name string) bool {
	return name != "" && !strings.ContainsAny(name, " \t\n\r();") && !strings.HasPrefix(name, "$")
}

func (f *File) validate() error {
	switch f.Type {
	case TypeDFA, TypeNFA, TypeMoore, TypeMealy:
	default:
		return fmt.Errorf("fsm: type: unknown machine type %q (want dfa, nfa, moore or mealy)", f.Type)
	}

	if len(f.States) == 0 {
		return fmt.Errorf("fsm: states: machine has no states")
	}
	if len(f.States) > MaxStates {
		return fmt.Errorf("fsm: states: %d states exceed the format limit of %d", len(f.States), MaxStates)
	}
	states := map[string]bool{}
	for i, s := range f.States {
		if s == "" {
			return fmt.Errorf("fsm: states[%d]: empty state name", i)
		}
		if states[s] {
			return fmt.Errorf("fsm: states[%d]: duplicate state %q", i, s)
		}
		states[s] = true
	}

	if len(f.Inputs) == 0 {
		return fmt.Errorf("fsm: inputs: machine has no input symbols")
	}
	symbols := map[string]bool{}
	for i, s := range f.Inputs {
		if s == "" {
			return fmt.Errorf("fsm: inputs[%d]: empty input symbol", i)
		}
		if symbols[s] {
			return fmt.Errorf("fsm: inputs[%d]: duplicate symbol %q", i, s)
		}
		symbols[s] = true
	}

	if f.Initial == "" {
		return fmt.Errorf("fsm: initial: no initial state")
	}
	if !states[f.Initial] {
		return fmt.Errorf("fsm: initial: unknown state %q", f.Initial)
	}

	outputs := map[string]bool{}
	for i, o := range f.Outputs {
		if !outputName(o) {
			return fmt.Errorf("fsm: outputs[%d]: %q is not a legal output name", i, o)
		}
		if outputs[o] {
			return fmt.Errorf("fsm: outputs[%d]: duplicate output %q", i, o)
		}
		outputs[o] = true
	}
	for i, s := range f.Accepting {
		if !states[s] {
			return fmt.Errorf("fsm: accepting[%d]: unknown state %q", i, s)
		}
	}
	if len(f.Accepting) > 0 && outputs["accept"] {
		return fmt.Errorf(`fsm: accepting: output name "accept" is already declared`)
	}

	if len(f.Moore) > 0 && f.Type != TypeMoore {
		return fmt.Errorf("fsm: moore: per-state output map is only valid for moore machines")
	}
	for s, outs := range f.Moore {
		if !states[s] {
			return fmt.Errorf("fsm: moore.%s: unknown state", s)
		}
		for _, o := range outs {
			if !outputs[o] {
				return fmt.Errorf("fsm: moore.%s: unknown output %q", s, o)
			}
		}
	}

	seen := map[[2]string]bool{}
	for i, t := range f.Trans {
		if !states[t.From] {
			return fmt.Errorf("fsm: transitions[%d].from: unknown state %q", i, t.From)
		}
		if !states[t.To] {
			return fmt.Errorf("fsm: transitions[%d].to: unknown state %q", i, t.To)
		}
		if !symbols[t.On] {
			return fmt.Errorf("fsm: transitions[%d].on: unknown input symbol %q", i, t.On)
		}
		key := [2]string{t.From, t.On}
		if seen[key] && f.Type != TypeNFA {
			return fmt.Errorf("fsm: transitions[%d]: duplicate transition from %q on %q (%s machines are deterministic)",
				i, t.From, t.On, f.Type)
		}
		seen[key] = true
		if len(t.Out) > 0 && f.Type != TypeMealy {
			return fmt.Errorf("fsm: transitions[%d].out: edge outputs are only valid for mealy machines", i)
		}
		for _, o := range t.Out {
			if !outputs[o] {
				return fmt.Errorf("fsm: transitions[%d].out: unknown output %q", i, o)
			}
		}
	}

	if f.Property != nil {
		for i, s := range f.Property.Never {
			if !states[s] {
				return fmt.Errorf("fsm: property.never[%d]: unknown state %q", i, s)
			}
		}
		for i, o := range f.Property.NeverOutput {
			if !outputs[o] && !(o == "accept" && len(f.Accepting) > 0) {
				return fmt.Errorf("fsm: property.never_output[%d]: unknown output %q", i, o)
			}
		}
	}
	return nil
}
