package core

import (
	"math"
	"math/bits"

	"repro/internal/bdd"
)

// Section III.A: the evaluation and simplification policy. Given a
// function expressed as an implicit conjunction X_1 ∧ … ∧ X_n, find an
// equivalent implicit conjunction with smaller overall size.

// DefaultGrowThreshold is the paper's GrowThreshold of 1.5: a pairwise
// conjunction is evaluated only while the best available ratio
// BDDSize(P_ij)/BDDSize(X_i, X_j) stays at or below this value. Values
// below 1 hold size down aggressively but get caught in local minima;
// values above 1 permit bounded growth to escape them (the paper notes
// any threshold > 1 could in theory let BDDs grow exponentially).
const DefaultGrowThreshold = 1.5

// Options configures the policy. The zero value selects the paper's
// settings (GrowThreshold 1.5, Restrict as the simplification operator).
type Options struct {
	// GrowThreshold is the greedy loop's exit ratio; 0 means
	// DefaultGrowThreshold.
	GrowThreshold float64

	// Simplifier selects Restrict (paper) or Constrain (ablation).
	Simplifier bdd.Simplifier

	// SkipSimplify disables the cross-simplification pass, leaving only
	// the greedy conjunction evaluation (ablation).
	SkipSimplify bool

	// SkipEvaluate disables the greedy conjunction evaluation, leaving
	// only cross-simplification (ablation).
	SkipEvaluate bool

	// PairBudgetFactor, when positive, bounds the construction of each
	// pairwise conjunction P_ij of Figure 1 at
	// factor × BDDSize(X_i, X_j) freshly allocated nodes — the
	// abort-on-size capability the paper's Section V asks for. A pair
	// whose conjunction overflows the bound can never have a useful
	// ratio, so it is recorded as unmergeable and skipped. Zero
	// disables the bound (the paper's baseline behaviour: every
	// pairwise conjunction is built in full).
	PairBudgetFactor float64

	// Stats, when non-nil, accumulates the greedy evaluation's effort
	// counters (see EvalStats). The same determinism contract as for the
	// output applies: with PairBudgetFactor == 0 the counters are
	// identical whatever Workers is set to. The counters are per run:
	// the sink is never reset here, so a sink reused across independent
	// evaluations must be zeroed between them (verify.RunContext does
	// this for its engines).
	Stats *EvalStats

	// OnMerge, when non-nil, is invoked for every merge the greedy loop
	// applies, with the conjunct indices (i, j) of the replaced pair
	// (j is dropped into i). It is the public form of the package's
	// white-box test hooks, used by the verify layer's Observer.
	OnMerge func(i, j int)

	// Workers selects parallel pair scoring for the greedy evaluation
	// (0 = sequential, the default; negative = GOMAXPROCS). Because a
	// bdd.Manager is not safe for concurrent use, each worker gets its
	// own Manager: live conjuncts ship across with bdd.TransferAll, the
	// candidate conjunctions P_ij are built and sized concurrently, and
	// only the winning merge of each round transfers back. BDD
	// canonicity makes worker-side sizes identical to main-manager
	// sizes, so with PairBudgetFactor == 0 the parallel result is
	// bit-identical (pointwise-equal Refs) to the sequential one; see
	// the determinism note on EvaluateGreedy.
	Workers int

	// SharedManager selects the zero-hand-off parallel scoring path:
	// workers score and merge pairs directly against the list's own
	// Manager, with no per-worker mirrors and no bdd.Transfer (see
	// greedy_shared.go). It takes effect only when Workers != 0, the
	// list's Manager is in shared-memory concurrent mode (bdd.NewShared),
	// and PairBudgetFactor is 0 (bdd.AndBounded mutates the manager-wide
	// node limit and so cannot run concurrently); otherwise evaluation
	// falls back to the per-worker-manager path, which remains fully
	// supported — the differential fuzzer cross-checks the two.
	SharedManager bool
}

func (o Options) threshold() float64 {
	if o.GrowThreshold == 0 {
		return DefaultGrowThreshold
	}
	return o.GrowThreshold
}

// SimplifyAndEvaluate applies the full Section III.A policy to the list:
// cross-simplification with the selected operator, then the greedy
// pairwise evaluation of Figure 1. The input list is not modified.
func SimplifyAndEvaluate(l List, opt Options) List {
	out := l.Clone()
	out.Normalize()
	if out.IsFalse() || out.IsTrue() {
		return out
	}
	if !opt.SkipSimplify {
		out = CrossSimplify(out, opt.Simplifier)
		if out.IsFalse() || out.IsTrue() {
			return out
		}
	}
	if !opt.SkipEvaluate {
		out = EvaluateGreedy(out, opt)
	}
	return out
}

// CrossSimplify simplifies each conjunct by every other conjunct that is
// smaller than it ("Simplifying a small BDD by a large BDD, in our
// experience, does little good" — Section III.A). Each conjunct is a care
// set for the others: where any X_j is false the whole conjunction is
// false, so X_i may take arbitrary values there.
func CrossSimplify(l List, simp bdd.Simplifier) List {
	m := l.M
	cs := append([]bdd.Ref(nil), l.Conjuncts...)
	sizes := make([]int, len(cs))
	for i, c := range cs {
		sizes[i] = m.Size(c)
	}
	for i := range cs {
		m.CheckBudget() // simplification may shrink nodes and never alloc
		f := cs[i]
		for j := range cs {
			if i == j || sizes[j] >= sizes[i] {
				continue
			}
			f = m.Simplify(simp, f, cs[j])
			if f == bdd.Zero {
				return NewList(m, bdd.Zero)
			}
		}
		cs[i] = f
	}
	return NewList(m, cs...)
}

// CrossSimplifyPositional simplifies the conjuncts in place, preserving
// the length and order of the slice — the fixed-shape discipline of the
// original CAV'93 ICI method, whose fast termination test compares lists
// positionally. Updates are sequential (each simplification sees the
// current values of the other conjuncts), which keeps the conjunction
// semantics exact; see the soundness note in the termination test.
func CrossSimplifyPositional(m *bdd.Manager, cs []bdd.Ref, simp bdd.Simplifier) {
	for i := range cs {
		m.CheckBudget()
		f := cs[i]
		for j := range cs {
			if i == j || f.IsConst() {
				continue
			}
			if cs[j].IsConst() || m.Size(cs[j]) >= m.Size(f) {
				continue
			}
			f = m.Simplify(simp, f, cs[j])
		}
		cs[i] = f
	}
}

// EvaluateGreedy is the greedy algorithm of Figure 1: repeatedly replace
// the pair of conjuncts whose explicit conjunction gives the best
// size ratio, until the best remaining ratio exceeds GrowThreshold.
//
// The implementation maintains the best pair incrementally: an indexed
// pair table plus a min-heap keyed on (ratio, i, j), so each merge
// invalidates and rescores only the one affected row instead of
// rescanning the full O(n²) table. Candidate selection breaks ties on
// the smallest (i, j), which makes the result deterministic and equal to
// the historical full-rescan loop (kept as evaluateGreedyRescan for
// crosschecks and benchmarks). With opt.Workers != 0 the pair scoring
// runs on a worker pool of per-worker Managers; the output is
// bit-identical to the sequential run except that a positive
// PairBudgetFactor may classify borderline pairs differently (the
// allocation-counting bound observes each worker's fresh Manager, not
// the accumulated main one) — semantics are preserved either way.
func EvaluateGreedy(l List, opt Options) List {
	m := l.M
	cs := append([]bdd.Ref(nil), l.Conjuncts...)
	if len(cs) < 2 {
		return NewList(m, cs...)
	}
	var sc pairScorer
	switch {
	case opt.Workers != 0 && opt.SharedManager && m.IsShared() && opt.PairBudgetFactor == 0:
		sc = newSharedScorer(m, cs, opt)
	case opt.Workers != 0:
		sc = newParScorer(m, cs, opt)
	default:
		sc = newSeqScorer(m, cs, opt)
	}
	return greedyMerge(m, cs, opt, sc)
}

// evaluateGreedyRescan is the original (seed) implementation of Figure 1:
// a full O(n²) rescan of the pair table per merge, with an O(|table|)
// map walk to invalidate stale rows. It is retained verbatim as the
// reference implementation — tests assert that the incremental heap path
// and the parallel path reproduce its output Ref-for-Ref, and
// BenchmarkEvaluatePolicy measures both against it.
func evaluateGreedyRescan(l List, opt Options) List {
	m := l.M
	cs := append([]bdd.Ref(nil), l.Conjuncts...)
	if len(cs) < 2 {
		return NewList(m, cs...)
	}
	threshold := opt.threshold()

	// Pairwise conjunction table. P[i][j] (i<j) caches X_i ∧ X_j, or
	// records that the conjunction overflowed the pair budget.
	// Invalidated rows/columns are recomputed after each replacement.
	type pairKey struct{ i, j int }
	type pairVal struct {
		p  bdd.Ref
		ok bool
	}
	pair := make(map[pairKey]pairVal)
	conj := func(i, j int) (bdd.Ref, bool) {
		if i > j {
			i, j = j, i
		}
		k := pairKey{i, j}
		if v, ok := pair[k]; ok {
			return v.p, v.ok
		}
		var v pairVal
		if opt.PairBudgetFactor > 0 {
			budget := int(opt.PairBudgetFactor*float64(pairDenominator(m.SharedSize(cs[i], cs[j])))) + 64
			v.p, v.ok = m.AndBounded(cs[i], cs[j], budget)
		} else {
			v.p, v.ok = m.And(cs[i], cs[j]), true
		}
		pair[k] = v
		return v.p, v.ok
	}

	alive := make([]bool, len(cs))
	for i := range alive {
		alive[i] = true
	}
	liveCount := len(cs)

	for liveCount >= 2 {
		bestI, bestJ := -1, -1
		bestRatio := math.Inf(1)
		for i := 0; i < len(cs); i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < len(cs); j++ {
				if !alive[j] {
					continue
				}
				p, ok := conj(i, j)
				if !ok {
					continue // conjunction overflowed the pair budget
				}
				ratio := float64(m.Size(p)) / float64(pairDenominator(m.SharedSize(cs[i], cs[j])))
				if ratio < bestRatio {
					bestRatio, bestI, bestJ = ratio, i, j
				}
			}
		}
		if bestI < 0 || bestRatio > threshold {
			break
		}
		// Replace X_i and X_j with their conjunction; drop X_j.
		merged, _ := conj(bestI, bestJ)
		cs[bestI] = merged
		alive[bestJ] = false
		liveCount--
		// Update P to reflect the modified conjunct list: every pair
		// involving bestI or bestJ is stale.
		for k := range pair {
			if k.i == bestI || k.j == bestI || k.i == bestJ || k.j == bestJ {
				delete(pair, k)
			}
		}
		if merged == bdd.Zero {
			return NewList(m, bdd.Zero)
		}
	}

	out := cs[:0:0]
	for i, c := range cs {
		if alive[i] {
			out = append(out, c)
		}
	}
	return NewList(m, out...)
}

// OptimalPairwiseCover computes the exact minimum-cost cover of the
// conjuncts by singletons and pairs — the object of the paper's Theorem 2
// (there solved by minimum-weight matching; here, since lists are short,
// by exact dynamic programming over subsets). Costs are plain BDD sizes,
// which — as the paper points out — ignore node sharing; the function
// exists to quantify how much the greedy heuristic loses against the
// "optimum" (ablation study).
//
// It returns the groups (index sets of size 1 or 2) and the total cost.
// It panics if the list has more than 20 conjuncts.
func OptimalPairwiseCover(l List) (groups [][]int, cost int) {
	m := l.M
	n := len(l.Conjuncts)
	if n == 0 {
		return nil, 0
	}
	if n > 20 {
		panic("core: OptimalPairwiseCover limited to 20 conjuncts")
	}

	single := make([]int, n)
	for i, c := range l.Conjuncts {
		single[i] = m.Size(c)
	}
	pairCost := make([][]int, n)
	for i := range pairCost {
		pairCost[i] = make([]int, n)
		for j := i + 1; j < n; j++ {
			pairCost[i][j] = m.Size(m.And(l.Conjuncts[i], l.Conjuncts[j]))
		}
	}

	const inf = math.MaxInt / 2
	full := 1 << uint(n)
	dp := make([]int, full)
	choice := make([]int32, full) // encodes (i, j) of the chosen group; j == i for singleton
	for mask := 1; mask < full; mask++ {
		dp[mask] = inf
		i := lowestBit(mask)
		// Singleton {i}.
		if c := dp[mask&^(1<<uint(i))] + single[i]; c < dp[mask] {
			dp[mask] = c
			choice[mask] = int32(i)<<8 | int32(i)
		}
		// Pairs {i, j}.
		for j := i + 1; j < n; j++ {
			if mask&(1<<uint(j)) == 0 {
				continue
			}
			if c := dp[mask&^(1<<uint(i))&^(1<<uint(j))] + pairCost[i][j]; c < dp[mask] {
				dp[mask] = c
				choice[mask] = int32(i)<<8 | int32(j)
			}
		}
	}

	mask := full - 1
	for mask != 0 {
		ch := choice[mask]
		i, j := int(ch>>8), int(ch&0xff)
		if i == j {
			groups = append(groups, []int{i})
			mask &^= 1 << uint(i)
		} else {
			groups = append(groups, []int{i, j})
			mask &^= 1<<uint(i) | 1<<uint(j)
		}
	}
	return groups, dp[full-1]
}

func lowestBit(mask int) int {
	return bits.TrailingZeros(uint(mask))
}

// ApplyCover evaluates the conjunctions prescribed by a cover, returning
// the resulting shorter list.
func ApplyCover(l List, groups [][]int) List {
	m := l.M
	out := make([]bdd.Ref, 0, len(groups))
	for _, g := range groups {
		acc := bdd.One
		for _, idx := range g {
			acc = m.And(acc, l.Conjuncts[idx])
		}
		out = append(out, acc)
	}
	return NewList(m, out...)
}
