package core

import (
	"repro/internal/bdd"
)

// Section III.B: the exact termination test. Deciding whether two
// implicitly conjoined lists X and Y represent the same function, without
// building the BDD for either conjunction:
//
//	X = Y          iff  X ⇒ Y and Y ⇒ X
//	X ⇒ Y          iff  for every Y_j:  X ⇒ Y_j
//	X ⇒ Y_j        iff  ¬X_1 ∨ … ∨ ¬X_n ∨ Y_j is a tautology
//
// The disjunction-tautology check proceeds through the paper's four
// steps: constants, complement/duplicate pairs, pairwise disjunction
// tautology (obtained for free via Theorem 3 by cross-simplifying), and
// finally Shannon expansion on the top variable of the first BDD with
// recursion on both cofactor lists. Exponential in the worst case;
// verification "should favor a method that is guaranteed correct, but
// possibly slow, over a method that is fast, but possibly wrong."

// TermStats accumulates effort counters for the exact test, reported in
// the ablation benchmarks and carried on verify.Result. The json tags
// match the icibench/v3 stats-block field names.
//
// The counters are per run: each call through a Termination adds to the
// sink, so a sink reused across independent runs must be zeroed between
// them — otherwise the totals silently accumulate, MaxSplitDepth becomes
// a cross-run max, and the bucket invariant below only holds for the
// running sum, not for any single run. verify.RunContext owns this reset
// for its engines; direct users of Termination reset their own sink.
type TermStats struct {
	TautCalls     int `json:"taut_calls"`      // disjunction-tautology invocations (incl. recursion)
	ShannonSplits int `json:"shannon_splits"`  // Step 4 expansions performed
	MaxSplitDepth int `json:"max_split_depth"` // deepest recursion reached

	// StepResolved buckets, by resolution stage, the disjTaut calls that
	// settled WITHOUT a Shannon expansion:
	//
	//	[0] steps 1-2: a constant-True disjunct, a complementary pair,
	//	    or everything dropped as False/duplicate
	//	[1] step 3: the Theorem-3 cross-simplification exposed the
	//	    verdict (re-running steps 1-2 on the simplified list)
	//	[2] a single surviving non-constant disjunct — which cannot be
	//	    a tautology — short-circuiting between steps 3 and 4
	//
	// A call that DID expand is counted in ShannonSplits and resolves
	// through its recursive children, each of which lands in a bucket of
	// its own; Step-4 recursions that bottom out via steps 1-2 therefore
	// land in [0], not in a "step 4" bucket. For every run:
	//
	//	StepResolved[0] + StepResolved[1] + StepResolved[2] + ShannonSplits == TautCalls
	StepResolved [3]int `json:"step_resolved"`
}

// Resolved returns the number of tautology calls settled without a
// Shannon expansion — the sum of the StepResolved buckets. By the
// invariant above, TautCalls - Resolved() == ShannonSplits.
func (s TermStats) Resolved() int {
	return s.StepResolved[0] + s.StepResolved[1] + s.StepResolved[2]
}

// VarChoice selects the Shannon-expansion variable of Step 4 — the
// heuristic knob the paper's Section V proposes experimenting with
// ("choosing the best variable to use for cofactoring").
type VarChoice int

const (
	// VarTopmost cofactors on the topmost variable across the list.
	// This coincides with the paper's "top variable of the first BDD"
	// whenever that BDD owns the top, and refines it otherwise (a BDD
	// never branches on anything above its own top, so the topmost
	// variable admits constant-time cofactoring).
	VarTopmost VarChoice = iota

	// VarMostCommonTop cofactors on the variable that is the top of the
	// largest number of disjuncts, splitting the most BDDs at once.
	// Cofactors of BDDs whose top sits elsewhere are computed by a full
	// (memoized) cofactor traversal.
	VarMostCommonTop
)

// Termination bundles the manager and options of the exact test.
type Termination struct {
	// M is the BDD manager the lists live on.
	M *bdd.Manager

	// Simplifier selects the BDDSimplify operator used by Step 3 via
	// Theorem 3 (Restrict in the paper).
	Simplifier bdd.Simplifier

	// SkipStep3 disables the Theorem-3 cross-simplification, falling
	// straight through to Shannon expansion (ablation).
	SkipStep3 bool

	// VarChoice selects the Step 4 cofactoring variable.
	VarChoice VarChoice

	// Stats, if non-nil, accumulates effort counters. The sink is not
	// reset here: see the TermStats per-run contract.
	Stats *TermStats
}

// NewTermination returns the paper-default exact test on m.
func NewTermination(m *bdd.Manager) Termination {
	return Termination{M: m, Simplifier: bdd.UseRestrict}
}

// ListsEqual reports whether the two implicit conjunctions represent the
// same set. This is the exact termination test the traversal uses to
// detect convergence of the G_i sequence.
func (tt Termination) ListsEqual(x, y List) bool {
	return tt.ListImplies(x, y) && tt.ListImplies(y, x)
}

// ListImplies reports whether ∧x ⇒ ∧y. Since the traversal sequences are
// monotonic, checking a single implication suffices for termination —
// the optimization the paper mentions but leaves unexploited; the
// traversal engines expose both modes.
func (tt Termination) ListImplies(x, y List) bool {
	if y.IsTrue() || x.IsFalse() {
		return true
	}
	// Base disjunction: the negated conjuncts of x. The buffer has room
	// for exactly one more element, so appending Y_j reuses it for every
	// check (the append result keeps base's backing array and base's
	// length stays put, truncating Y_{j-1} away). disjTaut never mutates
	// its input — filterStep12 copies — so the prefix survives each round.
	base := make([]bdd.Ref, 0, len(x.Conjuncts)+1)
	for _, c := range x.Conjuncts {
		base = append(base, c.Not())
	}
	for _, yj := range y.Conjuncts {
		ds := append(base, yj)
		if !tt.DisjunctionTautology(ds) {
			return false
		}
	}
	return true
}

// ListImpliesRef reports whether ∧x ⇒ y for a single right-hand BDD —
// the consecution-query shape of the PDR engine (is the clause's
// BackImage implied by the frame plus the clause?). It is ListImplies
// against the singleton list [y] without constructing the list.
func (tt Termination) ListImpliesRef(x List, y bdd.Ref) bool {
	if y == bdd.One || x.IsFalse() {
		return true
	}
	ds := make([]bdd.Ref, 0, len(x.Conjuncts)+1)
	for _, c := range x.Conjuncts {
		ds = append(ds, c.Not())
	}
	ds = append(ds, y)
	return tt.DisjunctionTautology(ds)
}

// DisjunctionTautology reports whether d_1 ∨ … ∨ d_k is the constant
// True, never building the BDD of the disjunction.
func (tt Termination) DisjunctionTautology(ds []bdd.Ref) bool {
	return tt.disjTaut(ds, 0)
}

func (tt Termination) disjTaut(ds []bdd.Ref, depth int) bool {
	m := tt.M
	m.CheckBudget() // cofactor recursion mostly hits cached nodes
	if tt.Stats != nil {
		tt.Stats.TautCalls++
		if depth > tt.Stats.MaxSplitDepth {
			tt.Stats.MaxSplitDepth = depth
		}
	}

	// Steps 1 and 2: constants, duplicates, complementary pairs.
	list, verdict := filterStep12(ds)
	if verdict != undecided {
		if tt.Stats != nil {
			tt.Stats.StepResolved[0]++
		}
		return verdict == taut
	}

	// Step 3 via Theorem 3: simplify each disjunct by the complement of
	// every other disjunct. If some pair d_i ∨ d_j is a tautology, the
	// simplification maps d_i to True, which the repeated Steps 1-2
	// catch. Simplification may also shrink disjuncts or expose new
	// duplicates, all profit.
	//
	// Soundness requires updating the list IN PLACE: replacing the
	// current d_i by Simplify(d_i, ¬d_j) only alters values inside the
	// current d_j, which the disjunction covers, so each atomic step
	// preserves the disjunction. Simplifying every element against a
	// snapshot of the original list is NOT sound — two overlapping
	// disjuncts could each delegate a point to the other's stale value
	// and both drop it. (This is the same simultaneity trap the paper's
	// Section V discusses for multi-BDD care sets.)
	if !tt.SkipStep3 && len(list) > 1 {
		cur := append([]bdd.Ref(nil), list...)
		for i := range cur {
			f := cur[i]
			for j := range cur {
				if i == j {
					continue
				}
				f = m.Simplify(tt.Simplifier, f, cur[j].Not())
				if f == bdd.One {
					break
				}
			}
			cur[i] = f
		}
		var v2 tautVerdict
		list, v2 = filterStep12(cur)
		if v2 != undecided {
			if tt.Stats != nil {
				tt.Stats.StepResolved[1]++
			}
			return v2 == taut
		}
	}

	// A single surviving non-constant disjunct cannot be a tautology.
	if len(list) == 1 {
		if tt.Stats != nil {
			tt.Stats.StepResolved[2]++
		}
		return false
	}

	// Step 4: Shannon expansion, then recursion on both cofactor lists.
	v := tt.chooseVar(list)
	if tt.Stats != nil {
		tt.Stats.ShannonSplits++
	}
	lo := make([]bdd.Ref, len(list))
	hi := make([]bdd.Ref, len(list))
	for i, d := range list {
		if d.IsConst() || m.Level(d) > v {
			lo[i], hi[i] = d, d // d cannot depend on a variable above its top
		} else if m.Level(d) == v {
			lo[i], hi[i] = m.Low(d), m.High(d)
		} else {
			lo[i], hi[i] = m.CofactorVar(d, bdd.Var(v))
		}
	}
	return tt.disjTaut(hi, depth+1) && tt.disjTaut(lo, depth+1)
}

type tautVerdict int

const (
	undecided tautVerdict = iota
	taut
	notTaut
)

// filterStep12 performs Steps 1 and 2: drops False and duplicate
// disjuncts, and decides immediately on a True disjunct or a
// complementary pair.
func filterStep12(ds []bdd.Ref) ([]bdd.Ref, tautVerdict) {
	seen := make(map[bdd.Ref]struct{}, len(ds))
	out := make([]bdd.Ref, 0, len(ds))
	for _, d := range ds {
		if d == bdd.One {
			return out, taut
		}
		if d == bdd.Zero {
			continue
		}
		if _, dup := seen[d]; dup {
			continue
		}
		if _, compl := seen[d.Not()]; compl {
			return out, taut
		}
		seen[d] = struct{}{}
		out = append(out, d)
	}
	if len(out) == 0 {
		return out, notTaut // empty disjunction is False
	}
	return out, undecided
}

// chooseVar picks the Step 4 Shannon-expansion level per VarChoice. The
// list is guaranteed non-empty and free of constants here.
func (tt Termination) chooseVar(list []bdd.Ref) uint32 {
	m := tt.M
	switch tt.VarChoice {
	case VarMostCommonTop:
		counts := make(map[uint32]int)
		for _, d := range list {
			counts[m.Level(d)]++
		}
		best, bestN := uint32(0), -1
		for l, n := range counts {
			if n > bestN || (n == bestN && l < best) {
				best, bestN = l, n
			}
		}
		return best
	default: // VarTopmost — the paper's choice, made exact
		v := m.Level(list[0])
		for _, d := range list[1:] {
			if l := m.Level(d); l < v {
				v = l
			}
		}
		return v
	}
}

// FastListsEqual is the inexact termination test of the original CAV'93
// method: positional Ref equality. Because single BDDs are canonical it
// never reports equality wrongly; it can, however, fail to detect that
// two differently-partitioned lists are equal — exactly the weakness the
// exact test above repairs.
func FastListsEqual(x, y List) bool {
	if len(x.Conjuncts) != len(y.Conjuncts) {
		return false
	}
	for i := range x.Conjuncts {
		if x.Conjuncts[i] != y.Conjuncts[i] {
			return false
		}
	}
	return true
}
