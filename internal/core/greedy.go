package core

import (
	"container/heap"

	"repro/internal/bdd"
)

// Incremental best-pair maintenance for the Figure 1 greedy loop.
//
// The seed implementation rescanned the full O(n²) pair table after
// every merge and invalidated stale entries by walking the whole cache
// map. Here the table is indexed (flat n×n arrays) and the best pair is
// kept in a min-heap keyed on (ratio, i, j): a merge of (i, j) bumps the
// invalidation stamp of the O(n) pairs touching i or j and rescores only
// the surviving row i. Stale heap entries are discarded lazily when
// popped (their stamp no longer matches the table). The tie-break on
// (ratio, then i, then j) reproduces exactly the winner the seed's
// lexicographic scan with strict improvement selected, so the two
// implementations are Ref-for-Ref identical.
//
// The pairScorer abstraction is the seam where the parallel layer plugs
// in: the driver below is identical for the sequential scorer (builds
// P_ij on the list's own Manager) and the parallel one (per-worker
// Managers, see greedy_par.go).

// pairScore is the scoring result for one candidate pair.
type pairScore struct {
	ratio float64 // BDDSize(P_ij) / BDDSize(X_i, X_j)
	ok    bool    // false: conjunction overflowed the pair budget
}

// pairDenominator guards the BDDSize(X_i, X_j) denominator of the Figure
// 1 ratio against degeneracy. Constant conjuncts normally never reach a
// scorer (NewList normalizes them away), but a list built directly —
// or a size accounting that counts internal nodes only — can make the
// denominator collapse, and a zero here turns the ratio into NaN/Inf:
// NaN compares inconsistently, so the heap path and the rescan reference
// would silently pick different merges. All three scorers (sequential,
// parallel, rescan) must use this same guard to stay Ref-identical.
func pairDenominator(den int) int {
	if den < 1 {
		return 1
	}
	return den
}

// pairScorer builds and sizes candidate conjunctions P_ij. The driver
// guarantees that merged/applyMerge are called only for a pair whose
// score is current (scored after the last change to either endpoint).
type pairScorer interface {
	// scoreAll scores the given (i, j) pairs (i < j) against the current
	// conjunct values, in order.
	scoreAll(pairs [][2]int) []pairScore
	// merged materializes the winning conjunction X_i ∧ X_j on the
	// list's own Manager.
	merged(i, j int) bdd.Ref
	// applyMerge records that cs[i] now holds the merged conjunct and
	// cs[j] was dropped.
	applyMerge(i, j int)
}

// Test hooks: when non-nil, greedyMerge reports every scored pair and
// every applied merge. Used by regression tests to prove that merged or
// dropped indices are never rescored. The public counter surface is
// Options.Stats / Options.OnMerge; these stay as the pair-identity seam
// for white-box tests.
var (
	greedyScoreHook func(i, j int)
	greedyMergeHook func(i, j int)
)

// EvalStats accumulates effort counters for the Figure 1 greedy
// evaluation. All increments happen in the shared greedyMerge driver —
// the scorers only build and size candidate conjunctions — so the
// counters are identical between sequential and parallel (Workers != 0)
// runs by construction, except that with a positive PairBudgetFactor a
// borderline pair may classify as overflowed on one path and not the
// other (the documented budget caveat), shifting counts between
// PairsScored-accepted and BudgetOverflow.
type EvalStats struct {
	// PairsScored counts candidate conjunctions P_ij built and sized
	// (the initial table plus one row rescore per merge).
	PairsScored int

	// MergesApplied counts Figure 1 replacements performed.
	MergesApplied int

	// BudgetOverflow counts pairs whose conjunction overflowed the
	// PairBudgetFactor bound and were recorded as unmergeable.
	BudgetOverflow int

	// Rounds counts passes of the merge loop, including the final pass
	// that found no candidate under the threshold.
	Rounds int
}

// pairCand is one heap entry. stamp must match the table's current stamp
// for the entry to be valid; stale entries are skipped on pop.
type pairCand struct {
	ratio float64
	i, j  int32
	stamp int32
}

// candHeap is a min-heap on (ratio, i, j).
type candHeap []pairCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].ratio != h[b].ratio {
		return h[a].ratio < h[b].ratio
	}
	if h[a].i != h[b].i {
		return h[a].i < h[b].i
	}
	return h[a].j < h[b].j
}
func (h candHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(pairCand)) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// greedyMerge runs the Figure 1 loop over cs (modified in place) using
// the given scorer for pair construction. Effort counters (opt.Stats)
// and merge notifications (opt.OnMerge) are emitted here, never in the
// scorers, so both counters and events are scorer-independent.
func greedyMerge(m *bdd.Manager, cs []bdd.Ref, opt Options, sc pairScorer) List {
	threshold := opt.threshold()
	n := len(cs)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	live := n

	stamp := make([]int32, n*n) // stamp[i*n+j] (i < j) invalidates heap entries
	cands := make(candHeap, 0, n*n/2)

	score := func(pairs [][2]int) {
		if greedyScoreHook != nil {
			for _, p := range pairs {
				greedyScoreHook(p[0], p[1])
			}
		}
		if opt.Stats != nil {
			opt.Stats.PairsScored += len(pairs)
		}
		scores := sc.scoreAll(pairs)
		for t, p := range pairs {
			if !scores[t].ok {
				if opt.Stats != nil {
					opt.Stats.BudgetOverflow++
				}
				continue // unmergeable: conjunction overflowed the budget
			}
			heap.Push(&cands, pairCand{
				ratio: scores[t].ratio,
				i:     int32(p[0]),
				j:     int32(p[1]),
				stamp: stamp[p[0]*n+p[1]],
			})
		}
	}

	// Initial table: every pair, lexicographic order (matching the
	// seed's first scan so bounded-And allocation behaviour lines up).
	all := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, [2]int{i, j})
		}
	}
	score(all)

	row := make([][2]int, 0, n)
	for live >= 2 {
		m.CheckBudget() // merge rounds can spin on cached conjunctions
		if opt.Stats != nil {
			opt.Stats.Rounds++
		}
		// Pop the best still-valid candidate.
		bestI, bestJ := -1, -1
		var bestRatio float64
		for len(cands) > 0 {
			c := heap.Pop(&cands).(pairCand)
			i, j := int(c.i), int(c.j)
			if !alive[i] || !alive[j] || c.stamp != stamp[i*n+j] {
				continue // stale: an endpoint merged or dropped since scoring
			}
			bestI, bestJ, bestRatio = i, j, c.ratio
			break
		}
		if bestI < 0 || bestRatio > threshold {
			break
		}
		if greedyMergeHook != nil {
			greedyMergeHook(bestI, bestJ)
		}
		if opt.Stats != nil {
			opt.Stats.MergesApplied++
		}
		if opt.OnMerge != nil {
			opt.OnMerge(bestI, bestJ)
		}
		merged := sc.merged(bestI, bestJ)
		cs[bestI] = merged
		alive[bestJ] = false
		live--
		if merged == bdd.Zero {
			return NewList(m, bdd.Zero)
		}
		// Invalidate every pair touching bestI or bestJ — O(n) stamp
		// bumps, not a table walk.
		for k := 0; k < n; k++ {
			if k != bestI {
				a, b := k, bestI
				if a > b {
					a, b = b, a
				}
				stamp[a*n+b]++
			}
			if k != bestJ {
				a, b := k, bestJ
				if a > b {
					a, b = b, a
				}
				stamp[a*n+b]++
			}
		}
		sc.applyMerge(bestI, bestJ)
		// Rescore the surviving row: only pairs involving the merged
		// conjunct changed.
		row = row[:0]
		for k := 0; k < n; k++ {
			if k == bestI || !alive[k] {
				continue
			}
			a, b := k, bestI
			if a > b {
				a, b = b, a
			}
			row = append(row, [2]int{a, b})
		}
		score(row)
	}

	out := cs[:0:0]
	for i, c := range cs {
		if alive[i] {
			out = append(out, c)
		}
	}
	return NewList(m, out...)
}

// seqScorer builds the candidate conjunctions on the list's own Manager,
// caching each surviving P_ij in the indexed table so the winning merge
// is available without recomputation.
type seqScorer struct {
	m   *bdd.Manager
	cs  []bdd.Ref // aliases greedyMerge's working slice
	opt Options
	ref []bdd.Ref // ref[i*n+j] (i < j): last scored P_ij
}

func newSeqScorer(m *bdd.Manager, cs []bdd.Ref, opt Options) *seqScorer {
	return &seqScorer{m: m, cs: cs, opt: opt, ref: make([]bdd.Ref, len(cs)*len(cs))}
}

func (s *seqScorer) scoreAll(pairs [][2]int) []pairScore {
	n := len(s.cs)
	out := make([]pairScore, len(pairs))
	for t, p := range pairs {
		i, j := p[0], p[1]
		den := pairDenominator(s.m.SharedSize(s.cs[i], s.cs[j]))
		var pr bdd.Ref
		ok := true
		if s.opt.PairBudgetFactor > 0 {
			budget := int(s.opt.PairBudgetFactor*float64(den)) + 64
			pr, ok = s.m.AndBounded(s.cs[i], s.cs[j], budget)
		} else {
			pr = s.m.And(s.cs[i], s.cs[j])
		}
		if !ok {
			continue
		}
		s.ref[i*n+j] = pr
		out[t] = pairScore{ratio: float64(s.m.Size(pr)) / float64(den), ok: true}
	}
	return out
}

func (s *seqScorer) merged(i, j int) bdd.Ref { return s.ref[i*len(s.cs)+j] }

func (s *seqScorer) applyMerge(int, int) {} // cs is shared; nothing else to update
