package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// benchList builds a deterministic list of n interacting conjuncts over
// a wider universe than the truth-table tests: each conjunct is a dense
// DNF over an 8-variable window, windows overlapping so greedy finds
// profitable merges and pair scoring has real BDD work to do.
func benchList(n int) (*bdd.Manager, List) {
	const (
		vars   = 48
		window = 20
		terms  = 10
	)
	m := bdd.New()
	m.NewVars("x", vars)
	rng := rand.New(rand.NewSource(181))
	cs := make([]bdd.Ref, n)
	for i := range cs {
		base := (i * 4) % (vars - window)
		f := bdd.Zero
		for t := 0; t < terms; t++ {
			cube := bdd.One
			for v := base; v < base+window; v++ {
				// Sparse cubes (~1/4 of the window constrained) keep the
				// conjunction of overlapping conjuncts satisfiable.
				switch rng.Intn(8) {
				case 0:
					cube = m.And(cube, m.VarRef(bdd.Var(v)))
				case 1:
					cube = m.And(cube, m.NVarRef(bdd.Var(v)))
				}
			}
			f = m.Or(f, cube)
		}
		cs[i] = f
	}
	return m, NewList(m, cs...)
}

// BenchmarkEvaluatePolicy compares the three implementations of the
// Figure 1 greedy evaluation on the same list: the seed's full-rescan
// loop (kept as the reference), the incremental heap-driven loop, and
// the worker-pool parallel scorer. A fresh Manager per iteration keeps
// the computed-cache state identical across variants — otherwise the
// first variant to run would warm the And memo for the rest.
func BenchmarkEvaluatePolicy(b *testing.B) {
	for _, n := range []int{8, 12} {
		run := func(name string, eval func(List) List) {
			b.Run(name, func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					_, l := benchList(n)
					b.StartTimer()
					size = eval(l).SharedSize()
				}
				b.ReportMetric(float64(size), "list-nodes")
			})
		}
		prefix := map[int]string{8: "n8/", 12: "n12/"}[n]
		run(prefix+"rescan", func(l List) List {
			return evaluateGreedyRescan(l, Options{})
		})
		run(prefix+"heap", func(l List) List {
			return EvaluateGreedy(l, Options{})
		})
		run(prefix+"parallel4", func(l List) List {
			return EvaluateGreedy(l, Options{Workers: 4})
		})
	}
}
