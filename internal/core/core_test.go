package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
)

// Test harness: random implicit conjunctions over few variables, cross
// checked against their explicit conjunction (canonical single BDD).

const tn = 5 // variables in the truth-table universe

func newM(t testing.TB) *bdd.Manager {
	t.Helper()
	m := bdd.New()
	m.NewVars("x", tn)
	return m
}

// randFn builds a random function over the first tn variables.
func randFn(m *bdd.Manager, rng *rand.Rand) bdd.Ref {
	// Random 3-term DNF-ish function: dense enough to interact.
	f := bdd.Zero
	for t := 0; t < 3; t++ {
		cube := bdd.One
		for v := 0; v < tn; v++ {
			switch rng.Intn(3) {
			case 0:
				cube = m.And(cube, m.VarRef(bdd.Var(v)))
			case 1:
				cube = m.And(cube, m.NVarRef(bdd.Var(v)))
			}
		}
		f = m.Or(f, cube)
	}
	return f
}

// randList builds a random list of k conjuncts.
func randList(m *bdd.Manager, rng *rand.Rand, k int) List {
	cs := make([]bdd.Ref, k)
	for i := range cs {
		cs[i] = randFn(m, rng)
	}
	return NewList(m, cs...)
}

func TestNewListNormalization(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)

	l := NewList(m, x, bdd.One, y, x) // One dropped, duplicate x dropped
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (%v)", l.Len(), l.Conjuncts)
	}
	if NewList(m, x, bdd.Zero, y).IsFalse() != true {
		t.Fatal("Zero conjunct did not collapse list")
	}
	if !NewList(m, x, x.Not()).IsFalse() {
		t.Fatal("complementary pair did not collapse list to false")
	}
	if !NewList(m).IsTrue() {
		t.Fatal("empty list is not true")
	}
	if NewList(m, bdd.One).Len() != 0 {
		t.Fatal("list of One should normalize to empty")
	}
}

func TestExplicitAndEval(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 50; iter++ {
		l := randList(m, rng, 1+rng.Intn(4))
		explicit := l.Explicit()
		// Pointwise agreement on random assignments.
		for s := 0; s < 20; s++ {
			a := make([]bool, tn)
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			if l.Eval(a) != m.Eval(explicit, a) {
				t.Fatal("List.Eval disagrees with explicit conjunction")
			}
		}
	}
}

func TestContainsSetAndViolatingConjunct(t *testing.T) {
	m := newM(t)
	x, y, z := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	l := NewList(m, m.Or(x, y), m.Or(y, z))

	inside := m.And(y, m.VarRef(3)) // y ⇒ both conjuncts
	if !l.ContainsSet(inside) {
		t.Fatal("ContainsSet false for contained set")
	}
	if l.ViolatingConjunct(inside) != -1 {
		t.Fatal("ViolatingConjunct found violation for contained set")
	}

	outside := m.AndN(x, y.Not(), z.Not()) // violates the second conjunct
	if l.ContainsSet(outside) {
		t.Fatal("ContainsSet true for escaping set")
	}
	if got := l.ViolatingConjunct(outside); got != 1 {
		t.Fatalf("ViolatingConjunct = %d, want 1", got)
	}
	// True list contains everything.
	if !NewList(m).ContainsSet(bdd.One) {
		t.Fatal("true list does not contain universe")
	}
}

func TestSharedSizeAndSizes(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	common := m.Xor(m.VarRef(2), m.VarRef(3))
	l := NewList(m, m.And(x, common), m.And(y, common))
	sizes := l.Sizes()
	if len(sizes) != 2 {
		t.Fatalf("Sizes len = %d", len(sizes))
	}
	if l.SharedSize() >= sizes[0]+sizes[1] {
		t.Fatal("SharedSize does not account for node sharing")
	}
	if NewList(m).SharedSize() != 1 {
		t.Fatal("empty list shared size != 1")
	}
}

func TestStringRendering(t *testing.T) {
	m := newM(t)
	if NewList(m).String() != "true" {
		t.Fatal("true list rendering")
	}
	if NewList(m, bdd.Zero).String() != "false" {
		t.Fatal("false list rendering")
	}
	s := NewList(m, m.VarRef(0), m.VarRef(1)).String()
	if !strings.Contains(s, "nodes (") {
		t.Fatalf("size profile rendering: %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := newM(t)
	l := NewList(m, m.VarRef(0), m.VarRef(1))
	c := l.Clone()
	c.Conjuncts[0] = bdd.One
	if l.Conjuncts[0] == bdd.One {
		t.Fatal("Clone aliases the original slice")
	}
}

func TestProtectUnprotect(t *testing.T) {
	m := newM(t)
	l := NewList(m, m.And(m.VarRef(0), m.VarRef(1)), m.Xor(m.VarRef(2), m.VarRef(3)))
	l.Protect()
	m.GC()
	// Conjuncts must survive and still be canonical.
	if m.And(m.VarRef(0), m.VarRef(1)) != l.Conjuncts[0] {
		t.Fatal("protected conjunct lost in GC")
	}
	l.Unprotect()
}
