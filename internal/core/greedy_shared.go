package core

import (
	"repro/internal/bdd"
	"repro/internal/par"
)

// Shared-manager pair scoring: the zero-hand-off counterpart of
// greedy_par.go. When the list's Manager is in shared-memory concurrent
// mode (bdd.NewShared), worker goroutines can build and size the
// candidate conjunctions P_ij directly against it — no per-worker mirror
// Managers to populate (the TransferAll that dominated small parallel
// evaluations), no per-merge Transfer back, no applyMerge fan-out. The
// winning conjunction is already in the main unique table the moment it
// is scored.
//
// Determinism is stronger than the per-worker path's, not weaker: all
// scoring happens on one manager, where canonicity makes every P_ij Ref
// independent of scheduling, so sizes, ratios, merge order, and the
// final conjunct Refs are identical to the sequential scorer's on the
// same manager. (Statistics like cache hit counts do vary run to run.)
//
// The budget caveat of the per-worker path does not arise here — but a
// positive PairBudgetFactor is incompatible with this scorer, because
// bdd.AndBounded works by temporarily lowering the manager's node limit,
// which under concurrent scoring would bound (and abort) other workers'
// operations too. EvaluateGreedy therefore falls back to the per-worker
// path when a pair budget is set.

// sharedScorer scores pairs concurrently against the one shared Manager.
type sharedScorer struct {
	m    *bdd.Manager
	cs   []bdd.Ref // aliases greedyMerge's working slice
	pool *par.Pool
	ref  []bdd.Ref // ref[i*n+j] (i < j): last scored P_ij
}

func newSharedScorer(m *bdd.Manager, cs []bdd.Ref, opt Options) *sharedScorer {
	return &sharedScorer{
		m:    m,
		cs:   cs,
		pool: par.NewPool(opt.Workers),
		ref:  make([]bdd.Ref, len(cs)*len(cs)),
	}
}

func (s *sharedScorer) scoreAll(pairs [][2]int) []pairScore {
	n := len(s.cs)
	out := make([]pairScore, len(pairs))
	// Tasks write to disjoint indices of out/ref; the Manager itself is
	// concurrent-mode, so no per-worker state is needed at all. ParAnd
	// additionally forks inside a single conjunction, which keeps the
	// pool busy when a round has fewer pairs than workers (the common
	// case late in a merge sequence).
	s.pool.ForEach(len(pairs), func(_, t int) {
		i, j := pairs[t][0], pairs[t][1]
		den := pairDenominator(s.m.SharedSize(s.cs[i], s.cs[j]))
		pr := s.m.ParAnd(s.cs[i], s.cs[j])
		s.ref[i*n+j] = pr
		out[t] = pairScore{ratio: float64(s.m.Size(pr)) / float64(den), ok: true}
	})
	return out
}

func (s *sharedScorer) merged(i, j int) bdd.Ref { return s.ref[i*len(s.cs)+j] }

func (s *sharedScorer) applyMerge(int, int) {} // one manager; nothing to mirror
