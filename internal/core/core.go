// Package core implements the paper's primary contribution: implicitly
// conjoined lists of BDDs and the two new techniques of Hu, York & Dill,
// "New Techniques for Efficient Verification with Implicitly Conjoined
// BDDs" (DAC 1994):
//
//   - the evaluation and simplification policy of Section III.A
//     (cross-simplification with Restrict plus the greedy pairwise
//     conjunction evaluation of Figure 1), and
//   - the exact termination test of Section III.B (list equality via
//     implication checks, each reduced to disjunction-tautology checking
//     with Shannon expansion, accelerated by Theorem 3).
//
// A List represents a set of states (equivalently, a Boolean function) as
// the conjunction of its elements without ever building the monolithic
// BDD for that conjunction. The representation is not canonical; all the
// machinery in this package exists to keep lists small and to compare
// them despite the lack of canonicity.
package core

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
)

// List is an implicitly conjoined list of BDDs: the represented function
// is the conjunction of all Conjuncts. The empty list represents True.
//
// Lists are plain values over a shared *bdd.Manager; copying the struct
// aliases the underlying slice, use Clone for an independent copy.
type List struct {
	M         *bdd.Manager
	Conjuncts []bdd.Ref
}

// NewList builds a list over m from the given conjuncts, normalizing away
// constants (One is dropped; any Zero collapses the list to false).
func NewList(m *bdd.Manager, conjuncts ...bdd.Ref) List {
	l := List{M: m, Conjuncts: append([]bdd.Ref(nil), conjuncts...)}
	l.Normalize()
	return l
}

// Clone returns an independent copy of l.
func (l List) Clone() List {
	return List{M: l.M, Conjuncts: append([]bdd.Ref(nil), l.Conjuncts...)}
}

// Len returns the number of conjuncts.
func (l List) Len() int { return len(l.Conjuncts) }

// IsFalse reports whether the list is the canonical false list.
func (l List) IsFalse() bool {
	return len(l.Conjuncts) == 1 && l.Conjuncts[0] == bdd.Zero
}

// IsTrue reports whether the list is empty (the implicit conjunction of
// nothing, i.e. True).
func (l List) IsTrue() bool { return len(l.Conjuncts) == 0 }

// Normalize removes constant-One conjuncts, deduplicates identical
// conjuncts, and collapses the list to [Zero] if it contains Zero or a
// complementary pair (X and ¬X make the whole conjunction false —
// detectable in constant time thanks to complement edges).
func (l *List) Normalize() {
	seen := make(map[bdd.Ref]struct{}, len(l.Conjuncts))
	out := l.Conjuncts[:0]
	for _, c := range l.Conjuncts {
		if c == bdd.One {
			continue
		}
		if c == bdd.Zero {
			l.Conjuncts = append(l.Conjuncts[:0], bdd.Zero)
			return
		}
		if _, dup := seen[c]; dup {
			continue
		}
		if _, compl := seen[c.Not()]; compl {
			l.Conjuncts = append(l.Conjuncts[:0], bdd.Zero)
			return
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	l.Conjuncts = out
}

// Explicit evaluates the implicit conjunction into a single BDD. This is
// exactly the operation the whole method exists to avoid; it is provided
// for small examples, tests, and the monolithic baseline algorithms.
func (l List) Explicit() bdd.Ref {
	return l.M.AndN(l.Conjuncts...)
}

// SharedSize returns the number of distinct BDD nodes used by the whole
// list, counting shared nodes once — the paper's "BDD Nodes" metric for
// a G_i represented as an implicit conjunction.
func (l List) SharedSize() int {
	if len(l.Conjuncts) == 0 {
		return 1
	}
	return l.M.SharedSize(l.Conjuncts...)
}

// Sizes returns the individual BDD sizes of the conjuncts — the
// parenthesized per-conjunct breakdown reported in the paper's tables.
func (l List) Sizes() []int {
	out := make([]int, len(l.Conjuncts))
	for i, c := range l.Conjuncts {
		out[i] = l.M.Size(c)
	}
	return out
}

// ContainsSet reports whether the set S (a single BDD) is contained in
// the set represented by the list, i.e. S ⇒ ∧l. Per Section II.C this
// decomposes into one small check per conjunct, never touching the
// monolithic conjunction.
func (l List) ContainsSet(s bdd.Ref) bool {
	for _, c := range l.Conjuncts {
		if !l.M.Implies(s, c) {
			return false
		}
	}
	return true
}

// ViolatingConjunct returns the index of some conjunct X with S ∧ ¬X
// non-empty, or -1 if S is contained in the list. Used to extract
// counterexample states.
func (l List) ViolatingConjunct(s bdd.Ref) int {
	for i, c := range l.Conjuncts {
		if !l.M.Implies(s, c) {
			return i
		}
	}
	return -1
}

// Eval evaluates the implicit conjunction under a total assignment.
func (l List) Eval(assignment []bool) bool {
	for _, c := range l.Conjuncts {
		if !l.M.Eval(c, assignment) {
			return false
		}
	}
	return true
}

// Protect reference-counts every conjunct against garbage collection.
func (l List) Protect() {
	for _, c := range l.Conjuncts {
		l.M.Protect(c)
	}
}

// Unprotect releases the references taken by Protect.
func (l List) Unprotect() {
	for _, c := range l.Conjuncts {
		l.M.Unprotect(c)
	}
}

// String renders the size profile of the list, mirroring the paper's
// "(i × j nodes)" table annotations.
func (l List) String() string {
	if l.IsTrue() {
		return "true"
	}
	if l.IsFalse() {
		return "false"
	}
	sizes := l.Sizes()
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprint(s)
	}
	return fmt.Sprintf("%d nodes (%s)", l.SharedSize(), strings.Join(parts, ", "))
}
