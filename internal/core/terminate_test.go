package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// TestDisjunctionTautologyAgainstExplicit: the decomposed check of
// Section III.B must agree with explicitly OR-ing the list.
func TestDisjunctionTautologyAgainstExplicit(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 300; iter++ {
		k := 1 + rng.Intn(5)
		ds := make([]bdd.Ref, k)
		for i := range ds {
			ds[i] = randFn(m, rng)
			if rng.Intn(4) == 0 {
				ds[i] = ds[i].Not()
			}
		}
		want := m.OrN(ds...) == bdd.One
		if got := tt.DisjunctionTautology(ds); got != want {
			t.Fatalf("iter %d: DisjunctionTautology = %v, explicit = %v", iter, got, want)
		}
	}
}

// TestDisjunctionTautologyAdversarial builds lists that defeat the easy
// steps so Step 4 (Shannon expansion) must do the work.
func TestDisjunctionTautologyAdversarial(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	x := make([]bdd.Ref, tn)
	for i := range x {
		x[i] = m.VarRef(bdd.Var(i))
	}
	// Cover the space with non-overlapping cubes: x0∧x1, x0∧¬x1, ¬x0∧x2, ¬x0∧¬x2.
	ds := []bdd.Ref{
		m.And(x[0], x[1]),
		m.And(x[0], x[1].Not()),
		m.And(x[0].Not(), x[2]),
		m.And(x[0].Not(), x[2].Not()),
	}
	if !tt.DisjunctionTautology(ds) {
		t.Fatal("cube cover not recognized as tautology")
	}
	// Remove one cube: no longer a tautology.
	if tt.DisjunctionTautology(ds[:3]) {
		t.Fatal("partial cover misclassified as tautology")
	}
	// Parity decompositions: xor and its complement split across terms.
	parity := m.Xor(m.Xor(x[0], x[1]), x[2])
	ds2 := []bdd.Ref{m.And(parity, x[3]), m.And(parity, x[3].Not()), parity.Not()}
	if !tt.DisjunctionTautology(ds2) {
		t.Fatal("parity split not recognized as tautology")
	}
}

func TestDisjunctionTautologyEdgeCases(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	if tt.DisjunctionTautology(nil) {
		t.Fatal("empty disjunction is not a tautology")
	}
	if tt.DisjunctionTautology([]bdd.Ref{bdd.Zero, bdd.Zero}) {
		t.Fatal("all-false disjunction is not a tautology")
	}
	if !tt.DisjunctionTautology([]bdd.Ref{bdd.Zero, bdd.One}) {
		t.Fatal("list containing One must be a tautology (Step 1)")
	}
	x := m.VarRef(0)
	if !tt.DisjunctionTautology([]bdd.Ref{x, x.Not()}) {
		t.Fatal("complement pair must be a tautology (Step 2)")
	}
	if tt.DisjunctionTautology([]bdd.Ref{x, x}) {
		t.Fatal("duplicates must not fake a tautology")
	}
}

// TestListsEqualAgainstExplicit cross-checks the exact termination test
// against canonical single-BDD equality on random repartitionings.
func TestListsEqualAgainstExplicit(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	rng := rand.New(rand.NewSource(82))
	for iter := 0; iter < 120; iter++ {
		x := randList(m, rng, 1+rng.Intn(4))
		y := repartition(m, rng, x)
		wantEq := x.Explicit() == y.Explicit()
		if got := tt.ListsEqual(x, y); got != wantEq {
			t.Fatalf("iter %d: ListsEqual = %v, explicit equality = %v (x=%v y=%v)",
				iter, got, wantEq, x.Conjuncts, y.Conjuncts)
		}
		// And against an unrelated list (almost surely different).
		z := randList(m, rng, 1+rng.Intn(4))
		wantEq = x.Explicit() == z.Explicit()
		if got := tt.ListsEqual(x, z); got != wantEq {
			t.Fatalf("iter %d: ListsEqual(x,z) = %v, explicit = %v", iter, got, wantEq)
		}
	}
}

// repartition produces a semantically identical list with a different
// syntactic shape: merge random pairs, append implied conjuncts, run the
// evaluation policy, or collapse to the monolithic BDD.
func repartition(m *bdd.Manager, rng *rand.Rand, l List) List {
	switch rng.Intn(4) {
	case 0: // monolithic
		return NewList(m, l.Explicit())
	case 1: // append a conjunct implied by the list (weakening of explicit)
		extra := m.Or(l.Explicit(), randFn(m, rng))
		return NewList(m, append(append([]bdd.Ref(nil), l.Conjuncts...), extra)...)
	case 2: // run the Section III.A policy (arbitrary restructuring)
		return SimplifyAndEvaluate(l, Options{GrowThreshold: 1 + rng.Float64()*2})
	default: // merge the first pair
		if l.Len() < 2 {
			return l.Clone()
		}
		merged := m.And(l.Conjuncts[0], l.Conjuncts[1])
		rest := append([]bdd.Ref{merged}, l.Conjuncts[2:]...)
		return NewList(m, rest...)
	}
}

func TestListImpliesAgainstExplicit(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 150; iter++ {
		x := randList(m, rng, 1+rng.Intn(4))
		y := randList(m, rng, 1+rng.Intn(4))
		want := m.Implies(x.Explicit(), y.Explicit())
		if got := tt.ListImplies(x, y); got != want {
			t.Fatalf("iter %d: ListImplies = %v, want %v", iter, got, want)
		}
	}
	// Monotone special cases.
	x := randList(m, rng, 3)
	if !tt.ListImplies(x, NewList(m)) {
		t.Fatal("everything implies the true list")
	}
	if !tt.ListImplies(NewList(m, bdd.Zero), x) {
		t.Fatal("false list implies everything")
	}
	// A list implies any sublist of itself.
	sub := NewList(m, x.Conjuncts[0], x.Conjuncts[2])
	if !tt.ListImplies(x, sub) {
		t.Fatal("list does not imply its own sublist")
	}
}

// TestTerminationVariants: all configurations (Constrain, SkipStep3)
// remain exact.
func TestTerminationVariants(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(84))
	variants := []Termination{
		NewTermination(m),
		{M: m, Simplifier: bdd.UseConstrain},
		{M: m, SkipStep3: true},
		{M: m, Simplifier: bdd.UseConstrain, SkipStep3: true},
	}
	for iter := 0; iter < 60; iter++ {
		x := randList(m, rng, 1+rng.Intn(4))
		y := repartition(m, rng, x)
		want := x.Explicit() == y.Explicit()
		for vi, tt2 := range variants {
			if got := tt2.ListsEqual(x, y); got != want {
				t.Fatalf("variant %d: ListsEqual = %v, want %v", vi, got, want)
			}
		}
	}
}

func TestTermStatsAccumulate(t *testing.T) {
	m := newM(t)
	stats := &TermStats{}
	tt := Termination{M: m, Stats: stats}
	rng := rand.New(rand.NewSource(85))
	for i := 0; i < 10; i++ {
		x := randList(m, rng, 3)
		y := repartition(m, rng, x)
		tt.ListsEqual(x, y)
	}
	if stats.TautCalls == 0 {
		t.Fatal("no tautology calls recorded")
	}
	if stats.StepResolved[0]+stats.StepResolved[1]+stats.StepResolved[2] == 0 {
		t.Fatal("no step resolutions recorded")
	}
}

func TestFastListsEqual(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	a := NewList(m, x, y)
	b := NewList(m, x, y)
	if !FastListsEqual(a, b) {
		t.Fatal("identical lists not fast-equal")
	}
	// Same set, different shape: the fast test misses it (the documented
	// weakness of the CAV'93 test), the exact test catches it.
	c := NewList(m, m.And(x, y))
	if FastListsEqual(a, c) {
		t.Fatal("fast test claimed equality across repartitioning")
	}
	if !NewTermination(m).ListsEqual(a, c) {
		t.Fatal("exact test missed equality across repartitioning")
	}
	// Different sets.
	d := NewList(m, x)
	if FastListsEqual(a, d) || NewTermination(m).ListsEqual(a, d) {
		t.Fatal("unequal lists reported equal")
	}
}

// TestTermStatsBuckets pins the StepResolved accounting on worked
// examples with known resolution paths and split counts, and checks the
// documented invariant: every call either lands in exactly one bucket
// or performs a Shannon expansion, so the buckets plus ShannonSplits sum
// to TautCalls. Step 3 is disabled where noted so the recursion shape
// is forced.
func TestTermStatsBuckets(t *testing.T) {
	m := newM(t)
	x1, x2 := m.VarRef(0), m.VarRef(1)

	cases := []struct {
		name      string
		ds        []bdd.Ref
		skipStep3 bool
		want      bool
		calls     int
		splits    int
		resolved  [3]int
	}{
		{
			// Complementary pair: steps 1-2 settle the root call.
			name: "complement-pair", ds: []bdd.Ref{x1, x1.Not()},
			want: true, calls: 1, splits: 0, resolved: [3]int{1, 0, 0},
		},
		{
			// One non-constant disjunct: the single-survivor
			// short-circuit, not a "step 4 leaf".
			name: "single-survivor", ds: []bdd.Ref{x1},
			want: false, calls: 1, splits: 0, resolved: [3]int{0, 0, 1},
		},
		{
			// Theorem-3 cross-simplification maps x1∧x2 to True.
			name: "step3", ds: []bdd.Ref{m.And(x1, x2), x1.Not(), x2.Not()},
			want: true, calls: 1, splits: 0, resolved: [3]int{0, 1, 0},
		},
		{
			// With step 3 off the same list must Shannon-expand on x1;
			// both cofactor lists settle via steps 1-2 (a True disjunct
			// appears), so the expansion's children land in bucket [0] —
			// the "step 4 leaves land in [0]" case the old comment
			// mislabeled.
			name: "split-then-steps12", skipStep3: true,
			ds:   []bdd.Ref{m.Or(x1, x2), m.Or(x1.Not(), x2.Not())},
			want: true, calls: 3, splits: 1, resolved: [3]int{2, 0, 0},
		},
		{
			// Non-tautology: the x1=1 cofactor list shrinks to the
			// single survivor x2, and the && short-circuit skips the
			// x1=0 branch entirely.
			name: "split-single-survivor", skipStep3: true,
			ds:   []bdd.Ref{m.And(x1, x2), m.And(x1.Not(), x2)},
			want: false, calls: 2, splits: 1, resolved: [3]int{0, 0, 1},
		},
	}

	for _, tc := range cases {
		stats := &TermStats{}
		tt := Termination{M: m, Simplifier: bdd.UseRestrict, SkipStep3: tc.skipStep3, Stats: stats}
		if got := tt.DisjunctionTautology(tc.ds); got != tc.want {
			t.Errorf("%s: verdict %v, want %v", tc.name, got, tc.want)
		}
		if stats.TautCalls != tc.calls || stats.ShannonSplits != tc.splits ||
			stats.StepResolved != tc.resolved {
			t.Errorf("%s: calls=%d splits=%d resolved=%v, want calls=%d splits=%d resolved=%v",
				tc.name, stats.TautCalls, stats.ShannonSplits, stats.StepResolved,
				tc.calls, tc.splits, tc.resolved)
		}
		if stats.Resolved()+stats.ShannonSplits != stats.TautCalls {
			t.Errorf("%s: invariant broken: resolved %d + splits %d != calls %d",
				tc.name, stats.Resolved(), stats.ShannonSplits, stats.TautCalls)
		}
	}
}

// TestTermStatsInvariantRandom checks the bucket invariant on random
// lists, with and without step 3.
func TestTermStatsInvariantRandom(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(86))
	for _, skip := range []bool{false, true} {
		stats := &TermStats{}
		tt := Termination{M: m, Simplifier: bdd.UseRestrict, SkipStep3: skip, Stats: stats}
		for i := 0; i < 20; i++ {
			x := randList(m, rng, 3)
			y := repartition(m, rng, x)
			tt.ListsEqual(x, y)
		}
		if stats.Resolved()+stats.ShannonSplits != stats.TautCalls {
			t.Fatalf("skipStep3=%v: resolved %d + splits %d != calls %d",
				skip, stats.Resolved(), stats.ShannonSplits, stats.TautCalls)
		}
	}
}

// BenchmarkListImplies guards the buffer-reuse optimization: the
// implication check used to copy the negated-conjunct slice once per
// Y_j; it now appends into one buffer. Run with -benchmem (ReportAllocs
// is on) to see the per-operation allocation count.
func BenchmarkListImplies(b *testing.B) {
	m := newM(b)
	rng := rand.New(rand.NewSource(87))
	x := randList(m, rng, 6)
	y := repartition(m, rng, x)
	tt := NewTermination(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.ListImplies(x, y)
	}
}
