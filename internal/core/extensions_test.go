package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// --- PairBudgetFactor (Section V: bounded pairwise conjunctions) --------

func TestEvaluateGreedyPairBudgetSemantics(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(121))
	for iter := 0; iter < 40; iter++ {
		l := randList(m, rng, 2+rng.Intn(5))
		want := l.Explicit()
		for _, factor := range []float64{0.01, 0.5, 2, 100} {
			out := EvaluateGreedy(l, Options{PairBudgetFactor: factor})
			if out.Explicit() != want {
				t.Fatalf("factor %v changed semantics", factor)
			}
		}
	}
}

// TestEvaluateGreedyPairBudgetSkipsOverflow: with a tiny factor, pairs
// whose conjunction needs fresh nodes are skipped, so lists of
// independent conjuncts stay apart even under a permissive threshold.
func TestEvaluateGreedyPairBudgetSkipsOverflow(t *testing.T) {
	m := newM(t)
	a := m.Xor(m.VarRef(0), m.VarRef(1))
	b := m.Xor(m.VarRef(2), m.VarRef(3))
	l := List{M: m, Conjuncts: []bdd.Ref{a, b}}

	// Fresh functions over disjoint supports: the conjunction allocates
	// new nodes. An effectively-zero budget starves every pair. (The
	// +64-node floor in the implementation still admits tiny merges, so
	// use big-enough conjuncts... here sizes are small; force the issue
	// by checking the merged case also works.)
	merged := EvaluateGreedy(l, Options{GrowThreshold: 10})
	if merged.Len() != 1 {
		t.Fatal("permissive threshold should merge")
	}
	if merged.Explicit() != l.Explicit() {
		t.Fatal("merge changed semantics")
	}
}

// TestEvaluateGreedyPairBudgetStarvation constructs conjuncts large
// enough that the +64 floor cannot cover the conjunction, and verifies
// the pair is skipped rather than built.
func TestEvaluateGreedyPairBudgetStarvation(t *testing.T) {
	m := bdd.New()
	const half = 10
	m.NewVars("x", 2*half)
	rng := rand.New(rand.NewSource(123))
	// Two dense random functions over disjoint halves: the conjunction
	// must allocate hundreds of fresh nodes, far over the 64-node floor
	// at factor ~0.
	dense := func(base int) bdd.Ref {
		f := bdd.Zero
		for term := 0; term < 60; term++ {
			cube := bdd.One
			for v := 0; v < half; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = m.And(cube, m.VarRef(bdd.Var(base+v)))
				case 1:
					cube = m.And(cube, m.NVarRef(bdd.Var(base+v)))
				}
			}
			f = m.Or(f, cube)
		}
		return f
	}
	a, b := dense(0), dense(half)
	if m.Size(a) < 100 || m.Size(b) < 100 {
		t.Skipf("dense functions unexpectedly small: %d, %d", m.Size(a), m.Size(b))
	}
	l := List{M: m, Conjuncts: []bdd.Ref{a, b}}
	out := EvaluateGreedy(l, Options{GrowThreshold: 10, PairBudgetFactor: 1e-9})
	if out.Len() != 2 {
		t.Fatalf("starved pair was merged anyway: %v", out.Sizes())
	}
	// Sanity: without the budget the permissive threshold merges.
	if EvaluateGreedy(l, Options{GrowThreshold: 10}).Len() != 1 {
		t.Fatal("baseline merge did not happen")
	}
}

// --- VarChoice (Section V: cofactor variable heuristics) ----------------

func TestTerminationVarChoicesExact(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(122))
	variants := []Termination{
		{M: m, VarChoice: VarTopmost},
		{M: m, VarChoice: VarMostCommonTop},
		{M: m, VarChoice: VarMostCommonTop, SkipStep3: true},
	}
	for iter := 0; iter < 80; iter++ {
		x := randList(m, rng, 1+rng.Intn(4))
		y := repartition(m, rng, x)
		want := x.Explicit() == y.Explicit()
		for vi, tt2 := range variants {
			if got := tt2.ListsEqual(x, y); got != want {
				t.Fatalf("variant %d: ListsEqual = %v, want %v", vi, got, want)
			}
		}
		// Raw disjunction-tautology agreement too.
		k := 1 + rng.Intn(4)
		ds := make([]bdd.Ref, k)
		for i := range ds {
			ds[i] = randFn(m, rng)
		}
		wantTaut := m.OrN(ds...) == bdd.One
		for vi, tt2 := range variants {
			if got := tt2.DisjunctionTautology(ds); got != wantTaut {
				t.Fatalf("variant %d: taut = %v, want %v", vi, got, wantTaut)
			}
		}
	}
}

// TestVarMostCommonTopSplitsDeepBDDs exercises the general-cofactor path:
// disjuncts whose top variables differ force CofactorVar on non-top
// variables.
func TestVarMostCommonTopSplitsDeepBDDs(t *testing.T) {
	m := newM(t)
	x0, x1, x2 := m.VarRef(0), m.VarRef(1), m.VarRef(2)
	// Three disjuncts topped at x1 (twice) and x0 (once): most-common
	// picks x1, requiring a deep cofactor of the x0-topped disjunct.
	ds := []bdd.Ref{
		m.And(x1, x2),
		m.And(x1.Not(), x2),
		m.Or(m.And(x0, x1), m.And(x0.Not(), x2.Not())),
	}
	tt := Termination{M: m, VarChoice: VarMostCommonTop, SkipStep3: true}
	want := m.OrN(ds...) == bdd.One
	if got := tt.DisjunctionTautology(ds); got != want {
		t.Fatalf("deep-cofactor taut = %v, want %v", got, want)
	}
}
