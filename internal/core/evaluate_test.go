package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// TestSimplifyAndEvaluatePreservesSemantics is the central safety
// property of Section III.A: the policy may restructure the list
// arbitrarily but must represent the same set.
func TestSimplifyAndEvaluatePreservesSemantics(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(71))
	opts := []Options{
		{}, // paper defaults
		{GrowThreshold: 1.0},
		{GrowThreshold: 10},
		{Simplifier: bdd.UseConstrain},
		{SkipSimplify: true},
		{SkipEvaluate: true},
		{SkipSimplify: true, SkipEvaluate: true},
	}
	for iter := 0; iter < 60; iter++ {
		l := randList(m, rng, 1+rng.Intn(6))
		want := l.Explicit()
		for _, opt := range opts {
			out := SimplifyAndEvaluate(l, opt)
			if got := out.Explicit(); got != want {
				t.Fatalf("policy %+v changed semantics (iter %d)", opt, iter)
			}
		}
	}
}

func TestSimplifyAndEvaluateConstants(t *testing.T) {
	m := newM(t)
	if out := SimplifyAndEvaluate(NewList(m), Options{}); !out.IsTrue() {
		t.Fatal("true list mangled")
	}
	if out := SimplifyAndEvaluate(NewList(m, bdd.Zero), Options{}); !out.IsFalse() {
		t.Fatal("false list mangled")
	}
	x := m.VarRef(0)
	if out := SimplifyAndEvaluate(NewList(m, x, x.Not()), Options{}); !out.IsFalse() {
		t.Fatal("contradictory list not collapsed")
	}
}

// TestCrossSimplifyDropsImpliedConjuncts: when one conjunct implies
// another, Restrict by the smaller (stronger context) turns the implied
// one into True, which normalization drops — the effect that makes
// XICI converge in one iteration on the FIFO example.
func TestCrossSimplifyDropsImpliedConjuncts(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	strong := m.And(x, y)                      // size 3
	weak := m.OrN(x, m.VarRef(2), m.VarRef(3)) // size 4, implied under strong (x true)
	l := NewList(m, weak, strong)
	out := CrossSimplify(l, bdd.UseRestrict)
	if out.Explicit() != l.Explicit() {
		t.Fatal("CrossSimplify changed semantics")
	}
	if out.Len() >= l.Len() {
		t.Fatalf("CrossSimplify did not shorten list: %d -> %d", l.Len(), out.Len())
	}
}

func TestCrossSimplifyDetectsEmptiness(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	// Conjunction is empty but no two conjuncts are syntactic complements.
	l := NewList(m, m.Or(x, y), m.Or(x, y.Not()), m.Or(x.Not(), y), m.Or(x.Not(), y.Not()))
	out := SimplifyAndEvaluate(l, Options{})
	if !out.IsFalse() {
		t.Fatalf("empty conjunction not detected: %v", out)
	}
}

// TestEvaluateGreedyMergesSharedSupport: conjuncts over the same
// variables whose conjunction is smaller than keeping them separate must
// be merged by the greedy loop.
func TestEvaluateGreedyMergesSharedSupport(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	// (x∨y) ∧ (x∨¬y) == x: merging strictly shrinks.
	l := List{M: m, Conjuncts: []bdd.Ref{m.Or(x, y), m.Or(x, y.Not())}}
	out := EvaluateGreedy(l, Options{})
	if out.Len() != 1 || out.Conjuncts[0] != x {
		t.Fatalf("greedy did not merge to x: %v", out.Conjuncts)
	}
}

// TestEvaluateGreedyKeepsDisjointSupport: conjuncts over disjoint
// variables gain nothing from conjunction (the product BDD concatenates
// them), so with the paper threshold the list stays apart... unless the
// concatenation is within the 1.5x budget, which for small BDDs it is.
// Use a strict threshold to pin the behaviour.
func TestEvaluateGreedyThreshold(t *testing.T) {
	m := newM(t)
	a := m.Xor(m.VarRef(0), m.VarRef(1))
	b := m.Xor(m.VarRef(2), m.VarRef(3))
	l := List{M: m, Conjuncts: []bdd.Ref{a, b}}

	// Conjunction of disjoint xors has size ~ sum, ratio ~ (sa+sb-1)/(sa+sb)
	// which is < 1, so even a tight threshold merges... verify semantics
	// and that ratios behave monotonically in the threshold:
	strict := EvaluateGreedy(l, Options{GrowThreshold: 0.5})
	loose := EvaluateGreedy(l, Options{GrowThreshold: 10})
	if strict.Explicit() != l.Explicit() || loose.Explicit() != l.Explicit() {
		t.Fatal("greedy changed semantics")
	}
	if loose.Len() > strict.Len() {
		t.Fatal("looser threshold evaluated fewer conjunctions")
	}
	if loose.Len() != 1 {
		t.Fatal("threshold 10 should merge everything")
	}
}

func TestEvaluateGreedySingleton(t *testing.T) {
	m := newM(t)
	l := List{M: m, Conjuncts: []bdd.Ref{m.VarRef(0)}}
	out := EvaluateGreedy(l, Options{})
	if out.Len() != 1 || out.Conjuncts[0] != m.VarRef(0) {
		t.Fatal("singleton list mangled")
	}
}

func TestOptimalPairwiseCover(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(72))
	for iter := 0; iter < 30; iter++ {
		l := randList(m, rng, 1+rng.Intn(6))
		groups, cost := OptimalPairwiseCover(l)

		// Every index covered exactly once.
		covered := make(map[int]int)
		for _, g := range groups {
			if len(g) < 1 || len(g) > 2 {
				t.Fatalf("group size %d", len(g))
			}
			for _, i := range g {
				covered[i]++
			}
		}
		for i := 0; i < l.Len(); i++ {
			if covered[i] != 1 {
				t.Fatalf("index %d covered %d times", i, covered[i])
			}
		}

		// Cost matches the definition.
		wantCost := 0
		for _, g := range groups {
			acc := bdd.One
			for _, i := range g {
				acc = m.And(acc, l.Conjuncts[i])
			}
			wantCost += m.Size(acc)
		}
		if cost != wantCost {
			t.Fatalf("reported cost %d != recomputed %d", cost, wantCost)
		}

		// Optimality: no better than brute force on small n.
		if l.Len() <= 4 {
			if bf := bruteForceCoverCost(l); bf != cost {
				t.Fatalf("DP cost %d != brute force %d", cost, bf)
			}
		}

		// ApplyCover preserves semantics.
		if ApplyCover(l, groups).Explicit() != l.Explicit() {
			t.Fatal("ApplyCover changed semantics")
		}
	}

	// Edge cases.
	if g, c := OptimalPairwiseCover(NewList(m)); g != nil || c != 0 {
		t.Fatal("empty cover not trivial")
	}
}

// bruteForceCoverCost enumerates all singleton/pair covers for tiny lists.
func bruteForceCoverCost(l List) int {
	m := l.M
	n := l.Len()
	best := -1
	var rec func(mask, acc int)
	rec = func(mask, acc int) {
		if mask == 0 {
			if best < 0 || acc < best {
				best = acc
			}
			return
		}
		if best >= 0 && acc >= best {
			return
		}
		i := lowestBit(mask)
		rec(mask&^(1<<uint(i)), acc+m.Size(l.Conjuncts[i]))
		for j := i + 1; j < n; j++ {
			if mask&(1<<uint(j)) == 0 {
				continue
			}
			p := m.Size(m.And(l.Conjuncts[i], l.Conjuncts[j]))
			rec(mask&^(1<<uint(i))&^(1<<uint(j)), acc+p)
		}
	}
	rec((1<<uint(n))-1, 0)
	return best
}

// TestGreedyVsOptimalCover quantifies (loosely) that greedy is never
// catastrophically worse than the optimal pairwise cover on small random
// lists — a sanity check of the paper's argument that the cheap heuristic
// suffices.
func TestGreedyVsOptimalCover(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 20; iter++ {
		l := randList(m, rng, 3+rng.Intn(3))
		greedy := EvaluateGreedy(l, Options{})
		_, optCost := OptimalPairwiseCover(l)
		if optCost == 0 {
			continue
		}
		g := greedy.SharedSize()
		// Greedy may evaluate more than pairs (it loops), so it can beat
		// the pairwise optimum; it should never exceed a generous bound.
		if float64(g) > 4*float64(optCost)+8 {
			t.Fatalf("greedy size %d vastly worse than pairwise optimum %d", g, optCost)
		}
	}
}

func TestOptimalPairwiseCoverTooLarge(t *testing.T) {
	m := newM(t)
	cs := make([]bdd.Ref, 21)
	for i := range cs {
		cs[i] = m.VarRef(bdd.Var(i % tn))
	}
	l := List{M: m, Conjuncts: cs}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized cover did not panic")
		}
	}()
	OptimalPairwiseCover(l)
}
