package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// optionsMatrix is the greedy-relevant slice of the option space.
func greedyOptionsMatrix() []Options {
	return []Options{
		{}, // paper defaults
		{GrowThreshold: 0.8},
		{GrowThreshold: 1.0},
		{GrowThreshold: 10},
		{PairBudgetFactor: 1.5},
		{PairBudgetFactor: 0.5, GrowThreshold: 3},
	}
}

func refsEqual(a, b List) bool {
	if len(a.Conjuncts) != len(b.Conjuncts) {
		return false
	}
	for i := range a.Conjuncts {
		if a.Conjuncts[i] != b.Conjuncts[i] {
			return false
		}
	}
	return true
}

// TestEvaluateGreedyMatchesRescan: the incremental (heap) path must be
// Ref-for-Ref identical to the seed's full-rescan loop, including under
// the pair budget (same manager, same operation order, same bounded-And
// allocation behaviour).
func TestEvaluateGreedyMatchesRescan(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 50; iter++ {
		l := randList(m, rng, 2+rng.Intn(7))
		for oi, opt := range greedyOptionsMatrix() {
			want := evaluateGreedyRescan(l, opt)
			got := EvaluateGreedy(l, opt)
			if !refsEqual(got, want) {
				t.Fatalf("iter %d opts[%d]: heap %v != rescan %v", iter, oi, got.Conjuncts, want.Conjuncts)
			}
		}
	}
}

// TestEvaluateGreedyParallelPointwiseEqual: with PairBudgetFactor == 0
// the parallel path promises bit-identical output — same Refs on the
// same manager — for any worker count.
func TestEvaluateGreedyParallelPointwiseEqual(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 30; iter++ {
		l := randList(m, rng, 2+rng.Intn(7))
		for _, th := range []float64{0, 0.8, 10} {
			want := EvaluateGreedy(l, Options{GrowThreshold: th})
			for _, workers := range []int{1, 2, 4, -1} {
				got := EvaluateGreedy(l, Options{GrowThreshold: th, Workers: workers})
				if !refsEqual(got, want) {
					t.Fatalf("iter %d th=%v workers=%d: %v != %v",
						iter, th, workers, got.Conjuncts, want.Conjuncts)
				}
			}
		}
	}
}

// TestEvaluateGreedyParallelBudgetSemantics: under a positive pair
// budget the parallel path may classify borderline pairs differently
// (documented), but the represented set must be unchanged.
func TestEvaluateGreedyParallelBudgetSemantics(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 20; iter++ {
		l := randList(m, rng, 2+rng.Intn(6))
		want := l.Explicit()
		for _, opt := range []Options{
			{PairBudgetFactor: 1.5, Workers: 2},
			{PairBudgetFactor: 0.5, GrowThreshold: 3, Workers: 3},
		} {
			out := EvaluateGreedy(l, opt)
			if out.Explicit() != want {
				t.Fatalf("iter %d %+v: parallel budget run changed semantics", iter, opt)
			}
		}
	}
}

// TestSimplifyAndEvaluateParallel drives the full policy with workers.
func TestSimplifyAndEvaluateParallel(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(94))
	for iter := 0; iter < 20; iter++ {
		l := randList(m, rng, 1+rng.Intn(6))
		seq := SimplifyAndEvaluate(l, Options{})
		parl := SimplifyAndEvaluate(l, Options{Workers: 3})
		if !refsEqual(seq, parl) {
			t.Fatalf("iter %d: parallel policy diverged: %v != %v", iter, parl.Conjuncts, seq.Conjuncts)
		}
	}
}

// TestGreedyNeverRescoresDeadIndices is the regression test for the
// stale-pair invalidation fix: once an index is merged away, no pair
// involving it may ever be scored again, and the total scoring work is
// the initial table plus one row per merge — not a rescan.
func TestGreedyNeverRescoresDeadIndices(t *testing.T) {
	for _, workers := range []int{0, 2} {
		m := newM(t)
		rng := rand.New(rand.NewSource(95))

		var (
			dead    map[int]bool
			scored  int
			merges  int
			initial int
		)
		greedyScoreHook = func(i, j int) {
			scored++
			if dead[i] || dead[j] {
				t.Fatalf("workers=%d: scored pair (%d,%d) with a dead index", workers, i, j)
			}
		}
		greedyMergeHook = func(i, j int) {
			merges++
			dead[j] = true
		}
		defer func() { greedyScoreHook, greedyMergeHook = nil, nil }()

		for iter := 0; iter < 20; iter++ {
			n := 3 + rng.Intn(6)
			l := randList(m, rng, n)
			n = l.Len() // normalization may shrink
			if n < 2 {
				continue
			}
			dead = map[int]bool{}
			scored, merges = 0, 0
			initial = n * (n - 1) / 2
			EvaluateGreedy(l, Options{GrowThreshold: 10, Workers: workers})
			if scored > initial+merges*(n-1) {
				t.Fatalf("workers=%d iter %d: scored %d pairs > initial %d + merges %d × row %d",
					workers, iter, scored, initial, merges, n-1)
			}
		}
	}
}

// TestEvaluateGreedyConstantConjuncts is the regression test for the
// guarded ratio denominator: a list built directly — bypassing the
// constant-stripping of NewList/Normalize — may carry One (or Zero, or
// duplicated constant) conjuncts into the scorers. The ratio must stay
// finite (no NaN/Inf from a degenerate BDDSize(X_i, X_j)), the three
// scoring paths (heap, rescan reference, parallel) must remain
// Ref-identical, and the represented conjunction must be preserved.
func TestEvaluateGreedyConstantConjuncts(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(98))
	f := randList(m, rng, 3)
	if f.Len() < 2 {
		t.Fatal("setup: want at least two non-constant conjuncts")
	}
	a, b := f.Conjuncts[0], f.Conjuncts[1]

	lists := []List{
		{M: m, Conjuncts: []bdd.Ref{bdd.One, bdd.One}},
		{M: m, Conjuncts: []bdd.Ref{bdd.One, a}},
		{M: m, Conjuncts: []bdd.Ref{bdd.One, bdd.One, a, b}},
		{M: m, Conjuncts: []bdd.Ref{a, bdd.One, b, bdd.One}},
		{M: m, Conjuncts: []bdd.Ref{bdd.Zero, a, b}},
		{M: m, Conjuncts: []bdd.Ref{bdd.One, bdd.Zero}},
	}
	for li, l := range lists {
		want := l.M.AndN(l.Conjuncts...)
		for oi, opt := range greedyOptionsMatrix() {
			rescan := evaluateGreedyRescan(l, opt)
			heap := EvaluateGreedy(l, opt)
			if !refsEqual(heap, rescan) {
				t.Fatalf("list %d opts[%d]: heap %v != rescan %v", li, oi, heap.Conjuncts, rescan.Conjuncts)
			}
			if got := heap.Explicit(); got != want {
				t.Fatalf("list %d opts[%d]: semantics changed", li, oi)
			}
			if opt.PairBudgetFactor == 0 {
				parl := EvaluateGreedy(l, Options{GrowThreshold: opt.GrowThreshold, Workers: 2})
				if !refsEqual(parl, heap) {
					t.Fatalf("list %d opts[%d]: parallel %v != sequential %v", li, oi, parl.Conjuncts, heap.Conjuncts)
				}
			}
		}
	}
}

// TestEvaluateGreedyParallelZeroCollapse: a merge producing Zero must
// collapse the list in parallel mode exactly as sequentially.
func TestEvaluateGreedyParallelZeroCollapse(t *testing.T) {
	m := newM(t)
	x, y := m.VarRef(0), m.VarRef(1)
	// No two conjuncts are syntactic complements, but the conjunction is empty.
	l := NewList(m, m.Or(x, y), m.Or(x, y.Not()), m.Or(x.Not(), y), m.Or(x.Not(), y.Not()))
	for _, workers := range []int{0, 3} {
		out := EvaluateGreedy(l, Options{GrowThreshold: 10, Workers: workers})
		if !out.IsFalse() {
			t.Fatalf("workers=%d: empty conjunction not collapsed: %v", workers, out)
		}
	}
}

// TestEvaluateGreedyParallelSmallLists: degenerate inputs take the same
// early exits as the sequential path.
func TestEvaluateGreedyParallelSmallLists(t *testing.T) {
	m := newM(t)
	if out := EvaluateGreedy(List{M: m}, Options{Workers: 2}); !out.IsTrue() {
		t.Fatal("empty list mangled")
	}
	one := List{M: m, Conjuncts: []bdd.Ref{m.VarRef(0)}}
	if out := EvaluateGreedy(one, Options{Workers: 2}); out.Len() != 1 || out.Conjuncts[0] != m.VarRef(0) {
		t.Fatal("singleton list mangled")
	}
}

// TestEvaluateGreedyParallelGuardsLimit: a worker blowing the inherited
// node limit surfaces as a *bdd.LimitError through Guard, matching the
// sequential resource-abort contract.
func TestEvaluateGreedyParallelGuardsLimit(t *testing.T) {
	m := bdd.New()
	m.NewVars("x", 16)
	rng := rand.New(rand.NewSource(96))
	cs := make([]bdd.Ref, 8)
	for i := range cs {
		// Dense functions over 16 vars: pair conjunctions need room.
		f := bdd.Zero
		for k := 0; k < 6; k++ {
			cube := bdd.One
			for v := 0; v < 16; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = m.And(cube, m.VarRef(bdd.Var(v)))
				case 1:
					cube = m.And(cube, m.NVarRef(bdd.Var(v)))
				}
			}
			f = m.Or(f, cube)
		}
		cs[i] = f
	}
	l := NewList(m, cs...)
	// Workers inherit the limit but start from an empty table: pick a
	// bound the transferred mirror alone cannot fit under.
	m.SetNodeLimit(m.NumNodes() / 4)
	defer m.SetNodeLimit(0)
	err := bdd.Guard(func() {
		EvaluateGreedy(l, Options{Workers: 2})
	})
	if err == nil {
		t.Fatal("expected a limit error from a worker")
	}
	if _, ok := err.(*bdd.LimitError); !ok {
		t.Fatalf("got %T (%v), want *bdd.LimitError", err, err)
	}
}

// TestEvalStatsCounters: the public stats seam must agree with the
// white-box hooks (PairsScored counts exactly the hook-reported scoring
// calls, MergesApplied the hook-reported merges) and be identical
// between the sequential and parallel drivers when no pair budget is in
// play.
func TestEvalStatsCounters(t *testing.T) {
	m := newM(t)
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 20; iter++ {
		l := randList(m, rng, 2+rng.Intn(7))
		if l.Len() < 2 {
			continue
		}

		var hookScored, hookMerged int
		greedyScoreHook = func(int, int) { hookScored++ }
		greedyMergeHook = func(int, int) { hookMerged++ }
		seq := EvalStats{}
		var events [][2]int
		EvaluateGreedy(l, Options{GrowThreshold: 10, Stats: &seq,
			OnMerge: func(i, j int) { events = append(events, [2]int{i, j}) }})
		greedyScoreHook, greedyMergeHook = nil, nil

		if seq.PairsScored != hookScored || seq.MergesApplied != hookMerged {
			t.Fatalf("iter %d: stats (pairs=%d merges=%d) disagree with hooks (%d, %d)",
				iter, seq.PairsScored, seq.MergesApplied, hookScored, hookMerged)
		}
		if len(events) != seq.MergesApplied {
			t.Fatalf("iter %d: %d OnMerge events for %d merges", iter, len(events), seq.MergesApplied)
		}
		if seq.Rounds == 0 || seq.BudgetOverflow != 0 {
			t.Fatalf("iter %d: unexpected rounds=%d overflow=%d", iter, seq.Rounds, seq.BudgetOverflow)
		}

		parl := EvalStats{}
		EvaluateGreedy(l, Options{GrowThreshold: 10, Workers: 3, Stats: &parl})
		if parl != seq {
			t.Fatalf("iter %d: parallel stats %+v != sequential %+v", iter, parl, seq)
		}
	}
}
