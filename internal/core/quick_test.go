package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

// Property-based invariants of the List data structure driven through
// testing/quick. The generator derives small conjunct lists from the
// random seed values quick supplies.

func listFromSeeds(m *bdd.Manager, seeds []uint32) List {
	cs := make([]bdd.Ref, 0, len(seeds))
	for _, s := range seeds {
		rng := rand.New(rand.NewSource(int64(s)))
		cs = append(cs, randFn(m, rng))
	}
	return NewList(m, cs...)
}

func TestQuickListInvariants(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	prop := func(s1, s2, s3 uint32, opt4 bool) bool {
		seeds := []uint32{s1, s2, s3}
		if opt4 {
			seeds = append(seeds, s1^s2)
		}
		l := listFromSeeds(m, seeds)

		// Normalization idempotence.
		l2 := l.Clone()
		l2.Normalize()
		if !FastListsEqual(l, l2) {
			return false
		}
		// The policy never changes the represented set, and the exact
		// termination test agrees the results are equal.
		out := SimplifyAndEvaluate(l, Options{})
		if out.Explicit() != l.Explicit() {
			return false
		}
		if !tt.ListsEqual(l, out) {
			return false
		}
		// ContainsSet is monotone under conjunction with the explicit set.
		if !l.ContainsSet(l.Explicit()) {
			return false
		}
		// SharedSize is bounded by the sum of the individual sizes.
		total := 0
		for _, s := range l.Sizes() {
			total += s
		}
		return l.SharedSize() <= total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickImplicationAntisymmetry(t *testing.T) {
	m := newM(t)
	tt := NewTermination(m)
	prop := func(s1, s2 uint32) bool {
		x := listFromSeeds(m, []uint32{s1, s2})
		y := listFromSeeds(m, []uint32{s2, s1})
		// Mutual implication must coincide with explicit equality.
		eq := tt.ListImplies(x, y) && tt.ListImplies(y, x)
		return eq == (x.Explicit() == y.Explicit())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
