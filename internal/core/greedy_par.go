package core

import (
	"repro/internal/bdd"
	"repro/internal/par"
)

// Parallel pair scoring for the Figure 1 greedy loop.
//
// bdd.Manager is not safe for concurrent use, so each worker owns a
// private Manager (bdd.NewWorker: same variables, inherited node limit
// and deadline) holding a mirror of the live conjuncts shipped across
// with bdd.TransferAll. Scoring a pair builds P_ij entirely inside one
// worker; canonicity under a fixed variable order makes the worker-side
// Size and SharedSize equal to the main Manager's, so the ratios — and
// hence the merge decisions — are identical to the sequential path. Per
// round, only the winning conjunction crosses back to the main Manager
// (bdd.Transfer lands on the exact Ref the main Manager's own And would
// have produced), after which every worker folds the merge into its
// mirror locally.
//
// Resource behaviour: a worker that exceeds its node limit or deadline
// panics with the usual *bdd.LimitError / *bdd.DeadlineError, which
// par.Pool re-raises on the calling goroutine so verify's bdd.Guard
// boundary sees it exactly as in a sequential run. A positive
// PairBudgetFactor counts fresh allocations against the worker's own
// Manager, which starts empty each evaluation — a pair near the bound
// can therefore classify differently than sequentially (where earlier
// work may already hold parts of P_ij); semantics are unaffected.

// parScorer distributes pair construction over a worker pool.
type parScorer struct {
	m     *bdd.Manager
	opt   Options
	pool  *par.Pool
	ws    []*greedyWorker
	n     int
	owner []int32   // owner[i*n+j]: worker holding the last scored P_ij
	wref  []bdd.Ref // wref[i*n+j]: that P_ij, as a Ref in its owner
}

// greedyWorker is one worker's Manager plus its mirror of the conjuncts.
type greedyWorker struct {
	m  *bdd.Manager
	cs []bdd.Ref
}

func newParScorer(m *bdd.Manager, cs []bdd.Ref, opt Options) *parScorer {
	s := &parScorer{
		m:     m,
		opt:   opt,
		pool:  par.NewPool(opt.Workers),
		n:     len(cs),
		owner: make([]int32, len(cs)*len(cs)),
		wref:  make([]bdd.Ref, len(cs)*len(cs)),
	}
	s.ws = make([]*greedyWorker, s.pool.Size())
	// Build the worker Managers concurrently: Transfer only reads the
	// source Manager, and each task owns a distinct destination.
	s.pool.ForEach(len(s.ws), func(_, w int) {
		wm := m.NewWorker()
		s.ws[w] = &greedyWorker{m: wm, cs: bdd.TransferAll(wm, m, cs, nil)}
	})
	return s
}

func (s *parScorer) scoreAll(pairs [][2]int) []pairScore {
	out := make([]pairScore, len(pairs))
	// Tasks write to disjoint indices of out/owner/wref, and tasks on
	// the same worker id never overlap (the par.Pool contract), so the
	// worker's Manager needs no locking.
	s.pool.ForEach(len(pairs), func(w, t int) {
		gw := s.ws[w]
		i, j := pairs[t][0], pairs[t][1]
		f, g := gw.cs[i], gw.cs[j]
		den := pairDenominator(gw.m.SharedSize(f, g))
		var pr bdd.Ref
		ok := true
		if s.opt.PairBudgetFactor > 0 {
			budget := int(s.opt.PairBudgetFactor*float64(den)) + 64
			pr, ok = gw.m.AndBounded(f, g, budget)
		} else {
			pr = gw.m.And(f, g)
		}
		if !ok {
			return
		}
		s.owner[i*s.n+j] = int32(w)
		s.wref[i*s.n+j] = pr
		out[t] = pairScore{ratio: float64(gw.m.Size(pr)) / float64(den), ok: true}
	})
	return out
}

func (s *parScorer) merged(i, j int) bdd.Ref {
	gw := s.ws[s.owner[i*s.n+j]]
	return bdd.Transfer(s.m, gw.m, s.wref[i*s.n+j], nil)
}

func (s *parScorer) applyMerge(i, j int) {
	// Fold the merge into every mirror. For the owning worker the
	// conjunction is already in its unique table, so this recursion
	// allocates nothing; for the others it is one And each, run
	// concurrently (task t owns worker t here, so any goroutine may
	// execute it).
	s.pool.ForEach(len(s.ws), func(_, w int) {
		gw := s.ws[w]
		gw.cs[i] = gw.m.And(gw.cs[i], gw.cs[j])
	})
}
