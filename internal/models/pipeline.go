package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// PipelineConfig parameterizes the pipelined-processor equivalence
// problem of Section IV.B (Figure 3): a 3-stage pipeline (fetch,
// decode/execute, writeback) with a register bypass path and a branch
// stall, verified against a non-pipelined specification executing the
// same nondeterministic instruction stream, delayed two cycles to stay
// in sync. The property is that the two register files always agree.
type PipelineConfig struct {
	Regs  int // number of registers R (power of two; paper: 2 and 4)
	Width int // datapath width B in bits (paper: 1, 2, 3)

	// Assist supplies the property as a per-register partition (a user
	// assist in the ICI sense; the paper's hand-crafted assisting
	// invariants were stronger still — see EXPERIMENTS.md).
	Assist bool

	// Bug, if true, removes the register bypass on the source operand,
	// so back-to-back dependent instructions read stale values.
	Bug bool

	// SeparateRegFiles declares the two register files as separate
	// blocks (all implementation registers, then all specification
	// registers) instead of interleaving them bit by bit. This is the
	// structurally naive ordering a frontend would produce from two
	// independently-declared processors, and it makes the register-file
	// equality — and every iterate correlating the two files — far more
	// expensive, reproducing the regime of the paper's Table 3. The
	// interleaved default is the hand-optimized ordering.
	SeparateRegFiles bool
}

// The eight opcodes of the paper's instruction set.
const (
	opNOP = 0 // no operation
	opBR  = 1 // branch: no register effect, but stalls the pipeline
	opLD  = 2 // rd <- immediate
	opST  = 3 // store: no-op (memory is abstracted away)
	opADD = 4 // rd <- rd + rs
	opSUB = 5 // rd <- rd - rs
	opMOV = 6 // rd <- rs
	opSR  = 7 // rd <- rd >> 1
)

// DefaultPipeline returns the paper's configuration.
func DefaultPipeline(regs, width int) PipelineConfig {
	return PipelineConfig{Regs: regs, Width: width}
}

// NewPipeline builds the processor-equivalence problem on a fresh
// manager.
//
// Instruction encoding (LSB first): 3-bit opcode, source register,
// destination register, B-bit immediate.
func NewPipeline(m *bdd.Manager, cfg PipelineConfig) verify.Problem {
	r, bw := cfg.Regs, cfg.Width
	rb := 0
	for 1<<uint(rb) < r {
		rb++
	}
	if 1<<uint(rb) != r || r < 2 {
		panic("models: pipeline needs a power-of-two register count >= 2")
	}
	if bw < 1 {
		panic("models: pipeline needs a positive datapath width")
	}
	ilen := 3 + 2*rb + bw

	ma := fsm.New(m)

	// Instruction stream input, then the instruction-holding registers
	// interleaved: the fetched instruction (pipeline) and the first delay
	// register (spec) always carry equal values, so adjacent ordering
	// keeps their relation small.
	instrV := make([]bdd.Var, ilen)
	frV := make([]bdd.Var, ilen) // pipeline: decode/execute stage instr
	d1V := make([]bdd.Var, ilen) // spec: first delay register
	d2V := make([]bdd.Var, ilen) // spec: second delay register
	for b := 0; b < ilen; b++ {
		instrV[b] = ma.NewInputBit(fmt.Sprintf("ins%d", b))
		frV[b] = ma.NewStateBit(fmt.Sprintf("fr%d", b))
		d1V[b] = ma.NewStateBit(fmt.Sprintf("d1_%d", b))
	}
	for b := 0; b < ilen; b++ {
		d2V[b] = ma.NewStateBit(fmt.Sprintf("d2_%d", b))
	}

	// Execute/writeback latch: result, destination, write enable, and
	// the branch-in-writeback marker driving the stall.
	exResV := ma.NewStateBits("exr.", bw)
	exDstV := ma.NewStateBits("exd.", rb)
	exWE := ma.NewStateBit("exw")
	brWB := ma.NewStateBit("brw")

	// Register files: interleaved implementation/specification per bit
	// (default) or as two separate blocks (SeparateRegFiles).
	implRF := makeWordVars(r, bw)
	specRF := makeWordVars(r, bw)
	if cfg.SeparateRegFiles {
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				implRF[i][b] = ma.NewStateBit(fmt.Sprintf("ri%d.%d", i, b))
			}
		}
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				specRF[i][b] = ma.NewStateBit(fmt.Sprintf("rs%d.%d", i, b))
			}
		}
	} else {
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				implRF[i][b] = ma.NewStateBit(fmt.Sprintf("ri%d.%d", i, b))
				specRF[i][b] = ma.NewStateBit(fmt.Sprintf("rs%d.%d", i, b))
			}
		}
	}

	type decoded struct {
		op       expr.Word
		src, dst expr.Word
		imm      expr.Word
	}
	decode := func(vars []bdd.Var) decoded {
		w := expr.FromVars(m, vars)
		return decoded{
			op:  w.Truncate(3),
			src: expr.Word{M: m, Bits: w.Bits[3 : 3+rb]},
			dst: expr.Word{M: m, Bits: w.Bits[3+rb : 3+2*rb]},
			imm: expr.Word{M: m, Bits: w.Bits[3+2*rb:]},
		}
	}
	isOp := func(d decoded, code uint64) bdd.Ref { return expr.EqConst(d.op, code) }

	fr := decode(frV)
	d2 := decode(d2V)

	// Branch stall: while a BR sits in decode/execute or writeback, the
	// fetch unit receives NOPs (and the spec's intake sees the same
	// NOPs, stalling it identically).
	stall := m.Or(isOp(fr, opBR), m.VarRef(brWB))
	fetched := expr.Mux(stall, expr.Const(m, opNOP, ilen), expr.FromVars(m, instrV))
	setWord(ma, frV, fetched)
	setWord(ma, d1V, fetched)
	setWord(ma, d2V, expr.FromVars(m, d1V))

	// Execute stage (pipeline): operand fetch with bypass from the
	// writeback latch, then compute.
	exRes := expr.FromVars(m, exResV)
	exDst := expr.FromVars(m, exDstV)
	weNow := m.VarRef(exWE)

	readImpl := func(sel expr.Word, bypass bool) expr.Word {
		val := expr.Const(m, 0, bw)
		for i := r - 1; i >= 0; i-- {
			val = expr.Mux(expr.EqConst(sel, uint64(i)), expr.FromVars(m, implRF[i]), val)
		}
		if bypass {
			hit := m.And(weNow, expr.Eq(exDst, sel))
			val = expr.Mux(hit, exRes, val)
		}
		return val
	}
	rs := readImpl(fr.src, !cfg.Bug) // seeded bug: no bypass on rs
	rd := readImpl(fr.dst, true)

	execute := func(d decoded, rsV, rdV expr.Word) (expr.Word, bdd.Ref) {
		res := expr.Const(m, 0, bw)
		res = expr.Mux(isOp(d, opLD), d.imm, res)
		res = expr.Mux(isOp(d, opADD), expr.Add(rdV, rsV), res)
		res = expr.Mux(isOp(d, opSUB), expr.Sub(rdV, rsV), res)
		res = expr.Mux(isOp(d, opMOV), rsV, res)
		res = expr.Mux(isOp(d, opSR), expr.Shr(rdV, 1), res)
		we := m.OrN(isOp(d, opLD), isOp(d, opADD), isOp(d, opSUB), isOp(d, opMOV), isOp(d, opSR))
		return res, we
	}

	resNow, weNext := execute(fr, rs, rd)
	setWord(ma, exResV, resNow)
	setWord(ma, exDstV, fr.dst)
	ma.SetNext(exWE, weNext)
	ma.SetNext(brWB, isOp(fr, opBR))

	// Writeback stage: the latch contents retire into the register file.
	for i := 0; i < r; i++ {
		hit := m.AndN(weNow, expr.EqConst(exDst, uint64(i)))
		setWord(ma, implRF[i], expr.Mux(hit, exRes, expr.FromVars(m, implRF[i])))
	}

	// Specification: fetch-execute-writeback in one cycle on D2.
	specRd := expr.Const(m, 0, bw)
	specRs := expr.Const(m, 0, bw)
	for i := r - 1; i >= 0; i-- {
		w := expr.FromVars(m, specRF[i])
		specRs = expr.Mux(expr.EqConst(d2.src, uint64(i)), w, specRs)
		specRd = expr.Mux(expr.EqConst(d2.dst, uint64(i)), w, specRd)
	}
	specRes, specWE := execute(d2, specRs, specRd)
	for i := 0; i < r; i++ {
		hit := m.AndN(specWE, expr.EqConst(d2.dst, uint64(i)))
		setWord(ma, specRF[i], expr.Mux(hit, specRes, expr.FromVars(m, specRF[i])))
	}

	// Everything starts zeroed: NOPs in flight, empty latch, equal
	// register files.
	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property: the register files always agree.
	perReg := make([]bdd.Ref, r)
	good := bdd.One
	for i := 0; i < r; i++ {
		perReg[i] = expr.Eq(expr.FromVars(m, implRF[i]), expr.FromVars(m, specRF[i]))
		good = m.And(good, perReg[i])
	}

	p := verify.Problem{
		Machine: ma,
		Good:    good,
		Name:    fmt.Sprintf("pipeline-r%d-b%d", r, bw),
	}
	if cfg.Assist {
		p.GoodList = perReg
		p.Name += "-assist"
	}
	return p
}
