package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// PipelineConfig parameterizes the pipelined-processor equivalence
// problem of Section IV.B (Figure 3): a 3-stage pipeline (fetch,
// decode/execute, writeback) with a register bypass path and a branch
// stall, verified against a non-pipelined specification executing the
// same nondeterministic instruction stream, delayed two cycles to stay
// in sync. The property is that the two register files always agree.
type PipelineConfig struct {
	Regs  int // number of registers R (power of two; paper: 2 and 4)
	Width int // datapath width B in bits (paper: 1, 2, 3)

	// Assist supplies the property as a per-register partition (a user
	// assist in the ICI sense; the paper's hand-crafted assisting
	// invariants were stronger still — see EXPERIMENTS.md).
	Assist bool

	// Bug, if true, removes the register bypass on the source operand,
	// so back-to-back dependent instructions read stale values.
	Bug bool

	// SeparateRegFiles declares the two register files as separate
	// blocks (all implementation registers, then all specification
	// registers) instead of interleaving them bit by bit. This is the
	// structurally naive ordering a frontend would produce from two
	// independently-declared processors, and it makes the register-file
	// equality — and every iterate correlating the two files — far more
	// expensive, reproducing the regime of the paper's Table 3. The
	// interleaved default is the hand-optimized ordering.
	SeparateRegFiles bool
}

// The eight opcodes of the paper's instruction set.
const (
	opNOP = 0 // no operation
	opBR  = 1 // branch: no register effect, but stalls the pipeline
	opLD  = 2 // rd <- immediate
	opST  = 3 // store: no-op (memory is abstracted away)
	opADD = 4 // rd <- rd + rs
	opSUB = 5 // rd <- rd - rs
	opMOV = 6 // rd <- rs
	opSR  = 7 // rd <- rd >> 1
)

// DefaultPipeline returns the paper's configuration.
func DefaultPipeline(regs, width int) PipelineConfig {
	return PipelineConfig{Regs: regs, Width: width}
}

// BuildPipeline builds the processor-equivalence model as
// manager-independent IR.
//
// Instruction encoding (LSB first): 3-bit opcode, source register,
// destination register, B-bit immediate.
func BuildPipeline(cfg PipelineConfig) *ir.Model {
	r, bw := cfg.Regs, cfg.Width
	rb := 0
	for 1<<uint(rb) < r {
		rb++
	}
	if 1<<uint(rb) != r || r < 2 {
		panic("models: pipeline needs a power-of-two register count >= 2")
	}
	if bw < 1 {
		panic("models: pipeline needs a positive datapath width")
	}
	ilen := 3 + 2*rb + bw

	name := fmt.Sprintf("pipeline-r%d-b%d", r, bw)
	if cfg.Assist {
		name += "-assist"
	}
	b := ir.NewBuilder(name)
	b.ParamInt("regs", r)
	b.ParamInt("width", bw)
	b.ParamBool("assist", cfg.Assist)
	b.ParamBool("bug", cfg.Bug)
	b.ParamBool("separate-reg-files", cfg.SeparateRegFiles)

	// Instruction stream input, then the instruction-holding registers
	// interleaved: the fetched instruction (pipeline) and the first delay
	// register (spec) always carry equal values, so adjacent ordering
	// keeps their relation small.
	instrV := make([]*ir.Node, ilen)
	frV := make([]*ir.Node, ilen) // pipeline: decode/execute stage instr
	d1V := make([]*ir.Node, ilen) // spec: first delay register
	d2V := make([]*ir.Node, ilen) // spec: second delay register
	for i := 0; i < ilen; i++ {
		instrV[i] = b.Input(fmt.Sprintf("ins%d", i))
		frV[i] = b.State(fmt.Sprintf("fr%d", i), false)
		d1V[i] = b.State(fmt.Sprintf("d1_%d", i), false)
	}
	for i := 0; i < ilen; i++ {
		d2V[i] = b.State(fmt.Sprintf("d2_%d", i), false)
	}

	// Execute/writeback latch: result, destination, write enable, and
	// the branch-in-writeback marker driving the stall.
	exResV := b.States("exr.", bw, false)
	exDstV := b.States("exd.", rb, false)
	exWE := b.State("exw", false)
	brWB := b.State("brw", false)

	// Register files: interleaved implementation/specification per bit
	// (default) or as two separate blocks (SeparateRegFiles).
	implRF := makeBitGrid(r, bw)
	specRF := makeBitGrid(r, bw)
	if cfg.SeparateRegFiles {
		for i := 0; i < r; i++ {
			for j := 0; j < bw; j++ {
				implRF[i][j] = b.State(fmt.Sprintf("ri%d.%d", i, j), false)
			}
		}
		for i := 0; i < r; i++ {
			for j := 0; j < bw; j++ {
				specRF[i][j] = b.State(fmt.Sprintf("rs%d.%d", i, j), false)
			}
		}
	} else {
		for i := 0; i < r; i++ {
			for j := 0; j < bw; j++ {
				implRF[i][j] = b.State(fmt.Sprintf("ri%d.%d", i, j), false)
				specRF[i][j] = b.State(fmt.Sprintf("rs%d.%d", i, j), false)
			}
		}
	}

	type decoded struct {
		op       ir.Word
		src, dst ir.Word
		imm      ir.Word
	}
	decode := func(bits []*ir.Node) decoded {
		w := ir.FromNodes(bits)
		return decoded{
			op:  w.Truncate(3),
			src: w[3 : 3+rb],
			dst: w[3+rb : 3+2*rb],
			imm: w[3+2*rb:],
		}
	}
	isOp := func(d decoded, code uint64) *ir.Node { return ir.EqConstW(d.op, code) }

	fr := decode(frV)
	d2 := decode(d2V)

	// Branch stall: while a BR sits in decode/execute or writeback, the
	// fetch unit receives NOPs (and the spec's intake sees the same
	// NOPs, stalling it identically).
	stall := ir.Or(isOp(fr, opBR), brWB)
	fetched := ir.MuxW(stall, ir.ConstWord(opNOP, ilen), ir.FromNodes(instrV))
	setWord(b, frV, fetched)
	setWord(b, d1V, fetched)
	setWord(b, d2V, ir.FromNodes(d1V))

	// Execute stage (pipeline): operand fetch with bypass from the
	// writeback latch, then compute.
	exRes := ir.FromNodes(exResV)
	exDst := ir.FromNodes(exDstV)
	weNow := exWE

	readImpl := func(sel ir.Word, bypass bool) ir.Word {
		val := ir.ConstWord(0, bw)
		for i := r - 1; i >= 0; i-- {
			val = ir.MuxW(ir.EqConstW(sel, uint64(i)), ir.FromNodes(implRF[i]), val)
		}
		if bypass {
			hit := ir.And(weNow, ir.EqW(exDst, sel))
			val = ir.MuxW(hit, exRes, val)
		}
		return val
	}
	rs := readImpl(fr.src, !cfg.Bug) // seeded bug: no bypass on rs
	rd := readImpl(fr.dst, true)

	execute := func(d decoded, rsV, rdV ir.Word) (ir.Word, *ir.Node) {
		res := ir.ConstWord(0, bw)
		res = ir.MuxW(isOp(d, opLD), d.imm, res)
		res = ir.MuxW(isOp(d, opADD), ir.AddW(rdV, rsV), res)
		res = ir.MuxW(isOp(d, opSUB), ir.SubW(rdV, rsV), res)
		res = ir.MuxW(isOp(d, opMOV), rsV, res)
		res = ir.MuxW(isOp(d, opSR), ir.ShrW(rdV, 1), res)
		we := ir.Or(isOp(d, opLD), isOp(d, opADD), isOp(d, opSUB), isOp(d, opMOV), isOp(d, opSR))
		return res, we
	}

	resNow, weNext := execute(fr, rs, rd)
	setWord(b, exResV, resNow)
	setWord(b, exDstV, fr.dst)
	b.SetNext(exWE, weNext)
	b.SetNext(brWB, isOp(fr, opBR))

	// Writeback stage: the latch contents retire into the register file.
	for i := 0; i < r; i++ {
		hit := ir.And(weNow, ir.EqConstW(exDst, uint64(i)))
		setWord(b, implRF[i], ir.MuxW(hit, exRes, ir.FromNodes(implRF[i])))
	}

	// Specification: fetch-execute-writeback in one cycle on D2.
	specRd := ir.ConstWord(0, bw)
	specRs := ir.ConstWord(0, bw)
	for i := r - 1; i >= 0; i-- {
		w := ir.FromNodes(specRF[i])
		specRs = ir.MuxW(ir.EqConstW(d2.src, uint64(i)), w, specRs)
		specRd = ir.MuxW(ir.EqConstW(d2.dst, uint64(i)), w, specRd)
	}
	specRes, specWE := execute(d2, specRs, specRd)
	for i := 0; i < r; i++ {
		hit := ir.And(specWE, ir.EqConstW(d2.dst, uint64(i)))
		setWord(b, specRF[i], ir.MuxW(hit, specRes, ir.FromNodes(specRF[i])))
	}

	// Property: the register files always agree.
	perReg := make([]*ir.Node, r)
	for i := 0; i < r; i++ {
		perReg[i] = ir.EqW(ir.FromNodes(implRF[i]), ir.FromNodes(specRF[i]))
	}
	b.Goal(ir.And(perReg...))
	if cfg.Assist {
		for i := 0; i < r; i++ {
			b.Good(perReg[i])
		}
	}
	return b.Build()
}

// NewPipeline builds the processor-equivalence problem on the given
// manager — a thin shim over BuildPipeline + ir.Instantiate.
func NewPipeline(m *bdd.Manager, cfg PipelineConfig) verify.Problem {
	return BuildPipeline(cfg).MustInstantiate(m)
}
