package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// CoherenceConfig parameterizes a small directory-based MSI cache
// coherence protocol — the class of "industrial directory-based
// cache-coherence protocols" the paper's introduction names as the
// motivating workload for high-level BDD verification. One memory line,
// Caches caching agents, a directory tracking sharers and ownership;
// transactions are atomic (buffered-network effects are the business of
// the network model, not this one).
type CoherenceConfig struct {
	Caches int // number of caching agents (2..8)

	// Bug, if true, lets a cache upgrade from Shared to Modified
	// without invalidating the other sharers — the classic coherence
	// bug, violating single-writer-multiple-reader.
	Bug bool
}

// MSI cache states (2 bits per cache).
const (
	msiInvalid  = 0
	msiShared   = 1
	msiModified = 2
)

// Protocol actions chosen nondeterministically by the environment.
const (
	cohIdle    = 0
	cohRead    = 1 // requester obtains a Shared copy
	cohUpgrade = 2 // requester obtains the Modified copy
	cohEvict   = 3 // requester silently drops its copy
)

// BuildCoherence builds the MSI protocol model as manager-independent
// IR.
//
// The safety property is the conjunction of, per cache p:
//
//   - SWMR: if p is Modified, every other cache is Invalid, and
//   - directory consistency: the directory's sharer bit for p is set
//     exactly when p holds a copy, and its dirty bit is set exactly when
//     some cache is Modified.
//
// These per-cache conjuncts form the natural implicit conjunction; the
// directory-consistency half also doubles as a functional dependency
// (the directory state is a function of the cache states), exercising
// the FD engine on a protocol.
func BuildCoherence(cfg CoherenceConfig) *ir.Model {
	n := cfg.Caches
	if n < 2 || n > 8 {
		panic("models: coherence needs 2 <= Caches <= 8")
	}

	b := ir.NewBuilder(fmt.Sprintf("msi-n%d", n))
	b.ParamInt("caches", n)
	b.ParamBool("bug", cfg.Bug)

	act := b.Inputs("act", 2)
	sel := b.Inputs("csel", 3)

	// Cache states first, then the directory (whose bits are functions
	// of the cache states — good for both ordering and the FD engine).
	caches := make([][]*ir.Node, n)
	for p := 0; p < n; p++ {
		caches[p] = b.States(fmt.Sprintf("c%d.s", p), 2, false)
	}
	sharer := make([]*ir.Node, n)
	for p := 0; p < n; p++ {
		sharer[p] = b.State(fmt.Sprintf("dir.sh%d", p), false)
	}
	dirty := b.State("dir.dirty", false)

	action := ir.FromNodes(act)
	chosen := ir.FromNodes(sel)
	b.Constrain(ir.LtW(chosen, ir.ConstWord(uint64(n), 3)))

	isRead := ir.EqConstW(action, cohRead)
	isUpgrade := ir.EqConstW(action, cohUpgrade)
	isEvict := ir.EqConstW(action, cohEvict)

	st := func(p int) ir.Word { return ir.FromNodes(caches[p]) }
	inState := func(p int, s uint64) *ir.Node { return ir.EqConstW(st(p), s) }

	for p := 0; p < n; p++ {
		selP := ir.EqConstW(chosen, uint64(p))

		// Read: an Invalid requester becomes Shared (a Modified owner,
		// if any, is downgraded to Shared by the same atomic
		// transaction). Reads by non-Invalid caches are hits: no change.
		readHere := ir.And(isRead, selP, inState(p, msiInvalid))
		// A remote read downgrades a Modified copy.
		remoteRead := ir.And(isRead, ir.Not(selP), inState(p, msiModified))

		// Upgrade: the requester becomes Modified; everyone else is
		// invalidated (unless the seeded bug skips the invalidation of
		// Shared copies).
		upHere := ir.And(isUpgrade, selP, ir.Not(inState(p, msiModified)))
		remoteUp := ir.And(isUpgrade, ir.Not(selP))
		if cfg.Bug {
			// The bug: remote SHARED copies survive an upgrade. Remote
			// Modified owners are still invalidated (otherwise even the
			// buggy protocol's designers would have noticed).
			remoteUp = ir.And(remoteUp, inState(p, msiModified))
		}

		// Evict: the requester drops to Invalid (silently; the
		// directory is updated in the same transaction).
		evictHere := ir.And(isEvict, selP, ir.Not(inState(p, msiInvalid)))

		next := st(p)
		next = ir.MuxW(readHere, ir.ConstWord(msiShared, 2), next)
		next = ir.MuxW(remoteRead, ir.ConstWord(msiShared, 2), next)
		next = ir.MuxW(upHere, ir.ConstWord(msiModified, 2), next)
		next = ir.MuxW(ir.And(remoteUp, upgradeHappens(isUpgrade, chosen, st, n)), ir.ConstWord(msiInvalid, 2), next)
		next = ir.MuxW(evictHere, ir.ConstWord(msiInvalid, 2), next)
		setWord(b, caches[p], next)
	}

	// Directory: sharer bit p set iff cache p holds a copy after the
	// transaction; dirty iff some cache is Modified. Built directly from
	// the caches' next-state functions to model an atomic directory.
	for p := 0; p < n; p++ {
		nextSt := ir.WordOf(b.NextFn(caches[p][0]), b.NextFn(caches[p][1]))
		holds := ir.Not(ir.EqConstW(nextSt, msiInvalid))
		b.SetNext(sharer[p], holds)
	}
	anyDirty := ir.Bool(false)
	for p := 0; p < n; p++ {
		nextSt := ir.WordOf(b.NextFn(caches[p][0]), b.NextFn(caches[p][1]))
		anyDirty = ir.Or(anyDirty, ir.EqConstW(nextSt, msiModified))
	}
	b.SetNext(dirty, anyDirty)

	// Property conjuncts and the directory functional dependency.
	for p := 0; p < n; p++ {
		othersInvalid := ir.Bool(true)
		for q := 0; q < n; q++ {
			if q != p {
				othersInvalid = ir.And(othersInvalid, inState(q, msiInvalid))
			}
		}
		swmr := ir.Imp(inState(p, msiModified), othersInvalid)
		dirOK := ir.Xnor(sharer[p], ir.Not(inState(p, msiInvalid)))
		b.Good(ir.And(swmr, dirOK))
		b.Dep(sharer[p], ir.Not(inState(p, msiInvalid)))
	}
	anyMod := ir.Bool(false)
	for p := 0; p < n; p++ {
		anyMod = ir.Or(anyMod, inState(p, msiModified))
	}
	b.Good(ir.Xnor(dirty, anyMod))
	b.Dep(dirty, anyMod)

	return b.Build()
}

// upgradeHappens is the guard that the selected requester really
// performs an upgrade this cycle (it is not already Modified), so remote
// invalidations fire exactly when ownership changes hands.
func upgradeHappens(isUpgrade *ir.Node, chosen ir.Word, st func(int) ir.Word, n int) *ir.Node {
	fires := ir.Bool(false)
	for p := 0; p < n; p++ {
		selP := ir.EqConstW(chosen, uint64(p))
		notOwner := ir.Not(ir.EqConstW(st(p), msiModified))
		fires = ir.Or(fires, ir.And(selP, notOwner))
	}
	return ir.And(isUpgrade, fires)
}

// NewCoherence builds the MSI protocol problem on the given manager — a
// thin shim over BuildCoherence + ir.Instantiate.
func NewCoherence(m *bdd.Manager, cfg CoherenceConfig) verify.Problem {
	return BuildCoherence(cfg).MustInstantiate(m)
}
