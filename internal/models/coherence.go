package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// CoherenceConfig parameterizes a small directory-based MSI cache
// coherence protocol — the class of "industrial directory-based
// cache-coherence protocols" the paper's introduction names as the
// motivating workload for high-level BDD verification. One memory line,
// Caches caching agents, a directory tracking sharers and ownership;
// transactions are atomic (buffered-network effects are the business of
// the network model, not this one).
type CoherenceConfig struct {
	Caches int // number of caching agents (2..8)

	// Bug, if true, lets a cache upgrade from Shared to Modified
	// without invalidating the other sharers — the classic coherence
	// bug, violating single-writer-multiple-reader.
	Bug bool
}

// MSI cache states (2 bits per cache).
const (
	msiInvalid  = 0
	msiShared   = 1
	msiModified = 2
)

// Protocol actions chosen nondeterministically by the environment.
const (
	cohIdle    = 0
	cohRead    = 1 // requester obtains a Shared copy
	cohUpgrade = 2 // requester obtains the Modified copy
	cohEvict   = 3 // requester silently drops its copy
)

// NewCoherence builds the MSI protocol problem on a fresh manager.
//
// The safety property is the conjunction of, per cache p:
//
//   - SWMR: if p is Modified, every other cache is Invalid, and
//   - directory consistency: the directory's sharer bit for p is set
//     exactly when p holds a copy, and its dirty bit is set exactly when
//     some cache is Modified.
//
// These per-cache conjuncts form the natural implicit conjunction; the
// directory-consistency half also doubles as a functional dependency
// (the directory state is a function of the cache states), exercising
// the FD engine on a protocol.
func NewCoherence(m *bdd.Manager, cfg CoherenceConfig) verify.Problem {
	n := cfg.Caches
	if n < 2 || n > 8 {
		panic("models: coherence needs 2 <= Caches <= 8")
	}

	ma := fsm.New(m)

	act := ma.NewInputBits("act", 2)
	sel := ma.NewInputBits("csel", 3)

	// Cache states first, then the directory (whose bits are functions
	// of the cache states — good for both ordering and the FD engine).
	caches := make([][]bdd.Var, n)
	for p := 0; p < n; p++ {
		caches[p] = ma.NewStateBits(fmt.Sprintf("c%d.s", p), 2)
	}
	sharer := make([]bdd.Var, n)
	for p := 0; p < n; p++ {
		sharer[p] = ma.NewStateBit(fmt.Sprintf("dir.sh%d", p))
	}
	dirty := ma.NewStateBit("dir.dirty")

	action := expr.FromVars(m, act)
	chosen := expr.FromVars(m, sel)
	ma.AddInputConstraint(expr.Lt(chosen, expr.Const(m, uint64(n), 3)))

	isRead := expr.EqConst(action, cohRead)
	isUpgrade := expr.EqConst(action, cohUpgrade)
	isEvict := expr.EqConst(action, cohEvict)

	st := func(p int) expr.Word { return expr.FromVars(m, caches[p]) }
	inState := func(p int, s uint64) bdd.Ref { return expr.EqConst(st(p), s) }

	for p := 0; p < n; p++ {
		selP := expr.EqConst(chosen, uint64(p))

		// Read: an Invalid requester becomes Shared (a Modified owner,
		// if any, is downgraded to Shared by the same atomic
		// transaction). Reads by non-Invalid caches are hits: no change.
		readHere := m.AndN(isRead, selP, inState(p, msiInvalid))
		// A remote read downgrades a Modified copy.
		remoteRead := m.AndN(isRead, selP.Not(), inState(p, msiModified))

		// Upgrade: the requester becomes Modified; everyone else is
		// invalidated (unless the seeded bug skips the invalidation of
		// Shared copies).
		upHere := m.AndN(isUpgrade, selP, inState(p, msiModified).Not())
		remoteUp := m.AndN(isUpgrade, selP.Not())
		if cfg.Bug {
			// The bug: remote SHARED copies survive an upgrade. Remote
			// Modified owners are still invalidated (otherwise even the
			// buggy protocol's designers would have noticed).
			remoteUp = m.And(remoteUp, inState(p, msiModified))
		}

		// Evict: the requester drops to Invalid (silently; the
		// directory is updated in the same transaction).
		evictHere := m.AndN(isEvict, selP, inState(p, msiInvalid).Not())

		next := st(p)
		next = expr.Mux(readHere, expr.Const(m, msiShared, 2), next)
		next = expr.Mux(remoteRead, expr.Const(m, msiShared, 2), next)
		next = expr.Mux(upHere, expr.Const(m, msiModified, 2), next)
		next = expr.Mux(m.And(remoteUp, upgradeHappens(m, isUpgrade, chosen, st, n)), expr.Const(m, msiInvalid, 2), next)
		next = expr.Mux(evictHere, expr.Const(m, msiInvalid, 2), next)
		setWord(ma, caches[p], next)
	}

	// Directory: sharer bit p set iff cache p holds a copy after the
	// transaction; dirty iff some cache is Modified. Built directly from
	// the caches' next-state functions to model an atomic directory.
	for p := 0; p < n; p++ {
		nextSt := expr.Word{M: m, Bits: []bdd.Ref{ma.NextFn(caches[p][0]), ma.NextFn(caches[p][1])}}
		holds := expr.EqConst(nextSt, msiInvalid).Not()
		ma.SetNext(sharer[p], holds)
	}
	anyDirty := bdd.Zero
	for p := 0; p < n; p++ {
		nextSt := expr.Word{M: m, Bits: []bdd.Ref{ma.NextFn(caches[p][0]), ma.NextFn(caches[p][1])}}
		anyDirty = m.Or(anyDirty, expr.EqConst(nextSt, msiModified))
	}
	ma.SetNext(dirty, anyDirty)

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property conjuncts and the directory functional dependency.
	var goodList []bdd.Ref
	var deps []verify.Dependency
	for p := 0; p < n; p++ {
		othersInvalid := bdd.One
		for q := 0; q < n; q++ {
			if q != p {
				othersInvalid = m.And(othersInvalid, inState(q, msiInvalid))
			}
		}
		swmr := m.Imp(inState(p, msiModified), othersInvalid)
		dirOK := m.Xnor(m.VarRef(sharer[p]), inState(p, msiInvalid).Not())
		goodList = append(goodList, m.And(swmr, dirOK))
		deps = append(deps, verify.Dependency{Var: sharer[p], Def: inState(p, msiInvalid).Not()})
	}
	anyMod := bdd.Zero
	for p := 0; p < n; p++ {
		anyMod = m.Or(anyMod, inState(p, msiModified))
	}
	goodList = append(goodList, m.Xnor(m.VarRef(dirty), anyMod))
	deps = append(deps, verify.Dependency{Var: dirty, Def: anyMod})

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Deps:     deps,
		Name:     fmt.Sprintf("msi-n%d", n),
	}
}

// upgradeHappens is the guard that the selected requester really
// performs an upgrade this cycle (it is not already Modified), so remote
// invalidations fire exactly when ownership changes hands.
func upgradeHappens(m *bdd.Manager, isUpgrade bdd.Ref, chosen expr.Word, st func(int) expr.Word, n int) bdd.Ref {
	fires := bdd.Zero
	for p := 0; p < n; p++ {
		selP := expr.EqConst(chosen, uint64(p))
		notOwner := expr.EqConst(st(p), msiModified).Not()
		fires = m.Or(fires, m.And(selP, notOwner))
	}
	return m.And(isUpgrade, fires)
}
