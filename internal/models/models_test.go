package models

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

// Cross-method agreement on small instances is the strongest end-to-end
// check available: four independent algorithms (two of which never build
// the same intermediate BDDs) must reach the same verdict.

func runAll(t *testing.T, p verify.Problem, methods []verify.Method, want verify.Outcome) {
	t.Helper()
	for _, method := range methods {
		res := verify.Run(p, method, verify.Options{})
		if res.Outcome != want {
			t.Fatalf("%s on %s: outcome %v (%s), want %v",
				method, p.Name, res.Outcome, res.Why, want)
		}
	}
}

var fourMethods = []verify.Method{verify.Forward, verify.Backward, verify.ICI, verify.XICI}

func TestFIFOVerifies(t *testing.T) {
	for _, depth := range []int{1, 2, 5} {
		p := NewFIFO(bdd.New(), DefaultFIFO(depth))
		runAll(t, p, fourMethods, verify.Verified)
	}
}

func TestFIFOBugCaught(t *testing.T) {
	cfg := DefaultFIFO(3)
	cfg.Bug = true
	p := NewFIFO(bdd.New(), cfg)
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if res.Trace == nil {
			t.Fatalf("%s: missing trace", method)
		}
		if err := res.Trace.Validate(p.Machine, p.GoodList); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
		// An over-bound value reaches slot 0 in one step: depth 1.
		if res.ViolationDepth != 1 {
			t.Fatalf("%s: violation depth %d, want 1", method, res.ViolationDepth)
		}
	}
}

func TestFIFOConjunctShape(t *testing.T) {
	// The paper reports per-slot conjuncts of ~9 nodes each for the
	// 8-bit, bound-128 FIFO, with XICI/ICI holding the list at exactly
	// depth-many conjuncts.
	p := NewFIFO(bdd.New(), DefaultFIFO(5))
	res := verify.Run(p, verify.XICI, verify.Options{})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if len(res.PeakProfile) != 5 {
		t.Fatalf("conjunct count %d, want 5 (profile %v)", len(res.PeakProfile), res.PeakProfile)
	}
	for _, s := range res.PeakProfile {
		if s > 12 {
			t.Fatalf("per-slot conjunct too big: %v", res.PeakProfile)
		}
	}
	// Converges immediately: the backimage of each slot constraint is
	// the previous slot's constraint, already in the list.
	if res.Iterations > 1 {
		t.Fatalf("XICI took %d iterations on the FIFO, want <= 1", res.Iterations)
	}
}

func TestFIFOMonolithicBlowupShape(t *testing.T) {
	// The monolithic property must be dramatically larger than the
	// implicit list (the paper's 32767-node G_i at depth 10): check the
	// relative shape at a modest depth.
	p := NewFIFO(bdd.New(), DefaultFIFO(8))
	bk := verify.Run(p, verify.Backward, verify.Options{})
	xi := verify.Run(p, verify.XICI, verify.Options{})
	if bk.Outcome != verify.Verified || xi.Outcome != verify.Verified {
		t.Fatalf("outcomes %v %v", bk.Outcome, xi.Outcome)
	}
	if bk.PeakStateNodes < 8*xi.PeakStateNodes {
		t.Fatalf("expected monolithic blowup: Bkwd %d vs XICI %d nodes",
			bk.PeakStateNodes, xi.PeakStateNodes)
	}
}

func TestNetworkVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		p := NewNetwork(bdd.New(), NetworkConfig{Procs: n})
		runAll(t, p, fourMethods, verify.Verified)
		// FD with the counter dependencies.
		res := verify.Run(p, verify.FD, verify.Options{})
		if res.Outcome != verify.Verified {
			t.Fatalf("FD on n=%d: %v (%s)", n, res.Outcome, res.Why)
		}
	}
}

func TestNetworkBugCaught(t *testing.T) {
	p := NewNetwork(bdd.New(), NetworkConfig{Procs: 2, Bug: true})
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if err := res.Trace.Validate(p.Machine, p.GoodList); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
	}
	// FD flags the same bug through the dependency failing.
	if res := verify.Run(p, verify.FD, verify.Options{}); res.Outcome != verify.Violated {
		t.Fatalf("FD: outcome %v, want violated", res.Outcome)
	}
}

func TestNetworkFDShrinksIterates(t *testing.T) {
	p := NewNetwork(bdd.New(), NetworkConfig{Procs: 3})
	fd := verify.Run(p, verify.FD, verify.Options{})
	fwd := verify.Run(p, verify.Forward, verify.Options{})
	if fd.Outcome != verify.Verified || fwd.Outcome != verify.Verified {
		t.Fatalf("outcomes %v %v", fd.Outcome, fwd.Outcome)
	}
	// The FD row of Table 1 shows much smaller R_i (41 vs 1198 nodes):
	// the counters are projected away.
	if fd.PeakStateNodes*4 > fwd.PeakStateNodes {
		t.Fatalf("FD peak %d not well below Forward peak %d", fd.PeakStateNodes, fwd.PeakStateNodes)
	}
}

func TestFilterVerifiesSmall(t *testing.T) {
	// Narrow samples keep the monolithic engines workable for the
	// cross-check.
	for _, depth := range []int{2, 4} {
		cfg := FilterConfig{Depth: depth, SampleWidth: 3}
		p := NewFilter(bdd.New(), cfg)
		runAll(t, p, fourMethods, verify.Verified)

		cfg.Assist = true
		pa := NewFilter(bdd.New(), cfg)
		runAll(t, pa, []verify.Method{verify.ICI, verify.XICI}, verify.Verified)
	}
}

func TestFilterBugCaught(t *testing.T) {
	cfg := FilterConfig{Depth: 4, SampleWidth: 3, Bug: true}
	p := NewFilter(bdd.New(), cfg)
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if err := res.Trace.Validate(p.Machine, []bdd.Ref{p.Good}); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
	}
}

func TestFilterXICIDerivesLayerInvariants(t *testing.T) {
	// Table 2's headline: without assisting invariants XICI still
	// verifies, holding one conjunct per adder-tree layer — the derived
	// assisting invariants.
	cfg := FilterConfig{Depth: 4, SampleWidth: 4}
	p := NewFilter(bdd.New(), cfg)
	res := verify.Run(p, verify.XICI, verify.Options{})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if len(res.PeakProfile) < 2 {
		t.Fatalf("expected a derived multi-conjunct list, got profile %v", res.PeakProfile)
	}

	// With the user-supplied invariants the conjunct count matches the
	// layer count and the peak is no larger.
	cfg.Assist = true
	pa := NewFilter(bdd.New(), cfg)
	ra := verify.Run(pa, verify.XICI, verify.Options{})
	if ra.Outcome != verify.Verified {
		t.Fatalf("assisted outcome %v", ra.Outcome)
	}
	if len(ra.PeakProfile) != 2 { // log2(4) layers
		t.Fatalf("assisted conjunct count %d, want 2 (profile %v)", len(ra.PeakProfile), ra.PeakProfile)
	}
}

func TestPipelineVerifies(t *testing.T) {
	for _, cfg := range []PipelineConfig{
		{Regs: 2, Width: 1},
		{Regs: 2, Width: 2},
		{Regs: 4, Width: 1},
	} {
		p := NewPipeline(bdd.New(), cfg)
		runAll(t, p, fourMethods, verify.Verified)
	}
}

func TestPipelineBypassBugCaught(t *testing.T) {
	p := NewPipeline(bdd.New(), PipelineConfig{Regs: 2, Width: 1, Bug: true})
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if err := res.Trace.Validate(p.Machine, []bdd.Ref{p.Good}); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
		// The shortest failure needs a LD to enter the latch and a
		// dependent op to read stale data, then a writeback: depth >= 3.
		if res.ViolationDepth < 3 {
			t.Fatalf("%s: suspiciously short violation depth %d", method, res.ViolationDepth)
		}
	}
}

func TestPipelineAssistPartition(t *testing.T) {
	cfg := PipelineConfig{Regs: 2, Width: 2, Assist: true}
	p := NewPipeline(bdd.New(), cfg)
	if len(p.GoodList) != 2 {
		t.Fatalf("assist partition has %d conjuncts, want 2", len(p.GoodList))
	}
	res := verify.Run(p, verify.XICI, verify.Options{})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestModelConfigValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"fifo-zero-depth":    func() { NewFIFO(bdd.New(), FIFOConfig{Width: 8}) },
		"network-zero":       func() { NewNetwork(bdd.New(), NetworkConfig{}) },
		"network-too-big":    func() { NewNetwork(bdd.New(), NetworkConfig{Procs: 16}) },
		"filter-not-pow2":    func() { NewFilter(bdd.New(), FilterConfig{Depth: 3, SampleWidth: 4}) },
		"filter-zero-width":  func() { NewFilter(bdd.New(), FilterConfig{Depth: 4}) },
		"pipeline-not-pow2":  func() { NewPipeline(bdd.New(), PipelineConfig{Regs: 3, Width: 1}) },
		"pipeline-zero-bits": func() { NewPipeline(bdd.New(), PipelineConfig{Regs: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: invalid config did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestReachabilityInvariants drives the simulation path: random walks
// from the initial state must stay inside the symbolic reachable set.
func TestReachabilityInvariants(t *testing.T) {
	p := NewNetwork(bdd.New(), NetworkConfig{Procs: 2})
	reach, _, err := verify.ReachableStates(p, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ma := p.Machine
	m := ma.M
	state := m.SatAssignment(ma.Init())
	for step := 0; step < 30; step++ {
		if !m.Eval(reach, state) {
			t.Fatalf("simulated state escaped the reachable set at step %d", step)
		}
		next, ok := ma.PickTransitionInto(state, bdd.One)
		if !ok {
			t.Fatal("no enabled transition")
		}
		var err error
		state, err = ma.Step(next)
		if err != nil {
			t.Fatal(err)
		}
	}
}
