package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// FilterConfig parameterizes the moving-average filter of Section IV
// (Figure 2): a pipelined tree of adders (the implementation) against a
// combinational average delayed in a FIFO (the specification), both fed
// by the same sample stream. Depth must be a power of two; the paper
// verifies depths 4, 8 and 16 with 8-bit samples.
type FilterConfig struct {
	Depth       int // window size N (power of two)
	SampleWidth int // bits per sample (paper: 8)

	// Assist supplies the user-written assisting invariants of Table 1:
	// one conjunct per adder-tree layer equating the layer's average
	// with the corresponding entry of the specification's delay FIFO.
	// Without Assist the property is the single output equality, the
	// Table 2 setting in which only XICI succeeds.
	Assist bool

	// Bug, if true, wires one first-layer adder to add the same sample
	// twice, so implementation and specification diverge.
	Bug bool
}

// DefaultFilter returns the paper's configuration at a given depth.
func DefaultFilter(depth int, assist bool) FilterConfig {
	return FilterConfig{Depth: depth, SampleWidth: 8, Assist: assist}
}

// BuildFilter builds the moving-average filter model as
// manager-independent IR.
func BuildFilter(cfg FilterConfig) *ir.Model {
	n, w := cfg.Depth, cfg.SampleWidth
	if w <= 0 {
		panic("models: filter needs positive sample width")
	}
	levels := 0
	for 1<<uint(levels) < n {
		levels++
	}
	if 1<<uint(levels) != n || n < 2 {
		panic("models: filter depth must be a power of two >= 2")
	}

	name := fmt.Sprintf("mafilter-d%d-w%d", n, w)
	if cfg.Assist {
		name += "-assist"
	}
	b := ir.NewBuilder(name)
	b.ParamInt("depth", n)
	b.ParamInt("sample-width", w)
	b.ParamBool("assist", cfg.Assist)
	b.ParamBool("bug", cfg.Bug)

	// Declare all words bit-slice interleaved: for each bit position,
	// the sample input, then the window, the pipeline layers, and the
	// spec FIFO. Widths differ per word; narrower words simply stop
	// contributing slices.
	sample := make([]*ir.Node, w)          // input
	window := makeBitGrid(n, w)            // shared sample shift register
	layers := make([][][]*ir.Node, levels) // layers[k-1][j] = P_k[j], width w+k
	for k := 1; k <= levels; k++ {
		layers[k-1] = makeBitGrid(n>>uint(k), w+k)
	}
	fifo := makeBitGrid(levels, w) // fifo[j-1] = F_j, width w

	maxW := w + levels
	for i := 0; i < maxW; i++ {
		if i < w {
			sample[i] = b.Input(fmt.Sprintf("smp%d", i))
			for j := 0; j < n; j++ {
				window[j][i] = b.State(fmt.Sprintf("w%d.%d", j, i), false)
			}
		}
		for k := 1; k <= levels; k++ {
			if i < w+k {
				for j := range layers[k-1] {
					layers[k-1][j][i] = b.State(fmt.Sprintf("p%d_%d.%d", k, j, i), false)
				}
			}
		}
		if i < w {
			for j := 0; j < levels; j++ {
				fifo[j][i] = b.State(fmt.Sprintf("f%d.%d", j+1, i), false)
			}
		}
	}

	words := func(vv [][]*ir.Node) []ir.Word {
		out := make([]ir.Word, len(vv))
		for i, v := range vv {
			out[i] = ir.FromNodes(v)
		}
		return out
	}

	winW := words(window)
	layerW := make([][]ir.Word, levels)
	for k := range layers {
		layerW[k] = words(layers[k])
	}
	fifoW := words(fifo)

	// Window shift register.
	setWord(b, window[0], ir.FromNodes(sample))
	for i := 1; i < n; i++ {
		setWord(b, window[i], winW[i-1])
	}

	// Pipelined adder tree: layer k registers latch sums of the previous
	// layer's (or the window's) current contents.
	for j := range layers[0] {
		x, y := winW[2*j], winW[2*j+1]
		if cfg.Bug && j == 0 {
			y = x // seeded bug: adds the same sample twice
		}
		setWord(b, layers[0][j], ir.AddExpand(x, y))
	}
	for k := 2; k <= levels; k++ {
		for j := range layers[k-1] {
			setWord(b, layers[k-1][j], ir.AddExpand(layerW[k-2][2*j], layerW[k-2][2*j+1]))
		}
	}

	// Specification: combinational average of the window, delayed in the
	// FIFO to match the pipeline depth.
	specAvg := average(sumTree(winW), levels, w)
	setWord(b, fifo[0], specAvg)
	for j := 1; j < levels; j++ {
		setWord(b, fifo[j], fifoW[j-1])
	}

	// Output equality: the pipelined tree's (discarded-bits) average
	// equals the fully delayed spec average.
	implAvg := average(layerW[levels-1][0], levels, w)
	b.Goal(ir.EqW(implAvg, fifoW[levels-1]))

	if cfg.Assist {
		// One invariant per layer: the average of layer k equals FIFO
		// entry k (the last one is the output property itself).
		for k := 1; k <= levels; k++ {
			layerSum := sumTree(layerW[k-1])
			b.Good(ir.EqW(average(layerSum, levels, w), fifoW[k-1]))
		}
	}
	return b.Build()
}

// NewFilter builds the moving-average filter problem on the given
// manager — a thin shim over BuildFilter + ir.Instantiate.
func NewFilter(m *bdd.Manager, cfg FilterConfig) verify.Problem {
	return BuildFilter(cfg).MustInstantiate(m)
}

// makeBitGrid allocates the slot structure for count words of the given
// width (nodes are declared later, slice-interleaved).
func makeBitGrid(count, width int) [][]*ir.Node {
	out := make([][]*ir.Node, count)
	for i := range out {
		out[i] = make([]*ir.Node, width)
	}
	return out
}

// setWord assigns a word-valued next-state function bit by bit.
func setWord(b *ir.Builder, bits []*ir.Node, next ir.Word) {
	if len(bits) != next.Width() {
		panic(fmt.Sprintf("models: setWord width mismatch: %d vars, %d bits", len(bits), next.Width()))
	}
	for i, v := range bits {
		b.SetNext(v, next.Bit(i))
	}
}

// sumTree adds a power-of-two list of equal-width words as a balanced
// tree, growing one bit per level (full precision).
func sumTree(ws []ir.Word) ir.Word {
	if len(ws) == 1 {
		return ws[0]
	}
	next := make([]ir.Word, len(ws)/2)
	for i := range next {
		next[i] = ir.AddExpand(ws[2*i], ws[2*i+1])
	}
	return sumTree(next)
}

// average discards the low `levels` bits of a full-precision sum (the
// "3-bit discard" of Figure 2 for depth 8) and truncates to the sample
// width.
func average(sum ir.Word, levels, width int) ir.Word {
	return ir.ShrW(sum, levels).Truncate(width)
}
