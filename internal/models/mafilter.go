package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// FilterConfig parameterizes the moving-average filter of Section IV
// (Figure 2): a pipelined tree of adders (the implementation) against a
// combinational average delayed in a FIFO (the specification), both fed
// by the same sample stream. Depth must be a power of two; the paper
// verifies depths 4, 8 and 16 with 8-bit samples.
type FilterConfig struct {
	Depth       int // window size N (power of two)
	SampleWidth int // bits per sample (paper: 8)

	// Assist supplies the user-written assisting invariants of Table 1:
	// one conjunct per adder-tree layer equating the layer's average
	// with the corresponding entry of the specification's delay FIFO.
	// Without Assist the property is the single output equality, the
	// Table 2 setting in which only XICI succeeds.
	Assist bool

	// Bug, if true, wires one first-layer adder to add the same sample
	// twice, so implementation and specification diverge.
	Bug bool
}

// DefaultFilter returns the paper's configuration at a given depth.
func DefaultFilter(depth int, assist bool) FilterConfig {
	return FilterConfig{Depth: depth, SampleWidth: 8, Assist: assist}
}

// NewFilter builds the moving-average filter problem on a fresh manager.
func NewFilter(m *bdd.Manager, cfg FilterConfig) verify.Problem {
	n, w := cfg.Depth, cfg.SampleWidth
	if w <= 0 {
		panic("models: filter needs positive sample width")
	}
	levels := 0
	for 1<<uint(levels) < n {
		levels++
	}
	if 1<<uint(levels) != n || n < 2 {
		panic("models: filter depth must be a power of two >= 2")
	}

	ma := fsm.New(m)

	// Declare all words bit-slice interleaved: for each bit position,
	// the sample input, then the window, the pipeline layers, and the
	// spec FIFO. Widths differ per word; narrower words simply stop
	// contributing slices.
	sample := make([]bdd.Var, w)          // input
	window := makeWordVars(n, w)          // shared sample shift register
	layers := make([][][]bdd.Var, levels) // layers[k-1][j] = P_k[j], width w+k
	for k := 1; k <= levels; k++ {
		layers[k-1] = makeWordVars(n>>uint(k), w+k)
	}
	fifo := makeWordVars(levels, w) // fifo[j-1] = F_j, width w

	maxW := w + levels
	for b := 0; b < maxW; b++ {
		if b < w {
			sample[b] = ma.NewInputBit(fmt.Sprintf("smp%d", b))
			for i := 0; i < n; i++ {
				window[i][b] = ma.NewStateBit(fmt.Sprintf("w%d.%d", i, b))
			}
		}
		for k := 1; k <= levels; k++ {
			if b < w+k {
				for j := range layers[k-1] {
					layers[k-1][j][b] = ma.NewStateBit(fmt.Sprintf("p%d_%d.%d", k, j, b))
				}
			}
		}
		if b < w {
			for j := 0; j < levels; j++ {
				fifo[j][b] = ma.NewStateBit(fmt.Sprintf("f%d.%d", j+1, b))
			}
		}
	}

	words := func(vv [][]bdd.Var) []expr.Word {
		out := make([]expr.Word, len(vv))
		for i, v := range vv {
			out[i] = expr.FromVars(m, v)
		}
		return out
	}

	winW := words(window)
	layerW := make([][]expr.Word, levels)
	for k := range layers {
		layerW[k] = words(layers[k])
	}
	fifoW := words(fifo)

	// Window shift register.
	setWord(ma, window[0], expr.FromVars(m, sample))
	for i := 1; i < n; i++ {
		setWord(ma, window[i], winW[i-1])
	}

	// Pipelined adder tree: layer k registers latch sums of the previous
	// layer's (or the window's) current contents.
	for j := range layers[0] {
		a, b := winW[2*j], winW[2*j+1]
		if cfg.Bug && j == 0 {
			b = a // seeded bug: adds the same sample twice
		}
		setWord(ma, layers[0][j], expr.AddExpand(a, b))
	}
	for k := 2; k <= levels; k++ {
		for j := range layers[k-1] {
			setWord(ma, layers[k-1][j], expr.AddExpand(layerW[k-2][2*j], layerW[k-2][2*j+1]))
		}
	}

	// Specification: combinational average of the window, delayed in the
	// FIFO to match the pipeline depth.
	specAvg := average(sumTree(winW), levels, w)
	setWord(ma, fifo[0], specAvg)
	for j := 1; j < levels; j++ {
		setWord(ma, fifo[j], fifoW[j-1])
	}

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Output equality: the pipelined tree's (discarded-bits) average
	// equals the fully delayed spec average.
	implAvg := average(layerW[levels-1][0], levels, w)
	output := expr.Eq(implAvg, fifoW[levels-1])

	p := verify.Problem{
		Machine: ma,
		Good:    output,
		Name:    fmt.Sprintf("mafilter-d%d-w%d", n, w),
	}
	if cfg.Assist {
		// One invariant per layer: the average of layer k equals FIFO
		// entry k (the last one is the output property itself).
		goodList := make([]bdd.Ref, levels)
		for k := 1; k <= levels; k++ {
			layerSum := sumTree(layerW[k-1])
			goodList[k-1] = expr.Eq(average(layerSum, levels, w), fifoW[k-1])
		}
		p.GoodList = goodList
		p.Name += "-assist"
	}
	return p
}

// makeWordVars allocates the slot structure for count words of the given
// width (variables are declared later, slice-interleaved).
func makeWordVars(count, width int) [][]bdd.Var {
	out := make([][]bdd.Var, count)
	for i := range out {
		out[i] = make([]bdd.Var, width)
	}
	return out
}

// setWord assigns a word-valued next-state function bit by bit.
func setWord(ma *fsm.Machine, vars []bdd.Var, next expr.Word) {
	if len(vars) != next.Width() {
		panic(fmt.Sprintf("models: setWord width mismatch: %d vars, %d bits", len(vars), next.Width()))
	}
	for b, v := range vars {
		ma.SetNext(v, next.Bit(b))
	}
}

// sumTree adds a power-of-two list of equal-width words as a balanced
// tree, growing one bit per level (full precision).
func sumTree(ws []expr.Word) expr.Word {
	if len(ws) == 1 {
		return ws[0]
	}
	next := make([]expr.Word, len(ws)/2)
	for i := range next {
		next[i] = expr.AddExpand(ws[2*i], ws[2*i+1])
	}
	return sumTree(next)
}

// average discards the low `levels` bits of a full-precision sum (the
// "3-bit discard" of Figure 2 for depth 8) and truncates to the sample
// width.
func average(sum expr.Word, levels, width int) expr.Word {
	return expr.Shr(sum, levels).Truncate(width)
}
