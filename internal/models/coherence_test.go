package models

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

func TestCoherenceVerifies(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		p := NewCoherence(bdd.New(), CoherenceConfig{Caches: n})
		runAll(t, p, fourMethods, verify.Verified)
		// And the FD engine via the directory dependency.
		res := verify.Run(p, verify.FD, verify.Options{})
		if res.Outcome != verify.Verified {
			t.Fatalf("FD on n=%d: %v (%s)", n, res.Outcome, res.Why)
		}
	}
}

func TestCoherenceBugCaught(t *testing.T) {
	p := NewCoherence(bdd.New(), CoherenceConfig{Caches: 3, Bug: true})
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if err := res.Trace.Validate(p.Machine, p.GoodList); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
		// Shortest failure: a read brings a sharer in, then a second
		// cache upgrades without invalidating: 2 transactions.
		if res.ViolationDepth != 2 {
			t.Fatalf("%s: violation depth %d, want 2", method, res.ViolationDepth)
		}
	}
}

// TestCoherenceProtocolSemantics spot-checks concrete transactions by
// simulation: read sharing, ownership transfer, invalidation on upgrade.
func TestCoherenceProtocolSemantics(t *testing.T) {
	m := bdd.New()
	p := NewCoherence(m, CoherenceConfig{Caches: 2})
	ma := p.Machine

	state := m.SatAssignment(ma.Init())
	step := func(action, cache uint64) {
		t.Helper()
		in := append([]bool(nil), state...)
		// act bits are the first two declared variables; csel the next
		// three (declaration order in NewCoherence).
		iv := ma.InputVars()
		in[iv[0]] = action&1 != 0
		in[iv[1]] = action&2 != 0
		in[iv[2]] = cache&1 != 0
		in[iv[3]] = cache&2 != 0
		in[iv[4]] = cache&4 != 0
		next, err := ma.Step(in)
		if err != nil {
			t.Fatalf("step rejected: %v", err)
		}
		state = next
	}
	cacheState := func(p int) uint64 {
		vs := ma.CurVars()
		// Cache p's two bits are the (2p)th and (2p+1)th state bits.
		v := uint64(0)
		if state[vs[2*p]] {
			v |= 1
		}
		if state[vs[2*p+1]] {
			v |= 2
		}
		return v
	}

	step(cohRead, 0) // cache 0 reads: Shared
	if cacheState(0) != msiShared || cacheState(1) != msiInvalid {
		t.Fatalf("after read: %d %d", cacheState(0), cacheState(1))
	}
	step(cohUpgrade, 1) // cache 1 writes: Modified, cache 0 invalidated
	if cacheState(0) != msiInvalid || cacheState(1) != msiModified {
		t.Fatalf("after upgrade: %d %d", cacheState(0), cacheState(1))
	}
	step(cohRead, 0) // cache 0 reads back: both Shared (owner downgraded)
	if cacheState(0) != msiShared || cacheState(1) != msiShared {
		t.Fatalf("after second read: %d %d", cacheState(0), cacheState(1))
	}
	step(cohEvict, 0) // cache 0 evicts
	if cacheState(0) != msiInvalid || cacheState(1) != msiShared {
		t.Fatalf("after evict: %d %d", cacheState(0), cacheState(1))
	}
	// Property holds along the whole run (it must: protocol is correct).
	for _, g := range p.GoodList {
		if !m.Eval(g, state) {
			t.Fatal("property violated on a legal run")
		}
	}
}

func TestCoherenceConfigValidation(t *testing.T) {
	for _, n := range []int{0, 1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Caches=%d did not panic", n)
				}
			}()
			NewCoherence(bdd.New(), CoherenceConfig{Caches: n})
		}()
	}
}
