package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// FIFOConfig parameterizes the typed FIFO queue of Section IV.A: a
// Width-bit wide shift-register queue of Depth slots whose input obeys
// the type constraint value <= Bound (the paper uses Width 8, Bound 128,
// and reports depths with per-slot conjuncts of ~9 nodes, matching
// depths 5 and 10 for its two table groups).
type FIFOConfig struct {
	Width int    // bits per item (paper: 8)
	Depth int    // queue depth
	Bound uint64 // type constraint: items are <= Bound (paper: 128)

	// Bug, if true, drops the input type constraint so untyped values
	// enter the queue and the property fails.
	Bug bool

	// SlotMajor declares the state variables slot by slot instead of
	// interleaving the bit-slices of all slots — the naive ordering a
	// frontend would produce. Provided for the ordering ablation: the
	// monolithic good-state BDD is exponentially larger without the
	// interleaving heuristic the paper cites (ref [19]).
	SlotMajor bool
}

// DefaultFIFO returns the paper's configuration at a given depth.
func DefaultFIFO(depth int) FIFOConfig {
	return FIFOConfig{Width: 8, Depth: depth, Bound: 128}
}

// BuildFIFO builds the typed FIFO model as manager-independent IR. The
// variable order interleaves the bit-slices of all slots (input bit b,
// then bit b of every slot), the standard datapath ordering heuristic.
//
// The property — every slot obeys the type constraint — is the natural
// per-slot implicit conjunction (the good list), which is the partition
// the ICI method needs.
func BuildFIFO(cfg FIFOConfig) *ir.Model {
	if cfg.Width <= 0 || cfg.Depth <= 0 {
		panic("models: FIFO needs positive width and depth")
	}
	b := ir.NewBuilder(fmt.Sprintf("fifo-w%d-d%d", cfg.Width, cfg.Depth))
	b.ParamInt("width", cfg.Width)
	b.ParamInt("depth", cfg.Depth)
	b.Param("bound", fmt.Sprintf("%d", cfg.Bound))
	b.ParamBool("bug", cfg.Bug)
	b.ParamBool("slot-major", cfg.SlotMajor)

	in := make([]*ir.Node, cfg.Width)
	slots := make([][]*ir.Node, cfg.Depth)
	for d := range slots {
		slots[d] = make([]*ir.Node, cfg.Width)
	}
	if cfg.SlotMajor {
		for i := 0; i < cfg.Width; i++ {
			in[i] = b.Input(fmt.Sprintf("in%d", i))
		}
		for d := 0; d < cfg.Depth; d++ {
			for i := 0; i < cfg.Width; i++ {
				slots[d][i] = b.State(fmt.Sprintf("q%d.%d", d, i), false)
			}
		}
	} else {
		for i := 0; i < cfg.Width; i++ {
			in[i] = b.Input(fmt.Sprintf("in%d", i))
			for d := 0; d < cfg.Depth; d++ {
				slots[d][i] = b.State(fmt.Sprintf("q%d.%d", d, i), false)
			}
		}
	}

	if !cfg.Bug {
		b.Constrain(ir.LeConstW(ir.FromNodes(in), cfg.Bound))
	}

	// Shift register: slot 0 takes the input, slot d takes slot d-1.
	for i := 0; i < cfg.Width; i++ {
		b.SetNext(slots[0][i], in[i])
		for d := 1; d < cfg.Depth; d++ {
			b.SetNext(slots[d][i], slots[d-1][i])
		}
	}

	for d := 0; d < cfg.Depth; d++ {
		b.Good(ir.LeConstW(ir.FromNodes(slots[d]), cfg.Bound))
	}
	return b.Build()
}

// NewFIFO builds the typed FIFO problem on the given manager — a thin
// shim over BuildFIFO + ir.Instantiate.
func NewFIFO(m *bdd.Manager, cfg FIFOConfig) verify.Problem {
	return BuildFIFO(cfg).MustInstantiate(m)
}
