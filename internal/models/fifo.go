package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// FIFOConfig parameterizes the typed FIFO queue of Section IV.A: a
// Width-bit wide shift-register queue of Depth slots whose input obeys
// the type constraint value <= Bound (the paper uses Width 8, Bound 128,
// and reports depths with per-slot conjuncts of ~9 nodes, matching
// depths 5 and 10 for its two table groups).
type FIFOConfig struct {
	Width int    // bits per item (paper: 8)
	Depth int    // queue depth
	Bound uint64 // type constraint: items are <= Bound (paper: 128)

	// Bug, if true, drops the input type constraint so untyped values
	// enter the queue and the property fails.
	Bug bool

	// SlotMajor declares the state variables slot by slot instead of
	// interleaving the bit-slices of all slots — the naive ordering a
	// frontend would produce. Provided for the ordering ablation: the
	// monolithic good-state BDD is exponentially larger without the
	// interleaving heuristic the paper cites (ref [19]).
	SlotMajor bool
}

// DefaultFIFO returns the paper's configuration at a given depth.
func DefaultFIFO(depth int) FIFOConfig {
	return FIFOConfig{Width: 8, Depth: depth, Bound: 128}
}

// NewFIFO builds the typed FIFO problem on a fresh manager. The variable
// order interleaves the bit-slices of all slots (input bit b, then bit b
// of every slot), the standard datapath ordering heuristic.
//
// The property — every slot obeys the type constraint — is supplied both
// monolithically (Good) and as the natural per-slot implicit conjunction
// (GoodList), which is the partition the ICI method needs.
func NewFIFO(m *bdd.Manager, cfg FIFOConfig) verify.Problem {
	if cfg.Width <= 0 || cfg.Depth <= 0 {
		panic("models: FIFO needs positive width and depth")
	}
	ma := fsm.New(m)

	in := make([]bdd.Var, cfg.Width)
	slots := make([][]bdd.Var, cfg.Depth)
	for d := range slots {
		slots[d] = make([]bdd.Var, cfg.Width)
	}
	if cfg.SlotMajor {
		for b := 0; b < cfg.Width; b++ {
			in[b] = ma.NewInputBit(fmt.Sprintf("in%d", b))
		}
		for d := 0; d < cfg.Depth; d++ {
			for b := 0; b < cfg.Width; b++ {
				slots[d][b] = ma.NewStateBit(fmt.Sprintf("q%d.%d", d, b))
			}
		}
	} else {
		for b := 0; b < cfg.Width; b++ {
			in[b] = ma.NewInputBit(fmt.Sprintf("in%d", b))
			for d := 0; d < cfg.Depth; d++ {
				slots[d][b] = ma.NewStateBit(fmt.Sprintf("q%d.%d", d, b))
			}
		}
	}

	if !cfg.Bug {
		ma.AddInputConstraint(expr.LeConst(expr.FromVars(m, in), cfg.Bound))
	}

	// Shift register: slot 0 takes the input, slot d takes slot d-1.
	for b := 0; b < cfg.Width; b++ {
		ma.SetNext(slots[0][b], m.VarRef(in[b]))
		for d := 1; d < cfg.Depth; d++ {
			ma.SetNext(slots[d][b], m.VarRef(slots[d-1][b]))
		}
	}

	initSet := bdd.One
	for d := 0; d < cfg.Depth; d++ {
		for b := 0; b < cfg.Width; b++ {
			initSet = m.And(initSet, m.NVarRef(slots[d][b]))
		}
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	goodList := make([]bdd.Ref, cfg.Depth)
	for d := 0; d < cfg.Depth; d++ {
		goodList[d] = expr.LeConst(expr.FromVars(m, slots[d]), cfg.Bound)
	}

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Name:     fmt.Sprintf("fifo-w%d-d%d", cfg.Width, cfg.Depth),
	}
}
