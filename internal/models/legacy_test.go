package models

// This file preserves the pre-IR, manager-mutating constructors verbatim
// (modulo legacy* renames). They are the reference implementations the
// crosscheck suite compares against: the IR builders must produce
// Ref-identical BDDs on the same manager for every component of every
// problem. They live in a test file so no production path can construct
// BDDs outside ir.Instantiate.

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

func legacyFIFO(m *bdd.Manager, cfg FIFOConfig) verify.Problem {
	if cfg.Width <= 0 || cfg.Depth <= 0 {
		panic("models: FIFO needs positive width and depth")
	}
	ma := fsm.New(m)

	in := make([]bdd.Var, cfg.Width)
	slots := make([][]bdd.Var, cfg.Depth)
	for d := range slots {
		slots[d] = make([]bdd.Var, cfg.Width)
	}
	if cfg.SlotMajor {
		for b := 0; b < cfg.Width; b++ {
			in[b] = ma.NewInputBit(fmt.Sprintf("in%d", b))
		}
		for d := 0; d < cfg.Depth; d++ {
			for b := 0; b < cfg.Width; b++ {
				slots[d][b] = ma.NewStateBit(fmt.Sprintf("q%d.%d", d, b))
			}
		}
	} else {
		for b := 0; b < cfg.Width; b++ {
			in[b] = ma.NewInputBit(fmt.Sprintf("in%d", b))
			for d := 0; d < cfg.Depth; d++ {
				slots[d][b] = ma.NewStateBit(fmt.Sprintf("q%d.%d", d, b))
			}
		}
	}

	if !cfg.Bug {
		ma.AddInputConstraint(expr.LeConst(expr.FromVars(m, in), cfg.Bound))
	}

	// Shift register: slot 0 takes the input, slot d takes slot d-1.
	for b := 0; b < cfg.Width; b++ {
		ma.SetNext(slots[0][b], m.VarRef(in[b]))
		for d := 1; d < cfg.Depth; d++ {
			ma.SetNext(slots[d][b], m.VarRef(slots[d-1][b]))
		}
	}

	initSet := bdd.One
	for d := 0; d < cfg.Depth; d++ {
		for b := 0; b < cfg.Width; b++ {
			initSet = m.And(initSet, m.NVarRef(slots[d][b]))
		}
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	goodList := make([]bdd.Ref, cfg.Depth)
	for d := 0; d < cfg.Depth; d++ {
		goodList[d] = expr.LeConst(expr.FromVars(m, slots[d]), cfg.Bound)
	}

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Name:     fmt.Sprintf("fifo-w%d-d%d", cfg.Width, cfg.Depth),
	}
}

func legacyNetwork(m *bdd.Manager, cfg NetworkConfig) verify.Problem {
	n := cfg.Procs
	if n < 1 || n >= 16 {
		panic("models: network needs 1 <= Procs < 16")
	}
	slots := n // the paper models the network as an n-element array
	cw := 1
	for (1<<uint(cw))-1 < slots {
		cw++ // counter must hold up to `slots` outstanding messages
	}

	ma := fsm.New(m)

	// Inputs: action selector, processor selector, slot selector.
	actV := ma.NewInputBits("act", 2)
	procV := ma.NewInputBits("psel", netAddrBits)
	slotV := ma.NewInputBits("ssel", netAddrBits)

	// State, network first (the counters' defining functions read it):
	// per slot a valid bit, an ack flag, and the return address.
	valid := make([]bdd.Var, slots)
	ack := make([]bdd.Var, slots)
	addr := make([][]bdd.Var, slots)
	for s := 0; s < slots; s++ {
		valid[s] = ma.NewStateBit(fmt.Sprintf("net%d.v", s))
		ack[s] = ma.NewStateBit(fmt.Sprintf("net%d.a", s))
		addr[s] = ma.NewStateBits(fmt.Sprintf("net%d.id", s), netAddrBits)
	}
	counters := make([][]bdd.Var, n)
	for p := 0; p < n; p++ {
		counters[p] = ma.NewStateBits(fmt.Sprintf("cnt%d.", p), cw)
	}

	action := expr.FromVars(m, actV)
	procSel := expr.FromVars(m, procV)
	slotSel := expr.FromVars(m, slotV)

	// Selectors must address real processors and slots.
	ma.AddInputConstraint(expr.Lt(procSel, expr.Const(m, uint64(n), netAddrBits)))
	ma.AddInputConstraint(expr.Lt(slotSel, expr.Const(m, uint64(slots), netAddrBits)))

	isIssue := expr.EqConst(action, actIssue)
	isServe := expr.EqConst(action, actServe)
	isRecv := expr.EqConst(action, actReceive)

	// Per-slot enables.
	issueOK := bdd.Zero // chosen slot is free
	recvOK := bdd.Zero  // chosen slot holds an ack for procSel (or, with
	// the seeded bug, any ack at all)
	for s := 0; s < slots; s++ {
		selS := expr.EqConst(slotSel, uint64(s))
		slotAddr := expr.FromVars(m, addr[s])
		issueOK = m.Or(issueOK, m.And(selS, m.NVarRef(valid[s])))
		match := expr.Eq(slotAddr, procSel)
		if cfg.Bug {
			match = bdd.One // consume anyone's acknowledgment
		}
		recvOK = m.Or(recvOK, m.AndN(selS, m.VarRef(valid[s]), m.VarRef(ack[s]), match))
	}
	doIssue := m.And(isIssue, issueOK)
	doRecv := m.And(isRecv, recvOK)

	for s := 0; s < slots; s++ {
		selS := expr.EqConst(slotSel, uint64(s))
		v, a := m.VarRef(valid[s]), m.VarRef(ack[s])
		slotAddr := expr.FromVars(m, addr[s])
		match := expr.Eq(slotAddr, procSel)
		if cfg.Bug {
			match = bdd.One
		}

		issueHere := m.AndN(doIssue, selS, v.Not())
		serveHere := m.AndN(isServe, selS, v, a.Not())
		recvHere := m.AndN(doRecv, selS, v, a, match)

		ma.SetNext(valid[s], m.ITE(issueHere, bdd.One, m.ITE(recvHere, bdd.Zero, v)))
		ma.SetNext(ack[s], m.ITE(issueHere, bdd.Zero, m.ITE(serveHere, bdd.One, a)))
		for b := 0; b < netAddrBits; b++ {
			ma.SetNext(addr[s][b], m.ITE(issueHere, procSel.Bit(b), m.VarRef(addr[s][b])))
		}
	}

	for p := 0; p < n; p++ {
		cnt := expr.FromVars(m, counters[p])
		selP := expr.EqConst(procSel, uint64(p))
		up := m.And(doIssue, selP)
		down := m.And(doRecv, selP)
		next := expr.Mux(up, expr.Inc(cnt), expr.Mux(down, expr.Dec(cnt), cnt))
		for b := 0; b < cw; b++ {
			ma.SetNext(counters[p][b], next.Bit(b))
		}
	}

	initSet := bdd.One
	for s := 0; s < slots; s++ {
		initSet = m.AndN(initSet, m.NVarRef(valid[s]), m.NVarRef(ack[s]))
		for b := 0; b < netAddrBits; b++ {
			initSet = m.And(initSet, m.NVarRef(addr[s][b]))
		}
	}
	for p := 0; p < n; p++ {
		for b := 0; b < cw; b++ {
			initSet = m.And(initSet, m.NVarRef(counters[p][b]))
		}
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property: counter_p == |{s : valid_s ∧ addr_s == p}| for each p —
	// one conjunct per processor, and simultaneously the functional
	// dependency defining the counter bits from the network state.
	goodList := make([]bdd.Ref, n)
	var deps []verify.Dependency
	for p := 0; p < n; p++ {
		flags := make([]bdd.Ref, slots)
		for s := 0; s < slots; s++ {
			flags[s] = m.And(m.VarRef(valid[s]), expr.EqConst(expr.FromVars(m, addr[s]), uint64(p)))
		}
		outstanding := expr.PopCount(m, flags)
		if outstanding.Width() < cw {
			outstanding = outstanding.Extend(cw)
		} else if outstanding.Width() > cw {
			outstanding = outstanding.Truncate(cw) // cw chosen to fit; no loss
		}
		cnt := expr.FromVars(m, counters[p])
		goodList[p] = expr.Eq(cnt, outstanding)
		for b := 0; b < cw; b++ {
			deps = append(deps, verify.Dependency{Var: counters[p][b], Def: outstanding.Bit(b)})
		}
	}

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Deps:     deps,
		Name:     fmt.Sprintf("network-n%d", n),
	}
}

func legacyFilter(m *bdd.Manager, cfg FilterConfig) verify.Problem {
	n, w := cfg.Depth, cfg.SampleWidth
	if w <= 0 {
		panic("models: filter needs positive sample width")
	}
	levels := 0
	for 1<<uint(levels) < n {
		levels++
	}
	if 1<<uint(levels) != n || n < 2 {
		panic("models: filter depth must be a power of two >= 2")
	}

	ma := fsm.New(m)

	// Declare all words bit-slice interleaved: for each bit position,
	// the sample input, then the window, the pipeline layers, and the
	// spec FIFO. Widths differ per word; narrower words simply stop
	// contributing slices.
	sample := make([]bdd.Var, w)          // input
	window := legacyMakeWordVars(n, w)    // shared sample shift register
	layers := make([][][]bdd.Var, levels) // layers[k-1][j] = P_k[j], width w+k
	for k := 1; k <= levels; k++ {
		layers[k-1] = legacyMakeWordVars(n>>uint(k), w+k)
	}
	fifo := legacyMakeWordVars(levels, w) // fifo[j-1] = F_j, width w

	maxW := w + levels
	for b := 0; b < maxW; b++ {
		if b < w {
			sample[b] = ma.NewInputBit(fmt.Sprintf("smp%d", b))
			for i := 0; i < n; i++ {
				window[i][b] = ma.NewStateBit(fmt.Sprintf("w%d.%d", i, b))
			}
		}
		for k := 1; k <= levels; k++ {
			if b < w+k {
				for j := range layers[k-1] {
					layers[k-1][j][b] = ma.NewStateBit(fmt.Sprintf("p%d_%d.%d", k, j, b))
				}
			}
		}
		if b < w {
			for j := 0; j < levels; j++ {
				fifo[j][b] = ma.NewStateBit(fmt.Sprintf("f%d.%d", j+1, b))
			}
		}
	}

	words := func(vv [][]bdd.Var) []expr.Word {
		out := make([]expr.Word, len(vv))
		for i, v := range vv {
			out[i] = expr.FromVars(m, v)
		}
		return out
	}

	winW := words(window)
	layerW := make([][]expr.Word, levels)
	for k := range layers {
		layerW[k] = words(layers[k])
	}
	fifoW := words(fifo)

	// Window shift register.
	legacySetWord(ma, window[0], expr.FromVars(m, sample))
	for i := 1; i < n; i++ {
		legacySetWord(ma, window[i], winW[i-1])
	}

	// Pipelined adder tree: layer k registers latch sums of the previous
	// layer's (or the window's) current contents.
	for j := range layers[0] {
		a, b := winW[2*j], winW[2*j+1]
		if cfg.Bug && j == 0 {
			b = a // seeded bug: adds the same sample twice
		}
		legacySetWord(ma, layers[0][j], expr.AddExpand(a, b))
	}
	for k := 2; k <= levels; k++ {
		for j := range layers[k-1] {
			legacySetWord(ma, layers[k-1][j], expr.AddExpand(layerW[k-2][2*j], layerW[k-2][2*j+1]))
		}
	}

	// Specification: combinational average of the window, delayed in the
	// FIFO to match the pipeline depth.
	specAvg := legacyAverage(legacySumTree(winW), levels, w)
	legacySetWord(ma, fifo[0], specAvg)
	for j := 1; j < levels; j++ {
		legacySetWord(ma, fifo[j], fifoW[j-1])
	}

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Output equality: the pipelined tree's (discarded-bits) average
	// equals the fully delayed spec average.
	implAvg := legacyAverage(layerW[levels-1][0], levels, w)
	output := expr.Eq(implAvg, fifoW[levels-1])

	p := verify.Problem{
		Machine: ma,
		Good:    output,
		Name:    fmt.Sprintf("mafilter-d%d-w%d", n, w),
	}
	if cfg.Assist {
		// One invariant per layer: the average of layer k equals FIFO
		// entry k (the last one is the output property itself).
		goodList := make([]bdd.Ref, levels)
		for k := 1; k <= levels; k++ {
			layerSum := legacySumTree(layerW[k-1])
			goodList[k-1] = expr.Eq(legacyAverage(layerSum, levels, w), fifoW[k-1])
		}
		p.GoodList = goodList
		p.Name += "-assist"
	}
	return p
}

func legacyMakeWordVars(count, width int) [][]bdd.Var {
	out := make([][]bdd.Var, count)
	for i := range out {
		out[i] = make([]bdd.Var, width)
	}
	return out
}

func legacySetWord(ma *fsm.Machine, vars []bdd.Var, next expr.Word) {
	if len(vars) != next.Width() {
		panic(fmt.Sprintf("models: setWord width mismatch: %d vars, %d bits", len(vars), next.Width()))
	}
	for b, v := range vars {
		ma.SetNext(v, next.Bit(b))
	}
}

func legacySumTree(ws []expr.Word) expr.Word {
	if len(ws) == 1 {
		return ws[0]
	}
	next := make([]expr.Word, len(ws)/2)
	for i := range next {
		next[i] = expr.AddExpand(ws[2*i], ws[2*i+1])
	}
	return legacySumTree(next)
}

func legacyAverage(sum expr.Word, levels, width int) expr.Word {
	return expr.Shr(sum, levels).Truncate(width)
}

func legacyPipeline(m *bdd.Manager, cfg PipelineConfig) verify.Problem {
	r, bw := cfg.Regs, cfg.Width
	rb := 0
	for 1<<uint(rb) < r {
		rb++
	}
	if 1<<uint(rb) != r || r < 2 {
		panic("models: pipeline needs a power-of-two register count >= 2")
	}
	if bw < 1 {
		panic("models: pipeline needs a positive datapath width")
	}
	ilen := 3 + 2*rb + bw

	ma := fsm.New(m)

	// Instruction stream input, then the instruction-holding registers
	// interleaved: the fetched instruction (pipeline) and the first delay
	// register (spec) always carry equal values, so adjacent ordering
	// keeps their relation small.
	instrV := make([]bdd.Var, ilen)
	frV := make([]bdd.Var, ilen) // pipeline: decode/execute stage instr
	d1V := make([]bdd.Var, ilen) // spec: first delay register
	d2V := make([]bdd.Var, ilen) // spec: second delay register
	for b := 0; b < ilen; b++ {
		instrV[b] = ma.NewInputBit(fmt.Sprintf("ins%d", b))
		frV[b] = ma.NewStateBit(fmt.Sprintf("fr%d", b))
		d1V[b] = ma.NewStateBit(fmt.Sprintf("d1_%d", b))
	}
	for b := 0; b < ilen; b++ {
		d2V[b] = ma.NewStateBit(fmt.Sprintf("d2_%d", b))
	}

	// Execute/writeback latch: result, destination, write enable, and
	// the branch-in-writeback marker driving the stall.
	exResV := ma.NewStateBits("exr.", bw)
	exDstV := ma.NewStateBits("exd.", rb)
	exWE := ma.NewStateBit("exw")
	brWB := ma.NewStateBit("brw")

	// Register files: interleaved implementation/specification per bit
	// (default) or as two separate blocks (SeparateRegFiles).
	implRF := legacyMakeWordVars(r, bw)
	specRF := legacyMakeWordVars(r, bw)
	if cfg.SeparateRegFiles {
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				implRF[i][b] = ma.NewStateBit(fmt.Sprintf("ri%d.%d", i, b))
			}
		}
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				specRF[i][b] = ma.NewStateBit(fmt.Sprintf("rs%d.%d", i, b))
			}
		}
	} else {
		for i := 0; i < r; i++ {
			for b := 0; b < bw; b++ {
				implRF[i][b] = ma.NewStateBit(fmt.Sprintf("ri%d.%d", i, b))
				specRF[i][b] = ma.NewStateBit(fmt.Sprintf("rs%d.%d", i, b))
			}
		}
	}

	type decoded struct {
		op       expr.Word
		src, dst expr.Word
		imm      expr.Word
	}
	decode := func(vars []bdd.Var) decoded {
		w := expr.FromVars(m, vars)
		return decoded{
			op:  w.Truncate(3),
			src: expr.Word{M: m, Bits: w.Bits[3 : 3+rb]},
			dst: expr.Word{M: m, Bits: w.Bits[3+rb : 3+2*rb]},
			imm: expr.Word{M: m, Bits: w.Bits[3+2*rb:]},
		}
	}
	isOp := func(d decoded, code uint64) bdd.Ref { return expr.EqConst(d.op, code) }

	fr := decode(frV)
	d2 := decode(d2V)

	// Branch stall: while a BR sits in decode/execute or writeback, the
	// fetch unit receives NOPs (and the spec's intake sees the same
	// NOPs, stalling it identically).
	stall := m.Or(isOp(fr, opBR), m.VarRef(brWB))
	fetched := expr.Mux(stall, expr.Const(m, opNOP, ilen), expr.FromVars(m, instrV))
	legacySetWord(ma, frV, fetched)
	legacySetWord(ma, d1V, fetched)
	legacySetWord(ma, d2V, expr.FromVars(m, d1V))

	// Execute stage (pipeline): operand fetch with bypass from the
	// writeback latch, then compute.
	exRes := expr.FromVars(m, exResV)
	exDst := expr.FromVars(m, exDstV)
	weNow := m.VarRef(exWE)

	readImpl := func(sel expr.Word, bypass bool) expr.Word {
		val := expr.Const(m, 0, bw)
		for i := r - 1; i >= 0; i-- {
			val = expr.Mux(expr.EqConst(sel, uint64(i)), expr.FromVars(m, implRF[i]), val)
		}
		if bypass {
			hit := m.And(weNow, expr.Eq(exDst, sel))
			val = expr.Mux(hit, exRes, val)
		}
		return val
	}
	rs := readImpl(fr.src, !cfg.Bug) // seeded bug: no bypass on rs
	rd := readImpl(fr.dst, true)

	execute := func(d decoded, rsV, rdV expr.Word) (expr.Word, bdd.Ref) {
		res := expr.Const(m, 0, bw)
		res = expr.Mux(isOp(d, opLD), d.imm, res)
		res = expr.Mux(isOp(d, opADD), expr.Add(rdV, rsV), res)
		res = expr.Mux(isOp(d, opSUB), expr.Sub(rdV, rsV), res)
		res = expr.Mux(isOp(d, opMOV), rsV, res)
		res = expr.Mux(isOp(d, opSR), expr.Shr(rdV, 1), res)
		we := m.OrN(isOp(d, opLD), isOp(d, opADD), isOp(d, opSUB), isOp(d, opMOV), isOp(d, opSR))
		return res, we
	}

	resNow, weNext := execute(fr, rs, rd)
	legacySetWord(ma, exResV, resNow)
	legacySetWord(ma, exDstV, fr.dst)
	ma.SetNext(exWE, weNext)
	ma.SetNext(brWB, isOp(fr, opBR))

	// Writeback stage: the latch contents retire into the register file.
	for i := 0; i < r; i++ {
		hit := m.AndN(weNow, expr.EqConst(exDst, uint64(i)))
		legacySetWord(ma, implRF[i], expr.Mux(hit, exRes, expr.FromVars(m, implRF[i])))
	}

	// Specification: fetch-execute-writeback in one cycle on D2.
	specRd := expr.Const(m, 0, bw)
	specRs := expr.Const(m, 0, bw)
	for i := r - 1; i >= 0; i-- {
		w := expr.FromVars(m, specRF[i])
		specRs = expr.Mux(expr.EqConst(d2.src, uint64(i)), w, specRs)
		specRd = expr.Mux(expr.EqConst(d2.dst, uint64(i)), w, specRd)
	}
	specRes, specWE := execute(d2, specRs, specRd)
	for i := 0; i < r; i++ {
		hit := m.AndN(specWE, expr.EqConst(d2.dst, uint64(i)))
		legacySetWord(ma, specRF[i], expr.Mux(hit, specRes, expr.FromVars(m, specRF[i])))
	}

	// Everything starts zeroed: NOPs in flight, empty latch, equal
	// register files.
	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property: the register files always agree.
	perReg := make([]bdd.Ref, r)
	good := bdd.One
	for i := 0; i < r; i++ {
		perReg[i] = expr.Eq(expr.FromVars(m, implRF[i]), expr.FromVars(m, specRF[i]))
		good = m.And(good, perReg[i])
	}

	p := verify.Problem{
		Machine: ma,
		Good:    good,
		Name:    fmt.Sprintf("pipeline-r%d-b%d", r, bw),
	}
	if cfg.Assist {
		p.GoodList = perReg
		p.Name += "-assist"
	}
	return p
}

func legacyCoherence(m *bdd.Manager, cfg CoherenceConfig) verify.Problem {
	n := cfg.Caches
	if n < 2 || n > 8 {
		panic("models: coherence needs 2 <= Caches <= 8")
	}

	ma := fsm.New(m)

	act := ma.NewInputBits("act", 2)
	sel := ma.NewInputBits("csel", 3)

	// Cache states first, then the directory (whose bits are functions
	// of the cache states — good for both ordering and the FD engine).
	caches := make([][]bdd.Var, n)
	for p := 0; p < n; p++ {
		caches[p] = ma.NewStateBits(fmt.Sprintf("c%d.s", p), 2)
	}
	sharer := make([]bdd.Var, n)
	for p := 0; p < n; p++ {
		sharer[p] = ma.NewStateBit(fmt.Sprintf("dir.sh%d", p))
	}
	dirty := ma.NewStateBit("dir.dirty")

	action := expr.FromVars(m, act)
	chosen := expr.FromVars(m, sel)
	ma.AddInputConstraint(expr.Lt(chosen, expr.Const(m, uint64(n), 3)))

	isRead := expr.EqConst(action, cohRead)
	isUpgrade := expr.EqConst(action, cohUpgrade)
	isEvict := expr.EqConst(action, cohEvict)

	st := func(p int) expr.Word { return expr.FromVars(m, caches[p]) }
	inState := func(p int, s uint64) bdd.Ref { return expr.EqConst(st(p), s) }

	for p := 0; p < n; p++ {
		selP := expr.EqConst(chosen, uint64(p))

		readHere := m.AndN(isRead, selP, inState(p, msiInvalid))
		remoteRead := m.AndN(isRead, selP.Not(), inState(p, msiModified))

		upHere := m.AndN(isUpgrade, selP, inState(p, msiModified).Not())
		remoteUp := m.AndN(isUpgrade, selP.Not())
		if cfg.Bug {
			remoteUp = m.And(remoteUp, inState(p, msiModified))
		}

		evictHere := m.AndN(isEvict, selP, inState(p, msiInvalid).Not())

		next := st(p)
		next = expr.Mux(readHere, expr.Const(m, msiShared, 2), next)
		next = expr.Mux(remoteRead, expr.Const(m, msiShared, 2), next)
		next = expr.Mux(upHere, expr.Const(m, msiModified, 2), next)
		next = expr.Mux(m.And(remoteUp, legacyUpgradeHappens(m, isUpgrade, chosen, st, n)), expr.Const(m, msiInvalid, 2), next)
		next = expr.Mux(evictHere, expr.Const(m, msiInvalid, 2), next)
		legacySetWord(ma, caches[p], next)
	}

	for p := 0; p < n; p++ {
		nextSt := expr.Word{M: m, Bits: []bdd.Ref{ma.NextFn(caches[p][0]), ma.NextFn(caches[p][1])}}
		holds := expr.EqConst(nextSt, msiInvalid).Not()
		ma.SetNext(sharer[p], holds)
	}
	anyDirty := bdd.Zero
	for p := 0; p < n; p++ {
		nextSt := expr.Word{M: m, Bits: []bdd.Ref{ma.NextFn(caches[p][0]), ma.NextFn(caches[p][1])}}
		anyDirty = m.Or(anyDirty, expr.EqConst(nextSt, msiModified))
	}
	ma.SetNext(dirty, anyDirty)

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	var goodList []bdd.Ref
	var deps []verify.Dependency
	for p := 0; p < n; p++ {
		othersInvalid := bdd.One
		for q := 0; q < n; q++ {
			if q != p {
				othersInvalid = m.And(othersInvalid, inState(q, msiInvalid))
			}
		}
		swmr := m.Imp(inState(p, msiModified), othersInvalid)
		dirOK := m.Xnor(m.VarRef(sharer[p]), inState(p, msiInvalid).Not())
		goodList = append(goodList, m.And(swmr, dirOK))
		deps = append(deps, verify.Dependency{Var: sharer[p], Def: inState(p, msiInvalid).Not()})
	}
	anyMod := bdd.Zero
	for p := 0; p < n; p++ {
		anyMod = m.Or(anyMod, inState(p, msiModified))
	}
	goodList = append(goodList, m.Xnor(m.VarRef(dirty), anyMod))
	deps = append(deps, verify.Dependency{Var: dirty, Def: anyMod})

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Deps:     deps,
		Name:     fmt.Sprintf("msi-n%d", n),
	}
}

func legacyUpgradeHappens(m *bdd.Manager, isUpgrade bdd.Ref, chosen expr.Word, st func(int) expr.Word, n int) bdd.Ref {
	fires := bdd.Zero
	for p := 0; p < n; p++ {
		selP := expr.EqConst(chosen, uint64(p))
		notOwner := expr.EqConst(st(p), msiModified).Not()
		fires = m.Or(fires, m.And(selP, notOwner))
	}
	return m.And(isUpgrade, fires)
}

func legacyLink(m *bdd.Manager, cfg LinkConfig) verify.Problem {
	w := cfg.DataBits
	if w < 1 || w > 16 {
		panic("models: link needs 1 <= DataBits <= 16")
	}

	ma := fsm.New(m)

	act := ma.NewInputBits("act", 3)
	freshData := ma.NewInputBits("fresh", w)

	// Sender.
	seqS := ma.NewStateBit("snd.seq")
	payload := ma.NewStateBits("snd.data", w)
	// Forward channel (capacity 1).
	fFull := ma.NewStateBit("fwd.full")
	fSeq := ma.NewStateBit("fwd.seq")
	fData := ma.NewStateBits("fwd.data", w)
	// Receiver.
	seqR := ma.NewStateBit("rcv.expect")
	delivered := ma.NewStateBits("rcv.data", w)
	justDelivered := ma.NewStateBit("rcv.fresh")
	// Reverse channel (capacity 1).
	rFull := ma.NewStateBit("rev.full")
	rSeq := ma.NewStateBit("rev.seq")

	action := expr.FromVars(m, act)
	const (
		actSend = iota
		actDropF
		actRecv
		actDropR
		actAck
		lnkIdle
	)
	_ = lnkIdle
	ma.AddInputConstraint(expr.Lt(action, expr.Const(m, 6, 3)))

	is := func(a uint64) bdd.Ref { return expr.EqConst(action, a) }

	vSeqS, vSeqR := m.VarRef(seqS), m.VarRef(seqR)
	vFFull, vFSeq := m.VarRef(fFull), m.VarRef(fSeq)
	vRFull, vRSeq := m.VarRef(rFull), m.VarRef(rSeq)

	send := m.And(is(actSend), vFFull.Not())
	dropF := m.And(is(actDropF), vFFull)
	recv := m.AndN(is(actRecv), vFFull, vRFull.Not())
	dropR := m.And(is(actDropR), vRFull)
	ackOK := m.AndN(is(actAck), vRFull, m.Xnor(vRSeq, vSeqS))
	ackStale := m.AndN(is(actAck), vRFull, m.Xor(vRSeq, vSeqS))

	frameNew := m.Xnor(vFSeq, vSeqR)
	if cfg.Bug {
		frameNew = bdd.One
	}
	deliver := m.And(recv, frameNew)

	// Forward channel.
	ma.SetNext(fFull, m.ITE(send, bdd.One, m.ITE(m.Or(dropF, recv), bdd.Zero, vFFull)))
	ma.SetNext(fSeq, m.ITE(send, vSeqS, vFSeq))
	for b := 0; b < w; b++ {
		ma.SetNext(fData[b], m.ITE(send, m.VarRef(payload[b]), m.VarRef(fData[b])))
	}

	// Receiver: deliver new frames, always ack with the frame's seq.
	ma.SetNext(seqR, m.ITE(deliver, vSeqR.Not(), vSeqR))
	for b := 0; b < w; b++ {
		ma.SetNext(delivered[b], m.ITE(deliver, m.VarRef(fData[b]), m.VarRef(delivered[b])))
	}
	ma.SetNext(justDelivered, deliver)

	// Reverse channel.
	ma.SetNext(rFull, m.ITE(recv, bdd.One, m.ITE(m.OrN(dropR, ackOK, ackStale), bdd.Zero, vRFull)))
	ma.SetNext(rSeq, m.ITE(recv, vFSeq, vRSeq))

	// Sender: on a matching ack, flip the sequence bit and latch a new
	// nondeterministic payload.
	ma.SetNext(seqS, m.ITE(ackOK, vSeqS.Not(), vSeqS))
	for b := 0; b < w; b++ {
		ma.SetNext(payload[b], m.ITE(ackOK, m.VarRef(freshData[b]), m.VarRef(payload[b])))
	}

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	senderStillOn := m.Xor(vSeqR, vSeqS)
	var goodList []bdd.Ref
	for b := 0; b < w; b++ {
		eq := m.Xnor(m.VarRef(delivered[b]), m.VarRef(payload[b]))
		goodList = append(goodList, m.Imp(m.And(m.VarRef(justDelivered), senderStillOn), eq))
	}
	frameCoherent := m.Imp(vFFull, m.Or(m.Xnor(vFSeq, vSeqS), m.Xor(vSeqR, vFSeq)))
	goodList = append(goodList, frameCoherent)

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Name:     fmt.Sprintf("abp-w%d", w),
	}
}
