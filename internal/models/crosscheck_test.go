package models

import (
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

// The refactor contract: every IR-built model is BDD-identical to the
// legacy manager-mutating constructor it replaced — same variables in
// the same order, and Ref-identical initial set, input constraint,
// next-state functions, monolithic property, good list, and functional
// dependencies when both are elaborated against the same variable
// order. The IR build runs on its own manager (per-worker and shared);
// each component is transferred into the legacy manager, where BDD
// canonicity makes Ref equality equivalent to function equality.

type crosscheckCase struct {
	name   string
	legacy func(*bdd.Manager) verify.Problem
	ir     func(*bdd.Manager) verify.Problem
}

func crosscheckCases() []crosscheckCase {
	var cases []crosscheckCase
	add := func(name string, legacy, ir func(*bdd.Manager) verify.Problem) {
		cases = append(cases, crosscheckCase{name, legacy, ir})
	}

	for _, cfg := range []FIFOConfig{
		{Width: 4, Depth: 3, Bound: 9},
		{Width: 3, Depth: 2, Bound: 5, Bug: true},
		{Width: 4, Depth: 2, Bound: 9, SlotMajor: true},
	} {
		cfg := cfg
		add(fmt.Sprintf("fifo/w%d-d%d-bug%t-sm%t", cfg.Width, cfg.Depth, cfg.Bug, cfg.SlotMajor),
			func(m *bdd.Manager) verify.Problem { return legacyFIFO(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewFIFO(m, cfg) })
	}
	for _, cfg := range []NetworkConfig{{Procs: 2}, {Procs: 3, Bug: true}} {
		cfg := cfg
		add(fmt.Sprintf("network/n%d-bug%t", cfg.Procs, cfg.Bug),
			func(m *bdd.Manager) verify.Problem { return legacyNetwork(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewNetwork(m, cfg) })
	}
	for _, cfg := range []FilterConfig{
		{Depth: 4, SampleWidth: 3},
		{Depth: 4, SampleWidth: 3, Assist: true},
		{Depth: 2, SampleWidth: 2, Bug: true},
	} {
		cfg := cfg
		add(fmt.Sprintf("filter/d%d-w%d-assist%t-bug%t", cfg.Depth, cfg.SampleWidth, cfg.Assist, cfg.Bug),
			func(m *bdd.Manager) verify.Problem { return legacyFilter(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewFilter(m, cfg) })
	}
	for _, cfg := range []PipelineConfig{
		{Regs: 2, Width: 2},
		{Regs: 2, Width: 1, Assist: true},
		{Regs: 2, Width: 1, Bug: true},
		{Regs: 2, Width: 1, SeparateRegFiles: true},
	} {
		cfg := cfg
		add(fmt.Sprintf("pipeline/r%d-b%d-assist%t-bug%t-sep%t", cfg.Regs, cfg.Width, cfg.Assist, cfg.Bug, cfg.SeparateRegFiles),
			func(m *bdd.Manager) verify.Problem { return legacyPipeline(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewPipeline(m, cfg) })
	}
	for _, cfg := range []CoherenceConfig{{Caches: 2}, {Caches: 3, Bug: true}} {
		cfg := cfg
		add(fmt.Sprintf("coherence/n%d-bug%t", cfg.Caches, cfg.Bug),
			func(m *bdd.Manager) verify.Problem { return legacyCoherence(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewCoherence(m, cfg) })
	}
	for _, cfg := range []LinkConfig{{DataBits: 2}, {DataBits: 1, Bug: true}} {
		cfg := cfg
		add(fmt.Sprintf("link/w%d-bug%t", cfg.DataBits, cfg.Bug),
			func(m *bdd.Manager) verify.Problem { return legacyLink(m, cfg) },
			func(m *bdd.Manager) verify.Problem { return NewLink(m, cfg) })
	}
	return cases
}

// assertProblemIdentical transfers every BDD component of got (built on
// mGot) into want's manager mWant and requires Ref equality.
func assertProblemIdentical(t *testing.T, mWant *bdd.Manager, want verify.Problem, mGot *bdd.Manager, got verify.Problem) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("Name: legacy %q, IR %q", want.Name, got.Name)
	}
	if mWant.NumVars() != mGot.NumVars() {
		t.Fatalf("variable count: legacy %d, IR %d", mWant.NumVars(), mGot.NumVars())
	}
	for v := 0; v < mWant.NumVars(); v++ {
		if wn, gn := mWant.VarName(bdd.Var(v)), mGot.VarName(bdd.Var(v)); wn != gn {
			t.Fatalf("variable %d: legacy %q, IR %q", v, wn, gn)
		}
	}
	xfer := func(f bdd.Ref) bdd.Ref { return bdd.Transfer(mWant, mGot, f, nil) }

	wm, gm := want.Machine, got.Machine
	if wm.StateBits() != gm.StateBits() || wm.InputBits() != gm.InputBits() {
		t.Fatalf("shape: legacy %d/%d state/input bits, IR %d/%d",
			wm.StateBits(), wm.InputBits(), gm.StateBits(), gm.InputBits())
	}
	if xfer(gm.Init()) != wm.Init() {
		t.Fatalf("Init differs")
	}
	if xfer(gm.InputConstraint()) != wm.InputConstraint() {
		t.Fatalf("InputConstraint differs")
	}
	wCur, gCur := wm.CurVars(), gm.CurVars()
	for i := range wCur {
		if wCur[i] != gCur[i] {
			t.Fatalf("state var %d: legacy %v, IR %v", i, wCur[i], gCur[i])
		}
		if xfer(gm.NextFn(gCur[i])) != wm.NextFn(wCur[i]) {
			t.Fatalf("NextFn(%s) differs", mWant.VarName(wCur[i]))
		}
	}
	if xfer(got.Good) != want.Good {
		t.Fatalf("Good differs")
	}
	if len(want.GoodList) != len(got.GoodList) {
		t.Fatalf("GoodList length: legacy %d, IR %d", len(want.GoodList), len(got.GoodList))
	}
	for i := range want.GoodList {
		if xfer(got.GoodList[i]) != want.GoodList[i] {
			t.Fatalf("GoodList[%d] differs", i)
		}
	}
	if len(want.Deps) != len(got.Deps) {
		t.Fatalf("Deps length: legacy %d, IR %d", len(want.Deps), len(got.Deps))
	}
	for i := range want.Deps {
		if want.Deps[i].Var != got.Deps[i].Var {
			t.Fatalf("Deps[%d].Var: legacy %v, IR %v", i, want.Deps[i].Var, got.Deps[i].Var)
		}
		if xfer(got.Deps[i].Def) != want.Deps[i].Def {
			t.Fatalf("Deps[%d].Def differs", i)
		}
	}
}

func TestIRMatchesLegacy(t *testing.T) {
	for _, tc := range crosscheckCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mL := bdd.New()
			want := tc.legacy(mL)
			mI := bdd.New()
			got := tc.ir(mI)
			assertProblemIdentical(t, mL, want, mI, got)
		})
	}
}

// TestIRMatchesLegacyShared instantiates the IR build on a shared
// (concurrent) manager and requires the same Ref-identity — the single
// Instantiate backend must behave identically on both manager kinds.
func TestIRMatchesLegacyShared(t *testing.T) {
	for _, tc := range crosscheckCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mL := bdd.New()
			want := tc.legacy(mL)
			mS := bdd.NewShared(2, 14)
			got := tc.ir(mS)
			assertProblemIdentical(t, mL, want, mS, got)
		})
	}
}
