package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// NetworkConfig parameterizes the processors-and-network abstraction of
// Section IV.A: Procs processors nondeterministically issue requests into
// a non-message-order-preserving network (modelled, as in the paper, as a
// Procs-element array of messages, each carrying a valid bit, a req/ack
// flag, and a 4-bit return address), a server nondeterministically
// converts requests to acknowledgments, and each processor counts its
// outstanding messages.
type NetworkConfig struct {
	Procs int // number of processors; the paper assumes Procs < 16

	// Bug, if true, lets a processor consume any acknowledgment
	// regardless of its return address, corrupting the counters.
	Bug bool
}

// The paper fixes return addresses at 4 bits (n < 16).
const netAddrBits = 4

// netActions: the environment nondeterministically selects one of four
// actions per cycle; disabled actions stutter.
const (
	actIdle    = 0
	actIssue   = 1
	actServe   = 2
	actReceive = 3
)

// NewNetwork builds the network problem on a fresh manager.
//
// The property — each processor's counter equals the number of its
// messages in flight — is the per-processor implicit conjunction the
// paper's tables annotate as "(n × k nodes)". It is also exposed as the
// functional-dependency declaration the FD baseline needs: each counter
// is a function of the network contents.
func NewNetwork(m *bdd.Manager, cfg NetworkConfig) verify.Problem {
	n := cfg.Procs
	if n < 1 || n >= 16 {
		panic("models: network needs 1 <= Procs < 16")
	}
	slots := n // the paper models the network as an n-element array
	cw := 1
	for (1<<uint(cw))-1 < slots {
		cw++ // counter must hold up to `slots` outstanding messages
	}

	ma := fsm.New(m)

	// Inputs: action selector, processor selector, slot selector.
	actV := ma.NewInputBits("act", 2)
	procV := ma.NewInputBits("psel", netAddrBits)
	slotV := ma.NewInputBits("ssel", netAddrBits)

	// State, network first (the counters' defining functions read it):
	// per slot a valid bit, an ack flag, and the return address.
	valid := make([]bdd.Var, slots)
	ack := make([]bdd.Var, slots)
	addr := make([][]bdd.Var, slots)
	for s := 0; s < slots; s++ {
		valid[s] = ma.NewStateBit(fmt.Sprintf("net%d.v", s))
		ack[s] = ma.NewStateBit(fmt.Sprintf("net%d.a", s))
		addr[s] = ma.NewStateBits(fmt.Sprintf("net%d.id", s), netAddrBits)
	}
	counters := make([][]bdd.Var, n)
	for p := 0; p < n; p++ {
		counters[p] = ma.NewStateBits(fmt.Sprintf("cnt%d.", p), cw)
	}

	action := expr.FromVars(m, actV)
	procSel := expr.FromVars(m, procV)
	slotSel := expr.FromVars(m, slotV)

	// Selectors must address real processors and slots.
	ma.AddInputConstraint(expr.Lt(procSel, expr.Const(m, uint64(n), netAddrBits)))
	ma.AddInputConstraint(expr.Lt(slotSel, expr.Const(m, uint64(slots), netAddrBits)))

	isIssue := expr.EqConst(action, actIssue)
	isServe := expr.EqConst(action, actServe)
	isRecv := expr.EqConst(action, actReceive)

	// Per-slot enables.
	issueOK := bdd.Zero // chosen slot is free
	recvOK := bdd.Zero  // chosen slot holds an ack for procSel (or, with
	// the seeded bug, any ack at all)
	for s := 0; s < slots; s++ {
		selS := expr.EqConst(slotSel, uint64(s))
		slotAddr := expr.FromVars(m, addr[s])
		issueOK = m.Or(issueOK, m.And(selS, m.NVarRef(valid[s])))
		match := expr.Eq(slotAddr, procSel)
		if cfg.Bug {
			match = bdd.One // consume anyone's acknowledgment
		}
		recvOK = m.Or(recvOK, m.AndN(selS, m.VarRef(valid[s]), m.VarRef(ack[s]), match))
	}
	doIssue := m.And(isIssue, issueOK)
	doRecv := m.And(isRecv, recvOK)

	for s := 0; s < slots; s++ {
		selS := expr.EqConst(slotSel, uint64(s))
		v, a := m.VarRef(valid[s]), m.VarRef(ack[s])
		slotAddr := expr.FromVars(m, addr[s])
		match := expr.Eq(slotAddr, procSel)
		if cfg.Bug {
			match = bdd.One
		}

		issueHere := m.AndN(doIssue, selS, v.Not())
		serveHere := m.AndN(isServe, selS, v, a.Not())
		recvHere := m.AndN(doRecv, selS, v, a, match)

		ma.SetNext(valid[s], m.ITE(issueHere, bdd.One, m.ITE(recvHere, bdd.Zero, v)))
		ma.SetNext(ack[s], m.ITE(issueHere, bdd.Zero, m.ITE(serveHere, bdd.One, a)))
		for b := 0; b < netAddrBits; b++ {
			ma.SetNext(addr[s][b], m.ITE(issueHere, procSel.Bit(b), m.VarRef(addr[s][b])))
		}
	}

	for p := 0; p < n; p++ {
		cnt := expr.FromVars(m, counters[p])
		selP := expr.EqConst(procSel, uint64(p))
		up := m.And(doIssue, selP)
		down := m.And(doRecv, selP)
		next := expr.Mux(up, expr.Inc(cnt), expr.Mux(down, expr.Dec(cnt), cnt))
		for b := 0; b < cw; b++ {
			ma.SetNext(counters[p][b], next.Bit(b))
		}
	}

	initSet := bdd.One
	for s := 0; s < slots; s++ {
		initSet = m.AndN(initSet, m.NVarRef(valid[s]), m.NVarRef(ack[s]))
		for b := 0; b < netAddrBits; b++ {
			initSet = m.And(initSet, m.NVarRef(addr[s][b]))
		}
	}
	for p := 0; p < n; p++ {
		for b := 0; b < cw; b++ {
			initSet = m.And(initSet, m.NVarRef(counters[p][b]))
		}
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property: counter_p == |{s : valid_s ∧ addr_s == p}| for each p —
	// one conjunct per processor, and simultaneously the functional
	// dependency defining the counter bits from the network state.
	goodList := make([]bdd.Ref, n)
	var deps []verify.Dependency
	for p := 0; p < n; p++ {
		flags := make([]bdd.Ref, slots)
		for s := 0; s < slots; s++ {
			flags[s] = m.And(m.VarRef(valid[s]), expr.EqConst(expr.FromVars(m, addr[s]), uint64(p)))
		}
		outstanding := expr.PopCount(m, flags)
		if outstanding.Width() < cw {
			outstanding = outstanding.Extend(cw)
		} else if outstanding.Width() > cw {
			outstanding = outstanding.Truncate(cw) // cw chosen to fit; no loss
		}
		cnt := expr.FromVars(m, counters[p])
		goodList[p] = expr.Eq(cnt, outstanding)
		for b := 0; b < cw; b++ {
			deps = append(deps, verify.Dependency{Var: counters[p][b], Def: outstanding.Bit(b)})
		}
	}

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Deps:     deps,
		Name:     fmt.Sprintf("network-n%d", n),
	}
}
