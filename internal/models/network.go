package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// NetworkConfig parameterizes the processors-and-network abstraction of
// Section IV.A: Procs processors nondeterministically issue requests into
// a non-message-order-preserving network (modelled, as in the paper, as a
// Procs-element array of messages, each carrying a valid bit, a req/ack
// flag, and a 4-bit return address), a server nondeterministically
// converts requests to acknowledgments, and each processor counts its
// outstanding messages.
type NetworkConfig struct {
	Procs int // number of processors; the paper assumes Procs < 16

	// Bug, if true, lets a processor consume any acknowledgment
	// regardless of its return address, corrupting the counters.
	Bug bool
}

// The paper fixes return addresses at 4 bits (n < 16).
const netAddrBits = 4

// netActions: the environment nondeterministically selects one of four
// actions per cycle; disabled actions stutter.
const (
	actIdle    = 0
	actIssue   = 1
	actServe   = 2
	actReceive = 3
)

// BuildNetwork builds the network model as manager-independent IR.
//
// The property — each processor's counter equals the number of its
// messages in flight — is the per-processor implicit conjunction the
// paper's tables annotate as "(n × k nodes)". It is also exposed as the
// functional-dependency declaration the FD baseline needs: each counter
// is a function of the network contents.
func BuildNetwork(cfg NetworkConfig) *ir.Model {
	n := cfg.Procs
	if n < 1 || n >= 16 {
		panic("models: network needs 1 <= Procs < 16")
	}
	slots := n // the paper models the network as an n-element array
	cw := 1
	for (1<<uint(cw))-1 < slots {
		cw++ // counter must hold up to `slots` outstanding messages
	}

	b := ir.NewBuilder(fmt.Sprintf("network-n%d", n))
	b.ParamInt("procs", n)
	b.ParamBool("bug", cfg.Bug)

	// Inputs: action selector, processor selector, slot selector.
	actV := b.Inputs("act", 2)
	procV := b.Inputs("psel", netAddrBits)
	slotV := b.Inputs("ssel", netAddrBits)

	// State, network first (the counters' defining functions read it):
	// per slot a valid bit, an ack flag, and the return address.
	valid := make([]*ir.Node, slots)
	ack := make([]*ir.Node, slots)
	addr := make([][]*ir.Node, slots)
	for s := 0; s < slots; s++ {
		valid[s] = b.State(fmt.Sprintf("net%d.v", s), false)
		ack[s] = b.State(fmt.Sprintf("net%d.a", s), false)
		addr[s] = b.States(fmt.Sprintf("net%d.id", s), netAddrBits, false)
	}
	counters := make([][]*ir.Node, n)
	for p := 0; p < n; p++ {
		counters[p] = b.States(fmt.Sprintf("cnt%d.", p), cw, false)
	}

	action := ir.FromNodes(actV)
	procSel := ir.FromNodes(procV)
	slotSel := ir.FromNodes(slotV)

	// Selectors must address real processors and slots.
	b.Constrain(ir.LtW(procSel, ir.ConstWord(uint64(n), netAddrBits)))
	b.Constrain(ir.LtW(slotSel, ir.ConstWord(uint64(slots), netAddrBits)))

	isIssue := ir.EqConstW(action, actIssue)
	isServe := ir.EqConstW(action, actServe)
	isRecv := ir.EqConstW(action, actReceive)

	// Per-slot enables.
	issueOK := ir.Bool(false) // chosen slot is free
	recvOK := ir.Bool(false)  // chosen slot holds an ack for procSel (or,
	// with the seeded bug, any ack at all)
	for s := 0; s < slots; s++ {
		selS := ir.EqConstW(slotSel, uint64(s))
		slotAddr := ir.FromNodes(addr[s])
		issueOK = ir.Or(issueOK, ir.And(selS, ir.Not(valid[s])))
		match := ir.EqW(slotAddr, procSel)
		if cfg.Bug {
			match = ir.Bool(true) // consume anyone's acknowledgment
		}
		recvOK = ir.Or(recvOK, ir.And(selS, valid[s], ack[s], match))
	}
	doIssue := ir.And(isIssue, issueOK)
	doRecv := ir.And(isRecv, recvOK)

	for s := 0; s < slots; s++ {
		selS := ir.EqConstW(slotSel, uint64(s))
		v, a := valid[s], ack[s]
		slotAddr := ir.FromNodes(addr[s])
		match := ir.EqW(slotAddr, procSel)
		if cfg.Bug {
			match = ir.Bool(true)
		}

		issueHere := ir.And(doIssue, selS, ir.Not(v))
		serveHere := ir.And(isServe, selS, v, ir.Not(a))
		recvHere := ir.And(doRecv, selS, v, a, match)

		b.SetNext(valid[s], ir.ITE(issueHere, ir.Bool(true), ir.ITE(recvHere, ir.Bool(false), v)))
		b.SetNext(ack[s], ir.ITE(issueHere, ir.Bool(false), ir.ITE(serveHere, ir.Bool(true), a)))
		for i := 0; i < netAddrBits; i++ {
			b.SetNext(addr[s][i], ir.ITE(issueHere, procSel.Bit(i), addr[s][i]))
		}
	}

	for p := 0; p < n; p++ {
		cnt := ir.FromNodes(counters[p])
		selP := ir.EqConstW(procSel, uint64(p))
		up := ir.And(doIssue, selP)
		down := ir.And(doRecv, selP)
		next := ir.MuxW(up, ir.IncW(cnt), ir.MuxW(down, ir.DecW(cnt), cnt))
		for i := 0; i < cw; i++ {
			b.SetNext(counters[p][i], next.Bit(i))
		}
	}

	// Property: counter_p == |{s : valid_s ∧ addr_s == p}| for each p —
	// one conjunct per processor, and simultaneously the functional
	// dependency defining the counter bits from the network state.
	for p := 0; p < n; p++ {
		flags := make([]*ir.Node, slots)
		for s := 0; s < slots; s++ {
			flags[s] = ir.And(valid[s], ir.EqConstW(ir.FromNodes(addr[s]), uint64(p)))
		}
		outstanding := ir.PopCountW(flags)
		if outstanding.Width() < cw {
			outstanding = outstanding.Extend(cw)
		} else if outstanding.Width() > cw {
			outstanding = outstanding.Truncate(cw) // cw chosen to fit; no loss
		}
		cnt := ir.FromNodes(counters[p])
		b.Good(ir.EqW(cnt, outstanding))
		for i := 0; i < cw; i++ {
			b.Dep(counters[p][i], outstanding.Bit(i))
		}
	}
	return b.Build()
}

// NewNetwork builds the network problem on the given manager — a thin
// shim over BuildNetwork + ir.Instantiate.
func NewNetwork(m *bdd.Manager, cfg NetworkConfig) verify.Problem {
	return BuildNetwork(cfg).MustInstantiate(m)
}
