// Package models builds the four benchmark model families of the paper's
// experimental evaluation (Section IV):
//
//   - the 8-bit typed FIFO queue (Table 1),
//   - processors sending messages through an unordered network (Table 1),
//   - the moving-average filter, with and without assisting invariants
//     (Tables 1 and 2, Figure 2), and
//   - the 3-stage pipelined processor with register bypass and branch
//     stall verified against a non-pipelined specification (Table 3,
//     Figure 3).
//
// Each constructor takes a fresh *bdd.Manager, declares variables in a
// deliberately interleaved order (the standard datapath ordering
// heuristic the paper cites, ref [19]), and returns a verify.Problem.
// Every model has an optional seeded bug so counterexample generation can
// be exercised end to end.
package models
