package models

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/verify"
)

func TestLinkVerifies(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		p := NewLink(bdd.New(), LinkConfig{DataBits: w})
		runAll(t, p, fourMethods, verify.Verified)
	}
}

func TestLinkBugCaught(t *testing.T) {
	p := NewLink(bdd.New(), LinkConfig{DataBits: 2, Bug: true})
	for _, method := range fourMethods {
		res := verify.Run(p, method, verify.Options{WantTrace: true})
		if res.Outcome != verify.Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if err := res.Trace.Validate(p.Machine, p.GoodList); err != nil {
			t.Fatalf("%s: trace invalid: %v", method, err)
		}
		// The hazard needs a full round trip plus a stale redelivery:
		// send, deliver+ack, resend, ack consumed, stale redelivery.
		if res.ViolationDepth < 5 {
			t.Fatalf("%s: suspiciously short violation depth %d", method, res.ViolationDepth)
		}
	}
}

// TestLinkSimulation replays the canonical happy path and the stale
// frame scenario concretely.
func TestLinkSimulation(t *testing.T) {
	m := bdd.New()
	p := NewLink(m, LinkConfig{DataBits: 2})
	ma := p.Machine

	iv := ma.InputVars()
	state := m.SatAssignment(ma.Init())
	step := func(action uint64, fresh uint64) {
		t.Helper()
		in := append([]bool(nil), state...)
		for b := 0; b < 3; b++ {
			in[iv[b]] = action&(1<<uint(b)) != 0
		}
		for b := 0; b < 2; b++ {
			in[iv[3+b]] = fresh&(1<<uint(b)) != 0
		}
		next, err := ma.Step(in)
		if err != nil {
			t.Fatalf("step rejected: %v", err)
		}
		state = next
	}
	bit := func(name string) bool {
		for _, v := range ma.CurVars() {
			if m.VarName(v) == name {
				return state[v]
			}
		}
		t.Fatalf("no state bit %q", name)
		return false
	}

	step(0, 0) // send frame(0, payload=0)
	if !bit("fwd.full") || bit("fwd.seq") {
		t.Fatal("send did not enqueue frame 0")
	}
	step(2, 0) // receiver delivers, acks
	if bit("fwd.full") || !bit("rev.full") || !bit("rcv.expect") || !bit("rcv.fresh") {
		t.Fatal("deliver/ack bookkeeping wrong")
	}
	step(0, 0) // sender RESENDS frame 0 before seeing the ack
	if !bit("fwd.full") {
		t.Fatal("resend failed")
	}
	step(4, 3) // sender consumes ack, advances to seq 1, latches payload 3
	if !bit("snd.seq") || bit("rev.full") {
		t.Fatal("ack consumption wrong")
	}
	// The stale frame(0) is still in flight; the receiver must discard
	// it (no delivery) while still acknowledging.
	step(2, 0)
	if bit("rcv.fresh") {
		t.Fatal("stale frame was delivered")
	}
	if !bit("rev.full") || bit("rev.seq") {
		t.Fatal("stale frame was not re-acknowledged")
	}
	// Property holds throughout (checked at the end state).
	for _, g := range p.GoodList {
		if !m.Eval(g, state) {
			t.Fatal("property violated on a legal run")
		}
	}
}

func TestLinkConfigValidation(t *testing.T) {
	for _, w := range []int{0, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("DataBits=%d did not panic", w)
				}
			}()
			NewLink(bdd.New(), LinkConfig{DataBits: w})
		}()
	}
}
