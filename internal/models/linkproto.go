package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
)

// LinkConfig parameterizes an alternating-bit link protocol — the
// "link-level protocols" of the paper's introduction. A sender transmits
// data words over a lossy forward channel, tagging each frame with a
// one-bit sequence number; the receiver acknowledges over a lossy
// reverse channel. Loss and duplication are environment nondeterminism.
type LinkConfig struct {
	DataBits int // payload width

	// Bug, if true, makes the receiver deliver a frame without checking
	// the sequence bit, so a duplicated frame is delivered twice and
	// the delivered stream diverges from the sent stream.
	Bug bool
}

// BuildLink builds the alternating-bit protocol model as
// manager-independent IR.
//
// Model structure (one frame in flight, as in the classical ABP
// treatment):
//
//	sender:   seqS bit, current payload register;
//	fwd chan: full bit, frame payload, frame seq;
//	rcv:      seqR bit (next expected), last delivered payload;
//	rev chan: full bit, ack seq.
//
// Actions (environment-chosen): sender (re)sends, forward channel drops,
// receiver consumes (delivers or discards duplicate, then acks), reverse
// channel drops, sender consumes ack (advances and latches new nondet
// payload), idle. The safety property: whenever the receiver has just
// delivered, the delivered payload equals the sender's payload for that
// sequence number, and the protocol's control invariant (the
// seq/ack/expected bits form a coherent configuration) holds. Both
// decompose into small conjuncts.
func BuildLink(cfg LinkConfig) *ir.Model {
	w := cfg.DataBits
	if w < 1 || w > 16 {
		panic("models: link needs 1 <= DataBits <= 16")
	}

	b := ir.NewBuilder(fmt.Sprintf("abp-w%d", w))
	b.ParamInt("data-bits", w)
	b.ParamBool("bug", cfg.Bug)

	act := b.Inputs("act", 3)
	freshData := b.Inputs("fresh", w)

	// Sender.
	seqS := b.State("snd.seq", false)
	payload := b.States("snd.data", w, false)
	// Forward channel (capacity 1).
	fFull := b.State("fwd.full", false)
	fSeq := b.State("fwd.seq", false)
	fData := b.States("fwd.data", w, false)
	// Receiver.
	seqR := b.State("rcv.expect", false)
	delivered := b.States("rcv.data", w, false)
	justDelivered := b.State("rcv.fresh", false)
	// Reverse channel (capacity 1).
	rFull := b.State("rev.full", false)
	rSeq := b.State("rev.seq", false)

	action := ir.FromNodes(act)
	const (
		actSend = iota // sender (re)transmits its current frame
		actDropF
		actRecv // receiver consumes the frame, acks
		actDropR
		actAck // sender consumes a matching ack, advances
	)
	b.Constrain(ir.LtW(action, ir.ConstWord(6, 3)))

	is := func(a uint64) *ir.Node { return ir.EqConstW(action, a) }

	send := ir.And(is(actSend), ir.Not(fFull))
	dropF := ir.And(is(actDropF), fFull)
	recv := ir.And(is(actRecv), fFull, ir.Not(rFull))
	dropR := ir.And(is(actDropR), rFull)
	ackOK := ir.And(is(actAck), rFull, ir.Xnor(rSeq, seqS))
	ackStale := ir.And(is(actAck), rFull, ir.Xor(rSeq, seqS))

	// A received frame is new when its sequence bit matches the
	// receiver's expectation (the buggy receiver skips the check).
	frameNew := ir.Xnor(fSeq, seqR)
	if cfg.Bug {
		frameNew = ir.Bool(true)
	}
	deliver := ir.And(recv, frameNew)

	// Forward channel.
	b.SetNext(fFull, ir.ITE(send, ir.Bool(true), ir.ITE(ir.Or(dropF, recv), ir.Bool(false), fFull)))
	b.SetNext(fSeq, ir.ITE(send, seqS, fSeq))
	for i := 0; i < w; i++ {
		b.SetNext(fData[i], ir.ITE(send, payload[i], fData[i]))
	}

	// Receiver: deliver new frames, always ack with the frame's seq.
	b.SetNext(seqR, ir.ITE(deliver, ir.Not(seqR), seqR))
	for i := 0; i < w; i++ {
		b.SetNext(delivered[i], ir.ITE(deliver, fData[i], delivered[i]))
	}
	b.SetNext(justDelivered, deliver)

	// Reverse channel.
	b.SetNext(rFull, ir.ITE(recv, ir.Bool(true), ir.ITE(ir.Or(dropR, ackOK, ackStale), ir.Bool(false), rFull)))
	b.SetNext(rSeq, ir.ITE(recv, fSeq, rSeq))

	// Sender: on a matching ack, flip the sequence bit and latch a new
	// nondeterministic payload.
	b.SetNext(seqS, ir.ITE(ackOK, ir.Not(seqS), seqS))
	for i := 0; i < w; i++ {
		b.SetNext(payload[i], ir.ITE(ackOK, freshData[i], payload[i]))
	}

	// Property conjuncts.
	//
	// Data integrity: a just-delivered payload is the sender's payload,
	// provided the sender has not already advanced past it (after ackOK
	// the sender holds the NEXT word; then seqR == seqS again).
	// Concretely: justDelivered ∧ (seqR ≠ seqS) ⇒ delivered == payload —
	// per-bit conjuncts.
	senderStillOn := ir.Xor(seqR, seqS) // receiver advanced, sender not yet acked past
	for i := 0; i < w; i++ {
		eq := ir.Xnor(delivered[i], payload[i])
		b.Good(ir.Imp(ir.And(justDelivered, senderStillOn), eq))
	}
	// Control invariant: an in-flight frame carries the sender's current
	// sequence bit or the receiver already advanced past it; an ack in
	// flight never acknowledges a frame the sender has not sent.
	b.Good(ir.Imp(fFull, ir.Or(ir.Xnor(fSeq, seqS), ir.Xor(seqR, fSeq))))

	return b.Build()
}

// NewLink builds the alternating-bit protocol problem on the given
// manager — a thin shim over BuildLink + ir.Instantiate.
func NewLink(m *bdd.Manager, cfg LinkConfig) verify.Problem {
	return BuildLink(cfg).MustInstantiate(m)
}
