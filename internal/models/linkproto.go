package models

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// LinkConfig parameterizes an alternating-bit link protocol — the
// "link-level protocols" of the paper's introduction. A sender transmits
// data words over a lossy forward channel, tagging each frame with a
// one-bit sequence number; the receiver acknowledges over a lossy
// reverse channel. Loss and duplication are environment nondeterminism.
type LinkConfig struct {
	DataBits int // payload width

	// Bug, if true, makes the receiver deliver a frame without checking
	// the sequence bit, so a duplicated frame is delivered twice and
	// the delivered stream diverges from the sent stream.
	Bug bool
}

// NewLink builds the alternating-bit protocol problem on a fresh
// manager.
//
// Model structure (one frame in flight, as in the classical ABP
// treatment):
//
//	sender:   seqS bit, current payload register;
//	fwd chan: full bit, frame payload, frame seq;
//	rcv:      seqR bit (next expected), last delivered payload;
//	rev chan: full bit, ack seq.
//
// Actions (environment-chosen): sender (re)sends, forward channel drops,
// receiver consumes (delivers or discards duplicate, then acks), reverse
// channel drops, sender consumes ack (advances and latches new nondet
// payload), idle. The safety property: whenever the receiver has just
// delivered, the delivered payload equals the sender's payload for that
// sequence number, and the protocol's control invariant (the
// seq/ack/expected bits form a coherent configuration) holds. Both
// decompose into small conjuncts.
func NewLink(m *bdd.Manager, cfg LinkConfig) verify.Problem {
	w := cfg.DataBits
	if w < 1 || w > 16 {
		panic("models: link needs 1 <= DataBits <= 16")
	}

	ma := fsm.New(m)

	act := ma.NewInputBits("act", 3)
	freshData := ma.NewInputBits("fresh", w)

	// Sender.
	seqS := ma.NewStateBit("snd.seq")
	payload := ma.NewStateBits("snd.data", w)
	// Forward channel (capacity 1).
	fFull := ma.NewStateBit("fwd.full")
	fSeq := ma.NewStateBit("fwd.seq")
	fData := ma.NewStateBits("fwd.data", w)
	// Receiver.
	seqR := ma.NewStateBit("rcv.expect")
	delivered := ma.NewStateBits("rcv.data", w)
	justDelivered := ma.NewStateBit("rcv.fresh")
	// Reverse channel (capacity 1).
	rFull := ma.NewStateBit("rev.full")
	rSeq := ma.NewStateBit("rev.seq")

	action := expr.FromVars(m, act)
	const (
		actSend = iota // sender (re)transmits its current frame
		actDropF
		actRecv // receiver consumes the frame, acks
		actDropR
		actAck // sender consumes a matching ack, advances
		actIdle
	)
	ma.AddInputConstraint(expr.Lt(action, expr.Const(m, 6, 3)))

	is := func(a uint64) bdd.Ref { return expr.EqConst(action, a) }

	vSeqS, vSeqR := m.VarRef(seqS), m.VarRef(seqR)
	vFFull, vFSeq := m.VarRef(fFull), m.VarRef(fSeq)
	vRFull, vRSeq := m.VarRef(rFull), m.VarRef(rSeq)

	send := m.And(is(actSend), vFFull.Not())
	dropF := m.And(is(actDropF), vFFull)
	recv := m.AndN(is(actRecv), vFFull, vRFull.Not())
	dropR := m.And(is(actDropR), vRFull)
	ackOK := m.AndN(is(actAck), vRFull, m.Xnor(vRSeq, vSeqS))
	ackStale := m.AndN(is(actAck), vRFull, m.Xor(vRSeq, vSeqS))

	// A received frame is new when its sequence bit matches the
	// receiver's expectation (the buggy receiver skips the check).
	frameNew := m.Xnor(vFSeq, vSeqR)
	if cfg.Bug {
		frameNew = bdd.One
	}
	deliver := m.And(recv, frameNew)

	// Forward channel.
	ma.SetNext(fFull, m.ITE(send, bdd.One, m.ITE(m.Or(dropF, recv), bdd.Zero, vFFull)))
	ma.SetNext(fSeq, m.ITE(send, vSeqS, vFSeq))
	for b := 0; b < w; b++ {
		ma.SetNext(fData[b], m.ITE(send, m.VarRef(payload[b]), m.VarRef(fData[b])))
	}

	// Receiver: deliver new frames, always ack with the frame's seq.
	ma.SetNext(seqR, m.ITE(deliver, vSeqR.Not(), vSeqR))
	for b := 0; b < w; b++ {
		ma.SetNext(delivered[b], m.ITE(deliver, m.VarRef(fData[b]), m.VarRef(delivered[b])))
	}
	ma.SetNext(justDelivered, deliver)

	// Reverse channel.
	ma.SetNext(rFull, m.ITE(recv, bdd.One, m.ITE(m.OrN(dropR, ackOK, ackStale), bdd.Zero, vRFull)))
	ma.SetNext(rSeq, m.ITE(recv, vFSeq, vRSeq))

	// Sender: on a matching ack, flip the sequence bit and latch a new
	// nondeterministic payload.
	ma.SetNext(seqS, m.ITE(ackOK, vSeqS.Not(), vSeqS))
	for b := 0; b < w; b++ {
		ma.SetNext(payload[b], m.ITE(ackOK, m.VarRef(freshData[b]), m.VarRef(payload[b])))
	}

	initSet := bdd.One
	for _, v := range ma.CurVars() {
		initSet = m.And(initSet, m.NVarRef(v))
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	// Property conjuncts.
	//
	// Data integrity: a just-delivered payload is the sender's payload,
	// provided the sender has not already advanced past it (after ackOK
	// the sender holds the NEXT word; then seqR == seqS again).
	// Concretely: justDelivered ∧ (seqR ≠ seqS) ⇒ delivered == payload —
	// per-bit conjuncts.
	senderStillOn := m.Xor(vSeqR, vSeqS) // receiver advanced, sender not yet acked past
	var goodList []bdd.Ref
	for b := 0; b < w; b++ {
		eq := m.Xnor(m.VarRef(delivered[b]), m.VarRef(payload[b]))
		goodList = append(goodList, m.Imp(m.And(m.VarRef(justDelivered), senderStillOn), eq))
	}
	// Control invariant: an in-flight frame carries the sender's current
	// sequence bit or the receiver already advanced past it; an ack in
	// flight never acknowledges a frame the sender has not sent.
	frameCoherent := m.Imp(vFFull, m.Or(m.Xnor(vFSeq, vSeqS), m.Xor(vSeqR, vFSeq)))
	goodList = append(goodList, frameCoherent)

	return verify.Problem{
		Machine:  ma,
		GoodList: goodList,
		Name:     fmt.Sprintf("abp-w%d", w),
	}
}
