package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 257
		var hits [n]atomic.Int32
		NewPool(workers).ForEach(n, func(_, task int) {
			hits[task].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachWorkerExclusivity is the contract the BDD layer depends on:
// two tasks handed the same worker id must never overlap in time, since
// the id selects a bdd.Manager that is not safe for concurrent use.
func TestForEachWorkerExclusivity(t *testing.T) {
	p := NewPool(4)
	busy := make([]atomic.Bool, p.Size())
	var violations atomic.Int32
	p.ForEach(200, func(worker, _ int) {
		if worker < 0 || worker >= p.Size() {
			violations.Add(1)
			return
		}
		if !busy[worker].CompareAndSwap(false, true) {
			violations.Add(1)
			return
		}
		runtime.Gosched()
		busy[worker].Store(false)
	})
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d worker-exclusivity violations", v)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "boom-7" {
					t.Fatalf("workers=%d: recovered %v, want boom-7", workers, r)
				}
			}()
			NewPool(workers).ForEach(20, func(_, task int) {
				if task == 7 {
					panic("boom-7")
				}
			})
			t.Fatalf("workers=%d: ForEach did not panic", workers)
		}()
	}
}

// With several panicking tasks, the surviving panic is the one from the
// lowest task index that actually panicked — stable enough for tests and
// error reporting even though the aborted tail is scheduling-dependent.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	defer func() {
		if r := recover(); r != 0 {
			t.Fatalf("recovered %v, want 0", r)
		}
	}()
	// Every task panics, so task 0 always panics and must win.
	NewPool(8).ForEach(64, func(_, task int) {
		panic(task)
	})
	t.Fatal("ForEach did not panic")
}

func TestForEachEdgeCases(t *testing.T) {
	ran := false
	NewPool(2).ForEach(0, func(_, _ int) { ran = true })
	NewPool(2).ForEach(-3, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("no-op ForEach ran a task")
	}
	if got := NewPool(0).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Size() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(-1).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-1).Size() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("NewPool(3).Size() = %d", got)
	}
}

// TestForEachSingleTaskInline: one task runs inline even on a wide pool.
func TestForEachSingleTaskInline(t *testing.T) {
	var worker int = -1
	NewPool(16).ForEach(1, func(w, task int) { worker = w })
	if worker != 0 {
		t.Fatalf("single task ran on worker %d, want 0", worker)
	}
}

// Serve must hand every task to exactly one worker, honor the stable
// worker-identity contract, and return only once the channel is closed
// and drained.
func TestServeDrainsChannel(t *testing.T) {
	const n = 500
	tasks := make(chan int, 16)
	go func() {
		for i := 0; i < n; i++ {
			tasks <- i
		}
		close(tasks)
	}()

	var mu sync.Mutex
	seen := make(map[int]int) // task -> times run
	perWorker := make(map[int]int)
	Serve(4, tasks, func(w, task int) {
		mu.Lock()
		seen[task]++
		perWorker[w]++
		mu.Unlock()
	})
	if len(seen) != n {
		t.Fatalf("ran %d distinct tasks, want %d", len(seen), n)
	}
	for task, times := range seen {
		if times != 1 {
			t.Fatalf("task %d ran %d times", task, times)
		}
	}
	for w := range perWorker {
		if w < 0 || w >= 4 {
			t.Fatalf("worker id %d out of range", w)
		}
	}
}

// Per-worker state needs no locking: tasks sharing a worker id never run
// concurrently. Each worker owns a counter slot; the slots must sum to
// the task count (the race detector guards the contract).
func TestServePerWorkerStateUnlocked(t *testing.T) {
	const workers, n = 3, 300
	tasks := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			tasks <- i
		}
		close(tasks)
	}()
	counts := make([]int, workers) // written without locks, one slot per worker
	Serve(workers, tasks, func(w, _ int) {
		counts[w]++
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
}

// Serve with an already-closed channel returns immediately; n <= 0
// selects GOMAXPROCS workers rather than zero.
func TestServeEmptyAndDefaultWidth(t *testing.T) {
	empty := make(chan struct{})
	close(empty)
	done := make(chan struct{})
	go func() {
		Serve(0, empty, func(int, struct{}) { t.Error("task on empty channel") })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return on a closed empty channel")
	}
}
