package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 257
		var hits [n]atomic.Int32
		NewPool(workers).ForEach(n, func(_, task int) {
			hits[task].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachWorkerExclusivity is the contract the BDD layer depends on:
// two tasks handed the same worker id must never overlap in time, since
// the id selects a bdd.Manager that is not safe for concurrent use.
func TestForEachWorkerExclusivity(t *testing.T) {
	p := NewPool(4)
	busy := make([]atomic.Bool, p.Size())
	var violations atomic.Int32
	p.ForEach(200, func(worker, _ int) {
		if worker < 0 || worker >= p.Size() {
			violations.Add(1)
			return
		}
		if !busy[worker].CompareAndSwap(false, true) {
			violations.Add(1)
			return
		}
		runtime.Gosched()
		busy[worker].Store(false)
	})
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d worker-exclusivity violations", v)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "boom-7" {
					t.Fatalf("workers=%d: recovered %v, want boom-7", workers, r)
				}
			}()
			NewPool(workers).ForEach(20, func(_, task int) {
				if task == 7 {
					panic("boom-7")
				}
			})
			t.Fatalf("workers=%d: ForEach did not panic", workers)
		}()
	}
}

// With several panicking tasks, the surviving panic is the one from the
// lowest task index that actually panicked — stable enough for tests and
// error reporting even though the aborted tail is scheduling-dependent.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	defer func() {
		if r := recover(); r != 0 {
			t.Fatalf("recovered %v, want 0", r)
		}
	}()
	// Every task panics, so task 0 always panics and must win.
	NewPool(8).ForEach(64, func(_, task int) {
		panic(task)
	})
	t.Fatal("ForEach did not panic")
}

func TestForEachEdgeCases(t *testing.T) {
	ran := false
	NewPool(2).ForEach(0, func(_, _ int) { ran = true })
	NewPool(2).ForEach(-3, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("no-op ForEach ran a task")
	}
	if got := NewPool(0).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Size() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(-1).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-1).Size() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("NewPool(3).Size() = %d", got)
	}
}

// TestForEachSingleTaskInline: one task runs inline even on a wide pool.
func TestForEachSingleTaskInline(t *testing.T) {
	var worker int = -1
	NewPool(16).ForEach(1, func(w, task int) { worker = w })
	if worker != 0 {
		t.Fatalf("single task ran on worker %d, want 0", worker)
	}
}
