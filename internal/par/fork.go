package par

import "runtime"

// Forker is the bounded fork/join primitive behind the shared-memory
// parallel BDD operations (bdd.ParITE and friends). A recursion forks its
// two independent sub-calls through Do; whether the first branch actually
// runs on another goroutine is decided per call by a token budget, so the
// total number of extra goroutines a Forker can have in flight is bounded
// by its size regardless of recursion depth or width.
//
// Do never blocks acquiring a token — when none is free both branches run
// inline — so a forked branch that itself forks cannot deadlock: every
// goroutine always has an inline path to make progress on. This is the
// classical bounded fork/join discipline (cf. Sylvan's work-stealing
// framework); tokens here play the role of idle workers.
type Forker struct {
	// tokens has capacity size-1: the calling goroutine is itself one
	// worker. A nil channel (size <= 1) disables forking entirely, which
	// keeps single-CPU configurations on the zero-overhead inline path.
	tokens chan struct{}
}

// NewForker returns a Forker that keeps at most n goroutines (including
// the caller) working on one operation; n <= 0 selects GOMAXPROCS, and
// any n is clamped to GOMAXPROCS: goroutines beyond the schedulable
// parallelism can never run concurrently, they only add channel and
// spawn overhead. In particular an effective size of 1 — a single-core
// process, whatever n was requested — degrades to strictly sequential
// Do calls: no token channel, no goroutine, both branches inline on the
// caller.
func NewForker(n int) *Forker {
	if p := runtime.GOMAXPROCS(0); n <= 0 || n > p {
		n = p
	}
	f := &Forker{}
	if n > 1 {
		f.tokens = make(chan struct{}, n-1)
	}
	return f
}

// Size returns the worker bound (including the calling goroutine).
func (f *Forker) Size() int {
	if f.tokens == nil {
		return 1
	}
	return cap(f.tokens) + 1
}

// Do runs a and b, concurrently when a worker token is free and inline
// otherwise, and returns once both have finished. A panic in either
// branch is re-raised on the calling goroutine after both branches have
// completed (a's panic value wins if both panicked), so resource-overrun
// panics from the bdd package (*LimitError, *DeadlineError) propagate to
// the caller's Guard boundary exactly as in sequential code and no
// goroutine is ever abandoned mid-join.
func (f *Forker) Do(a, b func()) {
	if f.tokens != nil {
		select {
		case f.tokens <- struct{}{}:
			join := make(chan any, 1)
			go func() {
				defer func() {
					join <- recover()
					<-f.tokens
				}()
				a()
			}()
			bPanic := runRecover(b)
			if aPanic := <-join; aPanic != nil {
				panic(aPanic)
			}
			if bPanic != nil {
				panic(bPanic)
			}
			return
		default:
		}
	}
	// Inline path: strictly sequential on the calling goroutine, with
	// the same contract as the forked path — both branches always run
	// to completion, a's panic value wins if both panicked.
	aPanic := runRecover(a)
	bPanic := runRecover(b)
	if aPanic != nil {
		panic(aPanic)
	}
	if bPanic != nil {
		panic(bPanic)
	}
}

// runRecover runs fn, converting a panic into a returned value so the
// caller can finish joining its sibling branch before re-raising.
func runRecover(fn func()) (p any) {
	defer func() { p = recover() }()
	fn()
	return nil
}
