// Package par provides the worker-pool primitive behind the repo's
// parallel execution layer: parallel pair scoring in the core evaluation
// policy (internal/core) and the concurrent bench grid (internal/bench).
//
// The design constraint comes from the BDD substrate: a bdd.Manager is
// not safe for concurrent use, so parallelism in this codebase is always
// "one Manager per worker" with explicit hand-off (bdd.Transfer) at the
// boundaries. The pool therefore exposes a stable worker identity to
// every task: tasks that share a worker id never run concurrently, which
// lets callers attach per-worker state (a Manager, a scratch buffer)
// without any locking.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Serve runs n workers (n <= 0 selects GOMAXPROCS) that drain tasks
// from the channel until it is closed and drained, then returns. It is
// the streaming counterpart of Pool.ForEach for long-running callers —
// the icid job scheduler — whose task set is not known up front: tasks
// arrive over the channel's lifetime and each is handed to exactly one
// worker.
//
// The worker argument carries the same stable-identity contract as
// ForEach: tasks with the same worker id never run concurrently, so
// callers may attach per-worker state without locking. Unlike ForEach,
// Serve offers no panic collection — a panic in fn escapes on the
// worker's goroutine and takes the process down, so a daemon must
// recover inside fn (resource overruns inside verification runs are
// already converted to results by bdd.Guard well below fn).
func Serve[T any](n int, tasks <-chan T, fn func(worker int, task T)) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for task := range tasks {
				fn(w, task)
			}
		}(w)
	}
	wg.Wait()
}

// Pool is a fixed-width worker pool. A Pool holds no goroutines between
// calls: each ForEach spins up its workers, drains the tasks, and joins,
// so an idle Pool costs nothing. That matters because pools are created
// per evaluation call, sized to the caller's Workers option.
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.workers }

// ForEach runs fn(worker, task) for every task in [0, n), distributing
// tasks dynamically across the pool's workers. The worker argument names
// which of the pool's Size() workers is running the task; tasks with the
// same worker id never run concurrently. ForEach returns only after
// every started task has finished — it never leaves goroutines behind,
// so per-worker state is safe to reuse or discard immediately after.
//
// When n is 0 or negative ForEach is a no-op. When the pool has a single
// worker (or a single task), the tasks run inline on the calling
// goroutine in task order, so a Workers=1 configuration exercises the
// same code path deterministically with zero scheduling noise.
//
// A panic in a task stops the distribution of further tasks; after all
// in-flight tasks drain, ForEach re-panics on the calling goroutine with
// the panic value of the lowest-indexed panicking task. Resource-limit
// panics from the bdd package (*LimitError, *DeadlineError) therefore
// propagate to the caller's bdd.Guard exactly as in sequential code, and
// the surviving panic value is chosen stably.
func (p *Pool) ForEach(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return
	}

	var (
		next  atomic.Int64
		abort atomic.Bool
		wg    sync.WaitGroup

		mu         sync.Mutex
		panicTask  = -1
		panicValue any
	)
	run := func(w, t int) {
		defer func() {
			if r := recover(); r != nil {
				abort.Store(true)
				mu.Lock()
				if panicTask < 0 || t < panicTask {
					panicTask, panicValue = t, r
				}
				mu.Unlock()
			}
		}()
		fn(w, t)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !abort.Load() {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				run(w, t)
			}
		}(w)
	}
	wg.Wait()
	if panicTask >= 0 {
		panic(panicValue)
	}
}
