package par

import (
	"sync/atomic"
	"testing"
)

func TestForkerInline(t *testing.T) {
	f := NewForker(1)
	if f.Size() != 1 {
		t.Fatalf("Size = %d, want 1", f.Size())
	}
	order := []int{}
	f.Do(func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("inline order %v, want [1 2]", order)
	}
}

func TestForkerRunsBoth(t *testing.T) {
	f := NewForker(4)
	var n atomic.Int64
	// Recursive fan-out well past the token budget: every branch must run
	// exactly once whether forked or inlined.
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			n.Add(1)
			return
		}
		f.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if n.Load() != 1024 {
		t.Fatalf("ran %d leaves, want 1024", n.Load())
	}
}

func TestForkerPanicPropagation(t *testing.T) {
	f := NewForker(4)
	cases := []struct {
		name string
		a, b func()
		want any
	}{
		{"a-panics", func() { panic("pa") }, func() {}, "pa"},
		{"b-panics", func() {}, func() { panic("pb") }, "pb"},
		{"both-panic", func() { panic("pa") }, func() { panic("pb") }, "pa"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != tc.want {
					t.Fatalf("recovered %v, want %v", r, tc.want)
				}
			}()
			f.Do(tc.a, tc.b)
			t.Fatal("no panic propagated")
		})
	}
}

// TestForkerTokensRecycled: a panicking forked branch must still return
// its token, or the Forker silently degrades to sequential forever.
func TestForkerTokensRecycled(t *testing.T) {
	f := NewForker(2)
	for i := 0; i < 100; i++ {
		func() {
			defer func() { recover() }()
			f.Do(func() { panic("x") }, func() {})
		}()
	}
	if len(f.tokens) != 0 {
		t.Fatalf("%d tokens leaked", len(f.tokens))
	}
}
