package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// goid returns the calling goroutine's id, parsed from the stack header.
// Tests use it to prove a branch ran on the caller, not a spawned
// goroutine.
func goid() string {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	return strings.Fields(string(buf[:n]))[1]
}

func TestForkerInline(t *testing.T) {
	f := NewForker(1)
	if f.Size() != 1 {
		t.Fatalf("Size = %d, want 1", f.Size())
	}
	order := []int{}
	f.Do(func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("inline order %v, want [1 2]", order)
	}
}

func TestForkerRunsBoth(t *testing.T) {
	f := NewForker(4)
	var n atomic.Int64
	// Recursive fan-out well past the token budget: every branch must run
	// exactly once whether forked or inlined.
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			n.Add(1)
			return
		}
		f.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if n.Load() != 1024 {
		t.Fatalf("ran %d leaves, want 1024", n.Load())
	}
}

func TestForkerPanicPropagation(t *testing.T) {
	f := NewForker(4)
	cases := []struct {
		name string
		a, b func()
		want any
	}{
		{"a-panics", func() { panic("pa") }, func() {}, "pa"},
		{"b-panics", func() {}, func() { panic("pb") }, "pb"},
		{"both-panic", func() { panic("pa") }, func() { panic("pb") }, "pa"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != tc.want {
					t.Fatalf("recovered %v, want %v", r, tc.want)
				}
			}()
			f.Do(tc.a, tc.b)
			t.Fatal("no panic propagated")
		})
	}
}

// TestForkerClampedToGOMAXPROCS: the worker bound never exceeds the
// schedulable parallelism, whatever n was requested.
func TestForkerClampedToGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	if got := NewForker(8).Size(); got != 4 {
		t.Errorf("NewForker(8).Size() = %d at GOMAXPROCS=4, want 4", got)
	}
	if got := NewForker(2).Size(); got != 2 {
		t.Errorf("NewForker(2).Size() = %d at GOMAXPROCS=4, want 2", got)
	}
	if got := NewForker(0).Size(); got != 4 {
		t.Errorf("NewForker(0).Size() = %d at GOMAXPROCS=4, want 4", got)
	}
}

// TestForkerSequentialDegrade: at effective size 1 (here: any n at
// GOMAXPROCS=1) Do must run strictly sequentially — no token channel
// and zero goroutines spawned; every branch of a deep recursive fan-out
// executes on the calling goroutine.
func TestForkerSequentialDegrade(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	f := NewForker(8)
	if f.Size() != 1 {
		t.Fatalf("Size = %d at GOMAXPROCS=1, want 1", f.Size())
	}
	if f.tokens != nil {
		t.Fatal("effective size 1 still allocated the token channel")
	}
	caller := goid()
	leaves := 0
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			if g := goid(); g != caller {
				t.Fatalf("leaf ran on goroutine %s, caller is %s", g, caller)
			}
			leaves++
			return
		}
		f.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(6)
	if leaves != 64 {
		t.Fatalf("ran %d leaves, want 64", leaves)
	}
}

// TestForkerSequentialPanicSemantics: the inline path preserves the
// forked path's contract — both branches run to completion and a's
// panic value wins.
func TestForkerSequentialPanicSemantics(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	f := NewForker(4)
	if f.tokens != nil {
		t.Fatal("effective size 1 still allocated the token channel")
	}
	bRan := false
	defer func() {
		if r := recover(); r != "pa" {
			t.Fatalf("recovered %v, want pa", r)
		}
		if !bRan {
			t.Fatal("b did not run after a panicked on the inline path")
		}
	}()
	f.Do(func() { panic("pa") }, func() { bRan = true; panic("pb") })
	t.Fatal("no panic propagated")
}

// TestForkerTokensRecycled: a panicking forked branch must still return
// its token, or the Forker silently degrades to sequential forever.
func TestForkerTokensRecycled(t *testing.T) {
	f := NewForker(2)
	for i := 0; i < 100; i++ {
		func() {
			defer func() { recover() }()
			f.Do(func() { panic("x") }, func() {})
		}()
	}
	if len(f.tokens) != 0 {
		t.Fatalf("%d tokens leaked", len(f.tokens))
	}
}
