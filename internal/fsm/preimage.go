package fsm

import (
	"repro/internal/bdd"
)

// Relational-product implementations of PreImage/BackImage, using the
// conjunctively partitioned transition relation with early
// quantification, as an alternative to the functional-composition route.
// For machines with wide datapaths the composition route can explode in
// intermediate sizes; conjoining the per-bit relations one at a time and
// quantifying next-state/input variables as soon as they fall out of use
// is usually far better behaved. PreImage selects between the two
// automatically (see Machine.PreImage).

// preImageRel computes ∃ next, inp. C ∧ ∧_i T_i ∧ Z[cur → next].
func (ma *Machine) preImageRel(z bdd.Ref) bdd.Ref {
	m := ma.M
	acc := m.Rename(z, ma.cur, ma.next)
	acc = m.And(acc, ma.constraint)
	acc = m.Exists(acc, ma.preSeedQuant)
	for _, p := range ma.preTransition {
		acc = m.AndExists(acc, p.rel, p.quant)
		if acc == bdd.Zero {
			return bdd.Zero
		}
	}
	return acc
}

// PreImageWithin returns PreImage(z) ∧ ∧within for a list of
// current-state-variable sets, conjoining the within conjuncts into the
// relational product before quantification instead of intersecting
// afterwards. This is the PDR predecessor query — "a state of F_{i-1}
// with a successor in the blocked cube" — where constraining early
// keeps the intermediate products small. The within conjuncts must
// mention current-state variables only: they then commute with the
// ∃next,inp quantification, so the result equals the late
// intersection by canonicity (on either PreImageMode).
func (ma *Machine) PreImageWithin(z bdd.Ref, within []bdd.Ref) bdd.Ref {
	ma.mustBeSealed()
	m := ma.M
	if ma.PreImageMode == PreRelational {
		acc := m.Rename(z, ma.cur, ma.next)
		acc = m.ParAnd(acc, ma.constraint)
		for _, w := range within {
			acc = m.ParAnd(acc, w)
			if acc == bdd.Zero {
				return bdd.Zero
			}
		}
		acc = m.Exists(acc, ma.preSeedQuant)
		for _, p := range ma.preTransition {
			acc = m.ParAndExists(acc, p.rel, p.quant)
			if acc == bdd.Zero {
				return bdd.Zero
			}
		}
		return acc
	}
	acc := m.ParAnd(ma.constraint, ma.sub.Compose(z))
	for _, w := range within {
		acc = m.ParAnd(acc, w)
		if acc == bdd.Zero {
			return bdd.Zero
		}
	}
	return m.Exists(acc, ma.inputCube)
}

// buildPrePartition computes the early-quantification schedule for the
// backward direction: quantifiable variables are the next-state and
// input variables; current-state variables survive into the result. The
// seed of the chain is Z (renamed to next variables) conjoined with the
// input constraint.
func (ma *Machine) buildPrePartition() {
	m := ma.M
	lastUse := make(map[bdd.Var]int)
	for _, v := range ma.next {
		lastUse[v] = -1
	}
	for _, v := range ma.inputs {
		lastUse[v] = -1
	}
	for i, p := range ma.transition {
		for _, v := range m.Support(p.rel) {
			if _, ok := lastUse[v]; ok {
				lastUse[v] = i
			}
		}
	}
	ma.preTransition = make([]transPart, len(ma.transition))
	for i, p := range ma.transition {
		var cube []bdd.Var
		for v, last := range lastUse {
			if last == i {
				cube = append(cube, v)
			}
		}
		ma.preTransition[i] = transPart{rel: p.rel, quant: m.MkCube(cube)}
	}
	var seed []bdd.Var
	for v, last := range lastUse {
		if last == -1 {
			seed = append(seed, v)
		}
	}
	ma.preSeedQuant = m.MkCube(seed)
}
