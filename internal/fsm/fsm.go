// Package fsm provides the symbolic finite-state-machine layer the
// verification algorithms run on: state and input variable management,
// next-state functions, and the Image / PreImage / BackImage operators of
// the paper's Definition 1.
//
// Machines are modelled functionally: a machine is deterministic given
// its primary inputs, and all nondeterminism (environment choices,
// abstracted implementation freedom) enters through unconstrained or
// partially constrained input variables. The induced transition relation
// is
//
//	τ(u, v)  =  ∃inp. C(u, inp) ∧ v = f(u, inp)
//
// where C is the optional input constraint (environment assumption).
// With this shape the three image operators become:
//
//	Image(τ, Z)     = rename(∃ cur, inp. Z ∧ C ∧ ∧_i (next_i ≡ f_i))
//	PreImage(τ, Z)  = ∃ inp. C ∧ Z[cur ← f(cur, inp)]
//	BackImage(τ, Z) = ∀ inp. C ⇒ Z[cur ← f(cur, inp)]
//
// PreImage and BackImage go through simultaneous functional composition
// and never mention next-state variables at all; this is what makes the
// per-conjunct BackImage of Theorem 1 cheap. Image uses a partitioned
// transition relation with early quantification (ref [4] of the paper).
package fsm

import (
	"fmt"

	"repro/internal/bdd"
)

// Machine is a symbolic FSM under construction or in use. Build it by
// declaring bits (in the variable order you want — order is declaration
// order, so interleave datapath slices by declaring them interleaved),
// assigning next-state functions, the initial-state set, and optional
// input constraints; then call Seal before handing it to a verifier.
type Machine struct {
	M *bdd.Manager

	cur    []bdd.Var // current-state variables, in declaration order
	next   []bdd.Var // paired next-state variables (cur_i at level l, next_i at l+1)
	inputs []bdd.Var

	nextFn map[bdd.Var]bdd.Ref // per current-state bit

	init       bdd.Ref
	constraint bdd.Ref // input constraint C; One when absent

	sealed bool

	// Caches built by Seal.
	sub        *bdd.Substitution // cur -> nextFn
	inputCube  bdd.Ref
	curCube    bdd.Ref
	transition []transPart // partitioned relation, with quantification schedule
	seedQuant  bdd.Ref     // variables no relation conjunct mentions

	preTransition []transPart // backward-direction quantification schedule
	preSeedQuant  bdd.Ref

	// PreImageMode selects the PreImage/BackImage implementation; see
	// the constants below. Set it before traversal begins.
	PreImageMode PreImageMode
}

// PreImageMode selects how PreImage (and thus BackImage) is computed.
type PreImageMode int

const (
	// PreRelational (the default) conjoins the per-bit transition
	// relations with early quantification of next-state and input
	// variables — the partitioned-relation technique of ref [4]. Far
	// better behaved on wide datapaths.
	PreRelational PreImageMode = iota
	// PreCompose substitutes the next-state functions into Z and
	// quantifies the inputs: ∃inp. C ∧ Z[cur ← f] — the functional
	// (Ever-style) route. Very fast when Z is small or the machine is
	// shallow; can explode in intermediates on wide datapaths (see the
	// ablation benchmarks).
	PreCompose
)

// transPart is one conjunct of the partitioned transition relation plus
// the cube of variables that may be quantified out right after it is
// conjoined (no later conjunct mentions them).
type transPart struct {
	rel   bdd.Ref
	quant bdd.Ref
}

// New creates an empty machine on m.
func New(m *bdd.Manager) *Machine {
	return &Machine{
		M:          m,
		nextFn:     make(map[bdd.Var]bdd.Ref),
		init:       bdd.Zero,
		constraint: bdd.One,
	}
}

// NewStateBit declares a state bit, allocating adjacent current/next
// variables, and returns the current-state variable.
func (ma *Machine) NewStateBit(name string) bdd.Var {
	ma.mustBeUnsealed()
	c := ma.M.NewVar(name)
	n := ma.M.NewVar(name + "'")
	ma.cur = append(ma.cur, c)
	ma.next = append(ma.next, n)
	return c
}

// NewStateBits declares n state bits named prefix0..prefix(n-1).
func (ma *Machine) NewStateBits(prefix string, n int) []bdd.Var {
	out := make([]bdd.Var, n)
	for i := range out {
		out[i] = ma.NewStateBit(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// NewInputBit declares a primary-input bit.
func (ma *Machine) NewInputBit(name string) bdd.Var {
	ma.mustBeUnsealed()
	v := ma.M.NewVar(name)
	ma.inputs = append(ma.inputs, v)
	return v
}

// NewInputBits declares n input bits named prefix0..prefix(n-1).
func (ma *Machine) NewInputBits(prefix string, n int) []bdd.Var {
	out := make([]bdd.Var, n)
	for i := range out {
		out[i] = ma.NewInputBit(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// SetNext assigns the next-state function of a declared state bit. The
// function may mention current-state and input variables only.
func (ma *Machine) SetNext(cur bdd.Var, f bdd.Ref) {
	ma.mustBeUnsealed()
	if !ma.isCur(cur) {
		panic(fmt.Sprintf("fsm: SetNext of non-state variable %s", ma.M.VarName(cur)))
	}
	ma.nextFn[cur] = f
}

// SetInit assigns the initial-state set (over current-state variables).
func (ma *Machine) SetInit(s bdd.Ref) {
	ma.mustBeUnsealed()
	ma.init = s
}

// AddInputConstraint conjoins an environment assumption over current
// state and input variables. Transitions violating it do not exist.
func (ma *Machine) AddInputConstraint(c bdd.Ref) {
	ma.mustBeUnsealed()
	ma.constraint = ma.M.And(ma.constraint, c)
}

// Init returns the initial-state set.
func (ma *Machine) Init() bdd.Ref { return ma.init }

// InputConstraint returns the accumulated environment assumption.
func (ma *Machine) InputConstraint() bdd.Ref { return ma.constraint }

// CurVars returns the current-state variables in declaration order.
func (ma *Machine) CurVars() []bdd.Var { return ma.cur }

// InputVars returns the input variables in declaration order.
func (ma *Machine) InputVars() []bdd.Var { return ma.inputs }

// NextVar returns the next-state variable paired with a current-state
// variable.
func (ma *Machine) NextVar(cur bdd.Var) bdd.Var {
	for i, c := range ma.cur {
		if c == cur {
			return ma.next[i]
		}
	}
	panic(fmt.Sprintf("fsm: NextVar of non-state variable %s", ma.M.VarName(cur)))
}

// NextFn returns the next-state function of a state bit.
func (ma *Machine) NextFn(cur bdd.Var) bdd.Ref {
	f, ok := ma.nextFn[cur]
	if !ok {
		panic(fmt.Sprintf("fsm: no next-state function for %s", ma.M.VarName(cur)))
	}
	return f
}

// StateBits returns the number of state bits.
func (ma *Machine) StateBits() int { return len(ma.cur) }

// InputBits returns the number of input bits.
func (ma *Machine) InputBits() int { return len(ma.inputs) }

func (ma *Machine) isCur(v bdd.Var) bool {
	for _, c := range ma.cur {
		if c == v {
			return true
		}
	}
	return false
}

func (ma *Machine) isInput(v bdd.Var) bool {
	for _, c := range ma.inputs {
		if c == v {
			return true
		}
	}
	return false
}

func (ma *Machine) mustBeUnsealed() {
	if ma.sealed {
		panic("fsm: machine is sealed")
	}
}

// Seal validates the machine and builds the operator caches. After Seal
// the machine is immutable. Seal reports, rather than panics on,
// validation failures so model builders get actionable errors.
func (ma *Machine) Seal() error {
	if ma.sealed {
		return nil
	}
	m := ma.M
	if len(ma.cur) == 0 {
		return fmt.Errorf("fsm: machine has no state bits")
	}
	for _, c := range ma.cur {
		f, ok := ma.nextFn[c]
		if !ok {
			return fmt.Errorf("fsm: state bit %s has no next-state function", m.VarName(c))
		}
		if err := ma.checkSupport("next-state function of "+m.VarName(c), f, true); err != nil {
			return err
		}
	}
	if err := ma.checkSupport("initial-state set", ma.init, false); err != nil {
		return err
	}
	if err := ma.checkSupport("input constraint", ma.constraint, true); err != nil {
		return err
	}

	// Composition substitution for PreImage / BackImage.
	ma.sub = m.NewSubstitution()
	for _, c := range ma.cur {
		ma.sub.Set(c, ma.nextFn[c])
	}

	ma.inputCube = m.MkCube(ma.inputs)
	ma.curCube = m.MkCube(ma.cur)
	ma.buildPartition()
	ma.buildPrePartition()

	ma.sealed = true
	return nil
}

// checkSupport verifies that f mentions only current-state variables and,
// if allowInputs, input variables.
func (ma *Machine) checkSupport(what string, f bdd.Ref, allowInputs bool) error {
	for _, v := range ma.M.Support(f) {
		if ma.isCur(v) {
			continue
		}
		if allowInputs && ma.isInput(v) {
			continue
		}
		return fmt.Errorf("fsm: %s depends on illegal variable %s", what, ma.M.VarName(v))
	}
	return nil
}

// MustSeal is Seal for model constructors that treat failure as a bug.
func (ma *Machine) MustSeal() {
	if err := ma.Seal(); err != nil {
		panic(err)
	}
}

// Protect registers every function the machine owns as a permanent GC
// root, so caller GCs between traversal iterations cannot reclaim them.
// Registration is idempotent per manager (bdd.ProtectPermanent): calling
// Protect before every GC-enabled run — as the verify harness does —
// does not inflate refcounts, and a re-call after sealing picks up the
// partition functions built by Seal.
func (ma *Machine) Protect() {
	m := ma.M
	m.ProtectPermanent(ma.init)
	m.ProtectPermanent(ma.constraint)
	for _, f := range ma.nextFn {
		m.ProtectPermanent(f)
	}
	if ma.sealed {
		m.ProtectPermanent(ma.inputCube)
		m.ProtectPermanent(ma.curCube)
		m.ProtectPermanent(ma.seedQuant)
		m.ProtectPermanent(ma.preSeedQuant)
		for _, p := range ma.transition {
			m.ProtectPermanent(p.rel)
			m.ProtectPermanent(p.quant)
		}
		for _, p := range ma.preTransition {
			m.ProtectPermanent(p.rel)
			m.ProtectPermanent(p.quant)
		}
	}
}

// buildPartition constructs the conjunctively partitioned transition
// relation with an early-quantification schedule: each conjunct
// next_i ≡ f_i carries the cube of current/input variables that no later
// conjunct (and no earlier unprocessed part) mentions, so they are
// quantified out as soon as the conjunct is ANDed in.
func (ma *Machine) buildPartition() {
	m := ma.M
	n := len(ma.cur)
	parts := make([]bdd.Ref, n)
	support := make([][]bdd.Var, n)
	for i, c := range ma.cur {
		parts[i] = m.Xnor(m.VarRef(ma.next[i]), ma.nextFn[c])
		support[i] = m.Support(parts[i])
	}

	// lastUse[v] = index of the last conjunct whose support contains v.
	lastUse := make(map[bdd.Var]int)
	for _, v := range ma.cur {
		lastUse[v] = -1 // quantified immediately after the seed (Z ∧ C)
	}
	for _, v := range ma.inputs {
		lastUse[v] = -1
	}
	for i, sup := range support {
		for _, v := range sup {
			if ma.isCur(v) || ma.isInput(v) {
				lastUse[v] = i
			}
		}
	}

	ma.transition = make([]transPart, n)
	for i := range parts {
		var cube []bdd.Var
		for v, last := range lastUse {
			if last == i {
				cube = append(cube, v)
			}
		}
		ma.transition[i] = transPart{rel: parts[i], quant: m.MkCube(cube)}
	}
	// Variables never mentioned by any conjunct (lastUse == -1) are
	// quantified out of the seed before the partition is applied.
	var seed []bdd.Var
	for v, last := range lastUse {
		if last == -1 {
			seed = append(seed, v)
		}
	}
	ma.seedQuant = m.MkCube(seed)
}
