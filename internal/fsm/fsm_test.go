package fsm

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// buildCounter builds a w-bit counter that increments when the input
// `step` is high and wraps around, starting at zero.
func buildCounter(t testing.TB, w int) (*Machine, []bdd.Var, bdd.Var) {
	t.Helper()
	m := bdd.New()
	ma := New(m)
	bits := ma.NewStateBits("c", w)
	step := ma.NewInputBit("step")

	carry := m.VarRef(step)
	initSet := bdd.One
	for _, b := range bits {
		v := m.VarRef(b)
		ma.SetNext(b, m.Xor(v, carry))
		carry = m.And(carry, v)
		initSet = m.And(initSet, v.Not())
	}
	ma.SetInit(initSet)
	if err := ma.Seal(); err != nil {
		t.Fatal(err)
	}
	return ma, bits, step
}

// stateSetOf builds the characteristic function of a set of counter values.
func stateSetOf(m *bdd.Manager, bits []bdd.Var, values ...uint) bdd.Ref {
	set := bdd.Zero
	for _, val := range values {
		cube := bdd.One
		for i, b := range bits {
			v := m.VarRef(b)
			if val&(1<<uint(i)) == 0 {
				v = v.Not()
			}
			cube = m.And(cube, v)
		}
		set = m.Or(set, cube)
	}
	return set
}

func TestCounterImages(t *testing.T) {
	ma, bits, _ := buildCounter(t, 3)
	m := ma.M

	// From {2}: staying (step=0) or stepping (step=1) reaches {2, 3}.
	from2 := stateSetOf(m, bits, 2)
	if got := ma.Image(from2); got != stateSetOf(m, bits, 2, 3) {
		t.Fatalf("Image({2}) wrong: %s", m.String(got))
	}
	// PreImage({3}): states with SOME successor 3: {2 (step), 3 (hold)}.
	if got := ma.PreImage(stateSetOf(m, bits, 3)); got != stateSetOf(m, bits, 2, 3) {
		t.Fatalf("PreImage({3}) wrong: %s", m.String(got))
	}
	// BackImage({3}): ALL successors in {3}: no state qualifies (hold
	// keeps 3 in 3 but step leaves; 2 can hold at 2).
	if got := ma.BackImage(stateSetOf(m, bits, 3)); got != bdd.Zero {
		t.Fatalf("BackImage({3}) wrong: %s", m.String(got))
	}
	// BackImage({2,3}): from 2, both hold and step stay inside; from 3,
	// step goes to 4 — so exactly {2}... and from 1, step->2 but hold->1.
	if got := ma.BackImage(stateSetOf(m, bits, 2, 3)); got != stateSetOf(m, bits, 2) {
		t.Fatalf("BackImage({2,3}) wrong: %s", m.String(got))
	}
	// Wraparound: Image({7}) = {7, 0}.
	if got := ma.Image(stateSetOf(m, bits, 7)); got != stateSetOf(m, bits, 7, 0) {
		t.Fatalf("Image({7}) wrong: %s", m.String(got))
	}
}

func TestBackImageEqualsNotPreNot(t *testing.T) {
	ma, bits, _ := buildCounter(t, 4)
	m := ma.M
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 40; iter++ {
		var vals []uint
		for v := uint(0); v < 16; v++ {
			if rng.Intn(2) == 0 {
				vals = append(vals, v)
			}
		}
		z := stateSetOf(m, bits, vals...)
		if ma.BackImage(z) != ma.PreImage(z.Not()).Not() {
			t.Fatal("BackImage != ¬PreImage¬")
		}
	}
}

// TestImagesAgainstMonolithicRelation cross-checks the partitioned /
// compositional operators against the textbook definition computed from
// the monolithic transition relation.
func TestImagesAgainstMonolithicRelation(t *testing.T) {
	ma, bits, _ := buildCounter(t, 3)
	m := ma.M
	tau := ma.TransitionRelation() // over cur, next
	curCube := ma.StateCube()
	nextVars := make([]bdd.Var, len(bits))
	for i, b := range bits {
		nextVars[i] = ma.NextVar(b)
	}
	nextCube := m.MkCube(nextVars)

	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 30; iter++ {
		var vals []uint
		for v := uint(0); v < 8; v++ {
			if rng.Intn(2) == 0 {
				vals = append(vals, v)
			}
		}
		z := stateSetOf(m, bits, vals...)
		zNext := m.Rename(z, bits, nextVars)

		// Image: ∃cur. Z(cur) ∧ τ(cur,next), renamed back.
		wantImg := m.Rename(m.AndExists(z, tau, curCube), nextVars, bits)
		if got := ma.Image(z); got != wantImg {
			t.Fatalf("Image mismatch on iter %d", iter)
		}
		// PreImage: ∃next. τ ∧ Z(next).
		wantPre := m.AndExists(tau, zNext, nextCube)
		if got := ma.PreImage(z); got != wantPre {
			t.Fatalf("PreImage mismatch on iter %d", iter)
		}
		// BackImage: ∀next. τ ⇒ Z(next).
		wantBack := m.ForAll(m.Imp(tau, zNext), nextCube)
		if got := ma.BackImage(z); got != wantBack {
			t.Fatalf("BackImage mismatch on iter %d", iter)
		}
	}
}

// TestTheorem1 checks BackImage(τ, Y ∧ Z) == BackImage(τ, Y) ∧
// BackImage(τ, Z) — the enabling fact of the whole method.
func TestTheorem1(t *testing.T) {
	ma, bits, _ := buildCounter(t, 4)
	m := ma.M
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 30; iter++ {
		var v1, v2 []uint
		for v := uint(0); v < 16; v++ {
			if rng.Intn(2) == 0 {
				v1 = append(v1, v)
			}
			if rng.Intn(2) == 0 {
				v2 = append(v2, v)
			}
		}
		y := stateSetOf(m, bits, v1...)
		z := stateSetOf(m, bits, v2...)
		lhs := ma.BackImage(m.And(y, z))
		rhs := m.And(ma.BackImage(y), ma.BackImage(z))
		if lhs != rhs {
			t.Fatalf("Theorem 1 violated on iter %d", iter)
		}
	}
	// And the list form.
	y := stateSetOf(m, bits, 1, 2, 3, 9)
	z := stateSetOf(m, bits, 2, 3, 4)
	outs := ma.BackImageList([]bdd.Ref{y, z})
	if len(outs) != 2 || outs[0] != ma.BackImage(y) || outs[1] != ma.BackImage(z) {
		t.Fatal("BackImageList inconsistent with BackImage")
	}
}

func TestInputConstraint(t *testing.T) {
	// Counter whose step input is forced high: it always increments.
	m := bdd.New()
	ma := New(m)
	bits := ma.NewStateBits("c", 3)
	step := ma.NewInputBit("step")
	carry := m.VarRef(step)
	for _, b := range bits {
		v := m.VarRef(b)
		ma.SetNext(b, m.Xor(v, carry))
		carry = m.And(carry, v)
	}
	ma.SetInit(stateSetOf(m, bits, 0))
	ma.AddInputConstraint(m.VarRef(step))
	if err := ma.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := ma.Image(stateSetOf(m, bits, 2)); got != stateSetOf(m, bits, 3) {
		t.Fatalf("constrained Image wrong: %s", m.String(got))
	}
	// With the constraint, every state's sole successor is value+1, so
	// BackImage({3}) = {2}.
	if got := ma.BackImage(stateSetOf(m, bits, 3)); got != stateSetOf(m, bits, 2) {
		t.Fatalf("constrained BackImage wrong: %s", m.String(got))
	}
}

func TestStepSimulation(t *testing.T) {
	ma, bits, step := buildCounter(t, 3)
	m := ma.M
	a := make([]bool, m.NumVars())
	// State 3 (bits 0,1 set), stepping.
	a[bits[0]], a[bits[1]], a[step] = true, true, true
	next, err := ma.Step(a)
	if err != nil {
		t.Fatal(err)
	}
	if next[bits[0]] || next[bits[1]] || !next[bits[2]] {
		t.Fatalf("3+1 != 4 in simulation: %v", next)
	}
	// Holding keeps the state.
	a[step] = false
	next, err = ma.Step(a)
	if err != nil {
		t.Fatal(err)
	}
	if !next[bits[0]] || !next[bits[1]] || next[bits[2]] {
		t.Fatal("hold changed the state")
	}
}

func TestStepRejectsConstraintViolation(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	b := ma.NewStateBit("s")
	in := ma.NewInputBit("i")
	ma.SetNext(b, m.VarRef(in))
	ma.SetInit(m.NVarRef(b))
	ma.AddInputConstraint(m.NVarRef(in))
	if err := ma.Seal(); err != nil {
		t.Fatal(err)
	}
	a := make([]bool, m.NumVars())
	a[in] = true
	if _, err := ma.Step(a); err == nil {
		t.Fatal("Step accepted a constraint-violating input")
	}
}

func TestPickTransitionInto(t *testing.T) {
	ma, bits, step := buildCounter(t, 3)
	m := ma.M
	from := make([]bool, m.NumVars())
	from[bits[1]] = true // state 2
	to, ok := ma.PickTransitionInto(from, stateSetOf(m, bits, 3))
	if !ok {
		t.Fatal("no transition 2 -> 3 found")
	}
	if !to[step] {
		t.Fatal("transition into 3 must step")
	}
	next, err := ma.Step(to)
	if err != nil {
		t.Fatal(err)
	}
	if !next[bits[0]] || !next[bits[1]] || next[bits[2]] {
		t.Fatalf("simulated successor is not 3: %v", next)
	}
	// Unreachable in one step: 2 -> 5.
	if _, ok := ma.PickTransitionInto(from, stateSetOf(m, bits, 5)); ok {
		t.Fatal("found impossible transition 2 -> 5")
	}
}

func TestSealValidation(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	if err := ma.Seal(); err == nil {
		t.Fatal("sealing an empty machine must fail")
	}

	ma2 := New(m)
	ma2.NewStateBit("s")
	if err := ma2.Seal(); err == nil {
		t.Fatal("missing next-state function not detected")
	}

	ma3 := New(m)
	s := ma3.NewStateBit("s")
	ma3.SetNext(s, m.VarRef(ma3.NextVar(s))) // illegal: depends on next var
	ma3.SetInit(m.NVarRef(s))
	if err := ma3.Seal(); err == nil {
		t.Fatal("next-state function over next-state variable not detected")
	}

	ma4 := New(m)
	s4 := ma4.NewStateBit("s")
	in4 := ma4.NewInputBit("i")
	ma4.SetNext(s4, m.VarRef(in4))
	ma4.SetInit(m.VarRef(in4)) // illegal: init over inputs
	if err := ma4.Seal(); err == nil {
		t.Fatal("init over input variable not detected")
	}
}

func TestSealedImmutable(t *testing.T) {
	ma, bits, _ := buildCounter(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a sealed machine did not panic")
		}
	}()
	ma.SetNext(bits[0], bdd.One)
}

func TestUnsealedUsePanics(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	s := ma.NewStateBit("s")
	ma.SetNext(s, m.VarRef(s))
	ma.SetInit(m.NVarRef(s))
	defer func() {
		if recover() == nil {
			t.Fatal("using an unsealed machine did not panic")
		}
	}()
	ma.Image(bdd.One)
}

func TestProtectSurvivesGC(t *testing.T) {
	ma, bits, _ := buildCounter(t, 4)
	m := ma.M
	ma.Protect()
	// Make garbage, then collect.
	r := stateSetOf(m, bits, 1, 5, 9)
	for i := 0; i < 5; i++ {
		r = ma.Image(r)
	}
	m.GC()
	// Machine still functions correctly after GC.
	if got := ma.Image(stateSetOf(m, bits, 2)); got != stateSetOf(m, bits, 2, 3) {
		t.Fatal("machine broken after GC")
	}
}

func TestVarAccessors(t *testing.T) {
	ma, bits, _ := buildCounter(t, 2)
	if ma.StateBits() != 2 || ma.InputBits() != 1 {
		t.Fatal("bit counts wrong")
	}
	if len(ma.CurVars()) != 2 || len(ma.InputVars()) != 1 {
		t.Fatal("var lists wrong")
	}
	if ma.NextVar(bits[0]) != bits[0]+1 {
		t.Fatal("next var not adjacent to cur var")
	}
	if ma.NextFn(bits[0]) == bdd.Zero {
		t.Fatal("NextFn lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NextVar of non-state var did not panic")
		}
	}()
	ma.NextVar(ma.InputVars()[0])
}
