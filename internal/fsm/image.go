package fsm

import (
	"fmt"

	"repro/internal/bdd"
)

// The three image operators of the paper's Definition 1, over the
// functional transition structure. All take and return sets over
// current-state variables.

// Image returns the set of states reachable in one transition from a
// state in z: Image(τ, Z) = {v | ∃u. u ∈ Z ∧ τ(u, v)}.
//
// The relational products go through the Par* entry points: on a
// shared-memory concurrent Manager each conjunction-and-quantification
// runs fork/join parallel, and by canonicity returns the exact Ref the
// sequential operation would, so iterates — and hence iteration counts
// and verdicts — are identical either way. On a sequential Manager the
// Par* forms are the sequential operations.
func (ma *Machine) Image(z bdd.Ref) bdd.Ref {
	ma.mustBeSealed()
	m := ma.M
	acc := m.ParAnd(z, ma.constraint)
	acc = m.Exists(acc, ma.seedQuant)
	for _, p := range ma.transition {
		acc = m.ParAndExists(acc, p.rel, p.quant)
		if acc == bdd.Zero {
			return bdd.Zero
		}
	}
	// acc is now over next-state variables; bring it back to the
	// current-state space.
	return m.Rename(acc, ma.next, ma.cur)
}

// PreImage returns the set of states with some successor in z:
// PreImage(τ, Z) = {u | ∃v. v ∈ Z ∧ τ(u, v)}. The implementation is
// selected by the machine's PreImageMode.
func (ma *Machine) PreImage(z bdd.Ref) bdd.Ref {
	ma.mustBeSealed()
	if ma.PreImageMode == PreRelational {
		return ma.preImageRel(z)
	}
	m := ma.M
	composed := ma.sub.Compose(z)
	return m.ParAndExists(ma.constraint, composed, ma.inputCube)
}

// BackImage returns the set of states all of whose successors lie in z:
// BackImage(τ, Z) = {u | ∀v. τ(u, v) ⇒ v ∈ Z} = ∀inp. C ⇒ Z[cur ← f].
//
// The identity BackImage(τ, Z) = ¬PreImage(τ, ¬Z) holds (Section II.A)
// and is what makes this as cheap as PreImage under complement edges.
func (ma *Machine) BackImage(z bdd.Ref) bdd.Ref {
	return ma.PreImage(z.Not()).Not()
}

// BackImageList applies BackImage to every element of a list of BDDs —
// Theorem 1: the BackImage of an implicit conjunction is the implicit
// conjunction of the per-element BackImages. The substitution memo is
// shared across the elements, so common subgraphs compose once.
func (ma *Machine) BackImageList(zs []bdd.Ref) []bdd.Ref {
	out := make([]bdd.Ref, len(zs))
	for i, z := range zs {
		out[i] = ma.BackImage(z)
	}
	return out
}

// Step simulates one concrete transition: given a total assignment to
// current-state and input variables (indexed by BDD level), it returns
// the successor assignment to current-state variables, patched into a
// copy of the input slice. It reports an error if the assignment violates
// the input constraint (no such transition exists).
func (ma *Machine) Step(assignment []bool) ([]bool, error) {
	ma.mustBeSealed()
	m := ma.M
	if !m.Eval(ma.constraint, assignment) {
		return nil, fmt.Errorf("fsm: assignment violates the input constraint")
	}
	out := append([]bool(nil), assignment...)
	for _, c := range ma.cur {
		out[c] = m.Eval(ma.nextFn[c], assignment)
	}
	return out, nil
}

// PickState extracts one concrete state (a full assignment over all
// manager variables, non-state bits defaulting to false) from a nonempty
// set, or nil if the set is empty.
func (ma *Machine) PickState(set bdd.Ref) []bool {
	return ma.M.SatAssignment(set)
}

// PickTransitionInto returns an input assignment that, applied in state
// `from` (a total assignment), leads to a successor inside target; found
// is false if no such input exists. The returned slice is a full
// assignment extending from with the chosen inputs.
func (ma *Machine) PickTransitionInto(from []bool, target bdd.Ref) ([]bool, bool) {
	ma.mustBeSealed()
	m := ma.M
	// Constrain the composed target and the input constraint by the
	// concrete current state, leaving a predicate over inputs.
	stateCube := make([]bdd.Lit, len(ma.cur))
	for i, c := range ma.cur {
		stateCube[i] = bdd.Lit{Var: c, Val: from[c]}
	}
	here := m.CubeRef(stateCube)
	ok := m.AndN(here, ma.constraint, ma.sub.Compose(target))
	if ok == bdd.Zero {
		return nil, false
	}
	choice := m.SatAssignment(ok)
	out := append([]bool(nil), from...)
	for _, v := range ma.inputs {
		out[v] = choice[v]
	}
	return out, true
}

// StateCube returns the cube of all current-state variables.
func (ma *Machine) StateCube() bdd.Ref {
	ma.mustBeSealed()
	return ma.curCube
}

// InputCube returns the cube of all input variables.
func (ma *Machine) InputCube() bdd.Ref {
	ma.mustBeSealed()
	return ma.inputCube
}

// TransitionRelation builds the monolithic relation τ(cur, next) =
// ∃inp. C ∧ ∧_i (next_i ≡ f_i). Exposed for tests and tiny examples; for
// real models this is the BDD the whole method avoids.
func (ma *Machine) TransitionRelation() bdd.Ref {
	ma.mustBeSealed()
	m := ma.M
	acc := ma.constraint
	for _, p := range ma.transition {
		acc = m.And(acc, p.rel)
	}
	return m.Exists(acc, ma.inputCube)
}

func (ma *Machine) mustBeSealed() {
	if !ma.sealed {
		panic("fsm: machine must be sealed before use (call Seal)")
	}
}
