package fsm

import (
	"sort"

	"repro/internal/bdd"
)

// Cone-of-influence analysis: which state bits can affect a property,
// transitively through the next-state functions. Useful for model
// debugging ("why is this bit in my property's cone?") and as the
// standard pre-reduction before traversal.

// ConeOfInfluence returns the state variables that can influence the
// given functions: the least set containing the state-variable support
// of each root and closed under "v is in the cone ⇒ the state-variable
// support of v's next-state function is in the cone". Input variables
// never appear in the result. The machine must be sealed.
func (ma *Machine) ConeOfInfluence(roots ...bdd.Ref) []bdd.Var {
	ma.mustBeSealed()
	m := ma.M

	isState := make(map[bdd.Var]bool, len(ma.cur))
	for _, c := range ma.cur {
		isState[c] = true
	}

	in := make(map[bdd.Var]bool)
	var queue []bdd.Var
	add := func(f bdd.Ref) {
		for _, v := range m.Support(f) {
			if isState[v] && !in[v] {
				in[v] = true
				queue = append(queue, v)
			}
		}
	}
	for _, r := range roots {
		add(r)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		add(ma.nextFn[v])
	}

	out := make([]bdd.Var, 0, len(in))
	for v := range in {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
