package fsm

import (
	"testing"

	"repro/internal/bdd"
)

// TestConeOfInfluenceShiftChain: in a shift chain s0 <- in, s1 <- s0,
// s2 <- s1, a property over s2 has cone {s0, s1, s2}; over s0 just {s0}.
func TestConeOfInfluenceShiftChain(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	s := ma.NewStateBits("s", 3)
	in := ma.NewInputBit("in")
	ma.SetNext(s[0], m.VarRef(in))
	ma.SetNext(s[1], m.VarRef(s[0]))
	ma.SetNext(s[2], m.VarRef(s[1]))
	ma.SetInit(m.AndN(m.NVarRef(s[0]), m.NVarRef(s[1]), m.NVarRef(s[2])))
	ma.MustSeal()

	want := func(got []bdd.Var, exp ...bdd.Var) {
		t.Helper()
		if len(got) != len(exp) {
			t.Fatalf("cone %v, want %v", got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("cone %v, want %v", got, exp)
			}
		}
	}
	want(ma.ConeOfInfluence(m.VarRef(s[2])), s[0], s[1], s[2])
	want(ma.ConeOfInfluence(m.VarRef(s[0])), s[0])
	want(ma.ConeOfInfluence(m.VarRef(s[1])), s[0], s[1])
	// Multiple roots: union.
	want(ma.ConeOfInfluence(m.VarRef(s[0]), m.VarRef(s[1])), s[0], s[1])
	// Constants have empty cones.
	want(ma.ConeOfInfluence(bdd.One))
}

// TestConeOfInfluenceIndependentBlocks: two disconnected sub-machines
// have disjoint cones.
func TestConeOfInfluenceIndependentBlocks(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	a := ma.NewStateBit("a")
	b := ma.NewStateBit("b")
	ia := ma.NewInputBit("ia")
	ib := ma.NewInputBit("ib")
	ma.SetNext(a, m.Xor(m.VarRef(a), m.VarRef(ia)))
	ma.SetNext(b, m.Xor(m.VarRef(b), m.VarRef(ib)))
	ma.SetInit(m.And(m.NVarRef(a), m.NVarRef(b)))
	ma.MustSeal()

	coneA := ma.ConeOfInfluence(m.VarRef(a))
	if len(coneA) != 1 || coneA[0] != a {
		t.Fatalf("cone of a: %v", coneA)
	}
	both := ma.ConeOfInfluence(m.And(m.VarRef(a), m.VarRef(b)))
	if len(both) != 2 {
		t.Fatalf("joint cone: %v", both)
	}
}

// TestConeOfInfluenceCycle: mutually-dependent bits pull each other in.
func TestConeOfInfluenceCycle(t *testing.T) {
	m := bdd.New()
	ma := New(m)
	a := ma.NewStateBit("a")
	b := ma.NewStateBit("b")
	ma.SetNext(a, m.VarRef(b))
	ma.SetNext(b, m.VarRef(a))
	ma.SetInit(m.And(m.NVarRef(a), m.NVarRef(b)))
	ma.MustSeal()
	cone := ma.ConeOfInfluence(m.VarRef(a))
	if len(cone) != 2 {
		t.Fatalf("cycle cone: %v", cone)
	}
}
