// Shared-manager crosschecks on the paper models: the zero-hand-off
// concurrent scoring path (Options.SharedManager on a bdd.NewShared
// manager) must produce the same verdicts, iteration counts, and effort
// statistics as the sequential engine. This file lives in package
// verify_test for the same reason parallel_test.go does.
package verify_test

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/verify"
)

// sharedProblems builds the paper models against shared-memory
// concurrent managers, fresh per call.
func sharedProblems(workers int) []verify.Problem {
	return []verify.Problem{
		models.NewFIFO(bdd.NewShared(workers, 16), models.DefaultFIFO(3)),
		models.NewNetwork(bdd.NewShared(workers, 16), models.NetworkConfig{Procs: 2}),
		models.NewFilter(bdd.NewShared(workers, 16), models.FilterConfig{Depth: 4, SampleWidth: 4}),
		models.NewPipeline(bdd.NewShared(workers, 16), models.PipelineConfig{Regs: 2, Width: 1, Assist: true}),
	}
}

// TestXICISharedMatchesSequential: the XICI engine scoring pairs
// concurrently against one shared manager must report the same verdict
// and traversal statistics as the sequential engine on a plain manager.
// Canonicity within each manager makes the iterates Ref-identical to a
// sequential run on the same manager, so Iterations, PeakStateNodes,
// the peak profile, and the effort counters all match exactly even
// though the two runs use different manager implementations.
func TestXICISharedMatchesSequential(t *testing.T) {
	seqProblems := paperProblems()
	shrProblems := sharedProblems(3)
	for i := range seqProblems {
		seq := verify.Run(seqProblems[i], verify.XICI, verify.Options{})
		shr := verify.Run(shrProblems[i], verify.XICI, verify.Options{Workers: 3, SharedManager: true})
		p := seqProblems[i]
		if shr.Outcome != seq.Outcome || shr.Why != seq.Why {
			t.Fatalf("%s: outcome %v (%s) != sequential %v (%s)",
				p.Name, shr.Outcome, shr.Why, seq.Outcome, seq.Why)
		}
		if shr.Iterations != seq.Iterations {
			t.Errorf("%s: iterations %d != %d", p.Name, shr.Iterations, seq.Iterations)
		}
		if shr.PeakStateNodes != seq.PeakStateNodes {
			t.Errorf("%s: peak nodes %d != %d", p.Name, shr.PeakStateNodes, seq.PeakStateNodes)
		}
		if shr.Eval != seq.Eval {
			t.Errorf("%s: eval stats %+v != sequential %+v", p.Name, shr.Eval, seq.Eval)
		}
		if shr.Term != seq.Term {
			t.Errorf("%s: term stats %+v != sequential %+v", p.Name, shr.Term, seq.Term)
		}
		if len(shr.SizeTrajectory) != len(seq.SizeTrajectory) {
			t.Errorf("%s: trajectory %v != %v", p.Name, shr.SizeTrajectory, seq.SizeTrajectory)
		} else {
			for k := range seq.SizeTrajectory {
				if shr.SizeTrajectory[k] != seq.SizeTrajectory[k] {
					t.Errorf("%s: trajectory %v != %v", p.Name, shr.SizeTrajectory, seq.SizeTrajectory)
					break
				}
			}
		}
	}
}

// TestXICISharedFlagHarmlessOnSequentialManager: SharedManager is
// documented as safe to set unconditionally — on a plain manager it has
// no effect beyond selecting the ordinary per-worker scorer.
func TestXICISharedFlagHarmlessOnSequentialManager(t *testing.T) {
	a := verify.Run(models.NewFIFO(bdd.New(), models.DefaultFIFO(3)),
		verify.XICI, verify.Options{Workers: 2})
	b := verify.Run(models.NewFIFO(bdd.New(), models.DefaultFIFO(3)),
		verify.XICI, verify.Options{Workers: 2, SharedManager: true})
	if a.Outcome != b.Outcome || a.Iterations != b.Iterations || a.PeakStateNodes != b.PeakStateNodes {
		t.Fatalf("SharedManager on sequential manager changed the run: %+v vs %+v", a, b)
	}
}

// TestEvaluateGreedySharedScorerRefIdentity rebuilds the filter-model
// first-iterate list (the TestEvaluateGreedyParallelOnPaperList recipe)
// on a shared manager, and checks that the shared scorer's output is
// pointwise Ref-equal to sequential evaluation on the SAME manager —
// the strongest identity the concurrent mode claims, since within one
// manager equal functions have equal Refs regardless of scheduling.
func TestEvaluateGreedySharedScorerRefIdentity(t *testing.T) {
	m := bdd.NewShared(4, 16)
	p := models.NewFilter(m, models.FilterConfig{Depth: 4, SampleWidth: 4})
	ma := p.Machine

	g0 := []bdd.Ref{p.Good}
	l := core.NewList(m, g0...)
	back := ma.BackImageList(l.Conjuncts)
	raw := core.NewList(m, append(g0, back...)...)
	raw = core.CrossSimplify(raw, bdd.UseRestrict)

	seq := core.EvaluateGreedy(raw, core.Options{})
	for _, workers := range []int{1, 2, 4} {
		shr := core.EvaluateGreedy(raw, core.Options{Workers: workers, SharedManager: true})
		if len(shr.Conjuncts) != len(seq.Conjuncts) {
			t.Fatalf("workers=%d: arity %d != %d", workers, len(shr.Conjuncts), len(seq.Conjuncts))
		}
		for i := range seq.Conjuncts {
			if shr.Conjuncts[i] != seq.Conjuncts[i] {
				t.Fatalf("workers=%d: conjunct %d differs: %v != %v",
					workers, i, shr.Conjuncts[i], seq.Conjuncts[i])
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent scoring: %v", err)
	}
}

// TestEvaluateGreedySharedBudgetFallback: a positive pair budget is
// incompatible with the shared scorer (AndBounded lowers the manager's
// node limit, which would bound other workers' operations too), so
// EvaluateGreedy must fall back to the per-worker path and still agree
// with the budgeted sequential run.
func TestEvaluateGreedySharedBudgetFallback(t *testing.T) {
	build := func() core.List {
		m := bdd.NewShared(2, 16)
		p := models.NewFilter(m, models.FilterConfig{Depth: 4, SampleWidth: 4})
		g0 := []bdd.Ref{p.Good}
		back := p.Machine.BackImageList(core.NewList(m, g0...).Conjuncts)
		raw := core.NewList(m, append(g0, back...)...)
		return core.CrossSimplify(raw, bdd.UseRestrict)
	}
	// Budgeted runs mutate manager state (node-limit fencing), so use
	// separate managers and compare sizes, not Refs.
	seq := core.EvaluateGreedy(build(), core.Options{PairBudgetFactor: 8})
	shr := core.EvaluateGreedy(build(), core.Options{Workers: 2, SharedManager: true, PairBudgetFactor: 8})
	if len(shr.Conjuncts) != len(seq.Conjuncts) {
		t.Fatalf("budget fallback: arity %d != %d", len(shr.Conjuncts), len(seq.Conjuncts))
	}
}

// TestPDRSharedMatchesSequential: the PDR engine on a shared-memory
// manager must report the same verdict and frame count as the
// sequential run on a plain manager. By canonicity the frames, learned
// clauses, and satisfying assignments are Ref-identical across the two
// manager implementations, so the level at which the frames converge
// matches exactly. The filter model is excluded: cube-wise blocking is
// intractable on its wide datapath (a known PDR weakness — see
// EXPERIMENTS.md), on either manager.
func TestPDRSharedMatchesSequential(t *testing.T) {
	seqProblems := []verify.Problem{
		models.NewFIFO(bdd.New(), models.DefaultFIFO(3)),
		models.NewNetwork(bdd.New(), models.NetworkConfig{Procs: 2}),
		models.NewPipeline(bdd.New(), models.PipelineConfig{Regs: 2, Width: 1, Assist: true}),
	}
	shrProblems := []verify.Problem{
		models.NewFIFO(bdd.NewShared(3, 16), models.DefaultFIFO(3)),
		models.NewNetwork(bdd.NewShared(3, 16), models.NetworkConfig{Procs: 2}),
		models.NewPipeline(bdd.NewShared(3, 16), models.PipelineConfig{Regs: 2, Width: 1, Assist: true}),
	}
	for i := range seqProblems {
		seq := verify.Run(seqProblems[i], verify.PDR, verify.Options{})
		shr := verify.Run(shrProblems[i], verify.PDR, verify.Options{Workers: 3, SharedManager: true})
		p := seqProblems[i]
		if shr.Outcome != seq.Outcome || shr.Why != seq.Why {
			t.Fatalf("%s: outcome %v (%s) != sequential %v (%s)",
				p.Name, shr.Outcome, shr.Why, seq.Outcome, seq.Why)
		}
		if shr.Iterations != seq.Iterations {
			t.Errorf("%s: frame levels %d != %d", p.Name, shr.Iterations, seq.Iterations)
		}
		if shr.ViolationDepth != seq.ViolationDepth {
			t.Errorf("%s: depth %d != %d", p.Name, shr.ViolationDepth, seq.ViolationDepth)
		}
	}
}
