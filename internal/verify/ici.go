package verify

import (
	"errors"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/resource"
)

func init() { RegisterFunc(ICI, runICI) }

// runICI reconstructs the original implicitly conjoined invariants method
// of Hu & Dill (CAV 1993), the baseline this paper improves on:
//
//   - the property must be supplied as an implicit conjunction (the user
//     partition); with a singleton list the method degenerates to plain
//     backward traversal, as Section II.C notes;
//   - the list keeps a FIXED length and order: each iteration conjoins
//     the BackImage of conjunct j into position j together with G_0[j];
//   - conjuncts are cross-simplified in place;
//   - termination is the fast, inexact positional test.
func runICI(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	init := ma.Init()

	g0 := append([]bdd.Ref(nil), p.goodList()...)
	for _, cj := range g0 {
		c.Protect(cj)
	}
	g := append([]bdd.Ref(nil), g0...)

	layers := []core.List{{M: m, Conjuncts: append([]bdd.Ref(nil), g...)}}
	c.Observe(listStats(m, g))

	for i := 0; ; i++ {
		if vi := violatingConjunct(m, init, g); vi >= 0 {
			peak, profile := c.Peak()
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
				PeakProfile:    profile,
			}
			if opt.WantTrace {
				res.Trace = traceFromLayers(ma, layers, init)
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			if errors.Is(res.Err, resource.ErrIterLimit) {
				res.Why += " (fast termination test may have missed convergence)"
			}
			return res
		}

		// Positional step: G_{i+1}[j] = G_0[j] ∧ BackImage(τ, G_i[j]).
		// The conjunction over j equals G_0 ∧ BackImage(G_i) by
		// Theorem 1, whatever the pairing.
		stop := c.Phase(PhaseImage)
		back := ma.BackImageList(g)
		gn := make([]bdd.Ref, len(g))
		for j := range g {
			gn[j] = m.And(g0[j], back[j])
		}
		stop()
		stop = c.Phase(PhasePolicy)
		core.CrossSimplifyPositional(m, gn, opt.Core.Simplifier)
		stop()
		for _, cj := range gn {
			c.Protect(cj)
		}

		c.Observe(listStats(m, gn))

		// Fast (inexact) termination test: positional Ref equality.
		same := true
		for j := range g {
			if gn[j] != g[j] {
				same = false
				break
			}
		}
		c.EmitTermResolved(same)
		if same {
			peak, profile := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak, PeakProfile: profile}
		}
		g = gn
		layers = append(layers, core.List{M: m, Conjuncts: append([]bdd.Ref(nil), g...)})
		c.MaybeGC(i)
	}
}

// violatingConjunct returns the index of a conjunct not containing init,
// or -1.
func violatingConjunct(m *bdd.Manager, init bdd.Ref, g []bdd.Ref) int {
	for i, c := range g {
		if !m.Implies(init, c) {
			return i
		}
	}
	return -1
}

// listStats returns the shared size and per-conjunct profile of a list.
func listStats(m *bdd.Manager, g []bdd.Ref) (int, []int) {
	if len(g) == 0 {
		return 1, nil
	}
	profile := make([]int, len(g))
	for i, c := range g {
		profile[i] = m.Size(c)
	}
	return m.SharedSize(g...), profile
}
