package verify

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fsm"
)

// The typed FIFO's per-slot property is inductive (each slot constraint's
// backimage is the previous slot's constraint, implied by the list), so
// Induction verifies it in one image computation.
func TestInductionVerifiesFIFO(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	res := Run(p, Induction, Options{})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if res.Iterations != 1 {
		t.Fatalf("induction took %d iterations", res.Iterations)
	}
}

func TestInductionCatchesBadInit(t *testing.T) {
	m := bdd.New()
	ma := fsm.New(m)
	s := ma.NewStateBit("s")
	ma.SetNext(s, m.VarRef(s))
	ma.SetInit(m.VarRef(s)) // starts at s=1
	ma.MustSeal()
	p := Problem{Machine: ma, Good: m.NVarRef(s), Name: "badinit"}
	res := Run(p, Induction, Options{WantTrace: true})
	if res.Outcome != Violated || res.ViolationDepth != 0 {
		t.Fatalf("outcome %v depth %d", res.Outcome, res.ViolationDepth)
	}
	if res.Trace == nil || len(res.Trace.States) != 1 {
		t.Fatal("depth-0 trace missing or malformed")
	}
	if err := res.Trace.Validate(ma, []bdd.Ref{p.Good}); err != nil {
		t.Fatal(err)
	}
}

// TestInductionInconclusive: a true-but-not-inductive property. A 2-bit
// counter that wraps at 2 (states 0,1) with property "counter != 3":
// true on reachable states but not inductive, because state 2 (unreachable,
// satisfies the property) steps to 3.
func TestInductionInconclusive(t *testing.T) {
	m := bdd.New()
	ma := fsm.New(m)
	b0 := ma.NewStateBit("b0")
	b1 := ma.NewStateBit("b1")
	// next = (cur == 1) ? 0 : cur+1   -- cycles 0,1,0,1; from 2 goes to 3.
	v0, v1 := m.VarRef(b0), m.VarRef(b1)
	isOne := m.And(v0, v1.Not())
	inc0 := v0.Not()
	inc1 := m.Xor(v1, v0)
	ma.SetNext(b0, m.ITE(isOne, bdd.Zero, inc0))
	ma.SetNext(b1, m.ITE(isOne, bdd.Zero, inc1))
	ma.SetInit(m.And(v0.Not(), v1.Not()))
	ma.MustSeal()

	notThree := m.Nand(v0, v1)
	p := Problem{Machine: ma, Good: notThree, Name: "counter-wrap"}

	res := Run(p, Induction, Options{})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want Exhausted (not inductive)", res.Outcome)
	}
	// The traversal engines decide it.
	for _, method := range []Method{Forward, Backward, XICI} {
		if r := Run(p, method, Options{}); r.Outcome != Verified {
			t.Fatalf("%s: outcome %v", method, r.Outcome)
		}
	}
}

// TestInductionAgreesWithEnginesOnInductiveProperties: whenever Induction
// says Verified, every engine must agree (soundness).
func TestInductionSoundOnModels(t *testing.T) {
	for _, bug := range []bool{false, true} {
		p, _ := tinyFIFO(t, 3, 3, 5, bug)
		res := Run(p, Induction, Options{})
		full := Run(p, XICI, Options{})
		if res.Outcome == Verified && full.Outcome != Verified {
			t.Fatal("induction claimed an unverifiable property")
		}
		if res.Outcome == Violated && full.Outcome != Violated {
			t.Fatal("induction claimed a false violation")
		}
	}
}
