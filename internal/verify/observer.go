package verify

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Observability surface shared by every engine: per-phase wall-clock
// timers, the effort counters of the Section III machinery (TermStats /
// EvalStats), the per-iteration size trajectory, and an optional event
// sink (Observer). Engines report through the Ctx helpers; the harness
// copies the accumulated numbers onto the Result, so Exhausted runs keep
// the partial effort spent before the abort.

// Phase identifies one timed section of an engine's main loop.
type Phase int

const (
	// PhaseImage is image / pre-image / back-image computation.
	PhaseImage Phase = iota
	// PhasePolicy is the Section III.A evaluation & simplification.
	PhasePolicy
	// PhaseTerm is the convergence / termination test.
	PhaseTerm
	// PhaseGC is BDD garbage collection (timed centrally in MaybeGC).
	PhaseGC
	// NumPhases sizes PhaseDurations.
	NumPhases
)

func (ph Phase) String() string {
	switch ph {
	case PhaseImage:
		return "image"
	case PhasePolicy:
		return "policy"
	case PhaseTerm:
		return "termination"
	case PhaseGC:
		return "gc"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// PhaseDurations accumulates wall-clock time per phase, indexed by
// Phase. Time spent outside any phase (violation checks, bookkeeping)
// is not attributed, so the sum is a lower bound on Result.Elapsed.
type PhaseDurations [NumPhases]time.Duration

// Total returns the attributed time across all phases.
func (pd PhaseDurations) Total() time.Duration {
	var t time.Duration
	for _, d := range pd {
		t += d
	}
	return t
}

// String renders the breakdown as "image 1.2s, policy 0.8s, ...".
func (pd PhaseDurations) String() string {
	s := ""
	for ph, d := range pd {
		if ph > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.3fs", Phase(ph), d.Seconds())
	}
	return s
}

// IterationEvent reports one iterate of the traversal sequence.
type IterationEvent struct {
	// Index is the iterate's position in the sequence: 0 is the initial
	// iterate (R_0 / G_0), k the result of the k-th image computation.
	Index int `json:"index"`

	// SharedNodes is the iterate's shared BDD node count.
	SharedNodes int `json:"shared_nodes"`

	// Profile is the per-conjunct size breakdown for the implicit
	// engines (nil for monolithic iterates).
	Profile []int `json:"profile,omitempty"`
}

// MergeEvent reports one merge applied by the Figure 1 greedy loop.
type MergeEvent struct {
	// Iteration is the engine iteration whose policy run applied the
	// merge (0 covers the initial policy application, before any image).
	Iteration int `json:"iteration"`

	// I, J are the conjunct indices of the replaced pair (J dropped
	// into I), relative to the list the policy was evaluating.
	I int `json:"i"`
	J int `json:"j"`
}

// TermEvent reports one resolution of the convergence test.
type TermEvent struct {
	// Iteration is the engine iteration whose convergence was tested.
	Iteration int `json:"iteration"`

	// Converged is the test's verdict.
	Converged bool `json:"converged"`

	// Stats is a snapshot of the run's cumulative exact-test counters
	// after this resolution (zero for engines using Ref-equality tests).
	Stats core.TermStats `json:"stats"`
}

// Observer receives progress events from a running engine. All seven
// registered engines report through it; a nil Options.Observer costs
// nothing. Callbacks run synchronously on the engine's goroutine — keep
// them cheap, and do not call back into the run's Manager.
type Observer interface {
	// OnIteration fires once per iterate, including the initial one.
	OnIteration(e IterationEvent)

	// OnMerge fires for every merge the evaluation policy applies.
	OnMerge(e MergeEvent)

	// OnTermResolved fires each time the engine's convergence test
	// returns, with the cumulative termination counters.
	OnTermResolved(e TermEvent)
}
