package verify

import (
	"strings"
	"testing"
)

// validTrace produces a genuine counterexample to mutate in the negative
// tests below.
func validTrace(t *testing.T) (*Trace, Problem) {
	t.Helper()
	p, _ := tinyFIFO(t, 3, 3, 5, true)
	res := Run(p, Forward, Options{WantTrace: true})
	if res.Outcome != Violated || res.Trace == nil {
		t.Fatal("setup failed")
	}
	return res.Trace, p
}

func TestTraceValidateRejectsMalformed(t *testing.T) {
	tr, p := validTrace(t)
	ma := p.Machine

	// Baseline is valid.
	if err := tr.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	// Empty trace.
	if err := (&Trace{}).Validate(ma, p.goodList()); err == nil {
		t.Fatal("empty trace accepted")
	}

	// Mismatched input count.
	bad := &Trace{States: tr.States, Inputs: tr.Inputs[:len(tr.Inputs)-1]}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("short input list accepted")
	}

	// Non-initial start.
	states := make([][]bool, len(tr.States))
	for i := range states {
		states[i] = append([]bool(nil), tr.States[i]...)
	}
	states[0][ma.CurVars()[0]] = !states[0][ma.CurVars()[0]]
	bad = &Trace{States: states, Inputs: tr.Inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil ||
		!strings.Contains(err.Error(), "initial") {
		t.Fatalf("non-initial start accepted: %v", err)
	}

	// Input vector disagreeing with its state.
	inputs := make([][]bool, len(tr.Inputs))
	for i := range inputs {
		inputs[i] = append([]bool(nil), tr.Inputs[i]...)
	}
	inputs[0][ma.CurVars()[0]] = !inputs[0][ma.CurVars()[0]]
	bad = &Trace{States: tr.States, Inputs: inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("input/state disagreement accepted")
	}

	// Final state satisfying the property.
	states2 := make([][]bool, len(tr.States))
	copy(states2, tr.States)
	good := make([]bool, len(tr.States[0])) // all-zero state is typed
	states2[len(states2)-1] = good
	bad = &Trace{States: states2, Inputs: tr.Inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("non-violating final state accepted")
	}
}

func TestTraceFormat(t *testing.T) {
	tr, p := validTrace(t)
	out := tr.Format(p.Machine.M, p.Machine.CurVars())
	if !strings.Contains(out, "step 0:") {
		t.Fatalf("missing step labels:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(tr.States) {
		t.Fatalf("%d lines for %d states", lines, len(tr.States))
	}
	if tr.Len() != len(tr.States)-1 {
		t.Fatal("Len inconsistent")
	}
}

func TestStateCubePinsExactlyTheState(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 2, 2, false)
	ma := p.Machine
	m := ma.M
	s := m.SatAssignment(ma.Init())
	cube := stateCube(ma, s)
	if !m.Eval(cube, s) {
		t.Fatal("cube excludes its own state")
	}
	// Exactly one state-variable assignment satisfies the cube.
	if got := m.SatCountVars(m.Exists(cube, ma.InputCube()), m.NumVars()); got.Sign() == 0 {
		t.Fatal("cube unsatisfiable")
	}
	flip := append([]bool(nil), s...)
	flip[ma.CurVars()[1]] = !flip[ma.CurVars()[1]]
	if m.Eval(cube, flip) {
		t.Fatal("cube admits a different state")
	}
}

func TestResultStringShapes(t *testing.T) {
	r := Result{Method: XICI, Outcome: Verified, Iterations: 2, MemBytes: 4096, PeakStateNodes: 10}
	if s := r.String(); !strings.Contains(s, "verified") || !strings.Contains(s, "iter=2") {
		t.Fatalf("verified row: %q", s)
	}
	r = Result{Method: Forward, Outcome: Violated, ViolationDepth: 3}
	if s := r.String(); !strings.Contains(s, "depth 3") {
		t.Fatalf("violated row: %q", s)
	}
	r = Result{Method: Backward, Outcome: Exhausted, Why: "node limit"}
	if s := r.String(); !strings.Contains(s, "node limit") {
		t.Fatalf("exhausted row: %q", s)
	}
	if Verified.String() != "verified" || Violated.String() != "violated" || Exhausted.String() != "exhausted" {
		t.Fatal("Outcome strings")
	}
}
