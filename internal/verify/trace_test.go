package verify

import (
	"strings"
	"testing"
)

// validTrace produces a genuine counterexample to mutate in the negative
// tests below.
func validTrace(t *testing.T) (*Trace, Problem) {
	t.Helper()
	p, _ := tinyFIFO(t, 3, 3, 5, true)
	res := Run(p, Forward, Options{WantTrace: true})
	if res.Outcome != Violated || res.Trace == nil {
		t.Fatal("setup failed")
	}
	return res.Trace, p
}

func TestTraceValidateRejectsMalformed(t *testing.T) {
	tr, p := validTrace(t)
	ma := p.Machine

	// Baseline is valid.
	if err := tr.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	// Empty trace.
	if err := (&Trace{}).Validate(ma, p.goodList()); err == nil {
		t.Fatal("empty trace accepted")
	}

	// Mismatched input count.
	bad := &Trace{States: tr.States, Inputs: tr.Inputs[:len(tr.Inputs)-1]}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("short input list accepted")
	}

	// Non-initial start.
	states := make([][]bool, len(tr.States))
	for i := range states {
		states[i] = append([]bool(nil), tr.States[i]...)
	}
	states[0][ma.CurVars()[0]] = !states[0][ma.CurVars()[0]]
	bad = &Trace{States: states, Inputs: tr.Inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil ||
		!strings.Contains(err.Error(), "initial") {
		t.Fatalf("non-initial start accepted: %v", err)
	}

	// Input vector disagreeing with its state.
	inputs := make([][]bool, len(tr.Inputs))
	for i := range inputs {
		inputs[i] = append([]bool(nil), tr.Inputs[i]...)
	}
	inputs[0][ma.CurVars()[0]] = !inputs[0][ma.CurVars()[0]]
	bad = &Trace{States: tr.States, Inputs: inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("input/state disagreement accepted")
	}

	// Final state satisfying the property.
	states2 := make([][]bool, len(tr.States))
	copy(states2, tr.States)
	good := make([]bool, len(tr.States[0])) // all-zero state is typed
	states2[len(states2)-1] = good
	bad = &Trace{States: states2, Inputs: tr.Inputs}
	if err := bad.Validate(ma, p.goodList()); err == nil {
		t.Fatal("non-violating final state accepted")
	}
}

func TestTraceFormat(t *testing.T) {
	tr, p := validTrace(t)
	out, err := tr.Format(p.Machine.M, p.Machine.CurVars())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if !strings.Contains(out, "step 0:") {
		t.Fatalf("missing step labels:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(tr.States) {
		t.Fatalf("%d lines for %d states", lines, len(tr.States))
	}
	if tr.Len() != len(tr.States)-1 {
		t.Fatal("Len inconsistent")
	}
}

// TestTraceTruncatedAssignment: a trace whose assignment vectors are
// shorter than the manager's variable count (vars added after capture)
// must yield a descriptive error from Validate and Format, not an
// out-of-range panic.
func TestTraceTruncatedAssignment(t *testing.T) {
	tr, p := validTrace(t)
	ma := p.Machine
	m := ma.M

	truncate := func(rows [][]bool, n int) [][]bool {
		out := make([][]bool, len(rows))
		for i, r := range rows {
			out[i] = append([]bool(nil), r[:n]...)
		}
		return out
	}

	// Simulate vars declared after the trace was captured by cutting the
	// vectors below the current variable count.
	short := m.NumVars() - 1
	cases := map[string]*Trace{
		"short states":  {States: truncate(tr.States, short), Inputs: tr.Inputs},
		"short inputs":  {States: tr.States, Inputs: truncate(tr.Inputs, short)},
		"empty vectors": {States: truncate(tr.States, 0), Inputs: truncate(tr.Inputs, 0)},
	}
	for name, bad := range cases {
		err := bad.Validate(ma, p.goodList())
		if err == nil {
			t.Fatalf("%s: truncated trace accepted", name)
		}
		if !strings.Contains(err.Error(), "variables") {
			t.Fatalf("%s: undiagnostic error: %v", name, err)
		}
	}
	if _, err := (&Trace{States: truncate(tr.States, short)}).Format(m, ma.CurVars()); err == nil {
		t.Fatal("Format accepted a truncated state vector")
	}
	// A full-length trace still validates and formats after the check.
	if err := tr.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("full trace rejected: %v", err)
	}
}

func TestStateCubePinsExactlyTheState(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 2, 2, false)
	ma := p.Machine
	m := ma.M
	s := m.SatAssignment(ma.Init())
	cube := stateCube(ma, s)
	if !m.Eval(cube, s) {
		t.Fatal("cube excludes its own state")
	}
	// Exactly one state-variable assignment satisfies the cube.
	if got := m.SatCountVars(m.Exists(cube, ma.InputCube()), m.NumVars()); got.Sign() == 0 {
		t.Fatal("cube unsatisfiable")
	}
	flip := append([]bool(nil), s...)
	flip[ma.CurVars()[1]] = !flip[ma.CurVars()[1]]
	if m.Eval(cube, flip) {
		t.Fatal("cube admits a different state")
	}
}

func TestResultStringShapes(t *testing.T) {
	r := Result{Method: XICI, Outcome: Verified, Iterations: 2, MemBytes: 4096, PeakStateNodes: 10}
	if s := r.String(); !strings.Contains(s, "verified") || !strings.Contains(s, "iter=2") {
		t.Fatalf("verified row: %q", s)
	}
	r = Result{Method: Forward, Outcome: Violated, ViolationDepth: 3}
	if s := r.String(); !strings.Contains(s, "depth 3") {
		t.Fatalf("violated row: %q", s)
	}
	r = Result{Method: Backward, Outcome: Exhausted, Why: "node limit"}
	if s := r.String(); !strings.Contains(s, "node limit") {
		t.Fatalf("exhausted row: %q", s)
	}
	if Verified.String() != "verified" || Violated.String() != "violated" || Exhausted.String() != "exhausted" {
		t.Fatal("Outcome strings")
	}
}
