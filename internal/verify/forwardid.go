package verify

import (
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
)

func init() { RegisterFunc(ForwardID, runForwardID) }

// ForwardID is the dual of the paper's method, from the Section II.A
// remark: "Dually, we can compute the Image and PreImage of implicit
// disjunctions without building the BDD for the entire disjunction."
// Forward reachability keeps R_i as an implicitly disjoined list of
// BDDs; Image distributes over the disjuncts, the violation check
// decomposes per disjunct × per property conjunct, and the Section III
// machinery applies verbatim to the negated list (∨d = ¬∧¬d): the
// evaluation policy merges disjuncts whose disjunction is cheap, and the
// exact termination test compares disjunction lists.
const ForwardID Method = "FwdID"

// runForwardID is the implicitly-disjoined forward traversal.
func runForwardID(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	goods := p.goodList()
	for _, g := range goods {
		c.Protect(g)
	}
	term := c.Termination()
	copt := c.CoreOptions()

	r := []bdd.Ref{c.Protect(ma.Init())}
	rings := [][]bdd.Ref{r}
	c.Observe(listStats(m, r))

	for i := 0; ; i++ {
		if d, g := disjViolation(m, r, goods); d >= 0 {
			peak, profile := c.Peak()
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
				PeakProfile:    profile,
			}
			if opt.WantTrace {
				res.Trace = traceFromDisjRings(ma, rings, goods[g])
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			return res
		}

		// R_{i+1} = R_i ∨ Image(R_i), with Image distributed over the
		// disjuncts, then the dual Section III.A policy.
		stop := c.Phase(PhaseImage)
		next := append([]bdd.Ref(nil), r...)
		for _, d := range r {
			next = append(next, ma.Image(d))
		}
		stop()
		stop = c.Phase(PhasePolicy)
		rn := dualSimplifyAndEvaluate(m, next, copt)
		stop()
		for _, d := range rn {
			c.Protect(d)
		}
		c.Observe(listStats(m, rn))

		stop = c.Phase(PhaseTerm)
		conv := disjConverged(term, opt.Termination, r, rn)
		stop()
		c.EmitTermResolved(conv)
		if conv {
			peak, profile := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak, PeakProfile: profile}
		}
		r = rn
		rings = append(rings, r)
		c.MaybeGC(i)
	}
}

// disjViolation returns (disjunct index, good index) of a witness that
// some reached state escapes the property, or (-1, -1).
func disjViolation(m *bdd.Manager, disjuncts, goods []bdd.Ref) (int, int) {
	for di, d := range disjuncts {
		for gi, g := range goods {
			if !m.Implies(d, g) {
				return di, gi
			}
		}
	}
	return -1, -1
}

// dualSimplifyAndEvaluate applies the conjunction-list policy to the
// negated disjuncts: ∨d_i = ¬(∧¬d_i), and the policy preserves the
// conjunction it is given, hence the disjunction too.
func dualSimplifyAndEvaluate(m *bdd.Manager, disjuncts []bdd.Ref, opt core.Options) []bdd.Ref {
	neg := make([]bdd.Ref, len(disjuncts))
	for i, d := range disjuncts {
		neg[i] = d.Not()
	}
	out := core.SimplifyAndEvaluate(core.NewList(m, neg...), opt)
	if out.IsFalse() {
		// ∧¬d = false means the disjunction covers everything.
		return []bdd.Ref{bdd.One}
	}
	res := make([]bdd.Ref, len(out.Conjuncts))
	for i, c := range out.Conjuncts {
		res[i] = c.Not()
	}
	if len(res) == 0 {
		// Empty conjunction of negations: the disjunction is empty.
		return []bdd.Ref{bdd.Zero}
	}
	return res
}

// disjConverged tests R_{i+1} ⊆ R_i (the sequence grows monotonically,
// so one inclusion certifies the fixpoint): ∨X ⊆ ∨Y iff ∧¬Y ⇒ ∧¬X.
func disjConverged(term core.Termination, mode TerminationMode, r, rn []bdd.Ref) bool {
	if mode == TermFast {
		if len(r) != len(rn) {
			return false
		}
		for i := range r {
			if r[i] != rn[i] {
				return false
			}
		}
		return true
	}
	m := term.M
	negR := make([]bdd.Ref, len(r))
	for i, d := range r {
		negR[i] = d.Not()
	}
	negRn := make([]bdd.Ref, len(rn))
	for i, d := range rn {
		negRn[i] = d.Not()
	}
	return term.ListImplies(core.List{M: m, Conjuncts: negR}, core.List{M: m, Conjuncts: negRn})
}

// traceFromDisjRings reconstructs a counterexample from the disjunction
// onion rings: rings[i] is the list of disjuncts of R_i, and badGood is
// a property conjunct violated at the last ring.
func traceFromDisjRings(ma *fsm.Machine, rings [][]bdd.Ref, badGood bdd.Ref) *Trace {
	m := ma.M
	k := len(rings) - 1

	pickIn := func(ring []bdd.Ref, constraint bdd.Ref) []bool {
		for _, d := range ring {
			if set := m.And(d, constraint); set != bdd.Zero {
				return m.SatAssignment(set)
			}
		}
		return nil
	}

	states := make([][]bool, k+1)
	states[k] = pickIn(rings[k], badGood.Not())
	if states[k] == nil {
		panic("verify: traceFromDisjRings called without a violation")
	}
	target := stateCube(ma, states[k])
	for i := k - 1; i >= 0; i-- {
		states[i] = pickIn(rings[i], ma.PreImage(target))
		if states[i] == nil {
			panic("verify: disjunction onion-ring invariant broken")
		}
		target = stateCube(ma, states[i])
	}

	inputs := make([][]bool, k)
	for i := 0; i < k; i++ {
		in, ok := ma.PickTransitionInto(states[i], stateCube(ma, states[i+1]))
		if !ok {
			panic("verify: no input realizes a recorded transition")
		}
		inputs[i] = in
	}
	return &Trace{States: states, Inputs: inputs}
}
