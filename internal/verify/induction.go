package verify

import (
	"repro/internal/bdd"
	"repro/internal/core"
)

// Induction is the 1-step induction engine: a property P is verified if
// it holds initially and is closed under the transition relation
// (P ⊆ BackImage(τ, P)). Induction is sound but incomplete — a true
// property need not be inductive — so the engine has three outcomes:
//
//	Verified:  P is inductive (no traversal needed at all);
//	Violated:  an initial state breaks P (depth-0 counterexample);
//	Exhausted: P holds initially but is not inductive; a traversal
//	           engine is needed to decide it. Why explains this.
//
// With a partitioned property the inductive-step check decomposes per
// conjunct via Theorem 1 — the cheapest possible use of implicitly
// conjoined invariants: assisting invariants that make P inductive let
// this engine verify in a single image computation, the limiting case
// of the paper's iteration counts of 1.
const Induction Method = "Induction"

func init() { RegisterFunc(Induction, runInduction) }

func runInduction(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	goods := p.goodList()
	for _, g := range goods {
		c.Protect(g)
	}
	init := ma.Init()

	// Base case.
	if vi := violatingConjunct(m, init, goods); vi >= 0 {
		res := Result{Outcome: Violated, Iterations: 0, ViolationDepth: 0}
		if opt.WantTrace {
			layer := core.List{M: m, Conjuncts: goods}
			res.Trace = traceFromLayers(ma, []core.List{layer}, init)
		}
		return res
	}

	// Inductive step, per conjunct: P ∧ ¬BackImage(P_j) must be empty
	// for every conjunct P_j (P as an implicit conjunction never gets
	// built). The cross-simplified conjuncts keep the BackImages small.
	stop := c.Phase(PhasePolicy)
	simplified := core.CrossSimplify(core.List{M: m, Conjuncts: append([]bdd.Ref(nil), goods...)},
		opt.Core.Simplifier)
	stop()
	c.Observe(listStats(m, simplified.Conjuncts))
	peak, profile := c.Peak()

	term := c.Termination()
	for _, pj := range simplified.Conjuncts {
		stop = c.Phase(PhaseImage)
		back := ma.BackImage(pj)
		stop()
		// Check P ⇒ back without conjoining P: find a conjunct-wise
		// witness via the implicit test.
		stop = c.Phase(PhaseTerm)
		holds := term.ListImplies(simplified, core.NewList(m, back))
		stop()
		c.EmitTermResolved(holds)
		if !holds {
			return Result{
				Outcome:        Exhausted,
				Iterations:     1,
				PeakStateNodes: peak,
				PeakProfile:    profile,
				Why:            "property is not inductive; use a traversal engine (Fwd/Bkwd/XICI)",
			}
		}
	}
	return Result{Outcome: Verified, Iterations: 1, PeakStateNodes: peak, PeakProfile: profile}
}
