package verify

import (
	"repro/internal/bdd"
	"repro/internal/core"
)

func init() { RegisterFunc(XICI, runXICI) }

// runXICI is the paper's method: backward traversal over implicitly
// conjoined lists with
//
//   - the Section III.A evaluation & simplification policy applied to
//     every iterate (cross-simplification + the Figure 1 greedy
//     conjunction evaluation), which lets the engine start from a
//     monolithic property and derive the partition — the "assisting
//     invariants" — automatically; and
//   - the Section III.B exact termination test (or, optionally, the
//     single-implication variant exploiting monotonicity, or the old
//     fast test, for ablation).
//
// Each iteration computes G_{i+1} = G_0 ∧ BackImage(τ, G_i), where the
// BackImage of the list is the list of BackImages (Theorem 1) and G_0's
// conjuncts are appended rather than conjoined positionally — the policy
// decides what is worth evaluating.
func runXICI(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	init := ma.Init()

	term := c.Termination()
	copt := c.CoreOptions()

	g0 := append([]bdd.Ref(nil), p.goodList()...)
	for _, cj := range g0 {
		c.Protect(cj)
	}

	stop := c.Phase(PhasePolicy)
	g := core.SimplifyAndEvaluate(core.NewList(m, g0...), copt)
	stop()
	protectList(c, g)
	layers := []core.List{g}
	c.Observe(g.SharedSize(), g.Sizes())

	for i := 0; ; i++ {
		if vi := g.ViolatingConjunct(init); vi >= 0 {
			peak, profile := c.Peak()
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
				PeakProfile:    profile,
			}
			if opt.WantTrace {
				res.Trace = traceFromLayers(ma, layers, init)
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			return res
		}

		// G_{i+1} = G_0 ∧ BackImage(G_i), kept implicit: append the
		// per-conjunct BackImages to G_0's conjuncts and let the policy
		// shorten the result.
		stop = c.Phase(PhaseImage)
		back := ma.BackImageList(g.Conjuncts)
		stop()
		gn := core.NewList(m, append(append([]bdd.Ref(nil), g0...), back...)...)
		stop = c.Phase(PhasePolicy)
		gn = core.SimplifyAndEvaluate(gn, copt)
		stop()
		protectList(c, gn)

		c.Observe(gn.SharedSize(), gn.Sizes())

		stop = c.Phase(PhaseTerm)
		conv := converged(term, opt.Termination, g, gn)
		stop()
		c.EmitTermResolved(conv)
		if conv {
			peak, profile := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak, PeakProfile: profile}
		}
		g = gn
		layers = append(layers, g)
		c.MaybeGC(i)
	}
}

// converged applies the selected termination test to successive iterates.
func converged(term core.Termination, mode TerminationMode, g, gn core.List) bool {
	switch mode {
	case TermImplication:
		// The G_i sequence is monotonically shrinking (G_{i+1} ⊆ G_i by
		// construction), so G_i ⇒ G_{i+1} alone certifies equality.
		return term.ListImplies(g, gn)
	case TermFast:
		return core.FastListsEqual(g, gn)
	default:
		return term.ListsEqual(g, gn)
	}
}

func protectList(c *Ctx, l core.List) {
	for _, cj := range l.Conjuncts {
		c.Protect(cj)
	}
}
