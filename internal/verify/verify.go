// Package verify implements the verification paradigm of the paper's
// Section II — checking that every reachable state satisfies a property
// (AG p model checking) — with five interchangeable engines:
//
//	Forward   conventional forward reachability ("Fwd" in the tables)
//	Backward  conventional backward traversal ("Bkwd")
//	ICI       the original implicitly conjoined invariants method of
//	          Hu & Dill, CAV 1993 (reconstruction): fixed user-supplied
//	          partition, positional conjoining, fast inexact termination
//	FD        forward traversal exploiting user-declared functional
//	          dependencies, Hu & Dill, DAC 1993 (reconstruction)
//	XICI      ICI extended with this paper's techniques: the Section
//	          III.A evaluation & simplification policy and the Section
//	          III.B exact termination test
//
// All engines run under a node budget and report the statistics the
// paper's tables use: iterations to convergence, peak nodes of any
// iterate R_i/G_i (with the per-conjunct size breakdown for the implicit
// methods), estimated memory, and wall time.
package verify

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/resource"
)

// Method selects a verification engine.
type Method string

// The paper's five engines. ForwardID and Induction are declared next
// to their implementations.
const (
	Forward  Method = "Fwd"
	Backward Method = "Bkwd"
	ICI      Method = "ICI"
	XICI     Method = "XICI"
	FD       Method = "FD"
)

// Methods lists the built-in engines, the paper's five in table order
// followed by the three extensions. Registered() additionally reports
// engines registered from outside the package.
var Methods = []Method{Forward, Backward, FD, ICI, XICI, ForwardID, Induction, PDR}

// TerminationMode selects how the implicit-conjunction engines detect
// convergence.
type TerminationMode int

const (
	// TermExact uses the Section III.B exact test, both implications.
	TermExact TerminationMode = iota
	// TermImplication exploits monotonicity of the G_i sequence and
	// checks the single implication G_i ⇒ G_{i+1} — the optimization the
	// paper mentions but leaves unimplemented.
	TermImplication
	// TermFast uses the inexact positional test of the original ICI
	// method (may fail to detect convergence, never falsely converges).
	TermFast
)

// Dependency declares, for the FD engine, that a state bit is a function
// of the other state bits on every reachable state. Def must mention only
// state variables that are not themselves declared dependent.
type Dependency struct {
	Var bdd.Var
	Def bdd.Ref
}

// Problem is one verification task: a machine and a safety property. The
// property may be supplied monolithically (Good), as a user partition
// (GoodList, the implicit conjunction the ICI method requires), or both.
type Problem struct {
	Machine *fsm.Machine

	// Good is the monolithic good-state set. If left at its zero value
	// (bdd.One, the trivially true property) while GoodList is set, the
	// monolithic engines derive it by conjoining GoodList.
	Good bdd.Ref

	// GoodList is the user-supplied partition of Good. Engines that
	// need a partition fall back to the singleton [Good] when absent —
	// which, as the paper notes, reduces ICI to plain backward traversal.
	GoodList []bdd.Ref

	// Deps are the functional dependencies for the FD engine.
	Deps []Dependency

	// Name labels the problem in reports.
	Name string
}

// good returns the monolithic property, deriving it from the partition
// when necessary. This is the potentially huge BDD the implicit methods
// refuse to build; only the monolithic engines call it.
func (p Problem) good() bdd.Ref {
	if p.Good == bdd.One && len(p.GoodList) > 0 {
		return p.Machine.M.AndN(p.GoodList...)
	}
	return p.Good
}

// goodList returns the property as a partition, falling back to the
// monolithic singleton.
func (p Problem) goodList() []bdd.Ref {
	if len(p.GoodList) > 0 {
		return p.GoodList
	}
	return []bdd.Ref{p.Good}
}

// Options configures an engine run.
type Options struct {
	// Budget is the run's complete resource bound: node limit ("Exceeded
	// 60MB" rows), wall deadline ("Exceeded 40 minutes" rows), iteration
	// cap (0 = 100000), and cancellation context. The zero value is
	// unbounded. The harness installs it on the manager for the run's
	// duration — it is the single path by which limits, deadlines, and
	// cancellation reach the BDD layer.
	Budget resource.Budget

	// Core configures the XICI evaluation & simplification policy.
	Core core.Options

	// Workers enables parallel pair scoring inside the evaluation
	// policy of the implicit-conjunction engines: it is copied into
	// Core.Workers when that is zero (see core.Options.Workers for the
	// contract; 0 = sequential, < 0 = GOMAXPROCS). Results are
	// identical to a sequential run whenever Core.PairBudgetFactor
	// is zero.
	Workers int

	// SharedManager opts the run into the shared-memory parallel path
	// when the problem's Manager is in concurrent mode (bdd.NewShared):
	// pair scoring and image computation run against the one manager
	// with no per-worker mirrors or Transfer hand-off (it is copied to
	// Core.SharedManager; see core.Options.SharedManager for the exact
	// applicability conditions). On a sequential manager it is a no-op,
	// so it is safe to set unconditionally from flag plumbing.
	SharedManager bool

	// Termination selects the convergence test for ICI-family engines.
	Termination TerminationMode

	// TermVarChoice selects the Shannon-expansion variable heuristic of
	// the exact termination test (Section V tuning knob).
	TermVarChoice core.VarChoice

	// TermSkipStep3 disables step 3 (the pairwise-implication filter) of
	// the exact termination test — the Section V ablation knob. The test
	// stays exact; it only changes which step resolves each call.
	TermSkipStep3 bool

	// WantTrace requests a counterexample trace on violation.
	WantTrace bool

	// GCEvery triggers a garbage collection every n iterations
	// (0 = never). Live iterates are protected automatically.
	GCEvery int

	// Observer, when non-nil, receives progress events from the engine
	// as the run unfolds: one OnIteration per iterate, one OnMerge per
	// policy merge, one OnTermResolved per convergence test. Nil (the
	// default) costs nothing. Callbacks run synchronously on the
	// engine's goroutine.
	Observer Observer
}

// defaultMaxIter is the traversal depth bound when the budget sets none.
const defaultMaxIter = 100000

// Outcome classifies how a run ended.
type Outcome int

const (
	// Verified: the property holds on all reachable states.
	Verified Outcome = iota
	// Violated: a reachable state breaks the property.
	Violated
	// Exhausted: the run hit the node budget, the timeout, or the
	// iteration bound before reaching a verdict.
	Exhausted
)

func (o Outcome) String() string {
	switch o {
	case Verified:
		return "verified"
	case Violated:
		return "violated"
	default:
		return "exhausted"
	}
}

// Result carries everything the paper's tables report, plus the
// counterexample trace when one was requested and found.
type Result struct {
	Problem string
	Method  Method
	Outcome Outcome

	// Iterations is the number of image computations performed before
	// the verdict ("Iter" in the tables): on success this includes the
	// final image whose fixpoint detection certified convergence; on
	// violation it is the length of the shortest violating path.
	Iterations int

	// PeakStateNodes is the largest shared node count of any iterate
	// R_i or G_i ("BDD Nodes").
	PeakStateNodes int

	// PeakProfile is the per-conjunct size breakdown at the peak
	// iterate, for the implicit-conjunction engines (the parenthesized
	// numbers in the tables).
	PeakProfile []int

	// MemBytes estimates the verifier's memory high-water mark ("Mem").
	MemBytes int

	// Elapsed is wall time for the run ("Time").
	Elapsed time.Duration

	// Term accumulates the Section III.B exact termination test's
	// effort counters across the run (zero for engines that never run
	// the exact test). With Workers set and Core.PairBudgetFactor == 0
	// the counters are identical to a sequential run.
	Term core.TermStats

	// Eval accumulates the Section III.A greedy evaluation's effort
	// counters across the run, under the same determinism contract.
	Eval core.EvalStats

	// PhaseDurations is the run's wall time attributed per engine phase
	// (image / policy / termination / GC). The sum is a lower bound on
	// Elapsed; unattributed time is loop bookkeeping.
	PhaseDurations PhaseDurations

	// SizeTrajectory is the shared node count of every iterate in
	// sequence order, index 0 being the initial iterate — the data
	// behind the paper's "BDD Nodes" growth discussion. Its maximum is
	// PeakStateNodes.
	SizeTrajectory []int

	// Why explains Exhausted outcomes (node limit, timeout, ...).
	Why string

	// Err is the typed resource error behind an Exhausted outcome, when
	// one exists: errors.Is-matchable against resource.ErrNodeLimit,
	// resource.ErrDeadline, resource.ErrIterLimit, or context.Canceled.
	// Nil for Verified/Violated and for algorithmic exhaustion (a
	// non-inductive property, an FD configuration error).
	Err error

	// ViolationDepth is the length of the shortest violating path found
	// (meaningful when Outcome == Violated).
	ViolationDepth int

	// Trace is the counterexample (when requested and Outcome ==
	// Violated). Forward and backward family engines both produce one.
	Trace *Trace
}

// String renders a result as one table row.
func (r Result) String() string {
	switch r.Outcome {
	case Exhausted:
		return fmt.Sprintf("%-5s %-10s %s", r.Method, r.Outcome, r.Why)
	case Violated:
		return fmt.Sprintf("%-5s violated at depth %d in %v", r.Method, r.ViolationDepth, r.Elapsed)
	default:
		return fmt.Sprintf("%-5s %v iter=%d mem=%dK nodes=%d %v",
			r.Method, r.Outcome, r.Iterations, r.MemBytes/1024, r.PeakStateNodes, r.Elapsed)
	}
}

// Cause classifies an Exhausted result's termination cause for reports:
// "node-limit", "deadline", "canceled", or "iteration-cap" when the run
// hit the corresponding budget bound, "other" for algorithmic
// exhaustion (a non-inductive property, an FD configuration error), and
// "" when the run did not exhaust at all.
func (r Result) Cause() string {
	if r.Outcome != Exhausted {
		return ""
	}
	switch {
	case errors.Is(r.Err, resource.ErrNodeLimit):
		return "node-limit"
	case errors.Is(r.Err, resource.ErrDeadline),
		errors.Is(r.Err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(r.Err, context.Canceled):
		return "canceled"
	case errors.Is(r.Err, resource.ErrIterLimit):
		return "iteration-cap"
	default:
		return "other"
	}
}

// Run executes one engine on one problem. The machine must be sealed.
// Resource overruns inside BDD operations are converted into an
// Exhausted result carrying the typed error and the statistics
// accumulated up to the abort; the manager remains usable afterwards.
// An unregistered method panics.
func Run(p Problem, method Method, opt Options) Result {
	return RunContext(context.Background(), p, method, opt)
}

// RunContext is Run with an explicit cancellation context: canceling
// ctx aborts the run (including a single long image computation, via
// the manager's strided checks) with an Exhausted result whose Err
// matches context.Canceled. A context set on opt.Budget.Ctx takes
// precedence.
//
// RunContext is the single harness all engines run under. It resolves
// the method through the registry, installs the budget on the manager,
// converts overrun panics via Guard, and finalizes the Result; engine
// code holds only the algorithm's core loop.
func RunContext(ctx context.Context, p Problem, method Method, opt Options) Result {
	eng, ok := Lookup(method)
	if !ok {
		panic(fmt.Sprintf("verify: unknown method %q", method))
	}
	m := p.Machine.M
	if opt.Workers != 0 && opt.Core.Workers == 0 {
		opt.Core.Workers = opt.Workers
	}
	if opt.SharedManager {
		opt.Core.SharedManager = true
	}
	// Stats sinks are per-run: a caller reusing one Options value across
	// runs must see each run's counters alone, not a silent accumulation
	// (which also breaks the TermStats bucket invariant and turns
	// MaxSplitDepth into a cross-run max). The harness wires engines to
	// its own zeroed Ctx sinks, so here it is enough to reset the
	// caller's sink on entry and mirror the run's totals back on exit.
	if opt.Core.Stats != nil {
		*opt.Core.Stats = core.EvalStats{}
	}

	start := time.Now()
	b := opt.Budget
	if b.Ctx == nil && ctx != context.Background() {
		b.Ctx = ctx
	}
	b = b.Norm().Start(start)
	restore := m.ApplyBudget(b)
	defer restore()

	c := newCtx(p, opt, b)
	defer c.release()

	var res Result
	if err := b.Err(); err != nil {
		// Already past the deadline or canceled: uniform Exhausted
		// across all engines, without entering one.
		res = c.exhausted(err)
	} else if err := bdd.Guard(func() { res = eng.Run(c, p, opt) }); err != nil {
		res = c.exhausted(err)
	}
	res.Problem = p.Name
	res.Method = method
	res.Elapsed = time.Since(start)
	res.MemBytes = m.MemEstimate()
	// Observability fields accumulate on the Ctx, so Exhausted runs
	// report the partial effort spent before the abort.
	res.Term = c.term
	res.Eval = c.eval
	res.PhaseDurations = c.phases
	res.SizeTrajectory = c.trajectory
	if opt.Core.Stats != nil {
		*opt.Core.Stats = res.Eval
	}
	return res
}
