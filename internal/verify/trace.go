package verify

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
)

// Trace is a concrete counterexample: a sequence of states from an
// initial state to a property violation, with the input choices driving
// each transition. Assignments are full (indexed by BDD level).
type Trace struct {
	// States holds k+1 state assignments s_0 .. s_k; s_0 is initial and
	// s_k violates the property.
	States [][]bool

	// Inputs holds the k input assignments; Inputs[i] drives the
	// transition s_i -> s_{i+1}. Each is a full assignment whose state
	// bits agree with States[i].
	Inputs [][]bool
}

// Len returns the number of transitions in the trace.
func (t *Trace) Len() int { return len(t.Inputs) }

// checkAssignment verifies that one assignment vector of the trace is
// long enough to be indexed by every manager variable. Assignments are
// captured at trace-construction time, so a manager that grew variables
// afterwards (a later model on the same manager, a worker transfer)
// leaves the vectors short — indexing them blind would panic.
func checkAssignment(what string, i int, s []bool, nvars int) error {
	if len(s) < nvars {
		return fmt.Errorf("verify: trace %s %d has %d assignments but the manager declares %d variables (trace captured before variables were added?)",
			what, i, len(s), nvars)
	}
	return nil
}

// Format renders the trace, printing each state through the given
// variable list (typically the machine's state variables). It reports an
// error instead of panicking when a state vector is shorter than the
// manager's variable count.
func (t *Trace) Format(m *bdd.Manager, vars []bdd.Var) (string, error) {
	nvars := m.NumVars()
	var b strings.Builder
	for i, s := range t.States {
		if err := checkAssignment("state", i, s, nvars); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "step %d:", i)
		for _, v := range vars {
			val := 0
			if s[v] {
				val = 1
			}
			fmt.Fprintf(&b, " %s=%d", m.VarName(v), val)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Validate replays the trace on the machine and confirms that it starts
// in an initial state, follows real transitions, and that the final state
// violates the given good-state list. It is used by tests and by the
// engines' own self-checks.
func (t *Trace) Validate(ma *fsm.Machine, goodList []bdd.Ref) error {
	m := ma.M
	if len(t.States) == 0 {
		return fmt.Errorf("verify: empty trace")
	}
	if len(t.Inputs) != len(t.States)-1 {
		return fmt.Errorf("verify: %d states but %d input vectors", len(t.States), len(t.Inputs))
	}
	// Every assignment must cover the manager's full variable range
	// before anything (Eval, the agreement checks below) indexes it.
	nvars := m.NumVars()
	for i, s := range t.States {
		if err := checkAssignment("state", i, s, nvars); err != nil {
			return err
		}
	}
	for i, in := range t.Inputs {
		if err := checkAssignment("input vector", i, in, nvars); err != nil {
			return err
		}
	}
	if !m.Eval(ma.Init(), t.States[0]) {
		return fmt.Errorf("verify: trace does not start in an initial state")
	}
	for i, in := range t.Inputs {
		// The input assignment must agree with the state it extends.
		for _, v := range ma.CurVars() {
			if in[v] != t.States[i][v] {
				return fmt.Errorf("verify: step %d input vector disagrees with state", i)
			}
		}
		next, err := ma.Step(in)
		if err != nil {
			return fmt.Errorf("verify: step %d: %v", i, err)
		}
		for _, v := range ma.CurVars() {
			if next[v] != t.States[i+1][v] {
				return fmt.Errorf("verify: step %d does not lead to recorded successor", i)
			}
		}
	}
	last := t.States[len(t.States)-1]
	for _, g := range goodList {
		if !m.Eval(g, last) {
			return nil // final state indeed violates the property
		}
	}
	return fmt.Errorf("verify: final trace state satisfies the property")
}

// stateCube builds the BDD cube pinning the machine's state bits to the
// values in the assignment.
func stateCube(ma *fsm.Machine, a []bool) bdd.Ref {
	lits := make([]bdd.Lit, len(ma.CurVars()))
	for i, v := range ma.CurVars() {
		lits[i] = bdd.Lit{Var: v, Val: a[v]}
	}
	return ma.M.CubeRef(lits)
}

// traceFromRings reconstructs a counterexample from forward onion rings
// rings[0..k] (rings[i] = R_i) where rings[k] intersects ¬good.
func traceFromRings(ma *fsm.Machine, rings []bdd.Ref, bad bdd.Ref) *Trace {
	m := ma.M
	k := len(rings) - 1

	// Walk backwards: pick s_k in R_k ∧ bad, then predecessors inside
	// successive rings.
	states := make([][]bool, k+1)
	states[k] = m.SatAssignment(m.And(rings[k], bad))
	if states[k] == nil {
		panic("verify: traceFromRings called without a violation")
	}
	target := stateCube(ma, states[k])
	for i := k - 1; i >= 0; i-- {
		pred := m.And(rings[i], ma.PreImage(target))
		states[i] = m.SatAssignment(pred)
		if states[i] == nil {
			panic("verify: onion-ring invariant broken (no predecessor)")
		}
		target = stateCube(ma, states[i])
	}

	// Walk forwards choosing concrete inputs.
	inputs := make([][]bool, k)
	for i := 0; i < k; i++ {
		in, ok := ma.PickTransitionInto(states[i], stateCube(ma, states[i+1]))
		if !ok {
			panic("verify: no input realizes a recorded transition")
		}
		inputs[i] = in
	}
	return &Trace{States: states, Inputs: inputs}
}

// traceFromLayers reconstructs a counterexample from backward layers
// layers[0..k] (layers[i] = G_i as an implicit conjunction) where the
// initial states escape layers[k]. The violating path starts at an
// initial state outside G_k and, at each step, moves to a successor
// outside the next-lower layer, reaching ¬Good (= ¬G_0) in at most k
// steps.
func traceFromLayers(ma *fsm.Machine, layers []core.List, init bdd.Ref) *Trace {
	m := ma.M
	k := len(layers) - 1

	gk := layers[k]
	vi := gk.ViolatingConjunct(init)
	if vi < 0 {
		panic("verify: traceFromLayers called without a violation")
	}
	cur := m.SatAssignment(m.Diff(init, gk.Conjuncts[vi]))

	trace := &Trace{States: [][]bool{cur}}
	for i := k; i > 0; i-- {
		// cur is outside G_i = Good ∧ BackImage(G_{i-1}). If it is
		// already outside Good we are done early; otherwise some
		// successor escapes G_{i-1}.
		if escapes(m, layers[0], cur) {
			return trace
		}
		next, ok := pickEscape(ma, cur, layers[i-1])
		if !ok {
			panic("verify: backward layer invariant broken (no escaping successor)")
		}
		trace.Inputs = append(trace.Inputs, next.in)
		trace.States = append(trace.States, next.state)
		cur = next.state
	}
	if !escapes(m, layers[0], cur) {
		panic("verify: backward trace did not reach a violating state")
	}
	return trace
}

// escapes reports whether the state assignment violates the list.
func escapes(m *bdd.Manager, l core.List, state []bool) bool {
	_ = m
	return !l.Eval(state)
}

type chosenStep struct {
	in    []bool
	state []bool
}

// pickEscape finds an input taking the concrete state to a successor
// outside the given layer (violating at least one conjunct).
func pickEscape(ma *fsm.Machine, state []bool, layer core.List) (chosenStep, bool) {
	for _, conj := range layer.Conjuncts {
		in, ok := ma.PickTransitionInto(state, conj.Not())
		if !ok {
			continue
		}
		next, err := ma.Step(in)
		if err != nil {
			continue
		}
		return chosenStep{in: in, state: next}, true
	}
	return chosenStep{}, false
}
