package verify

import (
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/fsm"
	"repro/internal/resource"
)

// tinyFIFO builds a small typed shift-register FIFO: `depth` slots of
// `width` bits; each cycle the input word (constrained to <= bound)
// shifts in. Property: every slot <= bound. bug, if true, breaks the
// constraint wiring on slot 0 so over-bound values enter.
func tinyFIFO(t testing.TB, width, depth int, bound uint64, bug bool) (Problem, *fsm.Machine) {
	t.Helper()
	m := bdd.New()
	ma := fsm.New(m)

	in := make([]bdd.Var, width)
	slots := make([][]bdd.Var, depth)
	for d := range slots {
		slots[d] = make([]bdd.Var, width)
	}
	// Interleaved ordering: bit b of input, then bit b of each slot.
	for b := 0; b < width; b++ {
		in[b] = ma.NewInputBit("in" + string(rune('0'+b)))
		for d := 0; d < depth; d++ {
			slots[d][b] = ma.NewStateBit("s" + string(rune('0'+d)) + "b" + string(rune('0'+b)))
		}
	}

	inWord := expr.FromVars(m, in)
	if !bug {
		ma.AddInputConstraint(expr.LeConst(inWord, bound))
	}
	for b := 0; b < width; b++ {
		ma.SetNext(slots[0][b], m.VarRef(in[b]))
		for d := 1; d < depth; d++ {
			ma.SetNext(slots[d][b], m.VarRef(slots[d-1][b]))
		}
	}
	initSet := bdd.One
	for d := 0; d < depth; d++ {
		for b := 0; b < width; b++ {
			initSet = m.And(initSet, m.NVarRef(slots[d][b]))
		}
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	goodList := make([]bdd.Ref, depth)
	for d := 0; d < depth; d++ {
		goodList[d] = expr.LeConst(expr.FromVars(m, slots[d]), bound)
	}
	return Problem{
		Machine:  ma,
		GoodList: goodList,
		Name:     "tinyFIFO",
	}, ma
}

func TestAllMethodsVerifyTypedFIFO(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	for _, method := range []Method{Forward, Backward, ICI, XICI} {
		res := Run(p, method, Options{})
		if res.Outcome != Verified {
			t.Fatalf("%s: outcome %v (%s)", method, res.Outcome, res.Why)
		}
		if res.PeakStateNodes <= 0 {
			t.Fatalf("%s: no peak node count", method)
		}
		if res.MemBytes <= 0 || res.Elapsed < 0 {
			t.Fatalf("%s: missing stats", method)
		}
	}
}

func TestAllMethodsCatchBugWithValidTrace(t *testing.T) {
	p, ma := tinyFIFO(t, 3, 3, 5, true)
	var depths []int
	for _, method := range []Method{Forward, Backward, ICI, XICI} {
		res := Run(p, method, Options{WantTrace: true})
		if res.Outcome != Violated {
			t.Fatalf("%s: outcome %v, want violated", method, res.Outcome)
		}
		if res.Trace == nil {
			t.Fatalf("%s: no trace", method)
		}
		if err := res.Trace.Validate(ma, p.goodList()); err != nil {
			t.Fatalf("%s: invalid trace: %v", method, err)
		}
		depths = append(depths, res.ViolationDepth)
	}
	// All violation depths agree (shortest counterexample length).
	for _, d := range depths[1:] {
		if d != depths[0] {
			t.Fatalf("violation depths disagree: %v", depths)
		}
	}
}

func TestICISingletonDegeneratesToBackward(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 3, 2, false)
	mono := Problem{Machine: p.Machine, Good: p.good(), Name: p.Name}
	bres := Run(mono, Backward, Options{})
	ires := Run(mono, ICI, Options{}) // no GoodList: singleton fallback
	if bres.Outcome != Verified || ires.Outcome != Verified {
		t.Fatalf("outcomes: %v %v", bres.Outcome, ires.Outcome)
	}
	if bres.Iterations != ires.Iterations {
		t.Fatalf("iterations differ: Bkwd %d, ICI-singleton %d", bres.Iterations, ires.Iterations)
	}
	if bres.PeakStateNodes != ires.PeakStateNodes {
		t.Fatalf("peak nodes differ: Bkwd %d, ICI-singleton %d", bres.PeakStateNodes, ires.PeakStateNodes)
	}
}

func TestXICIStaysImplicit(t *testing.T) {
	// On the typed FIFO, the implicit methods must keep the per-iterate
	// node count below the monolithic backward traversal's.
	p, _ := tinyFIFO(t, 4, 5, 9, false)
	bk := Run(p, Backward, Options{})
	xi := Run(p, XICI, Options{})
	if bk.Outcome != Verified || xi.Outcome != Verified {
		t.Fatalf("outcomes: %v %v", bk.Outcome, xi.Outcome)
	}
	if xi.PeakStateNodes >= bk.PeakStateNodes {
		t.Fatalf("XICI peak %d not below monolithic backward peak %d",
			xi.PeakStateNodes, bk.PeakStateNodes)
	}
	if len(xi.PeakProfile) < 2 {
		t.Fatalf("XICI did not keep an implicit conjunction: profile %v", xi.PeakProfile)
	}
}

func TestXICITerminationModesAgree(t *testing.T) {
	for _, bug := range []bool{false, true} {
		p, _ := tinyFIFO(t, 3, 2, 4, bug)
		want := Verified
		if bug {
			want = Violated
		}
		for _, mode := range []TerminationMode{TermExact, TermImplication, TermFast} {
			res := Run(p, XICI, Options{Termination: mode})
			if res.Outcome != want {
				t.Fatalf("mode %d on bug=%v: outcome %v, want %v", mode, bug, res.Outcome, want)
			}
		}
	}
}

func TestXICIFromMonolithicProperty(t *testing.T) {
	// No partition supplied: XICI must still verify, forming its own
	// implicit conjunction — the paper's headline capability.
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	mono := Problem{Machine: p.Machine, Good: p.good(), Name: p.Name}
	res := Run(mono, XICI, Options{})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
}

func TestNodeLimitExhaustion(t *testing.T) {
	p, _ := tinyFIFO(t, 4, 4, 9, false)
	res := Run(p, Forward, Options{Budget: resource.Budget{NodeLimit: 50}})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want exhausted", res.Outcome)
	}
	if res.Why == "" {
		t.Fatal("no exhaustion reason")
	}
	// The manager must be reusable: the same problem at a workable limit.
	res2 := Run(p, Forward, Options{})
	if res2.Outcome != Verified {
		t.Fatalf("manager unusable after exhaustion: %v (%s)", res2.Outcome, res2.Why)
	}
}

func TestTimeoutExhaustion(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	res := Run(p, Backward, Options{Budget: resource.Budget{Timeout: time.Nanosecond}})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want exhausted on timeout", res.Outcome)
	}
}

func TestIterationBoundExhaustion(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 4, 2, false)
	res := Run(p, Forward, Options{Budget: resource.Budget{MaxIterations: 1}})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want exhausted on iteration bound", res.Outcome)
	}
}

func TestGCDuringTraversal(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	for _, method := range []Method{Forward, Backward, ICI, XICI} {
		res := Run(p, method, Options{GCEvery: 1})
		if res.Outcome != Verified {
			t.Fatalf("%s with GC: outcome %v (%s)", method, res.Outcome, res.Why)
		}
	}
	// And with a violation + trace, which must survive collections too.
	pb, ma := tinyFIFO(t, 3, 3, 5, true)
	res := Run(pb, XICI, Options{GCEvery: 1, WantTrace: true})
	if res.Outcome != Violated || res.Trace == nil {
		t.Fatalf("XICI with GC on bug: %v", res.Outcome)
	}
	if err := res.Trace.Validate(ma, pb.goodList()); err != nil {
		t.Fatal(err)
	}
}

func TestReachableStates(t *testing.T) {
	p, ma := tinyFIFO(t, 2, 2, 2, false)
	reach, iters, err := ReachableStates(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Fatal("converged with no iterations?")
	}
	m := ma.M
	// Reachability invariants: contains init, closed under Image, and
	// every reachable slot value respects the type bound.
	if !m.Implies(ma.Init(), reach) {
		t.Fatal("reachable set misses init")
	}
	if !m.Implies(ma.Image(reach), reach) {
		t.Fatal("reachable set not closed under image")
	}
	if !m.Implies(reach, p.good()) {
		t.Fatal("reachable set violates the (true) property")
	}
	// Bounded ReachableStates errors out.
	if _, _, err := ReachableStates(p, Options{Budget: resource.Budget{MaxIterations: 1}}); err == nil {
		t.Fatal("iteration-bounded reachability did not error")
	}
}

func TestXICICoreOptionVariants(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	variants := []core.Options{
		{},
		{GrowThreshold: 1.1},
		{GrowThreshold: 3},
		{Simplifier: bdd.UseConstrain},
		{SkipEvaluate: true},
		{SkipSimplify: true},
	}
	for _, v := range variants {
		res := Run(p, XICI, Options{Core: v})
		if res.Outcome != Verified {
			t.Fatalf("core options %+v: outcome %v (%s)", v, res.Outcome, res.Why)
		}
	}
}

func TestResultString(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 2, 2, false)
	if s := Run(p, XICI, Options{}).String(); s == "" {
		t.Fatal("empty verified row")
	}
	if s := Run(p, Forward, Options{Budget: resource.Budget{NodeLimit: 40}}).String(); s == "" {
		t.Fatal("empty exhausted row")
	}
	pb, _ := tinyFIFO(t, 2, 2, 2, true)
	if s := Run(pb, Forward, Options{}).String(); s == "" {
		t.Fatal("empty violated row")
	}
}

func TestUnknownMethodPanics(t *testing.T) {
	p, _ := tinyFIFO(t, 2, 2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	Run(p, Method("nope"), Options{})
}

// TestCtxTerminationWiring: every Options termination knob must reach the
// core.Termination an engine obtains from the harness — in particular the
// SkipStep3 ablation flag, which is not observable from counter totals on
// the small models.
func TestCtxTerminationWiring(t *testing.T) {
	p, _ := tinyFIFO(t, 1, 2, 0, false)
	opt := Options{
		TermVarChoice: core.VarMostCommonTop,
		TermSkipStep3: true,
		Core:          core.Options{Simplifier: bdd.UseConstrain},
	}
	c := newCtx(p, opt, resource.Budget{}.Norm().Start(time.Now()))
	defer c.release()
	term := c.Termination()
	if term.M != p.Machine.M {
		t.Error("Termination not bound to the problem's manager")
	}
	if !term.SkipStep3 {
		t.Error("TermSkipStep3 not wired through to core.Termination")
	}
	if term.VarChoice != core.VarMostCommonTop {
		t.Error("TermVarChoice not wired through")
	}
	if term.Simplifier != bdd.UseConstrain {
		t.Error("Core.Simplifier not wired through")
	}
	if term.Stats != &c.term {
		t.Error("Termination stats not wired to the harness sink")
	}
}
