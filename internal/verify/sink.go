package verify

import (
	"encoding/json"
	"io"
	"sync"
)

// Observer-to-sink adapters: the Observer interface delivers typed
// callbacks on the engine goroutine; a sink wants one uniform,
// serializable stream it can buffer, broadcast, or write to a network
// connection. Event is that envelope, SinkObserver the adapter, and
// NDJSONObserver the ready-made "one JSON object per line" writer the
// CLI and the icid event stream share.

// Event kinds, the value of Event.Kind.
const (
	EventIteration    = "iteration"
	EventMerge        = "merge"
	EventTermResolved = "term_resolved"
)

// Event is the uniform envelope for one observer callback. Exactly one
// of the payload pointers is set, matching Kind. The JSON form flattens
// the payload into the envelope (see MarshalJSON), so a stream reads as
//
//	{"event":"iteration","method":"XICI","index":3,"shared_nodes":117}
//	{"event":"merge","method":"XICI","iteration":3,"i":0,"j":2}
type Event struct {
	Kind   string // EventIteration, EventMerge, or EventTermResolved
	Method string // the engine that produced the event, when known

	Iteration *IterationEvent
	Merge     *MergeEvent
	Term      *TermEvent
}

// MarshalJSON flattens the set payload next to the envelope tags. One
// envelope type per kind: MergeEvent and TermEvent both serialize an
// "iteration" field, so a single struct embedding all three payloads
// would make encoding/json drop the conflicting fields entirely.
func (e Event) MarshalJSON() ([]byte, error) {
	type tags struct {
		Event  string `json:"event"`
		Method string `json:"method,omitempty"`
	}
	tg := tags{Event: e.Kind, Method: e.Method}
	switch {
	case e.Iteration != nil:
		return json.Marshal(struct {
			tags
			IterationEvent
		}{tg, *e.Iteration})
	case e.Merge != nil:
		return json.Marshal(struct {
			tags
			MergeEvent
		}{tg, *e.Merge})
	case e.Term != nil:
		return json.Marshal(struct {
			tags
			TermEvent
		}{tg, *e.Term})
	}
	return json.Marshal(tg)
}

// SinkObserver adapts a function sink to the Observer interface: every
// callback becomes one Event tagged with Method. The sink runs
// synchronously on the engine goroutine — keep it cheap (append to a
// buffer, send on a channel) and do not call back into the run's
// Manager.
type SinkObserver struct {
	Method string
	Sink   func(Event)
}

func (s SinkObserver) OnIteration(e IterationEvent) {
	s.Sink(Event{Kind: EventIteration, Method: s.Method, Iteration: &e})
}

func (s SinkObserver) OnMerge(e MergeEvent) {
	s.Sink(Event{Kind: EventMerge, Method: s.Method, Merge: &e})
}

func (s SinkObserver) OnTermResolved(e TermEvent) {
	s.Sink(Event{Kind: EventTermResolved, Method: s.Method, Term: &e})
}

// NDJSONObserver writes every event as one JSON line to w. It is safe
// for concurrent use — several runs may share one log file — and tags
// each line with the method set by SetMethod. Encoding errors are
// sticky and reported by Err (an event stream has no good in-band
// error channel, and a failed sink must not abort a verification run).
type NDJSONObserver struct {
	mu     sync.Mutex
	enc    *json.Encoder
	method string
	err    error
}

// NewNDJSONObserver returns an observer streaming NDJSON to w.
func NewNDJSONObserver(w io.Writer) *NDJSONObserver {
	return &NDJSONObserver{enc: json.NewEncoder(w)}
}

// SetMethod tags subsequent events with the given engine name.
func (l *NDJSONObserver) SetMethod(m string) {
	l.mu.Lock()
	l.method = m
	l.mu.Unlock()
}

// Err returns the first write error, if any.
func (l *NDJSONObserver) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *NDJSONObserver) emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Method = l.method
	if err := l.enc.Encode(e); err != nil && l.err == nil {
		l.err = err
	}
}

func (l *NDJSONObserver) OnIteration(e IterationEvent) {
	l.emit(Event{Kind: EventIteration, Iteration: &e})
}

func (l *NDJSONObserver) OnMerge(e MergeEvent) {
	l.emit(Event{Kind: EventMerge, Merge: &e})
}

func (l *NDJSONObserver) OnTermResolved(e TermEvent) {
	l.emit(Event{Kind: EventTermResolved, Term: &e})
}
