package verify

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/resource"
)

// TestEveryEngineNodeLimitOverrun: every registered built-in engine, on
// a node-limit overrun, returns Exhausted with the typed error and
// partial statistics, and leaves the manager usable for an unbounded
// rerun.
func TestEveryEngineNodeLimitOverrun(t *testing.T) {
	for _, method := range Methods {
		method := method
		t.Run(string(method), func(t *testing.T) {
			p, _ := tinyFIFO(t, 3, 3, 5, false)
			res := Run(p, method, Options{Budget: resource.Budget{NodeLimit: 1}})
			if res.Outcome != Exhausted {
				t.Fatalf("outcome %v (%s), want exhausted", res.Outcome, res.Why)
			}
			if !errors.Is(res.Err, resource.ErrNodeLimit) {
				t.Fatalf("Err = %v, want ErrNodeLimit", res.Err)
			}
			if res.Cause() != "node-limit" {
				t.Fatalf("Cause = %q", res.Cause())
			}
			if res.Method != method || res.Problem != "tinyFIFO" {
				t.Fatalf("result not finalized: %+v", res)
			}
			// The budget must not outlive the run: the manager is usable
			// and unbounded again.
			if res2 := Run(p, method, Options{}); res2.Outcome != Verified {
				t.Fatalf("manager unusable after overrun: %v (%s)", res2.Outcome, res2.Why)
			}
		})
	}
}

// TestEveryEngineDeadlineOverrun: a budget whose deadline has already
// passed exhausts every engine with the typed deadline error.
func TestEveryEngineDeadlineOverrun(t *testing.T) {
	for _, method := range Methods {
		method := method
		t.Run(string(method), func(t *testing.T) {
			p, _ := tinyFIFO(t, 3, 3, 5, false)
			res := Run(p, method, Options{Budget: resource.Budget{Timeout: time.Nanosecond}})
			if res.Outcome != Exhausted {
				t.Fatalf("outcome %v (%s), want exhausted", res.Outcome, res.Why)
			}
			if !errors.Is(res.Err, resource.ErrDeadline) {
				t.Fatalf("Err = %v, want ErrDeadline", res.Err)
			}
			if res.Cause() != "deadline" {
				t.Fatalf("Cause = %q", res.Cause())
			}
			if res2 := Run(p, method, Options{}); res2.Outcome != Verified {
				t.Fatalf("manager unusable after overrun: %v (%s)", res2.Outcome, res2.Why)
			}
		})
	}
}

// TestEveryEngineCanceledContext: a canceled context exhausts every
// engine with an error matching context.Canceled.
func TestEveryEngineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, method := range Methods {
		p, _ := tinyFIFO(t, 3, 3, 5, false)
		res := RunContext(ctx, p, method, Options{})
		if res.Outcome != Exhausted {
			t.Fatalf("%s: outcome %v (%s), want exhausted", method, res.Outcome, res.Why)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("%s: Err = %v, want context.Canceled", method, res.Err)
		}
		if res.Cause() != "canceled" {
			t.Fatalf("%s: Cause = %q", method, res.Cause())
		}
	}
}

// TestContextDeadlineClassifiesAsDeadline: a context whose own deadline
// expired (DeadlineExceeded, not Canceled) still folds to the stable
// "deadline" cause label.
func TestContextDeadlineClassifiesAsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	res := RunContext(ctx, p, Forward, Options{})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want exhausted", res.Outcome)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", res.Err)
	}
	if res.Cause() != "deadline" {
		t.Fatalf("Cause = %q, want deadline", res.Cause())
	}
}

// TestBudgetOnOptionsTakesPrecedence: an explicit Budget.Ctx wins over
// the RunContext argument.
func TestBudgetOnOptionsTakesPrecedence(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	p, _ := tinyFIFO(t, 2, 2, 2, false)
	res := RunContext(canceled, p, Forward,
		Options{Budget: resource.Budget{Ctx: context.Background()}})
	if res.Outcome != Verified {
		t.Fatalf("explicit Budget.Ctx overridden: %v (%s)", res.Outcome, res.Why)
	}
}

// TestMidRunCancellation: canceling while a traversal is in flight
// aborts between iterations (the Tick checkpoint) or inside an image
// computation (the manager's strided check) with the typed error.
func TestMidRunCancellation(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() {
		done <- RunContext(ctx, p, XICI, Options{})
	}()
	cancel()
	res := <-done
	// The run may have finished before the cancel landed; both verdicts
	// are legal, but a canceled run must carry the typed error.
	if res.Outcome == Exhausted && !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("exhausted without typed cancel error: %v", res.Err)
	}
	if res.Outcome != Exhausted && res.Outcome != Verified {
		t.Fatalf("unexpected outcome %v (%s)", res.Outcome, res.Why)
	}
}
