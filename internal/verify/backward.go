package verify

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// runBackward is the conventional backward traversal of Section II.B:
// G_0 = G, G_{i+1} = G_0 ∧ BackImage(τ, G_i); a violation is S ⊄ G_i,
// and convergence of the G_i sequence means the property holds. The
// whole point of the implicit methods is that this engine must build the
// monolithic BDD for G and each G_i.
func runBackward(p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M
	ctx := newRunCtx(p, opt)
	defer ctx.release()

	good := ctx.protect(p.good())
	init := ma.Init()
	start := time.Now()
	expired := deadline(opt, start)

	g := good
	layers := []core.List{core.NewList(m, g)}
	peak := m.Size(g)

	for i := 0; ; i++ {
		if !m.Implies(init, g) {
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
			}
			if opt.WantTrace {
				res.Trace = traceFromLayers(ma, layers, init)
			}
			return res
		}
		if i >= opt.maxIter() {
			return Result{Outcome: Exhausted, Iterations: i, PeakStateNodes: peak,
				Why: fmt.Sprintf("iteration bound %d reached", opt.maxIter())}
		}
		if expired() {
			return Result{Outcome: Exhausted, Iterations: i, PeakStateNodes: peak,
				Why: fmt.Sprintf("timeout %v exceeded", opt.Timeout)}
		}

		gn := ctx.protect(m.And(good, ma.BackImage(g)))
		if s := m.Size(gn); s > peak {
			peak = s
		}
		if gn == g {
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak}
		}
		g = gn
		layers = append(layers, core.NewList(m, g))
		ctx.maybeGC(i)
	}
}
