package verify

import (
	"repro/internal/core"
)

func init() { RegisterFunc(Backward, runBackward) }

// runBackward is the conventional backward traversal of Section II.B:
// G_0 = G, G_{i+1} = G_0 ∧ BackImage(τ, G_i); a violation is S ⊄ G_i,
// and convergence of the G_i sequence means the property holds. The
// whole point of the implicit methods is that this engine must build the
// monolithic BDD for G and each G_i.
func runBackward(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	good := c.Protect(p.good())
	init := ma.Init()

	g := good
	layers := []core.List{core.NewList(m, g)}
	c.Observe(m.Size(g), nil)

	for i := 0; ; i++ {
		if !m.Implies(init, g) {
			peak, _ := c.Peak()
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
			}
			if opt.WantTrace {
				res.Trace = traceFromLayers(ma, layers, init)
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			return res
		}

		stop := c.Phase(PhaseImage)
		gn := c.Protect(m.And(good, ma.BackImage(g)))
		stop()
		c.Observe(m.Size(gn), nil)
		conv := gn == g // canonical Ref equality: the fixpoint test is free
		c.EmitTermResolved(conv)
		if conv {
			peak, _ := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak}
		}
		g = gn
		layers = append(layers, core.NewList(m, g))
		c.MaybeGC(i)
	}
}
