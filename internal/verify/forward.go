package verify

import (
	"time"

	"repro/internal/bdd"
	"repro/internal/resource"
)

func init() { RegisterFunc(Forward, runForward) }

// runForward is the conventional forward traversal of Section II.B:
// R_0 = S, R_{i+1} = R_0 ∨ Image(τ, R_i); a violation is R_i ⊄ G, and
// convergence of the R_i sequence means the property holds.
func runForward(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	good := c.Protect(p.good())

	r := c.Protect(ma.Init())
	rings := []bdd.Ref{r}
	c.Observe(m.Size(r), nil)

	for i := 0; ; i++ {
		if !m.Implies(r, good) {
			peak, _ := c.Peak()
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
			}
			if opt.WantTrace {
				res.Trace = traceFromRings(ma, rings, good.Not())
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			return res
		}

		stop := c.Phase(PhaseImage)
		rn := c.Protect(m.Or(r, ma.Image(r)))
		stop()
		c.Observe(m.Size(rn), nil)
		conv := rn == r // canonical Ref equality: the fixpoint test is free
		c.EmitTermResolved(conv)
		if conv {
			peak, _ := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak}
		}
		r = rn
		rings = append(rings, r)
		c.MaybeGC(i)
	}
}

// ReachableStates computes the reachable-state set by forward traversal,
// without checking any property — a utility for model debugging and for
// cross-validating engines in tests. It honors the budget's node limit,
// deadline, cancellation, and iteration cap.
func ReachableStates(p Problem, opt Options) (bdd.Ref, int, error) {
	ma := p.Machine
	m := ma.M
	b := opt.Budget.Start(time.Now())
	restore := m.ApplyBudget(b)
	defer restore()
	maxIter := b.MaxIter(defaultMaxIter)

	var reach bdd.Ref
	var iters int
	err := bdd.Guard(func() {
		r := ma.Init()
		for i := 0; ; i++ {
			if i >= maxIter {
				panic(&resource.IterError{Limit: maxIter})
			}
			if err := b.Err(); err != nil {
				panic(err)
			}
			rn := m.Or(r, ma.Image(r))
			if rn == r {
				reach, iters = r, i
				return
			}
			r = rn
		}
	})
	if err != nil {
		return bdd.Zero, 0, err
	}
	return reach, iters, nil
}
