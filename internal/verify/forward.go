package verify

import (
	"fmt"
	"time"

	"repro/internal/bdd"
)

// runForward is the conventional forward traversal of Section II.B:
// R_0 = S, R_{i+1} = R_0 ∨ Image(τ, R_i); a violation is R_i ⊄ G, and
// convergence of the R_i sequence means the property holds.
func runForward(p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M
	ctx := newRunCtx(p, opt)
	defer ctx.release()

	good := ctx.protect(p.good())
	start := time.Now()
	expired := deadline(opt, start)

	r := ctx.protect(ma.Init())
	rings := []bdd.Ref{r}
	peak := m.Size(r)

	for i := 0; ; i++ {
		if !m.Implies(r, good) {
			res := Result{
				Outcome:        Violated,
				Iterations:     i,
				ViolationDepth: i,
				PeakStateNodes: peak,
			}
			if opt.WantTrace {
				res.Trace = traceFromRings(ma, rings, good.Not())
			}
			return res
		}
		if i >= opt.maxIter() {
			return Result{Outcome: Exhausted, Iterations: i, PeakStateNodes: peak,
				Why: fmt.Sprintf("iteration bound %d reached", opt.maxIter())}
		}
		if expired() {
			return Result{Outcome: Exhausted, Iterations: i, PeakStateNodes: peak,
				Why: fmt.Sprintf("timeout %v exceeded", opt.Timeout)}
		}

		rn := ctx.protect(m.Or(r, ma.Image(r)))
		if s := m.Size(rn); s > peak {
			peak = s
		}
		if rn == r {
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak}
		}
		r = rn
		rings = append(rings, r)
		ctx.maybeGC(i)
	}
}

// ReachableStates computes the reachable-state set by forward traversal,
// without checking any property — a utility for model debugging and for
// cross-validating engines in tests.
func ReachableStates(p Problem, opt Options) (bdd.Ref, int, error) {
	ma := p.Machine
	m := ma.M
	prevLimit := m.NodeLimit()
	if opt.NodeLimit > 0 {
		m.SetNodeLimit(opt.NodeLimit)
	}
	defer m.SetNodeLimit(prevLimit)

	var reach bdd.Ref
	var iters int
	err := bdd.Guard(func() {
		r := ma.Init()
		for i := 0; ; i++ {
			if i >= opt.maxIter() {
				panic(&bdd.LimitError{Limit: opt.maxIter(), Live: m.NumNodes()})
			}
			rn := m.Or(r, ma.Image(r))
			if rn == r {
				reach, iters = r, i
				return
			}
			r = rn
		}
	})
	if err != nil {
		return bdd.Zero, 0, err
	}
	return reach, iters, nil
}
