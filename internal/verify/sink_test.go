package verify

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fsm"
)

// sinkProblem builds a tiny two-conjunct problem that converges in a few
// iterations, enough to exercise every event kind under XICI.
func sinkProblem(t *testing.T) Problem {
	t.Helper()
	m := bdd.New()
	ma := fsm.New(m)
	a := ma.NewStateBit("a")
	b := ma.NewStateBit("b")
	tick := ma.NewInputBit("tick")
	ma.SetNext(a, m.Xor(m.VarRef(a), m.VarRef(tick)))
	ma.SetNext(b, m.VarRef(a))
	ma.SetInit(m.And(m.VarRef(a).Not(), m.VarRef(b).Not()))
	ma.MustSeal()
	// Trivially inductive conjuncts so the run verifies.
	good := []bdd.Ref{m.Or(m.VarRef(a), m.VarRef(a).Not()), m.Nand(m.VarRef(b), m.VarRef(b).Not())}
	return Problem{Machine: ma, GoodList: good, Name: "sink"}
}

// SinkObserver must deliver exactly the callbacks the Observer receives,
// as tagged envelopes whose payload pointer matches the kind.
func TestSinkObserverDeliversTaggedEvents(t *testing.T) {
	p := sinkProblem(t)
	var events []Event
	res := Run(p, XICI, Options{Observer: SinkObserver{
		Method: string(XICI),
		Sink:   func(e Event) { events = append(events, e) },
	}})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	iters := 0
	for _, e := range events {
		if e.Method != string(XICI) {
			t.Fatalf("event method %q", e.Method)
		}
		switch e.Kind {
		case EventIteration:
			if e.Iteration == nil || e.Merge != nil || e.Term != nil {
				t.Fatalf("iteration envelope payload mismatch: %+v", e)
			}
			iters++
		case EventMerge:
			if e.Merge == nil {
				t.Fatalf("merge envelope payload mismatch: %+v", e)
			}
		case EventTermResolved:
			if e.Term == nil {
				t.Fatalf("term envelope payload mismatch: %+v", e)
			}
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	// One iteration event per iterate, including the initial one.
	if iters != res.Iterations+1 {
		t.Fatalf("%d iteration events for %d iterations", iters, res.Iterations)
	}
}

// The NDJSON form must flatten payload fields into the envelope — the
// shape both iciverify -events and the icid event stream emit.
func TestNDJSONObserverStream(t *testing.T) {
	p := sinkProblem(t)
	var buf bytes.Buffer
	obs := NewNDJSONObserver(&buf)
	obs.SetMethod(string(XICI))
	res := Run(p, XICI, Options{Observer: obs})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if err := obs.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	sawIterationIndex := false
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if m["method"] != string(XICI) {
			t.Fatalf("line %d method %v", lines, m["method"])
		}
		kind, _ := m["event"].(string)
		switch kind {
		case EventIteration:
			// Flattened: index/shared_nodes at top level, not nested.
			if _, ok := m["index"]; !ok {
				t.Fatalf("iteration line lacks flattened index: %v", m)
			}
			if _, ok := m["shared_nodes"]; !ok {
				t.Fatalf("iteration line lacks shared_nodes: %v", m)
			}
			sawIterationIndex = true
		case EventMerge, EventTermResolved:
			if _, ok := m["iteration"]; !ok {
				t.Fatalf("%s line lacks flattened iteration: %v", kind, m)
			}
		case "":
			t.Fatalf("line %d has no event tag: %s", lines, sc.Text())
		}
	}
	if lines == 0 || !sawIterationIndex {
		t.Fatalf("stream too thin: %d lines, iteration seen=%v", lines, sawIterationIndex)
	}
	if strings.Contains(buf.String(), "Iteration") {
		t.Fatal("unflattened Go field name leaked into JSON")
	}
}
