// Exercises the engine registry through the public API only: a toy
// engine registered from this external test package must run under the
// shared harness exactly like a built-in one.
package verify_test

import (
	"errors"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/resource"
	"repro/internal/verify"
)

const (
	toyEngine   verify.Method = "TestToy"
	abortEngine verify.Method = "TestAbort"
)

func init() {
	verify.RegisterFunc(toyEngine, func(c *verify.Ctx, p verify.Problem, opt verify.Options) verify.Result {
		return verify.Result{Outcome: verify.Verified, Iterations: 1, PeakStateNodes: 1}
	})
	// abortEngine reports progress, then dies mid-operation the way a
	// BDD allocation overrun does — the harness must attach the partial
	// statistics to the Exhausted result.
	verify.RegisterFunc(abortEngine, func(c *verify.Ctx, p verify.Problem, opt verify.Options) verify.Result {
		c.Observe(7, []int{4, 3})
		if res, stop := c.Tick(3); stop {
			return res
		}
		panic(&resource.LimitError{Limit: 10, Live: 11})
	})
}

// toggle is the smallest sealable machine: one bit, toggling.
func toggle(t *testing.T) verify.Problem {
	t.Helper()
	m := bdd.New()
	ma := fsm.New(m)
	x := ma.NewStateBit("x")
	ma.SetNext(x, m.NVarRef(x))
	ma.SetInit(m.NVarRef(x))
	ma.MustSeal()
	return verify.Problem{Machine: ma, Good: bdd.One, Name: "toggle"}
}

func TestToyEngineRunsThroughPublicAPI(t *testing.T) {
	res := verify.Run(toggle(t), toyEngine, verify.Options{})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if res.Method != toyEngine || res.Problem != "toggle" {
		t.Fatalf("harness did not finalize the result: %+v", res)
	}
	if res.MemBytes <= 0 {
		t.Fatalf("missing harness stats: %+v", res)
	}
}

func TestExhaustedResultKeepsPartialStats(t *testing.T) {
	res := verify.Run(toggle(t), abortEngine, verify.Options{})
	if res.Outcome != verify.Exhausted {
		t.Fatalf("outcome %v, want exhausted", res.Outcome)
	}
	if !errors.Is(res.Err, resource.ErrNodeLimit) {
		t.Fatalf("Err = %v, want ErrNodeLimit", res.Err)
	}
	if res.Iterations != 3 {
		t.Fatalf("partial iterations lost: %d", res.Iterations)
	}
	if res.PeakStateNodes != 7 {
		t.Fatalf("partial peak lost: %d", res.PeakStateNodes)
	}
	if len(res.PeakProfile) != 2 || res.PeakProfile[0] != 4 || res.PeakProfile[1] != 3 {
		t.Fatalf("partial profile lost: %v", res.PeakProfile)
	}
}

func TestIterationCapViaBudget(t *testing.T) {
	res := verify.Run(toggle(t), abortEngine,
		verify.Options{Budget: resource.Budget{MaxIterations: 2}})
	if res.Outcome != verify.Exhausted || !errors.Is(res.Err, resource.ErrIterLimit) {
		t.Fatalf("outcome %v, Err %v, want exhausted/ErrIterLimit", res.Outcome, res.Err)
	}
	if res.Cause() != "iteration-cap" {
		t.Fatalf("Cause = %q", res.Cause())
	}
}

func TestBuiltinMethodsAllRegistered(t *testing.T) {
	if len(verify.Methods) != 8 {
		t.Fatalf("Methods = %v, want all eight engines", verify.Methods)
	}
	registered := make(map[verify.Method]bool)
	for _, name := range verify.Registered() {
		registered[name] = true
	}
	for _, meth := range verify.Methods {
		if !registered[meth] {
			t.Fatalf("%s in Methods but not registered", meth)
		}
		if _, ok := verify.Lookup(meth); !ok {
			t.Fatalf("Lookup(%s) failed", meth)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	verify.RegisterFunc(toyEngine, func(c *verify.Ctx, p verify.Problem, opt verify.Options) verify.Result {
		return verify.Result{}
	})
}
