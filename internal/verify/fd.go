package verify

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fsm"
)

func init() { RegisterFunc(FD, runFD) }

// runFD reconstructs the functional-dependency method of Hu & Dill
// ("Reducing BDD Size by Exploiting Functional Dependencies", DAC 1993 —
// ref [16]), the "FD" baseline of Table 1. The user declares that some
// state bits are, on every reachable state, functions of the others; the
// traversal then
//
//  1. checks the dependency holds initially,
//  2. substitutes the dependent bits away everywhere (next-state
//     functions, input constraint, property), shrinking the BDDs of the
//     reachable-state iterates,
//  3. forward-traverses the reduced machine, and
//  4. at each iterate re-checks that the dependency is inductive: from
//     any reached state, the dependent bits' next values equal the
//     defining functions applied to the next values of the others.
//
// If the dependency fails (initially or inductively) the run reports a
// violation: for the models in this repository the declared dependency
// is the property being verified, so this is precisely a property
// violation. With no declared dependencies the method is plain forward
// traversal.
func runFD(c *Ctx, p Problem, opt Options) Result {
	if len(p.Deps) == 0 {
		return runForward(c, p, opt)
	}
	ma := p.Machine
	m := ma.M

	depVars := make(map[bdd.Var]bool, len(p.Deps))
	for _, d := range p.Deps {
		depVars[d.Var] = true
	}
	// Defining functions must be over independent state bits only.
	for _, d := range p.Deps {
		for _, v := range m.Support(d.Def) {
			if depVars[v] {
				return Result{Outcome: Exhausted,
					Why: fmt.Sprintf("dependency for %s defined in terms of dependent variable %s",
						m.VarName(d.Var), m.VarName(v))}
			}
		}
	}

	// Step 1: the dependency must hold in every initial state.
	for _, d := range p.Deps {
		if !m.Implies(ma.Init(), m.Xnor(m.VarRef(d.Var), d.Def)) {
			return Result{Outcome: Violated, Iterations: 0, ViolationDepth: 0,
				Why: fmt.Sprintf("dependency for %s fails on an initial state", m.VarName(d.Var))}
		}
	}

	// Step 2: substitute dependent bits away.
	sigma := m.NewSubstitution()
	for _, d := range p.Deps {
		sigma.Set(d.Var, d.Def)
	}

	// The dependency relation v_d <-> Def_d. On any iterate it has been
	// checked inductive, so conjoining it lifts a reduced reachable set
	// back to the full machine's — which is how counterexample traces
	// are reconstructed below.
	depRel := bdd.One
	for _, d := range p.Deps {
		depRel = m.And(depRel, m.Xnor(m.VarRef(d.Var), d.Def))
	}
	c.Protect(depRel)

	var indep []bdd.Var
	for _, c := range ma.CurVars() {
		if !depVars[c] {
			indep = append(indep, c)
		}
	}

	red := buildReducedImage(ma, sigma, indep)
	c.Protect(red.constraint)
	for _, part := range red.parts {
		c.Protect(part.rel)
		c.Protect(part.quant)
	}

	goodRed := c.Protect(sigma.Compose(p.good()))

	// The inductive-step check: some dependent bit's next value diverges
	// from its definition applied to the next independent values.
	nextIndep := m.NewSubstitution()
	for _, c := range indep {
		nextIndep.Set(c, sigma.Compose(ma.NextFn(c)))
	}
	badDep := bdd.Zero
	for _, d := range p.Deps {
		lhs := sigma.Compose(ma.NextFn(d.Var))
		rhs := nextIndep.Compose(d.Def)
		badDep = m.Or(badDep, m.Xor(lhs, rhs))
	}
	c.Protect(badDep)

	// Step 3/4: forward traversal of the reduced machine.
	r := c.Protect(m.Exists(ma.Init(), m.MkCube(depVarsList(p.Deps))))
	rings := []bdd.Ref{r}
	c.Observe(m.Size(r), nil)

	for i := 0; ; i++ {
		peak, _ := c.Peak()
		if m.AndN(r, red.constraint, badDep) != bdd.Zero {
			return Result{Outcome: Violated, Iterations: i, ViolationDepth: i + 1,
				PeakStateNodes: peak,
				Why:            "functional dependency is not inductive on a reachable state"}
		}
		if !m.Implies(r, goodRed) {
			res := Result{Outcome: Violated, Iterations: i, ViolationDepth: i, PeakStateNodes: peak}
			if opt.WantTrace {
				// Lift the reduced rings back to full-machine rings: the
				// dependency held inductively up to here, so each lifted
				// ring is exactly the corresponding full reachable
				// iterate, and the standard onion-ring walk applies.
				lifted := make([]bdd.Ref, len(rings))
				for j, rr := range rings {
					lifted[j] = m.And(rr, depRel)
				}
				res.Trace = traceFromRings(ma, lifted, p.good().Not())
			}
			return res
		}
		if res, stop := c.Tick(i); stop {
			return res
		}

		stop := c.Phase(PhaseImage)
		rn := c.Protect(m.Or(r, red.image(r)))
		stop()
		c.Observe(m.Size(rn), nil)
		conv := rn == r // canonical Ref equality: the fixpoint test is free
		c.EmitTermResolved(conv)
		if conv {
			peak, _ := c.Peak()
			return Result{Outcome: Verified, Iterations: i + 1, PeakStateNodes: peak}
		}
		r = rn
		rings = append(rings, r)
		c.MaybeGC(i)
	}
}

func depVarsList(deps []Dependency) []bdd.Var {
	out := make([]bdd.Var, len(deps))
	for i, d := range deps {
		out[i] = d.Var
	}
	return out
}

// reducedImage is the partitioned image computation of the reduced
// machine (dependent bits substituted away), with the same
// early-quantification scheduling as the full machine.
type reducedImage struct {
	ma         *fsm.Machine
	constraint bdd.Ref
	parts      []struct {
		rel   bdd.Ref
		quant bdd.Ref
	}
	seedQuant bdd.Ref
	nextVars  []bdd.Var
	curVars   []bdd.Var
}

func buildReducedImage(ma *fsm.Machine, sigma *bdd.Substitution, indep []bdd.Var) *reducedImage {
	m := ma.M
	red := &reducedImage{ma: ma, constraint: sigma.Compose(ma.InputConstraint()), curVars: indep}

	red.parts = make([]struct{ rel, quant bdd.Ref }, len(indep))
	support := make([][]bdd.Var, len(indep))
	red.nextVars = make([]bdd.Var, len(indep))
	for i, c := range indep {
		red.nextVars[i] = ma.NextVar(c)
		rel := m.Xnor(m.VarRef(red.nextVars[i]), sigma.Compose(ma.NextFn(c)))
		red.parts[i].rel = rel
		support[i] = m.Support(rel)
	}

	lastUse := make(map[bdd.Var]int)
	for _, v := range indep {
		lastUse[v] = -1
	}
	for _, v := range ma.InputVars() {
		lastUse[v] = -1
	}
	isQuantifiable := func(v bdd.Var) bool {
		_, ok := lastUse[v]
		return ok
	}
	for i, sup := range support {
		for _, v := range sup {
			if isQuantifiable(v) {
				lastUse[v] = i
			}
		}
	}
	for i := range red.parts {
		var cube []bdd.Var
		for v, last := range lastUse {
			if last == i {
				cube = append(cube, v)
			}
		}
		red.parts[i].quant = m.MkCube(cube)
	}
	var seed []bdd.Var
	for v, last := range lastUse {
		if last == -1 {
			seed = append(seed, v)
		}
	}
	red.seedQuant = m.MkCube(seed)
	return red
}

// image computes the reduced machine's forward image of z (a set over
// the independent current-state variables).
func (red *reducedImage) image(z bdd.Ref) bdd.Ref {
	m := red.ma.M
	acc := m.And(z, red.constraint)
	acc = m.Exists(acc, red.seedQuant)
	for _, p := range red.parts {
		acc = m.AndExists(acc, p.rel, p.quant)
		if acc == bdd.Zero {
			return bdd.Zero
		}
	}
	return m.Rename(acc, red.nextVars, red.curVars)
}
