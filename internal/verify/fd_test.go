package verify

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fsm"
)

// parityMachine builds a w-bit counter that also maintains a parity bit
// alongside it. The functional dependency is parity == xor of the
// counter bits. bug, if true, breaks the parity update.
func parityMachine(t testing.TB, w int, bug bool) (Problem, *fsm.Machine) {
	t.Helper()
	m := bdd.New()
	ma := fsm.New(m)
	bits := ma.NewStateBits("c", w)
	parity := ma.NewStateBit("par")
	step := ma.NewInputBit("step")

	carry := m.VarRef(step)
	nextXor := bdd.Zero
	initSet := m.NVarRef(parity)
	for _, b := range bits {
		v := m.VarRef(b)
		nv := m.Xor(v, carry)
		ma.SetNext(b, nv)
		nextXor = m.Xor(nextXor, nv)
		carry = m.And(carry, v)
		initSet = m.And(initSet, v.Not())
	}
	if bug {
		// Forgets to flip on wraparound steps: uses xor of CURRENT bits.
		cur := bdd.Zero
		for _, b := range bits {
			cur = m.Xor(cur, m.VarRef(b))
		}
		ma.SetNext(parity, m.ITE(m.VarRef(step), cur, m.VarRef(parity)))
	} else {
		ma.SetNext(parity, nextXor)
	}
	ma.SetInit(initSet)
	ma.MustSeal()

	xorAll := bdd.Zero
	for _, b := range bits {
		xorAll = m.Xor(xorAll, m.VarRef(b))
	}
	return Problem{
		Machine: ma,
		Good:    m.Xnor(m.VarRef(parity), xorAll),
		Deps:    []Dependency{{Var: parity, Def: xorAll}},
		Name:    "parity",
	}, ma
}

func TestFDVerifiesParity(t *testing.T) {
	p, _ := parityMachine(t, 4, false)
	res := Run(p, FD, Options{})
	if res.Outcome != Verified {
		t.Fatalf("FD outcome %v (%s)", res.Outcome, res.Why)
	}
	// Cross-check against the other engines.
	for _, method := range []Method{Forward, Backward, XICI} {
		if r := Run(p, method, Options{}); r.Outcome != Verified {
			t.Fatalf("%s outcome %v", method, r.Outcome)
		}
	}
	// FD's reduced iterates must be smaller than plain forward's: the
	// dependent bit is projected away.
	fwd := Run(p, Forward, Options{})
	if res.PeakStateNodes > fwd.PeakStateNodes {
		t.Fatalf("FD peak %d above Forward peak %d", res.PeakStateNodes, fwd.PeakStateNodes)
	}
}

func TestFDCatchesBrokenDependency(t *testing.T) {
	p, _ := parityMachine(t, 4, true)
	res := Run(p, FD, Options{})
	if res.Outcome != Violated {
		t.Fatalf("FD outcome %v, want violated", res.Outcome)
	}
	// The bug is real: forward traversal agrees.
	if r := Run(p, Forward, Options{}); r.Outcome != Violated {
		t.Fatalf("Forward outcome %v, want violated", r.Outcome)
	}
}

// TestFDCatchesNonInitialDependency seeds a machine whose initial state
// already breaks the declared dependency (parity starts at 1 under an
// all-zero counter): FD must flag it at depth 0.
func TestFDCatchesNonInitialDependency(t *testing.T) {
	m := bdd.New()
	ma := fsm.New(m)
	bits := ma.NewStateBits("c", 3)
	parity := ma.NewStateBit("par")
	step := ma.NewInputBit("step")

	carry := m.VarRef(step)
	nextXor := bdd.Zero
	for _, b := range bits {
		v := m.VarRef(b)
		nv := m.Xor(v, carry)
		ma.SetNext(b, nv)
		nextXor = m.Xor(nextXor, nv)
		carry = m.And(carry, v)
	}
	ma.SetNext(parity, nextXor)

	badInit := m.VarRef(parity) // parity=1 while counter is 0: inconsistent
	for _, b := range bits {
		badInit = m.And(badInit, m.NVarRef(b))
	}
	ma.SetInit(badInit)
	ma.MustSeal()

	xorAll := bdd.Zero
	for _, b := range bits {
		xorAll = m.Xor(xorAll, m.VarRef(b))
	}
	p := Problem{
		Machine: ma,
		Good:    m.Xnor(m.VarRef(parity), xorAll),
		Deps:    []Dependency{{Var: parity, Def: xorAll}},
		Name:    "badInitParity",
	}
	res := Run(p, FD, Options{})
	if res.Outcome != Violated || res.ViolationDepth != 0 {
		t.Fatalf("FD on broken init: %v depth %d", res.Outcome, res.ViolationDepth)
	}
}

func TestFDWithoutDepsIsForward(t *testing.T) {
	p, _ := parityMachine(t, 3, false)
	noDeps := p
	noDeps.Deps = nil
	fd := Run(noDeps, FD, Options{})
	fwd := Run(noDeps, Forward, Options{})
	if fd.Outcome != fwd.Outcome || fd.Iterations != fwd.Iterations ||
		fd.PeakStateNodes != fwd.PeakStateNodes {
		t.Fatalf("FD without deps differs from Forward: %+v vs %+v", fd, fwd)
	}
}

func TestFDRejectsCyclicDependencies(t *testing.T) {
	p, ma := parityMachine(t, 3, false)
	m := ma.M
	// Define the dependency in terms of itself: illegal.
	p.Deps = []Dependency{{Var: p.Deps[0].Var, Def: m.VarRef(p.Deps[0].Var)}}
	res := Run(p, FD, Options{})
	if res.Outcome != Exhausted {
		t.Fatalf("cyclic dependency: outcome %v, want exhausted with error", res.Outcome)
	}
}
