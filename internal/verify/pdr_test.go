package verify

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/resource"
)

func TestPDRVerifiesTypedFIFO(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	res := Run(p, PDR, Options{})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if res.Iterations <= 0 {
		t.Fatal("verified with no frame levels")
	}
	if res.PeakStateNodes <= 0 {
		t.Fatal("no peak node count")
	}
}

func TestPDRFindsShortestCounterexample(t *testing.T) {
	p, ma := tinyFIFO(t, 3, 3, 5, true)
	fwd := Run(p, Forward, Options{WantTrace: true})
	pdr := Run(p, PDR, Options{WantTrace: true})
	if fwd.Outcome != Violated || pdr.Outcome != Violated {
		t.Fatalf("outcomes: fwd %v, pdr %v", fwd.Outcome, pdr.Outcome)
	}
	if pdr.ViolationDepth != fwd.ViolationDepth {
		t.Fatalf("PDR depth %d, forward (shortest) depth %d", pdr.ViolationDepth, fwd.ViolationDepth)
	}
	if pdr.Trace == nil {
		t.Fatal("no trace")
	}
	if pdr.Trace.Len() != pdr.ViolationDepth {
		t.Fatalf("trace length %d != depth %d", pdr.Trace.Len(), pdr.ViolationDepth)
	}
	if err := pdr.Trace.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
}

// TestPDRDepthZeroViolation: an initial state already violating the
// property is reported at depth 0 with an empty (but valid) trace.
func TestPDRDepthZeroViolation(t *testing.T) {
	m := bdd.New()
	ma := fsm.New(m)
	x := ma.NewStateBit("x")
	ma.SetNext(x, bdd.One)
	ma.SetInit(m.NVarRef(x))
	ma.MustSeal()
	p := Problem{Machine: ma, GoodList: []bdd.Ref{m.VarRef(x)}, Name: "depth0"}

	res := Run(p, PDR, Options{WantTrace: true})
	if res.Outcome != Violated || res.ViolationDepth != 0 {
		t.Fatalf("outcome %v depth %d, want violated at depth 0", res.Outcome, res.ViolationDepth)
	}
	if res.Trace == nil || res.Trace.Len() != 0 {
		t.Fatalf("depth-0 trace: %+v", res.Trace)
	}
	if err := res.Trace.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("invalid depth-0 trace: %v", err)
	}
}

func TestPDRNodeLimitExhaustion(t *testing.T) {
	p, _ := tinyFIFO(t, 4, 4, 9, false)
	res := Run(p, PDR, Options{Budget: resource.Budget{NodeLimit: 50}})
	if res.Outcome != Exhausted {
		t.Fatalf("outcome %v, want exhausted", res.Outcome)
	}
	if res.Why == "" {
		t.Fatal("no exhaustion reason")
	}
	// The manager stays usable after the abort.
	if res2 := Run(p, PDR, Options{}); res2.Outcome != Verified {
		t.Fatalf("manager unusable after exhaustion: %v (%s)", res2.Outcome, res2.Why)
	}
}

// TestPDRFramePolicyAblation: skipping the Section III.A frame policy
// (no cross-simplification, no greedy merging) changes effort only,
// never verdicts or depths.
func TestPDRFramePolicyAblation(t *testing.T) {
	for _, bug := range []bool{false, true} {
		p, _ := tinyFIFO(t, 3, 2, 4, bug)
		base := Run(p, PDR, Options{})
		var opt Options
		opt.Core.SkipSimplify = true
		opt.Core.SkipEvaluate = true
		abl := Run(p, PDR, opt)
		if abl.Outcome != base.Outcome || abl.ViolationDepth != base.ViolationDepth {
			t.Fatalf("bug=%v: ablation (%v, depth %d) vs base (%v, depth %d)",
				bug, abl.Outcome, abl.ViolationDepth, base.Outcome, base.ViolationDepth)
		}
	}
}

// TestPDRWithGC: frames and learned clauses must be protected across
// collections; a per-level GC cadence changes nothing.
func TestPDRWithGC(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	if res := Run(p, PDR, Options{GCEvery: 1}); res.Outcome != Verified {
		t.Fatalf("PDR with GC: %v (%s)", res.Outcome, res.Why)
	}
	pb, ma := tinyFIFO(t, 3, 3, 5, true)
	res := Run(pb, PDR, Options{GCEvery: 1, WantTrace: true})
	if res.Outcome != Violated || res.Trace == nil {
		t.Fatalf("PDR with GC on bug: %v", res.Outcome)
	}
	if err := res.Trace.Validate(ma, pb.goodList()); err != nil {
		t.Fatal(err)
	}
}

// TestResolveMethodNames: the case-insensitive lookup behind every
// -engines / -method flag and the icid engine option.
func TestResolveMethodNames(t *testing.T) {
	cases := []struct {
		in   string
		want Method
		ok   bool
	}{
		{"PDR", PDR, true},
		{"pdr", PDR, true},
		{"Pdr", PDR, true},
		{"XICI", XICI, true},
		{"xici", XICI, true},
		{"fwdid", ForwardID, true},
		{"nope", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		got, ok := Resolve(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Resolve(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
