package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is one verification algorithm. Engines self-register in their
// file's init() via Register or RegisterFunc; Run resolves methods
// through the registry only, so adding an engine is a one-file change —
// no switch to edit, and an Engine registered from outside this package
// (a test file, an experiment) runs through the public API unchanged.
//
// Run receives the harness context c — budget checkpoints, GC root
// bookkeeping, and the partial-statistics sink consulted when the run
// aborts on a resource overrun — and must confine itself to the
// algorithm's core loop: the harness owns budget installation, Guard
// recovery, and Result finalization.
type Engine interface {
	Name() Method
	Run(c *Ctx, p Problem, opt Options) Result
}

// engineFunc adapts a plain function to the Engine interface.
type engineFunc struct {
	name Method
	fn   func(c *Ctx, p Problem, opt Options) Result
}

func (e engineFunc) Name() Method                              { return e.name }
func (e engineFunc) Run(c *Ctx, p Problem, opt Options) Result { return e.fn(c, p, opt) }

// registry maps method names to engines. It is written during init()
// (and, in tests, from other init functions) and read-only afterwards;
// like the rest of the package it is not synchronized.
var registry = map[Method]Engine{}

// Register adds an engine to the registry. Registering a name twice is
// a programming error and panics.
func Register(e Engine) {
	name := e.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("verify: duplicate engine registration %q", name))
	}
	registry[name] = e
}

// RegisterFunc registers a plain function as an engine.
func RegisterFunc(name Method, fn func(c *Ctx, p Problem, opt Options) Result) {
	Register(engineFunc{name: name, fn: fn})
}

// Lookup returns the engine registered under name.
func Lookup(name Method) (Engine, bool) {
	e, ok := registry[name]
	return e, ok
}

// Resolve looks a method name up case-insensitively: flag plumbing
// ("-engines pdr") and the HTTP API accept any casing of a registered
// name. An exact match wins; otherwise the unique case-insensitive
// match is returned, and ok is false when none (or several) exist.
func Resolve(name string) (Method, bool) {
	if _, ok := registry[Method(name)]; ok {
		return Method(name), true
	}
	var found Method
	n := 0
	for meth := range registry {
		if strings.EqualFold(string(meth), name) {
			found = meth
			n++
		}
	}
	return found, n == 1
}

// Registered returns every registered method name, sorted. Unlike
// Methods (the paper's table order, built-in engines only) this includes
// engines registered from outside the package.
func Registered() []Method {
	out := make([]Method, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
