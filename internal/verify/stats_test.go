// Observability-layer tests: Result stats plumbing, the Observer event
// stream, per-phase timers, and the idempotent GC-root protection. In
// package verify_test for the same reason as parallel_test.go.
package verify_test

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/resource"
	"repro/internal/verify"
)

// recorder is a test Observer that counts events.
type recorder struct {
	iterations []verify.IterationEvent
	merges     []verify.MergeEvent
	terms      []verify.TermEvent
}

func (r *recorder) OnIteration(e verify.IterationEvent) { r.iterations = append(r.iterations, e) }
func (r *recorder) OnMerge(e verify.MergeEvent)         { r.merges = append(r.merges, e) }
func (r *recorder) OnTermResolved(e verify.TermEvent)   { r.terms = append(r.terms, e) }

// TestResultCarriesEffortStats: an XICI run under the default exact
// termination test must surface non-zero TermStats and EvalStats on the
// Result, a size trajectory whose maximum is the reported peak, and the
// bucket invariant on the termination counters.
func TestResultCarriesEffortStats(t *testing.T) {
	p := models.NewFIFO(bdd.New(), models.DefaultFIFO(3))
	res := verify.Run(p, verify.XICI, verify.Options{})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v: %s", res.Outcome, res.Why)
	}
	if res.Term.TautCalls == 0 {
		t.Error("no tautology calls reported — TermStats not plumbed")
	}
	if res.Term.Resolved()+res.Term.ShannonSplits != res.Term.TautCalls {
		t.Errorf("bucket invariant broken: %+v", res.Term)
	}
	if res.Eval.PairsScored == 0 || res.Eval.Rounds == 0 {
		t.Errorf("no evaluation effort reported: %+v", res.Eval)
	}
	if len(res.SizeTrajectory) != res.Iterations+1 {
		t.Errorf("trajectory has %d entries for %d iterations", len(res.SizeTrajectory), res.Iterations)
	}
	max := 0
	for _, s := range res.SizeTrajectory {
		if s > max {
			max = s
		}
	}
	if max != res.PeakStateNodes {
		t.Errorf("trajectory max %d != peak %d", max, res.PeakStateNodes)
	}
	if res.PhaseDurations.Total() > res.Elapsed {
		t.Errorf("attributed phase time %v exceeds elapsed %v", res.PhaseDurations.Total(), res.Elapsed)
	}
}

// TestObserverEventStream: the Observer sees one OnIteration per
// trajectory entry, OnMerge exactly MergesApplied times, and at least
// one OnTermResolved whose final event reports convergence with the
// run's cumulative counters.
func TestObserverEventStream(t *testing.T) {
	p := models.NewFIFO(bdd.New(), models.DefaultFIFO(3))
	rec := &recorder{}
	res := verify.Run(p, verify.XICI, verify.Options{Observer: rec})
	if res.Outcome != verify.Verified {
		t.Fatalf("outcome %v: %s", res.Outcome, res.Why)
	}
	if len(rec.iterations) != len(res.SizeTrajectory) {
		t.Errorf("%d OnIteration events for %d trajectory entries",
			len(rec.iterations), len(res.SizeTrajectory))
	}
	for i, e := range rec.iterations {
		if e.Index != i || e.SharedNodes != res.SizeTrajectory[i] {
			t.Errorf("iteration event %d = %+v, want index %d size %d",
				i, e, i, res.SizeTrajectory[i])
		}
	}
	if len(rec.merges) != res.Eval.MergesApplied {
		t.Errorf("%d OnMerge events for %d merges", len(rec.merges), res.Eval.MergesApplied)
	}
	if len(rec.terms) == 0 {
		t.Fatal("no OnTermResolved events")
	}
	last := rec.terms[len(rec.terms)-1]
	if !last.Converged {
		t.Error("final termination event did not report convergence")
	}
	if last.Stats != res.Term {
		t.Errorf("final term snapshot %+v != result %+v", last.Stats, res.Term)
	}
}

// TestObserverAllEngines: every registered engine must emit iteration
// and termination events on a problem it can decide.
func TestObserverAllEngines(t *testing.T) {
	for _, meth := range verify.Methods {
		p := models.NewFIFO(bdd.New(), models.DefaultFIFO(2))
		rec := &recorder{}
		res := verify.Run(p, meth, verify.Options{Observer: rec})
		if res.Outcome == verify.Exhausted && meth != verify.Induction {
			t.Errorf("%s: unexpected exhaustion: %s", meth, res.Why)
			continue
		}
		if len(rec.iterations) == 0 {
			t.Errorf("%s: no OnIteration events", meth)
		}
		if len(rec.terms) == 0 {
			t.Errorf("%s: no OnTermResolved events", meth)
		}
		if len(rec.iterations) != len(res.SizeTrajectory) {
			t.Errorf("%s: %d iteration events vs %d trajectory entries",
				meth, len(rec.iterations), len(res.SizeTrajectory))
		}
	}
}

// TestExhaustedKeepsPartialStats: a run aborted by the iteration cap
// still reports the effort spent before the abort.
func TestExhaustedKeepsPartialStats(t *testing.T) {
	p := models.NewPipeline(bdd.New(), models.PipelineConfig{Regs: 2, Width: 1, Assist: true})
	res := verify.Run(p, verify.XICI, verify.Options{
		Budget: resource.Budget{MaxIterations: 2},
	})
	if res.Outcome != verify.Exhausted {
		t.Fatalf("outcome %v, want exhausted", res.Outcome)
	}
	if res.Term.TautCalls == 0 || res.Eval.PairsScored == 0 {
		t.Errorf("partial stats lost on abort: term %+v eval %+v", res.Term, res.Eval)
	}
	if len(res.SizeTrajectory) == 0 {
		t.Error("partial trajectory lost on abort")
	}
}

// TestStatsPerRunAcrossRuns is the regression test for the stats-reuse
// bug: a caller keeping one Options value (with a shared EvalStats sink)
// across runs used to see the counters silently accumulate run over run,
// breaking the TermStats bucket invariant for any single run and turning
// MaxSplitDepth into a cross-run max. Each run must now report its own
// counters alone — both on the Result and in the caller's sink.
func TestStatsPerRunAcrossRuns(t *testing.T) {
	m := bdd.New()
	p := models.NewFIFO(m, models.DefaultFIFO(3))
	var sink core.EvalStats
	opt := verify.Options{Core: core.Options{Stats: &sink}}

	first := verify.Run(p, verify.XICI, opt)
	if first.Outcome != verify.Verified {
		t.Fatalf("outcome %v: %s", first.Outcome, first.Why)
	}
	if sink != first.Eval {
		t.Errorf("caller sink %+v != first run's Eval %+v", sink, first.Eval)
	}

	second := verify.Run(p, verify.XICI, opt)
	if second.Outcome != verify.Verified {
		t.Fatalf("second outcome %v: %s", second.Outcome, second.Why)
	}
	if second.Eval != first.Eval {
		t.Errorf("Eval accumulated across runs: first %+v, second %+v", first.Eval, second.Eval)
	}
	if second.Term != first.Term {
		t.Errorf("Term accumulated across runs: first %+v, second %+v", first.Term, second.Term)
	}
	if sink != second.Eval {
		t.Errorf("caller sink %+v != second run's Eval %+v (accumulated?)", sink, second.Eval)
	}
	for run, term := range map[string]core.TermStats{"first": first.Term, "second": second.Term} {
		if term.Resolved()+term.ShannonSplits != term.TautCalls {
			t.Errorf("%s run breaks the bucket invariant: %+v", run, term)
		}
	}
}

// TestTermSkipStep3Exact: the ablation knob must not change verdicts —
// the test stays exact with step 3 disabled, and no call may resolve in
// the step-3 bucket.
func TestTermSkipStep3Exact(t *testing.T) {
	base := verify.Run(models.NewFIFO(bdd.New(), models.DefaultFIFO(3)), verify.XICI, verify.Options{})
	skip := verify.Run(models.NewFIFO(bdd.New(), models.DefaultFIFO(3)), verify.XICI, verify.Options{TermSkipStep3: true})
	if base.Outcome != verify.Verified || skip.Outcome != verify.Verified {
		t.Fatalf("outcomes %v / %v, want verified", base.Outcome, skip.Outcome)
	}
	if skip.Iterations != base.Iterations {
		t.Errorf("SkipStep3 changed the verdict path: %d vs %d iterations", skip.Iterations, base.Iterations)
	}
	if skip.Term.StepResolved[1] != 0 {
		t.Errorf("step-3 bucket nonzero with SkipStep3: %+v", skip.Term)
	}
}

// TestGCProtectIdempotentAcrossRuns is the regression test for the
// unbounded-refcount bug: re-running the same problem with GCEvery > 0
// on one manager used to re-Protect the machine and property Refs each
// time, inflating their counts without bound. Permanent protection is
// now idempotent per manager, so a second (and k-th) run must leave the
// refcounts exactly where the first run left them.
func TestGCProtectIdempotentAcrossRuns(t *testing.T) {
	m := bdd.New()
	p := models.NewFIFO(m, models.DefaultFIFO(2))
	opt := verify.Options{GCEvery: 1}

	refs := func() map[bdd.Ref]int {
		out := make(map[bdd.Ref]int)
		out[p.Good] = m.ExternalRefs(p.Good)
		for _, g := range p.GoodList {
			out[g] = m.ExternalRefs(g)
		}
		out[p.Machine.Init()] = m.ExternalRefs(p.Machine.Init())
		return out
	}

	first := verify.Run(p, verify.XICI, opt)
	if first.Outcome != verify.Verified {
		t.Fatalf("outcome %v: %s", first.Outcome, first.Why)
	}
	after1 := refs()

	for run := 2; run <= 4; run++ {
		res := verify.Run(p, verify.XICI, opt)
		if res.Outcome != first.Outcome || res.Iterations != first.Iterations {
			t.Fatalf("run %d diverged: %+v vs %+v", run, res, first)
		}
		for r, n := range refs() {
			if n != after1[r] {
				t.Fatalf("run %d: refcount of %v grew from %d to %d", run, r, after1[r], n)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
