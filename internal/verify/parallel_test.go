// Parallel-evaluation crosschecks on the paper models. This file lives
// in package verify_test because internal/models imports internal/verify
// (its constructors return verify.Problem).
package verify_test

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/verify"
)

// paperProblems builds small instances of the paper's models, fresh
// managers each call so runs do not share computed-cache state.
func paperProblems() []verify.Problem {
	return []verify.Problem{
		models.NewFIFO(bdd.New(), models.DefaultFIFO(3)),
		models.NewNetwork(bdd.New(), models.NetworkConfig{Procs: 2}),
		models.NewFilter(bdd.New(), models.FilterConfig{Depth: 4, SampleWidth: 4}),
		models.NewPipeline(bdd.New(), models.PipelineConfig{Regs: 2, Width: 1, Assist: true}),
	}
}

// TestXICIParallelMatchesSequential: the XICI engine with parallel pair
// scoring must report the same verdict and the same table statistics as
// the sequential engine on every paper model. With no pair budget in
// play the traversal is bit-identical, so Iterations, PeakStateNodes,
// and the per-conjunct peak profile all match exactly.
func TestXICIParallelMatchesSequential(t *testing.T) {
	for _, p := range paperProblems() {
		seq := verify.Run(p, verify.XICI, verify.Options{})
		parl := verify.Run(p, verify.XICI, verify.Options{Workers: 3})
		if parl.Outcome != seq.Outcome || parl.Why != seq.Why {
			t.Fatalf("%s: outcome %v (%s) != sequential %v (%s)",
				p.Name, parl.Outcome, parl.Why, seq.Outcome, seq.Why)
		}
		if parl.Iterations != seq.Iterations {
			t.Errorf("%s: iterations %d != %d", p.Name, parl.Iterations, seq.Iterations)
		}
		if parl.PeakStateNodes != seq.PeakStateNodes {
			t.Errorf("%s: peak nodes %d != %d", p.Name, parl.PeakStateNodes, seq.PeakStateNodes)
		}
		if len(parl.PeakProfile) != len(seq.PeakProfile) {
			t.Errorf("%s: peak profile arity %v != %v", p.Name, parl.PeakProfile, seq.PeakProfile)
		} else {
			for i := range seq.PeakProfile {
				if parl.PeakProfile[i] != seq.PeakProfile[i] {
					t.Errorf("%s: peak profile %v != %v", p.Name, parl.PeakProfile, seq.PeakProfile)
					break
				}
			}
		}
		// The effort counters fall under the same determinism contract:
		// with PairBudgetFactor == 0 the parallel run issues the same
		// pair sequence and the same termination tests, so Eval and
		// Term must match field for field, and the size trajectories
		// must be identical.
		if parl.Eval != seq.Eval {
			t.Errorf("%s: eval stats %+v != sequential %+v", p.Name, parl.Eval, seq.Eval)
		}
		if parl.Term != seq.Term {
			t.Errorf("%s: term stats %+v != sequential %+v", p.Name, parl.Term, seq.Term)
		}
		if len(parl.SizeTrajectory) != len(seq.SizeTrajectory) {
			t.Errorf("%s: trajectory %v != %v", p.Name, parl.SizeTrajectory, seq.SizeTrajectory)
		} else {
			for i := range seq.SizeTrajectory {
				if parl.SizeTrajectory[i] != seq.SizeTrajectory[i] {
					t.Errorf("%s: trajectory %v != %v", p.Name, parl.SizeTrajectory, seq.SizeTrajectory)
					break
				}
			}
		}
	}
}

// TestXICIWorkersViaCoreOptions: Workers set directly on Core behaves
// the same as the top-level convenience field.
func TestXICIWorkersViaCoreOptions(t *testing.T) {
	p := models.NewFIFO(bdd.New(), models.DefaultFIFO(3))
	a := verify.Run(p, verify.XICI, verify.Options{Workers: 2})
	b := verify.Run(p, verify.XICI, verify.Options{Core: core.Options{Workers: 2}})
	if a.Outcome != b.Outcome || a.Iterations != b.Iterations || a.PeakStateNodes != b.PeakStateNodes {
		t.Fatalf("Workers plumbing mismatch: %+v vs %+v", a, b)
	}
}

// TestEvaluateGreedyParallelOnPaperList reconstructs the first XICI
// iterate of the filter traversal (the BenchmarkAblationGreedyVsOptimal
// recipe) and checks that parallel evaluation of that paper-derived list
// is pointwise Ref-equal to sequential evaluation on the same manager.
func TestEvaluateGreedyParallelOnPaperList(t *testing.T) {
	m := bdd.New()
	p := models.NewFilter(m, models.FilterConfig{Depth: 4, SampleWidth: 4})
	ma := p.Machine

	g0 := []bdd.Ref{p.Good}
	l := core.NewList(m, g0...)
	back := ma.BackImageList(l.Conjuncts)
	raw := core.NewList(m, append(g0, back...)...)
	raw = core.CrossSimplify(raw, bdd.UseRestrict)

	seq := core.EvaluateGreedy(raw, core.Options{})
	for _, workers := range []int{1, 2, 4} {
		parl := core.EvaluateGreedy(raw, core.Options{Workers: workers})
		if len(parl.Conjuncts) != len(seq.Conjuncts) {
			t.Fatalf("workers=%d: arity %d != %d", workers, len(parl.Conjuncts), len(seq.Conjuncts))
		}
		for i := range seq.Conjuncts {
			if parl.Conjuncts[i] != seq.Conjuncts[i] {
				t.Fatalf("workers=%d: conjunct %d differs", workers, i)
			}
		}
	}
}
