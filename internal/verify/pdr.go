package verify

import (
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
)

// PDR is the IC3/PDR engine run over the implicit-conjunction
// substrate. Its frame sequence F_0 .. F_k is exactly what the paper's
// core machinery represents natively: each frame is an implicitly
// conjoined list of clauses, relative-induction queries are the
// list-implication test of Section III.B, and frame maintenance
// (clause propagation, cross-simplification, greedy merging) reuses
// the Section III.A policy unchanged.
const PDR Method = "PDR"

func init() { RegisterFunc(PDR, runPDR) }

// pdrRun carries the engine state through one run. frames[0] is the
// initial-state list [init]; frames[i] for i >= 1 is a clause list
// over-approximating the states reachable in at most i steps. The
// frames are monotone (F_i ⊆ F_{i+1} as state sets) because every
// clause learned at level i is added to frames 1..i, and policy
// restructuring preserves each frame's conjunction exactly.
type pdrRun struct {
	c      *Ctx
	ma     *fsm.Machine
	m      *bdd.Manager
	init   bdd.Ref
	term   core.Termination
	copt   core.Options
	frames []core.List
}

// runPDR implements property-directed reachability:
//
//   - find a concrete state in F_k ∧ ¬P and block it by learning a
//     relatively inductive clause, recursing on concrete predecessors
//     when the relative-induction query fails (the obligation stack);
//   - generalize each learned clause by dropping cube literals while
//     it stays initiation-safe and relatively inductive;
//   - after level k is blocked, push clauses forward frame by frame and
//     declare the property verified when some F_i ≡ F_{i+1} (the exact
//     list-equality test — an equal frame is an inductive invariant).
//
// A counterexample is reported only when an obligation chain reaches an
// initial state; because every level below k is fully blocked first,
// the chain's length is the shortest violating path, matching the
// depth contract of the other engines.
func runPDR(c *Ctx, p Problem, opt Options) Result {
	ma := p.Machine
	m := ma.M

	init := ma.Init()
	goods := p.goodList()
	c.Protect(init)
	for _, g := range goods {
		c.Protect(g)
	}

	// Depth 0: an initial state may already violate the property.
	if s := pdrBadIn(m, init, goods); s != nil {
		res := Result{Outcome: Violated, Iterations: 0, ViolationDepth: 0}
		if opt.WantTrace {
			res.Trace = &Trace{States: [][]bool{s}}
		}
		return res
	}

	e := &pdrRun{
		c:    c,
		ma:   ma,
		m:    m,
		init: init,
		term: c.Termination(),
		copt: c.CoreOptions(),
		frames: []core.List{
			core.NewList(m, init), // F_0
			core.NewList(m),       // F_1 = true, to be strengthened
		},
	}
	c.Observe(e.frames[1].SharedSize(), e.frames[1].Sizes())

	for k := 1; ; k++ {
		if res, stop := c.Tick(k); stop {
			return res
		}

		// Blocking phase: empty F_k ∧ ¬P one concrete state at a time.
		for {
			bad := e.frameBad(k, goods)
			if bad == nil {
				break
			}
			chain, blocked := e.block(bad, k)
			if !blocked {
				peak, profile := c.Peak()
				res := Result{
					Outcome:        Violated,
					Iterations:     k,
					ViolationDepth: len(chain) - 1,
					PeakStateNodes: peak,
					PeakProfile:    profile,
				}
				if opt.WantTrace {
					res.Trace = e.traceFromChain(chain)
				}
				return res
			}
		}

		// Open F_{k+1}, push clauses forward, and look for a fixpoint.
		e.frames = append(e.frames, core.NewList(m))
		if e.propagate(k) {
			peak, profile := c.Peak()
			return Result{Outcome: Verified, Iterations: k, PeakStateNodes: peak, PeakProfile: profile}
		}
		c.Observe(e.frames[k].SharedSize(), e.frames[k].Sizes())
		c.MaybeGC(k)
	}
}

// pdrBadIn returns a concrete state of set violating some conjunct of
// the property, or nil when set ⇒ ∧goods.
func pdrBadIn(m *bdd.Manager, set bdd.Ref, goods []bdd.Ref) []bool {
	for _, g := range goods {
		if d := m.Diff(set, g); d != bdd.Zero {
			return m.SatAssignment(d)
		}
	}
	return nil
}

// frameBad returns a concrete state of F_k violating the property, or
// nil when the level is fully blocked. The frame's conjuncts are
// conjoined into the violation one at a time with an early Zero exit,
// so the monolithic frame BDD is built only on the (rare) path that
// actually yields a state.
func (e *pdrRun) frameBad(k int, goods []bdd.Ref) []bool {
	for _, g := range goods {
		acc := g.Not()
		for _, cj := range e.frames[k].Conjuncts {
			acc = e.m.ParAnd(acc, cj)
			if acc == bdd.Zero {
				break
			}
		}
		if acc != bdd.Zero {
			return e.m.SatAssignment(acc)
		}
	}
	return nil
}

// block removes the concrete state bad from frame ki by strengthening
// frames 1..ki with relatively inductive clauses. It reports blocked =
// false when an obligation chain reaches an initial state; the returned
// chain then lists the states of a real violating path, initial state
// first, bad last.
func (e *pdrRun) block(bad []bool, ki int) (chain [][]bool, blocked bool) {
	stack := [][]bool{bad} // stack[d] is the obligation at frame ki-d
	for len(stack) > 0 {
		d := len(stack) - 1
		i := ki - d
		s := stack[d]
		cube := stateCube(e.ma, s)

		if i == 0 || e.m.And(e.init, cube) != bdd.Zero {
			// The chain reached an initial state: a concrete violating
			// path exists, one transition per stack edge.
			chain = make([][]bool, len(stack))
			for j := range stack {
				chain[j] = stack[len(stack)-1-j]
			}
			return chain, false
		}

		if e.relativelyInductive(cube.Not(), i) {
			clause := e.generalize(s, i)
			e.addClause(clause, i)
			stack = stack[:d] // resolved; the parent is re-examined next
			continue
		}

		// ¬s is not inductive relative to F_{i-1}: some state of F_{i-1}
		// steps into s. Block that predecessor one frame down first.
		stop := e.c.Phase(PhaseImage)
		pred := e.ma.PreImageWithin(cube, e.frames[i-1].Conjuncts)
		stop()
		t := e.m.SatAssignment(pred)
		if t == nil {
			panic("verify: pdr: relative induction failed without a predecessor")
		}
		stack = append(stack, t)
	}
	return nil, true
}

// relativelyInductive reports whether the clause is inductive relative
// to F_{i-1}: F_{i-1} ∧ clause ∧ τ ⇒ clause'. The consecution query is
// the paper's list-implication test — the left-hand side stays an
// implicit conjunction, the right-hand side is the clause's BackImage.
func (e *pdrRun) relativelyInductive(clause bdd.Ref, i int) bool {
	stop := e.c.Phase(PhaseImage)
	back := e.ma.BackImage(clause)
	stop()
	lhs := core.NewList(e.m, append(append([]bdd.Ref(nil), e.frames[i-1].Conjuncts...), clause)...)
	stop = e.c.Phase(PhaseTerm)
	ok := e.term.ListImpliesRef(lhs, back)
	stop()
	return ok
}

// generalize widens the blocked state's cube by dropping literals while
// the negated cube stays initiation-safe (init ⇒ clause) and relatively
// inductive at frame i, so one learned clause blocks a whole face of
// the state space rather than a single state. At least one literal is
// always kept.
func (e *pdrRun) generalize(s []bool, i int) bdd.Ref {
	lits := make([]bdd.Lit, len(e.ma.CurVars()))
	for j, v := range e.ma.CurVars() {
		lits[j] = bdd.Lit{Var: v, Val: s[v]}
	}
	for j := 0; j < len(lits) && len(lits) > 1; {
		cand := make([]bdd.Lit, 0, len(lits)-1)
		cand = append(cand, lits[:j]...)
		cand = append(cand, lits[j+1:]...)
		cube := e.m.CubeRef(cand)
		if e.m.And(e.init, cube) != bdd.Zero || !e.relativelyInductive(cube.Not(), i) {
			j++
			continue
		}
		lits = cand // dropped; retry the same index, now the next literal
	}
	return e.m.CubeRef(lits).Not()
}

// addClause strengthens frames 1..i with the clause. Adding to every
// lower frame too keeps the frames monotone, which the shortest-path
// and convergence arguments both rely on.
func (e *pdrRun) addClause(clause bdd.Ref, i int) {
	e.c.Protect(clause)
	for j := 1; j <= i && j < len(e.frames); j++ {
		e.frames[j] = core.NewList(e.m,
			append(append([]bdd.Ref(nil), e.frames[j].Conjuncts...), clause)...)
	}
}

// propagate pushes clauses forward after level k is fully blocked — a
// conjunct of F_i moves into F_{i+1} when F_i ∧ τ ⇒ c' — then applies
// the Section III.A policy to each frame and reports whether some
// F_i ≡ F_{i+1}. An equal pair is an inductive invariant containing the
// initial states and excluding ¬P, so the property is verified.
func (e *pdrRun) propagate(k int) bool {
	for i := 1; i <= k; i++ {
		have := make(map[bdd.Ref]bool, len(e.frames[i+1].Conjuncts))
		for _, cj := range e.frames[i+1].Conjuncts {
			have[cj] = true
		}
		var pushed []bdd.Ref
		for _, cj := range e.frames[i].Conjuncts {
			if !have[cj] && e.relativelyInductive(cj, i+1) {
				pushed = append(pushed, cj)
			}
		}
		if len(pushed) > 0 {
			e.frames[i+1] = core.NewList(e.m,
				append(append([]bdd.Ref(nil), e.frames[i+1].Conjuncts...), pushed...)...)
		}
		stop := e.c.Phase(PhasePolicy)
		e.frames[i] = core.SimplifyAndEvaluate(e.frames[i], e.copt)
		stop()
		protectList(e.c, e.frames[i])
	}
	for i := 1; i <= k; i++ {
		stop := e.c.Phase(PhaseTerm)
		eq := core.FastListsEqual(e.frames[i], e.frames[i+1]) ||
			e.term.ListsEqual(e.frames[i], e.frames[i+1])
		stop()
		e.c.EmitTermResolved(eq)
		if eq {
			return true
		}
	}
	return false
}

// traceFromChain turns an obligation chain (initial state first) into a
// validated counterexample by choosing inputs realizing each recorded
// transition.
func (e *pdrRun) traceFromChain(chain [][]bool) *Trace {
	t := &Trace{States: chain}
	for i := 0; i+1 < len(chain); i++ {
		in, ok := e.ma.PickTransitionInto(chain[i], stateCube(e.ma, chain[i+1]))
		if !ok {
			panic("verify: pdr: no input realizes a recorded transition")
		}
		t.Inputs = append(t.Inputs, in)
	}
	return t
}
