package verify

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/resource"
)

// Cross-validation on random machines: four algorithmically independent
// engines (forward reachability, monolithic backward fixpoint, and two
// implicit-conjunction variants that never build the same intermediate
// BDDs) must agree on the verdict, and when the property fails, on the
// shortest counterexample length. This is the strongest end-to-end
// correctness oracle in the test suite.

// randMachine builds a random deterministic-with-inputs machine: sb state
// bits, ib input bits, next-state functions drawn as random truth tables
// over (state ∪ input) bits, a random single initial state, and a random
// property over state bits biased toward being "mostly true" so that
// both verified and violated instances occur.
func randMachine(t testing.TB, rng *rand.Rand, sb, ib int) (Problem, *fsm.Machine) {
	t.Helper()
	m := bdd.New()
	ma := fsm.New(m)

	state := make([]bdd.Var, sb)
	inputs := make([]bdd.Var, ib)
	for i := range state {
		state[i] = ma.NewStateBit("")
	}
	for i := range inputs {
		inputs[i] = ma.NewInputBit("")
	}
	all := append(append([]bdd.Var(nil), state...), inputs...)

	// Random function over the given variables as a random 3-term DNF.
	randFn := func(dense int) bdd.Ref {
		f := bdd.Zero
		for term := 0; term < dense; term++ {
			cube := bdd.One
			for _, v := range all {
				switch rng.Intn(3) {
				case 0:
					cube = m.And(cube, m.VarRef(v))
				case 1:
					cube = m.And(cube, m.NVarRef(v))
				}
			}
			f = m.Or(f, cube)
		}
		return f
	}

	for _, s := range state {
		ma.SetNext(s, randFn(3))
	}
	initLits := make([]bdd.Lit, sb)
	for i, s := range state {
		initLits[i] = bdd.Lit{Var: s, Val: rng.Intn(2) == 1}
	}
	ma.SetInit(m.CubeRef(initLits))
	ma.MustSeal()

	// Property: complement of a sparse random set over state bits (so it
	// holds on most states). Also provide a random 2-way partition.
	badCube := bdd.One
	for _, s := range state {
		switch rng.Intn(3) {
		case 0:
			badCube = m.And(badCube, m.VarRef(s))
		case 1:
			badCube = m.And(badCube, m.NVarRef(s))
		}
	}
	good := badCube.Not()
	extra := m.Or(good, m.VarRef(state[rng.Intn(sb)]))
	return Problem{
		Machine:  ma,
		Good:     good,
		GoodList: []bdd.Ref{good, extra}, // same conjunction, 2 conjuncts
		Name:     "random",
	}, ma
}

func TestEnginesAgreeOnRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	violated, verified := 0, 0
	for iter := 0; iter < 60; iter++ {
		p, ma := randMachine(t, rng, 2+rng.Intn(4), 1+rng.Intn(3))

		results := make(map[Method]Result)
		for _, method := range []Method{Forward, Backward, ICI, XICI} {
			results[method] = Run(p, method, Options{WantTrace: true, Budget: resource.Budget{MaxIterations: 500}})
		}

		base := results[Forward]
		for method, res := range results {
			if method == ICI && res.Outcome == Exhausted {
				// The original method's fast positional termination test
				// can oscillate between equivalent list shapes and miss
				// convergence — the very weakness ("not proven to
				// terminate") the exact test of this paper repairs. XICI
				// must still decide the instance; checked below.
				continue
			}
			if res.Outcome != base.Outcome {
				t.Fatalf("iter %d: %s says %v, Forward says %v", iter, method, res.Outcome, base.Outcome)
			}
			if res.Outcome == Violated {
				if res.ViolationDepth != base.ViolationDepth {
					t.Fatalf("iter %d: %s violation depth %d != Forward's %d",
						iter, method, res.ViolationDepth, base.ViolationDepth)
				}
				if res.Trace == nil {
					t.Fatalf("iter %d: %s produced no trace", iter, method)
				}
				if err := res.Trace.Validate(ma, []bdd.Ref{p.Good}); err != nil {
					t.Fatalf("iter %d: %s trace invalid: %v", iter, method, err)
				}
				if res.Trace.Len() != res.ViolationDepth {
					t.Fatalf("iter %d: %s trace length %d != depth %d",
						iter, method, res.Trace.Len(), res.ViolationDepth)
				}
			}
		}
		if base.Outcome == Violated {
			violated++
		} else {
			verified++
		}

		// The reachable set is the semantic ground truth: the verdict
		// must match direct reachability analysis.
		reach, _, err := ReachableStates(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantViolated := !p.Machine.M.Implies(reach, p.Good)
		if (base.Outcome == Violated) != wantViolated {
			t.Fatalf("iter %d: verdict %v disagrees with reachability ground truth", iter, base.Outcome)
		}
	}
	// The generator must exercise both verdicts to be worth anything.
	if violated == 0 || verified == 0 {
		t.Fatalf("degenerate sample: %d violated, %d verified", violated, verified)
	}
}

// TestXICIVariantsAgreeOnRandomMachines drives the policy and
// termination option matrix over random machines.
func TestXICIVariantsAgreeOnRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	opts := []Options{
		{},
		{Termination: TermImplication},
		{Termination: TermFast},
		{TermVarChoice: core.VarMostCommonTop},
		{Core: core.Options{Simplifier: bdd.UseConstrain}},
		{Core: core.Options{GrowThreshold: 0.9}},
		{Core: core.Options{SkipSimplify: true}},
		{Core: core.Options{SkipEvaluate: true}},
		{Core: core.Options{PairBudgetFactor: 1.5}},
		{GCEvery: 1},
	}
	for iter := 0; iter < 25; iter++ {
		p, _ := randMachine(t, rng, 2+rng.Intn(3), 1+rng.Intn(2))
		want := Run(p, Forward, Options{}).Outcome
		for oi, opt := range opts {
			opt.Budget.MaxIterations = 500 // TermFast may legitimately not converge
			res := Run(p, XICI, opt)
			if res.Outcome == Exhausted && opt.Termination == TermFast {
				continue // documented weakness of the fast test
			}
			if res.Outcome != want {
				t.Fatalf("iter %d opts[%d]: %v, want %v (%s)", iter, oi, res.Outcome, want, res.Why)
			}
		}
	}
}
