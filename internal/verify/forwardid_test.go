package verify

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/resource"
)

func TestForwardIDVerifiesTypedFIFO(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 3, 5, false)
	res := Run(p, ForwardID, Options{})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	// Agreement with plain forward traversal.
	fwd := Run(p, Forward, Options{})
	if fwd.Outcome != Verified {
		t.Fatal("baseline broken")
	}
	if res.Iterations != fwd.Iterations {
		t.Fatalf("iteration counts differ: FwdID %d vs Fwd %d", res.Iterations, fwd.Iterations)
	}
}

func TestForwardIDCatchesBugWithTrace(t *testing.T) {
	p, ma := tinyFIFO(t, 3, 3, 5, true)
	res := Run(p, ForwardID, Options{WantTrace: true})
	if res.Outcome != Violated {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if err := res.Trace.Validate(ma, p.goodList()); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	fwd := Run(p, Forward, Options{})
	if res.ViolationDepth != fwd.ViolationDepth {
		t.Fatalf("depth %d differs from Forward's %d", res.ViolationDepth, fwd.ViolationDepth)
	}
}

// TestForwardIDAgreesOnRandomMachines is the dual-engine cross-check.
func TestForwardIDAgreesOnRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(779))
	for iter := 0; iter < 40; iter++ {
		p, ma := randMachine(t, rng, 2+rng.Intn(4), 1+rng.Intn(2))
		want := Run(p, Forward, Options{})
		got := Run(p, ForwardID, Options{WantTrace: true})
		if got.Outcome != want.Outcome {
			t.Fatalf("iter %d: FwdID %v, Fwd %v", iter, got.Outcome, want.Outcome)
		}
		if got.Outcome == Violated {
			if got.ViolationDepth != want.ViolationDepth {
				t.Fatalf("iter %d: depths %d vs %d", iter, got.ViolationDepth, want.ViolationDepth)
			}
			if err := got.Trace.Validate(ma, []bdd.Ref{p.Good}); err != nil {
				t.Fatalf("iter %d: trace invalid: %v", iter, err)
			}
		}
	}
}

// TestForwardIDTerminationModes: the dual convergence test in all modes.
func TestForwardIDTerminationModes(t *testing.T) {
	for _, mode := range []TerminationMode{TermExact, TermImplication, TermFast} {
		p, _ := tinyFIFO(t, 2, 3, 2, false)
		res := Run(p, ForwardID, Options{Termination: mode, Budget: resource.Budget{MaxIterations: 200}})
		if res.Outcome == Violated {
			t.Fatalf("mode %d: false violation", mode)
		}
		if res.Outcome == Exhausted && mode != TermFast {
			t.Fatalf("mode %d: failed to converge (%s)", mode, res.Why)
		}
	}
}

// TestForwardIDKeepsDisjunctionImplicit: with merging disabled the ring
// stays a genuine multi-disjunct list.
func TestForwardIDKeepsDisjunctionImplicit(t *testing.T) {
	p, _ := tinyFIFO(t, 3, 4, 5, false)
	res := Run(p, ForwardID, Options{Core: core.Options{SkipEvaluate: true}})
	if res.Outcome != Verified {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.Why)
	}
	if len(res.PeakProfile) < 2 {
		t.Fatalf("disjunction collapsed: profile %v", res.PeakProfile)
	}
}
