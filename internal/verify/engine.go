package verify

import (
	"repro/internal/bdd"
)

// runCtx carries the GC bookkeeping shared by all engines: every value
// that must survive a collection is registered as a root, and
// collections happen only at iteration boundaries (the bdd package's GC
// contract).
type runCtx struct {
	m     *bdd.Manager
	opt   Options
	roots []bdd.Ref
}

func newRunCtx(p Problem, opt Options) *runCtx {
	ma := p.Machine
	c := &runCtx{m: ma.M, opt: opt}
	if opt.GCEvery > 0 {
		// The machine's functions and the problem's property/dependency
		// BDDs must survive every collection — including collections in
		// LATER runs on the same manager, since the caller still holds
		// these Refs. They become permanent roots (counts only grow and
		// are never released) once GC is in play.
		ma.Protect()
		c.m.Protect(p.Good)
		for _, g := range p.GoodList {
			c.m.Protect(g)
		}
		for _, d := range p.Deps {
			c.m.Protect(d.Def)
		}
	}
	return c
}

// protect registers a root (no-op when GC is disabled) and returns it.
func (c *runCtx) protect(r bdd.Ref) bdd.Ref {
	if c.opt.GCEvery > 0 {
		c.m.Protect(r)
		c.roots = append(c.roots, r)
	}
	return r
}

// release drops all roots registered so far (called when the iterates
// they protect are superseded or the run ends).
func (c *runCtx) release() {
	for _, r := range c.roots {
		c.m.Unprotect(r)
	}
	c.roots = c.roots[:0]
}

// maybeGC runs a collection at the configured cadence.
func (c *runCtx) maybeGC(iteration int) {
	if c.opt.GCEvery > 0 && iteration > 0 && iteration%c.opt.GCEvery == 0 {
		c.m.GC()
	}
}
