package verify

import (
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/resource"
)

// Ctx is the harness state shared with a running engine: GC root
// bookkeeping, the resolved resource budget, and the progress sink —
// iterations completed and the peak iterate statistics — that the
// harness reads back when the run aborts mid-operation, so Exhausted
// results report how far the run got (the partial numbers behind the
// paper's "Exceeded 60MB" rows).
//
// Engines report progress through Tick and Observe and register
// GC-surviving values through Protect; the harness owns creation,
// release, and Result finalization.
type Ctx struct {
	m       *bdd.Manager
	opt     Options
	budget  resource.Budget
	maxIter int
	roots   []bdd.Ref

	// Progress sink. Engines write via Tick/Observe; exhausted() reads.
	iterations int
	peak       int
	profile    []int

	// Observability sink. Engines write via the Phase timers, the
	// Termination/CoreOptions wiring, and EmitTermResolved; the harness
	// copies everything onto the Result after the run.
	term       core.TermStats
	eval       core.EvalStats
	phases     PhaseDurations
	trajectory []int
	observer   Observer
}

func newCtx(p Problem, opt Options, b resource.Budget) *Ctx {
	ma := p.Machine
	c := &Ctx{m: ma.M, opt: opt, budget: b,
		maxIter: b.MaxIter(defaultMaxIter), observer: opt.Observer}
	if opt.GCEvery > 0 {
		// The machine's functions and the problem's property/dependency
		// BDDs must survive every collection — including collections in
		// LATER runs on the same manager, since the caller still holds
		// these Refs. They become permanent roots once GC is in play;
		// registration is idempotent (bdd.ProtectPermanent), so running
		// the same problem repeatedly with GCEvery > 0 cannot inflate
		// the refcounts.
		ma.Protect()
		c.m.ProtectPermanent(p.Good)
		for _, g := range p.GoodList {
			c.m.ProtectPermanent(g)
		}
		for _, d := range p.Deps {
			c.m.ProtectPermanent(d.Def)
		}
	}
	return c
}

// Protect registers a root (no-op when GC is disabled) and returns it.
func (c *Ctx) Protect(r bdd.Ref) bdd.Ref {
	if c.opt.GCEvery > 0 {
		c.m.Protect(r)
		c.roots = append(c.roots, r)
	}
	return r
}

// release drops all roots registered so far (called by the harness when
// the run ends).
func (c *Ctx) release() {
	for _, r := range c.roots {
		c.m.Unprotect(r)
	}
	c.roots = c.roots[:0]
}

// MaybeGC runs a collection at the configured cadence. GC time is
// attributed to PhaseGC centrally here, for every engine.
func (c *Ctx) MaybeGC(iteration int) {
	if c.opt.GCEvery > 0 && iteration > 0 && iteration%c.opt.GCEvery == 0 {
		stop := c.Phase(PhaseGC)
		c.m.GC()
		stop()
	}
}

// Observe records an iterate's shared node count and (for the implicit
// engines) per-conjunct profile, keeping the maximum seen and appending
// to the size trajectory. Engines call it once per iterate (including
// the initial one), which also drives the Observer's OnIteration events;
// results read the peak back via Peak and the trajectory via the Result.
func (c *Ctx) Observe(shared int, profile []int) {
	c.trajectory = append(c.trajectory, shared)
	if shared > c.peak {
		c.peak = shared
		if profile != nil {
			c.profile = append(c.profile[:0], profile...)
		}
	}
	if c.observer != nil {
		c.observer.OnIteration(IterationEvent{
			Index:       len(c.trajectory) - 1,
			SharedNodes: shared,
			Profile:     profile,
		})
	}
}

// Phase starts timing the given phase and returns the stop function;
// call it exactly once. Engines bracket their image, policy, and
// termination sections with it:
//
//	stop := c.Phase(PhaseImage)
//	back := ma.BackImageList(g.Conjuncts)
//	stop()
func (c *Ctx) Phase(ph Phase) (stop func()) {
	start := time.Now()
	return func() { c.phases[ph] += time.Since(start) }
}

// Termination returns the Section III.B exact-test configuration wired
// to the run's TermStats sink. Engines that build a core.Termination
// must obtain it here so the counters reach the Result.
func (c *Ctx) Termination() core.Termination {
	return core.Termination{
		M:          c.m,
		Simplifier: c.opt.Core.Simplifier,
		VarChoice:  c.opt.TermVarChoice,
		SkipStep3:  c.opt.TermSkipStep3,
		Stats:      &c.term,
	}
}

// CoreOptions returns the run's policy options wired to the EvalStats
// sink and (when an Observer is installed) the OnMerge event stream.
// Engines pass the result — not opt.Core directly — to the Section
// III.A entry points.
func (c *Ctx) CoreOptions() core.Options {
	copt := c.opt.Core
	copt.Stats = &c.eval
	if c.observer != nil {
		copt.OnMerge = func(i, j int) {
			c.observer.OnMerge(MergeEvent{Iteration: c.iterations, I: i, J: j})
		}
	}
	return copt
}

// EmitTermResolved notifies the Observer that the engine's convergence
// test resolved for the current iteration.
func (c *Ctx) EmitTermResolved(converged bool) {
	if c.observer != nil {
		c.observer.OnTermResolved(TermEvent{
			Iteration: c.iterations,
			Converged: converged,
			Stats:     c.term,
		})
	}
}

// Peak returns the largest iterate statistics observed so far.
func (c *Ctx) Peak() (shared int, profile []int) { return c.peak, c.profile }

// Tick marks the start of iteration i and enforces the iteration cap
// and the wall/cancellation budget between image computations (the
// manager's own strided checks additionally bound a single runaway
// operation). When a bound is hit it returns the finished Exhausted
// result and true; engines return it as-is.
func (c *Ctx) Tick(i int) (Result, bool) {
	c.iterations = i
	if i >= c.maxIter {
		return c.exhausted(&resource.IterError{Limit: c.maxIter}), true
	}
	if err := c.budget.Err(); err != nil {
		return c.exhausted(err), true
	}
	return Result{}, false
}

// exhausted builds an Exhausted result carrying the typed overrun error
// and the progress accumulated before it.
func (c *Ctx) exhausted(err error) Result {
	return Result{
		Outcome:        Exhausted,
		Err:            err,
		Why:            err.Error(),
		Iterations:     c.iterations,
		PeakStateNodes: c.peak,
		PeakProfile:    c.profile,
	}
}
