package verify

import (
	"repro/internal/bdd"
	"repro/internal/resource"
)

// Ctx is the harness state shared with a running engine: GC root
// bookkeeping, the resolved resource budget, and the progress sink —
// iterations completed and the peak iterate statistics — that the
// harness reads back when the run aborts mid-operation, so Exhausted
// results report how far the run got (the partial numbers behind the
// paper's "Exceeded 60MB" rows).
//
// Engines report progress through Tick and Observe and register
// GC-surviving values through Protect; the harness owns creation,
// release, and Result finalization.
type Ctx struct {
	m       *bdd.Manager
	opt     Options
	budget  resource.Budget
	maxIter int
	roots   []bdd.Ref

	// Progress sink. Engines write via Tick/Observe; exhausted() reads.
	iterations int
	peak       int
	profile    []int
}

func newCtx(p Problem, opt Options, b resource.Budget) *Ctx {
	ma := p.Machine
	c := &Ctx{m: ma.M, opt: opt, budget: b, maxIter: b.MaxIter(defaultMaxIter)}
	if opt.GCEvery > 0 {
		// The machine's functions and the problem's property/dependency
		// BDDs must survive every collection — including collections in
		// LATER runs on the same manager, since the caller still holds
		// these Refs. They become permanent roots (counts only grow and
		// are never released) once GC is in play.
		ma.Protect()
		c.m.Protect(p.Good)
		for _, g := range p.GoodList {
			c.m.Protect(g)
		}
		for _, d := range p.Deps {
			c.m.Protect(d.Def)
		}
	}
	return c
}

// Protect registers a root (no-op when GC is disabled) and returns it.
func (c *Ctx) Protect(r bdd.Ref) bdd.Ref {
	if c.opt.GCEvery > 0 {
		c.m.Protect(r)
		c.roots = append(c.roots, r)
	}
	return r
}

// release drops all roots registered so far (called by the harness when
// the run ends).
func (c *Ctx) release() {
	for _, r := range c.roots {
		c.m.Unprotect(r)
	}
	c.roots = c.roots[:0]
}

// MaybeGC runs a collection at the configured cadence.
func (c *Ctx) MaybeGC(iteration int) {
	if c.opt.GCEvery > 0 && iteration > 0 && iteration%c.opt.GCEvery == 0 {
		c.m.GC()
	}
}

// Observe records an iterate's shared node count and (for the implicit
// engines) per-conjunct profile, keeping the maximum seen. Engines call
// it for every iterate; results read the peak back via Peak.
func (c *Ctx) Observe(shared int, profile []int) {
	if shared > c.peak {
		c.peak = shared
		if profile != nil {
			c.profile = append(c.profile[:0], profile...)
		}
	}
}

// Peak returns the largest iterate statistics observed so far.
func (c *Ctx) Peak() (shared int, profile []int) { return c.peak, c.profile }

// Tick marks the start of iteration i and enforces the iteration cap
// and the wall/cancellation budget between image computations (the
// manager's own strided checks additionally bound a single runaway
// operation). When a bound is hit it returns the finished Exhausted
// result and true; engines return it as-is.
func (c *Ctx) Tick(i int) (Result, bool) {
	c.iterations = i
	if i >= c.maxIter {
		return c.exhausted(&resource.IterError{Limit: c.maxIter}), true
	}
	if err := c.budget.Err(); err != nil {
		return c.exhausted(err), true
	}
	return Result{}, false
}

// exhausted builds an Exhausted result carrying the typed overrun error
// and the progress accumulated before it.
func (c *Ctx) exhausted(err error) Result {
	return Result{
		Outcome:        Exhausted,
		Err:            err,
		Why:            err.Error(),
		Iterations:     c.iterations,
		PeakStateNodes: c.peak,
		PeakProfile:    c.profile,
	}
}
