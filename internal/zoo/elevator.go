package zoo

import (
	"fmt"

	"repro/internal/ir"
)

// bits returns the number of bits needed to encode n distinct codes.
func bits(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// The elevator family: a single cabin serving F floors. Requests
// arrive nondeterministically (one per cycle, at an arbitrary floor)
// and latch until served; the cabin serves a request at its current
// floor by opening the door for one cycle, otherwise moves one floor
// toward the nearest pending request. The property is the natural
// per-floor implicit conjunction — "while the door is open at floor f,
// f's request has been cleared" — plus an idle observation bit that is
// a pure function of the request latches (a functional dependency) and,
// at non-power-of-two floor counts, the cabin-position type invariant.
//
// The seeded bug breaks the door interlock: the cabin keeps moving
// while the door is open, so it arrives at a floor whose request is
// still pending with the door already open.
func buildElevator(s Size) (*ir.Model, error) {
	f := s["floors"]
	bug := boolKnob(s, "bug")
	if f < 2 || f > 8 {
		return nil, fmt.Errorf("zoo: elevator needs 2 <= floors <= 8 (got %d)", f)
	}
	fb := bits(f)

	name := fmt.Sprintf("elevator-f%d", f)
	b := ir.NewBuilder(name)
	b.ParamInt("floors", f)
	b.ParamBool("bug", bug)

	rq := b.Input("rq")
	rsel := ir.FromNodes(b.Inputs("rsel", fb))

	posBits := b.States("pos", fb, false)
	pos := ir.FromNodes(posBits)
	door := b.State("door", false)
	req := make([]*ir.Node, f)
	for i := range req {
		req[i] = b.State(fmt.Sprintf("req%d", i), false)
	}
	idle := b.State("idle", true)

	if f != 1<<uint(fb) {
		b.Constrain(ir.LtW(rsel, ir.ConstWord(uint64(f), fb)))
	}

	atFloor := func(i int) *ir.Node { return ir.EqConstW(pos, uint64(i)) }

	serve := ir.Bool(false)
	for i := range req {
		serve = ir.Or(serve, ir.And(req[i], atFloor(i)))
	}

	// Request latches: arrivals set, service at the floor clears (an
	// arrival during the serving cycle is served on the spot).
	for i := range req {
		arrive := ir.And(rq, ir.EqConstW(rsel, uint64(i)))
		clear := ir.And(serve, atFloor(i))
		b.SetNext(req[i], ir.And(ir.Or(req[i], arrive), ir.Not(clear)))
	}

	// Idle observation: no request pending — a function of the request
	// latches, declared as such.
	noReq := ir.Bool(true)
	noReqNext := ir.Bool(true)
	for i := range req {
		noReq = ir.And(noReq, ir.Not(req[i]))
		noReqNext = ir.And(noReqNext, ir.Not(b.NextFn(req[i])))
	}
	b.SetNext(idle, noReqNext)
	b.Dep(idle, noReq)

	// Movement: toward the nearest pending request, one floor per
	// cycle; serving holds the cabin — unless the seeded bug breaks the
	// door interlock.
	anyAbove := ir.Bool(false)
	anyBelow := ir.Bool(false)
	for i := range req {
		anyAbove = ir.Or(anyAbove, ir.And(req[i], ir.LtW(pos, ir.ConstWord(uint64(i), fb))))
		anyBelow = ir.Or(anyBelow, ir.And(req[i], ir.LtW(ir.ConstWord(uint64(i), fb), pos)))
	}
	up := ir.And(anyAbove, ir.Not(ir.EqConstW(pos, uint64(f-1))))
	down := ir.And(ir.Not(anyAbove), anyBelow, ir.Not(ir.EqConstW(pos, 0)))
	moved := ir.MuxW(up, ir.IncW(pos), ir.MuxW(down, ir.DecW(pos), pos))
	hold := serve
	if bug {
		hold = ir.Bool(false)
	}
	posNext := ir.MuxW(hold, pos, moved)
	for i, pb := range posBits {
		b.SetNext(pb, posNext.Bit(i))
	}
	b.SetNext(door, serve)

	// Per-floor conjuncts + the idle FD as a checkable good + the
	// position type invariant when the floor count is not a power of
	// two.
	for i := range req {
		b.Good(ir.Imp(ir.And(door, atFloor(i)), ir.Not(req[i])))
	}
	b.Good(ir.Xnor(idle, noReq))
	if f != 1<<uint(fb) {
		b.Good(ir.LtW(pos, ir.ConstWord(uint64(f), fb)))
	}
	return b.Build(), nil
}

func init() {
	Register(Entry{
		Name:     "elevator",
		Desc:     "single-cabin elevator with latched floor requests: per-floor door-interlock conjuncts",
		Defaults: Size{"floors": 4, "bug": 0},
		Sizes:    []Size{{"floors": 3}, {"floors": 5}, {"floors": 8}},
		Build:    buildElevator,
	})
}
