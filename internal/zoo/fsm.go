package zoo

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"repro/internal/fsmtk"
	"repro/internal/ir"
)

// The embedded FSM-toolkit corpus: every committed `.fsm` machine is a
// registry entry named fsm/<machine>, built through the importer. The
// machines are fixed-size, so their only parameter set is the empty
// one — but they flow through the same registry as the parameterized
// families, which is what lets icibench grid them and icid serve them.

//go:embed fsm/*.fsm
var fsmFiles embed.FS

func init() {
	entries, err := fs.Glob(fsmFiles, "fsm/*.fsm")
	if err != nil {
		panic(err)
	}
	sort.Strings(entries)
	for _, path := range entries {
		src, err := fs.ReadFile(fsmFiles, path)
		if err != nil {
			panic(err)
		}
		f, err := fsmtk.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("zoo: embedded %s: %v", path, err))
		}
		base := strings.TrimSuffix(strings.TrimPrefix(path, "fsm/"), ".fsm")
		Register(Entry{
			Name: "fsm/" + base,
			Desc: fmt.Sprintf("imported FSM-toolkit %s machine (%d states, %d symbols)",
				f.Type, len(f.States), len(f.Inputs)),
			Defaults: Size{},
			Sizes:    []Size{{}},
			Build: func(Size) (*ir.Model, error) {
				return f.Compile(), nil
			},
		})
	}
}

// FSMSource returns the embedded `.fsm` source of a fsm/<name> entry —
// the raw form tools that re-import (the fuzzer corpus) start from.
func FSMSource(name string) ([]byte, bool) {
	b, err := fs.ReadFile(fsmFiles, "fsm/"+strings.TrimPrefix(name, "fsm/")+".fsm")
	if err != nil {
		return nil, false
	}
	return b, true
}
