package zoo

import (
	"fmt"

	"repro/internal/ir"
)

// The protocol-stack family: a frame descends a stack of K layers,
// one buffer slot per layer. The environment picks one action per
// cycle — inject a frame at the top, forward a frame one layer down,
// or deliver from the bottom. Injection and delivery each toggle a
// parity bit (sent- and delivered-count mod 2) and a log-encoded
// in-flight counter tracks the population. The properties are the
// conservation laws: the counter equals the popcount of the occupied
// layers (per-bit conjuncts, each a functional dependency of the
// occupancy bits) and the counter's low bit equals the XOR of the two
// parities. This generalizes the paper's network-counter pattern to a
// layered stack.
//
// The seeded bug duplicates frames: forwarding fails to clear the
// source layer, so the population grows without an injection.
func buildProtostack(s Size) (*ir.Model, error) {
	k := s["layers"]
	bug := boolKnob(s, "bug")
	if k < 2 || k > 6 {
		return nil, fmt.Errorf("zoo: protostack needs 2 <= layers <= 6 (got %d)", k)
	}
	// Ops: inject (0), deliver (1), forward layer j -> j+1 (2+j).
	nOps := k + 1
	ob := bits(nOps)
	cw := bits(k + 1) // counter holds 0..k

	b := ir.NewBuilder(fmt.Sprintf("protostack-k%d", k))
	b.ParamInt("layers", k)
	b.ParamBool("bug", bug)

	op := ir.FromNodes(b.Inputs("op", ob))
	if nOps != 1<<uint(ob) {
		b.Constrain(ir.LtW(op, ir.ConstWord(uint64(nOps), ob)))
	}

	occ := make([]*ir.Node, k)
	for i := range occ {
		occ[i] = b.State(fmt.Sprintf("v%d", i), false)
	}
	sndPar := b.State("sndp", false)
	rcvPar := b.State("rcvp", false)
	cntBits := b.States("cnt", cw, false)
	cnt := ir.FromNodes(cntBits)

	inject := ir.And(ir.EqConstW(op, 0), ir.Not(occ[0]))
	deliver := ir.And(ir.EqConstW(op, 1), occ[k-1])
	fwd := make([]*ir.Node, k-1)
	for j := range fwd {
		fwd[j] = ir.And(ir.EqConstW(op, uint64(2+j)), occ[j], ir.Not(occ[j+1]))
	}

	for j := 0; j < k; j++ {
		set := inject
		if j > 0 {
			set = fwd[j-1]
		}
		clr := deliver
		if j < k-1 {
			clr = fwd[j]
			if bug && j == 0 {
				// The bug: forwarding out of the top layer leaves the
				// frame behind — a duplication.
				clr = ir.Bool(false)
			}
		}
		b.SetNext(occ[j], ir.Or(set, ir.And(occ[j], ir.Not(clr))))
	}
	b.SetNext(sndPar, ir.Xor(sndPar, inject))
	b.SetNext(rcvPar, ir.Xor(rcvPar, deliver))
	cntNext := ir.MuxW(inject, ir.IncW(cnt), ir.MuxW(deliver, ir.DecW(cnt), cnt))
	for i, cb := range cntBits {
		b.SetNext(cb, cntNext.Bit(i))
	}

	// Conservation conjuncts: counter == popcount(occupancy) per bit,
	// and counter parity == sent parity XOR delivered parity. On the
	// correct model the counter bits are functions of the occupancy
	// bits — declared as such (deps would be unsound on the bugged
	// model, which breaks exactly this relation).
	pc := ir.PopCountW(occ)
	for i := 0; i < cw; i++ {
		b.Good(ir.Xnor(cnt.Bit(i), pc.Bit(i)))
		if !bug {
			b.Dep(cntBits[i], pc.Bit(i))
		}
	}
	b.Good(ir.Xnor(cnt.Bit(0), ir.Xor(sndPar, rcvPar)))
	return b.Build(), nil
}

func init() {
	Register(Entry{
		Name:     "protostack",
		Desc:     "layered protocol stack with conservation counters: per-bit counter/popcount conjuncts and FDs",
		Defaults: Size{"layers": 3, "bug": 0},
		Sizes:    []Size{{"layers": 2}, {"layers": 4}, {"layers": 6}},
		Build:    buildProtostack,
	})
}
